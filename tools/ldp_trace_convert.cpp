// ldp-trace-convert: convert DNS traces between the three LDplayer input
// formats (Figure 3): pcap network traces, the editable plain-text form,
// and the customized binary replay stream.
//
//   ldp-trace-convert <in.pcap|in.txt|in.ldpb> <out.pcap|out.txt|out.ldpb>
//
// Format is inferred from the file extension (.pcap, .txt, .ldpb). Response
// records survive pcap<->ldpb conversion; text output keeps queries only
// (replay regenerates responses from zones).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "trace/binary.hpp"
#include "trace/erf.hpp"
#include "trace/pcap.hpp"
#include "trace/stats.hpp"
#include "trace/text.hpp"

using namespace ldp;

namespace {

enum class Format { Pcap, Erf, Text, Binary };

Result<Format> format_of(const std::string& path) {
  auto dot = path.rfind('.');
  if (dot == std::string::npos) return Err("no file extension: " + path);
  std::string ext = path.substr(dot + 1);
  if (ext == "pcap" || ext == "cap") return Format::Pcap;
  if (ext == "erf") return Format::Erf;
  if (ext == "txt" || ext == "text") return Format::Text;
  if (ext == "ldpb" || ext == "bin") return Format::Binary;
  return Err("unknown extension ." + ext + " (use .pcap, .erf, .txt or .ldpb)");
}

Result<std::vector<trace::TraceRecord>> load(const std::string& path, Format fmt) {
  switch (fmt) {
    case Format::Pcap: {
      auto reader = LDP_TRY(trace::PcapReader::open(path));
      auto records = LDP_TRY(reader.read_all());
      if (reader.skipped() > 0)
        std::fprintf(stderr, "note: skipped %llu non-DNS packets\n",
                     static_cast<unsigned long long>(reader.skipped()));
      return records;
    }
    case Format::Erf: {
      auto reader = LDP_TRY(trace::ErfReader::open(path));
      auto records = LDP_TRY(reader.read_all());
      if (reader.skipped() > 0)
        std::fprintf(stderr, "note: skipped %llu non-DNS records\n",
                     static_cast<unsigned long long>(reader.skipped()));
      return records;
    }
    case Format::Binary: {
      auto reader = LDP_TRY(trace::BinaryReader::open(path));
      return reader.read_all();
    }
    case Format::Text: {
      std::ifstream in(path);
      if (!in) return Err("cannot open " + path);
      std::stringstream ss;
      ss << in.rdbuf();
      return trace::trace_from_text(ss.str());
    }
  }
  return Err("unreachable");
}

Result<void> store(const std::string& path, Format fmt,
                   const std::vector<trace::TraceRecord>& records) {
  switch (fmt) {
    case Format::Pcap: {
      trace::PcapWriter w;
      for (const auto& rec : records) w.add(rec);
      return w.save(path);
    }
    case Format::Erf: {
      trace::ErfWriter w;
      for (const auto& rec : records) w.add(rec);
      return w.save(path);
    }
    case Format::Binary: {
      trace::BinaryWriter w;
      for (const auto& rec : records) w.add(rec);
      return w.save(path);
    }
    case Format::Text: {
      auto text = LDP_TRY(trace::trace_to_text(records));
      std::ofstream out(path);
      if (!out) return Err("cannot write " + path);
      out << text;
      return Ok();
    }
  }
  return Err("unreachable");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <input> <output>\n"
                         "formats by extension: .pcap .erf .txt .ldpb\n",
                 argv[0]);
    return 2;
  }
  auto in_fmt = format_of(argv[1]);
  auto out_fmt = format_of(argv[2]);
  if (!in_fmt.ok() || !out_fmt.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!in_fmt.ok() ? in_fmt.error() : out_fmt.error()).message.c_str());
    return 2;
  }

  auto records = load(argv[1], *in_fmt);
  if (!records.ok()) {
    std::fprintf(stderr, "read error: %s\n", records.error().message.c_str());
    return 1;
  }
  auto stats = trace::compute_stats(*records);
  std::fprintf(stderr, "loaded %zu records (%zu queries, %zu clients, %.1fs)\n",
               stats.records, stats.queries, stats.unique_clients,
               stats.duration_s());

  if (auto r = store(argv[2], *out_fmt, *records); !r.ok()) {
    std::fprintf(stderr, "write error: %s\n", r.error().message.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", argv[2]);
  return 0;
}
