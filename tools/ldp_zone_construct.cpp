// ldp-zone-construct: the §2.3 zone constructor as a command-line tool.
// Reads a pcap (or .ldpb) capture of the responses seen at a recursive
// server's upstream interface and writes one master-format zone file per
// reconstructed zone, plus a views.conf describing the split-horizon view
// set for the meta-DNS-server.
//
//   ldp-zone-construct <capture.pcap|capture.ldpb>... <output-dir>
//
// Several captures may be given; their response data is merged before zone
// construction (§2.3: "Optionally we can also merge the intermediate zone
// files of multiple traces"), first-answer-wins across all of them.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/binary.hpp"
#include "trace/pcap.hpp"
#include "zone/parser.hpp"
#include "zonecut/constructor.hpp"

using namespace ldp;

namespace {

std::string zone_filename(const dns::Name& origin) {
  if (origin.is_root()) return "root.zone";
  std::string s = origin.to_string();  // "example.com."
  s.pop_back();
  return s + ".zone";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <capture.pcap|capture.ldpb>... <output-dir>\n", argv[0]);
    return 2;
  }
  std::filesystem::path out_dir = argv[argc - 1];

  std::vector<trace::TraceRecord> records;
  for (int i = 1; i + 1 < argc; ++i) {
    std::string in = argv[i];
    std::vector<trace::TraceRecord> part;
    if (in.size() > 5 && in.substr(in.size() - 5) == ".ldpb") {
      auto reader = trace::BinaryReader::open(in);
      if (!reader.ok()) {
        std::fprintf(stderr, "%s\n", reader.error().message.c_str());
        return 1;
      }
      auto all = reader->read_all();
      if (!all.ok()) {
        std::fprintf(stderr, "%s\n", all.error().message.c_str());
        return 1;
      }
      part = std::move(*all);
    } else {
      auto reader = trace::PcapReader::open(in);
      if (!reader.ok()) {
        std::fprintf(stderr, "%s\n", reader.error().message.c_str());
        return 1;
      }
      auto all = reader->read_all();
      if (!all.ok()) {
        std::fprintf(stderr, "%s\n", all.error().message.c_str());
        return 1;
      }
      part = std::move(*all);
    }
    std::fprintf(stderr, "loaded %zu records from %s\n", part.size(), in.c_str());
    records.insert(records.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }

  auto built = zonecut::build_zones(records);
  if (!built.ok()) {
    std::fprintf(stderr, "zone construction failed: %s\n",
                 built.error().message.c_str());
    return 1;
  }
  const auto& report = built->report;
  std::fprintf(stderr,
               "scanned %zu responses (%zu undecodable); harvested %zu records,"
               " %zu conflicts resolved first-wins; built %zu zones"
               " (%zu fake SOAs)\n",
               report.responses_scanned, report.undecodable, report.records_harvested,
               report.conflicts_first_wins, report.zones_built, report.fake_soas);

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  std::ofstream views(out_dir / "views.conf");
  views << "# split-horizon view set for the meta-DNS-server (§2.4)\n"
        << "# view <zone-file> matched by <nameserver public addresses>\n";
  for (const auto& [origin, servers] : built->zone_servers) {
    const zone::Zone* z = built->zones.find_exact(origin);
    if (z == nullptr) continue;
    std::string fname = zone_filename(origin);
    std::ofstream zf(out_dir / fname);
    zf << zone::print_zone(*z);
    views << "view " << fname << " match-clients";
    for (const auto& addr : servers) views << " " << addr.to_string();
    views << "\n";
    std::fprintf(stderr, "  %-28s %5zu records -> %s\n", origin.to_string().c_str(),
                 z->record_count(), fname.c_str());
  }
  std::fprintf(stderr, "wrote %zu zone files + views.conf under %s\n",
               report.zones_built, out_dir.c_str());
  return 0;
}
