// ldp-replay: the distributed query engine as a command-line tool.
//
//   ldp-replay [options] <trace.pcap|trace.txt|trace.ldpb> <server-ip> <port>
//
//   --fast                 ignore trace timing, replay as fast as possible
//   --distributors N       distribution fan-out (default 1)
//   --queriers N           queriers per distributor (default 2)
//   --shards N             run N source-partitioned worker pools on a
//                          shared replay clock (multi-core replay; 1-64)
//   --transport udp|tcp|tls  override every query's transport (§5.2 what-if)
//   --dnssec               set the DO bit on every query (§5.1 what-if)
//   --prefix LABEL         prepend LABEL to every qname (replay matching)
//   --scale F              multiply inter-arrival gaps by F (0.5 = 2x rate)
//   --fault SPEC           impair the query path, e.g.
//                          loss:0.05,reorder:0.01,seed:42 (see ldp::fault)
//   --checkpoint FILE      periodically snapshot replay state to FILE
//   --checkpoint-interval S  seconds between snapshots (default 1)
//   --resume               continue from the --checkpoint file instead of
//                          starting over (counters carry across the kill)
//   --scalar-io            one syscall per UDP datagram instead of the
//                          batched sendmmsg/recvmmsg hot path (A/B runs)
//   --overload block|drop-oldest|clamp  full-queue policy (default block)
//   --shed-grace MS        how long a push waits before shedding (default 5)
//   --no-supervise         disable the heartbeat supervisor
//   --heartbeat-timeout S  declare a querier dead after S stale seconds
//
// Prints an EngineReport summary plus latency and timing-error quantiles.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "mutate/mutator.hpp"
#include "replay/checkpoint.hpp"
#include "replay/engine.hpp"
#include "trace/binary.hpp"
#include "trace/pcap.hpp"
#include "trace/text.hpp"
#include "util/stats.hpp"

using namespace ldp;

namespace {

Result<std::vector<trace::TraceRecord>> load_trace(const std::string& path) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".ldpb") {
    auto reader = LDP_TRY(trace::BinaryReader::open(path));
    return reader.read_all();
  }
  if (path.size() > 4 && path.substr(path.size() - 4) == ".txt") {
    std::ifstream in(path);
    if (!in) return Err("cannot open " + path);
    std::stringstream ss;
    ss << in.rdbuf();
    return trace::trace_from_text(ss.str());
  }
  auto reader = LDP_TRY(trace::PcapReader::open(path));
  return reader.read_all();
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--fast] [--distributors N] [--queriers N] [--shards N]\n"
               "          [--transport udp|tcp|tls] [--dnssec] [--prefix LABEL]\n"
               "          [--scale F] [--fault SPEC] [--scalar-io]\n"
               "          [--checkpoint FILE [--checkpoint-interval S] [--resume]]\n"
               "          [--overload block|drop-oldest|clamp] [--shed-grace MS]\n"
               "          [--no-supervise] [--heartbeat-timeout S]\n"
               "          <trace.{pcap,txt,ldpb}> <server-ip> <port>\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  replay::EngineConfig cfg;
  mutate::MutatorPipeline mutator;
  bool has_mutations = false;
  bool resume = false;

  int arg = 1;
  for (; arg < argc && std::strncmp(argv[arg], "--", 2) == 0; ++arg) {
    std::string opt = argv[arg];
    auto need_value = [&]() -> const char* {
      if (arg + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", opt.c_str());
        std::exit(2);
      }
      return argv[++arg];
    };
    if (opt == "--fast") {
      cfg.timed = false;
    } else if (opt == "--distributors") {
      cfg.distributors = std::strtoul(need_value(), nullptr, 10);
    } else if (opt == "--queriers") {
      cfg.queriers_per_distributor = std::strtoul(need_value(), nullptr, 10);
    } else if (opt == "--shards") {
      // Strict, same spelling as ldp-server: plain digits, 1..64.
      std::string v = need_value();
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "--shards wants a plain integer, got '%s'\n",
                     v.c_str());
        return 2;
      }
      unsigned long n = std::strtoul(v.c_str(), nullptr, 10);
      if (n < 1 || n > 64) {
        std::fprintf(stderr, "--shards must be between 1 and 64, got %s\n",
                     v.c_str());
        return 2;
      }
      cfg.shards = n;
    } else if (opt == "--transport") {
      auto t = transport_from_string(need_value());
      if (!t.ok()) {
        std::fprintf(stderr, "%s\n", t.error().message.c_str());
        return 2;
      }
      mutator.force_transport(*t);
      has_mutations = true;
    } else if (opt == "--dnssec") {
      mutator.enable_dnssec(4096);
      has_mutations = true;
    } else if (opt == "--prefix") {
      mutator.prefix_qnames(need_value());
      has_mutations = true;
    } else if (opt == "--scale") {
      mutator.scale_time(std::strtod(need_value(), nullptr));
      has_mutations = true;
    } else if (opt == "--fault") {
      auto spec = fault::parse_fault_spec(need_value());
      if (!spec.ok()) {
        std::fprintf(stderr, "bad --fault spec: %s\n", spec.error().message.c_str());
        return 2;
      }
      cfg.fault = *spec;
    } else if (opt == "--scalar-io") {
      cfg.batched_io = false;
    } else if (opt == "--checkpoint") {
      cfg.checkpoint_path = need_value();
    } else if (opt == "--checkpoint-interval") {
      cfg.checkpoint_interval =
          static_cast<TimeNs>(std::strtod(need_value(), nullptr) * kSecond);
    } else if (opt == "--resume") {
      resume = true;
    } else if (opt == "--overload") {
      std::string policy = need_value();
      if (policy == "block") {
        cfg.overload = replay::OverloadPolicy::Block;
      } else if (policy == "drop-oldest") {
        cfg.overload = replay::OverloadPolicy::DropOldest;
      } else if (policy == "clamp") {
        cfg.overload = replay::OverloadPolicy::ClampRate;
      } else {
        std::fprintf(stderr, "unknown --overload policy: %s\n", policy.c_str());
        return 2;
      }
    } else if (opt == "--shed-grace") {
      cfg.shed_grace =
          static_cast<TimeNs>(std::strtod(need_value(), nullptr) * kMilli);
    } else if (opt == "--no-supervise") {
      cfg.supervise = false;
    } else if (opt == "--heartbeat-timeout") {
      cfg.heartbeat_timeout =
          static_cast<TimeNs>(std::strtod(need_value(), nullptr) * kSecond);
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (argc - arg != 3) {
    usage(argv[0]);
    return 2;
  }

  auto records = load_trace(argv[arg]);
  if (!records.ok()) {
    std::fprintf(stderr, "trace load failed: %s\n", records.error().message.c_str());
    return 1;
  }
  auto server_ip = IpAddr::parse(argv[arg + 1]);
  if (!server_ip.ok()) {
    std::fprintf(stderr, "%s\n", server_ip.error().message.c_str());
    return 2;
  }
  cfg.server = Endpoint{*server_ip, static_cast<uint16_t>(
                                        std::strtoul(argv[arg + 2], nullptr, 10))};

  if (has_mutations) {
    size_t malformed = 0;
    *records = mutator.apply_all(std::move(*records), &malformed);
    if (malformed > 0)
      std::fprintf(stderr, "note: dropped %zu undecodable records\n", malformed);
  }
  replay::CheckpointState resume_state;
  if (resume) {
    if (cfg.checkpoint_path.empty()) {
      std::fprintf(stderr, "--resume needs --checkpoint FILE\n");
      return 2;
    }
    auto loaded = replay::load_checkpoint(cfg.checkpoint_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "resume failed: %s\n", loaded.error().message.c_str());
      return 1;
    }
    resume_state = std::move(*loaded);
    cfg.resume = &resume_state;
    std::fprintf(stderr,
                 "resuming from %s: %llu of %llu queries already sent, "
                 "%zu in flight\n",
                 cfg.checkpoint_path.c_str(),
                 static_cast<unsigned long long>(resume_state.partial.queries_sent),
                 static_cast<unsigned long long>(resume_state.trace_queries),
                 resume_state.pending.size());
  }
  if (cfg.shards > 1)
    std::fprintf(stderr, "shards: %zu source-partitioned worker pools\n",
                 cfg.shards);
  std::fprintf(stderr, "replaying %zu queries to %s (%s mode)...\n", records->size(),
               cfg.server.to_string().c_str(), cfg.timed ? "timed" : "fast");

  replay::QueryEngine engine(cfg);
  auto report = engine.replay(*records);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", report.error().message.c_str());
    return 1;
  }

  std::printf("queries sent:       %llu\n",
              static_cast<unsigned long long>(report->queries_sent));
  std::printf("responses received: %llu (%.2f%%)\n",
              static_cast<unsigned long long>(report->responses_received),
              report->queries_sent > 0
                  ? 100.0 * static_cast<double>(report->responses_received) /
                        static_cast<double>(report->queries_sent)
                  : 0.0);
  std::printf("send errors:        %llu\n",
              static_cast<unsigned long long>(report->send_errors));
  std::printf("connections opened: %llu\n",
              static_cast<unsigned long long>(report->connections_opened));
  const auto& lc = report->lifecycle;
  std::printf("timeouts:           %llu (retries %llu, answered after retry %llu)\n",
              static_cast<unsigned long long>(lc.timeouts),
              static_cast<unsigned long long>(lc.retries),
              static_cast<unsigned long long>(lc.answered_after_retry));
  std::printf("lost (expired):     %llu\n",
              static_cast<unsigned long long>(lc.expired));
  if (lc.duplicate_ids + lc.tcp_reconnects + lc.unmatched_responses +
          lc.deferred_sends + lc.socket_errors >
      0) {
    std::printf(
        "anomalies:          dup-ids %llu  tcp-reconnects %llu  unmatched %llu"
        "  deferred-sends %llu  socket-errors %llu\n",
        static_cast<unsigned long long>(lc.duplicate_ids),
        static_cast<unsigned long long>(lc.tcp_reconnects),
        static_cast<unsigned long long>(lc.unmatched_responses),
        static_cast<unsigned long long>(lc.deferred_sends),
        static_cast<unsigned long long>(lc.socket_errors));
  }
  if (cfg.fault.has_value())
    std::printf("impairments:        %s\n", report->impairments.summary().c_str());
  if (report->querier_failures + report->sources_reassigned +
          report->shed_queries + report->clamp_stall_ns + lc.adopted_resends >
      0) {
    std::printf(
        "self-healing:       querier-failures %llu  sources-reassigned %llu"
        "  adopted-resends %llu  shed %llu  clamp-stall %.3f s\n",
        static_cast<unsigned long long>(report->querier_failures),
        static_cast<unsigned long long>(report->sources_reassigned),
        static_cast<unsigned long long>(lc.adopted_resends),
        static_cast<unsigned long long>(report->shed_queries),
        ns_to_sec(static_cast<TimeNs>(report->clamp_stall_ns)));
  }
  std::printf("queue high water:   %llu\n",
              static_cast<unsigned long long>(report->queue_hwm));
  std::printf("max in flight:      %llu\n",
              static_cast<unsigned long long>(report->max_in_flight));
  std::printf("duration:           %.3f s (%.0f q/s)\n", report->duration_s(),
              report->rate_qps());
  if (!report->latency_hist.empty())
    std::printf("latency histogram:  %s\n", report->latency_hist.summary_ms().c_str());

  Sampler latency_ms, error_ms;
  TimeNs t0 = records->front().timestamp;
  for (const auto& sr : report->sends) {
    if (sr.latency >= 0) latency_ms.add(ns_to_ms(sr.latency));
    error_ms.add(ns_to_ms((sr.send_time - report->replay_start) -
                          (sr.trace_time - t0)));
  }
  if (!latency_ms.empty()) {
    auto l = latency_ms.summary();
    std::printf("latency ms:         median %.2f  q1 %.2f  q3 %.2f  p95 %.2f\n",
                l.median, l.q1, l.q3, l.p95);
  }
  if (cfg.timed) {
    auto e = error_ms.summary();
    std::printf("timing error ms:    median %.2f  q1 %.2f  q3 %.2f  min %.2f  max %.2f\n",
                e.median, e.q1, e.q3, e.min, e.max);
  }
  return 0;
}
