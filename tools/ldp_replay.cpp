// ldp-replay: the distributed query engine as a command-line tool.
//
//   ldp-replay [options] <trace.pcap|trace.txt|trace.ldpb> <server-ip> <port>
//
//   --fast                 ignore trace timing, replay as fast as possible
//   --distributors N       distribution fan-out (default 1)
//   --queriers N           queriers per distributor (default 2)
//   --shards N             run N source-partitioned worker pools on a
//                          shared replay clock (multi-core replay; 1-64)
//   --workers N            distributed mode: fork N ldp-worker processes,
//                          barrier-synchronize their start, supervise and
//                          respawn crashed workers from their checkpoints
//   --worker-bin PATH      ldp-worker executable (default: next to ldp-replay)
//   --respawn N            respawns per worker before the controller takes
//                          the slice over in-process (default 2)
//   --kill-worker I        test knob: SIGKILL worker I once mid-replay
//   --kill-after S         seconds past the barrier start for --kill-worker
//   --transport udp|tcp|tls  override every query's transport (§5.2 what-if)
//   --dnssec               set the DO bit on every query (§5.1 what-if)
//   --prefix LABEL         prepend LABEL to every qname (replay matching)
//   --scale F              multiply inter-arrival gaps by F (0.5 = 2x rate)
//   --fault SPEC           impair the query path, e.g.
//                          loss:0.05,reorder:0.01,seed:42 (see ldp::fault)
//   --checkpoint FILE      periodically snapshot replay state to FILE
//   --checkpoint-interval S  seconds between snapshots (default 1)
//   --resume               continue from the --checkpoint file instead of
//                          starting over (counters carry across the kill)
//   --scalar-io            one syscall per UDP datagram instead of the
//                          batched sendmmsg/recvmmsg hot path (A/B runs)
//   --overload block|drop-oldest|clamp  full-queue policy (default block)
//   --shed-grace MS        how long a push waits before shedding (default 5)
//   --no-supervise         disable the heartbeat supervisor
//   --heartbeat-timeout S  declare a querier dead after S stale seconds
//
// Prints an EngineReport summary plus latency and timing-error quantiles.
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "mutate/mutator.hpp"
#include "replay/checkpoint.hpp"
#include "replay/dist/controller.hpp"
#include "replay/engine.hpp"
#include "trace/load.hpp"
#include "util/stats.hpp"

using namespace ldp;

namespace {

/// Default --worker-bin: the ldp-worker sitting next to this executable.
std::string sibling_worker_bin() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "ldp-worker";
  std::string self(buf, static_cast<size_t>(n));
  auto slash = self.rfind('/');
  if (slash == std::string::npos) return "ldp-worker";
  return self.substr(0, slash + 1) + "ldp-worker";
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--fast] [--distributors N] [--queriers N] [--shards N]\n"
               "          [--workers N [--worker-bin PATH] [--respawn N]\n"
               "           [--kill-worker I] [--kill-after S]]\n"
               "          [--transport udp|tcp|tls] [--dnssec] [--prefix LABEL]\n"
               "          [--scale F] [--fault SPEC] [--scalar-io]\n"
               "          [--checkpoint FILE [--checkpoint-interval S] [--resume]]\n"
               "          [--overload block|drop-oldest|clamp] [--shed-grace MS]\n"
               "          [--no-supervise] [--heartbeat-timeout S]\n"
               "          <trace.{pcap,txt,ldpb}> <server-ip> <port>\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  replay::EngineConfig cfg;
  mutate::MutatorPipeline mutator;
  bool has_mutations = false;
  bool resume = false;
  size_t workers = 0;  // 0 = single-process mode
  replay::dist::DistConfig dist;
  std::string fault_spec_raw;  // forwarded verbatim to dist workers

  int arg = 1;
  for (; arg < argc && std::strncmp(argv[arg], "--", 2) == 0; ++arg) {
    std::string opt = argv[arg];
    auto need_value = [&]() -> const char* {
      if (arg + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", opt.c_str());
        std::exit(2);
      }
      return argv[++arg];
    };
    if (opt == "--fast") {
      cfg.timed = false;
    } else if (opt == "--distributors") {
      cfg.distributors = std::strtoul(need_value(), nullptr, 10);
    } else if (opt == "--queriers") {
      cfg.queriers_per_distributor = std::strtoul(need_value(), nullptr, 10);
    } else if (opt == "--shards") {
      // Strict, same spelling as ldp-server: plain digits, 1..64.
      std::string v = need_value();
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "--shards wants a plain integer, got '%s'\n",
                     v.c_str());
        return 2;
      }
      unsigned long n = std::strtoul(v.c_str(), nullptr, 10);
      if (n < 1 || n > 64) {
        std::fprintf(stderr, "--shards must be between 1 and 64, got %s\n",
                     v.c_str());
        return 2;
      }
      cfg.shards = n;
    } else if (opt == "--workers") {
      // Same strict spelling as --shards: plain digits, 1..64.
      std::string v = need_value();
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "--workers wants a plain integer, got '%s'\n",
                     v.c_str());
        return 2;
      }
      unsigned long n = std::strtoul(v.c_str(), nullptr, 10);
      if (n < 1 || n > 64) {
        std::fprintf(stderr, "--workers must be between 1 and 64, got %s\n",
                     v.c_str());
        return 2;
      }
      workers = n;
    } else if (opt == "--worker-bin") {
      dist.worker_bin = need_value();
    } else if (opt == "--respawn") {
      std::string v = need_value();
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "--respawn wants a plain integer, got '%s'\n",
                     v.c_str());
        return 2;
      }
      dist.respawn_budget = static_cast<uint32_t>(
          std::strtoul(v.c_str(), nullptr, 10));
    } else if (opt == "--kill-worker") {
      dist.kill_worker = std::strtol(need_value(), nullptr, 10);
    } else if (opt == "--kill-after") {
      dist.kill_after =
          static_cast<TimeNs>(std::strtod(need_value(), nullptr) * kSecond);
    } else if (opt == "--transport") {
      auto t = transport_from_string(need_value());
      if (!t.ok()) {
        std::fprintf(stderr, "%s\n", t.error().message.c_str());
        return 2;
      }
      mutator.force_transport(*t);
      has_mutations = true;
    } else if (opt == "--dnssec") {
      mutator.enable_dnssec(4096);
      has_mutations = true;
    } else if (opt == "--prefix") {
      mutator.prefix_qnames(need_value());
      has_mutations = true;
    } else if (opt == "--scale") {
      mutator.scale_time(std::strtod(need_value(), nullptr));
      has_mutations = true;
    } else if (opt == "--fault") {
      fault_spec_raw = need_value();
      auto spec = fault::parse_fault_spec(fault_spec_raw);
      if (!spec.ok()) {
        std::fprintf(stderr, "bad --fault spec: %s\n", spec.error().message.c_str());
        return 2;
      }
      cfg.fault = *spec;
    } else if (opt == "--scalar-io") {
      cfg.batched_io = false;
    } else if (opt == "--checkpoint") {
      cfg.checkpoint_path = need_value();
    } else if (opt == "--checkpoint-interval") {
      cfg.checkpoint_interval =
          static_cast<TimeNs>(std::strtod(need_value(), nullptr) * kSecond);
    } else if (opt == "--resume") {
      resume = true;
    } else if (opt == "--overload") {
      std::string policy = need_value();
      if (policy == "block") {
        cfg.overload = replay::OverloadPolicy::Block;
      } else if (policy == "drop-oldest") {
        cfg.overload = replay::OverloadPolicy::DropOldest;
      } else if (policy == "clamp") {
        cfg.overload = replay::OverloadPolicy::ClampRate;
      } else {
        std::fprintf(stderr, "unknown --overload policy: %s\n", policy.c_str());
        return 2;
      }
    } else if (opt == "--shed-grace") {
      cfg.shed_grace =
          static_cast<TimeNs>(std::strtod(need_value(), nullptr) * kMilli);
    } else if (opt == "--no-supervise") {
      cfg.supervise = false;
    } else if (opt == "--heartbeat-timeout") {
      cfg.heartbeat_timeout =
          static_cast<TimeNs>(std::strtod(need_value(), nullptr) * kSecond);
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (argc - arg != 3) {
    usage(argv[0]);
    return 2;
  }

  auto records = trace::load_trace_file(argv[arg]);
  if (!records.ok()) {
    std::fprintf(stderr, "trace load failed: %s\n", records.error().message.c_str());
    return 1;
  }
  auto server_ip = IpAddr::parse(argv[arg + 1]);
  if (!server_ip.ok()) {
    std::fprintf(stderr, "%s\n", server_ip.error().message.c_str());
    return 2;
  }
  cfg.server = Endpoint{*server_ip, static_cast<uint16_t>(
                                        std::strtoul(argv[arg + 2], nullptr, 10))};

  if (workers > 0 && (has_mutations || cfg.shards > 1 ||
                      !cfg.checkpoint_path.empty() || resume)) {
    // Workers slice the trace themselves and own their checkpoints; live
    // mutation / sharding / file checkpoints belong to single-process mode.
    std::fprintf(stderr,
                 "--workers is incompatible with mutator flags, --shards, "
                 "--checkpoint and --resume\n");
    return 2;
  }
  if (workers == 0 &&
      (dist.kill_worker >= 0 || !dist.worker_bin.empty())) {
    std::fprintf(stderr, "--worker-bin/--kill-worker need --workers N\n");
    return 2;
  }

  if (has_mutations) {
    size_t malformed = 0;
    *records = mutator.apply_all(std::move(*records), &malformed);
    if (malformed > 0)
      std::fprintf(stderr, "note: dropped %zu undecodable records\n", malformed);
  }
  replay::CheckpointState resume_state;
  std::vector<replay::CheckpointState> shard_states;
  if (resume) {
    if (cfg.checkpoint_path.empty()) {
      std::fprintf(stderr, "--resume needs --checkpoint FILE\n");
      return 2;
    }
    if (cfg.shards > 1) {
      auto loaded =
          replay::load_sharded_checkpoints(cfg.checkpoint_path, cfg.shards);
      if (!loaded.ok()) {
        std::fprintf(stderr, "resume failed: %s\n",
                     loaded.error().message.c_str());
        return 1;
      }
      shard_states = std::move(*loaded);
      cfg.resume_shards = &shard_states;
      unsigned long long sent = 0, in_flight = 0;
      for (const auto& st : shard_states) {
        sent += st.partial.queries_sent;
        in_flight += st.pending.size();
      }
      std::fprintf(stderr,
                   "resuming from %s.shard*: %llu queries already sent "
                   "across %zu shards, %llu in flight\n",
                   cfg.checkpoint_path.c_str(), sent, cfg.shards, in_flight);
    } else {
      auto loaded = replay::load_checkpoint(cfg.checkpoint_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "resume failed: %s\n", loaded.error().message.c_str());
        return 1;
      }
      resume_state = std::move(*loaded);
      cfg.resume = &resume_state;
      std::fprintf(stderr,
                   "resuming from %s: %llu of %llu queries already sent, "
                   "%zu in flight\n",
                   cfg.checkpoint_path.c_str(),
                   static_cast<unsigned long long>(resume_state.partial.queries_sent),
                   static_cast<unsigned long long>(resume_state.trace_queries),
                   resume_state.pending.size());
    }
  }
  if (cfg.shards > 1)
    std::fprintf(stderr, "shards: %zu source-partitioned worker pools\n",
                 cfg.shards);
  if (workers > 0)
    std::fprintf(stderr, "workers: %zu replay processes\n", workers);
  std::fprintf(stderr, "replaying %zu queries to %s (%s mode)...\n", records->size(),
               cfg.server.to_string().c_str(), cfg.timed ? "timed" : "fast");

  replay::EngineReport rep;
  TimeNs max_abs_misalign = 0;
  bool any_misalign = false;
  if (workers > 0) {
    dist.workers = workers;
    if (dist.worker_bin.empty()) dist.worker_bin = sibling_worker_bin();
    dist.trace_path = argv[arg];
    dist.server = cfg.server;
    dist.timed = cfg.timed;
    dist.batched_io = cfg.batched_io;
    dist.distributors = cfg.distributors;
    dist.queriers_per_distributor = cfg.queriers_per_distributor;
    dist.fault_spec = fault_spec_raw;
    dist.checkpoint_interval = cfg.checkpoint_interval;
    auto dr = replay::dist::run_distributed(dist);
    if (!dr.ok()) {
      std::fprintf(stderr, "distributed replay failed: %s\n",
                   dr.error().message.c_str());
      return 1;
    }
    rep = std::move(dr->report);
    max_abs_misalign = dr->max_abs_misalign;
    any_misalign = dr->any_misalign;
  } else {
    replay::QueryEngine engine(cfg);
    auto report = engine.replay(*records);
    if (!report.ok()) {
      std::fprintf(stderr, "replay failed: %s\n", report.error().message.c_str());
      return 1;
    }
    rep = std::move(*report);
  }

  std::printf("queries sent:       %llu\n",
              static_cast<unsigned long long>(rep.queries_sent));
  std::printf("responses received: %llu (%.2f%%)\n",
              static_cast<unsigned long long>(rep.responses_received),
              rep.queries_sent > 0
                  ? 100.0 * static_cast<double>(rep.responses_received) /
                        static_cast<double>(rep.queries_sent)
                  : 0.0);
  std::printf("send errors:        %llu\n",
              static_cast<unsigned long long>(rep.send_errors));
  std::printf("connections opened: %llu\n",
              static_cast<unsigned long long>(rep.connections_opened));
  const auto& lc = rep.lifecycle;
  std::printf("timeouts:           %llu (retries %llu, answered after retry %llu)\n",
              static_cast<unsigned long long>(lc.timeouts),
              static_cast<unsigned long long>(lc.retries),
              static_cast<unsigned long long>(lc.answered_after_retry));
  std::printf("lost (expired):     %llu\n",
              static_cast<unsigned long long>(lc.expired));
  if (lc.duplicate_ids + lc.tcp_reconnects + lc.unmatched_responses +
          lc.deferred_sends + lc.socket_errors >
      0) {
    std::printf(
        "anomalies:          dup-ids %llu  tcp-reconnects %llu  unmatched %llu"
        "  deferred-sends %llu  socket-errors %llu\n",
        static_cast<unsigned long long>(lc.duplicate_ids),
        static_cast<unsigned long long>(lc.tcp_reconnects),
        static_cast<unsigned long long>(lc.unmatched_responses),
        static_cast<unsigned long long>(lc.deferred_sends),
        static_cast<unsigned long long>(lc.socket_errors));
  }
  if (cfg.fault.has_value())
    std::printf("impairments:        %s\n", rep.impairments.summary().c_str());
  if (rep.querier_failures + rep.sources_reassigned +
          rep.shed_queries + rep.clamp_stall_ns + lc.adopted_resends >
      0) {
    std::printf(
        "self-healing:       querier-failures %llu  sources-reassigned %llu"
        "  adopted-resends %llu  shed %llu  clamp-stall %.3f s\n",
        static_cast<unsigned long long>(rep.querier_failures),
        static_cast<unsigned long long>(rep.sources_reassigned),
        static_cast<unsigned long long>(lc.adopted_resends),
        static_cast<unsigned long long>(rep.shed_queries),
        ns_to_sec(static_cast<TimeNs>(rep.clamp_stall_ns)));
  }
  std::printf("queue high water:   %llu\n",
              static_cast<unsigned long long>(rep.queue_hwm));
  std::printf("max in flight:      %llu\n",
              static_cast<unsigned long long>(rep.max_in_flight));
  if (workers > 0) {
    std::printf("worker crashes:     %llu (respawned %llu)\n",
                static_cast<unsigned long long>(rep.worker_crashes),
                static_cast<unsigned long long>(rep.workers_respawned));
    std::printf("max clock drift:    %.3f ms\n",
                static_cast<double>(rep.max_drift_ns) / 1e6);
    if (any_misalign)
      std::printf("start misalign:     %.3f ms max\n",
                  static_cast<double>(max_abs_misalign) / 1e6);
  }
  std::printf("duration:           %.3f s (%.0f q/s)\n", rep.duration_s(),
              rep.rate_qps());
  if (!rep.latency_hist.empty())
    std::printf("latency histogram:  %s\n", rep.latency_hist.summary_ms().c_str());

  Sampler latency_ms, error_ms;
  TimeNs t0 = records->front().timestamp;
  for (const auto& sr : rep.sends) {
    if (sr.latency >= 0) latency_ms.add(ns_to_ms(sr.latency));
    error_ms.add(ns_to_ms((sr.send_time - rep.replay_start) -
                          (sr.trace_time - t0)));
  }
  if (!latency_ms.empty()) {
    auto l = latency_ms.summary();
    std::printf("latency ms:         median %.2f  q1 %.2f  q3 %.2f  p95 %.2f\n",
                l.median, l.q1, l.q3, l.p95);
  }
  if (cfg.timed) {
    auto e = error_ms.summary();
    std::printf("timing error ms:    median %.2f  q1 %.2f  q3 %.2f  min %.2f  max %.2f\n",
                e.median, e.q1, e.q3, e.min, e.max);
  }
  return 0;
}
