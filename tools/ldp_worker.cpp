// ldp-worker: one querier worker process of a distributed replay. Spawned
// by `ldp-replay --workers N` (which passes the control-channel endpoint and
// the worker's index); running it by hand is only useful for debugging the
// control protocol.
//
//   ldp-worker --connect IP PORT --index N [--skew-ns NS] <trace>
//
//   --connect IP PORT   controller's control-channel listener
//   --index N           which slice of the source partition to replay
//   --skew-ns NS        simulate a clock skewed by NS ns (drift tests)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "replay/dist/worker.hpp"

using namespace ldp;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect IP PORT --index N [--skew-ns NS] "
               "<trace.{pcap,txt,ldpb}>\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  replay::dist::WorkerOptions opts;
  std::string ip;
  uint16_t port = 0;
  bool have_connect = false;
  bool have_index = false;

  int arg = 1;
  for (; arg < argc && std::strncmp(argv[arg], "--", 2) == 0; ++arg) {
    std::string opt = argv[arg];
    auto need_value = [&]() -> const char* {
      if (arg + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", opt.c_str());
        std::exit(2);
      }
      return argv[++arg];
    };
    if (opt == "--connect") {
      ip = need_value();
      port = static_cast<uint16_t>(std::strtoul(need_value(), nullptr, 10));
      have_connect = true;
    } else if (opt == "--index") {
      opts.index = std::strtol(need_value(), nullptr, 10);
      have_index = true;
    } else if (opt == "--skew-ns") {
      opts.skew = std::strtoll(need_value(), nullptr, 10);
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (!have_connect || !have_index || opts.index < 0 || argc - arg != 1) {
    usage(argv[0]);
    return 2;
  }
  auto addr = IpAddr::parse(ip);
  if (!addr.ok()) {
    std::fprintf(stderr, "bad --connect address: %s\n",
                 addr.error().message.c_str());
    return 2;
  }
  opts.controller = Endpoint{*addr, port};
  opts.trace_path = argv[arg];
  return replay::dist::run_worker(opts);
}
