// ldp-server: the meta-DNS-server as a command-line tool. Loads one or more
// zone files (and optionally a views.conf written by ldp-zone-construct)
// and serves them over UDP+TCP until interrupted.
//
//   ldp-server [--port N] [--timeout SECONDS] [--views views.conf]
//              [--fault SPEC] [--limits SPEC] [--overload SPEC]
//              [--scalar-io] [--cache N] [--shards N] <zone>...
//
// --scalar-io disables the batched UDP path (one syscall per datagram) and
// --cache N sizes the response template cache (0 disables it); both exist
// for before/after measurement against the defaults.
//
// --shards N serves from N SO_REUSEPORT frontends, one event loop thread
// each (multi-core serving; connection/cache/impairment books are
// shard-local and merged into the exit summary). N must be 1..64; 1 is
// the classic single-loop path.
//
// --fault impairs the reply path (egress), e.g. loss:0.05,seed:42 — see
// ldp::fault for the full spec mini-language.
//
// --limits hardens the frontend (admission control + slow-client defense),
// e.g. max-conns:64,quota:4,read-deadline:2s,max-partial:4096; --overload
// sets the degradation policy, e.g. policy:refuse,high:48,low:32 — see
// server/limits.hpp. Both use the same strict key:value mini-language as
// --fault (unknown keys are errors).
//
// Without --views every zone lands in one catch-all view (a plain
// authoritative server); with it, the split-horizon view set from the zone
// constructor is recreated so the server can impersonate every nameserver
// in a trace (§2.4).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "server/sharded_frontend.hpp"
#include "util/strings.hpp"
#include "zone/parser.hpp"

using namespace ldp;

namespace {

net::EventLoop* g_loop = nullptr;
server::ShardedServer* g_sharded = nullptr;

void handle_signal(int) {
  if (g_loop != nullptr) g_loop->stop();
  if (g_sharded != nullptr) g_sharded->request_stop();
}

// Strict --shards parser, shared spelling with ldp-replay: every character
// a digit, value in [1, 64]. Anything else is a usage error (exit 2).
Result<size_t> parse_shards(const char* text) {
  std::string s = text;
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    return Err("--shards wants a plain integer, got '" + s + "'");
  unsigned long v = std::strtoul(s.c_str(), nullptr, 10);
  if (v < 1 || v > 64)
    return Err("--shards must be between 1 and 64, got " + s);
  return static_cast<size_t>(v);
}

Result<zone::Zone> load_zone_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Err("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return zone::parse_zone(ss.str());
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 5353;
  TimeNs timeout = 20 * kSecond;
  std::string views_path;
  std::vector<std::string> zone_paths;
  std::optional<fault::FaultSpec> fault_spec;
  server::LimitsConfig limits;
  server::OverloadConfig overload;
  bool scalar_io = false;
  std::optional<size_t> cache_entries;
  size_t shards = 1;

  for (int i = 1; i < argc; ++i) {
    std::string opt = argv[i];
    if (opt == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (opt == "--timeout" && i + 1 < argc) {
      timeout = static_cast<TimeNs>(std::strtoul(argv[++i], nullptr, 10)) * kSecond;
    } else if (opt == "--views" && i + 1 < argc) {
      views_path = argv[++i];
    } else if (opt == "--fault" && i + 1 < argc) {
      auto spec = fault::parse_fault_spec(argv[++i]);
      if (!spec.ok()) {
        std::fprintf(stderr, "bad --fault spec: %s\n", spec.error().message.c_str());
        return 2;
      }
      fault_spec = *spec;
    } else if (opt == "--limits" && i + 1 < argc) {
      auto spec = server::parse_limits_spec(argv[++i]);
      if (!spec.ok()) {
        std::fprintf(stderr, "bad --limits spec: %s\n", spec.error().message.c_str());
        return 2;
      }
      limits = *spec;
    } else if (opt == "--overload" && i + 1 < argc) {
      auto spec = server::parse_overload_spec(argv[++i]);
      if (!spec.ok()) {
        std::fprintf(stderr, "bad --overload spec: %s\n", spec.error().message.c_str());
        return 2;
      }
      overload = *spec;
    } else if (opt == "--scalar-io") {
      scalar_io = true;
    } else if (opt == "--cache" && i + 1 < argc) {
      cache_entries = std::strtoul(argv[++i], nullptr, 10);
    } else if (opt == "--shards" && i + 1 < argc) {
      auto n = parse_shards(argv[++i]);
      if (!n.ok()) {
        std::fprintf(stderr, "bad --shards: %s\n", n.error().message.c_str());
        return 2;
      }
      shards = *n;
    } else if (opt.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--timeout SECONDS] [--views views.conf]"
                   " [--fault SPEC] [--limits SPEC] [--overload SPEC]"
                   " [--scalar-io] [--cache N] [--shards N] <zone-file>...\n",
                   argv[0]);
      return 2;
    } else {
      zone_paths.push_back(opt);
    }
  }
  if (zone_paths.empty() && views_path.empty()) {
    std::fprintf(stderr, "no zones given\n");
    return 2;
  }

  server::AuthServer auth;

  if (!views_path.empty()) {
    // views.conf lines: "view <zone-file> match-clients <addr>..."
    std::ifstream vf(views_path);
    if (!vf) {
      std::fprintf(stderr, "cannot open %s\n", views_path.c_str());
      return 1;
    }
    auto base_dir = std::filesystem::path(views_path).parent_path();
    std::string line;
    while (std::getline(vf, line)) {
      auto stripped = trim(line);
      if (stripped.empty() || stripped[0] == '#') continue;
      auto toks = split_ws(stripped);
      if (toks.size() < 3 || toks[0] != "view" || toks[2] != "match-clients") {
        std::fprintf(stderr, "bad views.conf line: %s\n", line.c_str());
        return 1;
      }
      auto zone = load_zone_file((base_dir / std::string(toks[1])).string());
      if (!zone.ok()) {
        std::fprintf(stderr, "%s\n", zone.error().message.c_str());
        return 1;
      }
      zone::View& v = auth.views().add_view(std::string(toks[1]));
      for (size_t t = 3; t < toks.size(); ++t) {
        auto addr = IpAddr::parse(toks[t]);
        if (!addr.ok()) {
          std::fprintf(stderr, "%s\n", addr.error().message.c_str());
          return 1;
        }
        v.match_clients.insert(*addr);
      }
      std::fprintf(stderr, "view %s: zone %s, %zu client addresses\n",
                   std::string(toks[1]).c_str(), zone->origin().to_string().c_str(),
                   v.match_clients.size());
      if (auto r = v.zones.add(std::move(*zone)); !r.ok()) {
        std::fprintf(stderr, "%s\n", r.error().message.c_str());
        return 1;
      }
    }
  }

  for (const auto& path : zone_paths) {
    auto zone = load_zone_file(path);
    if (!zone.ok()) {
      std::fprintf(stderr, "%s\n", zone.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr, "zone %s: %zu records\n", zone->origin().to_string().c_str(),
                 zone->record_count());
    if (auto r = auth.default_zones().add(std::move(*zone)); !r.ok()) {
      std::fprintf(stderr, "%s\n", r.error().message.c_str());
      return 1;
    }
  }

  server::FrontendConfig fe_cfg;
  fe_cfg.bind = Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, port};
  fe_cfg.tcp_idle_timeout = timeout;
  fe_cfg.fault = fault_spec;
  fe_cfg.limits = limits;
  fe_cfg.overload = overload;
  fe_cfg.batched_udp = !scalar_io;
  if (cache_entries.has_value()) fe_cfg.response_cache_entries = *cache_entries;
  if (scalar_io || fe_cfg.response_cache_entries == 0)
    std::fprintf(stderr, "hot path: %s, template cache %zu entries\n",
                 fe_cfg.batched_udp ? "batched" : "scalar",
                 fe_cfg.response_cache_entries);
  if (fault_spec.has_value())
    std::fprintf(stderr, "reply-path impairment: %s\n",
                 fault_spec->to_string().c_str());
  if (limits.any_enabled())
    std::fprintf(stderr, "limits: %s\n", limits.to_string().c_str());
  if (overload.enabled())
    std::fprintf(stderr, "overload: %s\n", overload.to_string().c_str());

  if (shards > 1) {
    // Multi-core path: one SO_REUSEPORT frontend + event loop per shard.
    // Shard books are merged after the joins; both views are printed.
    std::fprintf(stderr, "shards: %zu (SO_REUSEPORT, one event loop per shard)\n",
                 shards);
    auto sharded = server::ShardedServer::start(std::move(auth), fe_cfg, shards);
    if (!sharded.ok()) {
      std::fprintf(stderr, "cannot start server: %s\n",
                   sharded.error().message.c_str());
      return 1;
    }
    std::fprintf(stderr, "serving on %s (UDP+TCP, %llds idle timeout); ^C to stop\n",
                 (*sharded)->endpoint().to_string().c_str(),
                 static_cast<long long>(timeout / kSecond));
    g_sharded = sharded->get();
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    (*sharded)->wait();
    const server::ShardedExitReport& report = (*sharded)->stop();
    const auto& stats = (*sharded)->auth().stats();
    std::fprintf(stderr, "served %llu queries (%llu refused, %llu nxdomain)\n",
                 static_cast<unsigned long long>(stats.queries.load()),
                 static_cast<unsigned long long>(stats.refused.load()),
                 static_cast<unsigned long long>(stats.nxdomain.load()));
    for (size_t s = 0; s < report.per_shard.size(); ++s)
      std::fprintf(stderr, "shard %zu connections: %s\n", s,
                   report.per_shard[s].connections.summary().c_str());
    std::fprintf(stderr, "connections (merged): %s\n",
                 report.connections.summary().c_str());
    if (fault_spec.has_value())
      std::fprintf(stderr, "impairments (merged): %s\n",
                   report.impairments.summary().c_str());
    return 0;
  }

  net::EventLoop loop;
  auto frontend = server::ServerFrontend::start(loop, auth, fe_cfg);
  if (!frontend.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 frontend.error().message.c_str());
    return 1;
  }
  std::fprintf(stderr, "serving on %s (UDP+TCP, %llds idle timeout); ^C to stop\n",
               (*frontend)->endpoint().to_string().c_str(),
               static_cast<long long>(timeout / kSecond));

  g_loop = &loop;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  loop.run();

  const auto& stats = auth.stats();
  std::fprintf(stderr, "served %llu queries (%llu refused, %llu nxdomain)\n",
               static_cast<unsigned long long>(stats.queries.load()),
               static_cast<unsigned long long>(stats.refused.load()),
               static_cast<unsigned long long>(stats.nxdomain.load()));
  std::fprintf(stderr, "connections: %s\n",
               (*frontend)->connections().summary().c_str());
  if (fault_spec.has_value())
    std::fprintf(stderr, "impairments: %s\n",
                 (*frontend)->impairments().summary().c_str());
  return 0;
}
