// ldp-synth: generate synthetic DNS workloads in any LDplayer trace format.
// Downstream users without access to real captures (the usual situation —
// DITL is restricted) start here.
//
//   ldp-synth root  [--rate Q] [--duration S] [--clients N] [--seed K] <out>
//   ldp-synth fixed [--gap-us U] [--duration S] [--clients N] [--seed K] <out>
//   ldp-synth rec   [--queries N] [--clients N] [--zones N] [--seed K] <out>
//   ldp-synth attack [--rate Q] [--duration S] [--victim DOMAIN]
//                    [--flood] [--seed K] <out>
//
// Output format by extension: .pcap .erf .txt .ldpb
#include <cstdio>
#include <cstring>
#include <fstream>

#include "synth/generator.hpp"
#include "trace/binary.hpp"
#include "trace/erf.hpp"
#include "trace/pcap.hpp"
#include "trace/stats.hpp"
#include "trace/text.hpp"

using namespace ldp;

namespace {

Result<void> store(const std::string& path,
                   const std::vector<trace::TraceRecord>& records) {
  auto dot = path.rfind('.');
  std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
  if (ext == "pcap") {
    trace::PcapWriter w;
    for (const auto& rec : records) w.add(rec);
    return w.save(path);
  }
  if (ext == "erf") {
    trace::ErfWriter w;
    for (const auto& rec : records) w.add(rec);
    return w.save(path);
  }
  if (ext == "ldpb") {
    trace::BinaryWriter w;
    for (const auto& rec : records) w.add(rec);
    return w.save(path);
  }
  if (ext == "txt") {
    auto text = LDP_TRY(trace::trace_to_text(records));
    std::ofstream out(path);
    if (!out) return Err("cannot write " + path);
    out << text;
    return Ok();
  }
  return Err("unknown output extension ." + ext);
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <root|fixed|rec|attack> [options] <out.{pcap,erf,txt,ldpb}>\n"
               "  root:   --rate Q --duration S --clients N --seed K\n"
               "  fixed:  --gap-us U --duration S --clients N --seed K\n"
               "  rec:    --queries N --clients N --zones N --seed K\n"
               "  attack: --rate Q --duration S --victim DOMAIN --flood --seed K\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage(argv[0]);
    return 2;
  }
  std::string mode = argv[1];
  std::string out_path = argv[argc - 1];

  double rate = 1000, duration_s = 10;
  uint64_t gap_us = 1000, queries = 20000, clients = 0, zones = 549, seed = 1;
  std::string victim = "example.com";
  bool flood = false;

  for (int i = 2; i + 1 < argc; ++i) {
    std::string opt = argv[i];
    auto val = [&]() { return argv[++i]; };
    if (opt == "--rate") rate = std::strtod(val(), nullptr);
    else if (opt == "--duration") duration_s = std::strtod(val(), nullptr);
    else if (opt == "--gap-us") gap_us = std::strtoull(val(), nullptr, 10);
    else if (opt == "--queries") queries = std::strtoull(val(), nullptr, 10);
    else if (opt == "--clients") clients = std::strtoull(val(), nullptr, 10);
    else if (opt == "--zones") zones = std::strtoull(val(), nullptr, 10);
    else if (opt == "--seed") seed = std::strtoull(val(), nullptr, 10);
    else if (opt == "--victim") victim = val();
    else if (opt == "--flood") { flood = true; --i; }
    else if (opt.rfind("--", 0) == 0) {
      usage(argv[0]);
      return 2;
    }
  }

  std::vector<trace::TraceRecord> records;
  if (mode == "root") {
    synth::RootTraceSpec spec;
    spec.mean_rate_qps = rate;
    spec.duration_ns = sec_to_ns(duration_s);
    spec.client_count = clients > 0 ? clients : 20000;
    spec.seed = seed;
    records = synth::make_root_trace(spec);
  } else if (mode == "fixed") {
    synth::FixedTraceSpec spec;
    spec.interarrival_ns = static_cast<TimeNs>(gap_us) * kMicro;
    spec.duration_ns = sec_to_ns(duration_s);
    spec.client_count = clients > 0 ? clients : 10000;
    spec.seed = seed;
    records = synth::make_fixed_trace(spec);
  } else if (mode == "rec") {
    synth::RecursiveTraceSpec spec;
    spec.query_count = queries;
    spec.client_count = clients > 0 ? clients : 91;
    spec.zone_count = zones;
    spec.seed = seed;
    records = synth::make_recursive_trace(spec);
  } else if (mode == "attack") {
    synth::AttackTraceSpec spec;
    spec.rate_qps = rate;
    spec.duration_ns = sec_to_ns(duration_s);
    spec.victim_domain = victim;
    spec.kind = flood ? synth::AttackTraceSpec::Kind::DirectFlood
                      : synth::AttackTraceSpec::Kind::RandomSubdomain;
    spec.seed = seed;
    records = synth::make_attack_trace(spec);
  } else {
    usage(argv[0]);
    return 2;
  }

  auto stats = trace::compute_stats(records);
  std::fprintf(stderr, "generated %zu queries, %zu clients, %.1fs, %.0f q/s\n",
               stats.queries, stats.unique_clients, stats.duration_s(),
               stats.mean_rate_qps());
  if (auto r = store(out_path, records); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.error().message.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
