# Empty dependencies file for tool_zone_construct.
# This may be replaced when dependencies are built.
