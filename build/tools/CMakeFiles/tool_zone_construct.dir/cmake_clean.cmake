file(REMOVE_RECURSE
  "CMakeFiles/tool_zone_construct.dir/ldp_zone_construct.cpp.o"
  "CMakeFiles/tool_zone_construct.dir/ldp_zone_construct.cpp.o.d"
  "ldp-zone-construct"
  "ldp-zone-construct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_zone_construct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
