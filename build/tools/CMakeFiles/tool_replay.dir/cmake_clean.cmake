file(REMOVE_RECURSE
  "CMakeFiles/tool_replay.dir/ldp_replay.cpp.o"
  "CMakeFiles/tool_replay.dir/ldp_replay.cpp.o.d"
  "ldp-replay"
  "ldp-replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
