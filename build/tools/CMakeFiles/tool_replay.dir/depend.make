# Empty dependencies file for tool_replay.
# This may be replaced when dependencies are built.
