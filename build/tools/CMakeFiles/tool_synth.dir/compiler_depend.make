# Empty compiler generated dependencies file for tool_synth.
# This may be replaced when dependencies are built.
