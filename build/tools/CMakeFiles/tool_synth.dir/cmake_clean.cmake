file(REMOVE_RECURSE
  "CMakeFiles/tool_synth.dir/ldp_synth.cpp.o"
  "CMakeFiles/tool_synth.dir/ldp_synth.cpp.o.d"
  "ldp-synth"
  "ldp-synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
