# Empty dependencies file for tool_trace_convert.
# This may be replaced when dependencies are built.
