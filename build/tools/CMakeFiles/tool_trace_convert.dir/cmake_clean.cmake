file(REMOVE_RECURSE
  "CMakeFiles/tool_trace_convert.dir/ldp_trace_convert.cpp.o"
  "CMakeFiles/tool_trace_convert.dir/ldp_trace_convert.cpp.o.d"
  "ldp-trace-convert"
  "ldp-trace-convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_trace_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
