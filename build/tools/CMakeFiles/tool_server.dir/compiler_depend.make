# Empty compiler generated dependencies file for tool_server.
# This may be replaced when dependencies are built.
