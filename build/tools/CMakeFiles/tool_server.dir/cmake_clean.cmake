file(REMOVE_RECURSE
  "CMakeFiles/tool_server.dir/ldp_server.cpp.o"
  "CMakeFiles/tool_server.dir/ldp_server.cpp.o.d"
  "ldp-server"
  "ldp-server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
