file(REMOVE_RECURSE
  "CMakeFiles/ldp_zonecut.dir/constructor.cpp.o"
  "CMakeFiles/ldp_zonecut.dir/constructor.cpp.o.d"
  "libldp_zonecut.a"
  "libldp_zonecut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_zonecut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
