# Empty dependencies file for ldp_zonecut.
# This may be replaced when dependencies are built.
