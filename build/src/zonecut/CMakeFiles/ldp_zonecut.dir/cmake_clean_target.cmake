file(REMOVE_RECURSE
  "libldp_zonecut.a"
)
