# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("dns")
subdirs("zone")
subdirs("trace")
subdirs("mutate")
subdirs("zonecut")
subdirs("proxy")
subdirs("synth")
subdirs("net")
subdirs("simnet")
subdirs("server")
subdirs("resolver")
subdirs("replay")
