# Empty compiler generated dependencies file for ldp_resolver.
# This may be replaced when dependencies are built.
