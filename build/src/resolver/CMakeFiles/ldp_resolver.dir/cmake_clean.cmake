file(REMOVE_RECURSE
  "CMakeFiles/ldp_resolver.dir/cache.cpp.o"
  "CMakeFiles/ldp_resolver.dir/cache.cpp.o.d"
  "CMakeFiles/ldp_resolver.dir/frontend.cpp.o"
  "CMakeFiles/ldp_resolver.dir/frontend.cpp.o.d"
  "CMakeFiles/ldp_resolver.dir/resolver.cpp.o"
  "CMakeFiles/ldp_resolver.dir/resolver.cpp.o.d"
  "libldp_resolver.a"
  "libldp_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
