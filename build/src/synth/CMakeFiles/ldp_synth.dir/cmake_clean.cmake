file(REMOVE_RECURSE
  "CMakeFiles/ldp_synth.dir/generator.cpp.o"
  "CMakeFiles/ldp_synth.dir/generator.cpp.o.d"
  "libldp_synth.a"
  "libldp_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
