file(REMOVE_RECURSE
  "libldp_synth.a"
)
