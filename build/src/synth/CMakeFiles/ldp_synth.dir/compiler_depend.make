# Empty compiler generated dependencies file for ldp_synth.
# This may be replaced when dependencies are built.
