file(REMOVE_RECURSE
  "libldp_server.a"
)
