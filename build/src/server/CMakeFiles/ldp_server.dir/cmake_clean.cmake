file(REMOVE_RECURSE
  "CMakeFiles/ldp_server.dir/auth_server.cpp.o"
  "CMakeFiles/ldp_server.dir/auth_server.cpp.o.d"
  "CMakeFiles/ldp_server.dir/frontend.cpp.o"
  "CMakeFiles/ldp_server.dir/frontend.cpp.o.d"
  "CMakeFiles/ldp_server.dir/shard.cpp.o"
  "CMakeFiles/ldp_server.dir/shard.cpp.o.d"
  "libldp_server.a"
  "libldp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
