
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/auth_server.cpp" "src/server/CMakeFiles/ldp_server.dir/auth_server.cpp.o" "gcc" "src/server/CMakeFiles/ldp_server.dir/auth_server.cpp.o.d"
  "/root/repo/src/server/frontend.cpp" "src/server/CMakeFiles/ldp_server.dir/frontend.cpp.o" "gcc" "src/server/CMakeFiles/ldp_server.dir/frontend.cpp.o.d"
  "/root/repo/src/server/shard.cpp" "src/server/CMakeFiles/ldp_server.dir/shard.cpp.o" "gcc" "src/server/CMakeFiles/ldp_server.dir/shard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zone/CMakeFiles/ldp_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ldp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/ldp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
