
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary.cpp" "src/trace/CMakeFiles/ldp_trace.dir/binary.cpp.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/binary.cpp.o.d"
  "/root/repo/src/trace/erf.cpp" "src/trace/CMakeFiles/ldp_trace.dir/erf.cpp.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/erf.cpp.o.d"
  "/root/repo/src/trace/packet.cpp" "src/trace/CMakeFiles/ldp_trace.dir/packet.cpp.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/packet.cpp.o.d"
  "/root/repo/src/trace/pcap.cpp" "src/trace/CMakeFiles/ldp_trace.dir/pcap.cpp.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/pcap.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/trace/CMakeFiles/ldp_trace.dir/record.cpp.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/record.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/ldp_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/stats.cpp.o.d"
  "/root/repo/src/trace/text.cpp" "src/trace/CMakeFiles/ldp_trace.dir/text.cpp.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/ldp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ldp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
