file(REMOVE_RECURSE
  "CMakeFiles/ldp_trace.dir/binary.cpp.o"
  "CMakeFiles/ldp_trace.dir/binary.cpp.o.d"
  "CMakeFiles/ldp_trace.dir/erf.cpp.o"
  "CMakeFiles/ldp_trace.dir/erf.cpp.o.d"
  "CMakeFiles/ldp_trace.dir/packet.cpp.o"
  "CMakeFiles/ldp_trace.dir/packet.cpp.o.d"
  "CMakeFiles/ldp_trace.dir/pcap.cpp.o"
  "CMakeFiles/ldp_trace.dir/pcap.cpp.o.d"
  "CMakeFiles/ldp_trace.dir/record.cpp.o"
  "CMakeFiles/ldp_trace.dir/record.cpp.o.d"
  "CMakeFiles/ldp_trace.dir/stats.cpp.o"
  "CMakeFiles/ldp_trace.dir/stats.cpp.o.d"
  "CMakeFiles/ldp_trace.dir/text.cpp.o"
  "CMakeFiles/ldp_trace.dir/text.cpp.o.d"
  "libldp_trace.a"
  "libldp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
