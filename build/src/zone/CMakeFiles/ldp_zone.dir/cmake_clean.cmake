file(REMOVE_RECURSE
  "CMakeFiles/ldp_zone.dir/parser.cpp.o"
  "CMakeFiles/ldp_zone.dir/parser.cpp.o.d"
  "CMakeFiles/ldp_zone.dir/view.cpp.o"
  "CMakeFiles/ldp_zone.dir/view.cpp.o.d"
  "CMakeFiles/ldp_zone.dir/zone.cpp.o"
  "CMakeFiles/ldp_zone.dir/zone.cpp.o.d"
  "libldp_zone.a"
  "libldp_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
