file(REMOVE_RECURSE
  "libldp_zone.a"
)
