file(REMOVE_RECURSE
  "CMakeFiles/ldp_replay.dir/engine.cpp.o"
  "CMakeFiles/ldp_replay.dir/engine.cpp.o.d"
  "CMakeFiles/ldp_replay.dir/multi.cpp.o"
  "CMakeFiles/ldp_replay.dir/multi.cpp.o.d"
  "libldp_replay.a"
  "libldp_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
