# Empty compiler generated dependencies file for ldp_replay.
# This may be replaced when dependencies are built.
