file(REMOVE_RECURSE
  "libldp_simnet.a"
)
