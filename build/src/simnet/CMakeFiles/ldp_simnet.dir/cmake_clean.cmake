file(REMOVE_RECURSE
  "CMakeFiles/ldp_simnet.dir/replay_sim.cpp.o"
  "CMakeFiles/ldp_simnet.dir/replay_sim.cpp.o.d"
  "CMakeFiles/ldp_simnet.dir/sim.cpp.o"
  "CMakeFiles/ldp_simnet.dir/sim.cpp.o.d"
  "libldp_simnet.a"
  "libldp_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
