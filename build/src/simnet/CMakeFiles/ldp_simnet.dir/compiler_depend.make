# Empty compiler generated dependencies file for ldp_simnet.
# This may be replaced when dependencies are built.
