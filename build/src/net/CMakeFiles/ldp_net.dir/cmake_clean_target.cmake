file(REMOVE_RECURSE
  "libldp_net.a"
)
