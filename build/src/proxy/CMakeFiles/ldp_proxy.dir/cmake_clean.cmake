file(REMOVE_RECURSE
  "CMakeFiles/ldp_proxy.dir/pipeline.cpp.o"
  "CMakeFiles/ldp_proxy.dir/pipeline.cpp.o.d"
  "CMakeFiles/ldp_proxy.dir/proxy.cpp.o"
  "CMakeFiles/ldp_proxy.dir/proxy.cpp.o.d"
  "libldp_proxy.a"
  "libldp_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
