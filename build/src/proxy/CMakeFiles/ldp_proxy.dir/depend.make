# Empty dependencies file for ldp_proxy.
# This may be replaced when dependencies are built.
