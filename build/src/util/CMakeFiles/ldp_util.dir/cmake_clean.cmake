file(REMOVE_RECURSE
  "CMakeFiles/ldp_util.dir/base64.cpp.o"
  "CMakeFiles/ldp_util.dir/base64.cpp.o.d"
  "CMakeFiles/ldp_util.dir/bytes.cpp.o"
  "CMakeFiles/ldp_util.dir/bytes.cpp.o.d"
  "CMakeFiles/ldp_util.dir/ip.cpp.o"
  "CMakeFiles/ldp_util.dir/ip.cpp.o.d"
  "CMakeFiles/ldp_util.dir/log.cpp.o"
  "CMakeFiles/ldp_util.dir/log.cpp.o.d"
  "CMakeFiles/ldp_util.dir/stats.cpp.o"
  "CMakeFiles/ldp_util.dir/stats.cpp.o.d"
  "CMakeFiles/ldp_util.dir/strings.cpp.o"
  "CMakeFiles/ldp_util.dir/strings.cpp.o.d"
  "libldp_util.a"
  "libldp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
