# Empty dependencies file for ldp_util.
# This may be replaced when dependencies are built.
