file(REMOVE_RECURSE
  "libldp_util.a"
)
