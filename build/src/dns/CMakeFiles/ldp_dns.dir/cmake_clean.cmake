file(REMOVE_RECURSE
  "CMakeFiles/ldp_dns.dir/message.cpp.o"
  "CMakeFiles/ldp_dns.dir/message.cpp.o.d"
  "CMakeFiles/ldp_dns.dir/name.cpp.o"
  "CMakeFiles/ldp_dns.dir/name.cpp.o.d"
  "CMakeFiles/ldp_dns.dir/rdata.cpp.o"
  "CMakeFiles/ldp_dns.dir/rdata.cpp.o.d"
  "CMakeFiles/ldp_dns.dir/rr.cpp.o"
  "CMakeFiles/ldp_dns.dir/rr.cpp.o.d"
  "CMakeFiles/ldp_dns.dir/types.cpp.o"
  "CMakeFiles/ldp_dns.dir/types.cpp.o.d"
  "CMakeFiles/ldp_dns.dir/wire.cpp.o"
  "CMakeFiles/ldp_dns.dir/wire.cpp.o.d"
  "libldp_dns.a"
  "libldp_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
