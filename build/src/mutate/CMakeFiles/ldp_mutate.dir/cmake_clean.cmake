file(REMOVE_RECURSE
  "CMakeFiles/ldp_mutate.dir/mutator.cpp.o"
  "CMakeFiles/ldp_mutate.dir/mutator.cpp.o.d"
  "libldp_mutate.a"
  "libldp_mutate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_mutate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
