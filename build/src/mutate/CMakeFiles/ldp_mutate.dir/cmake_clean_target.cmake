file(REMOVE_RECURSE
  "libldp_mutate.a"
)
