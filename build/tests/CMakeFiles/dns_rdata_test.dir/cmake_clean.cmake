file(REMOVE_RECURSE
  "CMakeFiles/dns_rdata_test.dir/dns_rdata_test.cpp.o"
  "CMakeFiles/dns_rdata_test.dir/dns_rdata_test.cpp.o.d"
  "dns_rdata_test"
  "dns_rdata_test.pdb"
  "dns_rdata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_rdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
