# Empty dependencies file for dns_rdata_test.
# This may be replaced when dependencies are built.
