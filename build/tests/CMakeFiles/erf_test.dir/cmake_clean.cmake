file(REMOVE_RECURSE
  "CMakeFiles/erf_test.dir/erf_test.cpp.o"
  "CMakeFiles/erf_test.dir/erf_test.cpp.o.d"
  "erf_test"
  "erf_test.pdb"
  "erf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
