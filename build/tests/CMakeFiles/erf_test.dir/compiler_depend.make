# Empty compiler generated dependencies file for erf_test.
# This may be replaced when dependencies are built.
