file(REMOVE_RECURSE
  "CMakeFiles/zone_parser_test.dir/zone_parser_test.cpp.o"
  "CMakeFiles/zone_parser_test.dir/zone_parser_test.cpp.o.d"
  "zone_parser_test"
  "zone_parser_test.pdb"
  "zone_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
