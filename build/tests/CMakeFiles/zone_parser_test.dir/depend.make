# Empty dependencies file for zone_parser_test.
# This may be replaced when dependencies are built.
