# Empty compiler generated dependencies file for recursive_replay_test.
# This may be replaced when dependencies are built.
