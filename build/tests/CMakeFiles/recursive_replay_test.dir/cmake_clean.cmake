file(REMOVE_RECURSE
  "CMakeFiles/recursive_replay_test.dir/recursive_replay_test.cpp.o"
  "CMakeFiles/recursive_replay_test.dir/recursive_replay_test.cpp.o.d"
  "recursive_replay_test"
  "recursive_replay_test.pdb"
  "recursive_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
