# Empty compiler generated dependencies file for zonecut_test.
# This may be replaced when dependencies are built.
