file(REMOVE_RECURSE
  "CMakeFiles/zonecut_test.dir/zonecut_test.cpp.o"
  "CMakeFiles/zonecut_test.dir/zonecut_test.cpp.o.d"
  "zonecut_test"
  "zonecut_test.pdb"
  "zonecut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zonecut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
