# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/dns_name_test[1]_include.cmake")
include("/root/repo/build/tests/dns_rdata_test[1]_include.cmake")
include("/root/repo/build/tests/dns_message_test[1]_include.cmake")
include("/root/repo/build/tests/zone_test[1]_include.cmake")
include("/root/repo/build/tests/zone_parser_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/mutate_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/zonecut_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/recursive_replay_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/erf_test[1]_include.cmake")
include("/root/repo/build/tests/reassembly_test[1]_include.cmake")
include("/root/repo/build/tests/crossval_test[1]_include.cmake")
add_test(cli_smoke "bash" "/root/repo/tests/cli_smoke.sh" "/root/repo/build/tools/ldp-synth" "/root/repo/build/tools/ldp-trace-convert" "/root/repo/build/tools/ldp-zone-construct" "/root/repo/build/tools/ldp-server" "/root/repo/build/tools/ldp-replay")
set_tests_properties(cli_smoke PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
