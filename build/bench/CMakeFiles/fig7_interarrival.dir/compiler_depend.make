# Empty compiler generated dependencies file for fig7_interarrival.
# This may be replaced when dependencies are built.
