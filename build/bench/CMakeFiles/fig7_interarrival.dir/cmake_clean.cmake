file(REMOVE_RECURSE
  "CMakeFiles/fig7_interarrival.dir/fig7_interarrival.cpp.o"
  "CMakeFiles/fig7_interarrival.dir/fig7_interarrival.cpp.o.d"
  "fig7_interarrival"
  "fig7_interarrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
