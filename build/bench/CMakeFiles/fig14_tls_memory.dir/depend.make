# Empty dependencies file for fig14_tls_memory.
# This may be replaced when dependencies are built.
