# Empty compiler generated dependencies file for fig11_cpu.
# This may be replaced when dependencies are built.
