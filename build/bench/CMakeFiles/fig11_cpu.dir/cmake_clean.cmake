file(REMOVE_RECURSE
  "CMakeFiles/fig11_cpu.dir/fig11_cpu.cpp.o"
  "CMakeFiles/fig11_cpu.dir/fig11_cpu.cpp.o.d"
  "fig11_cpu"
  "fig11_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
