file(REMOVE_RECURSE
  "CMakeFiles/fig10_dnssec.dir/fig10_dnssec.cpp.o"
  "CMakeFiles/fig10_dnssec.dir/fig10_dnssec.cpp.o.d"
  "fig10_dnssec"
  "fig10_dnssec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dnssec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
