# Empty dependencies file for fig10_dnssec.
# This may be replaced when dependencies are built.
