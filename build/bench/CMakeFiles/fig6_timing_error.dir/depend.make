# Empty dependencies file for fig6_timing_error.
# This may be replaced when dependencies are built.
