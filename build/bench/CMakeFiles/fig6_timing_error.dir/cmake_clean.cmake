file(REMOVE_RECURSE
  "CMakeFiles/fig6_timing_error.dir/fig6_timing_error.cpp.o"
  "CMakeFiles/fig6_timing_error.dir/fig6_timing_error.cpp.o.d"
  "fig6_timing_error"
  "fig6_timing_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_timing_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
