file(REMOVE_RECURSE
  "CMakeFiles/ablation_input_format.dir/ablation_input_format.cpp.o"
  "CMakeFiles/ablation_input_format.dir/ablation_input_format.cpp.o.d"
  "ablation_input_format"
  "ablation_input_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_input_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
