# Empty compiler generated dependencies file for ablation_input_format.
# This may be replaced when dependencies are built.
