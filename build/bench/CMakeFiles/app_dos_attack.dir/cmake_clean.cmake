file(REMOVE_RECURSE
  "CMakeFiles/app_dos_attack.dir/app_dos_attack.cpp.o"
  "CMakeFiles/app_dos_attack.dir/app_dos_attack.cpp.o.d"
  "app_dos_attack"
  "app_dos_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_dos_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
