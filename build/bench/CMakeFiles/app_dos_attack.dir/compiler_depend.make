# Empty compiler generated dependencies file for app_dos_attack.
# This may be replaced when dependencies are built.
