file(REMOVE_RECURSE
  "CMakeFiles/fig8_rate.dir/fig8_rate.cpp.o"
  "CMakeFiles/fig8_rate.dir/fig8_rate.cpp.o.d"
  "fig8_rate"
  "fig8_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
