# Empty dependencies file for fig8_rate.
# This may be replaced when dependencies are built.
