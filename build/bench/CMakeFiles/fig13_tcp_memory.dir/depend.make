# Empty dependencies file for fig13_tcp_memory.
# This may be replaced when dependencies are built.
