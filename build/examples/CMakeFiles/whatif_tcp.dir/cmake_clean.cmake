file(REMOVE_RECURSE
  "CMakeFiles/whatif_tcp.dir/whatif_tcp.cpp.o"
  "CMakeFiles/whatif_tcp.dir/whatif_tcp.cpp.o.d"
  "whatif_tcp"
  "whatif_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
