# Empty compiler generated dependencies file for whatif_tcp.
# This may be replaced when dependencies are built.
