# Empty compiler generated dependencies file for hierarchy_emulation.
# This may be replaced when dependencies are built.
