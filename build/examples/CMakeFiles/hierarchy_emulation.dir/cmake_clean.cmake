file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_emulation.dir/hierarchy_emulation.cpp.o"
  "CMakeFiles/hierarchy_emulation.dir/hierarchy_emulation.cpp.o.d"
  "hierarchy_emulation"
  "hierarchy_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
