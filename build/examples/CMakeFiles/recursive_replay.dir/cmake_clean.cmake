file(REMOVE_RECURSE
  "CMakeFiles/recursive_replay.dir/recursive_replay.cpp.o"
  "CMakeFiles/recursive_replay.dir/recursive_replay.cpp.o.d"
  "recursive_replay"
  "recursive_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
