# Empty dependencies file for recursive_replay.
# This may be replaced when dependencies are built.
