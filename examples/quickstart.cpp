// Quickstart: the smallest end-to-end LDplayer-cpp session.
//
//  1. parse a zone file and serve it from an in-process authoritative
//     server;
//  2. start the same server on a real loopback socket;
//  3. send it a query over UDP and print the response, dig-style.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <thread>

#include "server/background.hpp"
#include "zone/parser.hpp"

using namespace ldp;

int main() {
  // --- 1. a zone, parsed from master-file text --------------------------
  constexpr const char* kZone = R"(
$ORIGIN example.com.
$TTL 3600
@     IN SOA ns1 admin 2026070600 7200 900 1209600 300
      IN NS  ns1
ns1   IN A   192.0.2.1
www   IN A   192.0.2.80
www   IN A   192.0.2.81
alias IN CNAME www
)";
  auto zone = zone::parse_zone(kZone);
  if (!zone.ok()) {
    std::fprintf(stderr, "zone parse error: %s\n", zone.error().message.c_str());
    return 1;
  }
  std::printf("loaded zone %s: %zu records\n", zone->origin().to_string().c_str(),
              zone->record_count());

  // --- 2. an authoritative server hosting it ----------------------------
  server::AuthServer auth;
  if (auto r = auth.default_zones().add(std::move(*zone)); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.error().message.c_str());
    return 1;
  }

  // In-process answering (no sockets) — what tests and the hierarchy
  // emulator use:
  dns::Message query = dns::Message::make_query(
      1, *dns::Name::parse("alias.example.com"), dns::RRType::A);
  dns::Message direct = auth.answer(query, IpAddr{Ip4{127, 0, 0, 1}});
  std::printf("\nin-process answer (CNAME chased):\n%s\n", direct.to_string().c_str());

  // --- 3. the same server on a real loopback endpoint -------------------
  auto bg = server::BackgroundServer::start(std::move(auth));
  if (!bg.ok()) {
    std::fprintf(stderr, "server start: %s\n", bg.error().message.c_str());
    return 1;
  }
  std::printf("server listening on %s (UDP+TCP)\n",
              (*bg)->endpoint().to_string().c_str());

  auto sock = net::UdpSocket::bind(Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 0});
  if (!sock.ok()) return 1;
  dns::Message q2 =
      dns::Message::make_query(2, *dns::Name::parse("www.example.com"), dns::RRType::A);
  if (auto sent = sock->send_to((*bg)->endpoint(), q2.to_wire()); !sent.ok()) return 1;

  for (int i = 0; i < 1000; ++i) {
    auto dg = sock->recv();
    if (dg.ok() && dg->has_value()) {
      auto response = dns::Message::from_wire((*dg)->payload);
      if (!response.ok()) return 1;
      std::printf("\nresponse over UDP from %s:\n%s\n",
                  (*dg)->from.to_string().c_str(), response->to_string().c_str());
      std::printf("server stats: %llu queries, %llu responses\n",
                  static_cast<unsigned long long>((*bg)->auth().stats().queries.load()),
                  static_cast<unsigned long long>((*bg)->auth().stats().responses.load()));
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::fprintf(stderr, "no response received\n");
  return 1;
}
