// Trace pipeline walkthrough — Figure 3 as a runnable program.
//
// network trace (pcap) --DNS parser--> plain text --editor--> text
//       --converter--> customized binary stream --> query replay
//
// The program writes a pcap of a synthetic workload, converts it to the
// editable text form, "edits" it (prefixes every qname with a replay tag,
// the §4.2 matching trick), compiles it to the length-prefixed binary
// stream, and finally fast-replays the stream against a loopback server.
//
// Build & run:  ./build/examples/trace_pipeline
#include <cstdio>

#include "mutate/mutator.hpp"
#include "replay/engine.hpp"
#include "server/background.hpp"
#include "synth/generator.hpp"
#include "trace/binary.hpp"
#include "trace/pcap.hpp"
#include "trace/text.hpp"
#include "zone/parser.hpp"

using namespace ldp;

int main() {
  // --- a captured network trace (here: synthesized, then pcap-encoded) ---
  synth::FixedTraceSpec spec;
  spec.interarrival_ns = kMilli;
  spec.duration_ns = 2 * kSecond;
  spec.client_count = 20;
  spec.seed = 9;
  auto records = synth::make_fixed_trace(spec);

  trace::PcapWriter pcap;
  for (const auto& rec : records) pcap.add(rec);
  auto pcap_bytes = std::move(pcap).take();
  std::printf("1. pcap trace: %zu packets, %zu bytes\n", records.size(),
              pcap_bytes.size());

  // --- pcap -> plain text -------------------------------------------------
  auto reader = trace::PcapReader::from_bytes(std::move(pcap_bytes));
  if (!reader.ok()) return 1;
  auto parsed = reader->read_all();
  if (!parsed.ok()) return 1;
  auto text = trace::trace_to_text(*parsed);
  if (!text.ok()) return 1;
  std::printf("2. plain text: %zu lines; first line:\n   %s\n",
              parsed->size(), text->substr(0, text->find('\n')).c_str());

  // --- edit the text form (any editor or program works; here: mutator) ----
  auto reparsed = trace::trace_from_text(*text);
  if (!reparsed.ok()) return 1;
  mutate::MutatorPipeline edit;
  edit.prefix_qnames("replay01");
  auto edited = edit.apply_all(std::move(*reparsed));
  {
    auto line = trace::record_to_text(edited.front());
    std::printf("3. edited: qnames prefixed for replay matching:\n   %s\n",
                line.ok() ? line->c_str() : "(error)");
  }

  // --- text -> customized binary stream -----------------------------------
  trace::BinaryWriter bin;
  for (const auto& rec : edited) bin.add(rec);
  std::printf("4. binary stream: %zu messages, %zu bytes (%.1f B/msg)\n",
              bin.record_count(), bin.byte_size(),
              static_cast<double>(bin.byte_size()) /
                  static_cast<double>(bin.record_count()));
  auto stream_reader = trace::BinaryReader::from_bytes(std::move(bin).take());
  if (!stream_reader.ok()) return 1;
  auto replay_input = stream_reader->read_all();
  if (!replay_input.ok()) return 1;

  // --- replay against a loopback server ------------------------------------
  server::AuthServer auth;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  if (!z.ok()) return 1;
  (void)auth.default_zones().add(std::move(*z));
  auto bg = server::BackgroundServer::start(std::move(auth));
  if (!bg.ok()) return 1;

  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.timed = true;  // reproduce the trace's 1 ms spacing faithfully
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(*replay_input);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", report.error().message.c_str());
    return 1;
  }
  std::printf("5. replayed %llu queries in %.2f s (%.0f q/s), %llu responses\n",
              static_cast<unsigned long long>(report->queries_sent),
              report->duration_s(), report->rate_qps(),
              static_cast<unsigned long long>(report->responses_received));
  return report->responses_received == report->queries_sent ? 0 : 1;
}
