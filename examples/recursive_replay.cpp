// Recursive-trace replay — Figure 1's full path as a runnable program:
//
//   Query Engine ──UDP──▶ Recursive resolver ──proxies──▶ meta-DNS-server
//
// A Rec-17-style stub trace (91 clients, hundreds of zones) is replayed
// with original timing against a recursive resolver frontend on loopback;
// every stub query is resolved through the emulated hierarchy (one server,
// split-horizon views, both §2.4 proxies in the path). The run prints the
// cache-collapse effect: thousands of stub queries, far fewer hierarchy
// walks.
//
// Build & run:  ./build/examples/recursive_replay
#include <cstdio>
#include <thread>

#include "proxy/proxy.hpp"
#include "replay/engine.hpp"
#include "resolver/frontend.hpp"
#include "server/auth_server.hpp"
#include "synth/generator.hpp"
#include "zone/parser.hpp"

using namespace ldp;
using dns::Message;

namespace {

const IpAddr kRootAddr{Ip4{198, 41, 0, 4}};
const IpAddr kGtldAddr{Ip4{192, 5, 6, 30}};
const IpAddr kSldAddr{Ip4{203, 0, 113, 53}};
const IpAddr kMetaAddr{Ip4{10, 1, 1, 3}};
const IpAddr kRecursiveAddr{Ip4{10, 1, 1, 2}};

server::AuthServer make_meta() {
  server::AuthServer meta;

  zone::View& root = meta.views().add_view("root");
  root.match_clients.insert(kRootAddr);
  auto root_zone = zone::parse_zone(R"(
$ORIGIN .
$TTL 86400
. IN SOA a.root-servers.net. nstld.example. 1 1800 900 604800 86400
. IN NS a.root-servers.net.
a.root-servers.net. IN A 198.41.0.4
com. IN NS a.gtld-servers.net.
net. IN NS a.gtld-servers.net.
org. IN NS a.gtld-servers.net.
edu. IN NS a.gtld-servers.net.
io. IN NS a.gtld-servers.net.
a.gtld-servers.net. IN A 192.5.6.30
)");
  if (!root_zone.ok() || !root.zones.add(std::move(*root_zone)).ok()) std::exit(1);

  zone::View& gtld = meta.views().add_view("gtld");
  gtld.match_clients.insert(kGtldAddr);
  zone::View& sld = meta.views().add_view("sld");
  sld.match_clients.insert(kSldAddr);
  for (const char* tld : {"com", "net", "org", "edu", "io"}) {
    std::string parent = std::string("$ORIGIN ") + tld +
                         ".\n$TTL 172800\n"
                         "@ IN SOA a.gtld-servers.net. nstld.example. 1 2 3 4 300\n"
                         "@ IN NS a.gtld-servers.net.\n"
                         "* IN NS ns.sld-servers.net.\n";
    if (std::string(tld) == "net")
      parent += "ns.sld-servers.net. IN A 203.0.113.53\n";
    std::string child = std::string("$ORIGIN ") + tld +
                        ".\n$TTL 3600\n"
                        "@ IN SOA ns.sld-servers.net. admin.example. 1 2 3 4 300\n"
                        "@ IN NS ns.sld-servers.net.\n"
                        "* IN A 192.0.2.80\n";
    auto pz = zone::parse_zone(parent);
    auto cz = zone::parse_zone(child);
    if (!pz.ok() || !cz.ok() || !gtld.zones.add(std::move(*pz)).ok() ||
        !sld.zones.add(std::move(*cz)).ok())
      std::exit(1);
  }
  return meta;
}

}  // namespace

int main() {
  auto meta = std::make_shared<server::AuthServer>(make_meta());
  std::printf("meta-DNS-server up: %zu views emulating root, TLD and SLD servers\n",
              meta->views().view_count());

  resolver::ResolverConfig rcfg;
  rcfg.root_servers = {Endpoint{kRootAddr, 53}};
  auto upstream = [meta](const Endpoint& server,
                         const Message& q) -> Result<Message> {
    proxy::ServerProxy rec_proxy(proxy::ServerProxy::Role::Recursive, kMetaAddr);
    proxy::ServerProxy aut_proxy(proxy::ServerProxy::Role::Authoritative,
                                 kRecursiveAddr);
    proxy::Datagram pkt;
    pkt.src = Endpoint{kRecursiveAddr, 42001};
    pkt.dst = server;
    if (!rec_proxy.rewrite(pkt)) return Err("proxy miss");
    Message resp = meta->answer(q, pkt.src.addr);
    proxy::Datagram reply;
    reply.src = Endpoint{kMetaAddr, 53};
    reply.dst = pkt.src;
    if (!aut_proxy.rewrite(reply) || !(reply.src.addr == server.addr))
      return Err("reply would be dropped");
    return resp;
  };

  resolver::RecursiveResolver resolver(rcfg, upstream);
  net::EventLoop loop;
  auto frontend = resolver::StubFrontend::start(loop, resolver);
  if (!frontend.ok()) {
    std::fprintf(stderr, "%s\n", frontend.error().message.c_str());
    return 1;
  }
  std::printf("recursive resolver listening on %s\n",
              (*frontend)->endpoint().to_string().c_str());
  std::thread loop_thread([&loop] { loop.run(); });

  // Rec-17 in miniature, time-compressed so the demo finishes quickly.
  synth::RecursiveTraceSpec spec;
  spec.query_count = 2000;
  spec.client_count = 91;
  spec.zone_count = 549;
  spec.interarrival_mean_s = 0.002;
  spec.interarrival_stdev_s = 0.003;
  spec.seed = 17;
  auto trace = synth::make_recursive_trace(spec);
  std::printf("replaying %zu stub queries (91 clients, 549 zones)...\n",
              trace.size());

  replay::EngineConfig cfg;
  cfg.server = (*frontend)->endpoint();
  cfg.drain_grace = 2 * kSecond;
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);

  loop.stop();
  loop_thread.join();
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", report.error().message.c_str());
    return 1;
  }

  const auto& stats = resolver.stats();
  std::printf("\nstub queries answered:   %llu / %llu\n",
              static_cast<unsigned long long>(report->responses_received),
              static_cast<unsigned long long>(report->queries_sent));
  std::printf("hierarchy walks (upstream queries): %llu  — caching collapsed %.1fx\n",
              static_cast<unsigned long long>(stats.upstream_queries),
              stats.upstream_queries > 0
                  ? static_cast<double>(report->queries_sent) /
                        static_cast<double>(stats.upstream_queries)
                  : 0.0);
  std::printf("resolver cache: %zu entries, %llu hits / %llu misses\n",
              resolver.cache().size(),
              static_cast<unsigned long long>(resolver.cache().hits()),
              static_cast<unsigned long long>(resolver.cache().misses()));
  return report->responses_received == report->queries_sent ? 0 : 1;
}
