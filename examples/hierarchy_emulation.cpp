// Hierarchy emulation walkthrough — the paper's Figures 1 and 2 as a
// runnable program.
//
//  1. capture: resolve a name against a miniature "real Internet" of three
//     independent authoritative servers, recording every upstream response
//     (what §2.3 captures at the recursive's upstream interface);
//  2. rebuild: reconstruct the root / com / google.com zones from that
//     capture with the zone constructor;
//  3. emulate: load every zone into ONE meta-DNS-server with split-horizon
//     views, put the recursive + authoritative proxies in the path, and
//     resolve again — printing each proxy-rewritten hop to show the
//     referral chain surviving consolidation.
//
// Build & run:  ./build/examples/hierarchy_emulation
#include <cstdio>
#include <map>

#include "proxy/proxy.hpp"
#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "zone/parser.hpp"
#include "zonecut/constructor.hpp"

using namespace ldp;
using dns::Message;
using dns::Name;
using dns::RRType;

namespace {

const IpAddr kRootAddr{Ip4{198, 41, 0, 4}};     // a.root-servers.net
const IpAddr kComAddr{Ip4{192, 5, 6, 30}};      // a.gtld-servers.net
const IpAddr kGoogleAddr{Ip4{216, 239, 32, 10}};  // ns1.google.com
const IpAddr kRecursiveAddr{Ip4{10, 1, 1, 2}};
const IpAddr kMetaAddr{Ip4{10, 1, 1, 3}};

zone::Zone parse(const char* text) {
  auto z = zone::parse_zone(text);
  if (!z.ok()) {
    std::fprintf(stderr, "zone error: %s\n", z.error().message.c_str());
    std::exit(1);
  }
  return std::move(*z);
}

}  // namespace

int main() {
  // --- the "real Internet": three independent servers --------------------
  server::AuthServer root, com, google;
  (void)root.default_zones().add(parse(R"(
$ORIGIN .
$TTL 86400
. IN SOA a.root-servers.net. nstld.example. 1 1800 900 604800 86400
. IN NS a.root-servers.net.
a.root-servers.net. IN A 198.41.0.4
com. IN NS a.gtld-servers.net.
a.gtld-servers.net. IN A 192.5.6.30
)"));
  (void)com.default_zones().add(parse(R"(
$ORIGIN com.
$TTL 172800
@ IN SOA a.gtld-servers.net. nstld.example. 1 1800 900 604800 86400
@ IN NS a.gtld-servers.net.
google.com. IN NS ns1.google.com.
ns1.google.com. IN A 216.239.32.10
)"));
  (void)google.default_zones().add(parse(R"(
$ORIGIN google.com.
$TTL 300
@ IN SOA ns1 dns-admin 1 900 900 1800 60
@ IN NS ns1
ns1 IN A 216.239.32.10
www IN A 172.217.14.4
)"));

  // --- 1. capture a real resolution ---------------------------------------
  std::vector<trace::TraceRecord> capture;
  auto real_upstream = [&](const Endpoint& server,
                           const Message& q) -> Result<Message> {
    Message resp;
    if (server.addr == kRootAddr) resp = root.answer(q, kRecursiveAddr);
    else if (server.addr == kComAddr) resp = com.answer(q, kRecursiveAddr);
    else if (server.addr == kGoogleAddr) resp = google.answer(q, kRecursiveAddr);
    else return Err("no route to " + server.to_string());
    capture.push_back(trace::make_query_record(
        0, Endpoint{server.addr, 53}, Endpoint{kRecursiveAddr, 42001}, resp));
    return resp;
  };
  resolver::ResolverConfig rcfg;
  rcfg.root_servers = {Endpoint{kRootAddr, 53}};
  resolver::RecursiveResolver capture_resolver(rcfg, real_upstream);
  Message original =
      capture_resolver.resolve(*Name::parse("www.google.com"), RRType::A, 0);
  std::printf("step 1: resolved www.google.com against independent servers "
              "(%zu upstream responses captured)\n",
              capture.size());

  // --- 2. rebuild the zones from the capture ------------------------------
  auto built = zonecut::build_zones(capture);
  if (!built.ok()) {
    std::fprintf(stderr, "zone construction failed: %s\n",
                 built.error().message.c_str());
    return 1;
  }
  std::printf("step 2: zone constructor rebuilt %zu zones (%zu records, "
              "%zu fake SOAs added):\n",
              built->report.zones_built, built->report.records_harvested,
              built->report.fake_soas);
  for (const auto& [origin, servers] : built->zone_servers) {
    std::printf("   zone %-14s served by", origin.to_string().c_str());
    for (const auto& addr : servers) std::printf(" %s", addr.to_string().c_str());
    std::printf("\n");
  }

  // --- 3. one meta server, split-horizon views, proxies in the path -------
  server::AuthServer meta;
  for (const auto& [origin, servers] : built->zone_servers) {
    zone::View& v = meta.views().add_view(origin.to_string());
    for (const auto& addr : servers) v.match_clients.insert(addr);
    const zone::Zone* z = built->zones.find_exact(origin);
    if (z == nullptr || !v.zones.add(*z).ok()) {
      std::fprintf(stderr, "failed to install zone %s\n", origin.to_string().c_str());
      return 1;
    }
  }

  int hop = 0;
  auto emulated_upstream = [&](const Endpoint& server,
                               const Message& q) -> Result<Message> {
    proxy::ServerProxy rec_proxy(proxy::ServerProxy::Role::Recursive, kMetaAddr);
    proxy::ServerProxy aut_proxy(proxy::ServerProxy::Role::Authoritative,
                                 kRecursiveAddr);
    proxy::Datagram pkt;
    pkt.src = Endpoint{kRecursiveAddr, 42001};
    pkt.dst = server;
    if (!rec_proxy.rewrite(pkt)) return Err("recursive proxy miss");
    std::printf("   hop %d: query %-18s -> meta server sees source %s "
                "(zone selector)\n",
                ++hop, q.questions[0].qname.to_string().c_str(),
                pkt.src.addr.to_string().c_str());

    Message resp = meta.answer(q, pkt.src.addr);

    proxy::Datagram reply;
    reply.src = Endpoint{kMetaAddr, 53};
    reply.dst = pkt.src;
    if (!aut_proxy.rewrite(reply)) return Err("authoritative proxy miss");
    std::printf("          reply rewritten to appear from %s (%s)\n",
                reply.src.addr.to_string().c_str(),
                resp.answers.empty() ? "referral" : "answer");
    return resp;
  };

  resolver::RecursiveResolver emu_resolver(rcfg, emulated_upstream);
  std::printf("step 3: resolving www.google.com through the emulated hierarchy:\n");
  Message replayed = emu_resolver.resolve(*Name::parse("www.google.com"), RRType::A, 0);

  std::printf("\noriginal answer:  %s", original.answers.empty()
                                            ? "(none)\n"
                                            : original.answers[0].to_string().c_str());
  std::printf("\nemulated answer:  %s", replayed.answers.empty()
                                            ? "(none)\n"
                                            : replayed.answers[0].to_string().c_str());
  bool match = !original.answers.empty() && !replayed.answers.empty() &&
               original.answers[0] == replayed.answers[0];
  std::printf("\n\n%s\n", match ? "MATCH: one server + proxies == the real hierarchy"
                                : "MISMATCH");
  return match ? 0 : 1;
}
