// What-if workflow (§5.2 in miniature): take a root-server workload that is
// 97% UDP, ask "what if every query came over TCP? over TLS?", and compare
// server memory, connection footprint, CPU, and client latency — the
// LDplayer loop of trace -> mutate -> replay -> measure.
//
// Build & run:  ./build/examples/whatif_tcp
#include <cstdio>

#include "mutate/mutator.hpp"
#include "simnet/replay_sim.hpp"
#include "synth/generator.hpp"
#include "zone/parser.hpp"

using namespace ldp;

namespace {

server::AuthServer make_root_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN .
$TTL 86400
. IN SOA a.root-servers.net. nstld.example. 1 1800 900 604800 86400
. IN NS a.root-servers.net.
a.root-servers.net. IN A 198.41.0.4
com. IN NS a.gtld-servers.net.
net. IN NS a.gtld-servers.net.
org. IN NS a0.org.afilias-nst.info.
a.gtld-servers.net. IN A 192.5.6.30
a0.org.afilias-nst.info. IN A 199.19.56.1
)");
  if (!z.ok()) std::exit(1);
  (void)s.default_zones().add(std::move(*z));
  return s;
}

void report(const char* label, const simnet::SimReplayResult& r) {
  auto mem = r.steady_memory_gb(2);
  auto cpu = r.steady_cpu_percent(2);
  auto lat = r.latency_all_ms.summary();
  auto lat_nb = r.latency_nonbusy_ms.summary();
  std::printf("  %-10s mem %6.2f GB  cpu %5.2f%%  conns opened %7llu"
              "  reuse %5.1f%%  latency med %6.1f ms (non-busy %6.1f ms)\n",
              label, mem.median, cpu.median,
              static_cast<unsigned long long>(r.connections_opened),
              r.queries > 0 ? 100.0 * static_cast<double>(r.handshakes_reused) /
                                  static_cast<double>(r.queries)
                            : 0.0,
              lat.median, lat_nb.median);
}

}  // namespace

int main() {
  std::printf("generating a B-Root-like workload (72.3%% DO, 3%% TCP)...\n");
  synth::RootTraceSpec spec;
  spec.mean_rate_qps = 3000;
  spec.duration_ns = 180 * kSecond;
  spec.client_count = 15000;
  spec.seed = 52;
  auto original = synth::make_root_trace(spec);

  std::printf("mutating: all-TCP and all-TLS variants (query mutator)...\n");
  mutate::MutatorPipeline to_tcp, to_tls;
  to_tcp.force_transport(Transport::Tcp);
  to_tls.force_transport(Transport::Tls);
  auto all_tcp = to_tcp.apply_all(original);
  auto all_tls = to_tls.apply_all(original);

  auto server = make_root_server();
  simnet::SimReplayConfig cfg;
  cfg.rtt = 40 * kMilli;          // a typical client RTT
  cfg.idle_timeout = 20 * kSecond;  // the paper's suggested timeout
  cfg.sample_interval = 30 * kSecond;

  std::printf("\nreplaying three scenarios (40 ms RTT, 20 s idle timeout):\n");
  report("original", simnet::simulate_replay(original, server, cfg));
  report("all TCP", simnet::simulate_replay(all_tcp, server, cfg));
  report("all TLS", simnet::simulate_replay(all_tls, server, cfg));

  std::printf(
      "\nreading: TCP/TLS memory is dominated by per-connection state, so it\n"
      "tracks the idle timeout, not the RTT; busy clients hide handshake cost\n"
      "(compare the all-clients vs non-busy latency medians), exactly the\n"
      "dynamics the paper reports in Figures 13-15.\n");
  return 0;
}
