// Tests for dns::Message: header flags, section handling, EDNS lifting,
// compression across sections, truncation, and randomized round-trips.
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "util/rng.hpp"

namespace ldp::dns {
namespace {

Name mk(std::string_view s) { return *Name::parse(s); }

ResourceRecord a_rr(std::string_view name, uint32_t ttl, Ip4 addr) {
  return ResourceRecord{mk(name), RRType::A, RRClass::IN, ttl, Rdata{AData{addr}}};
}

TEST(Message, QueryRoundTrip) {
  Message q = Message::make_query(0x1234, mk("www.example.com"), RRType::A);
  auto wire = q.to_wire();
  auto back = Message::from_wire(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, q);
  EXPECT_EQ(back->header.id, 0x1234);
  EXPECT_TRUE(back->header.rd);
  EXPECT_FALSE(back->header.qr);
  ASSERT_EQ(back->questions.size(), 1u);
  EXPECT_EQ(back->questions[0].qname, mk("www.example.com"));
}

TEST(Message, AllHeaderFlagsRoundTrip) {
  Message m;
  m.header.id = 0xffff;
  m.header.qr = true;
  m.header.opcode = Opcode::Notify;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = true;
  m.header.ra = true;
  m.header.ad = true;
  m.header.cd = true;
  m.header.rcode = Rcode::Refused;
  auto back = Message::from_wire(m.to_wire());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

TEST(Message, ResponseWithAllSections) {
  Message q = Message::make_query(7, mk("example.com"), RRType::A);
  Message r = Message::make_response(q);
  r.header.aa = true;
  r.answers.push_back(a_rr("example.com", 300, Ip4{192, 0, 2, 1}));
  r.answers.push_back(a_rr("example.com", 300, Ip4{192, 0, 2, 2}));
  r.authorities.push_back(ResourceRecord{mk("example.com"), RRType::NS, RRClass::IN,
                                         86400, Rdata{NameData{mk("ns1.example.com")}}});
  r.additionals.push_back(a_rr("ns1.example.com", 86400, Ip4{192, 0, 2, 53}));

  auto back = Message::from_wire(r.to_wire());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, r);
  EXPECT_EQ(back->answers.size(), 2u);
  EXPECT_EQ(back->authorities.size(), 1u);
  EXPECT_EQ(back->additionals.size(), 1u);
}

TEST(Message, EdnsLiftedOutOfAdditional) {
  Message q = Message::make_query(1, mk("example.com"), RRType::SOA);
  Edns e;
  e.udp_payload_size = 4096;
  e.dnssec_ok = true;
  q.edns = e;

  auto wire = q.to_wire();
  auto back = Message::from_wire(wire);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->edns.has_value());
  EXPECT_EQ(back->edns->udp_payload_size, 4096);
  EXPECT_TRUE(back->edns->dnssec_ok);
  EXPECT_TRUE(back->additionals.empty());  // OPT is not a visible RR

  // ARCOUNT on the wire includes the OPT record.
  EXPECT_EQ(wire[11], 1);  // low byte of arcount
}

TEST(Message, DuplicateOptRejected) {
  Message q = Message::make_query(1, mk("example.com"), RRType::A);
  Edns e;
  q.edns = e;
  auto wire = q.to_wire();
  // Append the same OPT record again by raw surgery: bump arcount and
  // duplicate the trailing 11 bytes (root+OPT header, no options).
  std::vector<uint8_t> hacked(wire.begin(), wire.end());
  std::vector<uint8_t> opt(hacked.end() - 11, hacked.end());
  hacked.insert(hacked.end(), opt.begin(), opt.end());
  hacked[11] = 2;
  EXPECT_FALSE(Message::from_wire(hacked).ok());
}

TEST(Message, CompressionShrinksRepeatedNames) {
  Message r;
  r.header.qr = true;
  r.questions.push_back(Question{mk("host.example.com"), RRType::A, RRClass::IN});
  for (int i = 0; i < 10; ++i)
    r.answers.push_back(a_rr("host.example.com", 60, Ip4{10, 0, 0, static_cast<uint8_t>(i)}));

  auto wire = r.to_wire();
  // Uncompressed, each answer name costs 18 bytes; compressed it's a 2-byte
  // pointer. 10 answers: full-name cost would exceed 180; the whole message
  // should stay well under that.
  size_t uncompressed_names = 10 * mk("host.example.com").wire_length();
  EXPECT_LT(wire.size(), 12 + 22 + uncompressed_names);

  auto back = Message::from_wire(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, r);
}

TEST(Message, TruncationSetsTcAndDropsSections) {
  Message r;
  r.header.qr = true;
  r.questions.push_back(Question{mk("big.example.com"), RRType::TXT, RRClass::IN});
  for (int i = 0; i < 100; ++i) {
    TxtData txt;
    txt.strings.push_back(std::string(100, 'x'));
    r.answers.push_back(ResourceRecord{mk("big.example.com"), RRType::TXT,
                                       RRClass::IN, 60, Rdata{txt}});
  }
  auto full = r.to_wire();
  EXPECT_GT(full.size(), 512u);

  auto truncated = r.to_wire(512);
  EXPECT_LE(truncated.size(), 512u);
  auto back = Message::from_wire(truncated);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->header.tc);
  EXPECT_TRUE(back->answers.empty());
  EXPECT_EQ(back->questions.size(), 1u);
}

TEST(Message, TruncationKeepsEdns) {
  Message r;
  r.header.qr = true;
  r.questions.push_back(Question{mk("x.example"), RRType::A, RRClass::IN});
  Edns e;
  e.udp_payload_size = 512;
  r.edns = e;
  for (int i = 0; i < 200; ++i)
    r.answers.push_back(a_rr("x.example", 1, Ip4{1, 1, 1, static_cast<uint8_t>(i)}));
  auto truncated = r.to_wire(512);
  auto back = Message::from_wire(truncated);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->header.tc);
  EXPECT_TRUE(back->edns.has_value());
}

TEST(Message, MakeResponseMirrorsEdnsDo) {
  Message q = Message::make_query(9, mk("example.com"), RRType::DNSKEY);
  Edns e;
  e.dnssec_ok = true;
  q.edns = e;
  Message r = Message::make_response(q);
  EXPECT_TRUE(r.header.qr);
  EXPECT_EQ(r.header.id, 9);
  ASSERT_TRUE(r.edns.has_value());
  EXPECT_TRUE(r.edns->dnssec_ok);

  Message q2 = Message::make_query(10, mk("example.com"), RRType::A);
  Message r2 = Message::make_response(q2);
  EXPECT_FALSE(r2.edns.has_value());
}

TEST(Message, GarbageRejected) {
  std::vector<uint8_t> junk = {0x00, 0x01, 0x02};
  EXPECT_FALSE(Message::from_wire(junk).ok());
  std::vector<uint8_t> claims_answers(12, 0);
  claims_answers[5] = 1;  // qdcount=1 but no question bytes
  EXPECT_FALSE(Message::from_wire(claims_answers).ok());
}

TEST(Message, EmptyMessageValid) {
  // Header-only message (e.g., FORMERR responses) round-trips.
  Message m;
  m.header.qr = true;
  m.header.rcode = Rcode::FormErr;
  auto back = Message::from_wire(m.to_wire());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

// Randomized property test: messages with arbitrary flag/section mixes
// round-trip bit-exactly through the wire codec.
class MessageFuzzRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(MessageFuzzRoundTrip, Wire) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 50; ++iter) {
    Message m;
    m.header.id = static_cast<uint16_t>(rng.uniform(0, 0xffff));
    m.header.qr = rng.bernoulli(0.5);
    m.header.aa = rng.bernoulli(0.5);
    m.header.rd = rng.bernoulli(0.5);
    m.header.ra = rng.bernoulli(0.5);
    m.header.rcode = rng.bernoulli(0.2) ? Rcode::NXDomain : Rcode::NoError;

    auto rand_name = [&rng]() {
      std::string s;
      int labels = static_cast<int>(rng.uniform(1, 4));
      for (int i = 0; i < labels; ++i) {
        if (i) s += ".";
        int len = static_cast<int>(rng.uniform(1, 12));
        for (int j = 0; j < len; ++j)
          s += static_cast<char>('a' + rng.uniform(0, 25));
      }
      return *Name::parse(s);
    };

    m.questions.push_back(Question{rand_name(), RRType::A, RRClass::IN});
    int answers = static_cast<int>(rng.uniform(0, 5));
    for (int i = 0; i < answers; ++i) {
      if (rng.bernoulli(0.5)) {
        m.answers.push_back(ResourceRecord{
            rand_name(), RRType::A, RRClass::IN,
            static_cast<uint32_t>(rng.uniform(0, 86400)),
            Rdata{AData{Ip4{static_cast<uint32_t>(rng.uniform(0, 0xffffffff))}}}});
      } else {
        m.answers.push_back(ResourceRecord{rand_name(), RRType::NS, RRClass::IN, 3600,
                                           Rdata{NameData{rand_name()}}});
      }
    }
    if (rng.bernoulli(0.5)) {
      Edns e;
      e.udp_payload_size = static_cast<uint16_t>(rng.uniform(512, 4096));
      e.dnssec_ok = rng.bernoulli(0.5);
      m.edns = e;
    }

    auto back = Message::from_wire(m.to_wire());
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(*back, m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzzRoundTrip, ::testing::Range(1, 9));

}  // namespace
}  // namespace ldp::dns
