// Query-lifecycle subsystem tests: PendingTable semantics (ID-collision
// FIFO matching, deadline-driven expiry, bounded size), UDP
// retransmit-on-timeout under ldp::fault packet loss (the engine's own
// deterministic impairment layer — the responder itself always answers),
// TCP reconnect-and-resend after a mid-flight connection loss, and the
// EngineReport timeout/retry/duplicate counters the fidelity analysis
// depends on.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "replay/engine.hpp"
#include "replay/pending.hpp"
#include "synth/generator.hpp"

namespace ldp::replay {
namespace {

using trace::TraceRecord;

// ---------------------------------------------------------------------------
// PendingTable unit tests
// ---------------------------------------------------------------------------

PendingQuery make_pq(uint64_t key, uint16_t id, TimeNs deadline) {
  PendingQuery pq;
  pq.key = key;
  pq.dns_id = id;
  pq.send_index = static_cast<size_t>(key);
  pq.deadline = deadline;
  return pq;
}

TEST(PendingTableT, MatchRemovesOldestForCollidingIds) {
  PendingTable t;
  EXPECT_FALSE(t.insert(make_pq(1, 7, 100)));
  EXPECT_TRUE(t.insert(make_pq(2, 7, 200)));  // collision reported
  EXPECT_FALSE(t.insert(make_pq(3, 8, 300)));
  EXPECT_EQ(t.size(), 3u);

  auto first = t.match(7);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->key, 1u);  // FIFO: oldest wins
  auto second = t.match(7);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->key, 2u);
  EXPECT_FALSE(t.match(7).has_value());  // nothing live for the id now
  EXPECT_EQ(t.size(), 1u);
}

TEST(PendingTableT, TakeDueHonorsDeadlinesAndReinsertion) {
  PendingTable t;
  t.insert(make_pq(1, 1, 100));
  t.insert(make_pq(2, 2, 200));
  t.insert(make_pq(3, 3, 300));
  ASSERT_TRUE(t.next_deadline().has_value());
  EXPECT_EQ(*t.next_deadline(), 100);

  auto due = t.take_due(150);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].key, 1u);
  EXPECT_EQ(t.size(), 2u);

  // Retry: re-insert with a pushed-out deadline; the stale heap entry for
  // the old deadline must not resurface it early.
  due[0].deadline = 500;
  t.insert(std::move(due[0]));
  EXPECT_EQ(t.take_due(250).size(), 1u);  // key 2 only
  EXPECT_EQ(*t.next_deadline(), 300);
  auto rest = t.take_due(600);
  ASSERT_EQ(rest.size(), 2u);  // keys 3 then 1
  EXPECT_EQ(rest[0].key, 3u);
  EXPECT_EQ(rest[1].key, 1u);
  EXPECT_TRUE(t.empty());
}

TEST(PendingTableT, DrainReturnsSendOrder) {
  PendingTable t;
  t.insert(make_pq(5, 1, 100));
  t.insert(make_pq(2, 2, 50));
  t.insert(make_pq(9, 3, 75));
  auto all = t.drain();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].key, 2u);
  EXPECT_EQ(all[1].key, 5u);
  EXPECT_EQ(all[2].key, 9u);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.next_deadline().has_value());
}

// The regression the tentpole exists for: unanswered queries must not
// accumulate. Simulates a 100k-query replay at 10k q/s where 10% of
// queries are never answered, with a 100 ms expiry window — table size
// must stay bounded by the window's worth of unanswered queries, not grow
// monotonically, and must drain to zero at the end.
TEST(PendingTableT, BoundedUnderSustainedLoss) {
  PendingTable t;
  const TimeNs kGap = kMilli / 10;      // 10k q/s
  const TimeNs kWindow = 100 * kMilli;  // expiry window
  const int kQueries = 100000;
  size_t max_size = 0;
  size_t expired = 0;
  for (int i = 0; i < kQueries; ++i) {
    TimeNs now = static_cast<TimeNs>(i) * kGap;
    t.insert(make_pq(static_cast<uint64_t>(i + 1),
                     static_cast<uint16_t>(i & 0xffff), now + kWindow));
    if (i % 10 != 0) {
      // 90% answered promptly.
      ASSERT_TRUE(t.match(static_cast<uint16_t>(i & 0xffff)).has_value());
    }
    expired += t.take_due(now).size();
    max_size = std::max(max_size, t.size());
  }
  expired += t.take_due(static_cast<TimeNs>(kQueries) * kGap + kWindow).size();
  // In-window unanswered load is (10k q/s × 0.1 s × 10%) = 100 entries;
  // allow slack for the one just-inserted live query per step.
  EXPECT_LE(max_size, 110u);
  EXPECT_EQ(expired, static_cast<size_t>(kQueries) / 10);
  EXPECT_TRUE(t.empty());
}

// ---------------------------------------------------------------------------
// Echo UDP responder: answers every query by echoing the payload with QR
// set. Loss is injected on the engine side by the ldp::fault layer, so the
// drop pattern is seed-deterministic instead of depending on responder
// receive order.
// ---------------------------------------------------------------------------
class EchoUdpResponder {
 public:
  EchoUdpResponder() {
    fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
    socklen_t len = sizeof(sa);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len), 0);
    port_ = ntohs(sa.sin_port);
    timeval tv{0, 50 * 1000};  // 50 ms poll for the stop flag
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    thread_ = std::thread([this] { run(); });
  }

  ~EchoUdpResponder() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    ::close(fd_);
  }

  Endpoint endpoint() const {
    return Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, port_};
  }
  uint64_t received() const { return received_.load(); }

 private:
  void run() {
    uint8_t buf[4096];
    while (!stop_.load()) {
      sockaddr_in from{};
      socklen_t len = sizeof(from);
      ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0,
                             reinterpret_cast<sockaddr*>(&from), &len);
      if (n < 0) continue;  // timeout: re-check stop flag
      received_.fetch_add(1);
      if (n >= 3) buf[2] |= 0x80;  // QR: make it a response
      ::sendto(fd_, buf, static_cast<size_t>(n), 0,
               reinterpret_cast<sockaddr*>(&from), len);
    }
  }

  int fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> received_{0};
  std::thread thread_;
};

fault::FaultSpec loss_spec(double p, uint64_t seed) {
  fault::FaultSpec spec;
  spec.drop = p;
  spec.seed = seed;
  return spec;
}

std::vector<TraceRecord> small_udp_trace(size_t n, TimeNs gap) {
  synth::FixedTraceSpec spec;
  spec.interarrival_ns = gap;
  spec.duration_ns = static_cast<TimeNs>(n) * gap;
  spec.client_count = 4;
  return synth::make_fixed_trace(spec);
}

// With retry disabled, every fault-layer drop must surface as a timeout
// and an expired (lost) query — nothing silently disappears, and the
// counters are exact (the drop pattern is fixed by the seed).
TEST(QueryLifecycleT, RetryDisabledCountsEveryLoss) {
  EchoUdpResponder responder;

  auto trace = small_udp_trace(50, kMilli);
  EngineConfig cfg;
  cfg.server = responder.endpoint();
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 0;
  cfg.query_timeout = 200 * kMilli;
  cfg.drain_grace = 5 * kSecond;  // expiry, not the grace, ends the replay
  cfg.fault = loss_spec(0.2, 5);
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  const uint64_t dropped = report->impairments.dropped;
  EXPECT_EQ(report->queries_sent, 50u);
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, 50u);
  EXPECT_EQ(report->impairments.processed, 50u);
  EXPECT_EQ(responder.received(), 50u - dropped);
  EXPECT_EQ(report->responses_received, 50u - dropped);
  EXPECT_EQ(report->lifecycle.timeouts, dropped);
  EXPECT_EQ(report->lifecycle.expired, dropped);
  EXPECT_EQ(report->lifecycle.retries, 0u);
  EXPECT_EQ(report->lifecycle.duplicate_ids, 0u);

  uint64_t answered = 0, timed_out = 0;
  for (const auto& sr : report->sends) {
    if (sr.outcome == QueryOutcome::Answered) {
      ++answered;
      EXPECT_GE(sr.latency, 0);
    } else {
      EXPECT_EQ(sr.outcome, QueryOutcome::TimedOut);
      EXPECT_EQ(sr.latency, -1);
      ++timed_out;
    }
  }
  EXPECT_EQ(answered, 50u - dropped);
  EXPECT_EQ(timed_out, dropped);
}

// With retry enabled, retransmits recover the dropped queries: ≥99% get
// answers, every fault-layer drop is accounted as a timeout, and every
// timeout that had budget left becomes a retry.
TEST(QueryLifecycleT, RetryRecoversDroppedQueries) {
  EchoUdpResponder responder;

  auto trace = small_udp_trace(100, kMilli / 2);
  EngineConfig cfg;
  cfg.server = responder.endpoint();
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 4;
  cfg.query_timeout = 150 * kMilli;
  cfg.retry_backoff_cap = 400 * kMilli;
  cfg.drain_grace = 10 * kSecond;
  cfg.fault = loss_spec(0.2, 5);
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  const uint64_t dropped = report->impairments.dropped;
  EXPECT_EQ(report->queries_sent, 100u);
  EXPECT_GT(dropped, 0u);
  EXPECT_GE(report->responses_received, 99u);
  EXPECT_LE(report->lifecycle.expired, 1u);
  // Exact accounting: each fault-layer drop (initial send or retransmit)
  // fires exactly one timeout, and each timeout either retried or expired
  // the query.
  EXPECT_EQ(report->lifecycle.timeouts, dropped);
  EXPECT_EQ(report->lifecycle.timeouts,
            report->lifecycle.retries + report->lifecycle.expired);
  // Every dropped send with budget left was retried.
  EXPECT_GE(report->lifecycle.retries, 1u);
  // Every answered query that needed a retransmit is attributed.
  EXPECT_GE(report->lifecycle.answered_after_retry, 1u);
  EXPECT_LE(report->lifecycle.answered_after_retry, dropped);
  // Conservation: every query is either answered or counted lost.
  EXPECT_EQ(report->responses_received + report->lifecycle.expired, 100u);
}

// Two same-source queries that share a DNS id must both stay matchable:
// the old map-clobber behaviour orphaned the first one permanently.
TEST(QueryLifecycleT, DuplicateIdsBothAnswered) {
  EchoUdpResponder responder;  // clean link: no fault spec configured

  std::vector<TraceRecord> trace;
  IpAddr client{Ip4{10, 1, 1, 1}};
  for (int i = 0; i < 2; ++i) {
    dns::Message q = dns::Message::make_query(
        0x1234, *dns::Name::parse("dup" + std::to_string(i) + ".example.com"),
        dns::RRType::A);
    trace.push_back(trace::make_query_record(i * kMilli, Endpoint{client, 40000},
                                             Endpoint{IpAddr{}, 53}, q));
  }

  EngineConfig cfg;
  cfg.server = responder.endpoint();
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.drain_grace = 3 * kSecond;
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_EQ(report->queries_sent, 2u);
  EXPECT_EQ(report->responses_received, 2u);
  EXPECT_EQ(report->lifecycle.duplicate_ids, 1u);
  EXPECT_EQ(report->lifecycle.expired, 0u);
  for (const auto& sr : report->sends) {
    EXPECT_EQ(sr.outcome, QueryOutcome::Answered);
    EXPECT_GE(sr.latency, 0);
  }
}

// Engine-level boundedness: a timed replay where the fault layer drops 10%
// must keep the in-flight table bounded by the expiry window, far below
// the total query count.
TEST(QueryLifecycleT, InFlightBoundedDuringLossyTimedReplay) {
  EchoUdpResponder responder;

  auto trace = small_udp_trace(2000, kMilli / 2);  // 2000 q/s for 1 s
  EngineConfig cfg;
  cfg.server = responder.endpoint();
  cfg.timed = true;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 0;
  cfg.query_timeout = 100 * kMilli;  // expiry window
  cfg.drain_grace = 2 * kSecond;
  cfg.fault = loss_spec(0.1, 5);
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_EQ(report->queries_sent, 2000u);
  // Expiry window holds ≤ ~(rate × window) = 200 unanswered + answered
  // in-flight transients; generous CI bound still far below the total.
  EXPECT_LT(report->max_in_flight, 1000u);
  EXPECT_EQ(report->responses_received + report->lifecycle.expired, 2000u);
}

// ---------------------------------------------------------------------------
// Flaky TCP responder: the first accepted connection reads one framed
// query and closes without answering; every later connection answers all
// queries. Exercises reconnect-and-resend.
// ---------------------------------------------------------------------------
class FlakyTcpResponder {
 public:
  FlakyTcpResponder() {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(sa);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len), 0);
    port_ = ntohs(sa.sin_port);
    thread_ = std::thread([this] { run(); });
  }

  ~FlakyTcpResponder() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    ::close(fd_);
  }

  Endpoint endpoint() const {
    return Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, port_};
  }
  int connections() const { return connections_.load(); }

 private:
  // Read exactly n bytes with a stop-aware timeout; false on EOF/stop.
  bool read_full(int cfd, uint8_t* out, size_t n) {
    size_t got = 0;
    while (got < n && !stop_.load()) {
      ssize_t r = ::recv(cfd, out + got, n - got, 0);
      if (r == 0) return false;
      if (r < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
        return false;
      }
      got += static_cast<size_t>(r);
    }
    return got == n;
  }

  void run() {
    while (!stop_.load()) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) continue;
      int cfd = ::accept(fd_, nullptr, nullptr);
      if (cfd < 0) continue;
      timeval tv{0, 50 * 1000};
      ::setsockopt(cfd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      int conn = connections_.fetch_add(1) + 1;
      uint8_t hdr[2];
      while (read_full(cfd, hdr, 2)) {
        size_t frame = static_cast<size_t>(hdr[0]) << 8 | hdr[1];
        std::vector<uint8_t> payload(frame);
        if (!read_full(cfd, payload.data(), frame)) break;
        if (conn == 1) break;  // flaky: swallow the query, drop the conn
        if (payload.size() >= 3) payload[2] |= 0x80;  // QR
        std::vector<uint8_t> out;
        out.push_back(hdr[0]);
        out.push_back(hdr[1]);
        out.insert(out.end(), payload.begin(), payload.end());
        ::send(cfd, out.data(), out.size(), MSG_NOSIGNAL);
      }
      ::close(cfd);
    }
  }

  int fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<int> connections_{0};
  std::thread thread_;
};

TEST(QueryLifecycleT, TcpReconnectResendsPendingQueries) {
  FlakyTcpResponder responder;

  std::vector<TraceRecord> trace;
  IpAddr client{Ip4{10, 2, 2, 2}};
  for (int i = 0; i < 3; ++i) {
    dns::Message q = dns::Message::make_query(
        static_cast<uint16_t>(100 + i),
        *dns::Name::parse("t" + std::to_string(i) + ".example.com"),
        dns::RRType::A);
    trace.push_back(trace::make_query_record(i * kMilli, Endpoint{client, 41000},
                                             Endpoint{IpAddr{}, 53}, q,
                                             Transport::Tcp));
  }

  EngineConfig cfg;
  cfg.server = responder.endpoint();
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 2;
  cfg.query_timeout = kSecond;
  cfg.drain_grace = 5 * kSecond;
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_EQ(report->queries_sent, 3u);
  EXPECT_EQ(report->responses_received, 3u);
  EXPECT_GE(report->lifecycle.tcp_reconnects, 1u);
  EXPECT_GE(report->lifecycle.retries, 1u);
  EXPECT_GE(report->connections_opened, 2u);
  EXPECT_GE(responder.connections(), 2);
  for (const auto& sr : report->sends)
    EXPECT_EQ(sr.outcome, QueryOutcome::Answered);
}

// Without reconnect, queries stranded on a lost connection must be counted
// as lost — not leaked as silent forever-pending entries.
TEST(QueryLifecycleT, TcpLossWithoutReconnectCountsExpired) {
  FlakyTcpResponder responder;

  std::vector<TraceRecord> trace;
  dns::Message q = dns::Message::make_query(
      7, *dns::Name::parse("lost.example.com"), dns::RRType::A);
  trace.push_back(trace::make_query_record(0, Endpoint{IpAddr{Ip4{10, 3, 3, 3}}, 42000},
                                           Endpoint{IpAddr{}, 53}, q,
                                           Transport::Tcp));

  EngineConfig cfg;
  cfg.server = responder.endpoint();
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.tcp_reconnect = false;
  cfg.query_timeout = kSecond;
  cfg.drain_grace = 3 * kSecond;
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_EQ(report->queries_sent, 1u);
  EXPECT_EQ(report->responses_received, 0u);
  EXPECT_EQ(report->lifecycle.expired, 1u);
  EXPECT_EQ(report->lifecycle.tcp_reconnects, 0u);
  EXPECT_EQ(report->sends[0].outcome, QueryOutcome::Errored);
}

}  // namespace
}  // namespace ldp::replay
