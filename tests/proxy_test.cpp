// Tests for the proxy rewrite algebra (§2.4): capture rules, the
// src<-original-dst substitution, end-to-end query/response address flow,
// raw-packet checksum fixing, and the threaded pipeline.
#include <gtest/gtest.h>

#include "proxy/pipeline.hpp"
#include "proxy/proxy.hpp"
#include "trace/pcap.hpp"

namespace ldp::proxy {
namespace {

const IpAddr kRecursive{Ip4{10, 0, 0, 2}};
const IpAddr kMeta{Ip4{10, 0, 0, 3}};
const IpAddr kComServer{Ip4{192, 5, 6, 30}};  // a.gtld-servers.net

Datagram query_pkt() {
  Datagram pkt;
  pkt.src = Endpoint{kRecursive, 42001};
  pkt.dst = Endpoint{kComServer, 53};
  pkt.payload = {0xde, 0xad};
  return pkt;
}

TEST(ServerProxy, RecursiveProxyRewritesQueries) {
  ServerProxy proxy(ServerProxy::Role::Recursive, kMeta);
  Datagram pkt = query_pkt();
  ASSERT_TRUE(proxy.rewrite(pkt));
  // src address becomes the OQDA (the .com server's public address); the
  // ephemeral port survives; dst becomes the meta server.
  EXPECT_TRUE(pkt.src.addr == kComServer);
  EXPECT_EQ(pkt.src.port, 42001);
  EXPECT_TRUE(pkt.dst.addr == kMeta);
  EXPECT_EQ(pkt.dst.port, 53);
  EXPECT_EQ(proxy.rewritten(), 1u);
}

TEST(ServerProxy, RecursiveProxyIgnoresResponses) {
  ServerProxy proxy(ServerProxy::Role::Recursive, kMeta);
  Datagram pkt;
  pkt.src = Endpoint{kComServer, 53};
  pkt.dst = Endpoint{kRecursive, 42001};
  EXPECT_FALSE(proxy.captures(pkt));
  EXPECT_FALSE(proxy.rewrite(pkt));
  EXPECT_EQ(proxy.rewritten(), 0u);
}

TEST(ServerProxy, AuthoritativeProxyRewritesResponses) {
  ServerProxy proxy(ServerProxy::Role::Authoritative, kRecursive);
  // Meta server answered: its reply goes to the OQDA it saw as query source.
  Datagram pkt;
  pkt.src = Endpoint{kMeta, 53};
  pkt.dst = Endpoint{kComServer, 42001};
  ASSERT_TRUE(proxy.rewrite(pkt));
  // Reply now appears to come from the .com server, heading to the recursive.
  EXPECT_TRUE(pkt.src.addr == kComServer);
  EXPECT_EQ(pkt.src.port, 53);
  EXPECT_TRUE(pkt.dst.addr == kRecursive);
  EXPECT_EQ(pkt.dst.port, 42001);
}

TEST(ServerProxy, FullRoundTripRestoresIllusion) {
  // Chain both proxies: the recursive must see a reply whose source matches
  // its original query destination and whose dst port matches its ephemeral
  // port — that is the §2.4 correctness condition.
  ServerProxy rec_proxy(ServerProxy::Role::Recursive, kMeta);
  ServerProxy aut_proxy(ServerProxy::Role::Authoritative, kRecursive);

  Datagram q = query_pkt();
  Endpoint original_dst = q.dst;
  Endpoint original_src = q.src;
  ASSERT_TRUE(rec_proxy.rewrite(q));

  // Meta server's reply swaps src/dst of the query as any UDP server does.
  Datagram r;
  r.src = Endpoint{kMeta, q.dst.port};
  r.dst = q.src;
  ASSERT_TRUE(aut_proxy.rewrite(r));

  EXPECT_TRUE(r.src.addr == original_dst.addr);  // from the "real" server
  EXPECT_EQ(r.src.port, original_dst.port);
  EXPECT_TRUE(r.dst.addr == original_src.addr);  // back to the recursive
  EXPECT_EQ(r.dst.port, original_src.port);
}

TEST(ServerProxy, ZoneSelectorSurvivesForDifferentLevels) {
  // Queries to different hierarchy levels arrive at the meta server with
  // different source addresses — the split-horizon selector.
  ServerProxy rec_proxy(ServerProxy::Role::Recursive, kMeta);
  const IpAddr root{Ip4{198, 41, 0, 4}};
  const IpAddr google_ns{Ip4{216, 239, 32, 10}};

  for (const IpAddr& level : {root, kComServer, google_ns}) {
    Datagram q;
    q.src = Endpoint{kRecursive, 42001};
    q.dst = Endpoint{level, 53};
    ASSERT_TRUE(rec_proxy.rewrite(q));
    EXPECT_TRUE(q.src.addr == level);
  }
}

TEST(RawRewrite, FixesChecksums) {
  // Build a real IPv4/UDP packet via the pcap writer, rewrite it, and check
  // both checksums still verify.
  trace::PcapWriter w;
  dns::Message msg = dns::Message::make_query(1, *dns::Name::parse("x.example"),
                                              dns::RRType::A);
  auto rec = trace::make_query_record(0, Endpoint{IpAddr{Ip4{10, 0, 0, 2}}, 42001},
                                      Endpoint{IpAddr{Ip4{192, 5, 6, 30}}, 53}, msg);
  w.add(rec);
  auto pcap = std::move(w).take();
  // Packet starts after the 24-byte pcap global header + 16-byte record hdr.
  std::vector<uint8_t> packet(pcap.begin() + 40, pcap.end());

  ASSERT_TRUE(rewrite_raw_ipv4_udp(packet, Ip4{192, 5, 6, 30}, Ip4{10, 0, 0, 3}).ok());

  // IPv4 header checksum verifies (sums to zero).
  EXPECT_EQ(trace::inet_checksum(std::span<const uint8_t>(packet.data(), 20)), 0);
  // Addresses rewritten.
  EXPECT_EQ(packet[12], 192);
  EXPECT_EQ(packet[16], 10);
  // UDP checksum verifies over the pseudo-header.
  ByteWriter pseudo;
  pseudo.u32(Ip4{192, 5, 6, 30}.value());
  pseudo.u32(Ip4{10, 0, 0, 3}.value());
  pseudo.u8(0);
  pseudo.u8(17);
  pseudo.u16(static_cast<uint16_t>(packet.size() - 20));
  pseudo.bytes(std::span<const uint8_t>(packet.data() + 20, packet.size() - 20));
  uint16_t check = trace::inet_checksum(pseudo.data());
  EXPECT_TRUE(check == 0 || check == 0xffff);
}

TEST(RawRewrite, RejectsNonUdpAndShortPackets) {
  std::vector<uint8_t> tiny(10, 0);
  EXPECT_FALSE(rewrite_raw_ipv4_udp(tiny, Ip4{1, 1, 1, 1}, Ip4{2, 2, 2, 2}).ok());

  std::vector<uint8_t> tcp(40, 0);
  tcp[0] = 0x45;
  tcp[9] = 6;  // TCP
  EXPECT_FALSE(rewrite_raw_ipv4_udp(tcp, Ip4{1, 1, 1, 1}, Ip4{2, 2, 2, 2}).ok());
}

TEST(Pipeline, WorkersRewriteAndForward) {
  std::mutex mu;
  std::vector<Datagram> sent;
  {
    ProxyPipeline pipeline(ServerProxy(ServerProxy::Role::Recursive, kMeta),
                           [&](Datagram&& pkt) {
                             std::lock_guard lock(mu);
                             sent.push_back(std::move(pkt));
                           },
                           /*workers=*/4, /*queue_capacity=*/64);
    for (int i = 0; i < 500; ++i) {
      Datagram pkt = query_pkt();
      pkt.src.port = static_cast<uint16_t>(42000 + i);
      pipeline.submit(std::move(pkt));
    }
    // Non-matching packet gets dropped, not forwarded.
    Datagram resp;
    resp.src = Endpoint{kComServer, 53};
    resp.dst = Endpoint{kRecursive, 42001};
    pipeline.submit(std::move(resp));
    pipeline.shutdown();
    EXPECT_EQ(pipeline.forwarded(), 500u);
    EXPECT_EQ(pipeline.dropped(), 1u);
  }
  EXPECT_EQ(sent.size(), 500u);
  for (const auto& pkt : sent) {
    EXPECT_TRUE(pkt.dst.addr == kMeta);
    EXPECT_TRUE(pkt.src.addr == kComServer);
  }
}

TEST(BoundedQueueT, CloseDrainsThenStops) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

}  // namespace
}  // namespace ldp::proxy
