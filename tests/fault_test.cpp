// Unit tests for the deterministic impairment layer (ldp::fault): the spec
// mini-language parser (round-trips, unit handling, error reporting), the
// named-stream seeding, the fixed-draw determinism contract FaultStream
// promises its consumers, the time-window impairments (blackhole, flap),
// and deterministic payload corruption.
#include <gtest/gtest.h>

#include "fault/fault.hpp"

namespace ldp::fault {
namespace {

// --- spec parsing -----------------------------------------------------------

TEST(FaultSpecT, EmptySpecIsTransparent) {
  auto spec = parse_fault_spec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->enabled());
  EXPECT_EQ(spec->seed, 1u);
}

TEST(FaultSpecT, ParsesEveryKey) {
  auto spec = parse_fault_spec(
      "loss:0.05,dup:0.01,reorder:0.02,gap:20ms,delay:5ms,jitter:2ms,"
      "corrupt:0.01,blackhole:2s-3s,flap:500ms/100ms,seed:42");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_DOUBLE_EQ(spec->drop, 0.05);
  EXPECT_DOUBLE_EQ(spec->dup, 0.01);
  EXPECT_DOUBLE_EQ(spec->reorder, 0.02);
  EXPECT_DOUBLE_EQ(spec->corrupt, 0.01);
  EXPECT_EQ(spec->reorder_gap, 20 * kMilli);
  EXPECT_EQ(spec->delay, 5 * kMilli);
  EXPECT_EQ(spec->jitter, 2 * kMilli);
  EXPECT_EQ(spec->blackhole_start, 2 * kSecond);
  EXPECT_EQ(spec->blackhole_end, 3 * kSecond);
  EXPECT_EQ(spec->flap_period, 500 * kMilli);
  EXPECT_EQ(spec->flap_down, 100 * kMilli);
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_TRUE(spec->enabled());
}

TEST(FaultSpecT, DurationUnits) {
  auto spec = parse_fault_spec("delay:250");  // bare number = ms
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->delay, 250 * kMilli);
  spec = parse_fault_spec("delay:250us,jitter:10ns,gap:1s");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->delay, 250 * kMicro);
  EXPECT_EQ(spec->jitter, 10);
  EXPECT_EQ(spec->reorder_gap, kSecond);
}

TEST(FaultSpecT, DropIsAnAliasForLoss) {
  auto spec = parse_fault_spec("drop:0.5");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec->drop, 0.5);
}

TEST(FaultSpecT, ToStringRoundTrips) {
  auto spec = parse_fault_spec(
      "loss:0.05,dup:0.01,reorder:0.02,gap:20ms,corrupt:0.01,delay:5ms,"
      "jitter:2ms,blackhole:2s-3s,flap:500ms/100ms,seed:42");
  ASSERT_TRUE(spec.ok());
  auto again = parse_fault_spec(spec->to_string());
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_DOUBLE_EQ(again->drop, spec->drop);
  EXPECT_DOUBLE_EQ(again->dup, spec->dup);
  EXPECT_DOUBLE_EQ(again->reorder, spec->reorder);
  EXPECT_DOUBLE_EQ(again->corrupt, spec->corrupt);
  EXPECT_EQ(again->reorder_gap, spec->reorder_gap);
  EXPECT_EQ(again->delay, spec->delay);
  EXPECT_EQ(again->jitter, spec->jitter);
  EXPECT_EQ(again->blackhole_start, spec->blackhole_start);
  EXPECT_EQ(again->blackhole_end, spec->blackhole_end);
  EXPECT_EQ(again->flap_period, spec->flap_period);
  EXPECT_EQ(again->flap_down, spec->flap_down);
  EXPECT_EQ(again->seed, spec->seed);
}

TEST(FaultSpecT, SlowClientKnobParsesAndRoundTrips) {
  auto spec = parse_fault_spec("slow_client:0.3,drip:50ms,seed:7");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_DOUBLE_EQ(spec->slow_client, 0.3);
  EXPECT_EQ(spec->slow_drip, 50 * kMilli);
  // A behaviour knob, not a link impairment: the stream stays transparent.
  EXPECT_FALSE(spec->enabled());
  auto again = parse_fault_spec(spec->to_string());
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_DOUBLE_EQ(again->slow_client, spec->slow_client);
  EXPECT_EQ(again->slow_drip, spec->slow_drip);
}

TEST(FaultSpecT, SlowClientVerdictIsSeedDeterministic) {
  FaultSpec spec;
  spec.seed = 42;
  spec.slow_client = 0.4;
  // Pure function of (seed, connection index): identical across calls, and
  // edge probabilities short-circuit without touching the RNG.
  for (uint64_t i = 0; i < 32; ++i)
    EXPECT_EQ(spec.is_slow_client(i), spec.is_slow_client(i));
  // Committed regression for seed 42: the slow set among the first 16.
  std::vector<uint64_t> slow;
  for (uint64_t i = 0; i < 16; ++i)
    if (spec.is_slow_client(i)) slow.push_back(i);
  EXPECT_EQ(slow, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5, 6, 7, 13, 14}));

  spec.slow_client = 0;
  EXPECT_FALSE(spec.is_slow_client(3));
  spec.slow_client = 1;
  EXPECT_TRUE(spec.is_slow_client(3));
}

TEST(FaultSpecT, RejectsBadInput) {
  EXPECT_FALSE(parse_fault_spec("bogus:1").ok());
  EXPECT_FALSE(parse_fault_spec("loss").ok());          // no value
  EXPECT_FALSE(parse_fault_spec("loss:1.5").ok());      // probability > 1
  EXPECT_FALSE(parse_fault_spec("loss:-0.1").ok());     // negative
  EXPECT_FALSE(parse_fault_spec("loss:abc").ok());
  EXPECT_FALSE(parse_fault_spec("delay:5parsecs").ok());
  EXPECT_FALSE(parse_fault_spec("blackhole:3s").ok());  // no range
  EXPECT_FALSE(parse_fault_spec("blackhole:3s-2s").ok());  // empty window
  EXPECT_FALSE(parse_fault_spec("flap:100ms").ok());    // no down
  EXPECT_FALSE(parse_fault_spec("flap:100ms/100ms").ok());  // down == period
  EXPECT_FALSE(parse_fault_spec("flap:100ms/200ms").ok());  // down > period
  EXPECT_FALSE(parse_fault_spec("seed:notanumber").ok());
  EXPECT_FALSE(parse_fault_spec("slow_client:1.5").ok());  // probability > 1
  EXPECT_FALSE(parse_fault_spec("drip:0ms").ok());         // must be positive
}

// --- stream seeding ---------------------------------------------------------

TEST(StreamSeedT, StableAndNameSensitive) {
  EXPECT_EQ(stream_seed(42, "udp:10.0.0.1"), stream_seed(42, "udp:10.0.0.1"));
  EXPECT_NE(stream_seed(42, "udp:10.0.0.1"), stream_seed(42, "udp:10.0.0.2"));
  EXPECT_NE(stream_seed(42, "udp:10.0.0.1"), stream_seed(43, "udp:10.0.0.1"));
  EXPECT_NE(stream_seed(42, "udp:10.0.0.1"), stream_seed(42, "tcp:10.0.0.1"));
}

// --- verdict determinism ----------------------------------------------------

FaultSpec lossy_spec() {
  FaultSpec spec;
  spec.drop = 0.3;
  spec.dup = 0.1;
  spec.corrupt = 0.1;
  spec.seed = 42;
  return spec;
}

TEST(FaultStreamT, SameNameSameSeedSameVerdicts) {
  FaultStream a(lossy_spec(), "udp:10.0.0.1");
  FaultStream b(lossy_spec(), "udp:10.0.0.1");
  for (int i = 0; i < 1000; ++i) {
    Verdict va = a.next(i * kMilli);
    Verdict vb = b.next(i * kMilli);
    EXPECT_EQ(va.action, vb.action);
    EXPECT_EQ(va.reason, vb.reason);
    EXPECT_EQ(va.extra_delay, vb.extra_delay);
  }
  EXPECT_EQ(a.counters(), b.counters());
  EXPECT_EQ(a.counters().processed, 1000u);
  EXPECT_GT(a.counters().dropped, 0u);  // p=0.3 over 1000 draws
}

TEST(FaultStreamT, DifferentNamesDrawDifferentSequences) {
  FaultStream a(lossy_spec(), "udp:10.0.0.1");
  FaultStream b(lossy_spec(), "udp:10.0.0.2");
  int divergences = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next(i * kMilli).action != b.next(i * kMilli).action) ++divergences;
  }
  EXPECT_GT(divergences, 0);
}

// The determinism contract itself: interleaving corrupt() calls (variable
// draws) between verdicts must not change the decision sequence, because
// corruption uses its own engine.
TEST(FaultStreamT, CorruptionDrawsDoNotPerturbDecisions) {
  FaultStream plain(lossy_spec(), "udp:10.0.0.1");
  FaultStream noisy(lossy_spec(), "udp:10.0.0.1");
  std::vector<uint8_t> payload(64, 0xab);
  for (int i = 0; i < 500; ++i) {
    Verdict vp = plain.next(i * kMilli);
    Verdict vn = noisy.next(i * kMilli);
    EXPECT_EQ(vp.action, vn.action);
    noisy.corrupt(payload);  // extra draws on the corruption engine only
  }
}

// A packet's decision depends only on its index in the stream, not on which
// impairments are configured around it: turning corruption off must not
// move the drop pattern.
TEST(FaultStreamT, FixedDrawScheduleAcrossSpecVariants) {
  FaultSpec with_corrupt = lossy_spec();
  FaultSpec without_corrupt = lossy_spec();
  without_corrupt.corrupt = 0;
  FaultStream a(with_corrupt, "udp:10.0.0.1");
  FaultStream b(without_corrupt, "udp:10.0.0.1");
  for (int i = 0; i < 1000; ++i) {
    bool drop_a = a.next(i * kMilli).is_drop();
    bool drop_b = b.next(i * kMilli).is_drop();
    EXPECT_EQ(drop_a, drop_b) << "drop pattern moved at packet " << i;
  }
  EXPECT_EQ(a.counters().dropped, b.counters().dropped);
}

// --- window impairments -----------------------------------------------------

TEST(FaultStreamT, BlackholeWindowIsHalfOpen) {
  FaultSpec spec;
  spec.blackhole_start = 100 * kMilli;
  spec.blackhole_end = 200 * kMilli;
  spec.seed = 1;
  FaultStream s(spec, "w");
  // First packet latches the origin at t=1s; offsets are relative to it.
  const TimeNs t0 = kSecond;
  struct Case {
    TimeNs offset;
    bool inside;
  };
  const Case cases[] = {{0, false},           {99 * kMilli, false},
                        {100 * kMilli, true}, {150 * kMilli, true},
                        {199 * kMilli, true}, {200 * kMilli, false},
                        {kSecond, false}};
  for (const auto& c : cases) {
    Verdict v = s.next(t0 + c.offset);
    EXPECT_EQ(v.is_drop(), c.inside) << "offset " << c.offset;
    if (c.inside) {
      EXPECT_EQ(v.reason, DropReason::Blackhole);
    }
  }
  EXPECT_EQ(s.counters().blackholed, 3u);
  EXPECT_EQ(s.counters().processed, 7u);
}

TEST(FaultStreamT, FlapDropsTheFirstPartOfEveryPeriod) {
  FaultSpec spec;
  spec.flap_period = 100 * kMilli;
  spec.flap_down = 30 * kMilli;
  spec.seed = 1;
  FaultStream s(spec, "w");
  struct Case {
    TimeNs offset;
    bool down;
  };
  const Case cases[] = {{0, true},            {29 * kMilli, true},
                        {30 * kMilli, false}, {99 * kMilli, false},
                        {100 * kMilli, true}, {129 * kMilli, true},
                        {130 * kMilli, false}};
  for (const auto& c : cases) {
    Verdict v = s.next(c.offset);
    EXPECT_EQ(v.is_drop(), c.down) << "offset " << c.offset;
    if (c.down) {
      EXPECT_EQ(v.reason, DropReason::Flap);
    }
  }
  EXPECT_EQ(s.counters().flap_dropped, 4u);
}

TEST(FaultStreamT, DelayAndJitterAddExtraLatency) {
  FaultSpec spec;
  spec.delay = 5 * kMilli;
  spec.jitter = 2 * kMilli;
  spec.seed = 9;
  FaultStream s(spec, "d");
  for (int i = 0; i < 100; ++i) {
    Verdict v = s.next(i);
    EXPECT_EQ(v.action, Action::Deliver);
    EXPECT_GE(v.extra_delay, 5 * kMilli);
    EXPECT_LT(v.extra_delay, 7 * kMilli);
  }
  EXPECT_EQ(s.counters().delayed, 100u);
}

TEST(FaultStreamT, ReorderAddsTheGap) {
  FaultSpec spec;
  spec.reorder = 1.0;  // every packet held back
  spec.reorder_gap = 20 * kMilli;
  spec.seed = 2;
  FaultStream s(spec, "r");
  Verdict v = s.next(0);
  EXPECT_EQ(v.action, Action::Deliver);
  EXPECT_EQ(v.extra_delay, 20 * kMilli);
  EXPECT_EQ(s.counters().reordered, 1u);
}

// --- payload corruption -----------------------------------------------------

TEST(FaultStreamT, CorruptAlwaysChangesThePayloadDeterministically) {
  FaultSpec spec;
  spec.corrupt = 1.0;
  spec.seed = 5;
  FaultStream a(spec, "c");
  FaultStream b(spec, "c");
  const std::vector<uint8_t> original(32, 0x55);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> pa = original;
    std::vector<uint8_t> pb = original;
    a.corrupt(pa);
    b.corrupt(pb);
    EXPECT_NE(pa, original);  // XOR with non-zero always changes bytes
    EXPECT_EQ(pa, pb);        // and deterministically so
    EXPECT_EQ(pa.size(), original.size());
  }
  std::vector<uint8_t> empty;
  a.corrupt(empty);  // no-op, no crash
  EXPECT_TRUE(empty.empty());
}

// --- counters ---------------------------------------------------------------

TEST(ImpairmentCountersT, MergeAndEquality) {
  ImpairmentCounters a;
  a.processed = 10;
  a.dropped = 2;
  a.blackholed = 1;
  a.flap_dropped = 1;
  a.duplicated = 3;
  ImpairmentCounters b;
  b.processed = 5;
  b.dropped = 1;
  b.corrupted = 2;
  b.reordered = 1;
  b.delayed = 4;
  ImpairmentCounters sum = a;
  sum.merge(b);
  EXPECT_EQ(sum.processed, 15u);
  EXPECT_EQ(sum.dropped, 3u);
  EXPECT_EQ(sum.blackholed, 1u);
  EXPECT_EQ(sum.flap_dropped, 1u);
  EXPECT_EQ(sum.duplicated, 3u);
  EXPECT_EQ(sum.corrupted, 2u);
  EXPECT_EQ(sum.reordered, 1u);
  EXPECT_EQ(sum.delayed, 4u);
  EXPECT_EQ(sum.lost(), 5u);
  EXPECT_FALSE(sum == a);
  ImpairmentCounters sum2 = a;
  sum2.merge(b);
  EXPECT_TRUE(sum == sum2);
  EXPECT_FALSE(sum.summary().empty());
}

// --- strict parser error paths ----------------------------------------------

// A typo'd knob must fail loudly, not replay with a half-parsed value.
TEST(FaultSpecT, RejectsTrailingGarbageAndMalformedNumbers) {
  EXPECT_FALSE(parse_fault_spec("loss:0.5x").ok());     // trailing garbage
  EXPECT_FALSE(parse_fault_spec("loss:1.2.3").ok());    // second dot
  EXPECT_FALSE(parse_fault_spec("loss:+0.5").ok());     // explicit sign
  EXPECT_FALSE(parse_fault_spec("loss:.5").ok());       // no leading digit
  EXPECT_FALSE(parse_fault_spec("loss:0.5e1").ok());    // would be > 1 anyway
  EXPECT_FALSE(parse_fault_spec("dup:2").ok());         // probability > 1
  EXPECT_FALSE(parse_fault_spec("corrupt:nan").ok());
  EXPECT_FALSE(parse_fault_spec("delay:ms").ok());      // unit, no number
  EXPECT_FALSE(parse_fault_spec("seed:12abc").ok());
  EXPECT_FALSE(parse_fault_spec("loss:0.1,bogus:1").ok());  // later bad key
}

TEST(FaultSpecT, ErrorsNameTheOffendingInput) {
  auto unknown = parse_fault_spec("losss:0.1");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().message.find("losss"), std::string::npos);
  auto range = parse_fault_spec("reorder:1.5");
  ASSERT_FALSE(range.ok());
  EXPECT_NE(range.error().message.find("[0,1]"), std::string::npos);
  auto garbage = parse_fault_spec("loss:0.5x");
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.error().message.find("0.5x"), std::string::npos);
}

// --- querier_stall (supervision fault injection) ----------------------------

TEST(FaultSpecT, ParsesQuerierStall) {
  auto spec = parse_fault_spec("querier_stall:3@250ms");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_EQ(spec->stall_querier, 3);
  EXPECT_EQ(spec->stall_after, 250 * kMilli);
  // Not a link impairment: it alone doesn't enable packet faults.
  EXPECT_FALSE(spec->enabled());

  auto at_start = parse_fault_spec("querier_stall:0");
  ASSERT_TRUE(at_start.ok());
  EXPECT_EQ(at_start->stall_querier, 0);
  EXPECT_EQ(at_start->stall_after, 0);

  EXPECT_FALSE(parse_fault_spec("querier_stall:-1").ok());
  EXPECT_FALSE(parse_fault_spec("querier_stall:abc").ok());
  EXPECT_FALSE(parse_fault_spec("querier_stall:1@xyz").ok());
}

TEST(FaultSpecT, QuerierStallRoundTripsThroughToString) {
  auto spec = parse_fault_spec("loss:0.1,querier_stall:2@1s,seed:7");
  ASSERT_TRUE(spec.ok());
  auto again = parse_fault_spec(spec->to_string());
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_EQ(again->stall_querier, 2);
  EXPECT_EQ(again->stall_after, kSecond);
  EXPECT_DOUBLE_EQ(again->drop, 0.1);
  EXPECT_EQ(again->seed, 7u);
}

// --- checkpoint/resume draw positions ---------------------------------------

// The resume contract: a fresh stream restored to a checkpointed position
// must produce the same verdicts (and corruption bytes) the original stream
// would have produced had it never stopped.
TEST(FaultStreamT, RestoreContinuesTheDrawSequence) {
  FaultSpec spec = lossy_spec();
  constexpr TimeNs kOrigin = 1000 * kSecond;

  FaultStream uninterrupted(lossy_spec(), "udp:10.0.0.1");
  std::vector<Verdict> expect;
  std::vector<uint8_t> pay_a(32, 0x5a);
  for (int i = 0; i < 400; ++i) {
    Verdict v = uninterrupted.next(kOrigin + i * kMilli);
    if (v.action == Action::Corrupt) uninterrupted.corrupt(pay_a);
    expect.push_back(v);
  }

  // Same run, split at packet 150 through a position snapshot.
  FaultStream first(spec, "udp:10.0.0.1");
  std::vector<uint8_t> pay_b(32, 0x5a);
  for (int i = 0; i < 150; ++i) {
    Verdict v = first.next(kOrigin + i * kMilli);
    EXPECT_EQ(v.action, expect[i].action);
    if (v.action == Action::Corrupt) first.corrupt(pay_b);
  }
  FaultStream::Position pos = first.position(kOrigin);
  EXPECT_EQ(pos.packets, 150u);

  FaultStream second(spec, "udp:10.0.0.1");
  second.restore(pos, kOrigin);
  for (int i = 150; i < 400; ++i) {
    Verdict v = second.next(kOrigin + i * kMilli);
    EXPECT_EQ(v.action, expect[i].action) << "diverged at packet " << i;
    EXPECT_EQ(v.extra_delay, expect[i].extra_delay);
    if (v.action == Action::Corrupt) second.corrupt(pay_b);
  }
  EXPECT_EQ(pay_a, pay_b);  // corruption engine resumed in lock-step too
  // Positions are cumulative across the restore.
  EXPECT_EQ(second.position(kOrigin).packets, 400u);
  EXPECT_EQ(second.position(kOrigin), uninterrupted.position(kOrigin));
}

// Window faults (blackhole/flap) must re-anchor on a fresh monotonic
// timeline: the restored stream sees the same trace-relative windows even
// though its process booted at a different absolute time.
TEST(FaultStreamT, RestoreReanchorsWindowsOnANewTimeline) {
  FaultSpec spec;
  spec.blackhole_start = 100 * kMilli;
  spec.blackhole_end = 200 * kMilli;
  spec.seed = 9;

  FaultStream original(spec, "udp:10.0.0.9");
  constexpr TimeNs kOrigin1 = 50 * kSecond;
  // Latch the window origin, stay before the blackhole.
  EXPECT_EQ(original.next(kOrigin1 + 10 * kMilli).action, Action::Deliver);
  FaultStream::Position pos = original.position(kOrigin1);
  EXPECT_NE(pos.origin_offset, FaultStream::kNoOrigin);

  // "New process": different origin, same trace-relative schedule.
  constexpr TimeNs kOrigin2 = 9000 * kSecond;
  FaultStream resumed(spec, "udp:10.0.0.9");
  resumed.restore(pos, kOrigin2);
  EXPECT_EQ(resumed.next(kOrigin2 + 150 * kMilli).action, Action::Drop);
  EXPECT_EQ(resumed.counters().blackholed, 1u);
  EXPECT_EQ(resumed.next(kOrigin2 + 250 * kMilli).action, Action::Deliver);
}

TEST(FaultStreamT, UnlatchedPositionRestoresAsUnlatched) {
  FaultSpec spec = lossy_spec();
  FaultStream never_ran(spec, "udp:10.0.0.3");
  FaultStream::Position pos = never_ran.position(123 * kSecond);
  EXPECT_EQ(pos.packets, 0u);
  EXPECT_EQ(pos.origin_offset, FaultStream::kNoOrigin);

  FaultStream fresh(spec, "udp:10.0.0.3");
  fresh.restore(pos, 456 * kSecond);
  FaultStream plain(spec, "udp:10.0.0.3");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fresh.next(i * kMilli).action, plain.next(i * kMilli).action);
  }
}

}  // namespace
}  // namespace ldp::fault
