// Unit tests for the util layer: Result, byte codecs, strings, stats, ip,
// base64, rng distributions.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <thread>

#include "util/base64.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"
#include "util/metrics.hpp"
#include "util/queue.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace ldp {
namespace {

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad = Err("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = Ok();
  EXPECT_TRUE(ok.ok());
  Result<void> bad = Err("broken");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "broken");
}

TEST(ByteReader, BigEndianIntegers) {
  std::vector<uint8_t> data = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  ByteReader rd(data);
  EXPECT_EQ(*rd.u16(), 0x0102u);
  EXPECT_EQ(*rd.u32(), 0x03040506u);
  EXPECT_EQ(rd.remaining(), 2u);
  EXPECT_FALSE(rd.u32().ok());  // only 2 bytes left
}

TEST(ByteReader, LittleEndianIntegers) {
  std::vector<uint8_t> data = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06};
  ByteReader rd(data);
  EXPECT_EQ(*rd.u16_le(), 0x0201u);
  EXPECT_EQ(*rd.u32_le(), 0x06050403u);
}

TEST(ByteReader, SeekAndSkip) {
  std::vector<uint8_t> data(10, 0xaa);
  ByteReader rd(data);
  EXPECT_TRUE(rd.skip(5).ok());
  EXPECT_EQ(rd.pos(), 5u);
  EXPECT_FALSE(rd.skip(6).ok());
  EXPECT_TRUE(rd.seek(0).ok());
  EXPECT_FALSE(rd.seek(11).ok());
  EXPECT_TRUE(rd.seek(10).ok());  // end is a valid cursor
  EXPECT_TRUE(rd.empty());
}

TEST(ByteWriter, RoundTripAndPatch) {
  ByteWriter w;
  w.u16(0);  // placeholder
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.patch_u16(0, 0xcafe);
  ByteReader rd(w.data());
  EXPECT_EQ(*rd.u16(), 0xcafeu);
  EXPECT_EQ(*rd.u32(), 0xdeadbeefu);
  EXPECT_EQ(*rd.u64(), 0x0123456789abcdefull);
}

TEST(Hex, RoundTrip) {
  std::vector<uint8_t> data = {0x00, 0x7f, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "007fff10");
  auto back = from_hex("007fff10");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  EXPECT_FALSE(from_hex("abc").ok());
  EXPECT_FALSE(from_hex("zz").ok());
}

TEST(Base64, RoundTrip) {
  std::vector<uint8_t> data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<uint8_t>(i * 7));
  auto enc = base64_encode(data);
  auto dec = base64_decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, data);
}

TEST(Base64, KnownVectors) {
  // RFC 4648 test vectors.
  auto enc = [](std::string_view s) {
    return base64_encode(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  };
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "Zg==");
  EXPECT_EQ(enc("fo"), "Zm8=");
  EXPECT_EQ(enc("foo"), "Zm9v");
  EXPECT_EQ(enc("foobar"), "Zm9vYmFy");
}

TEST(Base64, IgnoresWhitespaceRejectsJunk) {
  auto dec = base64_decode("Zm9v\n YmFy");
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->size(), 6u);
  EXPECT_FALSE(base64_decode("Z!9v").ok());
  EXPECT_FALSE(base64_decode("Zg==Zg").ok());  // data after padding
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsSkipsRuns) {
  auto parts = split_ws("  foo\t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("WwW.ExAmPlE"), "www.example");
  EXPECT_TRUE(iequals("Foo", "fOO"));
  EXPECT_FALSE(iequals("foo", "fooo"));
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(*parse_u64("12345"), 12345u);
  EXPECT_FALSE(parse_u64("").ok());
  EXPECT_FALSE(parse_u64("12x").ok());
  EXPECT_FALSE(parse_u64("99999999999999999999999").ok());
}

TEST(Strings, SecondsNsRoundTrip) {
  EXPECT_EQ(*parse_seconds_ns("1.5"), 1500000000);
  EXPECT_EQ(*parse_seconds_ns("0.000001"), 1000);
  EXPECT_EQ(*parse_seconds_ns("42"), 42000000000);
  EXPECT_FALSE(parse_seconds_ns("-1").ok());
  EXPECT_FALSE(parse_seconds_ns("1.0000000001").ok());
  EXPECT_EQ(format_seconds_ns(1500000000), "1.500000");
  EXPECT_EQ(format_seconds_ns(parse_seconds_ns("12.345678").value()), "12.345678");
}

TEST(Ip4, ParseFormat) {
  auto a = Ip4::parse("192.0.2.1");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->to_string(), "192.0.2.1");
  EXPECT_EQ(a->value(), 0xc0000201u);
  EXPECT_FALSE(Ip4::parse("256.0.0.1").ok());
  EXPECT_FALSE(Ip4::parse("1.2.3").ok());
  EXPECT_FALSE(Ip4::parse("a.b.c.d").ok());
}

TEST(Ip6, ParseFormatCanonical) {
  auto a = Ip6::parse("2001:db8::1");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->to_string(), "2001:db8::1");
  auto b = Ip6::parse("::");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->to_string(), "::");
  auto c = Ip6::parse("2001:0DB8:0:0:1:0:0:1");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->to_string(), "2001:db8::1:0:0:1");
  EXPECT_FALSE(Ip6::parse("1::2::3").ok());
  EXPECT_FALSE(Ip6::parse("12345::").ok());
}

TEST(IpAddr, MixedOrderingAndHash) {
  IpAddr v4{*Ip4::parse("10.0.0.1")};
  IpAddr v6{*Ip6::parse("::1")};
  EXPECT_TRUE(v4.is_v4());
  EXPECT_TRUE(v6.is_v6());
  EXPECT_FALSE(v4 == v6);
  EXPECT_TRUE(v4 < v6);  // v4 sorts before v6
  IpAddr v4b{*Ip4::parse("10.0.0.1")};
  EXPECT_EQ(v4.hash(), v4b.hash());
  EXPECT_TRUE(v4 == v4b);
}

TEST(Endpoint, Formatting) {
  Endpoint e{IpAddr{Ip4{192, 0, 2, 53}}, 53};
  EXPECT_EQ(e.to_string(), "192.0.2.53:53");
  Endpoint e6{IpAddr{*Ip6::parse("::1")}, 853};
  EXPECT_EQ(e6.to_string(), "[::1]:853");
}

TEST(Sampler, QuantilesExact) {
  Sampler s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  auto sum = s.summary();
  EXPECT_EQ(sum.count, 100u);
  EXPECT_NEAR(sum.mean, 50.5, 1e-9);
  EXPECT_NEAR(sum.median, 50.5, 1e-9);
  EXPECT_LT(sum.q1, sum.median);
  EXPECT_LT(sum.median, sum.q3);
  EXPECT_LT(sum.p5, sum.q1);
  EXPECT_LT(sum.q3, sum.p95);
}

TEST(Sampler, CdfMonotone) {
  Sampler s;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) s.add(rng.uniform01());
  auto cdf = s.cdf(100);
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second + 1e-12);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(RateCounter, BucketsWithGaps) {
  RateCounter rc(1000);
  rc.add(100);
  rc.add(900);
  rc.add(3500);
  auto series = rc.series();
  ASSERT_EQ(series.size(), 4u);  // windows 0..3
  EXPECT_EQ(series[0], 2u);
  EXPECT_EQ(series[1], 0u);
  EXPECT_EQ(series[2], 0u);
  EXPECT_EQ(series[3], 1u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, LognormalMatchesTargetMoments) {
  Rng rng(1);
  double mean = 0.18, sd = 0.35;  // Rec-17 inter-arrival stats from Table 1
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.lognormal_mean_sd(mean, sd);
    sum += v;
    sum2 += v * v;
  }
  double m = sum / n;
  double s = std::sqrt(sum2 / n - m * m);
  EXPECT_NEAR(m, mean, 0.01);
  EXPECT_NEAR(s, sd, 0.05);
}

TEST(Zipf, HeavyTail) {
  // With s≈1 over 100k clients, the top 1% of ranks should absorb a large
  // fraction of draws — the B-Root client skew the paper reports.
  Rng rng(3);
  ZipfSampler zipf(100000, 1.0);
  const int n = 200000;
  int top1pct = 0;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample(rng) < 1000) ++top1pct;
  }
  double frac = static_cast<double>(top1pct) / n;
  EXPECT_GT(frac, 0.5);
  EXPECT_LT(frac, 0.95);
}

TEST(Zipf, CoversAllRanks) {
  Rng rng(9);
  ZipfSampler zipf(10, 0.8);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 20000; ++i) ++hits[zipf.sample(rng)];
  for (int h : hits) EXPECT_GT(h, 0);
  // Monotone non-increasing popularity by rank (statistically).
  EXPECT_GT(hits[0], hits[9]);
}

TEST(BoundedQueue, PushPopFifo) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
}

TEST(BoundedQueue, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));  // rejected after close
  EXPECT_EQ(*q.pop(), 7);   // buffered items still drain
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.closed_and_empty());
}

// Race regression: close() while producers are blocked in push() on a full
// queue must wake every one of them with push() == false, never deadlock,
// and every pop must observe either a real item or the shutdown nullopt.
TEST(BoundedQueue, CloseWhilePushersBlockedOnFullQueue) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));  // queue now full

  constexpr int kProducers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&q, &rejected, i] {
      if (!q.push(100 + i)) rejected.fetch_add(1);
    });
  }
  // Let the producers reach the full-queue wait, then close underneath them.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : producers) t.join();

  // All blocked pushers must have been rejected (capacity never freed up).
  EXPECT_EQ(rejected.load(), kProducers);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

// Consumers blocked in pop() on an empty queue must all wake on close().
TEST(BoundedQueue, CloseWakesBlockedPoppers) {
  BoundedQueue<int> q(4);
  constexpr int kConsumers = 4;
  std::atomic<int> got_nullopt{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&q, &got_nullopt] {
      if (!q.pop().has_value()) got_nullopt.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(got_nullopt.load(), kConsumers);
}

TEST(Histogram, QuantilesAndMerge) {
  metrics::Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<TimeNs>(i) * kMilli);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), kMilli);
  EXPECT_EQ(h.max(), 100 * kMilli);
  // Log-bucketed: quantiles are approximate but must land within the
  // enclosing power-of-two bucket of the exact value.
  double p50 = static_cast<double>(h.quantile(0.5));
  EXPECT_GT(p50, 25.0 * kMilli);
  EXPECT_LT(p50, 101.0 * kMilli);
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());

  metrics::Histogram other;
  other.add(kSecond);
  h.merge(other);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(h.max(), kSecond);
}

TEST(Histogram, EmptyIsSafe) {
  metrics::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_FALSE(h.summary_ms().empty());
}

// Merge with an empty histogram in either order must neither invent
// samples nor clobber min/max (regression: merging a non-empty `other`
// into an empty `this` once inherited this->min_/max_ zeroes; the guards
// in merge() make both directions exact no-ops/copies).
TEST(Histogram, MergeEmptyOtherPreservesMinMax) {
  metrics::Histogram h;
  h.add(5);
  h.add(90);
  metrics::Histogram empty;
  h.merge(empty);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 90);
}

TEST(Histogram, MergeIntoEmptyCopiesMinMax) {
  metrics::Histogram h;
  h.add(5);
  h.add(90);
  metrics::Histogram empty;
  empty.merge(h);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), 5);
  EXPECT_EQ(empty.max(), 90);
  // ...and a later real merge still widens correctly.
  metrics::Histogram more;
  more.add(1);
  more.add(200);
  empty.merge(more);
  EXPECT_EQ(empty.count(), 4u);
  EXPECT_EQ(empty.min(), 1);
  EXPECT_EQ(empty.max(), 200);
}

TEST(Histogram, MergeTwoEmptiesStaysEmpty) {
  metrics::Histogram a, b;
  a.merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 0);
}

TEST(LifecycleCounters, MergeSums) {
  metrics::LifecycleCounters a, b;
  a.timeouts = 3;
  a.retries = 2;
  b.timeouts = 1;
  b.expired = 5;
  b.duplicate_ids = 4;
  a.merge(b);
  EXPECT_EQ(a.timeouts, 4u);
  EXPECT_EQ(a.retries, 2u);
  EXPECT_EQ(a.expired, 5u);
  EXPECT_EQ(a.duplicate_ids, 4u);
}

TEST(Result, CarriesSysErrno) {
  Result<int> bad = Err("recvfrom: would block", EAGAIN);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().sys_errno, EAGAIN);
  Result<int> plain = Err("no errno");
  EXPECT_EQ(plain.error().sys_errno, 0);
}

}  // namespace
}  // namespace ldp
