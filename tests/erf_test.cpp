// Tests for the ERF capture format (the DITL distribution format Figure 3
// names alongside pcap): round trips, timestamp fixed-point conversion,
// extension headers, junk skipping, and cross-format equivalence with pcap.
#include <gtest/gtest.h>

#include "trace/erf.hpp"
#include "trace/pcap.hpp"

namespace ldp::trace {
namespace {

using dns::Message;
using dns::Name;
using dns::RRType;

TraceRecord sample_record(TimeNs t, Transport transport = Transport::Udp) {
  Message q = Message::make_query(0x77, *Name::parse("erf.example.com"), RRType::A);
  return make_query_record(t, Endpoint{IpAddr{Ip4{198, 51, 100, 9}}, 44444},
                           Endpoint{IpAddr{Ip4{192, 0, 2, 53}}, 53}, q, transport);
}

TEST(Erf, UdpRoundTrip) {
  ErfWriter w;
  auto rec = sample_record(1461234567 * kSecond + 123456789);
  w.add(rec);
  auto reader = ErfReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok()) << reader.error().message;
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok()) << all.error().message;
  ASSERT_EQ(all->size(), 1u);
  const auto& got = (*all)[0];
  EXPECT_EQ(got.src, rec.src);
  EXPECT_EQ(got.dst, rec.dst);
  EXPECT_EQ(got.dns_payload, rec.dns_payload);
  // ERF fixed-point timestamps: sub-250ns round-trip error.
  EXPECT_NEAR(static_cast<double>(got.timestamp),
              static_cast<double>(rec.timestamp), 250.0);
}

TEST(Erf, TcpAndTlsClassified) {
  ErfWriter w;
  w.add(sample_record(kSecond, Transport::Tcp));
  auto tls = sample_record(2 * kSecond, Transport::Tls);
  tls.dst.port = 853;
  w.add(tls);
  auto reader = ErfReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].transport, Transport::Tcp);
  EXPECT_EQ((*all)[1].transport, Transport::Tls);
}

TEST(Erf, MultipleRecordsKeepOrder) {
  ErfWriter w;
  for (int i = 0; i < 50; ++i) w.add(sample_record(i * kMilli));
  EXPECT_EQ(w.record_count(), 50u);
  auto reader = ErfReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 50u);
  for (size_t i = 1; i < all->size(); ++i)
    EXPECT_GT((*all)[i].timestamp, (*all)[i - 1].timestamp);
}

TEST(Erf, SkipsNonDnsAndNonEthRecords) {
  ErfWriter w;
  auto junk = sample_record(0);
  junk.src.port = 8080;
  junk.dst.port = 80;
  w.add(junk);
  w.add(sample_record(kMilli));
  auto bytes = std::move(w).take();

  // Append a hand-built non-ETH (type 1 = HDLC) record.
  ByteWriter extra;
  extra.u32_le(0);
  extra.u32_le(1);
  extra.u8(1);  // type HDLC
  extra.u8(0);
  extra.u16(16 + 4);
  extra.u16(0);
  extra.u16(4);
  extra.u32(0xdeadbeef);
  auto extra_bytes = std::move(extra).take();
  bytes.insert(bytes.end(), extra_bytes.begin(), extra_bytes.end());

  auto reader = ErfReader::from_bytes(std::move(bytes));
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);
  EXPECT_EQ(reader->skipped(), 2u);
}

TEST(Erf, ExtensionHeadersSkipped) {
  // Build a record manually with one extension header before the payload.
  ErfWriter plain;
  auto rec = sample_record(5 * kSecond);
  plain.add(rec);
  auto base = std::move(plain).take();

  // Surgery: set the ext-header bit on type, insert an 8-byte ext header
  // after the 16-byte record header, and bump rlen.
  std::vector<uint8_t> hacked(base.begin(), base.end());
  hacked[8] |= 0x80;  // type |= ext bit
  uint16_t rlen = static_cast<uint16_t>(hacked[10] << 8 | hacked[11]);
  rlen += 8;
  hacked[10] = static_cast<uint8_t>(rlen >> 8);
  hacked[11] = static_cast<uint8_t>(rlen);
  std::vector<uint8_t> ext(8, 0);
  ext[0] = 0x01;  // one ext header, no chain bit
  hacked.insert(hacked.begin() + 16, ext.begin(), ext.end());

  auto reader = ErfReader::from_bytes(std::move(hacked));
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok()) << all.error().message;
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].dns_payload, rec.dns_payload);
}

TEST(Erf, TruncationIsAnError) {
  ErfWriter w;
  w.add(sample_record(0));
  auto bytes = std::move(w).take();
  bytes.resize(bytes.size() - 5);
  auto reader = ErfReader::from_bytes(std::move(bytes));
  ASSERT_TRUE(reader.ok());
  auto rec = reader->next();
  EXPECT_FALSE(rec.ok());
}

TEST(Erf, FileSaveLoad) {
  ErfWriter w;
  for (int i = 0; i < 10; ++i) w.add(sample_record(i * kMilli));
  std::string path = ::testing::TempDir() + "/ldp_test.erf";
  ASSERT_TRUE(w.save(path).ok());
  auto reader = ErfReader::open(path);
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 10u);
}

TEST(Erf, EquivalentToPcapForSameRecords) {
  // The same trace through both capture formats yields identical records
  // up to timestamp quantization.
  std::vector<TraceRecord> recs;
  for (int i = 0; i < 20; ++i)
    recs.push_back(sample_record(i * 10 * kMilli, i % 3 ? Transport::Udp
                                                        : Transport::Tcp));
  PcapWriter pw;
  ErfWriter ew;
  for (const auto& rec : recs) {
    pw.add(rec);
    ew.add(rec);
  }
  auto from_pcap = PcapReader::from_bytes(std::move(pw).take())->read_all();
  auto from_erf = ErfReader::from_bytes(std::move(ew).take())->read_all();
  ASSERT_TRUE(from_pcap.ok());
  ASSERT_TRUE(from_erf.ok());
  ASSERT_EQ(from_pcap->size(), from_erf->size());
  for (size_t i = 0; i < from_pcap->size(); ++i) {
    EXPECT_EQ((*from_pcap)[i].dns_payload, (*from_erf)[i].dns_payload);
    EXPECT_EQ((*from_pcap)[i].src, (*from_erf)[i].src);
    EXPECT_EQ((*from_pcap)[i].transport, (*from_erf)[i].transport);
  }
}

}  // namespace
}  // namespace ldp::trace
