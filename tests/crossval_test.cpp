// Cross-validation: the discrete-event simulator and the real-socket stack
// must agree on the observable protocol behaviour they both model —
// connection counts under reuse, idle-timeout closes, and response
// completeness. Divergence here would mean the Figures 11/13-15 results
// (simulated) don't describe the system the Figures 6-9 results (real
// sockets) measured.
#include <gtest/gtest.h>

#include "replay/engine.hpp"
#include "server/background.hpp"
#include "simnet/replay_sim.hpp"
#include "zone/parser.hpp"

namespace ldp {
namespace {

using trace::TraceRecord;

server::AuthServer wildcard_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

/// A deterministic TCP workload: 6 clients, variable gaps, some inside and
/// some outside the 1-second timeout used below.
std::vector<TraceRecord> tcp_workload() {
  std::vector<TraceRecord> trace;
  int seq = 0;
  auto add = [&](int client, TimeNs t) {
    dns::Message q = dns::Message::make_query(
        static_cast<uint16_t>(seq),
        *dns::Name::parse("q" + std::to_string(seq) + ".example.com"), dns::RRType::A);
    trace.push_back(trace::make_query_record(
        t, Endpoint{IpAddr{Ip4{10, 7, 0, static_cast<uint8_t>(client)}}, 50000},
        Endpoint{IpAddr{}, 53}, q, Transport::Tcp));
    ++seq;
  };
  for (int c = 1; c <= 3; ++c) {
    // Busy clients: 8 queries 200 ms apart — all reuse (gap < timeout).
    for (int i = 0; i < 8; ++i) add(c, i * 200 * kMilli);
  }
  for (int c = 4; c <= 6; ++c) {
    // Sparse clients: 2 queries 2.5 s apart — timeout forces a reconnect.
    add(c, 0);
    add(c, 2500 * kMilli);
  }
  std::sort(trace.begin(), trace.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.timestamp < b.timestamp;
            });
  return trace;
}

TEST(CrossValidation, ConnectionCountsMatchBetweenSimAndSockets) {
  auto trace = tcp_workload();
  const TimeNs kTimeout = kSecond;

  // --- simulated run ---
  auto sim_server = wildcard_server();
  simnet::SimReplayConfig sim_cfg;
  sim_cfg.rtt = kMilli;
  sim_cfg.idle_timeout = kTimeout;
  sim_cfg.sample_interval = kSecond;
  auto sim = simnet::simulate_replay(trace, sim_server, sim_cfg);

  // --- real-socket run ---
  server::FrontendConfig fe_cfg;
  fe_cfg.tcp_idle_timeout = kTimeout;
  fe_cfg.sweep_interval = 100 * kMilli;
  auto bg = server::BackgroundServer::start(wildcard_server(), fe_cfg);
  ASSERT_TRUE(bg.ok());
  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  // Queriers must not close idle conns before the server does, to mirror
  // the simulation's server-driven timeout.
  cfg.tcp_idle_timeout = 10 * kSecond;
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;
  (*bg)->stop();

  // Both substrates answered everything.
  EXPECT_EQ(sim.responses, trace.size());
  EXPECT_EQ(report->responses_received, trace.size());

  // Expected connections: 3 busy clients x 1 + 3 sparse clients x 2 = 9.
  EXPECT_EQ(sim.connections_opened, 9u);
  EXPECT_EQ(report->connections_opened, 9u);
  EXPECT_EQ((*bg)->connections().accepted, 9u);

  // Idle closes: every connection eventually idles out in the sim; the
  // real server closed at least the sparse clients' first connections
  // (and typically the rest before shutdown).
  EXPECT_EQ(sim.connections_closed_idle, 9u);
  EXPECT_GE((*bg)->connections().closed_idle, 3u);
}

TEST(CrossValidation, UdpWorkloadNeedsNoConnections) {
  std::vector<TraceRecord> trace;
  for (int i = 0; i < 50; ++i) {
    dns::Message q = dns::Message::make_query(
        static_cast<uint16_t>(i),
        *dns::Name::parse("u" + std::to_string(i) + ".example.com"), dns::RRType::A);
    trace.push_back(trace::make_query_record(
        i * 10 * kMilli, Endpoint{IpAddr{Ip4{10, 8, 0, 1}}, 50000},
        Endpoint{IpAddr{}, 53}, q, Transport::Udp));
  }

  auto sim_server = wildcard_server();
  simnet::SimReplayConfig sim_cfg;
  auto sim = simnet::simulate_replay(trace, sim_server, sim_cfg);
  EXPECT_EQ(sim.connections_opened, 0u);

  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());
  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok());
  (*bg)->stop();
  EXPECT_EQ(report->connections_opened, 0u);
  EXPECT_EQ((*bg)->connections().accepted, 0u);
  EXPECT_EQ(report->responses_received, trace.size());
}

TEST(CrossValidation, ResponseSizesIdenticalAcrossSubstrates) {
  // The same query answered by the same AuthServer must produce identical
  // bytes whether it arrives through the simulator or a real socket — the
  // server core is substrate-independent.
  auto server = wildcard_server();
  dns::Message q = dns::Message::make_query(
      123, *dns::Name::parse("same.example.com"), dns::RRType::A);
  auto direct = server.answer_wire(q.to_wire(), IpAddr{Ip4{10, 9, 0, 1}}, 512);
  ASSERT_TRUE(direct.has_value());

  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());
  auto sock = net::UdpSocket::bind(Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 0});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->send_to((*bg)->endpoint(), q.to_wire()).ok());
  for (int i = 0; i < 1000; ++i) {
    auto dg = sock->recv();
    ASSERT_TRUE(dg.ok());
    if (dg->has_value()) {
      EXPECT_EQ((*dg)->payload, *direct);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "no response";
}

}  // namespace
}  // namespace ldp
