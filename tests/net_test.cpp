// Tests for the event loop and socket layer: timer precision and ordering,
// UDP datagram round trips, TCP framing/reassembly, idle-timeout behaviour
// of the server frontend, and cross-thread stop.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "server/background.hpp"
#include "zone/parser.hpp"

namespace ldp::net {
namespace {

const Endpoint kLoopback{IpAddr{Ip4{127, 0, 0, 1}}, 0};

TEST(FdT, RaiiAndMove) {
  int raw = ::dup(0);
  ASSERT_GE(raw, 0);
  Fd a(raw);
  EXPECT_TRUE(a.valid());
  Fd b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.get(), raw);
}

TEST(EventLoopT, TimerFiresInOrder) {
  EventLoop loop;
  std::vector<int> order;
  TimeNs now = mono_now_ns();
  loop.add_timer_at(now + 30 * kMilli, [&] { order.push_back(3); });
  loop.add_timer_at(now + 10 * kMilli, [&] { order.push_back(1); });
  loop.add_timer_at(now + 20 * kMilli, [&] { order.push_back(2); });
  loop.run();  // exits when no timers remain
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopT, TimerPrecisionSubMillisecond) {
  // The replay scheduler claims ±ms accuracy; the timer layer must deliver
  // well under that on an idle loop.
  EventLoop loop;
  std::vector<TimeNs> errors;
  TimeNs base = mono_now_ns();
  for (int i = 1; i <= 20; ++i) {
    TimeNs deadline = base + i * 5 * kMilli;
    loop.add_timer_at(deadline, [&errors, deadline] {
      errors.push_back(mono_now_ns() - deadline);
    });
  }
  loop.run();
  ASSERT_EQ(errors.size(), 20u);
  std::sort(errors.begin(), errors.end());
  for (TimeNs e : errors) EXPECT_GE(e, 0);  // never early
  // Statistical bound: scheduler preemption on a loaded single-core box can
  // push individual wakeups out, but the typical case must be sub-ms.
  EXPECT_LT(errors[errors.size() / 2], kMilli) << "median wakeup late";
  EXPECT_LT(errors.back(), 100 * kMilli) << "worst-case wakeup far too late";
}

TEST(EventLoopT, CancelledTimerDoesNotFire) {
  EventLoop loop;
  bool fired = false;
  auto id = loop.add_timer_after(5 * kMilli, [&] { fired = true; });
  loop.add_timer_after(1 * kMilli, [&, id] { loop.cancel_timer(id); });
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoopT, EqualDeadlinesFifo) {
  EventLoop loop;
  std::vector<int> order;
  TimeNs t = mono_now_ns() + 5 * kMilli;
  for (int i = 0; i < 5; ++i) {
    loop.add_timer_at(t, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopT, CrossThreadStop) {
  EventLoop loop;
  // A far-future timer keeps the loop alive indefinitely.
  loop.add_timer_after(3600 * kSecond, [] {});
  std::thread stopper([&loop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.stop();
  });
  TimeNs start = mono_now_ns();
  loop.run();
  stopper.join();
  EXPECT_LT(mono_now_ns() - start, kSecond);  // stopped promptly, not in 1h
}

TEST(UdpSocketT, LoopbackRoundTrip) {
  auto server = UdpSocket::bind(kLoopback);
  ASSERT_TRUE(server.ok()) << server.error().message;
  auto server_ep = server->local_endpoint();
  ASSERT_TRUE(server_ep.ok());

  auto client = UdpSocket::bind(kLoopback);
  ASSERT_TRUE(client.ok());
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  auto sent = client->send_to(*server_ep, payload);
  ASSERT_TRUE(sent.ok());
  EXPECT_TRUE(*sent);

  // Poll for arrival (loopback is fast but asynchronous).
  for (int i = 0; i < 100; ++i) {
    auto dg = server->recv();
    ASSERT_TRUE(dg.ok());
    if (dg->has_value()) {
      EXPECT_EQ((*dg)->payload, payload);
      auto client_ep = client->local_endpoint();
      ASSERT_TRUE(client_ep.ok());
      EXPECT_EQ((*dg)->from.port, client_ep->port);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "datagram never arrived";
}

TEST(TcpT, FramedMessagesReassembled) {
  auto listener = TcpListener::listen(kLoopback);
  ASSERT_TRUE(listener.ok());
  auto ep = listener->local_endpoint();
  ASSERT_TRUE(ep.ok());

  auto client = TcpStream::connect(*ep);
  ASSERT_TRUE(client.ok());

  // Accept (poll until the handshake completes).
  std::optional<TcpStream> serverside;
  for (int i = 0; i < 100 && !serverside.has_value(); ++i) {
    auto acc = listener->accept();
    ASSERT_TRUE(acc.ok());
    if (acc->has_value()) serverside = std::move(**acc);
    else std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(serverside.has_value());

  // Send three messages of different sizes in one burst.
  std::vector<std::vector<uint8_t>> sent = {
      std::vector<uint8_t>(10, 0xaa), std::vector<uint8_t>(1, 0xbb),
      std::vector<uint8_t>(5000, 0xcc)};
  for (const auto& m : sent) {
    auto r = client->send_message(m);
    ASSERT_TRUE(r.ok());
  }

  std::vector<std::vector<uint8_t>> got;
  for (int i = 0; i < 200 && got.size() < 3; ++i) {
    bool closed = false;
    auto msgs = serverside->read_messages(closed);
    ASSERT_TRUE(msgs.ok());
    for (auto& m : *msgs) got.push_back(std::move(m));
    if (got.size() < 3) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(got, sent);
}

TEST(TcpT, PeerCloseDetected) {
  auto listener = TcpListener::listen(kLoopback);
  ASSERT_TRUE(listener.ok());
  auto ep = listener->local_endpoint();
  ASSERT_TRUE(ep.ok());
  auto client = TcpStream::connect(*ep);
  ASSERT_TRUE(client.ok());

  std::optional<TcpStream> serverside;
  for (int i = 0; i < 100 && !serverside.has_value(); ++i) {
    auto acc = listener->accept();
    ASSERT_TRUE(acc.ok());
    if (acc->has_value()) serverside = std::move(**acc);
    else std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(serverside.has_value());

  client.value() = TcpStream::from_accepted(net::Fd(), Endpoint{});  // close client

  bool closed = false;
  for (int i = 0; i < 200 && !closed; ++i) {
    auto msgs = serverside->read_messages(closed);
    ASSERT_TRUE(msgs.ok());
    if (!closed) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(closed);
}

// --- frontend integration over real sockets -------------------------------

server::AuthServer example_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

TEST(FrontendT, AnswersUdpQuery) {
  auto bg = server::BackgroundServer::start(example_server());
  ASSERT_TRUE(bg.ok()) << bg.error().message;

  auto client = UdpSocket::bind(kLoopback);
  ASSERT_TRUE(client.ok());
  dns::Message q =
      dns::Message::make_query(77, *dns::Name::parse("www.example.com"), dns::RRType::A);
  ASSERT_TRUE(client->send_to((*bg)->endpoint(), q.to_wire()).ok());

  for (int i = 0; i < 500; ++i) {
    auto dg = client->recv();
    ASSERT_TRUE(dg.ok());
    if (dg->has_value()) {
      auto msg = dns::Message::from_wire((*dg)->payload);
      ASSERT_TRUE(msg.ok());
      EXPECT_EQ(msg->header.id, 77);
      EXPECT_EQ(msg->header.rcode, dns::Rcode::NoError);
      EXPECT_EQ(msg->answers.size(), 1u);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "no UDP response";
}

TEST(FrontendT, AnswersTcpQueryAndTimesOutIdleConnections) {
  server::FrontendConfig cfg;
  cfg.tcp_idle_timeout = 200 * kMilli;
  cfg.sweep_interval = 50 * kMilli;
  auto bg = server::BackgroundServer::start(example_server(), cfg);
  ASSERT_TRUE(bg.ok()) << bg.error().message;

  auto stream = TcpStream::connect((*bg)->endpoint());
  ASSERT_TRUE(stream.ok());
  dns::Message q =
      dns::Message::make_query(88, *dns::Name::parse("www.example.com"), dns::RRType::A);
  // Nonblocking connect: queue the message once, then flush until written.
  auto first = stream->send_message(q.to_wire());
  ASSERT_TRUE(first.ok() || true);  // EAGAIN during connect is fine
  for (int i = 0; i < 200 && stream->pending_bytes() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    (void)stream->flush();
  }
  ASSERT_EQ(stream->pending_bytes(), 0u) << "could not send over TCP";

  bool got_reply = false, closed = false;
  for (int i = 0; i < 1000 && !got_reply; ++i) {
    auto msgs = stream->read_messages(closed);
    ASSERT_TRUE(msgs.ok());
    for (const auto& m : *msgs) {
      auto msg = dns::Message::from_wire(m);
      ASSERT_TRUE(msg.ok());
      EXPECT_EQ(msg->header.id, 88);
      got_reply = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(got_reply);

  // Sit idle past the timeout: the server must close the connection.
  for (int i = 0; i < 2000 && !closed; ++i) {
    auto msgs = stream->read_messages(closed);
    ASSERT_TRUE(msgs.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(closed);
  (*bg)->stop();
  EXPECT_EQ((*bg)->connections().closed_idle, 1u);
  EXPECT_EQ((*bg)->connections().established, 0u);
}

}  // namespace
}  // namespace ldp::net
