// Tests for the authoritative server core: response classification, views,
// CNAME chasing, error rcodes, truncation, and the DNSSEC response-size
// model behind Figure 10.
#include <gtest/gtest.h>

#include "server/auth_server.hpp"
#include "zone/parser.hpp"

namespace ldp::server {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;

Name mk(std::string_view s) { return *Name::parse(s); }

const IpAddr kClient{Ip4{10, 0, 0, 9}};

constexpr const char* kZoneText = R"(
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1 admin 1 7200 900 1209600 300
    IN NS ns1
ns1 IN A  192.0.2.1
www IN A  192.0.2.80
alias IN CNAME www
chain2 IN CNAME alias
sub IN NS ns.sub
ns.sub IN A 192.0.2.100
big IN TXT "0123456789012345678901234567890123456789012345678901234567890123456789"
big IN TXT "1123456789012345678901234567890123456789012345678901234567890123456789"
big IN TXT "2123456789012345678901234567890123456789012345678901234567890123456789"
big IN TXT "3123456789012345678901234567890123456789012345678901234567890123456789"
big IN TXT "4123456789012345678901234567890123456789012345678901234567890123456789"
big IN TXT "5123456789012345678901234567890123456789012345678901234567890123456789"
big IN TXT "6123456789012345678901234567890123456789012345678901234567890123456789"
)";

AuthServer make_server(ServerConfig config = {}) {
  AuthServer server(config);
  auto z = zone::parse_zone(kZoneText);
  EXPECT_TRUE(z.ok()) << (z.ok() ? "" : z.error().message);
  EXPECT_TRUE(server.default_zones().add(std::move(*z)).ok());
  return server;
}

TEST(AuthServer, PositiveAnswerIsAuthoritative) {
  AuthServer s = make_server();
  Message q = Message::make_query(1, mk("www.example.com"), RRType::A);
  Message r = s.answer(q, kClient);
  EXPECT_TRUE(r.header.qr);
  EXPECT_TRUE(r.header.aa);
  EXPECT_EQ(r.header.rcode, Rcode::NoError);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.header.id, 1);
}

TEST(AuthServer, CnameChainChasedInZone) {
  AuthServer s = make_server();
  Message q = Message::make_query(2, mk("chain2.example.com"), RRType::A);
  Message r = s.answer(q, kClient);
  // chain2 -> alias -> www -> A: three answer records.
  ASSERT_EQ(r.answers.size(), 3u);
  EXPECT_EQ(r.answers[0].type, RRType::CNAME);
  EXPECT_EQ(r.answers[1].type, RRType::CNAME);
  EXPECT_EQ(r.answers[2].type, RRType::A);
}

TEST(AuthServer, CnameChasingCanBeDisabled) {
  ServerConfig cfg;
  cfg.chase_cname = false;
  AuthServer s = make_server(cfg);
  Message q = Message::make_query(2, mk("alias.example.com"), RRType::A);
  Message r = s.answer(q, kClient);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].type, RRType::CNAME);
}

TEST(AuthServer, ReferralIsNotAuthoritative) {
  AuthServer s = make_server();
  Message q = Message::make_query(3, mk("host.sub.example.com"), RRType::A);
  Message r = s.answer(q, kClient);
  EXPECT_FALSE(r.header.aa);
  EXPECT_TRUE(r.answers.empty());
  ASSERT_FALSE(r.authorities.empty());
  EXPECT_EQ(r.authorities[0].type, RRType::NS);
  ASSERT_FALSE(r.additionals.empty());  // glue
}

TEST(AuthServer, NxDomainWithSoa) {
  AuthServer s = make_server();
  Message q = Message::make_query(4, mk("missing.example.com"), RRType::A);
  Message r = s.answer(q, kClient);
  EXPECT_EQ(r.header.rcode, Rcode::NXDomain);
  ASSERT_FALSE(r.authorities.empty());
  EXPECT_EQ(r.authorities[0].type, RRType::SOA);
  EXPECT_EQ(s.stats().nxdomain.load(), 1u);
}

TEST(AuthServer, RefusedOutsideZones) {
  AuthServer s = make_server();
  Message q = Message::make_query(5, mk("www.other.org"), RRType::A);
  Message r = s.answer(q, kClient);
  EXPECT_EQ(r.header.rcode, Rcode::Refused);
  EXPECT_EQ(s.stats().refused.load(), 1u);
}

TEST(AuthServer, ViewMatchRestrictsClients) {
  AuthServer s;
  auto z = zone::parse_zone(kZoneText);
  ASSERT_TRUE(z.ok());
  zone::View& v = s.views().add_view("restricted");
  v.match_clients.insert(IpAddr{Ip4{198, 41, 0, 4}});
  ASSERT_TRUE(v.zones.add(std::move(*z)).ok());

  Message q = Message::make_query(6, mk("www.example.com"), RRType::A);
  // Matching client gets the answer; anyone else REFUSED.
  EXPECT_EQ(s.answer(q, IpAddr{Ip4{198, 41, 0, 4}}).header.rcode, Rcode::NoError);
  EXPECT_EQ(s.answer(q, kClient).header.rcode, Rcode::Refused);
}

TEST(AuthServer, NotImpForNonQuery) {
  AuthServer s = make_server();
  Message q = Message::make_query(7, mk("www.example.com"), RRType::A);
  q.header.opcode = dns::Opcode::Update;
  EXPECT_EQ(s.answer(q, kClient).header.rcode, Rcode::NotImp);
}

TEST(AuthServer, FormErrForZeroQuestions) {
  AuthServer s = make_server();
  Message q;
  q.header.id = 8;
  EXPECT_EQ(s.answer(q, kClient).header.rcode, Rcode::FormErr);
}

TEST(AuthServer, WireFormerrOnGarbage) {
  AuthServer s = make_server();
  std::vector<uint8_t> garbage(16, 0xff);
  auto reply = s.answer_wire(garbage, kClient, 512);
  ASSERT_TRUE(reply.has_value());
  auto parsed = Message::from_wire(*reply);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header.rcode, Rcode::FormErr);
  EXPECT_EQ(parsed->header.id, 0xffff);  // id salvaged

  std::vector<uint8_t> tiny(4, 0);
  EXPECT_FALSE(s.answer_wire(tiny, kClient, 512).has_value());
}

TEST(AuthServer, UdpTruncationAt512) {
  AuthServer s = make_server();
  Message q = Message::make_query(9, mk("big.example.com"), RRType::TXT);
  auto wire_q = q.to_wire();
  auto reply = s.answer_wire(wire_q, kClient, 512);
  ASSERT_TRUE(reply.has_value());
  EXPECT_LE(reply->size(), 512u);
  auto parsed = Message::from_wire(*reply);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->header.tc);
}

TEST(AuthServer, EdnsRaisesUdpLimit) {
  AuthServer s = make_server();
  Message q = Message::make_query(10, mk("big.example.com"), RRType::TXT);
  dns::Edns e;
  e.udp_payload_size = 4096;
  q.edns = e;
  auto reply = s.answer_wire(q.to_wire(), kClient, 512);
  ASSERT_TRUE(reply.has_value());
  auto parsed = Message::from_wire(*reply);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->header.tc);
  EXPECT_EQ(parsed->answers.size(), 7u);
}

TEST(AuthServer, TcpHasNoSizeLimit) {
  AuthServer s = make_server();
  Message q = Message::make_query(11, mk("big.example.com"), RRType::TXT);
  auto reply = s.answer_wire(q.to_wire(), kClient, 0);
  ASSERT_TRUE(reply.has_value());
  auto parsed = Message::from_wire(*reply);
  EXPECT_FALSE(parsed->header.tc);
}

// --- DNSSEC response-size model (Figure 10 driver) ------------------------

size_t response_size(AuthServer& s, bool dnssec_ok) {
  Message q = Message::make_query(20, mk("www.example.com"), RRType::A);
  dns::Edns e;
  e.udp_payload_size = 4096;
  e.dnssec_ok = dnssec_ok;
  q.edns = e;
  return s.answer(q, kClient).to_wire().size();
}

TEST(AuthServerDnssec, DoBitAddsSignatures) {
  ServerConfig cfg;
  cfg.dnssec.zone_signed = true;
  cfg.dnssec.zsk_bits = 1024;
  AuthServer s = make_server(cfg);
  size_t plain = response_size(s, false);
  size_t with_do = response_size(s, true);
  EXPECT_GT(with_do, plain + 100);  // at least one 128-byte signature
}

TEST(AuthServerDnssec, BiggerZskMeansBiggerResponses) {
  ServerConfig cfg1024, cfg2048;
  cfg1024.dnssec.zone_signed = true;
  cfg1024.dnssec.zsk_bits = 1024;
  cfg2048.dnssec.zone_signed = true;
  cfg2048.dnssec.zsk_bits = 2048;
  AuthServer s1024 = make_server(cfg1024);
  AuthServer s2048 = make_server(cfg2048);
  size_t r1024 = response_size(s1024, true);
  size_t r2048 = response_size(s2048, true);
  EXPECT_EQ(r2048 - r1024, 128u);  // one signature, 128 extra bytes
}

TEST(AuthServerDnssec, RolloverDoublesSignatures) {
  ServerConfig normal, rollover;
  normal.dnssec.zone_signed = true;
  normal.dnssec.zsk_bits = 2048;
  rollover.dnssec.zone_signed = true;
  rollover.dnssec.zsk_bits = 2048;
  rollover.dnssec.rollover = true;
  AuthServer sn = make_server(normal);
  AuthServer sr = make_server(rollover);
  size_t base = response_size(sn, false);
  size_t one = response_size(sn, true);
  size_t two = response_size(sr, true);
  EXPECT_GT(two - base, 2 * (one - base) - 40);  // roughly double the sigs
}

TEST(AuthServerDnssec, NegativeAnswersCarryNsecProof) {
  ServerConfig cfg;
  cfg.dnssec.zone_signed = true;
  AuthServer s = make_server(cfg);
  Message q = Message::make_query(21, mk("missing.example.com"), RRType::A);
  dns::Edns e;
  e.dnssec_ok = true;
  q.edns = e;
  Message r = s.answer(q, kClient);
  bool has_nsec = false, has_rrsig = false;
  for (const auto& rr : r.authorities) {
    if (rr.type == RRType::NSEC) has_nsec = true;
    if (rr.type == RRType::RRSIG) has_rrsig = true;
  }
  EXPECT_TRUE(has_nsec);
  EXPECT_TRUE(has_rrsig);
}

TEST(AuthServerDnssec, UnsignedZoneIgnoresDo) {
  AuthServer s = make_server();  // zone_signed = false
  EXPECT_EQ(response_size(s, true), response_size(s, false));
}

TEST(AuthServer, StatsCount) {
  AuthServer s = make_server();
  Message q = Message::make_query(30, mk("www.example.com"), RRType::A);
  s.answer(q, kClient);
  s.answer(q, kClient);
  EXPECT_EQ(s.stats().queries.load(), 2u);
  EXPECT_EQ(s.stats().responses.load(), 2u);
}

}  // namespace
}  // namespace ldp::server
