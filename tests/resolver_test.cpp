// Tests for the iterative resolver: full hierarchy walks, caching (positive
// and negative), CNAME chasing across zones, glueless delegations, lame
// servers, and budget exhaustion.
#include <gtest/gtest.h>

#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "zone/parser.hpp"

namespace ldp::resolver {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;
using server::AuthServer;

Name mk(std::string_view s) { return *Name::parse(s); }

const IpAddr kRootAddr{Ip4{198, 41, 0, 4}};
const IpAddr kComAddr{Ip4{192, 5, 6, 30}};
const IpAddr kExampleAddr{Ip4{192, 0, 2, 1}};

/// A miniature internet: three independent authoritative servers, routed by
/// destination address — the "real world" a resolver walks.
struct MiniInternet {
  AuthServer root;
  AuthServer com;
  AuthServer example;
  uint64_t queries_sent = 0;

  MiniInternet() {
    auto root_zone = zone::parse_zone(R"(
$ORIGIN .
$TTL 86400
. IN SOA a.root-servers.net. nstld.example. 1 1800 900 604800 86400
. IN NS a.root-servers.net.
a.root-servers.net. IN A 198.41.0.4
com. IN NS a.gtld-servers.net.
a.gtld-servers.net. IN A 192.5.6.30
)");
    EXPECT_TRUE(root_zone.ok());
    EXPECT_TRUE(root.default_zones().add(std::move(*root_zone)).ok());

    auto com_zone = zone::parse_zone(R"(
$ORIGIN com.
$TTL 172800
@ IN SOA a.gtld-servers.net. nstld.example. 1 1800 900 604800 86400
@ IN NS a.gtld-servers.net.
example.com. IN NS ns1.example.com.
ns1.example.com. IN A 192.0.2.1
glueless.com. IN NS ns1.example.com.
)");
    EXPECT_TRUE(com_zone.ok());
    EXPECT_TRUE(com.default_zones().add(std::move(*com_zone)).ok());

    auto example_zone = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
www IN A 192.0.2.81
alias IN CNAME www
short IN A 192.0.2.99
)");
    EXPECT_TRUE(example_zone.ok());
    EXPECT_TRUE(example.default_zones().add(std::move(*example_zone)).ok());

    auto glueless_zone = zone::parse_zone(R"(
$ORIGIN glueless.com.
$TTL 3600
@ IN SOA ns1.example.com. admin.glueless.com. 1 7200 900 1209600 300
@ IN NS ns1.example.com.
www IN A 203.0.113.5
)");
    EXPECT_TRUE(glueless_zone.ok());
    EXPECT_TRUE(example.default_zones().add(std::move(*glueless_zone)).ok());
  }

  RecursiveResolver::Upstream upstream() {
    return [this](const Endpoint& server, const Message& q) -> Result<Message> {
      ++queries_sent;
      if (server.addr == kRootAddr) return root.answer(q, IpAddr{Ip4{10, 0, 0, 2}});
      if (server.addr == kComAddr) return com.answer(q, IpAddr{Ip4{10, 0, 0, 2}});
      if (server.addr == kExampleAddr)
        return example.answer(q, IpAddr{Ip4{10, 0, 0, 2}});
      return Err("no route to " + server.to_string());
    };
  }

  ResolverConfig config() {
    ResolverConfig cfg;
    cfg.root_servers = {Endpoint{kRootAddr, 53}};
    return cfg;
  }
};

TEST(Resolver, FullIterativeWalk) {
  MiniInternet net;
  RecursiveResolver resolver(net.config(), net.upstream());
  Message r = resolver.resolve(mk("www.example.com"), RRType::A, 0);
  EXPECT_EQ(r.header.rcode, Rcode::NoError);
  EXPECT_TRUE(r.header.ra);
  ASSERT_EQ(r.answers.size(), 2u);  // two A records
  // Walked root -> com -> example: exactly 3 upstream queries.
  EXPECT_EQ(resolver.stats().upstream_queries, 3u);
}

TEST(Resolver, CachedSecondQueryNeedsNoUpstream) {
  MiniInternet net;
  RecursiveResolver resolver(net.config(), net.upstream());
  resolver.resolve(mk("www.example.com"), RRType::A, 0);
  uint64_t after_first = resolver.stats().upstream_queries;
  Message r = resolver.resolve(mk("www.example.com"), RRType::A, kSecond);
  EXPECT_EQ(r.header.rcode, Rcode::NoError);
  EXPECT_EQ(resolver.stats().upstream_queries, after_first);  // pure cache
  EXPECT_EQ(resolver.stats().cache_answers, 1u);
}

TEST(Resolver, DelegationCacheShortcutsSiblings) {
  MiniInternet net;
  RecursiveResolver resolver(net.config(), net.upstream());
  resolver.resolve(mk("www.example.com"), RRType::A, 0);
  uint64_t after_first = resolver.stats().upstream_queries;
  // Sibling name in the same zone: only 1 more upstream query (straight to
  // ns1.example.com, no root/com revisit).
  resolver.resolve(mk("short.example.com"), RRType::A, kSecond);
  EXPECT_EQ(resolver.stats().upstream_queries, after_first + 1);
}

TEST(Resolver, CacheExpiryForcesRewalk) {
  MiniInternet net;
  RecursiveResolver resolver(net.config(), net.upstream());
  resolver.resolve(mk("www.example.com"), RRType::A, 0);
  uint64_t after_first = resolver.stats().upstream_queries;
  // Answer TTL is 3600s; at t=4000s the answer and example's zone data have
  // expired (com's delegation of example.com lives 172800s).
  resolver.resolve(mk("www.example.com"), RRType::A, 4000 * kSecond);
  EXPECT_GT(resolver.stats().upstream_queries, after_first);
}

TEST(Resolver, NxDomainCachedNegatively) {
  MiniInternet net;
  RecursiveResolver resolver(net.config(), net.upstream());
  Message r1 = resolver.resolve(mk("missing.example.com"), RRType::A, 0);
  EXPECT_EQ(r1.header.rcode, Rcode::NXDomain);
  uint64_t after_first = resolver.stats().upstream_queries;
  Message r2 = resolver.resolve(mk("missing.example.com"), RRType::A, kSecond);
  EXPECT_EQ(r2.header.rcode, Rcode::NXDomain);
  EXPECT_EQ(resolver.stats().upstream_queries, after_first);  // negative hit
}

TEST(Resolver, CnameChasedAcrossLookups) {
  MiniInternet net;
  RecursiveResolver resolver(net.config(), net.upstream());
  Message r = resolver.resolve(mk("alias.example.com"), RRType::A, 0);
  EXPECT_EQ(r.header.rcode, Rcode::NoError);
  bool has_cname = false, has_a = false;
  for (const auto& rr : r.answers) {
    if (rr.type == RRType::CNAME) has_cname = true;
    if (rr.type == RRType::A) has_a = true;
  }
  EXPECT_TRUE(has_cname);
  EXPECT_TRUE(has_a);
}

TEST(Resolver, GluelessDelegationResolved) {
  MiniInternet net;
  RecursiveResolver resolver(net.config(), net.upstream());
  Message r = resolver.resolve(mk("www.glueless.com"), RRType::A, 0);
  EXPECT_EQ(r.header.rcode, Rcode::NoError);
  ASSERT_FALSE(r.answers.empty());
  const auto* a = r.answers[0].rdata.get_if<dns::AData>();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->addr.to_string(), "203.0.113.5");
}

TEST(Resolver, UnreachableServersGiveServfail) {
  ResolverConfig cfg;
  cfg.root_servers = {Endpoint{IpAddr{Ip4{203, 0, 113, 99}}, 53}};
  RecursiveResolver resolver(cfg, [](const Endpoint&, const Message&) -> Result<Message> {
    return Err("timeout");
  });
  Message r = resolver.resolve(mk("x.example"), RRType::A, 0);
  EXPECT_EQ(r.header.rcode, Rcode::ServFail);
  EXPECT_EQ(resolver.stats().servfail, 1u);
}

TEST(Resolver, BudgetCapsRunawayIteration) {
  // A malicious upstream that always refers deeper without making progress
  // possible: budget must stop the loop.
  ResolverConfig cfg;
  cfg.root_servers = {Endpoint{IpAddr{Ip4{1, 1, 1, 1}}, 53}};
  cfg.max_upstream_queries = 10;
  int calls = 0;
  RecursiveResolver resolver(
      cfg, [&calls](const Endpoint&, const Message& q) -> Result<Message> {
        ++calls;
        Message r = Message::make_response(q);
        // Self-referral: NS for the same zone, same glue, forever.
        r.authorities.push_back(dns::ResourceRecord{
            mk("example"), RRType::NS, dns::RRClass::IN, 60,
            dns::Rdata{dns::NameData{mk("ns.example")}}});
        r.additionals.push_back(dns::ResourceRecord{
            mk("ns.example"), RRType::A, dns::RRClass::IN, 60,
            dns::Rdata{dns::AData{Ip4{1, 1, 1, 1}}}});
        return r;
      });
  Message r = resolver.resolve(mk("www.example"), RRType::A, 0);
  EXPECT_EQ(r.header.rcode, Rcode::ServFail);
  EXPECT_LE(calls, 10);
}

// --- SRTT-based authority server selection ---------------------------------

TEST(ServerSelection, PrefersFasterServerAfterLearning) {
  // Two root replicas, one 5 ms away and one 50 ms away (simulated by a
  // fake RTT clock advanced inside the upstream). After the first probes,
  // the resolver should settle on the fast one.
  const IpAddr fast{Ip4{198, 41, 0, 4}};
  const IpAddr slow{Ip4{198, 41, 0, 5}};
  TimeNs fake_now = 0;

  MiniInternet net;
  std::map<std::string, int> hits;
  auto upstream = [&](const Endpoint& server, const Message& q) -> Result<Message> {
    ++hits[server.addr.to_string()];
    fake_now += server.addr == fast ? 5 * kMilli : 50 * kMilli;
    return net.root.answer(q, IpAddr{Ip4{10, 0, 0, 2}});
  };

  ResolverConfig cfg;
  cfg.root_servers = {Endpoint{slow, 53}, Endpoint{fast, 53}};
  cfg.rtt_clock = [&fake_now] { return fake_now; };
  RecursiveResolver resolver(cfg, upstream);

  // Unique junk TLDs defeat the cache, forcing a root query per resolve.
  for (int i = 0; i < 20; ++i) {
    resolver.resolve(mk("tld" + std::to_string(i)), RRType::NS, 0);
  }
  ASSERT_TRUE(resolver.srtt(fast).has_value());
  ASSERT_TRUE(resolver.srtt(slow).has_value());
  EXPECT_LT(*resolver.srtt(fast), *resolver.srtt(slow));
  // Both were probed (exploration), but the fast one dominates.
  EXPECT_GT(hits[fast.to_string()], hits[slow.to_string()]);
  EXPECT_GT(hits[fast.to_string()], 12);
}

TEST(ServerSelection, FailuresSinkAServer) {
  const IpAddr good{Ip4{198, 41, 0, 4}};
  const IpAddr lame{Ip4{198, 41, 0, 6}};
  TimeNs fake_now = 0;

  MiniInternet net;
  int lame_hits = 0;
  auto upstream = [&](const Endpoint& server, const Message& q) -> Result<Message> {
    fake_now += 5 * kMilli;
    if (server.addr == lame) {
      ++lame_hits;
      return Err("timeout");
    }
    return net.root.answer(q, IpAddr{Ip4{10, 0, 0, 2}});
  };

  ResolverConfig cfg;
  cfg.root_servers = {Endpoint{lame, 53}, Endpoint{good, 53}};
  cfg.rtt_clock = [&fake_now] { return fake_now; };
  RecursiveResolver resolver(cfg, upstream);

  for (int i = 0; i < 10; ++i) {
    Message r = resolver.resolve(mk("x" + std::to_string(i)), RRType::NS, 0);
    EXPECT_NE(r.header.rcode, Rcode::ServFail);  // good server covers
  }
  // The lame server is probed early, then avoided (penalty >= 100 ms).
  EXPECT_LE(lame_hits, 2);
  ASSERT_TRUE(resolver.srtt(lame).has_value());
  EXPECT_GE(*resolver.srtt(lame), 100 * kMilli);
}

TEST(ServerSelection, InOrderStrategyIgnoresSrtt) {
  const IpAddr first{Ip4{198, 41, 0, 4}};
  const IpAddr second{Ip4{198, 41, 0, 5}};
  TimeNs fake_now = 0;
  MiniInternet net;
  std::map<std::string, int> hits;
  auto upstream = [&](const Endpoint& server, const Message& q) -> Result<Message> {
    ++hits[server.addr.to_string()];
    // First server is much slower; InOrder must keep using it anyway.
    fake_now += server.addr == first ? 80 * kMilli : kMilli;
    return net.root.answer(q, IpAddr{Ip4{10, 0, 0, 2}});
  };
  ResolverConfig cfg;
  cfg.root_servers = {Endpoint{first, 53}, Endpoint{second, 53}};
  cfg.selection = ResolverConfig::ServerSelection::InOrder;
  cfg.rtt_clock = [&fake_now] { return fake_now; };
  RecursiveResolver resolver(cfg, upstream);
  for (int i = 0; i < 10; ++i)
    resolver.resolve(mk("y" + std::to_string(i)), RRType::NS, 0);
  EXPECT_EQ(hits[second.to_string()], 0);
}

TEST(DnsCacheT, PositiveExpiry) {
  DnsCache cache;
  dns::RRset set;
  set.name = mk("x.example");
  set.type = RRType::A;
  set.ttl = 60;
  set.rdatas.push_back(dns::Rdata{dns::AData{Ip4{1, 2, 3, 4}}});
  cache.put(set, 0);
  EXPECT_NE(cache.get(mk("x.example"), RRType::A, 59 * kSecond), nullptr);
  EXPECT_EQ(cache.get(mk("x.example"), RRType::A, 61 * kSecond), nullptr);
}

TEST(DnsCacheT, NegativeNxDomainCoversAllTypes) {
  DnsCache cache;
  cache.put_negative(mk("gone.example"), RRType::A, true, 300, 0);
  EXPECT_EQ(cache.get_negative(mk("gone.example"), RRType::A, kSecond),
            NegativeState::NxDomain);
  EXPECT_EQ(cache.get_negative(mk("gone.example"), RRType::AAAA, kSecond),
            NegativeState::NxDomain);
  EXPECT_EQ(cache.get_negative(mk("gone.example"), RRType::A, 301 * kSecond),
            NegativeState::None);
}

TEST(DnsCacheT, NoDataIsPerType) {
  DnsCache cache;
  cache.put_negative(mk("x.example"), RRType::AAAA, false, 300, 0);
  EXPECT_EQ(cache.get_negative(mk("x.example"), RRType::AAAA, kSecond),
            NegativeState::NoData);
  EXPECT_EQ(cache.get_negative(mk("x.example"), RRType::A, kSecond),
            NegativeState::None);
}

TEST(DnsCacheT, PurgeRemovesExpired) {
  DnsCache cache;
  dns::RRset set;
  set.name = mk("x.example");
  set.type = RRType::A;
  set.ttl = 10;
  set.rdatas.push_back(dns::Rdata{dns::AData{Ip4{1, 2, 3, 4}}});
  cache.put(set, 0);
  cache.put_negative(mk("y.example"), RRType::A, true, 10, 0);
  EXPECT_EQ(cache.size(), 2u);
  cache.purge(11 * kSecond);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace ldp::resolver
