// Property-style sweeps over core invariants: replay-clock arithmetic,
// simulator ordering under random schedules, queue correctness under
// concurrency, EDNS details, and zone print/parse round-trips on randomly
// generated zones.
#include <gtest/gtest.h>

#include <thread>

#include "dns/message.hpp"
#include "replay/schedule.hpp"
#include "simnet/sim.hpp"
#include "util/queue.hpp"
#include "util/rng.hpp"
#include "zone/parser.hpp"

namespace ldp {
namespace {

using dns::Message;
using dns::Name;
using dns::RRType;

// --- ReplayClock: ΔT arithmetic holds for arbitrary offsets -----------------

class ClockProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClockProperty, DelayIdentities) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 1000; ++i) {
    TimeNs trace0 = static_cast<TimeNs>(rng.uniform(0, 1'000'000'000'000ull));
    TimeNs real0 = static_cast<TimeNs>(rng.uniform(0, 1'000'000'000'000ull));
    replay::ReplayClock clock;
    clock.start(trace0, real0);

    TimeNs dt_trace = static_cast<TimeNs>(rng.uniform(0, 3'600'000'000'000ull));
    TimeNs dt_real = static_cast<TimeNs>(rng.uniform(0, 3'600'000'000'000ull));

    // ΔT = Δt̄ − Δt (the §2.6 definition).
    EXPECT_EQ(clock.delay_for(trace0 + dt_trace, real0 + dt_real),
              dt_trace - dt_real);
    // deadline(t̄) - real_now == delay(t̄, real_now).
    EXPECT_EQ(clock.deadline_for(trace0 + dt_trace) - (real0 + dt_real),
              clock.delay_for(trace0 + dt_trace, real0 + dt_real));
    // Replaying exactly on schedule leaves zero delay.
    EXPECT_EQ(clock.delay_for(trace0 + dt_trace, real0 + dt_trace), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockProperty, ::testing::Range(1, 5));

// --- Simulator: random schedules execute in nondecreasing time order --------

class SimProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimProperty, RandomSchedulesStayOrdered) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  simnet::Simulator sim;
  std::vector<TimeNs> fired;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    TimeNs t = static_cast<TimeNs>(rng.uniform(0, 1'000'000));
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), static_cast<size_t>(n));
  for (size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i]);
}

TEST_P(SimProperty, NestedSchedulingKeepsOrder) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  simnet::Simulator sim;
  std::vector<TimeNs> fired;
  std::function<void(int)> spawn = [&](int depth) {
    fired.push_back(sim.now());
    if (depth > 0) {
      int children = static_cast<int>(rng.uniform(0, 3));
      for (int c = 0; c < children; ++c) {
        sim.schedule_after(static_cast<TimeNs>(rng.uniform(1, 1000)),
                           [&spawn, depth] { spawn(depth - 1); });
      }
    }
  };
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(static_cast<TimeNs>(rng.uniform(0, 10000)), [&spawn] { spawn(4); });
  }
  sim.run();
  for (size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperty, ::testing::Range(1, 4));

// --- BoundedQueue under real concurrency ------------------------------------

TEST(QueueConcurrency, AllItemsDeliveredExactlyOnce) {
  BoundedQueue<int> queue(64);
  const int kProducers = 3, kConsumers = 3, kPerProducer = 5000;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(p * kPerProducer + i);
    });
  }
  std::mutex mu;
  std::vector<int> received;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &mu, &received] {
      while (true) {
        auto item = queue.pop();
        if (!item.has_value()) return;
        std::lock_guard lock(mu);
        received.push_back(*item);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(received.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::sort(received.begin(), received.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) EXPECT_EQ(received[i], i);
}

// --- EDNS corners -------------------------------------------------------------

TEST(EdnsDetail, OptionsBytesRoundTrip) {
  Message q = Message::make_query(5, *Name::parse("x.example"), RRType::A);
  dns::Edns e;
  e.udp_payload_size = 1232;
  // A cookie-like option: code 10, length 8, data.
  ByteWriter opt;
  opt.u16(10);
  opt.u16(8);
  for (int i = 0; i < 8; ++i) opt.u8(static_cast<uint8_t>(i));
  e.options = std::vector<uint8_t>(opt.data().begin(), opt.data().end());
  q.edns = e;

  auto back = Message::from_wire(q.to_wire());
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->edns.has_value());
  EXPECT_EQ(back->edns->options, e.options);
}

TEST(EdnsDetail, ExtendedRcodeMergesIntoHeader) {
  // Build a message whose OPT carries extended-rcode bits (e.g. BADVERS=16:
  // extended byte 1, header nibble 0).
  Message m;
  m.header.qr = true;
  dns::Edns e;
  e.extended_rcode = 1;
  m.edns = e;
  auto back = Message::from_wire(m.to_wire());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(static_cast<int>(back->header.rcode), 16);
}

// --- random zones print/parse round-trip --------------------------------------

class ZoneProperty : public ::testing::TestWithParam<int> {};

TEST_P(ZoneProperty, GeneratedZonesRoundTripThroughText) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 20; ++iter) {
    zone::Zone z(*Name::parse("prop.example"));
    ASSERT_TRUE(z.add(dns::ResourceRecord{
                          *Name::parse("prop.example"), RRType::SOA, dns::RRClass::IN,
                          3600,
                          dns::Rdata{dns::SoaData{*Name::parse("ns1.prop.example"),
                                                  *Name::parse("admin.prop.example"),
                                                  1, 2, 3, 4, 5}}})
                    .ok());
    int records = static_cast<int>(rng.uniform(1, 40));
    for (int r = 0; r < records; ++r) {
      std::string label;
      for (int c = 0; c < static_cast<int>(rng.uniform(1, 10)); ++c)
        label += static_cast<char>('a' + rng.uniform(0, 25));
      Name owner = *(*Name::parse("prop.example")).with_prefix_label(label);
      dns::Rdata rdata;
      RRType type;
      switch (rng.uniform(0, 4)) {
        case 0:
          type = RRType::A;
          rdata = dns::Rdata{dns::AData{Ip4{static_cast<uint32_t>(rng.next_u64())}}};
          break;
        case 1:
          type = RRType::TXT;
          rdata = dns::Rdata{dns::TxtData{{label}}};
          break;
        case 2:
          type = RRType::MX;
          rdata = dns::Rdata{dns::MxData{static_cast<uint16_t>(rng.uniform(0, 100)),
                                         *Name::parse("mail.prop.example")}};
          break;
        case 3: {
          type = RRType::AAAA;
          std::array<uint8_t, 16> b{};
          for (auto& v : b) v = static_cast<uint8_t>(rng.uniform(0, 255));
          rdata = dns::Rdata{dns::AaaaData{Ip6{b}}};
          break;
        }
        default:
          type = RRType::NS;
          rdata = dns::Rdata{dns::NameData{*Name::parse("ns1.prop.example")}};
      }
      (void)z.add(dns::ResourceRecord{owner, type, dns::RRClass::IN,
                                      static_cast<uint32_t>(rng.uniform(1, 86400)),
                                      std::move(rdata)});
    }

    std::string text = zone::print_zone(z);
    auto back = zone::parse_zone(text);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back->record_count(), z.record_count());
    EXPECT_EQ(back->rrset_count(), z.rrset_count());
    for (const dns::RRset* set : z.all_rrsets()) {
      const dns::RRset* other = back->find(set->name, set->type);
      ASSERT_NE(other, nullptr) << set->name.to_string();
      EXPECT_EQ(other->ttl, set->ttl);
      // rdata equality as sets.
      for (const auto& rd : set->rdatas) {
        EXPECT_NE(std::find(other->rdatas.begin(), other->rdatas.end(), rd),
                  other->rdatas.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneProperty, ::testing::Range(1, 5));

}  // namespace
}  // namespace ldp
