// Tests for dns::Name: presentation parsing, wire codec with compression
// pointers, ordering, and the suffix relations the zone store relies on.
#include <gtest/gtest.h>

#include "dns/name.hpp"

namespace ldp::dns {
namespace {

Name mk(std::string_view s) {
  auto r = Name::parse(s);
  EXPECT_TRUE(r.ok()) << s << ": " << (r.ok() ? "" : r.error().message);
  return *r;
}

TEST(Name, ParseBasics) {
  Name n = mk("www.Example.COM");
  EXPECT_EQ(n.label_count(), 3u);
  EXPECT_EQ(n.label(0), "www");
  EXPECT_EQ(n.label(1), "example");  // lowercased
  EXPECT_EQ(n.label(2), "com");
  EXPECT_EQ(n.to_string(), "www.example.com.");
}

TEST(Name, RootForms) {
  Name root = mk(".");
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(root.wire_length(), 1u);
  EXPECT_FALSE(Name::parse("").ok());
}

TEST(Name, TrailingDotOptional) {
  EXPECT_EQ(mk("example.com"), mk("example.com."));
}

TEST(Name, CaseInsensitiveEquality) {
  EXPECT_EQ(mk("WWW.EXAMPLE.COM"), mk("www.example.com"));
}

TEST(Name, EscapeSequences) {
  Name n = mk(R"(ex\.ample.com)");
  EXPECT_EQ(n.label_count(), 2u);
  EXPECT_EQ(n.label(0), "ex.ample");
  EXPECT_EQ(n.to_string(), R"(ex\.ample.com.)");

  Name d = mk(R"(a\065b.com)");  // \065 = 'A' -> lowercased to 'a'
  EXPECT_EQ(d.label(0), "aab");

  EXPECT_FALSE(Name::parse(R"(bad\)").ok());
  EXPECT_FALSE(Name::parse(R"(bad\25)").ok());
  EXPECT_FALSE(Name::parse(R"(bad\999x)").ok());
}

TEST(Name, LabelAndNameLengthLimits) {
  std::string label63(63, 'a');
  EXPECT_TRUE(Name::parse(label63 + ".com").ok());
  std::string label64(64, 'a');
  EXPECT_FALSE(Name::parse(label64 + ".com").ok());

  // 255-octet total: four 63-char labels = 63*4 + 4 length bytes + root = 257.
  std::string too_long = label63 + "." + label63 + "." + label63 + "." + label63;
  EXPECT_FALSE(Name::parse(too_long).ok());
  // Three 63s plus a shorter one fits.
  std::string fits = label63 + "." + label63 + "." + label63 + "." + std::string(61, 'b');
  EXPECT_TRUE(Name::parse(fits).ok());
}

TEST(Name, WireRoundTrip) {
  Name n = mk("mail.google.com");
  ByteWriter w;
  n.to_wire(w);
  EXPECT_EQ(w.size(), n.wire_length());
  ByteReader rd(w.data());
  auto back = Name::from_wire(rd);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, n);
  EXPECT_TRUE(rd.empty());
}

TEST(Name, WireCompressionPointer) {
  // Build: [example.com at 0][www -> pointer to 0]
  ByteWriter w;
  mk("example.com").to_wire(w);
  size_t second = w.size();
  w.u8(3);
  w.bytes(std::string_view("www"));
  w.u16(0xc000);  // pointer to offset 0

  ByteReader rd(w.data());
  ASSERT_TRUE(rd.seek(second).ok());
  auto n = Name::from_wire(rd);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->to_string(), "www.example.com.");
  EXPECT_TRUE(rd.empty());  // cursor resumed after the pointer
}

TEST(Name, WirePointerLoopRejected) {
  // A pointer at offset 2 pointing to offset 0, where offset 0 points to 2.
  std::vector<uint8_t> data = {0xc0, 0x02, 0xc0, 0x00};
  ByteReader rd(data);
  EXPECT_FALSE(Name::from_wire(rd).ok());
}

TEST(Name, WireForwardPointerRejected) {
  std::vector<uint8_t> data = {0xc0, 0x02, 0x00};
  ByteReader rd(data);
  EXPECT_FALSE(Name::from_wire(rd).ok());
}

TEST(Name, WireTruncatedRejected) {
  std::vector<uint8_t> data = {0x03, 'w', 'w'};
  ByteReader rd(data);
  EXPECT_FALSE(Name::from_wire(rd).ok());
}

TEST(Name, SubdomainRelation) {
  Name root = mk(".");
  Name com = mk("com");
  Name example = mk("example.com");
  Name www = mk("www.example.com");
  EXPECT_TRUE(www.is_subdomain_of(example));
  EXPECT_TRUE(www.is_subdomain_of(com));
  EXPECT_TRUE(www.is_subdomain_of(root));
  EXPECT_TRUE(example.is_subdomain_of(example));
  EXPECT_FALSE(example.is_subdomain_of(www));
  EXPECT_FALSE(mk("notexample.com").is_subdomain_of(example));
}

TEST(Name, ParentChain) {
  Name n = mk("a.b.c");
  EXPECT_EQ(n.parent(), mk("b.c"));
  EXPECT_EQ(n.parent().parent(), mk("c"));
  EXPECT_TRUE(n.parent().parent().parent().is_root());
}

TEST(Name, WithPrefixLabel) {
  auto n = mk("example.com").with_prefix_label("www");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, mk("www.example.com"));
}

TEST(Name, CommonSuffix) {
  EXPECT_EQ(mk("www.example.com").common_suffix_labels(mk("mail.example.com")), 2u);
  EXPECT_EQ(mk("www.example.com").common_suffix_labels(mk("example.org")), 0u);
  EXPECT_EQ(mk("a.com").common_suffix_labels(mk("a.com")), 2u);
}

TEST(Name, CanonicalOrdering) {
  // RFC 4034 §6.1: sort by most-significant (rightmost) label first.
  Name a = mk("example.com");
  Name b = mk("a.example.com");
  Name c = mk("z.example.com");
  Name d = mk("example.org");
  EXPECT_TRUE(a < b);  // parent sorts before children
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(c < d);  // com < org at the top label
  EXPECT_FALSE(a < a);
}

TEST(Name, HashStableAcrossCase) {
  EXPECT_EQ(mk("WWW.EXAMPLE.COM").hash(), mk("www.example.com").hash());
}

// Property sweep: names of varying label counts round-trip through wire and
// presentation formats.
class NameRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(NameRoundTrip, WireAndText) {
  Name n = mk(GetParam());
  ByteWriter w;
  n.to_wire(w);
  ByteReader rd(w.data());
  auto wire_back = Name::from_wire(rd);
  ASSERT_TRUE(wire_back.ok());
  EXPECT_EQ(*wire_back, n);

  auto text_back = Name::parse(n.to_string());
  ASSERT_TRUE(text_back.ok());
  EXPECT_EQ(*text_back, n);
}

INSTANTIATE_TEST_SUITE_P(Names, NameRoundTrip,
                         ::testing::Values(".", "com", "example.com",
                                           "www.example.com",
                                           "a.b.c.d.e.f.g.h.i.j",
                                           "xn--nxasmq6b.example",
                                           "_dmarc.example.com",
                                           "*.wildcard.example",
                                           R"(odd\.label.example)"));

}  // namespace
}  // namespace ldp::dns
