// Tests for the query mutator: each what-if building block, stacking,
// filtering, time manipulation, and malformed-payload handling.
#include <gtest/gtest.h>

#include "mutate/mutator.hpp"
#include "synth/generator.hpp"

namespace ldp::mutate {
namespace {

using dns::Message;
using dns::Name;
using dns::RRType;
using trace::Direction;
using trace::TraceRecord;

TraceRecord query_record(TimeNs t, std::string_view qname,
                         Transport transport = Transport::Udp) {
  Message q = Message::make_query(1, *Name::parse(qname), RRType::A);
  return trace::make_query_record(t, Endpoint{IpAddr{Ip4{10, 0, 0, 1}}, 40000},
                                  Endpoint{IpAddr{Ip4{10, 0, 0, 53}}, 53}, q,
                                  transport);
}

TEST(Mutator, ForceTransportAllTcp) {
  // The §5.2 experiment: every query becomes TCP, payload untouched.
  MutatorPipeline pipe;
  pipe.force_transport(Transport::Tcp);
  auto rec = query_record(0, "a.example");
  auto payload_before = rec.dns_payload;
  ASSERT_TRUE(pipe.apply(rec).ok());
  EXPECT_EQ(rec.transport, Transport::Tcp);
  EXPECT_EQ(rec.dns_payload, payload_before);
}

TEST(Mutator, EnableDnssecAddsEdnsAndDo) {
  // The §5.1 experiment: 100% DO-bit queries.
  MutatorPipeline pipe;
  pipe.enable_dnssec(4096);
  auto rec = query_record(0, "a.example");
  ASSERT_TRUE(pipe.apply(rec).ok());
  auto msg = rec.message();
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(msg->edns.has_value());
  EXPECT_TRUE(msg->edns->dnssec_ok);
  EXPECT_EQ(msg->edns->udp_payload_size, 4096);
}

TEST(Mutator, EnableDnssecKeepsExistingEdnsSize) {
  Message q = Message::make_query(1, *Name::parse("a.example"), RRType::A);
  dns::Edns e;
  e.udp_payload_size = 1232;
  q.edns = e;
  auto rec = trace::make_query_record(0, Endpoint{IpAddr{Ip4{1, 1, 1, 1}}, 1},
                                      Endpoint{IpAddr{Ip4{2, 2, 2, 2}}, 53}, q);
  MutatorPipeline pipe;
  pipe.enable_dnssec(4096);
  ASSERT_TRUE(pipe.apply(rec).ok());
  auto msg = rec.message();
  EXPECT_EQ(msg->edns->udp_payload_size, 1232);  // existing size respected
  EXPECT_TRUE(msg->edns->dnssec_ok);
}

TEST(Mutator, StripEdns) {
  MutatorPipeline add, strip;
  add.enable_dnssec();
  strip.strip_edns();
  auto rec = query_record(0, "a.example");
  ASSERT_TRUE(add.apply(rec).ok());
  ASSERT_TRUE(strip.apply(rec).ok());
  auto msg = rec.message();
  EXPECT_FALSE(msg->edns.has_value());
}

TEST(Mutator, PrefixQnames) {
  // The §4.2 validation trick: unique prefix to match replays to originals.
  MutatorPipeline pipe;
  pipe.prefix_qnames("replay01");
  auto rec = query_record(0, "www.example.com");
  ASSERT_TRUE(pipe.apply(rec).ok());
  auto msg = rec.message();
  EXPECT_EQ(msg->questions[0].qname.to_string(), "replay01.www.example.com.");
}

TEST(Mutator, ForceQtypeAndRd) {
  MutatorPipeline pipe;
  pipe.force_qtype(RRType::AAAA).set_recursion_desired(false);
  auto rec = query_record(0, "x.example");
  ASSERT_TRUE(pipe.apply(rec).ok());
  auto msg = rec.message();
  EXPECT_EQ(msg->questions[0].qtype, RRType::AAAA);
  EXPECT_FALSE(msg->header.rd);
}

TEST(Mutator, ScaleTimeDoublesRate) {
  MutatorPipeline pipe;
  pipe.scale_time(0.5);  // half the gaps -> double the rate
  std::vector<TraceRecord> recs;
  for (int i = 0; i < 4; ++i) recs.push_back(query_record(i * kSecond, "a.example"));
  auto out = pipe.apply_all(std::move(recs));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].timestamp, 0);
  EXPECT_EQ(out[1].timestamp, kSecond / 2);
  EXPECT_EQ(out[3].timestamp, 3 * kSecond / 2);
}

TEST(Mutator, RebaseTime) {
  MutatorPipeline pipe;
  pipe.rebase_time(100 * kSecond);
  std::vector<TraceRecord> recs;
  recs.push_back(query_record(7 * kSecond, "a.example"));
  recs.push_back(query_record(9 * kSecond, "a.example"));
  auto out = pipe.apply_all(std::move(recs));
  EXPECT_EQ(out[0].timestamp, 100 * kSecond);
  EXPECT_EQ(out[1].timestamp, 102 * kSecond);
}

TEST(Mutator, FilterDropsNonMatching) {
  MutatorPipeline pipe;
  pipe.filter([](const TraceRecord&, const Message& msg) {
    return msg.questions[0].qtype == RRType::A;
  });
  std::vector<TraceRecord> recs;
  recs.push_back(query_record(0, "keep.example"));
  auto dropped = query_record(1, "drop.example");
  {
    MutatorPipeline to_aaaa;
    to_aaaa.force_qtype(RRType::AAAA);
    EXPECT_TRUE(to_aaaa.apply(dropped).ok());
  }
  recs.push_back(dropped);
  auto out = pipe.apply_all(std::move(recs));
  ASSERT_EQ(out.size(), 1u);
  auto msg = out[0].message();
  EXPECT_EQ(msg->questions[0].qname.to_string(), "keep.example.");
}

TEST(Mutator, StackedEditsDecodeOnce) {
  MutatorPipeline pipe;
  pipe.enable_dnssec().prefix_qnames("p").force_transport(Transport::Tls);
  auto rec = query_record(0, "multi.example");
  ASSERT_TRUE(pipe.apply(rec).ok());
  EXPECT_EQ(rec.transport, Transport::Tls);
  auto msg = rec.message();
  EXPECT_TRUE(msg->edns->dnssec_ok);
  EXPECT_EQ(msg->questions[0].qname.label(0), "p");
}

TEST(Mutator, MalformedPayloadReportedNotCrash) {
  MutatorPipeline pipe;
  pipe.enable_dnssec();
  TraceRecord junk;
  junk.dns_payload = {1, 2, 3};
  auto verdict = pipe.apply(junk);
  EXPECT_FALSE(verdict.ok());

  std::vector<TraceRecord> recs;
  recs.push_back(query_record(0, "good.example"));
  recs.push_back(junk);
  size_t malformed = 0;
  auto out = pipe.apply_all(std::move(recs), &malformed);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(malformed, 1u);
}

TEST(Mutator, RecordEditsNeedNoDecode) {
  // A transport-only pipeline must pass undecodable payloads through
  // untouched (pure record-level edit).
  MutatorPipeline pipe;
  pipe.force_transport(Transport::Tcp);
  TraceRecord junk;
  junk.dns_payload = {1, 2, 3};
  auto verdict = pipe.apply(junk);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(junk.transport, Transport::Tcp);
}

TEST(Mutator, WholeTraceDnssecConversion) {
  // Mutate a synthetic root trace from 72.3% DO to 100% DO — the exact
  // transformation of §5.1 — and verify the resulting mix.
  synth::RootTraceSpec spec;
  spec.mean_rate_qps = 500;
  spec.duration_ns = 5 * kSecond;
  spec.seed = 2;
  auto recs = synth::make_root_trace(spec);
  MutatorPipeline pipe;
  pipe.enable_dnssec();
  auto out = pipe.apply_all(std::move(recs));
  for (const auto& rec : out) {
    auto msg = rec.message();
    ASSERT_TRUE(msg.ok());
    ASSERT_TRUE(msg->edns.has_value());
    EXPECT_TRUE(msg->edns->dnssec_ok);
  }
}

}  // namespace
}  // namespace ldp::mutate
