// Robustness property tests: the wire-format parsers must never crash,
// hang, or read out of bounds on adversarial input — they parse untrusted
// network bytes. Each TEST_P seed drives hundreds of random mutations.
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "fault/fault.hpp"
#include "trace/binary.hpp"
#include "trace/pcap.hpp"
#include "trace/text.hpp"
#include "util/rng.hpp"
#include "zone/parser.hpp"

namespace ldp {
namespace {

using dns::Message;
using dns::Name;
using dns::RRType;

std::vector<uint8_t> sample_message_bytes() {
  Message q = Message::make_query(7, *Name::parse("www.example.com"), RRType::A);
  dns::Edns e;
  e.dnssec_ok = true;
  q.edns = e;
  Message r = Message::make_response(q);
  r.answers.push_back(dns::ResourceRecord{*Name::parse("www.example.com"), RRType::A,
                                          dns::RRClass::IN, 300,
                                          dns::Rdata{dns::AData{Ip4{192, 0, 2, 1}}}});
  r.authorities.push_back(dns::ResourceRecord{
      *Name::parse("example.com"), RRType::NS, dns::RRClass::IN, 3600,
      dns::Rdata{dns::NameData{*Name::parse("ns1.example.com")}}});
  return r.to_wire();
}

class WireFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzz, MutatedMessagesNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  auto base = sample_message_bytes();
  for (int iter = 0; iter < 500; ++iter) {
    auto bytes = base;
    // Mutate 1-8 random bytes, possibly truncate or extend.
    int mutations = static_cast<int>(rng.uniform(1, 8));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.uniform(0, bytes.size() - 1);
      bytes[pos] = static_cast<uint8_t>(rng.uniform(0, 255));
    }
    if (rng.bernoulli(0.3)) bytes.resize(rng.uniform(0, bytes.size()));
    if (rng.bernoulli(0.1)) bytes.insert(bytes.end(), rng.uniform(1, 64), 0xff);

    auto parsed = Message::from_wire(bytes);
    if (parsed.ok()) {
      // Whatever parsed must re-encode without crashing.
      auto rewire = parsed->to_wire();
      EXPECT_FALSE(rewire.empty());
    }
  }
}

TEST_P(WireFuzz, RandomGarbageNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> bytes(rng.uniform(0, 600));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.uniform(0, 255));
    auto parsed = Message::from_wire(bytes);
    (void)parsed;  // ok or error; no crash, no hang
  }
}

TEST_P(WireFuzz, CompressionPointerAbuse) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  for (int iter = 0; iter < 200; ++iter) {
    // Header claiming one question, then a name made of random pointers.
    ByteWriter w;
    w.u16(1);
    w.u16(0);
    w.u16(1);
    w.u16(0);
    w.u16(0);
    w.u16(0);
    int pointers = static_cast<int>(rng.uniform(1, 30));
    for (int p = 0; p < pointers; ++p)
      w.u16(static_cast<uint16_t>(0xc000 | rng.uniform(0, 0x3fff)));
    w.u8(0);
    w.u16(1);
    w.u16(1);
    auto parsed = Message::from_wire(w.data());
    (void)parsed;  // must terminate (loop guard) without crashing
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Range(1, 6));

// Hand-crafted hostile-name corpus: each case pins one decompression guard
// in dns::Name::from_wire with an exact reject (or a boundary accept), so a
// refactor that silently relaxes a bound fails here rather than only under
// random fuzz luck.
Result<Name> parse_name_at(std::span<const uint8_t> bytes, size_t at) {
  ByteReader rd(bytes);
  EXPECT_TRUE(rd.seek(at).ok());
  return Name::from_wire(rd);
}

TEST(HostileNameCorpus, SelfPointerRejected) {
  // A pointer targeting its own first byte: strictly-backward rule kills it.
  std::vector<uint8_t> bytes{0xc0, 0x00};
  auto name = parse_name_at(bytes, 0);
  ASSERT_FALSE(name.ok());
  EXPECT_NE(name.error().message.find("forward"), std::string::npos);
}

TEST(HostileNameCorpus, ForwardPointerRejected) {
  std::vector<uint8_t> bytes{0xc0, 0x08, 0, 0, 0, 0, 0, 0, 0x00};
  auto name = parse_name_at(bytes, 0);
  ASSERT_FALSE(name.ok());
  EXPECT_NE(name.error().message.find("forward"), std::string::npos);
}

TEST(HostileNameCorpus, MutualPointerLoopRejected) {
  // 0 -> 2 and 2 -> 0: the second hop is non-backward, so the loop is cut
  // on its first revisit rather than spinning until the hop cap.
  std::vector<uint8_t> bytes{0xc0, 0x02, 0xc0, 0x00};
  auto name = parse_name_at(bytes, 2);
  ASSERT_FALSE(name.ok());
}

// Builds root at offset 0 and `count` chained pointers, each targeting the
// previous one; returns the buffer (parse starts at the last pointer).
std::vector<uint8_t> backward_pointer_chain(int count) {
  ByteWriter w;
  w.u8(0);  // offset 0: root
  for (int i = 0; i < count; ++i) {
    size_t target = (i == 0) ? 0 : static_cast<size_t>(1 + 2 * (i - 1));
    w.u16(static_cast<uint16_t>(0xc000 | target));
  }
  return std::move(w).take();
}

TEST(HostileNameCorpus, PointerChainPastHopCapRejected) {
  auto bytes = backward_pointer_chain(70);  // all-backward, but 70 hops
  auto name = parse_name_at(bytes, bytes.size() - 2);
  ASSERT_FALSE(name.ok());
  EXPECT_NE(name.error().message.find("chain too long"), std::string::npos);
}

TEST(HostileNameCorpus, PointerChainWithinHopCapParses) {
  auto bytes = backward_pointer_chain(60);
  auto name = parse_name_at(bytes, bytes.size() - 2);
  ASSERT_TRUE(name.ok()) << name.error().message;
  EXPECT_TRUE(name->is_root());
}

// `sizes` label lengths followed by root, all filled with 'a'.
std::vector<uint8_t> label_run(std::initializer_list<int> sizes) {
  ByteWriter w;
  for (int s : sizes) {
    w.u8(static_cast<uint8_t>(s));
    for (int i = 0; i < s; ++i) w.u8('a');
  }
  w.u8(0);
  return std::move(w).take();
}

TEST(HostileNameCorpus, DecompressionPast255OctetsRejected) {
  // 63+63+63+63 labels = 256 wire octets before the root byte.
  auto bytes = label_run({63, 63, 63, 63});
  auto name = parse_name_at(bytes, 0);
  ASSERT_FALSE(name.ok());
  EXPECT_NE(name.error().message.find("255"), std::string::npos);
}

TEST(HostileNameCorpus, Exactly255OctetNameParses) {
  // 63+63+63+61 labels + root = exactly 255 octets: the legal maximum.
  auto bytes = label_run({63, 63, 63, 61});
  auto name = parse_name_at(bytes, 0);
  ASSERT_TRUE(name.ok()) << name.error().message;
  EXPECT_EQ(name->wire_length(), 255u);
}

TEST(HostileNameCorpus, ReservedLabelTypesRejected) {
  for (uint8_t tag : {uint8_t{0x40}, uint8_t{0x80}}) {
    std::vector<uint8_t> bytes{static_cast<uint8_t>(tag | 0x01), 'a', 0x00};
    auto name = parse_name_at(bytes, 0);
    ASSERT_FALSE(name.ok());
    EXPECT_NE(name.error().message.find("label type"), std::string::npos);
  }
}

TEST(HostileNameCorpus, TruncatedLabelRejected) {
  std::vector<uint8_t> bytes{0x05, 'a', 'b'};  // claims 5, delivers 2
  EXPECT_FALSE(parse_name_at(bytes, 0).ok());
}

TEST(HostileNameCorpus, ValidCompressedNameRoundTrips) {
  // "example.com" at offset 2, then "www" + pointer back to it.
  ByteWriter w;
  w.u16(0);  // padding so the target is a genuine backward offset
  w.u8(7);
  for (char c : std::string_view("example")) w.u8(static_cast<uint8_t>(c));
  w.u8(3);
  for (char c : std::string_view("com")) w.u8(static_cast<uint8_t>(c));
  w.u8(0);
  size_t www_at = w.size();
  w.u8(3);
  for (char c : std::string_view("www")) w.u8(static_cast<uint8_t>(c));
  w.u16(0xc000 | 2);  // pointer to "example.com"
  auto bytes = std::move(w).take();
  auto name = parse_name_at(bytes, www_at);
  ASSERT_TRUE(name.ok()) << name.error().message;
  EXPECT_EQ(name->to_string(), Name::parse("www.example.com")->to_string());
}

TEST(HostileNameCorpus, MessageWithPointerIntoHeaderTerminates) {
  // A question name pointing into the fixed header: whatever those bytes
  // decode to, parsing must terminate without crashing.
  ByteWriter w;
  w.u16(0x1234);
  w.u16(0);
  w.u16(1);
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u16(0xc000 | 0);  // name = pointer to offset 0 (the ID field)
  w.u16(1);
  w.u16(1);
  auto parsed = Message::from_wire(w.data());
  (void)parsed;  // ok or error; no crash, no hang
}

// Seed-corpus round-trip through the fault layer's corrupt impairment: the
// exact byte-flipping the replay/proxy/server paths apply to live packets
// must never crash the wire parser, and whatever still parses must
// re-encode. This ties the fuzzer to the corruption the fault scenarios
// actually generate (same FaultStream draws), not just to uniform random
// mutation.
class FaultCorruptFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultCorruptFuzz, CorruptedWireMessagesNeverCrashParsing) {
  fault::FaultSpec spec;
  spec.corrupt = 1.0;
  spec.seed = static_cast<uint64_t>(GetParam());
  // Sweep the corruption intensity: a single flipped byte up to heavy
  // mangling of a quarter of the message.
  for (size_t max_bytes : {size_t{1}, size_t{4}, size_t{16}, size_t{64}}) {
    spec.corrupt_max_bytes = max_bytes;
    fault::FaultStream stream(spec, "fuzz:corrupt");
    auto base = sample_message_bytes();
    for (int iter = 0; iter < 300; ++iter) {
      auto bytes = base;
      stream.corrupt(bytes);
      EXPECT_EQ(bytes.size(), base.size());  // corruption flips, never resizes
      EXPECT_NE(bytes, base);                // and always changes something
      auto parsed = Message::from_wire(bytes);
      if (parsed.ok()) {
        auto rewire = parsed->to_wire();
        EXPECT_FALSE(rewire.empty());
      }
    }
  }
}

TEST_P(FaultCorruptFuzz, CorruptedQueriesNeverCrashParsing) {
  fault::FaultSpec spec;
  spec.corrupt = 1.0;
  spec.seed = static_cast<uint64_t>(GetParam()) + 500;
  spec.corrupt_max_bytes = 8;
  fault::FaultStream stream(spec, "fuzz:query");
  Message q = Message::make_query(9, *Name::parse("a.b.c.example.com"),
                                  RRType::AAAA);
  auto base = q.to_wire();
  for (int iter = 0; iter < 500; ++iter) {
    auto bytes = base;
    stream.corrupt(bytes);
    auto parsed = Message::from_wire(bytes);
    if (parsed.ok()) (void)parsed->to_wire();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultCorruptFuzz, ::testing::Range(1, 6));

class PcapFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PcapFuzz, MutatedCapturesNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  trace::PcapWriter w;
  Message q = Message::make_query(1, *Name::parse("x.example"), RRType::A);
  for (int i = 0; i < 5; ++i) {
    w.add(trace::make_query_record(i * kMilli,
                                   Endpoint{IpAddr{Ip4{10, 0, 0, 1}}, 40000},
                                   Endpoint{IpAddr{Ip4{10, 0, 0, 2}}, 53}, q));
  }
  auto base = std::move(w).take();
  for (int iter = 0; iter < 300; ++iter) {
    auto bytes = base;
    int mutations = static_cast<int>(rng.uniform(1, 12));
    for (int m = 0; m < mutations; ++m)
      bytes[rng.uniform(24, bytes.size() - 1)] = static_cast<uint8_t>(rng.uniform(0, 255));
    if (rng.bernoulli(0.3)) bytes.resize(rng.uniform(24, bytes.size()));
    auto reader = trace::PcapReader::from_bytes(bytes);
    if (!reader.ok()) continue;
    // Either drains cleanly or stops with an error; never crashes/loops.
    (void)reader->read_all();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcapFuzz, ::testing::Range(1, 4));

class TextFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TextFuzz, MangledTraceLinesNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const std::string base =
      "1.000000 192.0.2.1 40000 192.0.2.53 53 UDP 7 www.example.com. IN A rd,do 4096";
  for (int iter = 0; iter < 500; ++iter) {
    std::string line = base;
    int mutations = static_cast<int>(rng.uniform(1, 6));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.uniform(0, line.size() - 1);
      line[pos] = static_cast<char>(rng.uniform(32, 126));
    }
    auto parsed = trace::record_from_text(line);
    if (parsed.ok()) {
      // Survivors must round-trip.
      auto back = trace::record_to_text(*parsed);
      EXPECT_TRUE(back.ok());
    }
  }
}

TEST_P(TextFuzz, MangledZoneFilesNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  const std::string base = R"($ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
txt IN TXT "hello world"
)";
  for (int iter = 0; iter < 300; ++iter) {
    std::string text = base;
    int mutations = static_cast<int>(rng.uniform(1, 10));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.uniform(0, text.size() - 1);
      text[pos] = static_cast<char>(rng.uniform(32, 126));
    }
    auto parsed = zone::parse_zone(text);
    (void)parsed;  // ok or line-numbered error; no crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextFuzz, ::testing::Range(1, 4));

class BinaryFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BinaryFuzz, MutatedStreamsErrorCleanly) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  trace::BinaryWriter w;
  Message q = Message::make_query(1, *Name::parse("y.example"), RRType::A);
  for (int i = 0; i < 5; ++i) {
    w.add(trace::make_query_record(i, Endpoint{IpAddr{Ip4{10, 0, 0, 1}}, 1},
                                   Endpoint{IpAddr{Ip4{10, 0, 0, 2}}, 53}, q));
  }
  auto base = std::move(w).take();
  for (int iter = 0; iter < 300; ++iter) {
    auto bytes = base;
    bytes[rng.uniform(6, bytes.size() - 1)] = static_cast<uint8_t>(rng.uniform(0, 255));
    if (rng.bernoulli(0.3)) bytes.resize(rng.uniform(6, bytes.size()));
    auto reader = trace::BinaryReader::from_bytes(bytes);
    if (!reader.ok()) continue;
    while (true) {
      auto rec = reader->next();
      if (!rec.ok() || !rec->has_value()) break;  // clean error or EOF
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryFuzz, ::testing::Range(1, 4));

}  // namespace
}  // namespace ldp
