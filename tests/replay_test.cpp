// End-to-end tests of the distributed query engine over real loopback
// sockets: timing fidelity (the §4.2 claims at small scale), fast mode,
// TCP connection reuse, same-source stickiness, and response matching.
#include <gtest/gtest.h>

#include "replay/engine.hpp"
#include "replay/schedule.hpp"
#include "server/background.hpp"
#include "synth/generator.hpp"
#include "zone/parser.hpp"

namespace ldp::replay {
namespace {

using trace::TraceRecord;

server::AuthServer wildcard_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

TEST(ReplayClockT, DelayMath) {
  ReplayClock clock;
  clock.start(/*trace=*/1000 * kSecond, /*real=*/500 * kSecond);
  // Query 3s into the trace, 1s of real time already burned: wait 2s.
  EXPECT_EQ(clock.delay_for(1003 * kSecond, 501 * kSecond), 2 * kSecond);
  // Input fell behind: negative delay means send immediately.
  EXPECT_LT(clock.delay_for(1001 * kSecond, 503 * kSecond), 0);
  EXPECT_EQ(clock.deadline_for(1003 * kSecond), 503 * kSecond);
}

TEST(QueryEngineT, RepliesReceivedOverUdp) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok()) << bg.error().message;

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 5 * kMilli;
  spec.duration_ns = kSecond / 2;  // 100 queries
  spec.client_count = 10;
  auto trace = synth::make_fixed_trace(spec);

  EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report->queries_sent, trace.size());
  EXPECT_EQ(report->responses_received, trace.size());
  EXPECT_EQ(report->send_errors, 0u);
  for (const auto& sr : report->sends) {
    EXPECT_GE(sr.latency, 0) << "unanswered query";
    EXPECT_LT(sr.latency, kSecond);
  }
}

TEST(QueryEngineT, TimingFidelity) {
  // The miniature Figure 6: with 10ms spacing, send-time offsets from the
  // replay origin should track trace offsets within a few ms.
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 10 * kMilli;
  spec.duration_ns = kSecond;
  spec.client_count = 5;
  auto trace = synth::make_fixed_trace(spec);

  EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->sends.size(), trace.size());

  TimeNs t0_trace = trace.front().timestamp;
  Sampler error_ms;
  for (const auto& sr : report->sends) {
    TimeNs ideal = sr.trace_time - t0_trace;
    TimeNs actual = sr.send_time - report->replay_start;
    error_ms.add(ns_to_ms(actual - ideal));
  }
  auto sum = error_ms.summary();
  // Single-core CI machine: generous but still ms-scale bounds (the paper
  // reports ±8ms quartiles at much higher rates on dedicated hardware).
  EXPECT_GE(sum.min, -1.0) << "sent before schedule";
  EXPECT_LT(sum.q3, 15.0);
  EXPECT_LT(sum.max, 100.0);
}

TEST(QueryEngineT, FastModeIgnoresTraceTiming) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());

  // A 10-second trace replayed in far less wall time.
  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 100 * kMilli;
  spec.duration_ns = 10 * kSecond;
  spec.client_count = 4;
  auto trace = synth::make_fixed_trace(spec);

  EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.timed = false;
  QueryEngine engine(cfg);
  TimeNs start = mono_now_ns();
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->queries_sent, trace.size());
  EXPECT_LT(mono_now_ns() - start, 5 * kSecond);
}

TEST(QueryEngineT, TcpConnectionsReusedPerSource) {
  server::FrontendConfig fe_cfg;
  fe_cfg.tcp_idle_timeout = 20 * kSecond;
  auto bg = server::BackgroundServer::start(wildcard_server(), fe_cfg);
  ASSERT_TRUE(bg.ok());

  // 4 distinct sources, 10 queries each, all TCP, bunched in time.
  std::vector<TraceRecord> trace;
  int seq = 0;
  for (int c = 0; c < 4; ++c) {
    IpAddr client{Ip4{10, 0, 0, static_cast<uint8_t>(c + 1)}};
    for (int i = 0; i < 10; ++i) {
      dns::Message q = dns::Message::make_query(
          static_cast<uint16_t>(seq),
          *dns::Name::parse("q" + std::to_string(seq) + ".example.com"),
          dns::RRType::A);
      trace.push_back(trace::make_query_record(seq * 2 * kMilli,
                                               Endpoint{client, 50000},
                                               Endpoint{IpAddr{}, 53}, q,
                                               Transport::Tcp));
      ++seq;
    }
  }

  EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->queries_sent, 40u);
  EXPECT_EQ(report->responses_received, 40u);
  // Same-source stickiness + reuse: exactly one connection per source.
  EXPECT_EQ(report->connections_opened, 4u);
  (*bg)->stop();
  EXPECT_EQ((*bg)->connections().accepted, 4u);
}

TEST(QueryEngineT, MultipleDistributorsAndQueriersPartitionWork) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = kMilli;
  spec.duration_ns = kSecond / 2;
  spec.client_count = 50;
  auto trace = synth::make_fixed_trace(spec);

  EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.distributors = 2;
  cfg.queriers_per_distributor = 2;
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->queries_sent, trace.size());
  EXPECT_EQ(report->responses_received, trace.size());

  // All four queriers participated.
  std::set<uint32_t> queriers;
  for (const auto& sr : report->sends) queriers.insert(sr.querier);
  EXPECT_EQ(queriers.size(), 4u);
}

TEST(QueryEngineT, SameSourceAlwaysSameQuerier) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());

  // Two sources interleaved; record which querier handled each source by
  // marking queries with per-source ids.
  std::vector<TraceRecord> trace;
  for (int i = 0; i < 40; ++i) {
    IpAddr client{Ip4{10, 9, 0, static_cast<uint8_t>(1 + (i % 2))}};
    dns::Message q = dns::Message::make_query(
        static_cast<uint16_t>(i), *dns::Name::parse("s.example.com"), dns::RRType::A);
    trace.push_back(trace::make_query_record(i * kMilli, Endpoint{client, 40000},
                                             Endpoint{IpAddr{}, 53}, q));
  }

  EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.distributors = 2;
  cfg.queriers_per_distributor = 2;
  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok());

  // Reconstruct source -> querier from the send order: sends alternate by
  // trace construction, and SendRecord keeps the trace time, so match by
  // timestamp parity.
  std::map<int, std::set<uint32_t>> queriers_by_source;
  for (const auto& sr : report->sends) {
    int source = static_cast<int>((sr.trace_time / kMilli) % 2);
    queriers_by_source[source].insert(sr.querier);
  }
  for (const auto& [source, qs] : queriers_by_source) {
    EXPECT_EQ(qs.size(), 1u) << "source " << source << " split across queriers";
  }
}

TEST(QueryEngineT, EmptyTraceRejected) {
  EngineConfig cfg;
  cfg.server = Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 5300};
  QueryEngine engine(cfg);
  EXPECT_FALSE(engine.replay({}).ok());
}

TEST(QueryEngineT, UnansweredQueriesDrainAfterGrace) {
  // No server: every query goes unanswered; the engine must still return
  // after the grace period with latency = -1 markers.
  EngineConfig cfg;
  cfg.server = Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 1};  // nothing listens
  cfg.drain_grace = 200 * kMilli;
  QueryEngine engine(cfg);

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 10 * kMilli;
  spec.duration_ns = 100 * kMilli;
  auto trace = synth::make_fixed_trace(spec);

  TimeNs start = mono_now_ns();
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(mono_now_ns() - start, 5 * kSecond);
  EXPECT_EQ(report->responses_received, 0u);
  for (const auto& sr : report->sends) EXPECT_EQ(sr.latency, -1);
}

}  // namespace
}  // namespace ldp::replay
