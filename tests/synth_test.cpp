// Tests for the workload generators: determinism, timing structure, and the
// statistical properties the paper's evaluation depends on.
#include <gtest/gtest.h>

#include "synth/generator.hpp"
#include "trace/stats.hpp"

namespace ldp::synth {
namespace {

TEST(ClientPool, DistinctAndDeterministic) {
  Rng a(5), b(5);
  auto p1 = make_client_pool(1000, a);
  auto p2 = make_client_pool(1000, b);
  EXPECT_EQ(p1.size(), 1000u);
  for (size_t i = 0; i < p1.size(); ++i) EXPECT_TRUE(p1[i] == p2[i]);
  std::set<std::string> unique;
  for (const auto& addr : p1) unique.insert(addr.to_string());
  EXPECT_EQ(unique.size(), 1000u);
}

TEST(FixedTrace, ExactSpacingUniqueNames) {
  FixedTraceSpec spec;
  spec.interarrival_ns = kMilli;
  spec.duration_ns = kSecond;
  auto recs = make_fixed_trace(spec);
  ASSERT_EQ(recs.size(), 1000u);
  std::set<std::string> names;
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].timestamp - recs[i - 1].timestamp, kMilli);
  }
  for (const auto& rec : recs) {
    auto msg = rec.message();
    ASSERT_TRUE(msg.ok());
    names.insert(msg->questions[0].qname.to_string());
  }
  EXPECT_EQ(names.size(), recs.size());  // every query name unique
}

TEST(FixedTrace, Table1SynSeries) {
  // syn-0..syn-4: inter-arrivals 1 s down to 0.1 ms over 60 s.
  const TimeNs gaps[] = {kSecond, kSecond / 10, kSecond / 100, kMilli, kMilli / 10};
  const size_t expected[] = {60, 600, 6000, 60000, 600000};
  for (int i = 0; i < 5; ++i) {
    FixedTraceSpec spec;
    spec.interarrival_ns = gaps[i];
    spec.duration_ns = 60 * kSecond;
    auto recs = make_fixed_trace(spec);
    EXPECT_EQ(recs.size(), expected[i]) << "syn-" << i;
    auto stats = trace::compute_stats(recs);
    EXPECT_NEAR(stats.interarrival_mean_s, ns_to_sec(gaps[i]),
                ns_to_sec(gaps[i]) * 0.01);
  }
}

TEST(RootTrace, RateAndMixes) {
  RootTraceSpec spec;
  spec.mean_rate_qps = 1000;
  spec.duration_ns = 30 * kSecond;
  spec.client_count = 2000;
  spec.seed = 11;
  auto recs = make_root_trace(spec);
  auto stats = trace::compute_stats(recs);
  EXPECT_NEAR(stats.mean_rate_qps(), 1000, 100);

  size_t with_do = 0, tcp = 0;
  for (const auto& rec : recs) {
    auto msg = rec.message();
    ASSERT_TRUE(msg.ok());
    if (msg->edns.has_value() && msg->edns->dnssec_ok) ++with_do;
    if (rec.transport == Transport::Tcp) ++tcp;
  }
  double do_frac = static_cast<double>(with_do) / recs.size();
  double tcp_frac = static_cast<double>(tcp) / recs.size();
  EXPECT_NEAR(do_frac, 0.723, 0.02);  // the paper's mid-2016 DO share
  EXPECT_NEAR(tcp_frac, 0.03, 0.01);  // 3% TCP
}

TEST(RootTrace, DeterministicAcrossRuns) {
  RootTraceSpec spec;
  spec.mean_rate_qps = 500;
  spec.duration_ns = 5 * kSecond;
  spec.seed = 99;
  auto a = make_root_trace(spec);
  auto b = make_root_trace(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(RootTrace, TimestampsMonotone) {
  RootTraceSpec spec;
  spec.mean_rate_qps = 2000;
  spec.duration_ns = 5 * kSecond;
  auto recs = make_root_trace(spec);
  for (size_t i = 1; i < recs.size(); ++i)
    EXPECT_GE(recs[i].timestamp, recs[i - 1].timestamp);
}

TEST(RecursiveTrace, MatchesRec17Shape) {
  RecursiveTraceSpec spec;
  spec.query_count = 20000;
  spec.client_count = 91;
  spec.seed = 4;
  auto recs = make_recursive_trace(spec);
  ASSERT_EQ(recs.size(), 20000u);
  auto stats = trace::compute_stats(recs);
  EXPECT_EQ(stats.unique_clients, 91u);
  // Table 1 Rec-17: inter-arrival 0.1808 ± 0.3554 s.
  EXPECT_NEAR(stats.interarrival_mean_s, 0.1808, 0.02);
  EXPECT_NEAR(stats.interarrival_stdev_s, 0.3554, 0.05);

  // Distinct SLD count close to the configured zone universe (549).
  std::set<std::string> slds;
  for (const auto& rec : recs) {
    auto msg = rec.message();
    ASSERT_TRUE(msg.ok());
    const auto& qname = msg->questions[0].qname;
    ASSERT_GE(qname.label_count(), 2u);
    slds.insert(qname.suffix(2).to_string());
  }
  EXPECT_GT(slds.size(), 400u);
  EXPECT_LE(slds.size(), 549u);
}

TEST(RecursiveTrace, RdSetOnStubQueries) {
  RecursiveTraceSpec spec;
  spec.query_count = 100;
  auto recs = make_recursive_trace(spec);
  for (const auto& rec : recs) {
    auto msg = rec.message();
    ASSERT_TRUE(msg.ok());
    EXPECT_TRUE(msg->header.rd);  // stub → recursive queries want recursion
  }
}

}  // namespace
}  // namespace ldp::synth
