// Tests for the trace formats: pcap round-trip (UDP/TCP, v4/v6, junk
// skipping), plain-text round-trip, binary stream round-trip, checksum
// helpers, and Table-1 statistics.
#include <gtest/gtest.h>

#include "trace/binary.hpp"
#include "trace/pcap.hpp"
#include "trace/stats.hpp"
#include "trace/text.hpp"
#include "synth/generator.hpp"

namespace ldp::trace {
namespace {

using dns::Message;
using dns::Name;
using dns::RRType;

TraceRecord sample_record(TimeNs t = 1461234567 * kSecond + 12345000,
                          Transport transport = Transport::Udp) {
  Message q = Message::make_query(0x1234, *Name::parse("www.example.com"), RRType::A);
  dns::Edns e;
  e.udp_payload_size = 4096;
  e.dnssec_ok = true;
  q.edns = e;
  return make_query_record(t, Endpoint{IpAddr{Ip4{198, 51, 100, 7}}, 54321},
                           Endpoint{IpAddr{Ip4{192, 0, 2, 53}}, 53}, q, transport);
}

TEST(Pcap, UdpRoundTrip) {
  PcapWriter w;
  auto rec = sample_record();
  w.add(rec);
  auto reader = PcapReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok()) << reader.error().message;
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  const auto& got = (*all)[0];
  EXPECT_EQ(got.src, rec.src);
  EXPECT_EQ(got.dst, rec.dst);
  EXPECT_EQ(got.transport, Transport::Udp);
  EXPECT_EQ(got.direction, Direction::Query);
  EXPECT_EQ(got.dns_payload, rec.dns_payload);
  // Microsecond timestamp precision.
  EXPECT_EQ(got.timestamp / 1000, rec.timestamp / 1000);
}

TEST(Pcap, TcpSingleSegmentRoundTrip) {
  PcapWriter w;
  auto rec = sample_record(42 * kSecond, Transport::Tcp);
  w.add(rec);
  auto reader = PcapReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].transport, Transport::Tcp);
  EXPECT_EQ((*all)[0].dns_payload, rec.dns_payload);
}

TEST(Pcap, Ipv6RoundTrip) {
  Message q = Message::make_query(7, *Name::parse("v6.example.com"), RRType::AAAA);
  auto rec = make_query_record(kSecond, Endpoint{IpAddr{*Ip6::parse("2001:db8::7")}, 40000},
                               Endpoint{IpAddr{*Ip6::parse("2001:db8::53")}, 53}, q);
  PcapWriter w;
  w.add(rec);
  auto reader = PcapReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].src, rec.src);
  EXPECT_EQ((*all)[0].dns_payload, rec.dns_payload);
}

TEST(Pcap, ResponsesClassifiedByPort) {
  Message q = Message::make_query(9, *Name::parse("x.example"), RRType::A);
  Message r = Message::make_response(q);
  auto rec = make_query_record(kSecond, Endpoint{IpAddr{Ip4{192, 0, 2, 53}}, 53},
                               Endpoint{IpAddr{Ip4{198, 51, 100, 7}}, 54321}, r);
  PcapWriter w;
  w.add(rec);
  auto reader = PcapReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].direction, Direction::Response);
}

TEST(Pcap, RejectsGarbageFile) {
  EXPECT_FALSE(PcapReader::from_bytes({1, 2, 3, 4}).ok());
  std::vector<uint8_t> wrong_magic(24, 0);
  EXPECT_FALSE(PcapReader::from_bytes(wrong_magic).ok());
}

TEST(Pcap, SkipsNonDnsPackets) {
  // Hand-build a pcap with one non-DNS UDP packet (port 80) followed by one
  // DNS packet; the reader should return only the DNS one.
  PcapWriter w;
  auto junk = sample_record();
  junk.src.port = 8080;
  junk.dst.port = 80;
  w.add(junk);
  w.add(sample_record());
  auto reader = PcapReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);
  EXPECT_EQ(reader->skipped(), 1u);
}

TEST(Pcap, FileSaveLoad) {
  PcapWriter w;
  for (int i = 0; i < 10; ++i) w.add(sample_record(i * kMilli));
  std::string path = ::testing::TempDir() + "/ldp_test.pcap";
  ASSERT_TRUE(w.save(path).ok());
  auto reader = PcapReader::open(path);
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 10u);
}

TEST(Checksum, KnownIpHeader) {
  // RFC 1071-style check: a header with its checksum field inserted sums to
  // zero (i.e. recomputing over the checksummed header yields 0).
  std::vector<uint8_t> hdr = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40,
                              0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                              0x00, 0xc7};
  uint16_t sum = inet_checksum(hdr);
  hdr[10] = static_cast<uint8_t>(sum >> 8);
  hdr[11] = static_cast<uint8_t>(sum);
  EXPECT_EQ(inet_checksum(hdr), 0);
}

TEST(Checksum, UdpPseudoHeaderVerifies) {
  ByteWriter seg;
  seg.u16(54321);
  seg.u16(53);
  seg.u16(8 + 4);
  seg.u16(0);
  seg.bytes(std::string_view("test"));
  auto bytes = std::vector<uint8_t>(seg.data().begin(), seg.data().end());
  uint16_t sum = udp4_checksum(Ip4{10, 0, 0, 1}, Ip4{10, 0, 0, 2}, bytes);
  bytes[6] = static_cast<uint8_t>(sum >> 8);
  bytes[7] = static_cast<uint8_t>(sum);
  // Recomputing over the checksummed segment gives 0 (or 0xffff ≡ 0).
  ByteWriter pseudo;
  pseudo.u32(Ip4{10, 0, 0, 1}.value());
  pseudo.u32(Ip4{10, 0, 0, 2}.value());
  pseudo.u8(0);
  pseudo.u8(17);
  pseudo.u16(static_cast<uint16_t>(bytes.size()));
  pseudo.bytes(std::span<const uint8_t>(bytes));
  uint16_t check = inet_checksum(pseudo.data());
  EXPECT_TRUE(check == 0 || check == 0xffff);
}

TEST(Text, RoundTrip) {
  auto rec = sample_record();
  auto line = record_to_text(rec);
  ASSERT_TRUE(line.ok()) << line.error().message;
  auto back = record_from_text(*line);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back->timestamp / 1000, rec.timestamp / 1000);  // µs precision
  EXPECT_EQ(back->src, rec.src);
  EXPECT_EQ(back->dst, rec.dst);
  EXPECT_EQ(back->transport, rec.transport);
  // DNS payload identical (same question, flags, EDNS).
  EXPECT_EQ(back->dns_payload, rec.dns_payload);
}

TEST(Text, FlagsAndEdnsVariants) {
  // No EDNS, no flags.
  Message plain = Message::make_query(1, *Name::parse("a.example"), RRType::A, false);
  auto rec = make_query_record(0, Endpoint{IpAddr{Ip4{1, 2, 3, 4}}, 1000},
                               Endpoint{IpAddr{Ip4{5, 6, 7, 8}}, 53}, plain);
  auto line = record_to_text(rec);
  ASSERT_TRUE(line.ok());
  EXPECT_NE(line->find(" - -"), std::string::npos);
  auto back = record_from_text(*line);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->dns_payload, rec.dns_payload);
}

TEST(Text, MalformedLinesRejected) {
  EXPECT_FALSE(record_from_text("too few columns").ok());
  EXPECT_FALSE(record_from_text(
                   "1.0 1.2.3.4 99999 5.6.7.8 53 UDP 1 a.example. IN A - -")
                   .ok());  // bad port
  EXPECT_FALSE(record_from_text(
                   "1.0 1.2.3.4 1000 5.6.7.8 53 SCTP 1 a.example. IN A - -")
                   .ok());  // bad transport
  EXPECT_FALSE(record_from_text(
                   "1.0 1.2.3.4 1000 5.6.7.8 53 UDP 1 a.example. IN A do -")
                   .ok());  // DO without EDNS
}

TEST(Text, TraceToTextSkipsResponses) {
  Message q = Message::make_query(2, *Name::parse("b.example"), RRType::A);
  Message r = Message::make_response(q);
  std::vector<TraceRecord> recs;
  recs.push_back(make_query_record(0, Endpoint{IpAddr{Ip4{1, 1, 1, 1}}, 1234},
                                   Endpoint{IpAddr{Ip4{2, 2, 2, 2}}, 53}, q));
  recs.push_back(make_query_record(1, Endpoint{IpAddr{Ip4{2, 2, 2, 2}}, 53},
                                   Endpoint{IpAddr{Ip4{1, 1, 1, 1}}, 1234}, r));
  auto text = trace_to_text(recs);
  ASSERT_TRUE(text.ok());
  auto back = trace_from_text(*text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 1u);
}

TEST(Text, CommentsAndBlanksIgnored) {
  auto rec = sample_record();
  auto line = record_to_text(rec);
  ASSERT_TRUE(line.ok());
  std::string file = "# header comment\n\n" + *line + "\n\n";
  auto back = trace_from_text(file);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 1u);
}

TEST(Binary, RoundTripPreservesEverything) {
  BinaryWriter w;
  auto rec1 = sample_record(123456789, Transport::Tls);
  auto rec2 = sample_record(987654321, Transport::Udp);
  w.add(rec1);
  w.add(rec2);
  EXPECT_EQ(w.record_count(), 2u);

  auto reader = BinaryReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok()) << reader.error().message;
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok()) << all.error().message;
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0], rec1);  // exact: ns timestamps, transport, payload
  EXPECT_EQ((*all)[1], rec2);
}

TEST(Binary, V6AddressesSupported) {
  BinaryWriter w;
  Message q = Message::make_query(3, *Name::parse("c.example"), RRType::AAAA);
  auto rec = make_query_record(5, Endpoint{IpAddr{*Ip6::parse("2001:db8::1")}, 1111},
                               Endpoint{IpAddr{*Ip6::parse("2001:db8::2")}, 53}, q);
  w.add(rec);
  auto reader = BinaryReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ((*all)[0], rec);
}

TEST(Binary, CorruptionIsAnErrorNotSkip) {
  BinaryWriter w;
  w.add(sample_record());
  auto bytes = std::move(w).take();
  bytes.resize(bytes.size() - 3);  // truncate mid-message
  auto reader = BinaryReader::from_bytes(std::move(bytes));
  ASSERT_TRUE(reader.ok());
  auto rec = reader->next();
  EXPECT_FALSE(rec.ok());
}

TEST(Binary, RejectsWrongMagicOrVersion) {
  EXPECT_FALSE(BinaryReader::from_bytes({'X', 'X', 'X', 'X', 0, 1}).ok());
  EXPECT_FALSE(BinaryReader::from_bytes({'L', 'D', 'P', 'B', 0, 99}).ok());
}

TEST(Binary, FileSaveLoad) {
  BinaryWriter w;
  for (int i = 0; i < 100; ++i) w.add(sample_record(i * kMilli));
  std::string path = ::testing::TempDir() + "/ldp_test.ldpb";
  ASSERT_TRUE(w.save(path).ok());
  auto reader = BinaryReader::open(path);
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 100u);
}

TEST(Stats, ComputesTable1Columns) {
  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 10 * kMilli;
  spec.duration_ns = 10 * kSecond;
  spec.client_count = 50;
  auto recs = synth::make_fixed_trace(spec);
  auto stats = compute_stats(recs);
  EXPECT_EQ(stats.queries, recs.size());
  EXPECT_EQ(stats.unique_clients, 50u);
  EXPECT_NEAR(stats.interarrival_mean_s, 0.010, 1e-9);
  EXPECT_NEAR(stats.interarrival_stdev_s, 0.0, 1e-7);  // float rounding only
  EXPECT_NEAR(stats.duration_s(), 10.0, 0.1);
  EXPECT_NEAR(stats.mean_rate_qps(), 100.0, 1.0);
}

TEST(Stats, PerClientLoadHeavyTail) {
  synth::RootTraceSpec spec;
  spec.mean_rate_qps = 2000;
  spec.duration_ns = 20 * kSecond;
  spec.client_count = 5000;
  auto recs = synth::make_root_trace(spec);
  auto load = per_client_load(recs);
  ASSERT_FALSE(load.empty());

  std::vector<uint64_t> counts;
  counts.reserve(load.size());
  uint64_t total = 0;
  for (auto& [addr, n] : load) {
    counts.push_back(n);
    total += n;
  }
  std::sort(counts.rbegin(), counts.rend());
  // Top 1% of clients should carry a majority of the load (paper: 75%).
  size_t top = std::max<size_t>(1, counts.size() / 100);
  uint64_t top_sum = 0;
  for (size_t i = 0; i < top; ++i) top_sum += counts[i];
  EXPECT_GT(static_cast<double>(top_sum) / static_cast<double>(total), 0.4);
}

}  // namespace
}  // namespace ldp::trace
