// Self-healing replay pipeline tests: supervision (a stalled querier is
// detected, reaped, and its work finishes on a sibling), overload shedding
// (a saturated queue sheds with accounting instead of stalling), and
// deterministic checkpoint/resume (a replay cut in two produces the same
// books as one that never stopped). Plus unit coverage for
// EngineReport::merge_from and the checkpoint file format.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "replay/checkpoint.hpp"
#include "replay/engine.hpp"
#include "replay/supervisor.hpp"
#include "server/background.hpp"
#include "synth/generator.hpp"
#include "zone/parser.hpp"

namespace ldp::replay {
namespace {

using trace::TraceRecord;

server::AuthServer wildcard_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

std::string temp_path(const char* stem) {
  return testing::TempDir() + stem + std::to_string(::getpid());
}

// --- EngineReport::merge_from -----------------------------------------------

TEST(EngineReportT, MergeSumsCountersAndWidensTimeline) {
  EngineReport a;
  a.queries_sent = 10;
  a.responses_received = 8;
  a.send_errors = 1;
  a.connections_opened = 2;
  a.mutator_dropped = 3;
  a.max_in_flight = 5;
  a.querier_failures = 1;
  a.sources_reassigned = 4;
  a.shed_queries = 7;
  a.queue_hwm = 16;
  a.clamp_stall_ns = 100;
  a.lifecycle.timeouts = 2;
  a.lifecycle.retries = 1;
  a.impairments.dropped = 6;
  a.latency_hist.add(kMilli);
  a.latency_hist.add(2 * kMilli);
  a.replay_start = 1000;
  a.replay_end = 5000;
  a.sends.push_back(SendRecord{.trace_time = 0, .send_time = 1200});

  EngineReport b;
  b.queries_sent = 5;
  b.responses_received = 5;
  b.max_in_flight = 9;
  b.querier_failures = 2;
  b.sources_reassigned = 1;
  b.shed_queries = 3;
  b.queue_hwm = 12;
  b.clamp_stall_ns = 50;
  b.lifecycle.timeouts = 1;
  b.impairments.dropped = 2;
  b.latency_hist.add(4 * kMilli);
  b.replay_start = 800;  // earlier start must win
  b.replay_end = 9000;
  b.sends.push_back(SendRecord{.trace_time = 0, .send_time = 900});

  a.merge_from(std::move(b));
  EXPECT_EQ(a.queries_sent, 15u);
  EXPECT_EQ(a.responses_received, 13u);
  EXPECT_EQ(a.send_errors, 1u);
  EXPECT_EQ(a.connections_opened, 2u);
  EXPECT_EQ(a.mutator_dropped, 3u);
  EXPECT_EQ(a.max_in_flight, 9u);       // max, not sum
  EXPECT_EQ(a.querier_failures, 3u);
  EXPECT_EQ(a.sources_reassigned, 5u);
  EXPECT_EQ(a.shed_queries, 10u);
  EXPECT_EQ(a.queue_hwm, 16u);          // max, not sum
  EXPECT_EQ(a.clamp_stall_ns, 150u);
  EXPECT_EQ(a.lifecycle.timeouts, 3u);
  EXPECT_EQ(a.lifecycle.retries, 1u);
  EXPECT_EQ(a.impairments.dropped, 8u);
  EXPECT_EQ(a.latency_hist.count(), 3u);  // histograms merge
  EXPECT_EQ(a.latency_hist.min(), kMilli);
  EXPECT_EQ(a.latency_hist.max(), 4 * kMilli);
  EXPECT_EQ(a.replay_start, 800);
  EXPECT_EQ(a.replay_end, 9000);
  EXPECT_EQ(a.sends.size(), 2u);
}

TEST(EngineReportT, MergeIgnoresZeroStartAndSentinelSendTimes) {
  EngineReport a;
  a.replay_start = 2000;
  a.replay_end = 3000;

  // A checkpoint's partial report has no timing; its zero replay_start must
  // not clobber a real one, and send_time == 0 sentinels (restored records
  // never re-sent) must not drag replay_start to zero.
  EngineReport partial;
  partial.queries_sent = 4;
  partial.replay_start = 0;
  partial.sends.push_back(SendRecord{.trace_time = 7, .send_time = 0});
  a.merge_from(std::move(partial));
  EXPECT_EQ(a.replay_start, 2000);
  EXPECT_EQ(a.replay_end, 3000);

  // But a real earlier send still lowers it (fast-mode widening).
  EngineReport early;
  early.sends.push_back(SendRecord{.trace_time = 7, .send_time = 1500});
  a.merge_from(std::move(early));
  EXPECT_EQ(a.replay_start, 1500);

  // And a merged-into-empty report adopts the other's start wholesale.
  EngineReport fresh;
  EngineReport timed;
  timed.replay_start = 4000;
  fresh.merge_from(std::move(timed));
  EXPECT_EQ(fresh.replay_start, 4000);
}

// --- supervisor primitives --------------------------------------------------

TEST(SupervisorT, FiresOncePerStaleWatchAndHonoursDone) {
  Heartbeat stale, busy, done;
  std::atomic<int> fired{0};
  // Generous timeout vs. beat period: under a loaded test machine (parallel
  // ctest, TSan) the beating thread can be descheduled for tens of ms, and a
  // tight margin turns that jitter into a false "busy declared dead".
  Supervisor sup(Supervisor::Config{5 * kMilli, 250 * kMilli, 0});
  sup.watch("stale", &stale, [&] { fired.fetch_add(1); });
  sup.watch("busy", &busy, [&] { ADD_FAILURE() << "busy querier declared dead"; });
  sup.watch("done", &done, [&] { ADD_FAILURE() << "done querier declared dead"; });
  done.mark_done();
  sup.start();
  // `busy` keeps beating; `stale` never does.
  for (int i = 0; i < 120; ++i) {
    busy.beat();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sup.stop();
  EXPECT_EQ(fired.load(), 1);  // at most once, even over many intervals
  EXPECT_EQ(sup.failures_detected(), 1u);
}

TEST(SupervisorT, CheckpointTickerRunsPeriodically) {
  Supervisor sup(Supervisor::Config{5 * kMilli, kSecond, 10 * kMilli});
  std::atomic<int> ticks{0};
  sup.set_checkpoint([&] { ticks.fetch_add(1); });
  sup.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  sup.stop();
  EXPECT_GE(ticks.load(), 3);
}

// --- checkpoint file format -------------------------------------------------

CheckpointState sample_state() {
  CheckpointState st;
  st.trace_hash = 0xdeadbeefcafef00dULL;
  st.trace_queries = 400;
  st.partial.queries_sent = 123;
  st.partial.responses_received = 100;
  st.partial.send_errors = 2;
  st.partial.connections_opened = 7;
  st.partial.mutator_dropped = 5;
  st.partial.max_in_flight = 31;
  st.partial.querier_failures = 1;
  st.partial.sources_reassigned = 3;
  st.partial.shed_queries = 11;
  st.partial.queue_hwm = 64;
  st.partial.clamp_stall_ns = 987654321;
  st.partial.lifecycle.timeouts = 9;
  st.partial.lifecycle.retries = 6;
  st.partial.lifecycle.expired = 3;
  st.partial.lifecycle.adopted_resends = 2;
  st.partial.impairments.processed = 200;
  st.partial.impairments.dropped = 17;
  st.partial.latency_hist.add(kMilli);
  st.partial.latency_hist.add(3 * kMilli);
  st.partial.latency_hist.add(700 * kMicro);
  st.sent["10.1.0.1"] = 40;
  st.sent["10.1.0.2"] = 41;
  fault::FaultStream::Position pos;
  pos.packets = 55;
  pos.corrupt_words = 9;
  pos.origin_offset = -123456;  // fast mode offsets go negative
  st.streams["udp:10.1.0.1"] = pos;
  st.streams["tcp:10.1.0.2"] = fault::FaultStream::Position{};  // unlatched
  CheckpointPending pq;
  pq.record.trace_time = 77 * kSecond;
  pq.record.querier = 3;
  pq.record.retries = 1;
  pq.record.source = *IpAddr::parse("10.1.0.2");
  pq.transport = Transport::Tcp;
  pq.retries_used = 1;
  pq.payload = {0xab, 0xcd, 0x01, 0x02, 0x03};
  st.pending.push_back(pq);
  return st;
}

TEST(CheckpointT, SaveLoadRoundTrips) {
  std::string path = temp_path("ldp_ckpt_roundtrip_");
  CheckpointState st = sample_state();
  auto saved = save_checkpoint(path, st);
  ASSERT_TRUE(saved.ok()) << saved.error().message;

  auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded->trace_hash, st.trace_hash);
  EXPECT_EQ(loaded->trace_queries, st.trace_queries);
  EXPECT_EQ(loaded->partial.queries_sent, st.partial.queries_sent);
  EXPECT_EQ(loaded->partial.responses_received, st.partial.responses_received);
  EXPECT_EQ(loaded->partial.send_errors, st.partial.send_errors);
  EXPECT_EQ(loaded->partial.connections_opened,
            st.partial.connections_opened);
  EXPECT_EQ(loaded->partial.mutator_dropped, st.partial.mutator_dropped);
  EXPECT_EQ(loaded->partial.max_in_flight, st.partial.max_in_flight);
  EXPECT_EQ(loaded->partial.querier_failures, st.partial.querier_failures);
  EXPECT_EQ(loaded->partial.sources_reassigned,
            st.partial.sources_reassigned);
  EXPECT_EQ(loaded->partial.shed_queries, st.partial.shed_queries);
  EXPECT_EQ(loaded->partial.queue_hwm, st.partial.queue_hwm);
  EXPECT_EQ(loaded->partial.clamp_stall_ns, st.partial.clamp_stall_ns);
  EXPECT_EQ(loaded->partial.lifecycle.timeouts, st.partial.lifecycle.timeouts);
  EXPECT_EQ(loaded->partial.lifecycle.retries, st.partial.lifecycle.retries);
  EXPECT_EQ(loaded->partial.lifecycle.expired, st.partial.lifecycle.expired);
  EXPECT_EQ(loaded->partial.lifecycle.adopted_resends,
            st.partial.lifecycle.adopted_resends);
  EXPECT_TRUE(loaded->partial.impairments == st.partial.impairments);
  // Histogram round-trips losslessly: buckets, extremes, and exact sum.
  EXPECT_EQ(loaded->partial.latency_hist.count(),
            st.partial.latency_hist.count());
  EXPECT_EQ(loaded->partial.latency_hist.min(), st.partial.latency_hist.min());
  EXPECT_EQ(loaded->partial.latency_hist.max(), st.partial.latency_hist.max());
  EXPECT_EQ(loaded->partial.latency_hist.sum(), st.partial.latency_hist.sum());
  EXPECT_EQ(loaded->sent, st.sent);
  ASSERT_EQ(loaded->streams.size(), 2u);
  EXPECT_EQ(loaded->streams["udp:10.1.0.1"], st.streams["udp:10.1.0.1"]);
  EXPECT_EQ(loaded->streams["tcp:10.1.0.2"].origin_offset,
            fault::FaultStream::kNoOrigin);
  ASSERT_EQ(loaded->pending.size(), 1u);
  EXPECT_EQ(loaded->pending[0].record.trace_time, 77 * kSecond);
  EXPECT_EQ(loaded->pending[0].record.querier, 3u);
  EXPECT_EQ(loaded->pending[0].record.retries, 1u);
  EXPECT_EQ(loaded->pending[0].record.source.to_string(), "10.1.0.2");
  EXPECT_EQ(loaded->pending[0].transport, Transport::Tcp);
  EXPECT_EQ(loaded->pending[0].retries_used, 1u);
  EXPECT_EQ(loaded->pending[0].payload, st.pending[0].payload);
  std::remove(path.c_str());
}

TEST(CheckpointT, LoaderRejectsDamagedFiles) {
  EXPECT_FALSE(load_checkpoint("/nonexistent/ldp.ckpt").ok());

  std::string path = temp_path("ldp_ckpt_damaged_");
  {
    std::ofstream os(path);
    os << "not a checkpoint\n";
  }
  auto bad_magic = load_checkpoint(path);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_NE(bad_magic.error().message.find("magic"), std::string::npos);

  {
    std::ofstream os(path);
    os << "ldp-checkpoint v1\ntrace 1 2\n";  // killed mid-write: no end marker
  }
  auto truncated = load_checkpoint(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.error().message.find("truncated"), std::string::npos);

  {
    std::ofstream os(path);
    os << "ldp-checkpoint v1\nfrobnicate 1\nend\n";
  }
  auto unknown = load_checkpoint(path);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().message.find("frobnicate"), std::string::npos);

  {
    std::ofstream os(path);
    os << "ldp-checkpoint v1\npending notanip udp 0 0 0 0 -\nend\n";
  }
  EXPECT_FALSE(load_checkpoint(path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointT, TraceFingerprintSeparatesTraces) {
  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 10 * kMilli;
  spec.duration_ns = 200 * kMilli;
  spec.client_count = 4;
  auto a = synth::make_fixed_trace(spec);
  EXPECT_EQ(trace_fingerprint(a), trace_fingerprint(a));
  spec.client_count = 5;
  auto b = synth::make_fixed_trace(spec);
  EXPECT_NE(trace_fingerprint(a), trace_fingerprint(b));
}

// --- supervision: stall detection and recovery ------------------------------

// A querier wedged mid-replay (querier_stall fault injection) must not hang
// the run: the supervisor reaps it, its sources move to the sibling, and
// every query still reaches a terminal outcome.
TEST(SelfHealingT, StalledQuerierIsRecoveredWithNothingLost) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok()) << bg.error().message;

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 5 * kMilli;
  spec.duration_ns = 2 * kSecond;  // 400 queries
  spec.client_count = 10;
  auto trace = synth::make_fixed_trace(spec);

  EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 2;
  cfg.supervise = true;
  cfg.heartbeat_timeout = 300 * kMilli;
  cfg.supervision_interval = 50 * kMilli;
  cfg.drain_grace = kSecond;
  fault::FaultSpec fs;
  fs.stall_querier = 0;
  fs.stall_after = 50 * kMilli;
  cfg.fault = fs;

  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_EQ(report->querier_failures, 1u);
  EXPECT_GE(report->sources_reassigned, 1u);
  // Conservation: every trace record was either sent or shed-with-
  // accounting, and nothing is left dangling without a verdict.
  EXPECT_EQ(report->queries_sent + report->shed_queries, trace.size());
  for (const auto& sr : report->sends)
    EXPECT_NE(sr.outcome, QueryOutcome::Pending);
  // The healthy majority of the replay still got answered.
  EXPECT_GT(report->responses_received, trace.size() / 2);
}

// Supervision off: the same stall spec is inert (nothing would recover the
// thread, so the engine must not arm the trap).
TEST(SelfHealingT, StallInjectionIsDisabledWithoutSupervision) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok()) << bg.error().message;

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 2 * kMilli;
  spec.duration_ns = 100 * kMilli;
  spec.client_count = 4;
  auto trace = synth::make_fixed_trace(spec);

  EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.supervise = false;
  fault::FaultSpec fs;
  fs.stall_querier = 0;
  cfg.fault = fs;

  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report->querier_failures, 0u);
  EXPECT_EQ(report->queries_sent, trace.size());
}

// --- overload shedding ------------------------------------------------------

// A consumer that never drains (stalled at t=0) saturates its tiny queue;
// DropOldest must keep the pipeline moving and account every shed record.
// By the time supervision recovers the wedged querier the flood is long
// over, so what reaches the books is the shedding ledger.
TEST(SelfHealingT, DropOldestShedsInsteadOfStalling) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok()) << bg.error().message;

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = kMilli;
  spec.duration_ns = 400 * kMilli;  // 400 queries
  spec.client_count = 1;            // single source -> single sticky querier
  auto trace = synth::make_fixed_trace(spec);

  EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 2;
  cfg.timed = false;  // flood the queue as fast as possible
  cfg.queue_capacity = 8;
  cfg.overload = OverloadPolicy::DropOldest;
  cfg.shed_grace = kMilli;
  cfg.supervise = true;
  cfg.heartbeat_timeout = kSecond;  // recovery lands well after the flood
  cfg.supervision_interval = 50 * kMilli;
  cfg.drain_grace = 200 * kMilli;
  fault::FaultSpec fs;
  fs.stall_querier = 0;  // the sticky target wedges immediately
  cfg.fault = fs;

  QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_GT(report->shed_queries, 0u);
  EXPECT_EQ(report->queries_sent + report->shed_queries, trace.size());
  // The tiny queue really did hit its ceiling.
  EXPECT_EQ(report->queue_hwm, 8u);
}

// --- deterministic checkpoint/resume ----------------------------------------

// The acceptance experiment, in-process: replay a trace with impairments
// end-to-end (run A); then replay only its first half with a checkpoint
// file, and resume the full trace from that checkpoint (run B1 + B2). The
// resumed books must equal the uninterrupted ones exactly: queries sent,
// impairment counters, lifecycle counters.
//
// Timing is serialized per source (each query resolves — answered, or
// dropped+retried+expired — before the next one is due), so the per-source
// fault-stream draw order is identical in every run.
TEST(SelfHealingT, ResumedReplayMatchesUninterruptedRun) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok()) << bg.error().message;

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 120 * kMilli;
  spec.duration_ns = 2400 * kMilli;  // 20 queries
  spec.client_count = 1;
  auto full = synth::make_fixed_trace(spec);
  ASSERT_EQ(full.size(), 20u);
  std::vector<TraceRecord> prefix(full.begin(), full.begin() + 10);

  EngineConfig base;
  base.server = (*bg)->endpoint();
  base.distributors = 1;
  base.queriers_per_distributor = 2;
  base.timed = true;
  base.query_timeout = 50 * kMilli;   // resolve well inside the 120ms gap
  base.max_retries = 1;
  base.retry_backoff_cap = 50 * kMilli;
  base.drain_grace = 300 * kMilli;
  fault::FaultSpec fs;
  fs.drop = 0.3;
  fs.seed = 42;
  base.fault = fs;

  // Run A: never interrupted.
  EngineReport uninterrupted;
  {
    QueryEngine engine(base);
    auto r = engine.replay(full);
    ASSERT_TRUE(r.ok()) << r.error().message;
    uninterrupted = std::move(*r);
  }
  ASSERT_EQ(uninterrupted.queries_sent, full.size());
  ASSERT_GT(uninterrupted.impairments.dropped, 0u);  // the fault really bites

  // Run B1: first half only, checkpointing; the final quiescent snapshot
  // is what resume continues from (cut exactly at the inter-burst gap).
  std::string ckpt = temp_path("ldp_ckpt_resume_");
  {
    EngineConfig cfg = base;
    cfg.checkpoint_path = ckpt;
    cfg.checkpoint_interval = 100 * kMilli;
    QueryEngine engine(cfg);
    auto r = engine.replay(prefix);
    ASSERT_TRUE(r.ok()) << r.error().message;
  }
  // Resume validates the trace identity: the checkpoint was cut against
  // the prefix, so resuming the full trace needs the prefix's fingerprint
  // rewritten — which is exactly what a kill mid-way through `full` would
  // have produced. Patch the hash the way the real flow (same trace file
  // on both runs) gets it for free.
  auto cut = load_checkpoint(ckpt);
  ASSERT_TRUE(cut.ok()) << cut.error().message;
  ASSERT_EQ(cut->partial.queries_sent, prefix.size());
  cut->trace_hash = trace_fingerprint(full);

  // Run B2: resume the full trace from the cut.
  EngineReport resumed;
  {
    EngineConfig cfg = base;
    cfg.resume = &*cut;
    QueryEngine engine(cfg);
    auto r = engine.replay(full);
    ASSERT_TRUE(r.ok()) << r.error().message;
    resumed = std::move(*r);
  }

  // Exact equality of the books, as the ISSUE acceptance demands.
  EXPECT_EQ(resumed.queries_sent, uninterrupted.queries_sent);
  EXPECT_TRUE(resumed.impairments == uninterrupted.impairments)
      << "resumed: " << resumed.impairments.summary()
      << "\nuninterrupted: " << uninterrupted.impairments.summary();
  EXPECT_EQ(resumed.lifecycle.timeouts, uninterrupted.lifecycle.timeouts);
  EXPECT_EQ(resumed.lifecycle.retries, uninterrupted.lifecycle.retries);
  EXPECT_EQ(resumed.lifecycle.expired, uninterrupted.lifecycle.expired);
  EXPECT_EQ(resumed.lifecycle.answered_after_retry,
            uninterrupted.lifecycle.answered_after_retry);
  EXPECT_EQ(resumed.responses_received, uninterrupted.responses_received);
  EXPECT_EQ(resumed.latency_hist.count(), uninterrupted.latency_hist.count());
  std::remove(ckpt.c_str());
}

// Resume against the wrong trace must refuse, not silently replay garbage.
TEST(SelfHealingT, ResumeRejectsAForeignTrace) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok()) << bg.error().message;

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 10 * kMilli;
  spec.duration_ns = 100 * kMilli;
  spec.client_count = 2;
  auto trace = synth::make_fixed_trace(spec);

  CheckpointState cut;
  cut.trace_hash = 0x1234;  // not this trace
  EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.resume = &cut;
  QueryEngine engine(cfg);
  auto r = engine.replay(trace);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("different trace"), std::string::npos);
}

}  // namespace
}  // namespace ldp::replay
