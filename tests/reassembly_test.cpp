// Tests for TCP stream reassembly in the capture readers: messages spanning
// segments, multiple messages per segment, split length prefixes,
// interleaved flows, retransmissions, gaps, and SYN/FIN/RST lifecycle.
#include <gtest/gtest.h>

#include "trace/packet.hpp"
#include "trace/pcap.hpp"

namespace ldp::trace {
namespace {

using dns::Message;
using dns::Name;
using dns::RRType;

const Endpoint kClient{IpAddr{Ip4{10, 0, 0, 1}}, 40000};
const Endpoint kServer{IpAddr{Ip4{10, 0, 0, 2}}, 53};

std::vector<uint8_t> framed(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(payload.size() >> 8));
  out.push_back(static_cast<uint8_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> sample_payload(uint16_t id) {
  return Message::make_query(id, *Name::parse("r.example.com"), RRType::A).to_wire();
}

TcpSegment seg(uint32_t seq, std::vector<uint8_t> bytes, TimeNs t = 0) {
  TcpSegment s;
  s.src = kClient;
  s.dst = kServer;
  s.seq = seq;
  s.payload = std::move(bytes);
  s.timestamp = t;
  return s;
}

TEST(Reassembly, MessageSpanningThreeSegments) {
  TcpReassembler r;
  auto wire = framed(sample_payload(1));
  size_t third = wire.size() / 3;

  auto out1 = r.feed(seg(1, {wire.begin(), wire.begin() + third}));
  EXPECT_TRUE(out1.empty());
  auto out2 = r.feed(seg(1 + static_cast<uint32_t>(third),
                         {wire.begin() + third, wire.begin() + 2 * third}));
  EXPECT_TRUE(out2.empty());
  auto out3 = r.feed(seg(1 + static_cast<uint32_t>(2 * third),
                         {wire.begin() + 2 * third, wire.end()}, 7 * kMilli));
  ASSERT_EQ(out3.size(), 1u);
  EXPECT_EQ(out3[0].dns_payload, sample_payload(1));
  EXPECT_EQ(out3[0].timestamp, 7 * kMilli);  // stamped by the completer
  EXPECT_EQ(out3[0].transport, Transport::Tcp);
}

TEST(Reassembly, TwoMessagesInOneSegment) {
  TcpReassembler r;
  auto both = framed(sample_payload(1));
  auto second = framed(sample_payload(2));
  both.insert(both.end(), second.begin(), second.end());
  auto out = r.feed(seg(1, both));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].dns_payload, sample_payload(1));
  EXPECT_EQ(out[1].dns_payload, sample_payload(2));
}

TEST(Reassembly, LengthPrefixSplitAcrossSegments) {
  TcpReassembler r;
  auto wire = framed(sample_payload(3));
  // First segment carries exactly one byte: half the length prefix.
  auto out1 = r.feed(seg(1, {wire[0]}));
  EXPECT_TRUE(out1.empty());
  auto out2 = r.feed(seg(2, {wire.begin() + 1, wire.end()}));
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0].dns_payload, sample_payload(3));
}

TEST(Reassembly, InterleavedFlowsStayIndependent) {
  TcpReassembler r;
  Endpoint other_client{IpAddr{Ip4{10, 0, 0, 9}}, 41000};
  auto wire_a = framed(sample_payload(10));
  auto wire_b = framed(sample_payload(20));

  auto a1 = seg(1, {wire_a.begin(), wire_a.begin() + 5});
  TcpSegment b1 = seg(1, {wire_b.begin(), wire_b.begin() + 7});
  b1.src = other_client;
  auto a2 = seg(6, {wire_a.begin() + 5, wire_a.end()});
  TcpSegment b2 = seg(8, {wire_b.begin() + 7, wire_b.end()});
  b2.src = other_client;

  EXPECT_TRUE(r.feed(a1).empty());
  EXPECT_TRUE(r.feed(b1).empty());
  EXPECT_EQ(r.active_flows(), 2u);
  auto out_a = r.feed(a2);
  ASSERT_EQ(out_a.size(), 1u);
  EXPECT_EQ(out_a[0].dns_payload, sample_payload(10));
  auto out_b = r.feed(b2);
  ASSERT_EQ(out_b.size(), 1u);
  EXPECT_EQ(out_b[0].dns_payload, sample_payload(20));
  EXPECT_EQ(out_b[0].src, other_client);
}

TEST(Reassembly, PureRetransmissionIgnored) {
  TcpReassembler r;
  auto wire = framed(sample_payload(4));
  auto out1 = r.feed(seg(1, wire));
  ASSERT_EQ(out1.size(), 1u);
  auto out2 = r.feed(seg(1, wire));  // exact retransmit
  EXPECT_TRUE(out2.empty());
  EXPECT_EQ(r.dropped_segments(), 0u);  // retransmits are not "drops"
}

TEST(Reassembly, PartialOverlapKeepsTail) {
  TcpReassembler r;
  auto wire = framed(sample_payload(5));
  size_t half = wire.size() / 2;
  EXPECT_TRUE(r.feed(seg(1, {wire.begin(), wire.begin() + half})).empty());
  // Retransmit from the start but carrying the whole message.
  auto out = r.feed(seg(1, wire));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dns_payload, sample_payload(5));
}

TEST(Reassembly, GapDropsSegment) {
  TcpReassembler r;
  auto wire = framed(sample_payload(6));
  EXPECT_TRUE(r.feed(seg(1, {wire.begin(), wire.begin() + 4})).empty());
  // Jump past missing bytes.
  auto out = r.feed(seg(100, {wire.begin() + 4, wire.end()}));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(r.dropped_segments(), 1u);
}

TEST(Reassembly, SynResetsFlowAndConsumesSequence) {
  TcpReassembler r;
  TcpSegment syn = seg(1000, {});
  syn.syn = true;
  EXPECT_TRUE(r.feed(syn).empty());
  // First data at ISN+1.
  auto out = r.feed(seg(1001, framed(sample_payload(7))));
  ASSERT_EQ(out.size(), 1u);
}

TEST(Reassembly, FinAndRstCloseFlows) {
  TcpReassembler r;
  auto wire = framed(sample_payload(8));
  TcpSegment data = seg(1, wire);
  data.fin = true;
  auto out = r.feed(data);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(r.active_flows(), 0u);

  TcpSegment rst = seg(1, {});
  rst.rst = true;
  EXPECT_TRUE(r.feed(rst).empty());
  EXPECT_EQ(r.active_flows(), 0u);
}

TEST(Reassembly, PcapReaderHandlesMultipleTcpMessagesPerFlow) {
  // End-to-end through the pcap writer/reader: 10 TCP messages on one flow
  // must all survive (the writer allocates cumulative sequence numbers).
  PcapWriter w;
  for (uint16_t i = 0; i < 10; ++i) {
    TraceRecord rec;
    rec.timestamp = i * kMilli;
    rec.src = kClient;
    rec.dst = kServer;
    rec.transport = Transport::Tcp;
    rec.direction = Direction::Query;
    rec.dns_payload = sample_payload(i);
    w.add(rec);
  }
  auto reader = PcapReader::from_bytes(std::move(w).take());
  ASSERT_TRUE(reader.ok());
  auto all = reader->read_all();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 10u);
  for (uint16_t i = 0; i < 10; ++i) EXPECT_EQ((*all)[i].dns_payload, sample_payload(i));
}

}  // namespace
}  // namespace ldp::trace
