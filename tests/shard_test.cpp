// Sharding regression suite (`ctest -L shard` / check_shard): the
// ShardedMetaServer add_zone rollback fix, SO_REUSEPORT group binding,
// multi-shard ShardedServer serving with merge-after-join books, and the
// sharded querier pool — including the N=1 vs N=4 equivalence runs that
// pin the tentpole claim: partitioning changes wall-clock parallelism,
// never counters. Also the suite the tsan-shard preset runs under
// ThreadSanitizer, so every cross-thread handoff in the shard layer gets
// exercised under the race detector.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "dns/message.hpp"
#include "replay/checkpoint.hpp"
#include "replay/engine.hpp"
#include "server/background.hpp"
#include "server/shard.hpp"
#include "server/sharded_frontend.hpp"
#include "synth/generator.hpp"
#include "zone/parser.hpp"

namespace ldp {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;
using trace::TraceRecord;

zone::Zone parsed_zone(const std::string& origin) {
  auto z = zone::parse_zone(
      "$ORIGIN " + origin + "\n$TTL 3600\n"
      "@ IN SOA ns1 admin 1 7200 900 1209600 300\n"
      "@ IN NS ns1\nns1 IN A 192.0.2.1\nwww IN A 192.0.2.80\n");
  EXPECT_TRUE(z.ok()) << (z.ok() ? "" : z.error().message);
  return std::move(*z);
}

Message query_for(const std::string& qname, uint16_t id = 1) {
  return Message::make_query(id, *Name::parse(qname), RRType::A);
}

IpAddr addr_of(uint8_t last) { return IpAddr{Ip4{192, 0, 2, last}}; }

server::AuthServer wildcard_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

// --- satellite 1: add_zone atomicity --------------------------------------

// The headline bugfix: a failed add_zone must leave no trace. Before the
// fix, routes and match-clients entries for the new addresses were
// installed before the fallible zones.add, so a duplicate-origin conflict
// left a stale route (route() hit, answer() REFUSED — state corruption the
// next add then built on).
TEST(ShardedMetaRollback, FailedAddLeavesNoStaleState) {
  server::ShardedMetaServer meta(2);
  ASSERT_TRUE(meta.add_zone(parsed_zone("example.com."), {addr_of(1)}).ok());
  auto loads_before = meta.zones_per_shard();

  // Same origin on the same nameserver identity, bringing one new address:
  // the identity's view already hosts example.com. -> must fail whole.
  auto conflict = meta.add_zone(parsed_zone("example.com."),
                                {addr_of(1), addr_of(2)});
  ASSERT_FALSE(conflict.ok());

  // No stale route for the new address, no load-count drift...
  EXPECT_FALSE(meta.route(addr_of(2)).has_value());
  EXPECT_EQ(meta.zones_per_shard(), loads_before);
  // ...the original zone still answers via its route, and the would-be new
  // address behaves like any unrouted client.
  EXPECT_EQ(meta.answer(query_for("www.example.com"), addr_of(1)).header.rcode,
            Rcode::NoError);
  EXPECT_EQ(meta.answer(query_for("www.example.com"), addr_of(2)).header.rcode,
            Rcode::Refused);
}

// A failed add with an entirely fresh identity must also remove the view it
// created for the attempt (visible indirectly: the same identity can be
// added again and lands cleanly).
TEST(ShardedMetaRollback, FreshViewRemovedOnFailure) {
  server::ShardedMetaServer meta(1);
  ASSERT_TRUE(meta.add_zone(parsed_zone("example.com."), {addr_of(1)}).ok());
  // Joining the identity with a duplicate origin fails...
  ASSERT_FALSE(meta.add_zone(parsed_zone("example.com."), {addr_of(1)}).ok());
  // ...and the books are clean enough that a real second zone still joins
  // the identity and answers.
  ASSERT_TRUE(meta.add_zone(parsed_zone("shop.example."), {addr_of(1)}).ok());
  EXPECT_EQ(meta.answer(query_for("www.shop.example"), addr_of(1)).header.rcode,
            Rcode::NoError);
}

// The view-reuse half of the fix: a second zone of the same nameserver
// identity joins the existing view, so first-match-wins selection reaches
// it (a fresh view with identical match-clients would be shadowed forever).
TEST(ShardedMetaRollback, SecondZoneOfIdentityStaysReachable) {
  server::ShardedMetaServer meta(3);
  auto s1 = meta.add_zone(parsed_zone("example.com."), {addr_of(1)});
  ASSERT_TRUE(s1.ok());
  auto s2 = meta.add_zone(parsed_zone("example.net."), {addr_of(1)});
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);  // one identity, one shard
  EXPECT_EQ(meta.answer(query_for("www.example.com"), addr_of(1)).header.rcode,
            Rcode::NoError);
  EXPECT_EQ(meta.answer(query_for("www.example.net"), addr_of(1)).header.rcode,
            Rcode::NoError);
}

// Addresses bridging two distinct views on one shard would need a view
// merge; add_zone refuses with no mutation instead.
TEST(ShardedMetaRollback, ViewStraddleRejectedAtomically) {
  server::ShardedMetaServer meta(1);
  ASSERT_TRUE(meta.add_zone(parsed_zone("example.com."), {addr_of(1)}).ok());
  ASSERT_TRUE(meta.add_zone(parsed_zone("example.net."), {addr_of(2)}).ok());
  auto loads_before = meta.zones_per_shard();

  auto bridged = meta.add_zone(parsed_zone("example.org."),
                               {addr_of(1), addr_of(2), addr_of(3)});
  ASSERT_FALSE(bridged.ok());
  EXPECT_NE(bridged.error().message.find("straddle views"), std::string::npos);
  EXPECT_FALSE(meta.route(addr_of(3)).has_value());
  EXPECT_EQ(meta.zones_per_shard(), loads_before);
  EXPECT_EQ(meta.answer(query_for("www.example.com"), addr_of(1)).header.rcode,
            Rcode::NoError);
  EXPECT_EQ(meta.answer(query_for("www.example.net"), addr_of(2)).header.rcode,
            Rcode::NoError);
}

// --- SO_REUSEPORT group binding -------------------------------------------

TEST(ReusePort, UdpGroupSharesPortAndOutsidersAreRejected) {
  Endpoint any{IpAddr{Ip4{127, 0, 0, 1}}, 0};
  auto first = net::UdpSocket::bind(any, /*reuse_port=*/true);
  ASSERT_TRUE(first.ok()) << first.error().message;
  auto bound = first->local_endpoint();
  ASSERT_TRUE(bound.ok());
  Endpoint port = *bound;

  auto member = net::UdpSocket::bind(port, /*reuse_port=*/true);
  EXPECT_TRUE(member.ok()) << (member.ok() ? "" : member.error().message);
  // A socket with no reuse options at all is an ordinary conflict. (Our own
  // bind() can't show this — it always sets SO_REUSEADDR, which Linux lets
  // duplicate-bind UDP ports with — so go to the raw syscall.)
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sin.sin_port = htons(port.port);
  EXPECT_NE(::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)), 0);
  ::close(fd);
}

TEST(ReusePort, TcpGroupSharesPortAndOutsidersAreRejected) {
  Endpoint any{IpAddr{Ip4{127, 0, 0, 1}}, 0};
  auto first = net::TcpListener::listen(any, 16, /*reuse_port=*/true);
  ASSERT_TRUE(first.ok()) << first.error().message;
  auto bound = first->local_endpoint();
  ASSERT_TRUE(bound.ok());
  Endpoint port = *bound;

  auto member = net::TcpListener::listen(port, 16, /*reuse_port=*/true);
  EXPECT_TRUE(member.ok()) << (member.ok() ? "" : member.error().message);
  EXPECT_FALSE(net::TcpListener::listen(port, 16).ok());
}

// --- ShardedServer serving + merge-after-join -----------------------------

// Four shards, sharded querier pool to match: every query answered, the
// auth stats see the full workload, and the merged exit report carries one
// consistent book per shard plus a consistent merged book.
TEST(ShardedServing, FourShardRoundTripMergesConsistentBooks) {
  auto srv = server::ShardedServer::start(wildcard_server(), {}, 4);
  ASSERT_TRUE(srv.ok()) << srv.error().message;
  EXPECT_EQ((*srv)->shard_count(), 4u);

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = kMilli / 4;
  spec.duration_ns = 300 * spec.interarrival_ns;
  spec.client_count = 8;
  auto trace = synth::make_fixed_trace(spec);

  replay::EngineConfig cfg;
  cfg.server = (*srv)->endpoint();
  cfg.timed = false;
  cfg.shards = 4;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 0;
  cfg.drain_grace = 3 * kSecond;
  auto report = replay::QueryEngine(cfg).replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report->queries_sent, trace.size());
  EXPECT_EQ(report->responses_received, trace.size());

  const server::ShardedExitReport& exit_report = (*srv)->stop();
  EXPECT_EQ((*srv)->auth().stats().queries.load(), trace.size());
  ASSERT_EQ(exit_report.per_shard.size(), 4u);
  uint64_t shard_io_datagrams = 0;
  for (const auto& shard : exit_report.per_shard) {
    EXPECT_TRUE(shard.connections.consistent()) << shard.connections.summary();
    shard_io_datagrams += shard.io.datagrams_received;
  }
  EXPECT_TRUE(exit_report.connections.consistent());
  // Per-thread syscall tallies sum to the merged tally, and every query
  // datagram the engine sent was received on some shard's own loop thread.
  EXPECT_EQ(exit_report.io.datagrams_received, shard_io_datagrams);
  EXPECT_EQ(shard_io_datagrams, trace.size());
}

// --- the tentpole equivalence: N=1 vs N=4 under seeded slowloris ----------

struct SlowlorisOutcome {
  uint64_t queries_sent = 0;
  uint64_t responses = 0;
  uint64_t expired = 0;
  uint64_t server_answered = 0;
  uint64_t accepted = 0;
  uint64_t deadline_closed = 0;
  uint64_t closed_total = 0;
  uint64_t established = 0;
  bool merged_consistent = false;
  bool shards_consistent = false;
  bool operator==(const SlowlorisOutcome&) const = default;
};

// Mixed healthy/hostile workload whose composition is a pure function of
// the seed: sources the seed marks "slow" replay over TCP with the
// engine's slowloris drip (slow_client:1 — the per-connection draw is
// keyed by per-querier open order, which is partition-DEpendent, so the
// seeded choice lives in the trace where it is partition-independent);
// the rest are healthy UDP. The hardened server's read deadline reaps
// every dribbler, answering everyone else.
SlowlorisOutcome run_slowloris(size_t shards, size_t* slow_out) {
  constexpr size_t kSources = 9;
  constexpr size_t kQueriesPerSource = 4;
  fault::FaultSpec mix;
  mix.seed = 42;
  mix.slow_client = 0.4;

  std::vector<TraceRecord> trace;
  size_t slow = 0;
  auto payload = query_for("www.example.com").to_wire();
  for (size_t q = 0; q < kQueriesPerSource; ++q) {
    for (size_t s = 0; s < kSources; ++s) {
      bool is_slow = mix.is_slow_client(s);
      if (q == 0 && is_slow) ++slow;
      TraceRecord rec;
      rec.timestamp = static_cast<TimeNs>(q * kSources + s) * (kMilli / 4);
      rec.src = Endpoint{IpAddr{Ip4{10, 0, 0, static_cast<uint8_t>(1 + s)}}, 40000};
      rec.dst = Endpoint{IpAddr{}, 53};
      rec.transport = is_slow ? Transport::Tcp : Transport::Udp;
      rec.direction = trace::Direction::Query;
      rec.dns_payload = payload;
      trace.push_back(std::move(rec));
    }
  }
  if (slow_out != nullptr) *slow_out = slow;

  server::FrontendConfig fe;
  fe.limits.read_deadline = 150 * kMilli;
  fe.sweep_interval = 25 * kMilli;
  auto srv = server::ShardedServer::start(wildcard_server(), fe, shards);
  EXPECT_TRUE(srv.ok());

  replay::EngineConfig cfg;
  cfg.server = (*srv)->endpoint();
  cfg.timed = false;
  cfg.shards = shards;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 0;       // retransmits would perturb the books
  cfg.tcp_reconnect = false; // a second slow connection proves nothing new
  cfg.query_timeout = 600 * kMilli;  // slow queries age out after the reap
  cfg.drain_grace = 2 * kSecond;
  cfg.fault = fault::FaultSpec{};
  cfg.fault->seed = 42;
  cfg.fault->slow_client = 1;  // every TCP source in this trace dribbles
  cfg.fault->slow_drip = 25 * kMilli;
  auto report = replay::QueryEngine(cfg).replay(trace);
  EXPECT_TRUE(report.ok());

  SlowlorisOutcome out;
  out.queries_sent = report->queries_sent;
  out.responses = report->responses_received;
  out.expired = report->lifecycle.expired;

  const server::ShardedExitReport& exit_report = (*srv)->stop();
  out.server_answered = (*srv)->auth().stats().queries.load();
  out.accepted = exit_report.connections.accepted;
  out.deadline_closed = exit_report.connections.deadline_closed;
  out.closed_total = exit_report.connections.closed_total();
  out.established = exit_report.connections.established;
  out.merged_consistent = exit_report.connections.consistent();
  out.shards_consistent = true;
  for (const auto& shard : exit_report.per_shard)
    out.shards_consistent &= shard.connections.consistent();
  return out;
}

TEST(ShardedServing, SlowlorisBooksIdenticalAtOneAndFourShards) {
  size_t slow1 = 0, slow4 = 0;
  SlowlorisOutcome one = run_slowloris(1, &slow1);
  SlowlorisOutcome four = run_slowloris(4, &slow4);
  ASSERT_EQ(slow1, slow4);
  ASSERT_GT(slow1, 0u);          // the seed must actually pick dribblers
  ASSERT_LT(slow1, 9u);          // ...and leave healthy sources

  // Absolute expectations first, so a failure names the broken half.
  const uint64_t healthy_queries = (9 - slow1) * 4;
  for (const SlowlorisOutcome* o : {&one, &four}) {
    EXPECT_EQ(o->queries_sent, 36u);
    EXPECT_EQ(o->responses, healthy_queries);      // every UDP query answered
    EXPECT_EQ(o->expired, slow1 * 4);              // every dripped query lost
    EXPECT_EQ(o->server_answered, healthy_queries);
    EXPECT_EQ(o->accepted, slow1);                 // one TCP conn per dribbler
    EXPECT_EQ(o->deadline_closed, slow1);          // all reaped by the deadline
    EXPECT_EQ(o->closed_total, slow1);
    EXPECT_EQ(o->established, 0u);
    EXPECT_TRUE(o->merged_consistent);
    EXPECT_TRUE(o->shards_consistent);
  }
  // The tentpole claim: partitioning is invisible in the books.
  EXPECT_EQ(one, four);
}

// --- sharded querier pool determinism -------------------------------------

// Fault draws are keyed by (seed, source) streams, so fixed-seed impairment
// counters must be byte-identical however sources are partitioned.
TEST(ShardedReplay, FixedSeedImpairmentsIdenticalAcrossShardCounts) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = kMilli / 4;
  spec.duration_ns = 240 * spec.interarrival_ns;
  spec.client_count = 8;
  auto trace = synth::make_fixed_trace(spec);

  auto run = [&](size_t shards) {
    replay::EngineConfig cfg;
    cfg.server = (*bg)->endpoint();
    cfg.timed = false;
    cfg.shards = shards;
    cfg.distributors = 1;
    cfg.queriers_per_distributor = 1;
    cfg.max_retries = 0;  // retransmits would consume extra fault draws
    cfg.drain_grace = 2 * kSecond;
    cfg.fault = *fault::parse_fault_spec("dup:0.05,seed:42");
    auto report = replay::QueryEngine(cfg).replay(trace);
    EXPECT_TRUE(report.ok());
    return std::move(*report);
  };

  auto one = run(1);
  auto four = run(4);
  EXPECT_EQ(one.queries_sent, trace.size());
  EXPECT_EQ(four.queries_sent, trace.size());
  EXPECT_EQ(one.impairments, four.impairments);
  EXPECT_GT(one.impairments.duplicated, 0u);
  EXPECT_EQ(one.responses_received, trace.size());
  EXPECT_EQ(four.responses_received, trace.size());
}

// Live mutation happens once, on the controller thread, before the
// partition — stateful user closures never see concurrent calls, and the
// mutated stream is what gets partitioned.
TEST(ShardedReplay, LiveMutatorAppliedOnceBeforePartition) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = kMilli / 4;
  spec.duration_ns = 120 * spec.interarrival_ns;
  spec.client_count = 6;
  auto trace = synth::make_fixed_trace(spec);

  mutate::MutatorPipeline pipeline;
  pipeline.prefix_qnames("shardcheck");
  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.timed = false;
  cfg.shards = 3;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 0;
  cfg.drain_grace = 2 * kSecond;
  cfg.live_mutator = &pipeline;
  auto report = replay::QueryEngine(cfg).replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report->queries_sent, trace.size());
  EXPECT_EQ(report->responses_received, trace.size());  // wildcard matches prefix
  EXPECT_EQ(report->mutator_dropped, 0u);
}

// Sharded checkpointing now writes per-shard files (<path>.shardN), so a
// file checkpoint path is fine. What stays an explicit error: feeding a
// single whole-trace resume state to a sharded run (it takes resume_shards)
// and the in-memory checkpoint_sink (a per-shard sink would interleave
// unrelated slices). dist_test.cpp covers the working per-shard round trip.
TEST(ShardedReplay, ShardedCheckpointingInvalidCombinationsStayErrors) {
  std::vector<TraceRecord> trace;
  TraceRecord rec;
  rec.timestamp = 0;
  rec.src = Endpoint{IpAddr{Ip4{10, 0, 0, 1}}, 40000};
  rec.dst = Endpoint{IpAddr{}, 53};
  rec.transport = Transport::Udp;
  rec.direction = trace::Direction::Query;
  rec.dns_payload = query_for("www.example.com").to_wire();
  trace.push_back(rec);

  replay::EngineConfig cfg;
  cfg.server = Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 1};
  cfg.shards = 2;

  replay::CheckpointState single;
  single.trace_hash = 1;
  cfg.resume = &single;
  auto report = replay::QueryEngine(cfg).replay(trace);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("resume_shards"), std::string::npos);
  cfg.resume = nullptr;

  cfg.checkpoint_sink = [](const replay::CheckpointState&) {};
  report = replay::QueryEngine(cfg).replay(trace);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("checkpoint_sink"), std::string::npos);
}

}  // namespace
}  // namespace ldp
