// UDP hot-path regression suite (`ctest -L hotpath` / check_hotpath):
// sendmmsg/recvmmsg batching (chunking, partial-batch prefixes, would-block
// handling), the addressing and TCP-framing fixes that rode along, seeded
// impairment-draw equivalence between the scalar and batched send paths,
// scalar-vs-batched replay-engine equivalence under a fixed-seed fault
// scenario, the response template cache (byte-identical patched replies,
// DO-bit keying, revision invalidation, LRU bounds), and the in-place name
// decoder against its hostile-input contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "dns/message.hpp"
#include "dns/name.hpp"
#include "fault/fault.hpp"
#include "net/event_loop.hpp"
#include "net/impaired.hpp"
#include "net/socket.hpp"
#include "replay/engine.hpp"
#include "server/auth_server.hpp"
#include "server/background.hpp"
#include "server/frontend.hpp"
#include "server/response_cache.hpp"
#include "synth/generator.hpp"
#include "util/bytes.hpp"
#include "zone/parser.hpp"

namespace ldp {
namespace {

using dns::Message;
using dns::Name;
using dns::RRType;

const Endpoint kLoopback{IpAddr{Ip4{127, 0, 0, 1}}, 0};

Endpoint v6_endpoint() {
  std::array<uint8_t, 16> bytes{};
  bytes[15] = 1;  // ::1
  return Endpoint{IpAddr{Ip6{bytes}}, 5353};
}

std::vector<uint8_t> make_payload(size_t i, size_t len = 24) {
  std::vector<uint8_t> p(len);
  for (size_t j = 0; j < len; ++j)
    p[j] = static_cast<uint8_t>((i * 131 + j * 7) & 0xff);
  return p;
}

// Drain everything currently deliverable on `sock` (retrying for up to
// `budget` after the last arrival) and return the payloads.
std::vector<std::vector<uint8_t>> drain_udp(net::UdpSocket& sock,
                                            TimeNs budget = 300 * kMilli) {
  std::vector<std::vector<uint8_t>> got;
  TimeNs last = mono_now_ns();
  while (mono_now_ns() - last < budget) {
    auto batch = sock.recv_batch();
    EXPECT_TRUE(batch.ok()) << (batch.ok() ? "" : batch.error().message);
    if (!batch.ok()) return got;
    if (batch->empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    for (const auto& view : *batch)
      got.emplace_back(view.payload.begin(), view.payload.end());
    last = mono_now_ns();
  }
  return got;
}

TEST(UdpBatchT, RoundTripAcrossChunkBoundaries) {
  auto tx = net::UdpSocket::bind(kLoopback);
  auto rx = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(tx.ok() && rx.ok());
  Endpoint dst = *rx->local_endpoint();

  // 40 datagrams > 2 * kBatchSize: exercises internal sendmmsg chunking.
  std::vector<std::vector<uint8_t>> payloads;
  std::vector<net::UdpSocket::OutDatagram> dgs;
  for (size_t i = 0; i < 40; ++i) {
    payloads.push_back(make_payload(i, 20 + i));
    dgs.push_back({dst, payloads.back()});
  }
  auto sent = tx->send_batch(dgs);
  ASSERT_TRUE(sent.ok()) << sent.error().message;
  EXPECT_EQ(*sent, dgs.size());

  auto got = drain_udp(*rx);
  ASSERT_EQ(got.size(), payloads.size());
  std::sort(got.begin(), got.end());
  std::sort(payloads.begin(), payloads.end());
  EXPECT_EQ(got, payloads);
}

TEST(UdpBatchT, EmptyRecvBatchMeansWouldBlock) {
  auto rx = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(rx.ok());
  auto batch = rx->recv_batch();
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST(UdpBatchT, HardErrorShortensPrefixThenSurfacesOnRetry) {
  auto tx = net::UdpSocket::bind(kLoopback);
  auto rx = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(tx.ok() && rx.ok());
  Endpoint dst = *rx->local_endpoint();

  std::vector<uint8_t> small = make_payload(1);
  std::vector<uint8_t> oversized(70000, 0xab);  // > max UDP payload: EMSGSIZE
  std::vector<uint8_t> tail = make_payload(2);
  std::vector<net::UdpSocket::OutDatagram> dgs{
      {dst, small}, {dst, oversized}, {dst, tail}};

  // Same contract as a false send_to: the clean prefix is reported, the
  // caller owns the tail.
  auto first = tx->send_batch(dgs);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);

  // Retrying the tail puts the failing datagram first: zero progress, so
  // the hard error surfaces.
  auto retry = tx->send_batch(std::span(dgs).subspan(1));
  EXPECT_FALSE(retry.ok());

  // The path recovers: the datagram after the bad one still goes out.
  auto last = tx->send_batch(std::span(dgs).subspan(2));
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, 1u);
  EXPECT_EQ(drain_udp(*rx).size(), 2u);
}

TEST(UdpBatchT, MidBatchAddressingErrorYieldsCleanPrefix) {
  auto tx = net::UdpSocket::bind(kLoopback);
  auto rx = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(tx.ok() && rx.ok());
  Endpoint dst = *rx->local_endpoint();

  std::vector<uint8_t> a = make_payload(1);
  std::vector<uint8_t> b = make_payload(2);
  std::vector<net::UdpSocket::OutDatagram> dgs{
      {dst, a}, {v6_endpoint(), b}, {dst, b}};
  auto first = tx->send_batch(dgs);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  auto retry = tx->send_batch(std::span(dgs).subspan(1));
  EXPECT_FALSE(retry.ok());
}

TEST(AddressingT, NonV4EndpointsAreErrorsNotZeroAddress) {
  Endpoint v6 = v6_endpoint();
  EXPECT_FALSE(net::SockAddr::from_endpoint(v6).ok());
  EXPECT_FALSE(net::UdpSocket::bind(v6).ok());
  EXPECT_FALSE(net::TcpStream::connect(v6).ok());

  auto sock = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(sock.ok());
  std::vector<uint8_t> payload = make_payload(0);
  EXPECT_FALSE(sock->send_to(v6, payload).ok());
  std::vector<net::UdpSocket::OutDatagram> dgs{{v6, payload}};
  EXPECT_FALSE(sock->send_batch(dgs).ok());
}

TEST(FramingT, OversizedTcpMessageRejectedNotTruncated) {
  auto listener = net::TcpListener::listen(kLoopback);
  ASSERT_TRUE(listener.ok());
  auto stream = net::TcpStream::connect(*listener->local_endpoint());
  ASSERT_TRUE(stream.ok());

  // 65535 octets is the largest frame the 2-byte prefix can describe.
  std::vector<uint8_t> max_frame(65535, 0x5a);
  EXPECT_TRUE(stream->send_message(max_frame).ok());

  // One octet more used to silently truncate the length prefix and
  // desynchronize the stream; now it is an error before any byte moves.
  size_t pending_before = stream->pending_bytes();
  std::vector<uint8_t> too_big(65536, 0x5a);
  auto sent = stream->send_message(too_big);
  EXPECT_FALSE(sent.ok());
  EXPECT_EQ(stream->pending_bytes(), pending_before);
}

TEST(IoCountersT, BatchedPathAmortizesSyscalls) {
  auto tx = net::UdpSocket::bind(kLoopback);
  auto rx = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(tx.ok() && rx.ok());
  Endpoint dst = *rx->local_endpoint();

  std::vector<std::vector<uint8_t>> payloads;
  std::vector<net::UdpSocket::OutDatagram> dgs;
  for (size_t i = 0; i < 16; ++i) {
    payloads.push_back(make_payload(i));
    dgs.push_back({dst, payloads.back()});
  }
  net::IoCounters before = net::io_counters();
  auto sent = tx->send_batch(dgs);
  ASSERT_TRUE(sent.ok());
  ASSERT_EQ(*sent, dgs.size());
  net::IoCounters after = net::io_counters();
  EXPECT_EQ(after.sendmmsg_calls - before.sendmmsg_calls, 1u);
  EXPECT_EQ(after.datagrams_sent - before.datagrams_sent, 16u);
  EXPECT_EQ(drain_udp(*rx).size(), 16u);
}

// ---------------------------------------------------------------------------
// Seeded impairment-draw equivalence: the batched path must consume the
// per-packet draw schedule in input order, exactly as the scalar path does,
// so fixed-seed counters are identical however sends are batched.
// ---------------------------------------------------------------------------

fault::FaultSpec lossy_spec() {
  fault::FaultSpec spec;
  spec.drop = 0.3;
  spec.dup = 0.2;
  spec.corrupt = 0.2;
  spec.seed = 42;
  return spec;
}

TEST(ImpairedBatchT, FixedSeedDrawScheduleMatchesScalar) {
  constexpr size_t kPackets = 64;
  fault::FaultSpec spec = lossy_spec();

  // Scalar reference: one send_to per datagram.
  auto rx1 = net::UdpSocket::bind(kLoopback);
  auto tx1 = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(rx1.ok() && tx1.ok());
  fault::FaultStream scalar_stream(spec, "equiv");
  net::ImpairedUdpSocket scalar(std::move(*tx1), &scalar_stream);
  Endpoint dst1 = *rx1->local_endpoint();
  for (size_t i = 0; i < kPackets; ++i) {
    auto sent = scalar.send_to(dst1, make_payload(i));
    ASSERT_TRUE(sent.ok());
    EXPECT_TRUE(*sent);
  }

  // Batched: same datagrams in uneven chunks (7 at a time) so draws cross
  // both caller-batch and internal sendmmsg boundaries.
  auto rx2 = net::UdpSocket::bind(kLoopback);
  auto tx2 = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(rx2.ok() && tx2.ok());
  fault::FaultStream batched_stream(spec, "equiv");
  net::ImpairedUdpSocket batched(std::move(*tx2), &batched_stream);
  Endpoint dst2 = *rx2->local_endpoint();
  std::vector<std::vector<uint8_t>> payloads;
  for (size_t i = 0; i < kPackets; ++i) payloads.push_back(make_payload(i));
  std::vector<uint8_t> wire;
  for (size_t base = 0; base < kPackets; base += 7) {
    std::vector<net::UdpSocket::OutDatagram> dgs;
    for (size_t i = base; i < std::min(base + 7, kPackets); ++i)
      dgs.push_back({dst2, payloads[i]});
    ASSERT_TRUE(batched.send_batch(dgs, wire).ok());
    ASSERT_EQ(wire.size(), dgs.size());
    for (uint8_t w : wire) EXPECT_EQ(w, 1u);
  }

  EXPECT_EQ(scalar_stream.counters(), batched_stream.counters());

  // Same verdicts in the same order ⇒ the delivered byte streams agree
  // too (corruption draws included).
  auto got1 = drain_udp(*rx1);
  auto got2 = drain_udp(*rx2);
  std::sort(got1.begin(), got1.end());
  std::sort(got2.begin(), got2.end());
  EXPECT_EQ(got1, got2);
  uint64_t expected = kPackets - scalar_stream.counters().lost() +
                      scalar_stream.counters().duplicated;
  EXPECT_EQ(got1.size(), expected);
}

// ---------------------------------------------------------------------------
// Replay-engine equivalence: a fixed-seed impaired replay must report the
// same impairment counters and send accounting whether the querier sends
// scalar or batched.
// ---------------------------------------------------------------------------

server::AuthServer wildcard_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

replay::EngineReport run_replay(bool batched_io,
                                const std::optional<fault::FaultSpec>& fault) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  EXPECT_TRUE(bg.ok());

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = kMilli;
  spec.duration_ns = 200 * kMilli;  // 200 queries
  spec.client_count = 8;
  auto trace = synth::make_fixed_trace(spec);

  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.timed = false;
  cfg.batched_io = batched_io;
  cfg.fault = fault;
  cfg.query_timeout = 100 * kMilli;
  cfg.retry_backoff_cap = 200 * kMilli;
  cfg.max_retries = 1;
  cfg.drain_grace = 500 * kMilli;
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report->queries_sent, trace.size());
  return std::move(*report);
}

TEST(EngineEquivT, BatchedCleanRunAnswersEverything) {
  auto report = run_replay(/*batched_io=*/true, std::nullopt);
  EXPECT_EQ(report.responses_received, report.queries_sent);
  EXPECT_EQ(report.send_errors, 0u);
  EXPECT_EQ(report.lifecycle.expired, 0u);
}

TEST(EngineEquivT, ScalarKnobStillWorks) {
  auto report = run_replay(/*batched_io=*/false, std::nullopt);
  EXPECT_EQ(report.responses_received, report.queries_sent);
  EXPECT_EQ(report.send_errors, 0u);
}

TEST(EngineEquivT, FixedSeedFaultCountersMatchScalarPath) {
  fault::FaultSpec spec;
  spec.drop = 0.25;
  spec.dup = 0.1;
  spec.corrupt = 0.1;
  spec.seed = 7;

  auto scalar = run_replay(/*batched_io=*/false, spec);
  auto batched = run_replay(/*batched_io=*/true, spec);

  // The acceptance bar: per-source draw schedules are identical, so the
  // merged impairment counters agree exactly.
  EXPECT_EQ(scalar.impairments, batched.impairments);
  EXPECT_EQ(scalar.queries_sent, batched.queries_sent);
  EXPECT_EQ(scalar.sends.size(), batched.sends.size());
  EXPECT_EQ(scalar.responses_received, batched.responses_received);
  EXPECT_EQ(scalar.lifecycle.retries, batched.lifecycle.retries);
  EXPECT_EQ(scalar.lifecycle.expired, batched.lifecycle.expired);
  EXPECT_GT(batched.impairments.dropped, 0u);  // the scenario actually bit
}

// ---------------------------------------------------------------------------
// Response template cache.
// ---------------------------------------------------------------------------

const IpAddr kClient{Ip4{127, 0, 0, 1}};

server::AuthServer example_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1 admin 1 7200 900 1209600 300
    IN NS ns1
ns1 IN A  192.0.2.1
www IN A  192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

std::vector<uint8_t> query_wire(uint16_t id, const char* qname,
                                RRType qtype = RRType::A, bool rd = true) {
  auto name = Name::parse(qname);
  EXPECT_TRUE(name.ok());
  return Message::make_query(id, *name, qtype, rd).to_wire();
}

TEST(ResponseCacheT, HitPatchesOnlyIdAndRdBit) {
  server::AuthServer auth = example_server();
  server::ResponseCache cache(16);
  std::vector<uint8_t> reply;
  bool nx = false;

  std::vector<uint8_t> q1 = query_wire(0x1234, "www.example.com");
  ASSERT_EQ(cache.probe(q1, 512, reply, nx),
            server::ResponseCache::Outcome::Miss);
  auto slow1 = auth.answer_wire(q1, kClient, 512);
  ASSERT_TRUE(slow1.has_value());
  cache.insert(*slow1);
  EXPECT_EQ(cache.stats().insertions, 1u);

  // Same question, different ID and RD: the patched template must be
  // byte-identical to what the slow path would have produced.
  std::vector<uint8_t> q2 = query_wire(0xbeef, "www.example.com", RRType::A,
                                       /*rd=*/false);
  ASSERT_EQ(cache.probe(q2, 512, reply, nx),
            server::ResponseCache::Outcome::Hit);
  auto slow2 = auth.answer_wire(q2, kClient, 512);
  ASSERT_TRUE(slow2.has_value());
  EXPECT_EQ(reply, *slow2);
  EXPECT_FALSE(nx);
}

TEST(ResponseCacheT, QnameCaseFoldsIntoOneKey) {
  server::AuthServer auth = example_server();
  server::ResponseCache cache(16);
  std::vector<uint8_t> reply;
  bool nx = false;

  std::vector<uint8_t> lower = query_wire(1, "www.example.com");
  ASSERT_EQ(cache.probe(lower, 512, reply, nx),
            server::ResponseCache::Outcome::Miss);
  cache.insert(*auth.answer_wire(lower, kClient, 512));

  // Uppercase the qname bytes in place (labels start at offset 12).
  std::vector<uint8_t> upper = query_wire(2, "www.example.com");
  for (size_t i = 12; i < upper.size(); ++i)
    if (upper[i] >= 'a' && upper[i] <= 'z')
      upper[i] = static_cast<uint8_t>(upper[i] - 'a' + 'A');
  ASSERT_EQ(cache.probe(upper, 512, reply, nx),
            server::ResponseCache::Outcome::Hit);
  // make_response echoes the *parsed* (lowercased) question, so the
  // patched template matches the slow path for the uppercase query too.
  EXPECT_EQ(reply, *auth.answer_wire(upper, kClient, 512));
}

TEST(ResponseCacheT, DoBitAndEdnsPresenceSeparateKeys) {
  server::AuthServer auth = example_server();
  server::ResponseCache cache(16);
  std::vector<uint8_t> reply;
  bool nx = false;

  auto name = Name::parse("www.example.com");
  ASSERT_TRUE(name.ok());
  Message plain = Message::make_query(1, *name, RRType::A);
  Message edns = plain;
  edns.edns = dns::Edns{};
  Message edns_do = plain;
  edns_do.edns = dns::Edns{};
  edns_do.edns->dnssec_ok = true;

  for (const Message* q : {&plain, &edns, &edns_do}) {
    std::vector<uint8_t> wire = q->to_wire();
    ASSERT_EQ(cache.probe(wire, 512, reply, nx),
              server::ResponseCache::Outcome::Miss)
        << "EDNS/DO variants must not collide";
    cache.insert(*auth.answer_wire(wire, kClient, 512));
  }
  EXPECT_EQ(cache.size(), 3u);
  // And each one now hits its own entry, matching its own slow path.
  for (const Message* q : {&plain, &edns, &edns_do}) {
    Message probe_q = *q;
    probe_q.header.id = 0x7777;
    std::vector<uint8_t> wire = probe_q.to_wire();
    ASSERT_EQ(cache.probe(wire, 512, reply, nx),
              server::ResponseCache::Outcome::Hit);
    EXPECT_EQ(reply, *auth.answer_wire(wire, kClient, 512));
  }
}

TEST(ResponseCacheT, NxdomainFlagSurvivesTheTemplate) {
  server::AuthServer auth = example_server();
  server::ResponseCache cache(16);
  std::vector<uint8_t> reply;
  bool nx = false;

  std::vector<uint8_t> q = query_wire(9, "missing.example.com");
  ASSERT_EQ(cache.probe(q, 512, reply, nx),
            server::ResponseCache::Outcome::Miss);
  cache.insert(*auth.answer_wire(q, kClient, 512));
  std::vector<uint8_t> q2 = query_wire(10, "missing.example.com");
  ASSERT_EQ(cache.probe(q2, 512, reply, nx),
            server::ResponseCache::Outcome::Hit);
  EXPECT_TRUE(nx);
}

TEST(ResponseCacheT, RevisionChangeDropsEverything) {
  server::AuthServer auth = example_server();
  server::ResponseCache cache(16);
  std::vector<uint8_t> reply;
  bool nx = false;

  cache.sync_revision(auth.revision());
  std::vector<uint8_t> q = query_wire(1, "www.example.com");
  ASSERT_EQ(cache.probe(q, 512, reply, nx),
            server::ResponseCache::Outcome::Miss);
  cache.insert(*auth.answer_wire(q, kClient, 512));
  ASSERT_EQ(cache.size(), 1u);

  // Zone data moved: stale templates must not survive.
  auto z = zone::parse_zone(R"(
$ORIGIN other.test.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.9
)");
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(auth.default_zones().add(std::move(*z)).ok());
  cache.sync_revision(auth.revision());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.probe(q, 512, reply, nx),
            server::ResponseCache::Outcome::Miss);
}

TEST(ResponseCacheT, UncacheableShapesBypass) {
  server::ResponseCache cache(16);
  std::vector<uint8_t> reply;
  bool nx = false;

  // Header only, qdcount == 0.
  std::vector<uint8_t> empty(12, 0);
  EXPECT_EQ(cache.probe(empty, 512, reply, nx),
            server::ResponseCache::Outcome::Bypass);

  // A response (QR set) is not a query.
  std::vector<uint8_t> resp = query_wire(1, "www.example.com");
  resp[2] |= 0x80;
  EXPECT_EQ(cache.probe(resp, 512, reply, nx),
            server::ResponseCache::Outcome::Bypass);

  // EDNS options (cookies etc.) vary per client: never cached.
  auto name = Name::parse("www.example.com");
  ASSERT_TRUE(name.ok());
  Message q = Message::make_query(1, *name, RRType::A);
  q.edns = dns::Edns{};
  q.edns->options = {0x00, 0x0a, 0x00, 0x02, 0xaa, 0xbb};  // COOKIE-ish
  EXPECT_EQ(cache.probe(q.to_wire(), 512, reply, nx),
            server::ResponseCache::Outcome::Bypass);

  // Disabled cache bypasses everything.
  server::ResponseCache off(0);
  std::vector<uint8_t> plain = query_wire(1, "www.example.com");
  EXPECT_EQ(off.probe(plain, 512, reply, nx),
            server::ResponseCache::Outcome::Bypass);
}

TEST(ResponseCacheT, InsertRejectsHeaderOnlySalvageReplies) {
  server::ResponseCache cache(16);
  std::vector<uint8_t> reply;
  bool nx = false;
  std::vector<uint8_t> q = query_wire(1, "www.example.com");
  ASSERT_EQ(cache.probe(q, 512, reply, nx),
            server::ResponseCache::Outcome::Miss);
  // A header-only FORMERR salvage does not echo the question; the per-hit
  // patch could not reproduce it, so it must not enter the cache.
  std::vector<uint8_t> formerr(12, 0);
  formerr[2] = 0x80;  // QR
  formerr[3] = 0x01;  // FORMERR
  cache.insert(formerr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResponseCacheT, LruBoundsTheStore) {
  server::AuthServer auth = example_server();
  server::ResponseCache cache(2);
  std::vector<uint8_t> reply;
  bool nx = false;

  const char* names[] = {"a.example.com", "b.example.com", "c.example.com"};
  for (const char* n : names) {
    std::vector<uint8_t> q = query_wire(1, n);
    ASSERT_EQ(cache.probe(q, 512, reply, nx),
              server::ResponseCache::Outcome::Miss);
    cache.insert(*auth.answer_wire(q, kClient, 512));
  }
  EXPECT_EQ(cache.size(), 2u);
  // The oldest entry was evicted; the newest survives.
  std::vector<uint8_t> qa = query_wire(2, "a.example.com");
  EXPECT_EQ(cache.probe(qa, 512, reply, nx),
            server::ResponseCache::Outcome::Miss);
  std::vector<uint8_t> qc = query_wire(2, "c.example.com");
  EXPECT_EQ(cache.probe(qc, 512, reply, nx),
            server::ResponseCache::Outcome::Hit);
}

// ---------------------------------------------------------------------------
// Frontend integration: the batched UDP reply path serves cached templates
// byte-identically and keeps the cache stats / server stats honest.
// ---------------------------------------------------------------------------

struct Harness {
  server::AuthServer auth = example_server();
  net::EventLoop loop;
  std::unique_ptr<server::ServerFrontend> fe;

  explicit Harness(server::FrontendConfig cfg = {}) {
    auto started = server::ServerFrontend::start(loop, auth, cfg);
    EXPECT_TRUE(started.ok()) << (started.ok() ? "" : started.error().message);
    fe = std::move(*started);
  }

  template <typename F>
  bool pump_until(F cond, TimeNs budget = 3 * kSecond) {
    TimeNs start = mono_now_ns();
    while (!cond()) {
      loop.poll_once(2 * kMilli);
      if (mono_now_ns() - start > budget) return false;
    }
    return true;
  }
};

std::optional<std::vector<uint8_t>> udp_ask(Harness& h, net::UdpSocket& sock,
                                            std::span<const uint8_t> query) {
  // UDP is lossy even on loopback under buffer pressure: resend every
  // ~300ms within the budget rather than flaking on one eaten datagram.
  auto sent = sock.send_to(h.fe->endpoint(), query);
  EXPECT_TRUE(sent.ok() && *sent);
  std::optional<std::vector<uint8_t>> reply;
  TimeNs last_send = mono_now_ns();
  h.pump_until([&] {
    if (mono_now_ns() - last_send > 300 * kMilli) {
      (void)sock.send_to(h.fe->endpoint(), query);
      last_send = mono_now_ns();
    }
    auto dg = sock.recv();
    if (!dg.ok() || !dg->has_value()) return false;
    reply.emplace(std::move((**dg).payload));
    return true;
  });
  return reply;
}

TEST(FrontendCacheT, CachedRepliesAreByteIdenticalModuloId) {
  Harness h;
  ASSERT_NE(h.fe->response_cache(), nullptr);
  auto client = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(client.ok());

  std::vector<uint8_t> q1 = query_wire(0x1111, "www.example.com");
  std::vector<uint8_t> q2 = query_wire(0x2222, "www.example.com");
  auto r1 = udp_ask(h, *client, q1);
  auto r2 = udp_ask(h, *client, q2);
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  EXPECT_GE(h.fe->response_cache()->stats().hits, 1u);

  // Patch the first reply's ID to the second query's: bytes must agree.
  std::vector<uint8_t> expected = *r1;
  ASSERT_GE(expected.size(), 2u);
  expected[0] = 0x22;
  expected[1] = 0x22;
  EXPECT_EQ(*r2, expected);
  // The cached reply was counted like a served query (>= because the
  // helper may resend under loopback buffer pressure).
  EXPECT_GE(h.auth.stats().queries.load(), 2u);
  EXPECT_EQ(h.auth.stats().queries.load(), h.auth.stats().responses.load());
}

TEST(FrontendCacheT, ZoneChangeInvalidatesLiveCache) {
  Harness h;
  auto client = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(client.ok());

  auto r1 = udp_ask(h, *client, query_wire(1, "www.example.com"));
  auto r2 = udp_ask(h, *client, query_wire(2, "www.example.com"));
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  ASSERT_GE(h.fe->response_cache()->stats().hits, 1u);

  auto z = zone::parse_zone(R"(
$ORIGIN added.test.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.7
)");
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(h.auth.default_zones().add(std::move(*z)).ok());

  auto r3 = udp_ask(h, *client, query_wire(3, "www.example.com"));
  ASSERT_TRUE(r3.has_value());
  EXPECT_GE(h.fe->response_cache()->stats().invalidations, 1u);
}

TEST(FrontendCacheT, RotateAnswersServersBypassTheCache) {
  server::FrontendConfig cfg;
  Harness h(cfg);
  h.auth.config().rotate_answers = true;
  auto client = net::UdpSocket::bind(kLoopback);
  ASSERT_TRUE(client.ok());
  auto r1 = udp_ask(h, *client, query_wire(1, "www.example.com"));
  auto r2 = udp_ask(h, *client, query_wire(2, "www.example.com"));
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  EXPECT_EQ(h.fe->response_cache()->stats().hits, 0u);
}

// ---------------------------------------------------------------------------
// In-place name decoding.
// ---------------------------------------------------------------------------

TEST(NameDecodeT, MatchesFromWireAcrossCompressionPointers) {
  // Offset 0: "EXAMPLE.com" (uppercase exercises the lowercasing sink);
  // offset 13: "www" + pointer back to 0.
  std::vector<uint8_t> buf;
  buf.push_back(7);
  for (char c : std::string("EXAMPLE")) buf.push_back(static_cast<uint8_t>(c));
  buf.push_back(3);
  for (char c : std::string("com")) buf.push_back(static_cast<uint8_t>(c));
  buf.push_back(0);
  size_t second = buf.size();
  buf.push_back(3);
  for (char c : std::string("www")) buf.push_back(static_cast<uint8_t>(c));
  buf.push_back(0xc0);
  buf.push_back(0x00);

  ByteReader rd1(buf);
  ASSERT_TRUE(rd1.seek(second).ok());
  std::string wire;
  ASSERT_TRUE(dns::decode_name_wire(rd1, wire).ok());

  ByteReader rd2(buf);
  ASSERT_TRUE(rd2.seek(second).ok());
  auto name = Name::from_wire(rd2);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->to_string(), "www.example.com.");
  ByteWriter w;
  name->to_wire(w);
  std::vector<uint8_t> via_name = std::move(w).take();
  EXPECT_EQ(std::vector<uint8_t>(wire.begin(), wire.end()), via_name);
  // Both readers end at the same position (after the pointer).
  EXPECT_EQ(rd1.pos(), rd2.pos());
}

TEST(NameDecodeT, RejectsHostileInputLikeFromWire) {
  // Forward pointer (only strictly-backward targets are legal).
  std::vector<uint8_t> forward{0xc0, 0x02, 0x00};
  // Truncated: label length runs past the buffer.
  std::vector<uint8_t> truncated{0x05, 'a', 'b'};
  for (const auto& buf : {forward, truncated}) {
    ByteReader rd1(buf);
    std::string out;
    EXPECT_FALSE(dns::decode_name_wire(rd1, out).ok());
    EXPECT_TRUE(out.empty());  // failed decode leaves no partial bytes
    ByteReader rd2(buf);
    EXPECT_FALSE(Name::from_wire(rd2).ok());
  }
}

TEST(NameDecodeT, AppendsAfterExistingBytesAndRestoresOnError) {
  std::vector<uint8_t> good;
  good.push_back(1);
  good.push_back('x');
  good.push_back(0);
  ByteReader rd(good);
  std::string out = "prefix";
  ASSERT_TRUE(dns::decode_name_wire(rd, out).ok());
  EXPECT_EQ(out.substr(0, 6), "prefix");
  EXPECT_EQ(out.substr(6), std::string("\x01x\x00", 3));

  std::vector<uint8_t> bad{0x05, 'a'};
  ByteReader rd2(bad);
  std::string out2 = "keep";
  EXPECT_FALSE(dns::decode_name_wire(rd2, out2).ok());
  EXPECT_EQ(out2, "keep");
}

}  // namespace
}  // namespace ldp
