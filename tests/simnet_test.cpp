// Tests for the discrete-event simulator and the trace-replay simulation:
// event ordering, connection lifecycle (reuse / idle close / TIME_WAIT),
// protocol latency (1-RTT UDP, 2-RTT fresh TCP, 4-RTT fresh TLS), the
// memory model, and CPU accounting — the machinery behind Figures 11/13-15.
#include <gtest/gtest.h>

#include "mutate/mutator.hpp"
#include "simnet/replay_sim.hpp"
#include "synth/generator.hpp"
#include "zone/parser.hpp"

namespace ldp::simnet {
namespace {

using trace::TraceRecord;

TEST(SimulatorT, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorT, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule_at(7, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorT, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_after(5, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 45);
}

TEST(SimulatorT, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(ModelT, SetupRtts) {
  EXPECT_EQ(setup_rtts(Transport::Udp), 0);
  EXPECT_EQ(setup_rtts(Transport::Tcp), 1);
  EXPECT_EQ(setup_rtts(Transport::Tls), 3);
}

TEST(ModelT, MemoryTotals) {
  MemoryModel m;
  // UDP-only: just the base.
  EXPECT_EQ(m.total(0, 0, 0), m.base_bytes);
  // 60k TCP established at the paper's operating point lands near 15 GB.
  double gb = static_cast<double>(m.total(60000, 0, 120000)) / (1ull << 30);
  EXPECT_NEAR(gb, 15.0, 1.5);
  // TLS adds ~3 GB for the same connection count.
  double gb_tls = static_cast<double>(m.total(0, 60000, 120000)) / (1ull << 30);
  EXPECT_NEAR(gb_tls - gb, 3.0, 0.5);
}

// --- replay simulation -----------------------------------------------------

server::AuthServer wildcard_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

TraceRecord query_at(TimeNs t, IpAddr client, Transport transport, int seq) {
  dns::Message q = dns::Message::make_query(
      static_cast<uint16_t>(seq),
      *dns::Name::parse("q" + std::to_string(seq) + ".example.com"), dns::RRType::A);
  return trace::make_query_record(t, Endpoint{client, 50000},
                                  Endpoint{IpAddr{Ip4{192, 0, 2, 1}}, 53}, q,
                                  transport);
}

const IpAddr kClientA{Ip4{10, 0, 0, 1}};
const IpAddr kClientB{Ip4{10, 0, 0, 2}};

TEST(ReplaySim, UdpLatencyIsOneRttPlusService) {
  auto server = wildcard_server();
  SimReplayConfig cfg;
  cfg.rtt = 40 * kMilli;
  auto result = simulate_replay({query_at(0, kClientA, Transport::Udp, 0)}, server, cfg);
  ASSERT_EQ(result.queries, 1u);
  ASSERT_EQ(result.latency_all_ms.count(), 1u);
  EXPECT_NEAR(result.latency_all_ms.samples()[0], 40.05, 0.1);
  EXPECT_EQ(result.connections_opened, 0u);
}

TEST(ReplaySim, FreshTcpCostsTwoRtts) {
  auto server = wildcard_server();
  SimReplayConfig cfg;
  cfg.rtt = 40 * kMilli;
  auto result = simulate_replay({query_at(0, kClientA, Transport::Tcp, 0)}, server, cfg);
  EXPECT_NEAR(result.latency_all_ms.samples()[0], 80.05, 0.1);
  EXPECT_EQ(result.connections_opened, 1u);
}

TEST(ReplaySim, FreshTlsCostsFourRtts) {
  auto server = wildcard_server();
  SimReplayConfig cfg;
  cfg.rtt = 40 * kMilli;
  auto result = simulate_replay({query_at(0, kClientA, Transport::Tls, 0)}, server, cfg);
  EXPECT_NEAR(result.latency_all_ms.samples()[0], 160.05, 0.1);
}

TEST(ReplaySim, ConnectionReuseDropsToOneRtt) {
  auto server = wildcard_server();
  SimReplayConfig cfg;
  cfg.rtt = 40 * kMilli;
  cfg.idle_timeout = 20 * kSecond;
  std::vector<TraceRecord> trace = {
      query_at(0, kClientA, Transport::Tcp, 0),
      query_at(5 * kSecond, kClientA, Transport::Tcp, 1),  // within timeout
  };
  auto result = simulate_replay(trace, server, cfg);
  ASSERT_EQ(result.latency_all_ms.count(), 2u);
  EXPECT_NEAR(result.latency_all_ms.samples()[0], 80.05, 0.1);
  EXPECT_NEAR(result.latency_all_ms.samples()[1], 40.05, 0.1);  // reused
  EXPECT_EQ(result.connections_opened, 1u);
  EXPECT_EQ(result.handshakes_reused, 1u);
}

TEST(ReplaySim, IdleTimeoutForcesNewHandshake) {
  auto server = wildcard_server();
  SimReplayConfig cfg;
  cfg.rtt = 40 * kMilli;
  cfg.idle_timeout = 10 * kSecond;
  std::vector<TraceRecord> trace = {
      query_at(0, kClientA, Transport::Tcp, 0),
      query_at(30 * kSecond, kClientA, Transport::Tcp, 1),  // idle > timeout
  };
  auto result = simulate_replay(trace, server, cfg);
  EXPECT_EQ(result.connections_opened, 2u);
  // Both connections idle out eventually (the second once the trace ends).
  EXPECT_EQ(result.connections_closed_idle, 2u);
  EXPECT_NEAR(result.latency_all_ms.samples()[1], 80.05, 0.1);  // fresh again
}

TEST(ReplaySim, EstablishedAndTimeWaitCounts) {
  auto server = wildcard_server();
  SimReplayConfig cfg;
  cfg.rtt = kMilli;
  cfg.idle_timeout = 10 * kSecond;
  cfg.sample_interval = 5 * kSecond;
  // Two clients connect at t=0 and go quiet; one returns at t=30s.
  std::vector<TraceRecord> trace = {
      query_at(0, kClientA, Transport::Tcp, 0),
      query_at(0, kClientB, Transport::Tcp, 1),
      query_at(30 * kSecond, kClientA, Transport::Tcp, 2),
      query_at(120 * kSecond, kClientB, Transport::Udp, 3),  // keeps sim alive
  };
  auto result = simulate_replay(trace, server, cfg);
  ASSERT_GE(result.samples.size(), 20u);
  // t=5s: both connections established.
  EXPECT_EQ(result.samples[0].established, 2u);
  EXPECT_EQ(result.samples[0].time_wait, 0u);
  // t=15s: both idle-closed, in TIME_WAIT (60s).
  EXPECT_EQ(result.samples[2].established, 0u);
  EXPECT_EQ(result.samples[2].time_wait, 2u);
  // t=35s: client A reconnected; both old conns still in TIME_WAIT.
  EXPECT_EQ(result.samples[6].established, 1u);
  EXPECT_EQ(result.samples[6].time_wait, 2u);
  // t=90s: all TIME_WAIT entries expired; A's second conn closed at 40s.
  EXPECT_EQ(result.samples[17].established, 0u);
  EXPECT_LE(result.samples[17].time_wait, 1u);
}

TEST(ReplaySim, MemoryGrowsWithTimeout) {
  auto server = wildcard_server();
  synth::RootTraceSpec spec;
  spec.mean_rate_qps = 500;
  spec.duration_ns = 120 * kSecond;
  spec.client_count = 2000;
  spec.seed = 5;
  auto base_trace = synth::make_root_trace(spec);
  mutate::MutatorPipeline all_tcp;
  all_tcp.force_transport(Transport::Tcp);
  auto trace = all_tcp.apply_all(base_trace);

  SimReplayConfig short_to, long_to;
  short_to.idle_timeout = 5 * kSecond;
  short_to.sample_interval = 10 * kSecond;
  long_to.idle_timeout = 40 * kSecond;
  long_to.sample_interval = 10 * kSecond;

  auto short_result = simulate_replay(trace, server, short_to);
  auto long_result = simulate_replay(trace, server, long_to);
  double short_mem = short_result.steady_memory_gb(3).median;
  double long_mem = long_result.steady_memory_gb(3).median;
  EXPECT_GT(long_mem, short_mem);  // Figure 13a's monotone timeout effect
  // Longer timeouts keep more connections alive.
  EXPECT_GT(long_result.samples.back().established,
            short_result.samples.back().established);
}

TEST(ReplaySim, CpuInversionUdpAboveTcp) {
  // Figure 11's surprise: the 97%-UDP original trace costs MORE cpu than
  // all-TCP on the paper's hardware. The model encodes it; verify it holds
  // end-to-end through the simulation.
  auto server = wildcard_server();
  synth::RootTraceSpec spec;
  spec.mean_rate_qps = 1000;
  spec.duration_ns = 120 * kSecond;
  spec.client_count = 1000;
  spec.seed = 6;
  auto original = synth::make_root_trace(spec);  // 3% TCP

  mutate::MutatorPipeline to_tcp, to_tls;
  to_tcp.force_transport(Transport::Tcp);
  to_tls.force_transport(Transport::Tls);
  auto all_tcp = to_tcp.apply_all(original);
  auto all_tls = to_tls.apply_all(original);

  SimReplayConfig cfg;
  cfg.idle_timeout = 20 * kSecond;
  cfg.sample_interval = 10 * kSecond;
  double cpu_orig = simulate_replay(original, server, cfg).steady_cpu_percent(2).median;
  double cpu_tcp = simulate_replay(all_tcp, server, cfg).steady_cpu_percent(2).median;
  double cpu_tls = simulate_replay(all_tls, server, cfg).steady_cpu_percent(2).median;

  EXPECT_GT(cpu_orig, cpu_tcp);  // the inversion
  EXPECT_GT(cpu_tls, cpu_tcp);   // TLS above TCP
}

TEST(ReplaySim, NonBusyClientsSeeMoreHandshakes) {
  // Figure 15b: clients below the busy threshold reuse connections less, so
  // their median TCP latency sits near 2 RTT while busy clients stay at 1.
  auto server = wildcard_server();
  SimReplayConfig cfg;
  cfg.rtt = 40 * kMilli;
  cfg.idle_timeout = 10 * kSecond;
  cfg.busy_threshold = 50;

  std::vector<TraceRecord> trace;
  int seq = 0;
  // Busy client: a query every second for 200 s (always reusing).
  for (int i = 0; i < 200; ++i)
    trace.push_back(query_at(i * kSecond, kClientA, Transport::Tcp, seq++));
  // Non-busy client: a query every 30 s (always re-handshaking).
  for (int i = 0; i < 6; ++i)
    trace.push_back(query_at(i * 30 * kSecond, kClientB, Transport::Tcp, seq++));
  std::sort(trace.begin(), trace.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.timestamp < b.timestamp;
            });

  auto result = simulate_replay(trace, server, cfg);
  double all_median = result.latency_all_ms.summary().median;
  double nonbusy_median = result.latency_nonbusy_ms.summary().median;
  EXPECT_NEAR(all_median, 40.05, 1.0);      // dominated by the busy client
  EXPECT_NEAR(nonbusy_median, 80.05, 1.0);  // 2 RTT: fresh connections
}

TEST(ReplaySim, ResponsesAccountedThroughRealServer) {
  auto server = wildcard_server();
  SimReplayConfig cfg;
  cfg.sample_interval = kSecond;
  std::vector<TraceRecord> trace;
  for (int i = 0; i < 100; ++i)
    trace.push_back(query_at(i * 10 * kMilli, kClientA, Transport::Udp, i));
  auto result = simulate_replay(trace, server, cfg);
  EXPECT_EQ(result.queries, 100u);
  EXPECT_EQ(result.responses, 100u);
  uint64_t bytes = 0;
  for (const auto& s : result.samples) bytes += s.response_bytes;
  EXPECT_GT(bytes, 100u * 40);  // every response has at least header+question
  EXPECT_EQ(server.stats().queries.load(), 100u);
}

}  // namespace
}  // namespace ldp::simnet
