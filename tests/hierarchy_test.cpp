// Integration test of the paper's core contribution (§2.4): a single
// meta-DNS-server with split-horizon views behind address-rewriting proxies
// emulates multiple independent levels of the DNS hierarchy, returning the
// same answers independent servers would — while a naive single server
// (all zones, no views) provably does not.
#include <gtest/gtest.h>

#include "proxy/proxy.hpp"
#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "zone/parser.hpp"
#include "zonecut/constructor.hpp"

namespace ldp {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;
using proxy::Datagram;
using proxy::ServerProxy;
using server::AuthServer;

Name mk(std::string_view s) { return *Name::parse(s); }

const IpAddr kRootAddr{Ip4{198, 41, 0, 4}};
const IpAddr kComAddr{Ip4{192, 5, 6, 30}};
const IpAddr kGoogleAddr{Ip4{216, 239, 32, 10}};
const IpAddr kRecursiveAddr{Ip4{10, 1, 1, 2}};
const IpAddr kMetaAddr{Ip4{10, 1, 1, 3}};

const char* kRootZone = R"(
$ORIGIN .
$TTL 86400
. IN SOA a.root-servers.net. nstld.example. 1 1800 900 604800 86400
. IN NS a.root-servers.net.
a.root-servers.net. IN A 198.41.0.4
com. IN NS a.gtld-servers.net.
a.gtld-servers.net. IN A 192.5.6.30
)";
const char* kComZone = R"(
$ORIGIN com.
$TTL 172800
@ IN SOA a.gtld-servers.net. nstld.example. 1 1800 900 604800 86400
@ IN NS a.gtld-servers.net.
google.com. IN NS ns1.google.com.
ns1.google.com. IN A 216.239.32.10
)";
const char* kGoogleZone = R"(
$ORIGIN google.com.
$TTL 300
@ IN SOA ns1 dns-admin 1 900 900 1800 60
@ IN NS ns1
ns1 IN A 216.239.32.10
www IN A 172.217.14.4
mail IN CNAME www
)";

zone::Zone parse(const char* text) {
  auto z = zone::parse_zone(text);
  EXPECT_TRUE(z.ok()) << (z.ok() ? "" : z.error().message);
  return std::move(*z);
}

/// Meta-DNS-server: ONE AuthServer, one view per emulated nameserver, keyed
/// by that nameserver's public address (which the recursive proxy writes
/// into the query source field).
AuthServer make_meta_server() {
  AuthServer meta;
  zone::View& root_view = meta.views().add_view("a.root-servers.net");
  root_view.match_clients.insert(kRootAddr);
  EXPECT_TRUE(root_view.zones.add(parse(kRootZone)).ok());

  zone::View& com_view = meta.views().add_view("a.gtld-servers.net");
  com_view.match_clients.insert(kComAddr);
  EXPECT_TRUE(com_view.zones.add(parse(kComZone)).ok());

  zone::View& google_view = meta.views().add_view("ns1.google.com");
  google_view.match_clients.insert(kGoogleAddr);
  EXPECT_TRUE(google_view.zones.add(parse(kGoogleZone)).ok());
  return meta;
}

/// Upstream that pushes every query through recursive proxy -> meta server
/// -> authoritative proxy, exactly the Figure 2 data path.
resolver::RecursiveResolver::Upstream emulated_upstream(AuthServer& meta,
                                                        uint64_t* hops = nullptr) {
  return [&meta, hops](const Endpoint& server, const Message& q) -> Result<Message> {
    if (hops != nullptr) ++*hops;
    ServerProxy rec_proxy(ServerProxy::Role::Recursive, kMetaAddr);
    ServerProxy aut_proxy(ServerProxy::Role::Authoritative, kRecursiveAddr);

    Datagram query_pkt;
    query_pkt.src = Endpoint{kRecursiveAddr, 42001};
    query_pkt.dst = server;  // the public address of the target nameserver
    query_pkt.payload = q.to_wire();
    if (!rec_proxy.rewrite(query_pkt)) return Err("recursive proxy did not capture");

    // Meta server answers; split-horizon selection keys on the (rewritten)
    // query source address.
    Message response = meta.answer(q, query_pkt.src.addr);

    Datagram reply_pkt;
    reply_pkt.src = Endpoint{kMetaAddr, 53};
    reply_pkt.dst = query_pkt.src;
    reply_pkt.payload = response.to_wire();
    if (!aut_proxy.rewrite(reply_pkt)) return Err("authoritative proxy did not capture");

    // The §2.4 acceptance condition: reply source must equal the original
    // query destination, or a real recursive would drop it.
    if (!(reply_pkt.src.addr == server.addr))
      return Err("reply source mismatch: recursive would drop");
    return response;
  };
}

/// The "real world": three separate servers routed by destination address.
struct IndependentServers {
  AuthServer root, com, google;
  IndependentServers() {
    EXPECT_TRUE(root.default_zones().add(parse(kRootZone)).ok());
    EXPECT_TRUE(com.default_zones().add(parse(kComZone)).ok());
    EXPECT_TRUE(google.default_zones().add(parse(kGoogleZone)).ok());
  }
  resolver::RecursiveResolver::Upstream upstream() {
    return [this](const Endpoint& server, const Message& q) -> Result<Message> {
      if (server.addr == kRootAddr) return root.answer(q, kRecursiveAddr);
      if (server.addr == kComAddr) return com.answer(q, kRecursiveAddr);
      if (server.addr == kGoogleAddr) return google.answer(q, kRecursiveAddr);
      return Err("no route");
    };
  }
};

resolver::ResolverConfig resolver_config() {
  resolver::ResolverConfig cfg;
  cfg.root_servers = {Endpoint{kRootAddr, 53}};
  return cfg;
}

TEST(HierarchyEmulation, ResolvesThroughAllLevels) {
  AuthServer meta = make_meta_server();
  uint64_t hops = 0;
  resolver::RecursiveResolver resolver(resolver_config(),
                                       emulated_upstream(meta, &hops));
  Message r = resolver.resolve(mk("www.google.com"), RRType::A, 0);
  EXPECT_EQ(r.header.rcode, Rcode::NoError);
  ASSERT_FALSE(r.answers.empty());
  const auto* a = r.answers[0].rdata.get_if<dns::AData>();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->addr.to_string(), "172.217.14.4");
  // Three hierarchy levels -> three upstream round trips: referrals were
  // NOT short-circuited even though one server hosts everything.
  EXPECT_EQ(hops, 3u);
}

TEST(HierarchyEmulation, MatchesIndependentServersExactly) {
  // The central §2.4 claim: for every level and query, the meta server via
  // proxies returns the same message an independent server would.
  AuthServer meta = make_meta_server();
  IndependentServers independent;
  auto emulated = emulated_upstream(meta);
  auto real = independent.upstream();

  struct Case {
    IpAddr server;
    const char* qname;
    RRType qtype;
  };
  const Case cases[] = {
      {kRootAddr, "www.google.com", RRType::A},     // root referral
      {kRootAddr, "com", RRType::NS},               // root answer
      {kComAddr, "www.google.com", RRType::A},      // com referral
      {kGoogleAddr, "www.google.com", RRType::A},   // leaf answer
      {kGoogleAddr, "mail.google.com", RRType::A},  // CNAME
      {kGoogleAddr, "nope.google.com", RRType::A},  // NXDOMAIN
      {kRootAddr, "www.google.com", RRType::AAAA},  // referral, other type
  };
  for (const auto& c : cases) {
    Message q = Message::make_query(7, mk(c.qname), c.qtype, false);
    auto from_meta = emulated(Endpoint{c.server, 53}, q);
    auto from_real = real(Endpoint{c.server, 53}, q);
    ASSERT_TRUE(from_meta.ok()) << c.qname;
    ASSERT_TRUE(from_real.ok()) << c.qname;
    EXPECT_EQ(from_meta->to_wire(), from_real->to_wire())
        << "divergence for " << c.qname << " at " << c.server.to_string();
  }
}

TEST(HierarchyEmulation, EndToEndMatchesIndependentResolution) {
  AuthServer meta = make_meta_server();
  IndependentServers independent;
  resolver::RecursiveResolver emu_resolver(resolver_config(), emulated_upstream(meta));
  resolver::RecursiveResolver real_resolver(resolver_config(), independent.upstream());

  for (const char* qname : {"www.google.com", "mail.google.com", "ns1.google.com",
                            "missing.google.com"}) {
    Message emu = emu_resolver.resolve(mk(qname), RRType::A, 0);
    Message real = real_resolver.resolve(mk(qname), RRType::A, 0);
    EXPECT_EQ(emu.header.rcode, real.header.rcode) << qname;
    EXPECT_EQ(emu.answers.size(), real.answers.size()) << qname;
  }
}

TEST(HierarchyEmulation, NaiveSingleServerShortCircuits) {
  // The failure mode motivating the whole design: all zones in ONE view on
  // one server. A query meant for the root finds the deepest zone and
  // answers directly — no referral chain, wrong behaviour.
  AuthServer naive;
  auto& zones = naive.default_zones();
  ASSERT_TRUE(zones.add(parse(kRootZone)).ok());
  ASSERT_TRUE(zones.add(parse(kComZone)).ok());
  ASSERT_TRUE(zones.add(parse(kGoogleZone)).ok());

  Message q = Message::make_query(1, mk("www.google.com"), RRType::A, false);
  Message naive_reply = naive.answer(q, kRootAddr);
  // Direct final answer instead of a root referral:
  EXPECT_TRUE(naive_reply.header.aa);
  EXPECT_FALSE(naive_reply.answers.empty());

  // Whereas the meta server with views correctly refers.
  AuthServer meta = make_meta_server();
  Message meta_reply = meta.answer(q, kRootAddr);
  EXPECT_FALSE(meta_reply.header.aa);
  EXPECT_TRUE(meta_reply.answers.empty());
  ASSERT_FALSE(meta_reply.authorities.empty());
  EXPECT_EQ(meta_reply.authorities[0].name, mk("com"));
}

TEST(HierarchyEmulation, ZonesRebuiltFromTraceDriveEmulation) {
  // Close the loop with the zone constructor: resolve against independent
  // servers while capturing the upstream responses, rebuild zones from the
  // capture (§2.3), load them into a meta server (§2.4), and check the
  // rebuilt hierarchy answers the original query identically.
  IndependentServers independent;
  std::vector<trace::TraceRecord> capture;
  auto capturing_upstream = [&](const Endpoint& server,
                                const Message& q) -> Result<Message> {
    auto real = independent.upstream();
    auto resp = real(server, q);
    if (resp.ok()) {
      capture.push_back(trace::make_query_record(
          0, Endpoint{server.addr, 53}, Endpoint{kRecursiveAddr, 42001}, *resp));
    }
    return resp;
  };
  resolver::RecursiveResolver capture_resolver(resolver_config(), capturing_upstream);
  Message original = capture_resolver.resolve(mk("www.google.com"), RRType::A, 0);
  ASSERT_EQ(original.header.rcode, Rcode::NoError);

  auto built = zonecut::build_zones(capture);
  ASSERT_TRUE(built.ok()) << built.error().message;

  // Wire the rebuilt zones into a meta server: one view per zone's server
  // group, reusing the reported nameserver addresses.
  AuthServer meta;
  std::map<std::string, zone::View*> views_by_addr;
  for (const auto& [origin, servers] : built->zone_servers) {
    ASSERT_FALSE(servers.empty()) << origin.to_string();
    std::string key = servers[0].to_string();
    auto it = views_by_addr.find(key);
    if (it == views_by_addr.end()) {
      zone::View& v = meta.views().add_view(key);
      for (const auto& addr : servers) v.match_clients.insert(addr);
      it = views_by_addr.emplace(key, &v).first;
    }
    const zone::Zone* z = built->zones.find_exact(origin);
    ASSERT_NE(z, nullptr);
    ASSERT_TRUE(it->second->zones.add(*z).ok());
  }

  resolver::RecursiveResolver emu_resolver(resolver_config(), emulated_upstream(meta));
  Message replayed = emu_resolver.resolve(mk("www.google.com"), RRType::A, 0);
  EXPECT_EQ(replayed.header.rcode, Rcode::NoError);
  ASSERT_FALSE(replayed.answers.empty());
  const auto* a = replayed.answers[0].rdata.get_if<dns::AData>();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->addr.to_string(), "172.217.14.4");
}

}  // namespace
}  // namespace ldp
