// Tests for the master-file parser: directives, relative names, owner
// inheritance, parentheses, comments, quoted strings, error reporting, and
// print/parse round-trips.
#include <gtest/gtest.h>

#include "zone/parser.hpp"

namespace ldp::zone {
namespace {

using dns::RRType;

Name mk(std::string_view s) { return *Name::parse(s); }

constexpr const char* kExampleZone = R"(
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1 admin.example.com. (
        2018103100 ; serial
        7200       ; refresh
        900        ; retry
        1209600    ; expire
        300 )      ; minimum
    IN NS ns1
    IN NS ns2.example.com.
ns1 IN A  192.0.2.1
ns2 600 IN A 192.0.2.2
www     A  192.0.2.80
        A  192.0.2.81
alias   CNAME www
txt     TXT "hello world" "second string"
mx      MX 10 mail
sub     NS ns.sub
ns.sub  A 192.0.2.100
*.wild  TXT "wildcard"
)";

TEST(ZoneParser, ParsesRealisticFile) {
  auto z = parse_zone(kExampleZone);
  ASSERT_TRUE(z.ok()) << z.error().message;
  EXPECT_EQ(z->origin(), mk("example.com"));
  auto v = z->validate();
  EXPECT_TRUE(v.ok()) << (v.ok() ? "" : v.error().message);

  const auto* soa = z->soa();
  ASSERT_NE(soa, nullptr);
  const auto* soa_data = soa->rdatas[0].get_if<dns::SoaData>();
  ASSERT_NE(soa_data, nullptr);
  EXPECT_EQ(soa_data->serial, 2018103100u);
  EXPECT_EQ(soa_data->minimum, 300u);
  EXPECT_EQ(soa_data->mname, mk("ns1.example.com"));  // relative resolved
}

TEST(ZoneParser, OwnerInheritance) {
  auto z = parse_zone(kExampleZone);
  ASSERT_TRUE(z.ok());
  // "www" has two A records, the second from an inherited owner line.
  const auto* www = z->find(mk("www.example.com"), RRType::A);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(www->size(), 2u);
}

TEST(ZoneParser, ExplicitTtlOverridesDefault) {
  auto z = parse_zone(kExampleZone);
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(z->find(mk("ns2.example.com"), RRType::A)->ttl, 600u);
  EXPECT_EQ(z->find(mk("ns1.example.com"), RRType::A)->ttl, 3600u);
}

TEST(ZoneParser, QuotedStringsKeepSpaces) {
  auto z = parse_zone(kExampleZone);
  ASSERT_TRUE(z.ok());
  const auto* txt = z->find(mk("txt.example.com"), RRType::TXT);
  ASSERT_NE(txt, nullptr);
  const auto* data = txt->rdatas[0].get_if<dns::TxtData>();
  ASSERT_NE(data, nullptr);
  ASSERT_EQ(data->strings.size(), 2u);
  EXPECT_EQ(data->strings[0], "hello world");
  EXPECT_EQ(data->strings[1], "second string");
}

TEST(ZoneParser, RelativeNamesInRdata) {
  auto z = parse_zone(kExampleZone);
  ASSERT_TRUE(z.ok());
  const auto* mx = z->find(mk("mx.example.com"), RRType::MX);
  ASSERT_NE(mx, nullptr);
  const auto* data = mx->rdatas[0].get_if<dns::MxData>();
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->exchange, mk("mail.example.com"));
}

TEST(ZoneParser, OriginFromOptionsAllowsNoSoaFiles) {
  ParseOptions opts;
  opts.origin = mk("example.org");
  auto records = parse_records("www A 192.0.2.7\n", opts);
  ASSERT_TRUE(records.ok()) << records.error().message;
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].name, mk("www.example.org"));
  EXPECT_EQ((*records)[0].ttl, 3600u);  // fallback default
}

TEST(ZoneParser, AtSignIsOrigin) {
  ParseOptions opts;
  opts.origin = mk("example.net");
  auto records = parse_records("@ 60 IN A 192.0.2.9\n", opts);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].name, mk("example.net"));
  EXPECT_EQ((*records)[0].ttl, 60u);
}

TEST(ZoneParser, ClassAndTtlInEitherOrder) {
  ParseOptions opts;
  opts.origin = mk("e.com");
  auto a = parse_records("x IN 120 A 1.2.3.4\n", opts);
  ASSERT_TRUE(a.ok()) << a.error().message;
  EXPECT_EQ((*a)[0].ttl, 120u);
  auto b = parse_records("x 120 IN A 1.2.3.4\n", opts);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)[0].ttl, 120u);
}

TEST(ZoneParser, ErrorsCarryLineNumbers) {
  auto bad = parse_zone("$ORIGIN example.com.\nns1 IN A not-an-ip\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("line 2"), std::string::npos) << bad.error().message;
}

TEST(ZoneParser, RejectsRelativeWithoutOrigin) {
  auto bad = parse_records("www A 192.0.2.1\n");
  EXPECT_FALSE(bad.ok());
}

TEST(ZoneParser, RejectsUnbalancedParens) {
  auto bad = parse_records("@ SOA a. b. ( 1 2 3 4\n", {mk("x.com"), 300});
  EXPECT_FALSE(bad.ok());
}

TEST(ZoneParser, RejectsUnknownDirective) {
  auto bad = parse_records("$GENERATE 1-10 host$ A 1.2.3.4\n", {mk("x.com"), 300});
  EXPECT_FALSE(bad.ok());
}

TEST(ZoneParser, RejectsNoRecords) {
  EXPECT_FALSE(parse_zone("; just a comment\n").ok());
}

TEST(ZoneParser, CommentInsideQuotedStringKept) {
  ParseOptions opts;
  opts.origin = mk("e.com");
  auto records = parse_records("t TXT \"semi;colon\"\n", opts);
  ASSERT_TRUE(records.ok());
  const auto* data = (*records)[0].rdata.get_if<dns::TxtData>();
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->strings[0], "semi;colon");
}

TEST(ZoneParser, PrintParseRoundTrip) {
  auto z = parse_zone(kExampleZone);
  ASSERT_TRUE(z.ok());
  std::string printed = print_zone(*z);
  auto z2 = parse_zone(printed);
  ASSERT_TRUE(z2.ok()) << z2.error().message;
  EXPECT_EQ(z2->origin(), z->origin());
  EXPECT_EQ(z2->rrset_count(), z->rrset_count());
  EXPECT_EQ(z2->record_count(), z->record_count());
  // Every RRset survives with identical content.
  for (const RRset* set : z->all_rrsets()) {
    const RRset* other = z2->find(set->name, set->type);
    ASSERT_NE(other, nullptr) << set->name.to_string();
    EXPECT_EQ(other->ttl, set->ttl);
    EXPECT_EQ(other->size(), set->size());
  }
}

TEST(ZoneParser, RootZoneStyle) {
  // A miniature root zone: delegations + glue, as the B-Root replay uses.
  constexpr const char* kRoot = R"(
$ORIGIN .
$TTL 86400
. IN SOA a.root-servers.net. nstld.verisign-grs.com. 2018103100 1800 900 604800 86400
. IN NS a.root-servers.net.
a.root-servers.net. IN A 198.41.0.4
com. IN NS a.gtld-servers.net.
a.gtld-servers.net. IN A 192.5.6.30
org. IN NS a0.org.afilias-nst.info.
a0.org.afilias-nst.info. IN A 199.19.56.1
)";
  auto z = parse_zone(kRoot);
  ASSERT_TRUE(z.ok()) << z.error().message;
  EXPECT_TRUE(z->origin().is_root());
  auto res = z->lookup(mk("www.example.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::Delegation);
  ASSERT_FALSE(res.authorities.empty());
  EXPECT_EQ(res.authorities[0].name, mk("com"));
}

}  // namespace
}  // namespace ldp::zone
