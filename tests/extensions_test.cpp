// Tests for the paper's stated extension/future-work features implemented
// here: zone partitioning across server shards (§3), CDN-style answer
// rotation (§2.3), live mutation during replay (§2.2), multi-controller
// input splitting (§2.6), and DoS attack workloads (§1).
#include <gtest/gtest.h>

#include "replay/multi.hpp"
#include "server/background.hpp"
#include "server/shard.hpp"
#include "simnet/replay_sim.hpp"
#include "synth/generator.hpp"
#include "zone/parser.hpp"

namespace ldp {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;

Name mk(std::string_view s) { return *Name::parse(s); }

zone::Zone tld_zone(const std::string& tld) {
  auto z = zone::parse_zone("$ORIGIN " + tld +
                            ".\n$TTL 3600\n@ IN SOA ns1 admin 1 2 3 4 300\n"
                            "@ IN NS ns1\nns1 IN A 192.0.2.1\n* IN A 192.0.2.80\n");
  EXPECT_TRUE(z.ok());
  return std::move(*z);
}

// --- sharded meta server ----------------------------------------------------

TEST(ShardedMetaServer, ZonesSpreadAcrossShards) {
  server::ShardedMetaServer sharded(3);
  for (int i = 0; i < 9; ++i) {
    IpAddr addr{Ip4{10, 3, 0, static_cast<uint8_t>(i + 1)}};
    auto shard = sharded.add_zone(tld_zone("tld" + std::to_string(i)), {addr});
    ASSERT_TRUE(shard.ok()) << shard.error().message;
  }
  auto loads = sharded.zones_per_shard();
  ASSERT_EQ(loads.size(), 3u);
  for (size_t n : loads) EXPECT_EQ(n, 3u);  // balanced
}

TEST(ShardedMetaServer, RoutingFollowsViewKey) {
  server::ShardedMetaServer sharded(2);
  IpAddr a{Ip4{10, 3, 0, 1}}, b{Ip4{10, 3, 0, 2}};
  auto s1 = sharded.add_zone(tld_zone("alpha"), {a});
  auto s2 = sharded.add_zone(tld_zone("beta"), {b});
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*sharded.route(a), *s1);
  EXPECT_EQ(*sharded.route(b), *s2);
  EXPECT_FALSE(sharded.route(IpAddr{Ip4{9, 9, 9, 9}}).has_value());

  Message q = Message::make_query(1, mk("www.alpha"), RRType::A, false);
  Message r = sharded.answer(q, a);
  EXPECT_EQ(r.header.rcode, Rcode::NoError);
  ASSERT_EQ(r.answers.size(), 1u);

  // The wrong view key reaches a shard that refuses (or no shard at all).
  Message wrong = sharded.answer(q, IpAddr{Ip4{9, 9, 9, 9}});
  EXPECT_EQ(wrong.header.rcode, Rcode::Refused);
}

TEST(ShardedMetaServer, SharedNameserverAddressPinsShard) {
  // Two zones served by the same nameserver must land on the same shard.
  server::ShardedMetaServer sharded(4);
  IpAddr shared_ns{Ip4{10, 3, 0, 7}};
  auto s1 = sharded.add_zone(tld_zone("one"), {shared_ns});
  auto s2 = sharded.add_zone(tld_zone("two"), {shared_ns, IpAddr{Ip4{10, 3, 0, 8}}});
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
}

TEST(ShardedMetaServer, StraddlingAddressesRejected) {
  server::ShardedMetaServer sharded(2);
  IpAddr a{Ip4{10, 3, 1, 1}}, b{Ip4{10, 3, 1, 2}};
  ASSERT_TRUE(sharded.add_zone(tld_zone("one"), {a}).ok());
  ASSERT_TRUE(sharded.add_zone(tld_zone("two"), {b}).ok());
  // A zone claiming both nameservers can't be placed if they ended up on
  // different shards.
  auto r = sharded.add_zone(tld_zone("three"), {a, b});
  if (*sharded.route(a) != *sharded.route(b)) {
    EXPECT_FALSE(r.ok());
  }
}

TEST(ShardedMetaServer, NoAddressesRejected) {
  server::ShardedMetaServer sharded(2);
  EXPECT_FALSE(sharded.add_zone(tld_zone("x"), {}).ok());
}

TEST(ShardedMetaServer, StraddlingRejectionIsDeterministicAndAtomic) {
  // With two empty shards, the first distinct identity lands on shard 0 and
  // the second on shard 1 (least-loaded placement), so a zone claiming both
  // is a guaranteed straddle — no hash luck involved.
  server::ShardedMetaServer sharded(2);
  IpAddr a{Ip4{10, 3, 2, 1}}, b{Ip4{10, 3, 2, 2}}, c{Ip4{10, 3, 2, 3}};
  ASSERT_TRUE(sharded.add_zone(tld_zone("one"), {a}).ok());
  ASSERT_TRUE(sharded.add_zone(tld_zone("two"), {b}).ok());
  ASSERT_NE(*sharded.route(a), *sharded.route(b));

  auto loads_before = sharded.zones_per_shard();
  auto r = sharded.add_zone(tld_zone("three"), {a, c, b});
  EXPECT_FALSE(r.ok());
  // Rejection must be atomic: the fresh address in the failed zone's
  // nameserver set is not registered, and no shard gained a zone.
  EXPECT_FALSE(sharded.route(c).has_value());
  EXPECT_EQ(sharded.zones_per_shard(), loads_before);

  // Queries keyed on the never-registered address are refused, not
  // misrouted to whichever shard the failed add_zone was aimed at.
  Message q = Message::make_query(3, mk("www.three"), RRType::A, false);
  EXPECT_EQ(sharded.answer(q, c).header.rcode, Rcode::Refused);
}

TEST(ShardedMetaServer, InterleavedAddsRebalanceAroundPinnedShard) {
  // A shared nameserver identity pins zones to one shard and skews the
  // load; subsequent distinct-identity adds must flow to the least-loaded
  // shards until everything levels out again.
  server::ShardedMetaServer sharded(3);
  IpAddr pinned_ns{Ip4{10, 3, 3, 1}};
  ASSERT_TRUE(sharded.add_zone(tld_zone("pin0"), {pinned_ns}).ok());
  const size_t pinned_shard = *sharded.route(pinned_ns);
  for (int i = 1; i < 4; ++i) {
    auto s = sharded.add_zone(tld_zone("pin" + std::to_string(i)), {pinned_ns});
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, pinned_shard);
  }
  // One shard now holds 4 zones, the others 0. Eight distinct identities,
  // interleaved with lookups, should fill the other shards back to parity.
  for (int i = 0; i < 8; ++i) {
    IpAddr addr{Ip4{10, 3, 4, static_cast<uint8_t>(i + 1)}};
    auto s = sharded.add_zone(tld_zone("solo" + std::to_string(i)), {addr});
    ASSERT_TRUE(s.ok());
    EXPECT_NE(*s, pinned_shard) << "add " << i << " placed on the loaded shard";
    EXPECT_EQ(*sharded.route(addr), *s);
  }
  auto loads = sharded.zones_per_shard();
  ASSERT_EQ(loads.size(), 3u);
  for (size_t n : loads) EXPECT_EQ(n, 4u);  // 12 zones, perfectly level

  // The pinned identity still answers through its shard after the
  // rebalance (view match is first-wins, so the key reaches pin0's view).
  Message q = Message::make_query(4, mk("www.pin0"), RRType::A, false);
  EXPECT_EQ(sharded.answer(q, pinned_ns).header.rcode, Rcode::NoError);
}

// --- CDN answer rotation -----------------------------------------------------

TEST(CdnRotation, SuccessiveQueriesSeeRotatedFirstAnswer) {
  server::ServerConfig cfg;
  cfg.rotate_answers = true;
  server::AuthServer s(cfg);
  auto z = zone::parse_zone(R"(
$ORIGIN cdn.example.
$TTL 60
@ IN SOA ns1 admin 1 2 3 4 60
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.10
www IN A 192.0.2.11
www IN A 192.0.2.12
)");
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(s.default_zones().add(std::move(*z)).ok());

  IpAddr client{Ip4{10, 0, 0, 1}};
  std::set<std::string> first_answers;
  for (int i = 0; i < 6; ++i) {
    Message q = Message::make_query(static_cast<uint16_t>(i), mk("www.cdn.example"),
                                    RRType::A);
    Message r = s.answer(q, client);
    ASSERT_EQ(r.answers.size(), 3u);
    const auto* a = r.answers[0].rdata.get_if<dns::AData>();
    ASSERT_NE(a, nullptr);
    first_answers.insert(a->addr.to_string());
  }
  EXPECT_EQ(first_answers.size(), 3u);  // all three addresses led once
}

TEST(CdnRotation, OffByDefault) {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN cdn.example.
$TTL 60
@ IN SOA ns1 admin 1 2 3 4 60
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.10
www IN A 192.0.2.11
)");
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(s.default_zones().add(std::move(*z)).ok());
  IpAddr client{Ip4{10, 0, 0, 1}};
  std::set<std::string> first_answers;
  for (int i = 0; i < 4; ++i) {
    Message q = Message::make_query(static_cast<uint16_t>(i), mk("www.cdn.example"),
                                    RRType::A);
    Message r = s.answer(q, client);
    ASSERT_FALSE(r.answers.empty());
    const auto* a = r.answers[0].rdata.get_if<dns::AData>();
    ASSERT_NE(a, nullptr);
    first_answers.insert(a->addr.to_string());
  }
  EXPECT_EQ(first_answers.size(), 1u);  // stable order
}

// --- attack workloads ---------------------------------------------------------

TEST(AttackTrace, RandomSubdomainShape) {
  synth::AttackTraceSpec spec;
  spec.rate_qps = 5000;
  spec.duration_ns = 2 * kSecond;
  spec.spoofed_sources = 5000;
  spec.seed = 3;
  auto trace = synth::make_attack_trace(spec);
  ASSERT_GT(trace.size(), 8000u);
  ASSERT_LT(trace.size(), 12000u);

  std::set<std::string> qnames;
  for (const auto& rec : trace) {
    auto msg = rec.message();
    ASSERT_TRUE(msg.ok());
    const auto& qname = msg->questions[0].qname;
    EXPECT_TRUE(qname.is_subdomain_of(mk("example.com")));
    qnames.insert(qname.to_string());
  }
  // Water torture: (almost) every qname unique, defeating caches.
  EXPECT_GT(qnames.size(), trace.size() * 99 / 100);
}

TEST(AttackTrace, DirectFloodSingleName) {
  synth::AttackTraceSpec spec;
  spec.kind = synth::AttackTraceSpec::Kind::DirectFlood;
  spec.rate_qps = 5000;
  spec.duration_ns = kSecond;
  spec.seed = 4;
  auto trace = synth::make_attack_trace(spec);
  std::set<std::string> qnames;
  for (const auto& rec : trace) {
    auto msg = rec.message();
    qnames.insert(msg->questions[0].qname.to_string());
  }
  EXPECT_EQ(qnames.size(), 1u);
}

TEST(AttackTrace, DrivesNxDomainLoadOnServer) {
  // Replay a water-torture attack through the simulator: every query misses
  // (NXDOMAIN) and the server answers all of it — the §1 DoS study's
  // baseline measurement.
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 2 3 4 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
)");
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(s.default_zones().add(std::move(*z)).ok());

  synth::AttackTraceSpec spec;
  spec.rate_qps = 2000;
  spec.duration_ns = 5 * kSecond;
  spec.seed = 5;
  auto trace = synth::make_attack_trace(spec);

  simnet::SimReplayConfig cfg;
  cfg.sample_interval = kSecond;
  auto result = simnet::simulate_replay(trace, s, cfg);
  EXPECT_EQ(result.responses, result.queries);
  EXPECT_GT(s.stats().nxdomain.load(), result.queries * 95 / 100);
}

// --- live mutation & multi-controller replay ----------------------------------

server::AuthServer wildcard_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

TEST(LiveMutation, AppliedDuringReplay) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 5 * kMilli;
  spec.duration_ns = kSecond / 2;
  spec.client_count = 10;
  auto trace = synth::make_fixed_trace(spec);

  // Live pipeline: drop every other query by qtype filter after forcing
  // half to AAAA.
  mutate::MutatorPipeline live;
  int counter = 0;
  live.edit_message([&counter](dns::Message& msg) {
    if (++counter % 2 == 0) msg.questions[0].qtype = dns::RRType::AAAA;
  });
  live.filter([](const trace::TraceRecord&, const dns::Message& msg) {
    return msg.questions[0].qtype == dns::RRType::A;
  });

  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.live_mutator = &live;
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->mutator_dropped, trace.size() / 2);
  EXPECT_EQ(report->queries_sent, trace.size() / 2);
  EXPECT_EQ(report->responses_received, report->queries_sent);
}

TEST(MultiController, SplitsAndMergesFaithfully) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());

  synth::FixedTraceSpec spec;
  spec.interarrival_ns = 2 * kMilli;
  spec.duration_ns = kSecond;
  spec.client_count = 40;
  auto trace = synth::make_fixed_trace(spec);

  replay::MultiControllerConfig cfg;
  cfg.engine.server = (*bg)->endpoint();
  cfg.controllers = 3;
  auto report = replay::replay_multi_controller(trace, cfg);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report->queries_sent, trace.size());
  // Tolerate rare UDP loss when the whole suite contends for one core.
  EXPECT_GE(report->responses_received, trace.size() * 95 / 100);

  // Timing still tracks the shared clock: never early, mostly on time.
  TimeNs t0 = trace.front().timestamp;
  Sampler err_ms;
  for (const auto& sr : report->sends)
    err_ms.add(ns_to_ms((sr.send_time - report->replay_start) - (sr.trace_time - t0)));
  EXPECT_GE(err_ms.summary().min, -1.0);
  EXPECT_LT(err_ms.summary().median, 200.0);
}

TEST(MultiController, EmptyTraceRejected) {
  replay::MultiControllerConfig cfg;
  cfg.engine.server = Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 5300};
  EXPECT_FALSE(replay::replay_multi_controller({}, cfg).ok());
}

}  // namespace
}  // namespace ldp
