// Race tests for BoundedQueue's shutdown contract, written to run under
// TSan (the tsan preset builds this suite with -fsanitize=thread): N
// producers and M consumers hammer a small queue while another thread
// closes it mid-flight. The invariant under test: every item is either
// popped exactly once or rejected-with-preservation (PushResult::Closed /
// Full keeps the item in the caller's hands) — nothing is lost, nothing is
// duplicated, and no waiter survives close().
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/queue.hpp"

namespace ldp {
namespace {

TEST(QueueRaceT, CloseWhileProducersAndConsumersRace) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(8);  // tiny: maximizes full-queue blocking

  std::atomic<uint64_t> accepted{0}, rejected{0};
  std::vector<uint64_t> popped_flags(kProducers * kPerProducer, 0);
  std::mutex popped_mu;  // flags written by several consumers

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        // Bounded grace so producers survive the close; Full loops retry
        // (the queue may still drain), Closed gives up with the item
        // preserved — which is the rejection path under test.
        PushResult pr;
        while ((pr = q.push_for(item, kMilli)) == PushResult::Full) {
          if (q.closed()) {
            pr = PushResult::Closed;
            break;
          }
        }
        if (pr == PushResult::Ok) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Rejected with preservation: the item is still ours to account.
          EXPECT_EQ(pr, PushResult::Closed);
          EXPECT_EQ(item, p * kPerProducer + i);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> consumers;
  std::atomic<uint64_t> consumed{0};
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        auto item = q.pop();
        if (!item.has_value()) {
          // nullopt only once closed AND drained — never a spurious miss.
          EXPECT_TRUE(q.closed_and_empty());
          return;
        }
        {
          std::lock_guard lock(popped_mu);
          ++popped_flags[static_cast<size_t>(*item)];
        }
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let the pipeline run hot, then slam the door mid-flight.
  while (consumed.load(std::memory_order_relaxed) < kPerProducer) {
    std::this_thread::yield();
  }
  q.close();

  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  // Conservation: accepted items were popped exactly once; rejected items
  // never appear on the consumer side.
  uint64_t popped_once = 0;
  for (uint64_t f : popped_flags) {
    ASSERT_LE(f, 1u) << "an item was popped twice";
    popped_once += f;
  }
  EXPECT_EQ(popped_once, accepted.load());
  EXPECT_EQ(accepted.load() + rejected.load(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_GT(rejected.load(), 0u);  // the close really did land mid-flight
}

TEST(QueueRaceT, CloseIsIdempotentAcrossThreads) {
  BoundedQueue<int> q(4);
  std::vector<std::thread> closers;
  for (int i = 0; i < 8; ++i) closers.emplace_back([&] { q.close(); });
  for (auto& t : closers) t.join();
  EXPECT_TRUE(q.closed_and_empty());
  int item = 7;
  EXPECT_EQ(q.push_for(item, 0), PushResult::Closed);
  EXPECT_EQ(item, 7);  // preserved
}

TEST(QueueRaceT, CloseWakesBlockedProducerWithItemPreserved) {
  BoundedQueue<int> q(1);
  int filler = 0;
  ASSERT_EQ(q.push_for(filler, 0), PushResult::Ok);

  std::atomic<bool> returned{false};
  int stuck = 42;
  std::thread producer([&] {
    // Unbounded grace: only close() can release this thread.
    PushResult pr = q.push_for(stuck, -1);
    EXPECT_EQ(pr, PushResult::Closed);
    returned.store(true, std::memory_order_release);
  });
  // Nobody pops: only close() can release the producer.
  q.close();
  producer.join();
  EXPECT_TRUE(returned.load(std::memory_order_acquire));
  EXPECT_EQ(stuck, 42);  // rejected with the item intact
  // The filler item still drains after close.
  EXPECT_EQ(q.pop_for(0), std::optional<int>(0));
  EXPECT_TRUE(q.closed_and_empty());
}

TEST(QueueRaceT, EvictPushRacesConsumersWithoutLoss) {
  constexpr int kItems = 4000;
  BoundedQueue<int> q(4);
  std::atomic<uint64_t> evicted_count{0};
  std::atomic<uint64_t> popped_count{0};

  std::thread consumer([&] {
    while (true) {
      auto item = q.pop();
      if (!item.has_value()) return;
      popped_count.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      int item = i;
      std::optional<int> evicted;
      PushResult pr = q.evict_push(item, evicted);
      ASSERT_EQ(pr, PushResult::Ok);  // queue is open for the whole loop
      if (evicted.has_value()) evicted_count.fetch_add(1, std::memory_order_relaxed);
    }
    q.close();
  });

  producer.join();
  consumer.join();
  // Every item either reached the consumer or was evicted for accounting.
  EXPECT_EQ(popped_count.load() + evicted_count.load(),
            static_cast<uint64_t>(kItems));
}

}  // namespace
}  // namespace ldp
