// End-to-end recursive replay (Figure 1's full left-to-right path): the
// query engine replays a Rec-17-style stub trace over real UDP sockets to a
// recursive resolver frontend, which resolves each query through the
// emulated hierarchy (meta server + proxies) and answers. This is the
// "recursive replay" configuration the paper was still evaluating.
#include <gtest/gtest.h>

#include <thread>

#include "proxy/proxy.hpp"
#include "replay/engine.hpp"
#include "resolver/frontend.hpp"
#include "server/auth_server.hpp"
#include "synth/generator.hpp"
#include "zone/parser.hpp"

namespace ldp {
namespace {

using dns::Message;
using dns::Name;
using dns::RRType;

const IpAddr kRootAddr{Ip4{198, 41, 0, 4}};
const IpAddr kMetaAddr{Ip4{10, 1, 1, 3}};
const IpAddr kRecursiveAddr{Ip4{10, 1, 1, 2}};

/// Meta server hosting root + com + a wildcard example.com, one view per
/// level, exactly as the hierarchy emulation builds it.
server::AuthServer make_meta() {
  server::AuthServer meta;
  auto add = [&meta](const char* view_name, IpAddr key, const char* text) {
    auto z = zone::parse_zone(text);
    ASSERT_TRUE(z.ok()) << z.error().message;
    zone::View& v = meta.views().add_view(view_name);
    v.match_clients.insert(key);
    ASSERT_TRUE(v.zones.add(std::move(*z)).ok());
  };
  add("root", kRootAddr, R"(
$ORIGIN .
$TTL 86400
. IN SOA a.root-servers.net. nstld.example. 1 1800 900 604800 86400
. IN NS a.root-servers.net.
a.root-servers.net. IN A 198.41.0.4
com. IN NS a.gtld-servers.net.
net. IN NS a.gtld-servers.net.
org. IN NS a.gtld-servers.net.
edu. IN NS a.gtld-servers.net.
io. IN NS a.gtld-servers.net.
a.gtld-servers.net. IN A 192.5.6.30
)");
  // One TLD zone per view entry: the gtld view delegates every SLD to the
  // sld server via wildcards; the sld view answers every host.
  zone::View& gtld = meta.views().add_view("gtld");
  gtld.match_clients.insert(IpAddr{Ip4{192, 5, 6, 30}});
  zone::View& sld = meta.views().add_view("sld");
  sld.match_clients.insert(IpAddr{Ip4{203, 0, 113, 53}});
  for (const char* tld : {"com", "net", "org", "edu", "io"}) {
    std::string parent = std::string("$ORIGIN ") + tld +
                         ".\n$TTL 172800\n"
                         "@ IN SOA a.gtld-servers.net. nstld.example. 1 2 3 4 300\n"
                         "@ IN NS a.gtld-servers.net.\n"
                         "* IN NS ns.sld-servers.net.\n";
    if (std::string(tld) == "net")
      parent += "ns.sld-servers.net. IN A 203.0.113.53\n";  // glue for the cut
    auto pz = zone::parse_zone(parent);
    EXPECT_TRUE(pz.ok()) << (pz.ok() ? "" : pz.error().message);
    EXPECT_TRUE(gtld.zones.add(std::move(*pz)).ok());

    std::string child = std::string("$ORIGIN ") + tld +
                        ".\n$TTL 3600\n"
                        "@ IN SOA ns.sld-servers.net. admin.example. 1 2 3 4 300\n"
                        "@ IN NS ns.sld-servers.net.\n"
                        "* IN A 192.0.2.80\n";
    auto cz = zone::parse_zone(child);
    EXPECT_TRUE(cz.ok());
    EXPECT_TRUE(sld.zones.add(std::move(*cz)).ok());
  }
  return meta;
}

TEST(RecursiveReplay, StubTraceThroughEmulatedHierarchy) {
  auto meta = std::make_shared<server::AuthServer>(make_meta());

  // Upstream: recursive proxy -> meta server -> authoritative proxy.
  resolver::ResolverConfig rcfg;
  rcfg.root_servers = {Endpoint{kRootAddr, 53}};
  auto upstream = [meta](const Endpoint& server,
                         const Message& q) -> Result<Message> {
    proxy::ServerProxy rec_proxy(proxy::ServerProxy::Role::Recursive, kMetaAddr);
    proxy::ServerProxy aut_proxy(proxy::ServerProxy::Role::Authoritative,
                                 kRecursiveAddr);
    proxy::Datagram pkt;
    pkt.src = Endpoint{kRecursiveAddr, 42001};
    pkt.dst = server;
    if (!rec_proxy.rewrite(pkt)) return Err("proxy miss");
    Message resp = meta->answer(q, pkt.src.addr);
    proxy::Datagram reply;
    reply.src = Endpoint{kMetaAddr, 53};
    reply.dst = pkt.src;
    if (!aut_proxy.rewrite(reply)) return Err("proxy miss");
    if (!(reply.src.addr == server.addr)) return Err("source mismatch");
    return resp;
  };

  resolver::RecursiveResolver resolver(rcfg, upstream);
  net::EventLoop loop;
  auto frontend = resolver::StubFrontend::start(loop, resolver);
  ASSERT_TRUE(frontend.ok()) << frontend.error().message;
  Endpoint resolver_endpoint = (*frontend)->endpoint();
  std::thread loop_thread([&loop] { loop.run(); });

  // A small Rec-17-style stub trace, time-compressed for the test.
  synth::RecursiveTraceSpec spec;
  spec.query_count = 200;
  spec.client_count = 8;
  spec.zone_count = 30;
  spec.interarrival_mean_s = 0.002;
  spec.interarrival_stdev_s = 0.002;
  spec.seed = 12;
  auto trace = synth::make_recursive_trace(spec);

  replay::EngineConfig cfg;
  cfg.server = resolver_endpoint;
  cfg.drain_grace = kSecond;
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  loop.stop();
  loop_thread.join();

  EXPECT_EQ(report->queries_sent, trace.size());
  // Every stub query resolved through the emulated hierarchy.
  EXPECT_EQ(report->responses_received, trace.size());
  EXPECT_EQ((*frontend)->queries_served(), trace.size());
  EXPECT_EQ(resolver.stats().servfail, 0u);
  // Caching collapses the upstream load: far fewer hierarchy walks than
  // stub queries (30 zones, 200 queries).
  EXPECT_LT(resolver.stats().upstream_queries, trace.size());
  EXPECT_GT(resolver.stats().upstream_queries, 0u);
}

TEST(RecursiveReplay, ColdVsWarmCacheLoad) {
  // Replaying the same trace twice against a warm resolver shows the §2.3
  // capture problem: the second pass barely touches the hierarchy, which is
  // why zones must be rebuilt from cold-cache resolution.
  auto meta = std::make_shared<server::AuthServer>(make_meta());
  resolver::ResolverConfig rcfg;
  rcfg.root_servers = {Endpoint{kRootAddr, 53}};
  auto upstream = [meta](const Endpoint& server,
                         const Message& q) -> Result<Message> {
    proxy::ServerProxy rec_proxy(proxy::ServerProxy::Role::Recursive, kMetaAddr);
    proxy::Datagram pkt;
    pkt.src = Endpoint{kRecursiveAddr, 42001};
    pkt.dst = server;
    if (!rec_proxy.rewrite(pkt)) return Err("proxy miss");
    return meta->answer(q, pkt.src.addr);
  };
  resolver::RecursiveResolver resolver(rcfg, upstream);

  synth::RecursiveTraceSpec spec;
  spec.query_count = 100;
  spec.zone_count = 20;
  spec.seed = 13;
  auto trace = synth::make_recursive_trace(spec);

  uint64_t cold_upstream = 0;
  for (const auto& rec : trace) {
    auto msg = rec.message();
    ASSERT_TRUE(msg.ok());
    resolver.resolve(*msg, 0);
  }
  cold_upstream = resolver.stats().upstream_queries;

  for (const auto& rec : trace) {
    auto msg = rec.message();
    resolver.resolve(*msg, kSecond);
  }
  uint64_t warm_upstream = resolver.stats().upstream_queries - cold_upstream;
  EXPECT_LT(warm_upstream, cold_upstream / 5);
}

}  // namespace
}  // namespace ldp
