// Tests for typed RDATA codecs: wire round-trips, presentation round-trips,
// RFC 3597 opaque handling, and NSEC type bitmaps.
#include <gtest/gtest.h>

#include "dns/rdata.hpp"
#include "dns/wire.hpp"
#include "util/strings.hpp"

namespace ldp::dns {
namespace {

Name mk(std::string_view s) { return *Name::parse(s); }

// Encode rdata (RDLENGTH + payload, no compression), then decode it back.
Rdata wire_round_trip(RRType type, const Rdata& rd) {
  ByteWriter w;
  rd.to_wire(type, w, nullptr);
  ByteReader reader(w.data());
  uint16_t rdlength = *reader.u16();
  auto back = Rdata::from_wire(type, reader, rdlength);
  EXPECT_TRUE(back.ok()) << (back.ok() ? "" : back.error().message);
  return *back;
}

Rdata text_round_trip(RRType type, const Rdata& rd) {
  std::string text = rd.to_string(type);
  auto toks = split_ws(text);
  auto back = Rdata::parse(type, toks);
  EXPECT_TRUE(back.ok()) << text << ": " << (back.ok() ? "" : back.error().message);
  return *back;
}

TEST(Rdata, ARoundTrip) {
  Rdata rd{AData{Ip4{192, 0, 2, 1}}};
  EXPECT_EQ(wire_round_trip(RRType::A, rd), rd);
  EXPECT_EQ(text_round_trip(RRType::A, rd), rd);
  EXPECT_EQ(rd.to_string(RRType::A), "192.0.2.1");
}

TEST(Rdata, AaaaRoundTrip) {
  Rdata rd{AaaaData{*Ip6::parse("2001:db8::35")}};
  EXPECT_EQ(wire_round_trip(RRType::AAAA, rd), rd);
  EXPECT_EQ(text_round_trip(RRType::AAAA, rd), rd);
}

TEST(Rdata, NsCnamePtrRoundTrip) {
  for (RRType t : {RRType::NS, RRType::CNAME, RRType::PTR}) {
    Rdata rd{NameData{mk("ns1.example.com")}};
    EXPECT_EQ(wire_round_trip(t, rd), rd);
    EXPECT_EQ(text_round_trip(t, rd), rd);
  }
}

TEST(Rdata, SoaRoundTrip) {
  SoaData soa;
  soa.mname = mk("a.root-servers.net");
  soa.rname = mk("nstld.verisign-grs.com");
  soa.serial = 2018103100;
  soa.refresh = 1800;
  soa.retry = 900;
  soa.expire = 604800;
  soa.minimum = 86400;
  Rdata rd{soa};
  EXPECT_EQ(wire_round_trip(RRType::SOA, rd), rd);
  EXPECT_EQ(text_round_trip(RRType::SOA, rd), rd);
}

TEST(Rdata, MxSrvRoundTrip) {
  Rdata mx{MxData{10, mk("mail.example.com")}};
  EXPECT_EQ(wire_round_trip(RRType::MX, mx), mx);
  EXPECT_EQ(text_round_trip(RRType::MX, mx), mx);

  Rdata srv{SrvData{1, 2, 853, mk("dns.example.com")}};
  EXPECT_EQ(wire_round_trip(RRType::SRV, srv), srv);
  EXPECT_EQ(text_round_trip(RRType::SRV, srv), srv);
}

TEST(Rdata, TxtRoundTripWithEscapes) {
  TxtData txt;
  txt.strings = {"v=spf1 -all", "quote\"inside", "ctrl\x01"};
  Rdata rd{txt};
  EXPECT_EQ(wire_round_trip(RRType::TXT, rd), rd);
  // Text form quotes each string; split_ws can't split quoted strings with
  // spaces, so text round-trip here checks only the simple one.
  TxtData simple;
  simple.strings = {"hello"};
  Rdata srd{simple};
  EXPECT_EQ(text_round_trip(RRType::TXT, srd), srd);
}

TEST(Rdata, TxtMultiStringWire) {
  TxtData txt;
  txt.strings = {std::string(255, 'x'), "b"};
  Rdata rd{txt};
  EXPECT_EQ(wire_round_trip(RRType::TXT, rd), rd);
}

TEST(Rdata, DnssecTypesRoundTrip) {
  DsData ds{20326, 8, 2, {0x12, 0x34, 0xab}};
  Rdata dsr{ds};
  EXPECT_EQ(wire_round_trip(RRType::DS, dsr), dsr);
  EXPECT_EQ(text_round_trip(RRType::DS, dsr), dsr);

  DnskeyData key;
  key.flags = 256;  // ZSK
  key.algorithm = 8;
  key.public_key.assign(128, 0x5a);  // 1024-bit key
  Rdata keyr{key};
  EXPECT_EQ(wire_round_trip(RRType::DNSKEY, keyr), keyr);
  EXPECT_EQ(text_round_trip(RRType::DNSKEY, keyr), keyr);

  RrsigData sig;
  sig.type_covered = RRType::SOA;
  sig.algorithm = 8;
  sig.labels = 0;
  sig.original_ttl = 86400;
  sig.expiration = 1540000000;
  sig.inception = 1538000000;
  sig.key_tag = 46551;
  sig.signer = mk(".");
  sig.signature.assign(256, 0xcd);  // 2048-bit signature
  Rdata sigr{sig};
  EXPECT_EQ(wire_round_trip(RRType::RRSIG, sigr), sigr);
  EXPECT_EQ(text_round_trip(RRType::RRSIG, sigr), sigr);
}

TEST(Rdata, NsecBitmapRoundTrip) {
  NsecData nsec;
  nsec.next = mk("aaa.example");
  nsec.types = {RRType::A, RRType::NS, RRType::SOA, RRType::AAAA, RRType::RRSIG,
                RRType::NSEC, RRType::CAA};  // CAA=257 exercises window 1
  Rdata rd{nsec};
  auto back = wire_round_trip(RRType::NSEC, rd);
  const auto* nd = back.get_if<NsecData>();
  ASSERT_NE(nd, nullptr);
  EXPECT_EQ(nd->next, nsec.next);
  // Bitmap sorts types; compare as sets.
  auto sorted = nsec.types;
  std::sort(sorted.begin(), sorted.end());
  auto got = nd->types;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, sorted);
}

TEST(Rdata, NaptrRoundTrip) {
  NaptrData naptr;
  naptr.order = 100;
  naptr.preference = 50;
  naptr.flags = "s";
  naptr.services = "SIP+D2U";
  naptr.regexp = "";
  naptr.replacement = mk("_sip._udp.example.com");
  Rdata rd{naptr};
  EXPECT_EQ(wire_round_trip(RRType::NAPTR, rd), rd);
  EXPECT_EQ(text_round_trip(RRType::NAPTR, rd), rd);
}

TEST(Rdata, CaaRoundTrip) {
  CaaData caa;
  caa.flags = 128;  // critical
  caa.tag = "issue";
  caa.value = "letsencrypt.org";
  Rdata rd{caa};
  EXPECT_EQ(wire_round_trip(RRType::CAA, rd), rd);
  EXPECT_EQ(text_round_trip(RRType::CAA, rd), rd);
  EXPECT_EQ(rd.to_string(RRType::CAA), "128 issue \"letsencrypt.org\"");
}

TEST(Rdata, CaaEmptyTagRejected) {
  std::vector<uint8_t> bytes = {0, 0};  // flags=0, tag_len=0
  ByteReader rd(bytes);
  EXPECT_FALSE(Rdata::from_wire(RRType::CAA, rd, 2).ok());
}

TEST(Rdata, OpaqueUnknownTypeRoundTrip) {
  OpaqueData op{{0xde, 0xad, 0xbe, 0xef}};
  Rdata rd{op};
  auto unknown = static_cast<RRType>(999);
  EXPECT_EQ(wire_round_trip(unknown, rd), rd);
  EXPECT_EQ(rd.to_string(unknown), "\\# 4 deadbeef");
  EXPECT_EQ(text_round_trip(unknown, rd), rd);
}

TEST(Rdata, OpaqueGenericFormLengthMismatch) {
  auto toks = split_ws("\\# 3 deadbeef");
  EXPECT_FALSE(Rdata::parse(static_cast<RRType>(999), toks).ok());
}

TEST(Rdata, WireLengthValidation) {
  // A record with wrong rdlength.
  std::vector<uint8_t> five(5, 0);
  ByteReader rd(five);
  EXPECT_FALSE(Rdata::from_wire(RRType::A, rd, 5).ok());

  // SOA whose rdlength cuts the u32 fields short.
  ByteWriter w;
  Rdata{SoaData{mk("a"), mk("b"), 1, 2, 3, 4, 5}}.to_wire(RRType::SOA, w, nullptr);
  auto bytes = std::vector<uint8_t>(w.data().begin(), w.data().end());
  ByteReader rd2(bytes);
  uint16_t rdlength = *rd2.u16();
  ByteReader rd3(std::span<const uint8_t>(bytes).subspan(2, rdlength - 2));
  EXPECT_FALSE(Rdata::from_wire(RRType::SOA, rd3, rdlength - 2).ok());
}

TEST(Rdata, NameCompressionInsideRdata) {
  // Two NS records with a shared suffix: second should compress against the
  // first when a compressor is supplied.
  ByteWriter w;
  NameCompressor comp;
  Rdata ns1{NameData{mk("ns1.example.com")}};
  Rdata ns2{NameData{mk("ns2.example.com")}};
  ns1.to_wire(RRType::NS, w, &comp);
  size_t first_len = w.size();
  ns2.to_wire(RRType::NS, w, &comp);
  size_t second_len = w.size() - first_len;
  EXPECT_LT(second_len, first_len);  // pointer beats repeating example.com

  // And both decode correctly from the concatenated buffer.
  ByteReader rd(w.data());
  uint16_t l1 = *rd.u16();
  auto back1 = Rdata::from_wire(RRType::NS, rd, l1);
  ASSERT_TRUE(back1.ok());
  EXPECT_EQ(*back1, ns1);
  uint16_t l2 = *rd.u16();
  auto back2 = Rdata::from_wire(RRType::NS, rd, l2);
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(*back2, ns2);
}

TEST(RRTypeStrings, RoundTrip) {
  for (RRType t : {RRType::A, RRType::NS, RRType::CNAME, RRType::SOA, RRType::PTR,
                   RRType::MX, RRType::TXT, RRType::AAAA, RRType::SRV, RRType::DS,
                   RRType::RRSIG, RRType::NSEC, RRType::DNSKEY}) {
    auto s = rrtype_to_string(t);
    auto back = rrtype_from_string(s);
    ASSERT_TRUE(back.ok()) << s;
    EXPECT_EQ(*back, t);
  }
  EXPECT_EQ(rrtype_to_string(static_cast<RRType>(999)), "TYPE999");
  EXPECT_EQ(*rrtype_from_string("TYPE999"), static_cast<RRType>(999));
  EXPECT_FALSE(rrtype_from_string("BOGUS").ok());
}

}  // namespace
}  // namespace ldp::dns
