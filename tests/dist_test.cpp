// Distributed-replay regression suite (`ctest -L dist` / check_dist): the
// control protocol codecs and FrameReader, the shared source partition,
// multi-process replay through real forked ldp-worker processes (counters,
// kill -9 → respawn → resume exactness, respawn-budget exhaustion and the
// in-process fallback, drift correction with a deliberately skewed worker
// clock), and the lifted sharded-checkpoint restriction (per-shard files,
// merged resume). Also what the tsan-dist preset runs under ThreadSanitizer.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "replay/checkpoint.hpp"
#include "replay/dist/controller.hpp"
#include "replay/dist/protocol.hpp"
#include "replay/engine.hpp"
#include "server/background.hpp"
#include "synth/generator.hpp"
#include "trace/binary.hpp"
#include "zone/parser.hpp"

#ifndef LDP_WORKER_BIN
#error "LDP_WORKER_BIN must point at the built ldp-worker executable"
#endif

namespace ldp {
namespace {

using replay::dist::AssignMsg;
using replay::dist::BarrierMsg;
using replay::dist::Frame;
using replay::dist::FrameReader;
using replay::dist::FrameType;
using trace::TraceRecord;

server::AuthServer wildcard_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

std::vector<TraceRecord> small_trace(TimeNs gap = 5 * kMilli,
                                     TimeNs duration = 2 * kSecond,
                                     size_t clients = 12) {
  synth::FixedTraceSpec spec;
  spec.interarrival_ns = gap;
  spec.duration_ns = duration;
  spec.client_count = clients;
  spec.seed = 7;
  return synth::make_fixed_trace(spec);
}

/// Write `trace` to a unique .ldpb under /tmp and return the path.
std::string write_trace(const std::vector<TraceRecord>& trace,
                        const char* tag) {
  std::string path = "/tmp/ldp_dist_test_" + std::string(tag) + "_" +
                     std::to_string(::getpid()) + ".ldpb";
  trace::BinaryWriter w;
  for (const auto& rec : trace) w.add(rec);
  EXPECT_TRUE(w.save(path).ok());
  return path;
}

replay::dist::DistConfig base_config(const Endpoint& server,
                                     const std::string& trace_path) {
  replay::dist::DistConfig cfg;
  cfg.workers = 2;
  cfg.worker_bin = LDP_WORKER_BIN;
  cfg.trace_path = trace_path;
  cfg.server = server;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.heartbeat_interval = 100 * kMilli;
  cfg.checkpoint_interval = 200 * kMilli;
  cfg.start_lead = 400 * kMilli;
  return cfg;
}

// --- protocol codecs -------------------------------------------------------

TEST(DistProtocol, HelloAssignStartRoundTrip) {
  replay::dist::HelloMsg hello;
  hello.worker = 3;
  hello.pid = 4242;
  auto h = replay::dist::parse_hello(replay::dist::encode_hello(hello));
  ASSERT_TRUE(h.ok()) << h.error().message;
  EXPECT_EQ(h->version, replay::dist::kProtocolVersion);
  EXPECT_EQ(h->worker, 3);
  EXPECT_EQ(h->pid, 4242);

  AssignMsg assign;
  assign.index = 2;
  assign.count = 4;
  assign.server = Endpoint{IpAddr{Ip4{127, 0, 0, 1}}, 5353};
  assign.timed = false;
  assign.batched_io = false;
  assign.distributors = 3;
  assign.queriers = 5;
  assign.heartbeat_interval = 123 * kMilli;
  assign.checkpoint_interval = 456 * kMilli;
  assign.fault_spec = "loss:0.05,seed:42";
  assign.resume = "ldp-checkpoint v1\nmulti\nline blob\nend\n";
  auto a = replay::dist::parse_assign(replay::dist::encode_assign(assign));
  ASSERT_TRUE(a.ok()) << a.error().message;
  EXPECT_EQ(a->index, 2u);
  EXPECT_EQ(a->count, 4u);
  EXPECT_EQ(a->server.to_string(), "127.0.0.1:5353");
  EXPECT_FALSE(a->timed);
  EXPECT_FALSE(a->batched_io);
  EXPECT_EQ(a->distributors, 3u);
  EXPECT_EQ(a->queriers, 5u);
  EXPECT_EQ(a->heartbeat_interval, 123 * kMilli);
  EXPECT_EQ(a->checkpoint_interval, 456 * kMilli);
  EXPECT_EQ(a->fault_spec, "loss:0.05,seed:42");
  EXPECT_EQ(a->resume, assign.resume);  // blob survives verbatim

  // A fresh assignment carries no resume blob and no fault spec.
  assign.resume.clear();
  assign.fault_spec.clear();
  auto a2 = replay::dist::parse_assign(replay::dist::encode_assign(assign));
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(a2->resume.empty());
  EXPECT_TRUE(a2->fault_spec.empty());

  // Out-of-range slice indices are a parse error, not a crash later.
  assign.index = 9;
  EXPECT_FALSE(
      replay::dist::parse_assign(replay::dist::encode_assign(assign)).ok());

  replay::dist::StartMsg start;
  start.trace_origin = 123456789;
  start.start_at = 987654321;
  start.offset = -250 * kMilli;
  auto s = replay::dist::parse_start(replay::dist::encode_start(start));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->trace_origin, start.trace_origin);
  EXPECT_EQ(s->start_at, start.start_at);
  EXPECT_EQ(s->offset, start.offset);
}

TEST(DistProtocol, BarrierKindsRoundTrip) {
  for (auto kind : {BarrierMsg::Kind::Ready, BarrierMsg::Kind::Probe,
                    BarrierMsg::Kind::Echo}) {
    BarrierMsg m{kind, 7, 111, kind == BarrierMsg::Kind::Echo ? 222 : 0};
    auto r = replay::dist::parse_barrier(replay::dist::encode_barrier(m));
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_EQ(r->kind, kind);
    if (kind != BarrierMsg::Kind::Ready) {
      EXPECT_EQ(r->seq, 7u);
      EXPECT_EQ(r->t_ctrl, 111);
    }
    if (kind == BarrierMsg::Kind::Echo) {
      EXPECT_EQ(r->t_worker, 222);
    }
  }
  EXPECT_FALSE(replay::dist::parse_barrier("frobnicate 1 2").ok());
}

TEST(DistProtocol, ReportRoundTripPreservesCountersAndSends) {
  replay::EngineReport r;
  r.queries_sent = 100;
  r.responses_received = 93;
  r.send_errors = 2;
  r.connections_opened = 5;
  r.max_in_flight = 17;
  r.worker_crashes = 1;
  r.workers_respawned = 1;
  r.max_drift_ns = 150 * kMilli;
  r.lifecycle.timeouts = 4;
  r.lifecycle.retries = 3;
  r.impairments.dropped = 7;
  r.replay_start = 1000000;
  r.replay_end = 9000000;
  r.latency_hist.add(2 * kMilli);
  r.latency_hist.add(5 * kMilli);
  replay::SendRecord sr;
  sr.trace_time = 42;
  sr.send_time = 1000042;
  sr.latency = 300000;
  sr.source = IpAddr{Ip4{10, 0, 0, 9}};
  sr.querier = 2;
  sr.retries = 1;
  sr.outcome = replay::QueryOutcome::Answered;
  r.sends.push_back(sr);

  auto back = replay::dist::parse_report(replay::dist::encode_report(r));
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back->queries_sent, r.queries_sent);
  EXPECT_EQ(back->responses_received, r.responses_received);
  EXPECT_EQ(back->send_errors, r.send_errors);
  EXPECT_EQ(back->connections_opened, r.connections_opened);
  EXPECT_EQ(back->max_in_flight, r.max_in_flight);
  EXPECT_EQ(back->worker_crashes, r.worker_crashes);
  EXPECT_EQ(back->workers_respawned, r.workers_respawned);
  EXPECT_EQ(back->max_drift_ns, r.max_drift_ns);
  EXPECT_EQ(back->lifecycle.timeouts, r.lifecycle.timeouts);
  EXPECT_EQ(back->lifecycle.retries, r.lifecycle.retries);
  EXPECT_EQ(back->impairments.dropped, r.impairments.dropped);
  EXPECT_EQ(back->replay_start, r.replay_start);
  EXPECT_EQ(back->replay_end, r.replay_end);
  EXPECT_EQ(back->latency_hist.count(), r.latency_hist.count());
  ASSERT_EQ(back->sends.size(), 1u);
  EXPECT_EQ(back->sends[0].trace_time, sr.trace_time);
  EXPECT_EQ(back->sends[0].send_time, sr.send_time);
  EXPECT_EQ(back->sends[0].latency, sr.latency);
  EXPECT_EQ(back->sends[0].source, sr.source);
  EXPECT_EQ(back->sends[0].querier, sr.querier);
  EXPECT_EQ(back->sends[0].retries, sr.retries);
  EXPECT_EQ(back->sends[0].outcome, sr.outcome);

  EXPECT_FALSE(replay::dist::parse_report("not a report").ok());
}

// --- FrameReader -----------------------------------------------------------

TEST(DistProtocol, FrameReaderReassemblesByteByByte) {
  // Build two frames on the wire: len | type | payload.
  auto wire_frame = [](FrameType t, const std::string& payload) {
    std::string out;
    uint32_t len = static_cast<uint32_t>(payload.size()) + 1;
    for (int shift = 24; shift >= 0; shift -= 8)
      out.push_back(static_cast<char>((len >> shift) & 0xff));
    out.push_back(static_cast<char>(t));
    out += payload;
    return out;
  };
  std::string wire = wire_frame(FrameType::Heartbeat, "12345\n") +
                     wire_frame(FrameType::Checkpoint, std::string(7000, 'x'));

  FrameReader reader;
  std::vector<Frame> got;
  for (char c : wire) {
    reader.feed(reinterpret_cast<const uint8_t*>(&c), 1);
    while (true) {
      auto f = reader.next();
      ASSERT_TRUE(f.ok()) << f.error().message;
      if (!f->has_value()) break;
      got.push_back(std::move(**f));
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, FrameType::Heartbeat);
  EXPECT_EQ(got[0].payload, "12345\n");
  EXPECT_EQ(got[1].type, FrameType::Checkpoint);
  EXPECT_EQ(got[1].payload.size(), 7000u);
}

TEST(DistProtocol, FrameReaderRejectsOversizedAndEmptyFrames) {
  // Oversized: length prefix claims more than kMaxFramePayload.
  uint8_t big[5] = {0xff, 0xff, 0xff, 0xff, 1};
  FrameReader reader;
  reader.feed(big, sizeof(big));
  EXPECT_FALSE(reader.next().ok());

  // Zero length can't even hold the type byte.
  uint8_t zero[4] = {0, 0, 0, 0};
  FrameReader reader2;
  reader2.feed(zero, sizeof(zero));
  EXPECT_FALSE(reader2.next().ok());
}

// --- the shared partition --------------------------------------------------

TEST(DistPartition, StickyDeterministicAndComplete) {
  auto trace = small_trace();
  auto slices = replay::dist::partition_by_source(trace, 3);
  ASSERT_EQ(slices.size(), 3u);

  size_t total = 0;
  std::unordered_map<IpAddr, size_t, IpAddrHash> owner;
  for (size_t i = 0; i < slices.size(); ++i) {
    total += slices[i].size();
    for (const auto& rec : slices[i]) {
      auto [it, fresh] = owner.emplace(rec.src.addr, i);
      EXPECT_EQ(it->second, i) << "source split across slices";
      (void)fresh;
    }
  }
  EXPECT_EQ(total, trace.size());  // every query record lands exactly once

  // Deterministic: worker and controller compute the same partition
  // independently, so a second call must agree slice by slice.
  auto again = replay::dist::partition_by_source(trace, 3);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(again[i].size(), slices[i].size());
    for (size_t j = 0; j < slices[i].size(); ++j)
      EXPECT_EQ(again[i][j].timestamp, slices[i][j].timestamp);
  }

  // More workers than sources: the tail slices are empty, nothing is lost.
  auto wide = replay::dist::partition_by_source(trace, 40);
  size_t wide_total = 0;
  for (const auto& s : wide) wide_total += s.size();
  EXPECT_EQ(wide_total, trace.size());
}

// --- multi-process replay --------------------------------------------------

class DistReplay : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bg = server::BackgroundServer::start(wildcard_server());
    ASSERT_TRUE(bg.ok()) << bg.error().message;
    server_ = std::move(*bg);
  }
  std::unique_ptr<server::BackgroundServer> server_;
};

TEST_F(DistReplay, TwoWorkersReplayEverythingOnce) {
  auto trace = small_trace();
  auto path = write_trace(trace, "two");
  auto cfg = base_config(server_->endpoint(), path);
  auto dr = replay::dist::run_distributed(cfg);
  ASSERT_TRUE(dr.ok()) << dr.error().message;
  EXPECT_EQ(dr->report.queries_sent, trace.size());
  EXPECT_EQ(dr->report.responses_received, trace.size());
  EXPECT_EQ(dr->report.worker_crashes, 0u);
  EXPECT_EQ(dr->report.workers_respawned, 0u);
  ASSERT_EQ(dr->workers.size(), 2u);
  EXPECT_TRUE(dr->any_misalign);
  // Same host, same clock: the barrier start lands within scheduling noise.
  EXPECT_LT(dr->max_abs_misalign, 50 * kMilli);
  std::remove(path.c_str());
}

TEST_F(DistReplay, KillNineRespawnsAndResumesWithExactCounters) {
  auto trace = small_trace();
  auto path = write_trace(trace, "kill");
  auto cfg = base_config(server_->endpoint(), path);

  auto clean = replay::dist::run_distributed(cfg);
  ASSERT_TRUE(clean.ok()) << clean.error().message;

  // SIGKILL worker 1 at 0.9 s — past several 200 ms checkpoints — and let
  // supervision respawn it from the shipped snapshot.
  cfg.kill_worker = 1;
  cfg.kill_after = 900 * kMilli;
  auto killed = replay::dist::run_distributed(cfg);
  ASSERT_TRUE(killed.ok()) << killed.error().message;

  EXPECT_EQ(killed->report.worker_crashes, 1u);
  EXPECT_EQ(killed->report.workers_respawned, 1u);
  EXPECT_EQ(killed->workers[1].crashes, 1u);
  // The exactness contract: nothing lost, nothing double-counted.
  EXPECT_EQ(killed->report.queries_sent, clean->report.queries_sent);
  EXPECT_EQ(killed->report.queries_sent, trace.size());
  EXPECT_EQ(killed->report.responses_received,
            clean->report.responses_received);
  std::remove(path.c_str());
}

TEST_F(DistReplay, ExhaustedRespawnBudgetFallsBackInProcess) {
  auto trace = small_trace();
  auto path = write_trace(trace, "budget");
  auto cfg = base_config(server_->endpoint(), path);
  cfg.respawn_budget = 0;  // first crash exhausts the budget
  cfg.kill_worker = 0;
  cfg.kill_after = 900 * kMilli;
  auto dr = replay::dist::run_distributed(cfg);
  ASSERT_TRUE(dr.ok()) << dr.error().message;
  EXPECT_EQ(dr->report.worker_crashes, 1u);
  EXPECT_EQ(dr->report.workers_respawned, 0u);
  EXPECT_TRUE(dr->workers[0].fallback);
  // The controller replayed the dead slice itself, from the last shipped
  // checkpoint: totals still exact.
  EXPECT_EQ(dr->report.queries_sent, trace.size());
  EXPECT_EQ(dr->report.responses_received, trace.size());
  std::remove(path.c_str());
}

TEST_F(DistReplay, DriftCorrectionAlignsASkewedWorkerClock) {
  auto trace = small_trace(5 * kMilli, kSecond, 8);
  auto path = write_trace(trace, "drift");
  auto cfg = base_config(server_->endpoint(), path);
  // Worker 1 believes its clock reads 150 ms ahead of the controller's.
  cfg.worker_skew = {0, 150 * kMilli};

  auto corrected = replay::dist::run_distributed(cfg);
  ASSERT_TRUE(corrected.ok()) << corrected.error().message;
  // The probe rounds must actually see the skew...
  EXPECT_GT(corrected->report.max_drift_ns, 100 * kMilli);
  EXPECT_LT(corrected->report.max_drift_ns, 200 * kMilli);
  // ...and the corrected start instant cancels it: both workers fire
  // within scheduling noise of the barrier.
  EXPECT_TRUE(corrected->any_misalign);
  EXPECT_LT(corrected->max_abs_misalign, 50 * kMilli);

  // Regression guard: with correction disabled the skewed worker starts a
  // full skew early — the failure mode the correction exists to prevent.
  cfg.correct_drift = false;
  auto uncorrected = replay::dist::run_distributed(cfg);
  ASSERT_TRUE(uncorrected.ok()) << uncorrected.error().message;
  EXPECT_GT(uncorrected->max_abs_misalign, 100 * kMilli);
  EXPECT_LT(uncorrected->max_abs_misalign, 250 * kMilli);
  std::remove(path.c_str());
}

// --- sharded checkpoints (the lifted engine restriction) -------------------

class ShardedCheckpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bg = server::BackgroundServer::start(wildcard_server());
    ASSERT_TRUE(bg.ok()) << bg.error().message;
    server_ = std::move(*bg);
  }

  // Timed pacing: an untimed blast overruns socket buffers and loses
  // responses nondeterministically, which would break the
  // resume-vs-uninterrupted exact-equality assertions below.
  replay::EngineConfig engine_config(size_t shards) {
    replay::EngineConfig cfg;
    cfg.server = server_->endpoint();
    cfg.shards = shards;
    cfg.distributors = 1;
    cfg.queriers_per_distributor = 1;
    cfg.drain_grace = 2 * kSecond;
    return cfg;
  }

  std::unique_ptr<server::BackgroundServer> server_;
};

TEST_F(ShardedCheckpoint, PerShardFilesWrittenAndResumeMatchesUninterrupted) {
  auto trace = small_trace();
  const std::string ckpt =
      "/tmp/ldp_dist_test_shardckpt_" + std::to_string(::getpid());

  auto uninterrupted =
      replay::QueryEngine(engine_config(4)).replay(trace);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.error().message;
  EXPECT_EQ(uninterrupted->queries_sent, trace.size());

  // Sharded + checkpointing — the combination the engine used to refuse.
  auto cfg = engine_config(4);
  cfg.checkpoint_path = ckpt;
  auto checkpointed = replay::QueryEngine(cfg).replay(trace);
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.error().message;
  EXPECT_EQ(checkpointed->queries_sent, uninterrupted->queries_sent);

  // Four per-shard files, each a parsable snapshot of a *different* slice.
  auto states = replay::load_sharded_checkpoints(ckpt, 4);
  ASSERT_TRUE(states.ok()) << states.error().message;
  ASSERT_EQ(states->size(), 4u);
  uint64_t from_shards = 0;
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NE((*states)[i].trace_hash, 0u) << "shard " << i;
    from_shards += (*states)[i].partial.queries_sent;
    for (size_t j = i + 1; j < 4; ++j)
      EXPECT_NE((*states)[i].trace_hash, (*states)[j].trace_hash);
  }
  EXPECT_EQ(from_shards, trace.size());

  // Resuming from the complete snapshots replays nothing and reproduces
  // the uninterrupted totals exactly.
  auto resume_cfg = engine_config(4);
  resume_cfg.resume_shards = &*states;
  auto resumed = replay::QueryEngine(resume_cfg).replay(trace);
  ASSERT_TRUE(resumed.ok()) << resumed.error().message;
  EXPECT_EQ(resumed->queries_sent, uninterrupted->queries_sent);
  EXPECT_EQ(resumed->responses_received, uninterrupted->responses_received);

  // A shard that died before its first snapshot (missing file) comes back
  // default-constructed and replays its slice from the start; totals are
  // still exact.
  ASSERT_EQ(std::remove(replay::shard_checkpoint_path(ckpt, 2).c_str()), 0);
  auto partial = replay::load_sharded_checkpoints(ckpt, 4);
  ASSERT_TRUE(partial.ok()) << partial.error().message;
  EXPECT_EQ((*partial)[2].trace_hash, 0u);
  auto resume2_cfg = engine_config(4);
  resume2_cfg.resume_shards = &*partial;
  auto resumed2 = replay::QueryEngine(resume2_cfg).replay(trace);
  ASSERT_TRUE(resumed2.ok()) << resumed2.error().message;
  EXPECT_EQ(resumed2->queries_sent, uninterrupted->queries_sent);
  EXPECT_EQ(resumed2->responses_received, uninterrupted->responses_received);

  for (size_t i = 0; i < 4; ++i)
    std::remove(replay::shard_checkpoint_path(ckpt, i).c_str());
}

TEST_F(ShardedCheckpoint, RemainingInvalidCombinationsStayErrors) {
  auto trace = small_trace(5 * kMilli, 200 * kMilli, 4);

  // A single whole-trace resume state cannot drive a sharded run.
  replay::CheckpointState single;
  single.trace_hash = 1;
  auto cfg = engine_config(2);
  cfg.resume = &single;
  auto r = replay::QueryEngine(cfg).replay(trace);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("resume_shards"), std::string::npos);

  // resume_shards must match the shard count...
  std::vector<replay::CheckpointState> two(3);
  auto cfg2 = engine_config(2);
  cfg2.resume_shards = &two;
  ASSERT_FALSE(replay::QueryEngine(cfg2).replay(trace).ok());

  // ...and the in-memory sink stays single-shard only.
  auto cfg3 = engine_config(2);
  cfg3.checkpoint_sink = [](const replay::CheckpointState&) {};
  auto r3 = replay::QueryEngine(cfg3).replay(trace);
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.error().message.find("checkpoint_sink"), std::string::npos);

  // No shard file at all means there is nothing to resume.
  EXPECT_FALSE(
      replay::load_sharded_checkpoints("/tmp/ldp_dist_no_such_ckpt", 2).ok());
}

}  // namespace
}  // namespace ldp
