#!/usr/bin/env bash
# End-to-end smoke test of the command-line tools:
#   ldp-synth -> ldp-trace-convert (pcap -> txt -> ldpb -> erf -> pcap)
#   -> ldp-zone-construct -> ldp-server + ldp-replay over loopback.
# Invoked by ctest with the tool paths as arguments.
set -euo pipefail

SYNTH=$1
CONVERT=$2
ZONECONSTRUCT=$3
SERVER=$4
REPLAY=$5
WORKER=$6

WORK=$(mktemp -d)
trap 'kill $SERVER_PID $REPLAY_PID 2>/dev/null || true; rm -rf "$WORK"' EXIT
REPLAY_PID=""
cd "$WORK"

echo "== synth: generate a small workload in every format"
$SYNTH fixed --gap-us 5000 --duration 2 --clients 20 --seed 7 trace.pcap
$SYNTH root --rate 200 --duration 2 --seed 7 root.ldpb
$SYNTH attack --rate 500 --duration 1 --victim example.com atk.txt

echo "== convert: pcap -> txt -> ldpb -> erf -> pcap"
$CONVERT trace.pcap trace.txt
$CONVERT trace.txt trace.ldpb
$CONVERT trace.ldpb trace.erf
$CONVERT trace.erf trace2.pcap
# The round trip preserves the query count.
n1=$(grep -vc '^#' trace.txt || true)
$CONVERT trace2.pcap trace2.txt
n2=$(grep -vc '^#' trace2.txt || true)
[ "$n1" = "$n2" ] || { echo "round-trip count mismatch: $n1 vs $n2"; exit 1; }

echo "== zone-construct: build zones from a capture"
$ZONECONSTRUCT trace.pcap zones_out
[ -f zones_out/views.conf ] || { echo "no views.conf produced"; exit 1; }

echo "== server + replay over loopback"
cat > example.zone <<'EOF'
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
EOF
PORT=$(( (RANDOM % 10000) + 20000 ))
$SERVER --port $PORT example.zone &
SERVER_PID=$!
sleep 0.5

OUT=$($REPLAY --fast trace.ldpb 127.0.0.1 $PORT)
echo "$OUT"
echo "$OUT" | grep -q "queries sent:       400" || { echo "unexpected query count"; exit 1; }
RESP=$(echo "$OUT" | sed -n 's/responses received: \([0-9]*\).*/\1/p')
[ "$RESP" -gt 0 ] || { echo "no responses received"; exit 1; }

echo "== replay with live what-if mutation (--transport tcp --dnssec)"
OUT2=$($REPLAY --fast --transport tcp --dnssec --prefix smoke trace.ldpb 127.0.0.1 $PORT)
echo "$OUT2"
echo "$OUT2" | grep -q "connections opened:" || exit 1

echo "== checkpoint / kill -9 / resume round trip"
# Paced replay (2s trace) with frequent snapshots; kill it mid-run, then
# resume from the checkpoint. The merged totals must account for every
# query in the trace — nothing lost across the crash.
CKPT=ckpt.state
$REPLAY --checkpoint $CKPT --checkpoint-interval 0.2 trace.ldpb 127.0.0.1 $PORT \
  > resume_first.log 2>&1 &
REPLAY_PID=$!
sleep 1
kill -9 $REPLAY_PID 2>/dev/null || true
wait $REPLAY_PID 2>/dev/null || true
REPLAY_PID=""
[ -f $CKPT ] || { echo "no checkpoint written before the kill"; exit 1; }
# 2>&1: the "resuming from" banner goes to stderr.
OUT3=$($REPLAY --checkpoint $CKPT --resume trace.ldpb 127.0.0.1 $PORT 2>&1)
echo "$OUT3"
echo "$OUT3" | grep -q "resuming from" || { echo "resume did not load the checkpoint"; exit 1; }
echo "$OUT3" | grep -q "queries sent:       400" || { echo "resumed run lost queries"; exit 1; }

kill $SERVER_PID
wait $SERVER_PID 2>/dev/null || true

echo "== hardened server: --limits/--overload accepted, replay still answered"
PORT2=$(( (RANDOM % 10000) + 20000 ))
$SERVER --port $PORT2 \
  --limits max-conns:32,quota:16,read-deadline:2s,max-partial:4096 \
  --overload policy:refuse,high:28,low:14 example.zone 2> hardened.log &
SERVER_PID=$!
sleep 0.5
OUT4=$($REPLAY --fast trace.ldpb 127.0.0.1 $PORT2)
echo "$OUT4"
RESP4=$(echo "$OUT4" | sed -n 's/responses received: \([0-9]*\).*/\1/p')
[ "$RESP4" -gt 0 ] || { echo "hardened server answered nothing"; exit 1; }
kill $SERVER_PID
wait $SERVER_PID 2>/dev/null || true
grep -q "limits: max-conns:32" hardened.log || { echo "limits banner missing"; exit 1; }
grep -q "overload: policy:refuse" hardened.log || { echo "overload banner missing"; exit 1; }
grep -q "connections:" hardened.log || { echo "connection summary missing"; exit 1; }

echo "== sharded server + sharded replay over loopback (--shards 2)"
PORT3=$(( (RANDOM % 10000) + 20000 ))
$SERVER --port $PORT3 --shards 2 example.zone 2> sharded.log &
SERVER_PID=$!
sleep 0.5
OUT5=$($REPLAY --fast --shards 2 trace.ldpb 127.0.0.1 $PORT3 2> replay_sharded.log)
echo "$OUT5"
echo "$OUT5" | grep -q "queries sent:       400" || { echo "sharded replay lost queries"; exit 1; }
RESP5=$(echo "$OUT5" | sed -n 's/responses received: \([0-9]*\).*/\1/p')
[ "$RESP5" -gt 0 ] || { echo "sharded server answered nothing"; exit 1; }
grep -q "shards: 2 source-partitioned" replay_sharded.log \
  || { echo "replay shard banner missing"; exit 1; }
kill $SERVER_PID
wait $SERVER_PID 2>/dev/null || true
grep -q "shards: 2 (SO_REUSEPORT" sharded.log || { echo "server shard banner missing"; exit 1; }
grep -q "shard 0 connections:" sharded.log || { echo "per-shard summary missing"; exit 1; }
grep -q "shard 1 connections:" sharded.log || { echo "per-shard summary missing"; exit 1; }
grep -q "connections (merged):" sharded.log || { echo "merged summary missing"; exit 1; }

echo "== --shards is strictly validated on both tools"
if $SERVER --shards 0 example.zone 2> badshards.log; then
  echo "--shards 0 was accepted"; exit 1
fi
grep -q "bad --shards" badshards.log || { echo "missing server --shards error"; exit 1; }
if $REPLAY --shards banana trace.ldpb 127.0.0.1 $PORT3 2>> badshards.log; then
  echo "--shards banana was accepted"; exit 1
fi
grep -q "plain integer" badshards.log || { echo "missing replay --shards error"; exit 1; }

echo "== sharded checkpoint / kill -9 / --shards 4 --resume round trip"
PORT4=$(( (RANDOM % 10000) + 20000 ))
$SERVER --port $PORT4 example.zone &
SERVER_PID=$!
sleep 0.5
# Paced sharded replay writing per-shard snapshots; kill it mid-run, then a
# sharded resume merges the .shardN files. Totals must cover every query.
CKPT4=ckpt4.state
$REPLAY --shards 4 --checkpoint $CKPT4 --checkpoint-interval 0.2 \
  trace.ldpb 127.0.0.1 $PORT4 > shard_resume_first.log 2>&1 &
REPLAY_PID=$!
sleep 1
kill -9 $REPLAY_PID 2>/dev/null || true
wait $REPLAY_PID 2>/dev/null || true
REPLAY_PID=""
ls $CKPT4.shard* >/dev/null 2>&1 || { echo "no per-shard checkpoints written"; exit 1; }
OUT6=$($REPLAY --shards 4 --checkpoint $CKPT4 --resume trace.ldpb 127.0.0.1 $PORT4 2>&1)
echo "$OUT6"
echo "$OUT6" | grep -q "resuming from $CKPT4.shard\*" \
  || { echo "sharded resume did not load the checkpoints"; exit 1; }
echo "$OUT6" | grep -q "queries sent:       400" || { echo "sharded resume lost queries"; exit 1; }

echo "== distributed replay: --workers 2 forked worker processes"
OUT7=$($REPLAY --workers 2 --worker-bin $WORKER trace.ldpb 127.0.0.1 $PORT4 2>&1)
echo "$OUT7"
echo "$OUT7" | grep -q "workers: 2 replay processes" || { echo "dist banner missing"; exit 1; }
echo "$OUT7" | grep -q "queries sent:       400" || { echo "dist replay lost queries"; exit 1; }
echo "$OUT7" | grep -q "worker crashes:     0" || { echo "clean dist run reported crashes"; exit 1; }

echo "== distributed replay: kill -9 a worker, supervise, respawn, resume"
OUT8=$($REPLAY --workers 2 --worker-bin $WORKER --checkpoint-interval 0.3 \
  --kill-worker 1 --kill-after 1.2 trace.ldpb 127.0.0.1 $PORT4 2>&1)
echo "$OUT8"
echo "$OUT8" | grep -q "respawning (1/" || { echo "no respawn after the kill"; exit 1; }
echo "$OUT8" | grep -q "worker crashes:     1 (respawned 1)" \
  || { echo "crash counters wrong"; exit 1; }
echo "$OUT8" | grep -q "queries sent:       400" \
  || { echo "crash-resume dist run lost queries"; exit 1; }
kill $SERVER_PID
wait $SERVER_PID 2>/dev/null || true

echo "== --workers is strictly validated"
if $REPLAY --workers 0 trace.ldpb 127.0.0.1 $PORT4 2> badworkers.log; then
  echo "--workers 0 was accepted"; exit 1
fi
grep -q "between 1 and 64" badworkers.log || { echo "missing --workers range error"; exit 1; }
if $REPLAY --workers banana trace.ldpb 127.0.0.1 $PORT4 2>> badworkers.log; then
  echo "--workers banana was accepted"; exit 1
fi
grep -q "plain integer" badworkers.log || { echo "missing --workers parse error"; exit 1; }
if $REPLAY --workers 2 --shards 2 trace.ldpb 127.0.0.1 $PORT4 2>> badworkers.log; then
  echo "--workers + --shards conflict was accepted"; exit 1
fi
grep -q "incompatible" badworkers.log || { echo "missing conflict error"; exit 1; }
if $REPLAY --kill-worker 1 trace.ldpb 127.0.0.1 $PORT4 2>> badworkers.log; then
  echo "--kill-worker without --workers was accepted"; exit 1
fi
grep -q "need --workers" badworkers.log || { echo "missing dependency error"; exit 1; }

echo "== hardened server: malformed specs are strict errors"
if $SERVER --limits max-conn:32 example.zone 2> badspec.log; then
  echo "bad --limits spec was accepted"; exit 1
fi
grep -q "bad --limits spec" badspec.log || { echo "missing --limits error"; exit 1; }
if $SERVER --overload policy:reboot,high:8 example.zone 2>> badspec.log; then
  echo "bad --overload spec was accepted"; exit 1
fi
grep -q "bad --overload spec" badspec.log || { echo "missing --overload error"; exit 1; }

echo "CLI smoke test passed"
