// Tests for the zone store: lookup classification (answer / referral /
// CNAME / NODATA / NXDOMAIN), wildcard synthesis, glue collection, empty
// non-terminals, and validation.
#include <gtest/gtest.h>

#include "zone/parser.hpp"
#include "zone/view.hpp"
#include "zone/zone.hpp"

namespace ldp::zone {
namespace {

using dns::AData;
using dns::NameData;
using dns::Rdata;
using dns::RRType;

Name mk(std::string_view s) { return *Name::parse(s); }

ResourceRecord rr(std::string_view name, RRType type, Rdata rd, uint32_t ttl = 3600) {
  return ResourceRecord{mk(name), type, dns::RRClass::IN, ttl, std::move(rd)};
}

Zone example_zone() {
  Zone z(mk("example.com"));
  auto add = [&z](ResourceRecord record) {
    auto r = z.add(record);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  };
  add(rr("example.com", RRType::SOA,
         Rdata{dns::SoaData{mk("ns1.example.com"), mk("admin.example.com"), 1, 7200,
                            900, 1209600, 300}}));
  add(rr("example.com", RRType::NS, Rdata{NameData{mk("ns1.example.com")}}));
  add(rr("example.com", RRType::NS, Rdata{NameData{mk("ns2.example.com")}}));
  add(rr("ns1.example.com", RRType::A, Rdata{AData{Ip4{192, 0, 2, 1}}}));
  add(rr("ns2.example.com", RRType::A, Rdata{AData{Ip4{192, 0, 2, 2}}}));
  add(rr("www.example.com", RRType::A, Rdata{AData{Ip4{192, 0, 2, 80}}}));
  add(rr("alias.example.com", RRType::CNAME, Rdata{NameData{mk("www.example.com")}}));
  // Delegation to a child zone, with in-zone glue.
  add(rr("sub.example.com", RRType::NS, Rdata{NameData{mk("ns.sub.example.com")}}));
  add(rr("ns.sub.example.com", RRType::A, Rdata{AData{Ip4{192, 0, 2, 100}}}));
  // Wildcard.
  add(rr("*.wild.example.com", RRType::TXT, Rdata{dns::TxtData{{"wildcard"}}}));
  // Deep name creating empty non-terminals.
  add(rr("a.b.c.example.com", RRType::A, Rdata{AData{Ip4{192, 0, 2, 50}}}));
  return z;
}

TEST(Zone, PositiveAnswer) {
  Zone z = example_zone();
  auto res = z.lookup(mk("www.example.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::Answer);
  ASSERT_EQ(res.answers.size(), 1u);
  EXPECT_EQ(res.answers[0].name, mk("www.example.com"));
  EXPECT_EQ(res.answers[0].type, RRType::A);
}

TEST(Zone, ApexAnswer) {
  Zone z = example_zone();
  auto res = z.lookup(mk("example.com"), RRType::NS);
  EXPECT_EQ(res.status, LookupStatus::Answer);
  ASSERT_EQ(res.answers.size(), 1u);
  EXPECT_EQ(res.answers[0].size(), 2u);  // both NS records in one set
}

TEST(Zone, NoDataHasSoa) {
  Zone z = example_zone();
  auto res = z.lookup(mk("www.example.com"), RRType::AAAA);
  EXPECT_EQ(res.status, LookupStatus::NoData);
  EXPECT_TRUE(res.answers.empty());
  ASSERT_EQ(res.authorities.size(), 1u);
  EXPECT_EQ(res.authorities[0].type, RRType::SOA);
}

TEST(Zone, NxDomainHasSoa) {
  Zone z = example_zone();
  auto res = z.lookup(mk("nothere.example.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::NxDomain);
  ASSERT_EQ(res.authorities.size(), 1u);
  EXPECT_EQ(res.authorities[0].type, RRType::SOA);
}

TEST(Zone, CnameReturned) {
  Zone z = example_zone();
  auto res = z.lookup(mk("alias.example.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::Cname);
  ASSERT_EQ(res.answers.size(), 1u);
  EXPECT_EQ(res.answers[0].type, RRType::CNAME);
}

TEST(Zone, CnameQueryAnswersDirectly) {
  Zone z = example_zone();
  auto res = z.lookup(mk("alias.example.com"), RRType::CNAME);
  EXPECT_EQ(res.status, LookupStatus::Answer);
}

TEST(Zone, DelegationWithGlue) {
  Zone z = example_zone();
  auto res = z.lookup(mk("host.sub.example.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::Delegation);
  ASSERT_EQ(res.authorities.size(), 1u);
  EXPECT_EQ(res.authorities[0].type, RRType::NS);
  EXPECT_EQ(res.authorities[0].name, mk("sub.example.com"));
  ASSERT_EQ(res.additionals.size(), 1u);
  EXPECT_EQ(res.additionals[0].name, mk("ns.sub.example.com"));
}

TEST(Zone, DelegationAtCutItself) {
  Zone z = example_zone();
  auto res = z.lookup(mk("sub.example.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::Delegation);
}

TEST(Zone, DsAnsweredFromParentSide) {
  Zone z = example_zone();
  // DS at the cut belongs to the parent; no DS record exists so NODATA, not
  // a referral.
  auto res = z.lookup(mk("sub.example.com"), RRType::DS);
  EXPECT_EQ(res.status, LookupStatus::NoData);
}

TEST(Zone, WildcardSynthesis) {
  Zone z = example_zone();
  auto res = z.lookup(mk("anything.wild.example.com"), RRType::TXT);
  EXPECT_EQ(res.status, LookupStatus::Answer);
  ASSERT_EQ(res.answers.size(), 1u);
  // The synthesized RRset bears the query name, not the wildcard owner.
  EXPECT_EQ(res.answers[0].name, mk("anything.wild.example.com"));
}

TEST(Zone, WildcardNoDataForOtherTypes) {
  Zone z = example_zone();
  auto res = z.lookup(mk("anything.wild.example.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::NoData);
}

TEST(Zone, WildcardDoesNotApplyToExistingName) {
  Zone z = example_zone();
  // wild.example.com exists (as empty non-terminal parent of "*"), so the
  // wildcard must not synthesize an answer for it.
  auto res = z.lookup(mk("wild.example.com"), RRType::TXT);
  EXPECT_EQ(res.status, LookupStatus::NoData);
}

TEST(Zone, WildcardNsSynthesizesDelegation) {
  // "* IN NS ..." delegates every nonexistent child — how an emulated TLD
  // hands all its SLDs to one server.
  Zone z(mk("com"));
  ASSERT_TRUE(z.add(rr("com", RRType::SOA,
                       Rdata{dns::SoaData{mk("a.gtld-servers.net"), mk("admin.com"),
                                          1, 2, 3, 4, 300}}))
                  .ok());
  ASSERT_TRUE(z.add(rr("com", RRType::NS, Rdata{NameData{mk("a.gtld-servers.net")}})).ok());
  ASSERT_TRUE(z.add(rr("*.com", RRType::NS, Rdata{NameData{mk("ns.sld.net")}})).ok());

  auto res = z.lookup(mk("www.anything.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::Delegation);
  ASSERT_EQ(res.authorities.size(), 1u);
  // Delegation point is the direct child of the encloser, not the qname.
  EXPECT_EQ(res.authorities[0].name, mk("anything.com"));
  EXPECT_EQ(res.authorities[0].type, RRType::NS);

  // DS stays parent-side even under a wildcard cut.
  auto ds = z.lookup(mk("anything.com"), RRType::DS);
  EXPECT_NE(ds.status, LookupStatus::Delegation);
}

TEST(Zone, EmptyNonTerminalIsNoDataNotNxDomain) {
  Zone z = example_zone();
  // b.c.example.com exists only as a path component of a.b.c.example.com.
  auto res = z.lookup(mk("b.c.example.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::NoData);
  auto res2 = z.lookup(mk("x.b.c.example.com"), RRType::A);
  EXPECT_EQ(res2.status, LookupStatus::NxDomain);
}

TEST(Zone, AnyQueryReturnsAllTypes) {
  Zone z = example_zone();
  auto res = z.lookup(mk("example.com"), RRType::ANY);
  EXPECT_EQ(res.status, LookupStatus::Answer);
  EXPECT_GE(res.answers.size(), 2u);  // SOA + NS at least
}

TEST(Zone, OutOfZoneRecordRejected) {
  Zone z(mk("example.com"));
  auto r = z.add(rr("example.org", RRType::A, Rdata{AData{Ip4{1, 2, 3, 4}}}));
  EXPECT_FALSE(r.ok());
}

TEST(Zone, TtlTakesMinimumOnDisagreement) {
  Zone z(mk("example.com"));
  ASSERT_TRUE(z.add(rr("x.example.com", RRType::A, Rdata{AData{Ip4{1, 1, 1, 1}}}, 600)).ok());
  ASSERT_TRUE(z.add(rr("x.example.com", RRType::A, Rdata{AData{Ip4{1, 1, 1, 2}}}, 60)).ok());
  const RRset* set = z.find(mk("x.example.com"), RRType::A);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->ttl, 60u);
  EXPECT_EQ(set->size(), 2u);
}

TEST(Zone, DuplicateRdataIgnored) {
  Zone z(mk("example.com"));
  auto record = rr("x.example.com", RRType::A, Rdata{AData{Ip4{1, 1, 1, 1}}});
  ASSERT_TRUE(z.add(record).ok());
  ASSERT_TRUE(z.add(record).ok());
  EXPECT_EQ(z.find(mk("x.example.com"), RRType::A)->size(), 1u);
}

TEST(Zone, ValidatePassesOnGoodZone) {
  Zone z = example_zone();
  auto r = z.validate();
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
}

TEST(Zone, ValidateCatchesMissingSoa) {
  Zone z(mk("example.com"));
  ASSERT_TRUE(z.add(rr("example.com", RRType::NS, Rdata{NameData{mk("ns1.example.com")}})).ok());
  EXPECT_FALSE(z.validate().ok());
}

TEST(Zone, ValidateCatchesMissingGlue) {
  Zone z = example_zone();
  ASSERT_TRUE(
      z.add(rr("orphan.example.com", RRType::NS, Rdata{NameData{mk("ns.orphan.example.com")}}))
          .ok());
  EXPECT_FALSE(z.validate().ok());
}

TEST(Zone, CountsAndIteration) {
  Zone z = example_zone();
  EXPECT_GT(z.record_count(), z.rrset_count() - 1);
  auto sets = z.all_rrsets();
  ASSERT_GE(sets.size(), 3u);
  EXPECT_EQ(sets[0]->type, RRType::SOA);  // SOA leads for the printer
  EXPECT_EQ(sets[1]->type, RRType::NS);
}

TEST(ZoneSet, LongestSuffixWins) {
  ZoneSet set;
  Zone root(mk("."));
  ASSERT_TRUE(root.add(rr(".", RRType::SOA,
                          Rdata{dns::SoaData{mk("a.root-servers.net"), mk("nstld.example"),
                                             1, 1, 1, 1, 1}}))
                  .ok());
  Zone com(mk("com"));
  Zone example(mk("example.com"));
  ASSERT_TRUE(set.add(std::move(root)).ok());
  ASSERT_TRUE(set.add(std::move(com)).ok());
  ASSERT_TRUE(set.add(std::move(example)).ok());

  EXPECT_EQ(set.find_zone(mk("www.example.com"))->origin(), mk("example.com"));
  EXPECT_EQ(set.find_zone(mk("other.com"))->origin(), mk("com"));
  EXPECT_EQ(set.find_zone(mk("example.org"))->origin(), mk("."));
  EXPECT_EQ(set.find_zone(mk("."))->origin(), mk("."));
  EXPECT_NE(set.find_exact(mk("com")), nullptr);
  EXPECT_EQ(set.find_exact(mk("org")), nullptr);
}

TEST(ZoneSet, DuplicateOriginRejected) {
  ZoneSet set;
  ASSERT_TRUE(set.add(Zone(mk("example.com"))).ok());
  EXPECT_FALSE(set.add(Zone(mk("example.com"))).ok());
}

TEST(ViewSet, FirstMatchWinsWithCatchAll) {
  ViewSet views;
  View& v1 = views.add_view("root-servers");
  v1.match_clients.insert(IpAddr{*Ip4::parse("198.41.0.4")});
  View& v2 = views.add_view("gtld-servers");
  v2.match_clients.insert(IpAddr{*Ip4::parse("192.5.6.30")});
  views.add_view("default");  // catch-all

  EXPECT_EQ(views.match(IpAddr{*Ip4::parse("198.41.0.4")})->name, "root-servers");
  EXPECT_EQ(views.match(IpAddr{*Ip4::parse("192.5.6.30")})->name, "gtld-servers");
  EXPECT_EQ(views.match(IpAddr{*Ip4::parse("10.0.0.1")})->name, "default");
}

TEST(ViewSet, NoMatchReturnsNull) {
  ViewSet views;
  View& v1 = views.add_view("only");
  v1.match_clients.insert(IpAddr{*Ip4::parse("198.41.0.4")});
  EXPECT_EQ(views.match(IpAddr{*Ip4::parse("10.0.0.1")}), nullptr);
}

}  // namespace
}  // namespace ldp::zone
