// Fault-scenario regression suite: fixed-seed impairment scenarios driven
// end-to-end through the real-socket replay engine (UDP and TCP), the
// multi-controller splitter, the proxy pipeline, the ShardedMetaServer
// routing path, and the simnet discrete-event runtime — asserting exact,
// reproducible impairment and lifecycle counter outcomes.
//
// The exactness technique: FaultStream verdicts depend only on
// (seed, stream name, packet index) plus packet time for window
// impairments. For loss/dup/corrupt scenarios a reference stream driven
// the same number of times must therefore produce byte-identical counters
// to the one embedded in the engine — no tolerance bands needed.
#include <gtest/gtest.h>

#include <map>

#include "fault/fault.hpp"
#include "proxy/pipeline.hpp"
#include "replay/multi.hpp"
#include "server/background.hpp"
#include "server/shard.hpp"
#include "simnet/replay_sim.hpp"
#include "synth/generator.hpp"
#include "zone/parser.hpp"

namespace ldp {
namespace {

using trace::TraceRecord;

server::AuthServer wildcard_server() {
  server::AuthServer s;
  auto z = zone::parse_zone(R"(
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1 admin 1 7200 900 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* IN A 192.0.2.80
)");
  EXPECT_TRUE(z.ok());
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

fault::FaultSpec spec_of(const char* text) {
  auto spec = fault::parse_fault_spec(text);
  EXPECT_TRUE(spec.ok()) << spec.error().message;
  return *spec;
}

std::vector<TraceRecord> fixed_trace(size_t queries, size_t clients,
                                     Transport transport = Transport::Udp) {
  synth::FixedTraceSpec spec;
  spec.interarrival_ns = kMilli / 2;
  spec.duration_ns = static_cast<TimeNs>(queries) * spec.interarrival_ns;
  spec.client_count = clients;
  spec.transport = transport;
  return synth::make_fixed_trace(spec);
}

/// What the engine's per-source streams must report for a timing-free
/// scenario (loss/dup/corrupt only): drive a reference stream per source
/// for exactly the number of sends that source performs.
fault::ImpairmentCounters reference_counters(const fault::FaultSpec& spec,
                                             const std::vector<TraceRecord>& trace,
                                             const char* prefix) {
  std::map<std::string, size_t> sends_per_stream;
  for (const auto& rec : trace)
    ++sends_per_stream[std::string(prefix) + rec.src.addr.to_string()];
  fault::ImpairmentCounters total;
  for (const auto& [name, n] : sends_per_stream) {
    fault::FaultStream ref(spec, name);
    for (size_t i = 0; i < n; ++i) (void)ref.next(static_cast<TimeNs>(i));
    total.merge(ref.counters());
  }
  return total;
}

void expect_lifecycle_eq(const metrics::LifecycleCounters& a,
                         const metrics::LifecycleCounters& b) {
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.duplicate_ids, b.duplicate_ids);
  EXPECT_EQ(a.tcp_reconnects, b.tcp_reconnects);
  EXPECT_EQ(a.answered_after_retry, b.answered_after_retry);
  EXPECT_EQ(a.unmatched_responses, b.unmatched_responses);
  EXPECT_EQ(a.socket_errors, b.socket_errors);
}

// ---------------------------------------------------------------------------
// UDP path: exact counter outcomes for a fixed seed.
// ---------------------------------------------------------------------------

// Loss-only, no retries: every impairment drop is exactly one timeout and
// one expired query, and the counts equal the reference stream's.
TEST(FaultScenarios, UdpLossExactCounters) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());
  auto trace = fixed_trace(200, 8);
  fault::FaultSpec spec = spec_of("loss:0.25,seed:42");

  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 0;
  cfg.query_timeout = 300 * kMilli;
  cfg.drain_grace = 5 * kSecond;
  cfg.fault = spec;
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  fault::ImpairmentCounters expected = reference_counters(spec, trace, "udp:");
  EXPECT_GT(expected.dropped, 0u);
  EXPECT_EQ(report->impairments, expected);
  EXPECT_EQ(report->queries_sent, trace.size());
  EXPECT_EQ(report->lifecycle.timeouts, expected.dropped);
  EXPECT_EQ(report->lifecycle.expired, expected.dropped);
  EXPECT_EQ(report->lifecycle.retries, 0u);
  EXPECT_EQ(report->responses_received, trace.size() - expected.dropped);
}

// The acceptance criterion: one fixed-seed scenario replayed twice through
// real sockets, and once (twice, in fact) under simnet, yields
// byte-identical impairment accounting — and the two socket runs agree on
// every lifecycle counter.
TEST(FaultScenarios, FixedSeedScenarioByteIdenticalAcrossRunsAndRuntimes) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());
  auto trace = fixed_trace(200, 8);
  fault::FaultSpec spec = spec_of("loss:0.1,dup:0.05,corrupt:0.05,seed:7");

  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 0;  // one draw per query: index-exact determinism
  cfg.query_timeout = 300 * kMilli;
  cfg.drain_grace = 5 * kSecond;
  cfg.fault = spec;

  replay::QueryEngine first(cfg);
  auto run1 = first.replay(trace);
  ASSERT_TRUE(run1.ok()) << run1.error().message;
  replay::QueryEngine second(cfg);
  auto run2 = second.replay(trace);
  ASSERT_TRUE(run2.ok()) << run2.error().message;

  EXPECT_EQ(run1->impairments, run2->impairments);
  expect_lifecycle_eq(run1->lifecycle, run2->lifecycle);
  EXPECT_EQ(run1->queries_sent, run2->queries_sent);
  EXPECT_EQ(run1->responses_received, run2->responses_received);

  // Same scenario under simnet: the virtual-time runtime draws the same
  // per-source streams in the same order, so the impairment accounting is
  // identical to the socket runs' — and trivially identical to itself.
  auto server = wildcard_server();
  simnet::SimReplayConfig sim_cfg;
  sim_cfg.fault = &spec;
  auto sim1 = simnet::simulate_replay(trace, server, sim_cfg);
  auto sim2 = simnet::simulate_replay(trace, server, sim_cfg);
  EXPECT_EQ(sim1.impairments, sim2.impairments);
  EXPECT_EQ(sim1.queries_lost, sim2.queries_lost);
  EXPECT_EQ(sim1.responses, sim2.responses);
  EXPECT_EQ(sim1.impairments, run1->impairments);
  EXPECT_EQ(sim1.queries_lost, run1->impairments.lost());

  // And against the closed-form reference.
  EXPECT_EQ(run1->impairments, reference_counters(spec, trace, "udp:"));
}

// ---------------------------------------------------------------------------
// TCP path: drops surface as timeouts + retries; flaps as reconnects.
// ---------------------------------------------------------------------------

TEST(FaultScenarios, TcpLossConservationAndRecovery) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());
  auto trace = fixed_trace(60, 4, Transport::Tcp);
  fault::FaultSpec spec = spec_of("loss:0.3,seed:7");

  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 4;
  cfg.query_timeout = 200 * kMilli;
  cfg.retry_backoff_cap = 400 * kMilli;
  cfg.drain_grace = 10 * kSecond;
  cfg.fault = spec;
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_EQ(report->queries_sent, trace.size());
  EXPECT_GT(report->impairments.lost(), 0u);
  // Conservation: every query is answered or counted lost.
  EXPECT_EQ(report->responses_received + report->lifecycle.expired, trace.size());
  // Every timeout either retried or expired the query.
  EXPECT_EQ(report->lifecycle.timeouts,
            report->lifecycle.retries + report->lifecycle.expired);
  // Retry budget 4 at 30% loss recovers nearly everything.
  EXPECT_GE(report->responses_received, trace.size() * 9 / 10);
  EXPECT_GE(report->lifecycle.answered_after_retry, 1u);
}

// A link flap at t=0 (the flap window starts at the stream origin) maps to
// connection loss on TCP, deterministically exercising reconnect-and-resend.
TEST(FaultScenarios, TcpFlapForcesReconnect) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());
  auto trace = fixed_trace(20, 2, Transport::Tcp);
  // 5 ms outage at the stream origin, next one not until 500 ms — long
  // after the 10 ms timed trace and its retries have drained.
  fault::FaultSpec spec = spec_of("flap:500ms/5ms,seed:3");

  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.timed = true;  // spreads sends across the down/up phases of the flap
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 4;
  cfg.query_timeout = 50 * kMilli;
  cfg.drain_grace = 10 * kSecond;
  cfg.fault = spec;
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  // The first send of every source hits offset 0 of its stream — inside
  // the down window — so at least one flap drop and one reconnect are
  // guaranteed regardless of scheduling.
  EXPECT_GE(report->impairments.flap_dropped, 1u);
  EXPECT_GE(report->lifecycle.tcp_reconnects, 1u);
  EXPECT_EQ(report->responses_received + report->lifecycle.expired, trace.size());
  // Queries sent after the 5 ms down window find the link up and complete;
  // conservative bound so scheduling jitter can't flake the test.
  EXPECT_GE(report->responses_received, trace.size() / 4);
}

// ---------------------------------------------------------------------------
// slow_client knob: the engine really dribbles bytes, and a hardened
// frontend really ejects the dribbler (the two halves of PR 5 meeting).
// ---------------------------------------------------------------------------

// Every TCP connection is slow (p=1): frames go on the wire one byte per
// drip interval, so no query ever completes — the client starves itself —
// while the server's read deadline detects the stuck partial frame and
// closes each connection. Goodput zero, crashes zero, books balanced on
// both sides.
TEST(FaultScenarios, SlowClientDripStarvesItselfAndHardenedServerEjectsIt) {
  server::FrontendConfig fe;
  fe.limits.read_deadline = 150 * kMilli;
  fe.sweep_interval = 25 * kMilli;
  auto bg = server::BackgroundServer::start(wildcard_server(), fe);
  ASSERT_TRUE(bg.ok());
  auto trace = fixed_trace(8, 2, Transport::Tcp);

  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 0;
  cfg.tcp_reconnect = false;  // a second slow connection proves nothing new
  cfg.query_timeout = 400 * kMilli;
  cfg.drain_grace = 5 * kSecond;
  cfg.fault = spec_of("slow_client:1,drip:25ms,seed:1");
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_EQ(report->queries_sent, trace.size());
  EXPECT_EQ(report->responses_received, 0u);
  EXPECT_EQ(report->lifecycle.expired, trace.size());

  (*bg)->stop();
  const auto& conns = (*bg)->connections();
  EXPECT_GE(conns.accepted, 2u);  // one connection per source
  EXPECT_GE(conns.deadline_closed, 1u)
      << "read deadline never fired — were any bytes dripped?";
  EXPECT_TRUE(conns.consistent()) << conns.summary();
}

// The knob is TCP-only by construction: a UDP replay under slow_client:1
// is completely unaffected.
TEST(FaultScenarios, SlowClientKnobLeavesUdpUntouched) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());
  auto trace = fixed_trace(40, 4);

  replay::EngineConfig cfg;
  cfg.server = (*bg)->endpoint();
  cfg.timed = false;
  cfg.distributors = 1;
  cfg.queriers_per_distributor = 1;
  cfg.max_retries = 0;
  cfg.query_timeout = 500 * kMilli;
  cfg.drain_grace = 5 * kSecond;
  cfg.fault = spec_of("slow_client:1,drip:10ms,seed:1");
  replay::QueryEngine engine(cfg);
  auto report = engine.replay(trace);
  ASSERT_TRUE(report.ok()) << report.error().message;

  EXPECT_EQ(report->queries_sent, trace.size());
  EXPECT_EQ(report->responses_received, trace.size());
}

// ---------------------------------------------------------------------------
// Multi-controller equivalence: per-source outcomes are a function of the
// seed alone, not of how sources are partitioned across controllers.
// ---------------------------------------------------------------------------

struct PerSourceTotals {
  uint64_t sends = 0;
  uint64_t answered = 0;
  uint64_t timed_out = 0;
  uint64_t retries = 0;
  bool operator==(const PerSourceTotals&) const = default;
};

std::map<std::string, PerSourceTotals> per_source(const replay::EngineReport& r) {
  std::map<std::string, PerSourceTotals> out;
  for (const auto& sr : r.sends) {
    auto& t = out[sr.source.to_string()];
    ++t.sends;
    if (sr.outcome == replay::QueryOutcome::Answered) ++t.answered;
    if (sr.outcome == replay::QueryOutcome::TimedOut) ++t.timed_out;
    t.retries += sr.retries;
  }
  return out;
}

TEST(FaultScenarios, MultiControllerCountsIndependentOfSplit) {
  auto bg = server::BackgroundServer::start(wildcard_server());
  ASSERT_TRUE(bg.ok());
  auto trace = fixed_trace(200, 8);
  fault::FaultSpec spec = spec_of("loss:0.2,seed:11");

  auto run = [&](size_t controllers) {
    replay::MultiControllerConfig cfg;
    cfg.engine.server = (*bg)->endpoint();
    cfg.engine.timed = false;
    cfg.engine.distributors = 1;
    cfg.engine.queriers_per_distributor = 1;
    cfg.engine.max_retries = 2;
    cfg.engine.query_timeout = 300 * kMilli;
    cfg.engine.retry_backoff_cap = 600 * kMilli;
    cfg.engine.drain_grace = 10 * kSecond;
    cfg.engine.fault = spec;
    cfg.controllers = controllers;
    return replay::replay_multi_controller(trace, cfg);
  };

  auto one = run(1);
  auto four = run(4);
  ASSERT_TRUE(one.ok()) << one.error().message;
  ASSERT_TRUE(four.ok()) << four.error().message;

  EXPECT_EQ(one->queries_sent, trace.size());
  EXPECT_EQ(four->queries_sent, trace.size());
  // Identical per-source lifecycle outcomes under either partitioning.
  auto totals_one = per_source(*one);
  auto totals_four = per_source(*four);
  ASSERT_EQ(totals_one.size(), totals_four.size());
  for (const auto& [source, totals] : totals_one) {
    auto it = totals_four.find(source);
    ASSERT_NE(it, totals_four.end()) << source;
    EXPECT_EQ(totals.sends, it->second.sends) << source;
    EXPECT_EQ(totals.answered, it->second.answered) << source;
    EXPECT_EQ(totals.timed_out, it->second.timed_out) << source;
    EXPECT_EQ(totals.retries, it->second.retries) << source;
  }
  // Aggregate impairment accounting matches too.
  EXPECT_EQ(one->impairments, four->impairments);
  expect_lifecycle_eq(one->lifecycle, four->lifecycle);
}

// ---------------------------------------------------------------------------
// Proxy pipeline path.
// ---------------------------------------------------------------------------

TEST(FaultScenarios, ProxyPipelineExactCounters) {
  IpAddr meta{Ip4{10, 9, 9, 9}};
  proxy::ServerProxy px(proxy::ServerProxy::Role::Recursive, meta);
  std::atomic<uint64_t> sent{0};
  proxy::ProxyPipeline pipe(px, [&sent](proxy::Datagram&&) { ++sent; },
                            /*workers=*/2);

  fault::FaultSpec spec = spec_of("loss:0.5,dup:0.1,corrupt:0.1,seed:9");
  fault::FaultStream stream(spec, "proxy:capture");
  pipe.set_fault(&stream);

  const size_t kPackets = 300;
  for (size_t i = 0; i < kPackets; ++i) {
    proxy::Datagram pkt;
    pkt.src = Endpoint{IpAddr{Ip4{192, 0, 2, static_cast<uint8_t>(i % 200 + 1)}},
                       static_cast<uint16_t>(40000 + i)};
    pkt.dst = Endpoint{IpAddr{Ip4{198, 51, 100, 1}}, 53};  // captured: dst :53
    pkt.payload.assign(32, static_cast<uint8_t>(i));
    pipe.submit(std::move(pkt));
  }
  pipe.shutdown();

  // Reference: same stream name, same number of draws.
  fault::FaultStream ref(spec, "proxy:capture");
  std::vector<uint8_t> scratch(32, 0);
  for (size_t i = 0; i < kPackets; ++i) {
    fault::Verdict v = ref.next(static_cast<TimeNs>(i));
    if (v.action == fault::Action::Corrupt) ref.corrupt(scratch);
  }
  const auto& expected = ref.counters();
  EXPECT_GT(expected.lost(), 0u);
  EXPECT_GT(expected.duplicated, 0u);
  EXPECT_EQ(pipe.impairments(), expected);
  // Drops never reach a worker; duplicates are forwarded twice.
  EXPECT_EQ(pipe.forwarded(), kPackets - expected.lost() + expected.duplicated);
  EXPECT_EQ(sent.load(), pipe.forwarded());
  EXPECT_EQ(pipe.dropped(), 0u);  // every surviving packet matched the rule
}

// ---------------------------------------------------------------------------
// ShardedMetaServer path: impaired delivery to the routed shards.
// ---------------------------------------------------------------------------

TEST(FaultScenarios, ShardedMetaServerImpairedPath) {
  server::ShardedMetaServer sharded(2);
  IpAddr key_a{Ip4{10, 3, 0, 1}}, key_b{Ip4{10, 3, 0, 2}};
  IpAddr unrouted{Ip4{9, 9, 9, 9}};
  auto mk_zone = [](const std::string& tld) {
    auto z = zone::parse_zone("$ORIGIN " + tld +
                              ".\n$TTL 3600\n@ IN SOA ns1 admin 1 2 3 4 300\n"
                              "@ IN NS ns1\nns1 IN A 192.0.2.1\n* IN A 192.0.2.80\n");
    EXPECT_TRUE(z.ok());
    return std::move(*z);
  };
  ASSERT_TRUE(sharded.add_zone(mk_zone("alpha"), {key_a}).ok());
  ASSERT_TRUE(sharded.add_zone(mk_zone("beta"), {key_b}).ok());

  fault::FaultSpec spec = spec_of("loss:0.25,seed:13");
  auto drive = [&](const char* stream_name) {
    fault::FaultStream stream(spec, stream_name);
    struct Tally {
      uint64_t lost = 0, answered = 0, refused = 0;
      fault::ImpairmentCounters impairments;
      bool operator==(const Tally&) const = default;
    } tally;
    for (int i = 0; i < 120; ++i) {
      // Every 10th query carries a view key no shard serves.
      const IpAddr& key =
          i % 10 == 9 ? unrouted : (i % 2 == 0 ? key_a : key_b);
      const char* tld = i % 2 == 0 ? "alpha" : "beta";
      dns::Message q = dns::Message::make_query(
          static_cast<uint16_t>(i),
          *dns::Name::parse("www." + std::string(tld)), dns::RRType::A);
      fault::Verdict v = stream.next(static_cast<TimeNs>(i) * kMilli);
      if (v.is_drop()) {
        ++tally.lost;
        continue;
      }
      dns::Message r = sharded.answer(q, key);
      if (r.header.rcode == dns::Rcode::Refused) {
        ++tally.refused;
      } else {
        EXPECT_EQ(r.header.rcode, dns::Rcode::NoError);
        ++tally.answered;
      }
    }
    tally.impairments = stream.counters();
    return tally;
  };

  auto run1 = drive("shard:path");
  auto run2 = drive("shard:path");
  EXPECT_TRUE(run1 == run2);  // byte-identical replays
  EXPECT_GT(run1.lost, 0u);
  EXPECT_GT(run1.refused, 0u);  // unrouted keys that survived the link
  EXPECT_EQ(run1.lost + run1.answered + run1.refused, 120u);
  EXPECT_EQ(run1.impairments.processed, 120u);
  EXPECT_EQ(run1.impairments.lost(), run1.lost);

  // A different stream name draws a different (but equally deterministic)
  // impairment pattern over the same query sequence.
  auto other = drive("shard:other");
  EXPECT_EQ(other.lost + other.answered + other.refused, 120u);
  EXPECT_TRUE(drive("shard:other") == other);
}

}  // namespace
}  // namespace ldp
