// Tests for the zone constructor (§2.3): rebuilding the hierarchy from a
// captured resolution chain, first-answer-wins conflict handling, fake SOA
// synthesis, glue recovery, and the per-zone nameserver-address report.
#include <gtest/gtest.h>

#include "zonecut/constructor.hpp"

namespace ldp::zonecut {
namespace {

using dns::AData;
using dns::Message;
using dns::NameData;
using dns::Rdata;
using dns::ResourceRecord;
using dns::RRType;
using trace::Direction;
using trace::TraceRecord;
using zone::LookupStatus;

Name mk(std::string_view s) { return *Name::parse(s); }

ResourceRecord rr(std::string_view name, RRType type, Rdata rd, uint32_t ttl = 3600) {
  return ResourceRecord{mk(name), type, dns::RRClass::IN, ttl, std::move(rd)};
}

const IpAddr kRootAddr{Ip4{198, 41, 0, 4}};
const IpAddr kComAddr{Ip4{192, 5, 6, 30}};
const IpAddr kGoogleAddr{Ip4{216, 239, 32, 10}};
const IpAddr kRecursive{Ip4{10, 0, 0, 2}};

TraceRecord response(TimeNs t, IpAddr server, Message msg) {
  msg.header.qr = true;
  return trace::make_query_record(t, Endpoint{server, 53},
                                  Endpoint{kRecursive, 42001}, msg);
}

/// The upstream capture of one full iterative resolution of
/// www.google.com A: root referral -> com referral -> final answer.
std::vector<TraceRecord> resolution_chain() {
  std::vector<TraceRecord> recs;

  // Root's referral to com.
  Message root_ref = Message::make_query(1, mk("www.google.com"), RRType::A, false);
  root_ref.authorities.push_back(rr("com", RRType::NS, Rdata{NameData{mk("a.gtld-servers.net")}}));
  root_ref.additionals.push_back(rr("a.gtld-servers.net", RRType::A,
                                    Rdata{AData{Ip4{192, 5, 6, 30}}}));
  recs.push_back(response(0, kRootAddr, root_ref));

  // com's referral to google.com.
  Message com_ref = Message::make_query(2, mk("www.google.com"), RRType::A, false);
  com_ref.authorities.push_back(rr("google.com", RRType::NS, Rdata{NameData{mk("ns1.google.com")}}));
  com_ref.additionals.push_back(rr("ns1.google.com", RRType::A,
                                   Rdata{AData{Ip4{216, 239, 32, 10}}}));
  recs.push_back(response(kMilli, kComAddr, com_ref));

  // google.com's authoritative answer.
  Message ans = Message::make_query(3, mk("www.google.com"), RRType::A, false);
  ans.header.aa = true;
  ans.answers.push_back(rr("www.google.com", RRType::A, Rdata{AData{Ip4{172, 217, 14, 4}}}));
  ans.authorities.push_back(rr("google.com", RRType::NS, Rdata{NameData{mk("ns1.google.com")}}));
  recs.push_back(response(2 * kMilli, kGoogleAddr, ans));

  return recs;
}

TEST(ZoneConstructor, BuildsAllHierarchyLevels) {
  auto result = build_zones(resolution_chain());
  ASSERT_TRUE(result.ok()) << result.error().message;
  // Zones: root (ensured), com, google.com.
  EXPECT_EQ(result->report.zones_built, 3u);
  EXPECT_NE(result->zones.find_exact(mk(".")), nullptr);
  EXPECT_NE(result->zones.find_exact(mk("com")), nullptr);
  EXPECT_NE(result->zones.find_exact(mk("google.com")), nullptr);
}

TEST(ZoneConstructor, RootZoneReferralWorks) {
  auto result = build_zones(resolution_chain());
  ASSERT_TRUE(result.ok());
  const zone::Zone* root = result->zones.find_exact(mk("."));
  ASSERT_NE(root, nullptr);
  auto res = root->lookup(mk("www.google.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::Delegation);
  ASSERT_FALSE(res.authorities.empty());
  EXPECT_EQ(res.authorities[0].name, mk("com"));
  // Glue for a.gtld-servers.net travels with the referral.
  ASSERT_FALSE(res.additionals.empty());
  EXPECT_EQ(res.additionals[0].name, mk("a.gtld-servers.net"));
}

TEST(ZoneConstructor, ComZoneDelegatesToGoogle) {
  auto result = build_zones(resolution_chain());
  ASSERT_TRUE(result.ok());
  const zone::Zone* com = result->zones.find_exact(mk("com"));
  ASSERT_NE(com, nullptr);
  auto res = com->lookup(mk("www.google.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::Delegation);
  ASSERT_FALSE(res.authorities.empty());
  EXPECT_EQ(res.authorities[0].name, mk("google.com"));
  ASSERT_FALSE(res.additionals.empty());  // ns1.google.com glue recovered
}

TEST(ZoneConstructor, LeafZoneAnswers) {
  auto result = build_zones(resolution_chain());
  ASSERT_TRUE(result.ok());
  const zone::Zone* google = result->zones.find_exact(mk("google.com"));
  ASSERT_NE(google, nullptr);
  auto res = google->lookup(mk("www.google.com"), RRType::A);
  EXPECT_EQ(res.status, LookupStatus::Answer);
  ASSERT_EQ(res.answers.size(), 1u);
  const auto* a = res.answers[0].rdatas[0].get_if<AData>();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->addr.to_string(), "172.217.14.4");
}

TEST(ZoneConstructor, FakeSoaSynthesized) {
  auto result = build_zones(resolution_chain());
  ASSERT_TRUE(result.ok());
  // None of the captured responses carried an SOA, so every zone got a
  // fake-but-valid one (§2.3 "Recover Missing Data").
  EXPECT_EQ(result->report.fake_soas, 3u);
  for (const Name& origin : {mk("."), mk("com"), mk("google.com")}) {
    const zone::Zone* z = result->zones.find_exact(origin);
    ASSERT_NE(z, nullptr);
    ASSERT_NE(z->soa(), nullptr) << origin.to_string();
  }
}

TEST(ZoneConstructor, ZoneServersReported) {
  auto result = build_zones(resolution_chain());
  ASSERT_TRUE(result.ok());
  auto& servers = result->zone_servers;
  ASSERT_TRUE(servers.contains(mk("com")));
  ASSERT_EQ(servers[mk("com")].size(), 1u);
  EXPECT_TRUE(servers[mk("com")][0] == kComAddr);
  ASSERT_TRUE(servers.contains(mk("google.com")));
  EXPECT_TRUE(servers[mk("google.com")][0] == kGoogleAddr);
}

TEST(ZoneConstructor, FirstAnswerWinsOnConflict) {
  auto recs = resolution_chain();
  // A later response maps www.google.com to a different address (CDN-style
  // rotation); the first answer must win.
  Message later = Message::make_query(9, mk("www.google.com"), RRType::A, false);
  later.answers.push_back(rr("www.google.com", RRType::A, Rdata{AData{Ip4{1, 2, 3, 4}}}));
  recs.push_back(response(kSecond, kGoogleAddr, later));

  auto result = build_zones(recs);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->report.conflicts_first_wins, 1u);
  const zone::Zone* google = result->zones.find_exact(mk("google.com"));
  const auto* set = google->find(mk("www.google.com"), RRType::A);
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->size(), 1u);
  const auto* a = set->rdatas[0].get_if<AData>();
  EXPECT_EQ(a->addr.to_string(), "172.217.14.4");
}

TEST(ZoneConstructor, AgreeingDuplicatesAreNotConflicts) {
  auto recs = resolution_chain();
  auto again = resolution_chain();
  recs.insert(recs.end(), again.begin(), again.end());
  auto result = build_zones(recs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.conflicts_first_wins, 0u);
}

TEST(ZoneConstructor, QueriesIgnoredUndecodableCounted) {
  auto recs = resolution_chain();
  Message q = Message::make_query(5, mk("other.example"), RRType::A);
  recs.push_back(trace::make_query_record(0, Endpoint{kRecursive, 42001},
                                          Endpoint{kRootAddr, 53}, q));
  TraceRecord junk;
  junk.direction = Direction::Response;
  junk.dns_payload = {0xff, 0xfe};
  recs.push_back(junk);

  auto result = build_zones(recs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.undecodable, 1u);
  EXPECT_EQ(result->report.zones_built, 3u);
}

TEST(ZoneConstructor, MultiRecordRRsetFromOneResponse) {
  // Two NS records in one response form one 2-record RRset, not a conflict.
  Message ref = Message::make_query(1, mk("x.example"), RRType::A, false);
  ref.authorities.push_back(rr("example", RRType::NS, Rdata{NameData{mk("ns1.example")}}));
  ref.authorities.push_back(rr("example", RRType::NS, Rdata{NameData{mk("ns2.example")}}));
  auto result = build_zones({response(0, kRootAddr, ref)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.conflicts_first_wins, 0u);
  const zone::Zone* z = result->zones.find_exact(mk("example"));
  ASSERT_NE(z, nullptr);
  const auto* ns = z->find(mk("example"), RRType::NS);
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->size(), 2u);
}

TEST(ZoneConstructor, SingleZonePath) {
  // §2.3's simpler authoritative-replay path: rebuild one zone from one
  // server's responses.
  Message ans = Message::make_query(1, mk("www.example.com"), RRType::A, false);
  ans.header.aa = true;
  ans.answers.push_back(rr("www.example.com", RRType::A, Rdata{AData{Ip4{192, 0, 2, 80}}}));
  ans.authorities.push_back(rr("example.com", RRType::NS, Rdata{NameData{mk("ns1.example.com")}}));
  ans.additionals.push_back(rr("ns1.example.com", RRType::A, Rdata{AData{Ip4{192, 0, 2, 1}}}));

  // An out-of-zone record must be excluded.
  ans.additionals.push_back(rr("stray.example.org", RRType::A, Rdata{AData{Ip4{9, 9, 9, 9}}}));

  auto z = build_single_zone(mk("example.com"), {response(0, kGoogleAddr, ans)});
  ASSERT_TRUE(z.ok()) << z.error().message;
  EXPECT_NE(z->soa(), nullptr);  // fake SOA added
  EXPECT_NE(z->find(mk("www.example.com"), RRType::A), nullptr);
  EXPECT_FALSE(z->has_name(mk("stray.example.org")));
  auto v = z->validate();
  EXPECT_TRUE(v.ok()) << (v.ok() ? "" : v.error().message);
}

}  // namespace
}  // namespace ldp::zonecut
