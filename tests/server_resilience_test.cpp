// Resilience-layer regression suite (`ctest -L server` / check_server):
// admission control (LRU eviction, per-client quotas), slow-client defense
// (read deadlines, partial-buffer caps), adaptive overload degradation with
// hysteresis, proxy backend failover/drain, and the --limits/--overload
// spec parsers. The frontend is driven single-threaded through
// EventLoop::poll_once from the test thread, so connection admission,
// eviction order, and overload transitions are a deterministic function of
// the scripted client actions — which is what lets the fixed-seed scenario
// at the bottom pin exact counter values.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <optional>
#include <vector>

#include "dns/message.hpp"
#include "proxy/failover.hpp"
#include "server/background.hpp"
#include "server/frontend.hpp"
#include "server/limits.hpp"
#include "util/rng.hpp"
#include "zone/parser.hpp"

namespace ldp::server {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;

constexpr const char* kZoneText = R"(
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1 admin 1 7200 900 1209600 300
    IN NS ns1
ns1 IN A  192.0.2.1
www IN A  192.0.2.80
)";

AuthServer example_server() {
  AuthServer s;
  auto z = zone::parse_zone(kZoneText);
  EXPECT_TRUE(z.ok()) << (z.ok() ? "" : z.error().message);
  EXPECT_TRUE(s.default_zones().add(std::move(*z)).ok());
  return s;
}

// Single-threaded harness: the test thread owns the loop and pumps it
// explicitly, so server state only changes between scripted client actions.
struct Harness {
  AuthServer auth = example_server();
  net::EventLoop loop;
  std::unique_ptr<ServerFrontend> fe;

  explicit Harness(FrontendConfig cfg) {
    auto started = ServerFrontend::start(loop, auth, cfg);
    EXPECT_TRUE(started.ok()) << (started.ok() ? "" : started.error().message);
    fe = std::move(*started);
  }

  void pump(int iters = 5) {
    for (int i = 0; i < iters; ++i) loop.poll_once(2 * kMilli);
  }

  template <typename F>
  bool pump_until(F cond, TimeNs budget = 3 * kSecond) {
    TimeNs start = mono_now_ns();
    while (!cond()) {
      loop.poll_once(2 * kMilli);
      if (mono_now_ns() - start > budget) return false;
    }
    return true;
  }

  const ConnectionStats& stats() const { return fe->connections(); }
};

// Connect and wait until the server has acted on the accept (either
// admitted it or refused it for quota).
net::TcpStream connect_client(Harness& h) {
  uint64_t before = h.stats().accepted + h.stats().refused_quota;
  auto stream = net::TcpStream::connect(h.fe->endpoint());
  EXPECT_TRUE(stream.ok());
  EXPECT_TRUE(h.pump_until(
      [&] { return h.stats().accepted + h.stats().refused_quota > before; }));
  return std::move(*stream);
}

// Queue one query and pump until it is fully written to the socket.
void send_query(Harness& h, net::TcpStream& stream, uint16_t id) {
  Message q = Message::make_query(id, *Name::parse("www.example.com"), RRType::A);
  (void)stream.send_message(q.to_wire());
  EXPECT_TRUE(h.pump_until([&] {
    (void)stream.flush();
    return stream.pending_bytes() == 0;
  }));
}

// Pump until one framed reply arrives (nullopt on close/timeout).
std::optional<Message> read_reply(Harness& h, net::TcpStream& stream) {
  std::optional<Message> reply;
  bool closed = false;
  h.pump_until([&] {
    auto msgs = stream.read_messages(closed);
    if (!msgs.ok()) return true;
    for (const auto& m : *msgs) {
      auto parsed = Message::from_wire(m);
      EXPECT_TRUE(parsed.ok());
      if (parsed.ok()) reply = std::move(*parsed);
    }
    return reply.has_value() || closed;
  });
  return reply;
}

// Pump until the server's close reaches the client as EOF.
bool wait_closed(Harness& h, net::TcpStream& stream) {
  bool closed = false;
  h.pump_until([&] {
    auto msgs = stream.read_messages(closed);
    return !msgs.ok() || closed;
  });
  return closed;
}

// Write raw unframed bytes — the slowloris primitive: keeps the connection
// "active" without ever completing a length-prefixed frame.
void dribble(net::TcpStream& stream, std::vector<uint8_t> bytes) {
  (void)::send(stream.fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
}

// --- admission control ----------------------------------------------------

TEST(Admission, LruEvictionOrderAndCap) {
  FrontendConfig cfg;
  cfg.limits.max_connections = 3;
  cfg.tcp_idle_timeout = 10 * kSecond;
  Harness h(cfg);

  auto c1 = connect_client(h);
  auto c2 = connect_client(h);
  auto c3 = connect_client(h);
  EXPECT_EQ(h.stats().established, 3u);

  // Touch c1 then c3: the LRU order is now c2 < c1 < c3.
  send_query(h, c1, 1);
  ASSERT_TRUE(read_reply(h, c1).has_value());
  send_query(h, c3, 3);
  ASSERT_TRUE(read_reply(h, c3).has_value());

  // The fourth connection must evict exactly c2 (least recently active).
  auto c4 = connect_client(h);
  EXPECT_EQ(h.stats().evicted_lru, 1u);
  EXPECT_EQ(h.stats().established, 3u);
  EXPECT_TRUE(wait_closed(h, c2)) << "evicted connection not closed";

  // Survivors and the newcomer still answer queries.
  for (auto* c : {&c1, &c3, &c4}) {
    send_query(h, *c, 9);
    EXPECT_TRUE(read_reply(h, *c).has_value());
  }
  EXPECT_EQ(h.stats().accepted, 4u);
  EXPECT_TRUE(h.stats().consistent());
}

TEST(Admission, PerClientQuotaRefusesBeyondCap) {
  FrontendConfig cfg;
  cfg.limits.per_client_quota = 2;
  Harness h(cfg);

  auto c1 = connect_client(h);
  auto c2 = connect_client(h);
  EXPECT_EQ(h.stats().established, 2u);

  // All test clients share 127.0.0.1, so the third trips the quota: closed
  // before it is ever established, counted only under refused_quota.
  auto c3 = connect_client(h);
  EXPECT_EQ(h.stats().refused_quota, 1u);
  EXPECT_EQ(h.stats().accepted, 2u);
  EXPECT_EQ(h.stats().established, 2u);
  EXPECT_TRUE(wait_closed(h, c3));

  // Releasing one slot re-admits the client address.
  { auto gone = std::move(c1); }  // destructor sends FIN
  ASSERT_TRUE(h.pump_until([&] { return h.stats().closed_by_peer == 1u; }));
  auto c4 = connect_client(h);
  EXPECT_EQ(h.stats().accepted, 3u);
  send_query(h, c4, 4);
  EXPECT_TRUE(read_reply(h, c4).has_value());
  EXPECT_TRUE(h.stats().consistent());
}

// --- slow-client defense --------------------------------------------------

TEST(SlowClient, ReadDeadlineClosesDribbler) {
  FrontendConfig cfg;
  cfg.limits.read_deadline = 150 * kMilli;
  cfg.sweep_interval = 30 * kMilli;
  cfg.tcp_idle_timeout = 10 * kSecond;  // idle must NOT be what fires
  Harness h(cfg);

  auto slow = connect_client(h);
  auto healthy = connect_client(h);

  // The dribbler sends one byte of a frame header and stalls; the bytes
  // keep last_activity fresh, so only the read deadline can catch it.
  dribble(slow, {0x00});
  ASSERT_TRUE(h.pump_until([&] {
    dribble(slow, {});  // no-op; just keep pumping the loop
    return h.stats().deadline_closed == 1u;
  }));
  EXPECT_TRUE(wait_closed(h, slow));

  // The healthy client rode through untouched.
  send_query(h, healthy, 7);
  EXPECT_TRUE(read_reply(h, healthy).has_value());
  EXPECT_EQ(h.stats().established, 1u);
  EXPECT_EQ(h.stats().closed_idle, 0u);
  EXPECT_TRUE(h.stats().consistent());
}

TEST(SlowClient, PartialBufferOverflowCloses) {
  FrontendConfig cfg;
  cfg.limits.max_partial_bytes = 64;
  Harness h(cfg);

  auto hostile = connect_client(h);
  // Frame header claims 1000 bytes; stream 200 — never a complete frame,
  // so the reassembly buffer grows until the cap cuts it off.
  std::vector<uint8_t> bytes{0x03, 0xe8};
  bytes.resize(202, 0xab);
  dribble(hostile, bytes);
  ASSERT_TRUE(h.pump_until([&] { return h.stats().overflow_closed == 1u; }));
  EXPECT_TRUE(wait_closed(h, hostile));
  EXPECT_EQ(h.stats().established, 0u);
  EXPECT_TRUE(h.stats().consistent());
}

TEST(SlowClient, UnhardenedFrontendAccumulatesSlowConnections) {
  // Contrast case: with no limits, slowloris connections pile up and only
  // the (long) idle timeout would ever reclaim them.
  FrontendConfig cfg;
  cfg.tcp_idle_timeout = 10 * kSecond;
  Harness h(cfg);

  std::vector<net::TcpStream> attackers;
  for (int i = 0; i < 16; ++i) {
    attackers.push_back(connect_client(h));
    dribble(attackers.back(), {0x00});
  }
  h.pump(20);
  EXPECT_EQ(h.stats().established, 16u);
  EXPECT_EQ(h.stats().deadline_closed, 0u);
  EXPECT_TRUE(h.stats().consistent());
}

// --- overload degradation -------------------------------------------------

TEST(Overload, RefusePolicyWithHysteresis) {
  FrontendConfig cfg;
  cfg.overload.policy = OverloadPolicy::Refuse;
  cfg.overload.high_watermark = 3;
  cfg.overload.low_watermark = 1;
  Harness h(cfg);

  auto c1 = connect_client(h);
  auto c2 = connect_client(h);
  EXPECT_FALSE(h.fe->overloaded());
  auto c3 = connect_client(h);
  EXPECT_TRUE(h.fe->overloaded());
  EXPECT_EQ(h.stats().overload_entered, 1u);

  // TCP queries get a header-only REFUSED, not a zone answer.
  send_query(h, c1, 11);
  auto refused = read_reply(h, c1);
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(refused->header.rcode, Rcode::Refused);
  EXPECT_TRUE(refused->answers.empty());
  EXPECT_EQ(h.stats().refused_overload, 1u);

  // UDP is degraded by the same policy.
  auto udp = net::UdpSocket::create();
  ASSERT_TRUE(udp.ok());
  Message q = Message::make_query(12, *Name::parse("www.example.com"), RRType::A);
  ASSERT_TRUE(udp->send_to(h.fe->endpoint(), q.to_wire()).ok());
  std::optional<net::UdpSocket::Datagram> dg;
  ASSERT_TRUE(h.pump_until([&] {
    auto r = udp->recv();
    if (r.ok() && r->has_value()) dg = std::move(**r);
    return dg.has_value();
  }));
  auto udp_reply = Message::from_wire(dg->payload);
  ASSERT_TRUE(udp_reply.ok());
  EXPECT_EQ(udp_reply->header.rcode, Rcode::Refused);
  EXPECT_EQ(udp_reply->header.id, 12);
  EXPECT_EQ(h.stats().refused_overload, 2u);

  // Dropping to 2 connections (> low) must NOT clear overload: hysteresis.
  { auto gone = std::move(c3); }
  ASSERT_TRUE(h.pump_until([&] { return h.stats().closed_by_peer == 1u; }));
  EXPECT_TRUE(h.fe->overloaded());
  EXPECT_EQ(h.stats().overload_exited, 0u);

  // At the low watermark the frontend recovers and answers for real.
  { auto gone = std::move(c2); }
  ASSERT_TRUE(h.pump_until([&] { return h.stats().closed_by_peer == 2u; }));
  EXPECT_FALSE(h.fe->overloaded());
  EXPECT_EQ(h.stats().overload_exited, 1u);
  send_query(h, c1, 13);
  auto answered = read_reply(h, c1);
  ASSERT_TRUE(answered.has_value());
  EXPECT_EQ(answered->header.rcode, Rcode::NoError);
  EXPECT_FALSE(answered->answers.empty());
  EXPECT_TRUE(h.stats().consistent());
}

TEST(Overload, DropPolicySilentlyDiscards) {
  FrontendConfig cfg;
  cfg.overload.policy = OverloadPolicy::Drop;
  cfg.overload.high_watermark = 1;
  cfg.overload.low_watermark = 0;
  Harness h(cfg);

  auto c1 = connect_client(h);
  EXPECT_TRUE(h.fe->overloaded());
  send_query(h, c1, 21);
  ASSERT_TRUE(h.pump_until([&] { return h.stats().dropped_overload == 1u; }));
  // No reply ever comes back for the dropped query.
  bool closed = false;
  h.pump(10);
  auto msgs = c1.read_messages(closed);
  ASSERT_TRUE(msgs.ok());
  EXPECT_TRUE(msgs->empty());
  EXPECT_FALSE(closed);
  EXPECT_TRUE(h.stats().consistent());
}

TEST(Overload, TruncatePolicySetsTc) {
  FrontendConfig cfg;
  cfg.overload.policy = OverloadPolicy::Truncate;
  cfg.overload.high_watermark = 1;
  cfg.overload.low_watermark = 0;
  Harness h(cfg);

  auto c1 = connect_client(h);
  EXPECT_TRUE(h.fe->overloaded());
  send_query(h, c1, 31);
  auto reply = read_reply(h, c1);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->header.tc);
  EXPECT_EQ(reply->header.rcode, Rcode::NoError);
  EXPECT_TRUE(reply->answers.empty());
  EXPECT_EQ(h.stats().truncated_overload, 1u);
  EXPECT_TRUE(h.stats().consistent());
}

// --- sweep/close accounting -----------------------------------------------

TEST(Accounting, ShutdownAndSweepStayConsistent) {
  FrontendConfig cfg;
  cfg.tcp_idle_timeout = 120 * kMilli;
  cfg.sweep_interval = 30 * kMilli;
  Harness h(cfg);

  auto c1 = connect_client(h);
  auto c2 = connect_client(h);
  auto c3 = connect_client(h);
  // c1 closes from the client side; c2 idles out; c3 is open at shutdown.
  { auto gone = std::move(c1); }
  ASSERT_TRUE(h.pump_until([&] { return h.stats().closed_by_peer == 1u; }));
  ASSERT_TRUE(h.pump_until([&] { return h.stats().closed_idle >= 1u; }));
  // c3 survived so far only if it idled later than the sweep caught c2 —
  // re-establish a guaranteed-open connection to pin the shutdown counter.
  auto c4 = connect_client(h);
  size_t open_before = h.stats().established;
  ASSERT_GE(open_before, 1u);
  h.fe->shutdown();
  EXPECT_EQ(h.stats().established, 0u);
  EXPECT_EQ(h.stats().closed_shutdown, open_before);
  EXPECT_TRUE(h.stats().consistent());
}

// --- proxy failover -------------------------------------------------------

proxy::Datagram make_dgram(uint16_t id) {
  proxy::Datagram d;
  d.src = Endpoint{IpAddr{Ip4{10, 0, 0, 1}}, 4000};
  d.dst = Endpoint{IpAddr{Ip4{10, 0, 0, 2}}, 53};
  d.payload = {static_cast<uint8_t>(id >> 8), static_cast<uint8_t>(id)};
  return d;
}

TEST(Failover, MarksDownAfterThresholdBuffersAndDrains) {
  proxy::FailoverConfig cfg;
  cfg.primary = Endpoint{IpAddr{Ip4{10, 0, 0, 2}}, 53};
  cfg.probe_interval = kSecond;
  cfg.fail_threshold = 2;
  cfg.backoff_base = kSecond;
  cfg.backoff_cap = 4 * kSecond;
  cfg.buffer_capacity = 8;

  // Scripted outage: the backend is down in [3s, 10s).
  auto probe = [](const Endpoint&, TimeNs now) {
    return now < 3 * kSecond || now >= 10 * kSecond;
  };
  std::vector<std::pair<Endpoint, uint16_t>> sent;
  proxy::FailoverForwarder fwd(cfg, probe, [&](const Endpoint& to, proxy::Datagram&& d) {
    sent.emplace_back(to, static_cast<uint16_t>(d.payload[0] << 8 | d.payload[1]));
  });

  // One datagram per second on a synthetic clock.
  for (uint16_t s = 1; s <= 14; ++s) fwd.forward(make_dgram(s), s * kSecond);

  // Probes: t=1 ok, t=2 ok, t=3 fail (1), t=4 fail (2) -> down at t=4 with
  // backoff 1s; re-probes t=5 fail (backoff 2s), t=7 fail (4s), t=11 ok ->
  // failback, drain. Probes at t=12,13,14 succeed.
  EXPECT_EQ(fwd.stats().failovers, 1u);
  EXPECT_EQ(fwd.stats().failbacks, 1u);
  EXPECT_EQ(fwd.stats().probe_failures, 4u);
  // Buffered while down: t=4..10 queries (7 of them), minus none dropped
  // (capacity 8); all drained to the primary at t=11.
  EXPECT_EQ(fwd.stats().buffered, 7u);
  EXPECT_EQ(fwd.stats().buffer_dropped, 0u);
  EXPECT_EQ(fwd.stats().drained, 7u);
  EXPECT_EQ(fwd.stats().forwarded_primary, 7u);  // t=1..3 and t=11..14
  EXPECT_EQ(fwd.buffered_now(), 0u);
  EXPECT_TRUE(fwd.primary_up());
  // Drained datagrams arrive in arrival order, to the primary.
  ASSERT_EQ(sent.size(), 14u);
  for (const auto& [to, id] : sent) EXPECT_EQ(to.port, 53);
}

TEST(Failover, SecondaryTakesTrafficWhileDown) {
  proxy::FailoverConfig cfg;
  cfg.primary = Endpoint{IpAddr{Ip4{10, 0, 0, 2}}, 53};
  cfg.secondary = Endpoint{IpAddr{Ip4{10, 0, 0, 3}}, 53};
  cfg.fail_threshold = 1;
  cfg.probe_interval = kSecond;
  cfg.backoff_base = kSecond;

  auto probe = [](const Endpoint&, TimeNs now) { return now >= 5 * kSecond; };
  std::vector<Endpoint> dests;
  proxy::FailoverForwarder fwd(cfg, probe, [&](const Endpoint& to, proxy::Datagram&&) {
    dests.push_back(to);
  });
  for (uint16_t s = 1; s <= 8; ++s) fwd.forward(make_dgram(s), s * kSecond);

  EXPECT_EQ(fwd.stats().failovers, 1u);
  EXPECT_EQ(fwd.stats().failbacks, 1u);
  EXPECT_GT(fwd.stats().forwarded_secondary, 0u);
  EXPECT_EQ(fwd.stats().buffered, 0u);  // a secondary means no buffering
  EXPECT_EQ(fwd.stats().forwarded_secondary + fwd.stats().forwarded_primary, 8u);
}

TEST(Failover, BufferDropsOldestAtCapacity) {
  proxy::FailoverConfig cfg;
  cfg.primary = Endpoint{IpAddr{Ip4{10, 0, 0, 2}}, 53};
  cfg.fail_threshold = 1;
  cfg.probe_interval = kSecond;
  cfg.backoff_base = 64 * kSecond;  // stay down for the whole test
  cfg.backoff_cap = 64 * kSecond;
  cfg.buffer_capacity = 2;

  auto probe = [](const Endpoint&, TimeNs) { return false; };
  std::vector<uint16_t> ids;
  proxy::FailoverForwarder fwd(cfg, probe, [&](const Endpoint&, proxy::Datagram&& d) {
    ids.push_back(static_cast<uint16_t>(d.payload[0] << 8 | d.payload[1]));
  });
  for (uint16_t s = 1; s <= 5; ++s) fwd.forward(make_dgram(s), s * kSecond);

  EXPECT_FALSE(fwd.primary_up());
  EXPECT_EQ(fwd.stats().buffered, 5u);
  EXPECT_EQ(fwd.stats().buffer_dropped, 3u);
  EXPECT_EQ(fwd.buffered_now(), 2u);  // the two newest survive
  EXPECT_TRUE(ids.empty());
}

TEST(Failover, SeededProbeStreamPinsExactStats) {
  // Probe outcomes from a fixed-seed RNG: the whole failover history —
  // transitions, buffering, drains — is a deterministic function of the
  // seed, exactly like the fault layer's scenario regressions.
  proxy::FailoverConfig cfg;
  cfg.primary = Endpoint{IpAddr{Ip4{10, 0, 0, 2}}, 53};
  cfg.probe_interval = kSecond;
  cfg.fail_threshold = 2;
  cfg.backoff_base = kSecond;
  cfg.backoff_cap = 8 * kSecond;
  cfg.buffer_capacity = 4;

  Rng rng(42);
  auto probe = [&](const Endpoint&, TimeNs) { return rng.uniform01() >= 0.5; };
  uint64_t delivered = 0;
  proxy::FailoverForwarder fwd(cfg, probe,
                               [&](const Endpoint&, proxy::Datagram&&) { ++delivered; });
  for (uint16_t s = 1; s <= 40; ++s) fwd.forward(make_dgram(s), s * kSecond);

  const proxy::FailoverStats& st = fwd.stats();
  // Conservation invariants: every datagram is delivered, buffered, or
  // dropped-oldest — none vanish.
  EXPECT_EQ(delivered, st.forwarded_primary + st.forwarded_secondary + st.drained);
  EXPECT_EQ(st.forwarded_primary + st.buffered, 40u);
  EXPECT_EQ(st.drained + st.buffer_dropped + fwd.buffered_now(), st.buffered);
  // Committed regression values for seed 42 (recompute only if the probe
  // schedule or Rng algorithm deliberately changes).
  SCOPED_TRACE(st.summary());
  EXPECT_EQ(st.probes, 26u);  // backoff while down skips due ticks
  EXPECT_EQ(st.probe_failures, 14u);
  EXPECT_EQ(st.failovers, 3u);
  EXPECT_EQ(st.failbacks, 2u);  // still down when the clock stops
  EXPECT_EQ(st.forwarded_primary, 17u);
  EXPECT_EQ(st.buffered, 23u);
  EXPECT_EQ(st.buffer_dropped, 12u);
  EXPECT_EQ(st.drained, 7u);
}

// --- spec parsers ---------------------------------------------------------

TEST(LimitsSpec, ParsesAllKeysAndRoundTrips) {
  auto limits = parse_limits_spec(
      "max-conns:64,quota:4,read-deadline:2s,write-deadline:500ms,max-partial:4096");
  ASSERT_TRUE(limits.ok()) << limits.error().message;
  EXPECT_EQ(limits->max_connections, 64u);
  EXPECT_EQ(limits->per_client_quota, 4u);
  EXPECT_EQ(limits->read_deadline, 2 * kSecond);
  EXPECT_EQ(limits->write_deadline, 500 * kMilli);
  EXPECT_EQ(limits->max_partial_bytes, 4096u);
  EXPECT_TRUE(limits->any_enabled());

  auto again = parse_limits_spec(limits->to_string());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->to_string(), limits->to_string());
}

TEST(LimitsSpec, RejectsUnknownKeysAndBadValues) {
  EXPECT_FALSE(parse_limits_spec("max-conn:64").ok());  // typo'd key
  EXPECT_FALSE(parse_limits_spec("max-conns:lots").ok());
  EXPECT_FALSE(parse_limits_spec("read-deadline:2parsecs").ok());
  EXPECT_FALSE(parse_limits_spec("max-conns").ok());  // no value
  auto empty = parse_limits_spec("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->any_enabled());
}

TEST(OverloadSpec, ParsesPoliciesAndDefaultsLow) {
  auto ov = parse_overload_spec("policy:refuse,high:48,low:32");
  ASSERT_TRUE(ov.ok()) << ov.error().message;
  EXPECT_EQ(ov->policy, OverloadPolicy::Refuse);
  EXPECT_EQ(ov->high_watermark, 48u);
  EXPECT_EQ(ov->low_watermark, 32u);
  auto again = parse_overload_spec(ov->to_string());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->to_string(), ov->to_string());

  auto defaulted = parse_overload_spec("policy:drop,high:10");
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted->low_watermark, 5u);  // defaults to high/2

  EXPECT_EQ(parse_overload_spec("policy:truncate,high:6")->policy,
            OverloadPolicy::Truncate);
}

TEST(OverloadSpec, RejectsInvalidCombinations) {
  EXPECT_FALSE(parse_overload_spec("policy:reboot,high:8").ok());
  EXPECT_FALSE(parse_overload_spec("policy:refuse").ok());        // no high
  EXPECT_FALSE(parse_overload_spec("high:8").ok());               // no policy
  EXPECT_FALSE(parse_overload_spec("policy:refuse,high:4,low:9").ok());
  EXPECT_FALSE(parse_overload_spec("policy:refuse,high:8,cap:2").ok());
}

// --- the acceptance scenario ----------------------------------------------

// Fixed-seed slowloris + overload: 16 clients, the slow set chosen by the
// fault seed (slow_client knob), against a hardened frontend. The counters
// asserted at the bottom are committed regression values for seed 42 — the
// run is deterministic because admission order is scripted, the slow set is
// a pure function of the seed, and deadline closes are forced by an
// explicit wait that only the dribblers can trip.
TEST(Scenario, SeededSlowClientsAgainstHardenedFrontend) {
  fault::FaultSpec spec;
  spec.seed = 42;
  spec.slow_client = 0.4;

  FrontendConfig cfg;
  cfg.limits.max_connections = 8;
  cfg.limits.read_deadline = 400 * kMilli;
  cfg.limits.max_partial_bytes = 128;
  cfg.sweep_interval = 50 * kMilli;
  cfg.tcp_idle_timeout = 30 * kSecond;  // only resilience closes, not idle
  cfg.overload.policy = OverloadPolicy::Refuse;
  cfg.overload.high_watermark = 6;
  cfg.overload.low_watermark = 3;
  Harness h(cfg);

  // Phase A: 16 sequential connects. The cap admits every newcomer and
  // evicts from the LRU tail, so exactly the first 8 are evicted, in order.
  std::vector<net::TcpStream> clients;
  std::vector<bool> slow;
  for (uint64_t i = 0; i < 16; ++i) {
    clients.push_back(connect_client(h));
    slow.push_back(spec.is_slow_client(i));
    ASSERT_LE(h.stats().established, 8u) << "cap breached at connect " << i;
  }
  EXPECT_EQ(h.stats().accepted, 16u);
  EXPECT_EQ(h.stats().evicted_lru, 8u);
  EXPECT_EQ(h.stats().established, 8u);
  EXPECT_TRUE(h.fe->overloaded());  // crossed high=6 during the connects
  EXPECT_EQ(h.stats().overload_entered, 1u);

  // Phase B: survivors 8..15 act out their seeded role. Slow clients
  // dribble a frame fragment; healthy ones send a real query and — because
  // the frontend is overloaded — get a cheap REFUSED, never a stall.
  size_t healthy_survivors = 0;
  for (size_t i = 8; i < 16; ++i) {
    if (slow[i]) {
      dribble(clients[i], {0x01, 0x00, 0xaa});  // claims 256 bytes, sends 1
      continue;
    }
    ++healthy_survivors;
    send_query(h, clients[i], static_cast<uint16_t>(i));
    auto reply = read_reply(h, clients[i]);
    ASSERT_TRUE(reply.has_value()) << "healthy client " << i << " starved";
    EXPECT_EQ(reply->header.rcode, Rcode::Refused);
  }
  EXPECT_EQ(h.stats().refused_overload, healthy_survivors);

  // Phase C: the read deadline reaps every dribbler; healthy connections
  // (no partial frame pending) are untouched.
  size_t slow_survivors = 8 - healthy_survivors;
  ASSERT_TRUE(h.pump_until(
      [&] { return h.stats().deadline_closed == slow_survivors; },
      5 * kSecond));
  EXPECT_EQ(h.stats().established, healthy_survivors);

  // Phase D: drain healthy clients to the low watermark; the frontend
  // recovers and serves real answers again — non-zero goodput end to end.
  size_t open = healthy_survivors;
  for (size_t i = 8; i < 16 && open > cfg.overload.low_watermark; ++i) {
    if (slow[i]) continue;
    { auto gone = std::move(clients[i]); }
    --open;
    slow[i] = true;  // mark consumed so the goodput loop skips it
    ASSERT_TRUE(h.pump_until([&] { return h.stats().established == open; }));
  }
  EXPECT_FALSE(h.fe->overloaded());
  EXPECT_EQ(h.stats().overload_exited, 1u);

  size_t goodput = 0;
  for (size_t i = 8; i < 16; ++i) {
    if (slow[i]) continue;
    send_query(h, clients[i], static_cast<uint16_t>(100 + i));
    auto reply = read_reply(h, clients[i]);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.rcode, Rcode::NoError);
    EXPECT_FALSE(reply->answers.empty());
    ++goodput;
  }
  EXPECT_GT(goodput, 0u);

  // Committed regression values for seed 42 (slow survivors: indices 13 and
  // 14). The slow set is a pure function of (seed, connection index), so
  // these only change if stream_seed or the slow_client draw deliberately
  // changes.
  EXPECT_EQ(healthy_survivors, 6u);
  EXPECT_EQ(h.stats().deadline_closed, 2u);
  EXPECT_EQ(h.stats().refused_overload, 6u);
  EXPECT_EQ(h.stats().evicted_lru, 8u);
  EXPECT_TRUE(h.stats().consistent());
}

}  // namespace
}  // namespace ldp::server
