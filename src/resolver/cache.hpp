// Resolver cache: positive RRset entries and negative (NXDOMAIN / NODATA)
// entries with TTL expiry. Cache state is what makes replay fidelity hard —
// the paper's §2.3 zone-construction pass exists precisely because warm
// caches hide records from traces — so the cache exposes hit/miss counters
// and explicit time so experiments control it.
#pragma once

#include <unordered_map>

#include "dns/rr.hpp"
#include "util/clock.hpp"

namespace ldp::resolver {

using dns::Name;
using dns::RRset;
using dns::RRType;

enum class NegativeState : uint8_t { None, NoData, NxDomain };

class DnsCache {
 public:
  /// Insert/replace a positive RRset; expires `set.ttl` seconds after now.
  void put(const RRset& set, TimeNs now);

  /// Insert a negative entry (ttl from the SOA minimum, RFC 2308).
  void put_negative(const Name& name, RRType type, bool nxdomain, uint32_t ttl,
                    TimeNs now);

  /// Live positive entry or nullptr. The pointer is valid until the next
  /// non-const call.
  const RRset* get(const Name& name, RRType type, TimeNs now);

  /// Negative state for the (name, type); NxDomain applies to all types.
  NegativeState get_negative(const Name& name, RRType type, TimeNs now);

  /// Drop expired entries (size() counts live + not-yet-purged).
  void purge(TimeNs now);
  void clear();

  size_t size() const { return positive_.size() + negative_.size(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Key {
    Name name;
    RRType type;
    bool operator==(const Key& o) const { return name == o.name && type == o.type; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return k.name.hash() * 31 + static_cast<size_t>(k.type);
    }
  };
  struct PositiveEntry {
    RRset set;
    TimeNs expires;
  };
  struct NegativeEntry {
    bool nxdomain;
    TimeNs expires;
  };

  std::unordered_map<Key, PositiveEntry, KeyHash> positive_;
  std::unordered_map<Key, NegativeEntry, KeyHash> negative_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ldp::resolver
