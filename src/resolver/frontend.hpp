// UDP frontend for the recursive resolver: accepts stub queries on a real
// socket, resolves them through the configured upstream (typically the
// emulated hierarchy), and answers. This is the piece that lets LDplayer
// replay *recursive* traces end-to-end — the paper's "recursive replay"
// path in Figure 1, which the authors were still evaluating at publication.
//
// Resolution runs synchronously on the loop thread: fine for the in-process
// and simulated upstreams used in experiments (they return immediately),
// and for moderate-rate recursive traces like Rec-17 (~6 q/s).
#pragma once

#include <memory>

#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "resolver/resolver.hpp"

namespace ldp::resolver {

struct StubFrontendConfig {
  Endpoint bind{IpAddr{Ip4{127, 0, 0, 1}}, 0};  ///< port 0 = ephemeral
  /// Clock for cache TTLs; defaults to the monotonic clock.
  std::function<TimeNs()> now = [] { return mono_now_ns(); };
};

class StubFrontend {
 public:
  /// The resolver must outlive the frontend.
  static Result<std::unique_ptr<StubFrontend>> start(net::EventLoop& loop,
                                                     RecursiveResolver& resolver,
                                                     StubFrontendConfig config = {});
  ~StubFrontend();

  StubFrontend(const StubFrontend&) = delete;
  StubFrontend& operator=(const StubFrontend&) = delete;

  const Endpoint& endpoint() const { return endpoint_; }
  uint64_t queries_served() const { return served_; }

  void shutdown();

 private:
  StubFrontend(net::EventLoop& loop, RecursiveResolver& resolver,
               StubFrontendConfig config)
      : loop_(loop), resolver_(resolver), config_(std::move(config)) {}

  void on_readable();

  net::EventLoop& loop_;
  RecursiveResolver& resolver_;
  StubFrontendConfig config_;
  Endpoint endpoint_;
  std::optional<net::UdpSocket> socket_;
  uint64_t served_ = 0;
  bool shut_down_ = false;
};

}  // namespace ldp::resolver
