#include "resolver/frontend.hpp"

namespace ldp::resolver {

Result<std::unique_ptr<StubFrontend>> StubFrontend::start(net::EventLoop& loop,
                                                          RecursiveResolver& resolver,
                                                          StubFrontendConfig config) {
  auto fe = std::unique_ptr<StubFrontend>(
      new StubFrontend(loop, resolver, std::move(config)));
  fe->socket_ = LDP_TRY(net::UdpSocket::bind(fe->config_.bind));
  fe->endpoint_ = LDP_TRY(fe->socket_->local_endpoint());
  StubFrontend* raw = fe.get();
  LDP_TRY_VOID(loop.add_fd(fe->socket_->fd(), net::Interest{true, false},
                           [raw](bool, bool) { raw->on_readable(); }));
  return fe;
}

StubFrontend::~StubFrontend() { shutdown(); }

void StubFrontend::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  if (socket_.has_value()) loop_.remove_fd(socket_->fd());
}

void StubFrontend::on_readable() {
  while (true) {
    auto dg = socket_->recv();
    if (!dg.ok() || !dg->has_value()) return;
    auto query = dns::Message::from_wire((**dg).payload);
    if (!query.ok()) continue;  // stub garbage: drop like a real resolver
    dns::Message response = resolver_.resolve(*query, config_.now());
    ++served_;
    auto wire = response.to_wire(
        query->edns.has_value() ? query->edns->udp_payload_size : 512);
    (void)socket_->send_to((**dg).from, wire);
  }
}

}  // namespace ldp::resolver
