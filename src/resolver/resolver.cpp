#include "resolver/resolver.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace ldp::resolver {

using dns::AData;
using dns::Name;
using dns::NameData;
using dns::Rcode;
using dns::ResourceRecord;
using dns::SoaData;

RecursiveResolver::RecursiveResolver(ResolverConfig config, Upstream upstream)
    : config_(std::move(config)), upstream_(std::move(upstream)) {}

std::optional<TimeNs> RecursiveResolver::srtt(const IpAddr& server) const {
  auto it = srtt_.find(server);
  if (it == srtt_.end()) return std::nullopt;
  return it->second;
}

void RecursiveResolver::rank_servers(std::vector<Endpoint>& servers) const {
  if (config_.selection != ResolverConfig::ServerSelection::SrttBest) return;
  std::stable_sort(servers.begin(), servers.end(),
                   [this](const Endpoint& a, const Endpoint& b) {
                     auto cost = [this](const Endpoint& e) {
                       auto it = srtt_.find(e.addr);
                       return it == srtt_.end() ? config_.srtt_initial : it->second;
                     };
                     return cost(a) < cost(b);
                   });
}

Result<Message> RecursiveResolver::query_upstream(const Endpoint& server,
                                                  const Message& q) {
  ++stats_.upstream_queries;
  TimeNs before = config_.rtt_clock();
  auto response = upstream_(server, q);
  TimeNs sample = config_.rtt_clock() - before;

  auto it = srtt_.find(server.addr);
  if (!response.ok()) {
    // Failure penalty: double the estimate (or start pessimistic) so lame
    // or unreachable servers sink in the ranking but stay probe-able.
    TimeNs base = it == srtt_.end() ? config_.srtt_initial : it->second;
    srtt_[server.addr] = std::max<TimeNs>(base * 2, 100 * kMilli);
    return response;
  }
  if (it == srtt_.end()) {
    srtt_[server.addr] = sample;
  } else {
    // Classic EWMA: srtt = 7/8 srtt + 1/8 sample.
    it->second = (it->second * 7 + sample) / 8;
  }
  return response;
}

Message RecursiveResolver::resolve(const dns::Name& qname, RRType qtype, TimeNs now) {
  Message stub = Message::make_query(next_id_++, qname, qtype, true);
  return resolve(stub, now);
}

void RecursiveResolver::cache_response_sets(const Message& response, TimeNs now) {
  auto cache_section = [&](const std::vector<ResourceRecord>& section) {
    // Group records into RRsets before caching.
    for (size_t i = 0; i < section.size(); ++i) {
      const auto& rr = section[i];
      if (rr.type == RRType::OPT) continue;
      bool first = true;
      for (size_t j = 0; j < i; ++j) {
        if (section[j].name == rr.name && section[j].type == rr.type) {
          first = false;
          break;
        }
      }
      if (!first) continue;
      dns::RRset set;
      set.name = rr.name;
      set.type = rr.type;
      set.rrclass = rr.rrclass;
      for (const auto& other : section) {
        if (other.name == rr.name && other.type == rr.type) set.add(other);
      }
      cache_.put(set, now);
    }
  };
  cache_section(response.answers);
  cache_section(response.authorities);
  cache_section(response.additionals);
}

std::vector<Endpoint> RecursiveResolver::best_servers(const Name& qname, TimeNs now) {
  // Deepest cached delegation wins: walk suffixes longest-first looking for
  // an NS set whose addresses we also have cached.
  for (size_t k = qname.label_count() + 1; k-- > 0;) {
    Name zone = qname.suffix(k);
    const dns::RRset* ns = cache_.get(zone, RRType::NS, now);
    if (ns == nullptr) continue;
    // Collect nameserver names first: cache_.get invalidates prior pointers.
    std::vector<Name> targets;
    for (const auto& rd : ns->rdatas) {
      if (const auto* nd = rd.get_if<NameData>()) targets.push_back(nd->name);
    }
    std::vector<Endpoint> servers;
    for (const auto& target : targets) {
      if (const dns::RRset* a = cache_.get(target, RRType::A, now)) {
        for (const auto& rd : a->rdatas) {
          if (const auto* ad = rd.get_if<AData>())
            servers.push_back(Endpoint{IpAddr{ad->addr}, 53});
        }
      }
    }
    if (!servers.empty()) {
      rank_servers(servers);
      return servers;
    }
  }
  auto roots = config_.root_servers;
  rank_servers(roots);
  return roots;
}

Rcode RecursiveResolver::iterate(const Name& qname, RRType qtype, TimeNs now,
                                 Iteration& iter,
                                 std::vector<ResourceRecord>& answers) {
  // Cache fast paths.
  if (cache_.get_negative(qname, qtype, now) == NegativeState::NxDomain)
    return Rcode::NXDomain;
  if (cache_.get_negative(qname, qtype, now) == NegativeState::NoData)
    return Rcode::NoError;
  if (const dns::RRset* hit = cache_.get(qname, qtype, now)) {
    for (auto& rr : hit->to_records()) answers.push_back(std::move(rr));
    return Rcode::NoError;
  }
  // Cached CNAME redirects the chain.
  if (qtype != RRType::CNAME) {
    if (const dns::RRset* cn = cache_.get(qname, RRType::CNAME, now)) {
      auto records = cn->to_records();
      Name target;
      if (const auto* nd = records[0].rdata.get_if<NameData>()) target = nd->name;
      for (auto& rr : records) answers.push_back(std::move(rr));
      if (!target.is_root()) return iterate(target, qtype, now, iter, answers);
      return Rcode::NoError;
    }
  }

  std::vector<Endpoint> servers = best_servers(qname, now);
  Name current = qname;  // only for loop diagnostics

  while (iter.upstream_budget-- > 0) {
    if (servers.empty()) return Rcode::ServFail;
    const Endpoint& server = servers.front();

    Message q = Message::make_query(next_id_++, qname, qtype, false);
    if (config_.edns_udp_size > 0) {
      dns::Edns e;
      e.udp_payload_size = config_.edns_udp_size;
      e.dnssec_ok = config_.dnssec_ok;
      q.edns = e;
    }
    auto response = query_upstream(server, q);
    if (!response.ok()) {
      // Lame/unreachable server: try the next one.
      servers.erase(servers.begin());
      continue;
    }
    cache_response_sets(*response, now);

    if (response->header.rcode == Rcode::NXDomain) {
      uint32_t neg_ttl = 300;
      for (const auto& rr : response->authorities) {
        if (const auto* soa = rr.rdata.get_if<SoaData>())
          neg_ttl = std::min(rr.ttl, soa->minimum);
      }
      cache_.put_negative(qname, qtype, true, neg_ttl, now);
      return Rcode::NXDomain;
    }

    // Authoritative answer (or any answer records for the qname).
    bool has_answer = false;
    Name cname_target;
    for (const auto& rr : response->answers) {
      if (rr.name == qname && (rr.type == qtype || qtype == RRType::ANY)) {
        has_answer = true;
      }
      if (rr.name == qname && rr.type == RRType::CNAME && qtype != RRType::CNAME) {
        if (const auto* nd = rr.rdata.get_if<NameData>()) cname_target = nd->name;
      }
    }
    if (has_answer) {
      for (const auto& rr : response->answers) answers.push_back(rr);
      return Rcode::NoError;
    }
    if (!cname_target.is_root()) {
      for (const auto& rr : response->answers) answers.push_back(rr);
      return iterate(cname_target, qtype, now, iter, answers);
    }

    if (response->header.aa) {
      // Authoritative NODATA.
      uint32_t neg_ttl = 300;
      for (const auto& rr : response->authorities) {
        if (const auto* soa = rr.rdata.get_if<SoaData>())
          neg_ttl = std::min(rr.ttl, soa->minimum);
      }
      cache_.put_negative(qname, qtype, false, neg_ttl, now);
      return Rcode::NoError;
    }

    // Referral: follow the deepest NS set in the authority section.
    const ResourceRecord* best_ns = nullptr;
    for (const auto& rr : response->authorities) {
      if (rr.type != RRType::NS) continue;
      if (!qname.is_subdomain_of(rr.name)) continue;
      if (best_ns == nullptr || rr.name.label_count() > best_ns->name.label_count())
        best_ns = &rr;
    }
    if (best_ns == nullptr) return Rcode::ServFail;  // lame response
    if (!best_ns->name.is_subdomain_of(current) && current == qname) {
      // fine: first referral
    }
    if (best_ns->name.label_count() <= current.label_count() && current != qname) {
      return Rcode::ServFail;  // referral does not descend: loop
    }
    current = best_ns->name;

    // Next servers: glue from this response/cache; resolve NS names that
    // lack glue recursively (budget shared).
    std::vector<Name> ns_names;
    for (const auto& rr : response->authorities) {
      if (rr.type == RRType::NS && rr.name == best_ns->name) {
        if (const auto* nd = rr.rdata.get_if<NameData>()) ns_names.push_back(nd->name);
      }
    }
    servers.clear();
    for (const auto& ns_name : ns_names) {
      if (const dns::RRset* a = cache_.get(ns_name, RRType::A, now)) {
        for (const auto& rd : a->rdatas) {
          if (const auto* ad = rd.get_if<AData>())
            servers.push_back(Endpoint{IpAddr{ad->addr}, 53});
        }
      }
    }
    rank_servers(servers);
    if (servers.empty() && !ns_names.empty()) {
      // Glueless delegation: resolve the first NS target's address.
      std::vector<ResourceRecord> ns_answers;
      auto rc = iterate(ns_names[0], RRType::A, now, iter, ns_answers);
      if (rc == Rcode::NoError) {
        for (const auto& rr : ns_answers) {
          if (const auto* ad = rr.rdata.get_if<AData>())
            servers.push_back(Endpoint{IpAddr{ad->addr}, 53});
        }
      }
    }
  }
  return Rcode::ServFail;
}

Message RecursiveResolver::resolve(const Message& stub_query, TimeNs now) {
  ++stats_.stub_queries;
  Message response = Message::make_response(stub_query);
  response.header.ra = true;

  if (stub_query.questions.size() != 1) {
    response.header.rcode = Rcode::FormErr;
    return response;
  }
  const auto& q = stub_query.questions[0];

  uint64_t upstream_before = stats_.upstream_queries;
  Iteration iter{config_.max_upstream_queries};
  std::vector<ResourceRecord> answers;
  Rcode rc = iterate(q.qname, q.qtype, now, iter, answers);
  response.header.rcode = rc;
  response.answers = std::move(answers);
  if (rc == Rcode::ServFail) ++stats_.servfail;
  if (stats_.upstream_queries == upstream_before && rc != Rcode::ServFail)
    ++stats_.cache_answers;
  return response;
}

}  // namespace ldp::resolver
