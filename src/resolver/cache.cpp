#include "resolver/cache.hpp"

namespace ldp::resolver {

void DnsCache::put(const RRset& set, TimeNs now) {
  positive_[Key{set.name, set.type}] =
      PositiveEntry{set, now + static_cast<TimeNs>(set.ttl) * kSecond};
}

void DnsCache::put_negative(const Name& name, RRType type, bool nxdomain, uint32_t ttl,
                            TimeNs now) {
  // NXDOMAIN covers the whole name; key it type-independently under ANY.
  Key key{name, nxdomain ? RRType::ANY : type};
  negative_[key] = NegativeEntry{nxdomain, now + static_cast<TimeNs>(ttl) * kSecond};
}

const RRset* DnsCache::get(const Name& name, RRType type, TimeNs now) {
  auto it = positive_.find(Key{name, type});
  if (it == positive_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second.expires <= now) {
    positive_.erase(it);
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second.set;
}

NegativeState DnsCache::get_negative(const Name& name, RRType type, TimeNs now) {
  // NXDOMAIN first: it wins over per-type NODATA.
  auto nx = negative_.find(Key{name, RRType::ANY});
  if (nx != negative_.end()) {
    if (nx->second.expires > now) return NegativeState::NxDomain;
    negative_.erase(nx);
  }
  auto it = negative_.find(Key{name, type});
  if (it != negative_.end()) {
    if (it->second.expires > now) return NegativeState::NoData;
    negative_.erase(it);
  }
  return NegativeState::None;
}

void DnsCache::purge(TimeNs now) {
  for (auto it = positive_.begin(); it != positive_.end();) {
    it = it->second.expires <= now ? positive_.erase(it) : std::next(it);
  }
  for (auto it = negative_.begin(); it != negative_.end();) {
    it = it->second.expires <= now ? negative_.erase(it) : std::next(it);
  }
}

void DnsCache::clear() {
  positive_.clear();
  negative_.clear();
}

}  // namespace ldp::resolver
