// Iterative (recursive-mode) resolver. This is the "Recursive Server" box
// of Figure 1: it accepts stub queries, walks the hierarchy from the root
// hints downward following referrals, caches what it learns, and composes
// final answers. It is sans-IO: upstream queries go through a caller-
// provided callback, so the same resolver logic runs
//   * in-process against the meta-DNS-server + proxies (hierarchy tests),
//   * over the discrete-event simulator (latency experiments),
//   * over real sockets.
#pragma once

#include <functional>

#include "dns/message.hpp"
#include "resolver/cache.hpp"
#include "util/ip.hpp"

namespace ldp::resolver {

using dns::Message;

struct ResolverConfig {
  /// Root hints: addresses to start iteration from.
  std::vector<Endpoint> root_servers;
  /// Cap on upstream queries for a single stub query (loops, lame chains).
  int max_upstream_queries = 30;
  /// Cap on CNAME chain length.
  int max_cname_chain = 8;
  /// EDNS advertised size on upstream queries (0 = no EDNS).
  uint16_t edns_udp_size = 1232;
  bool dnssec_ok = false;

  /// Nameserver selection among a zone's servers. §2.3 notes a recursive
  /// "may choose any of them based on its own strategy" (cf. Yu et al.,
  /// "Authority Server Selection in DNS Caching Resolvers"): InOrder takes
  /// the first candidate; SrttBest tracks a smoothed RTT per server
  /// address and prefers the fastest, with a small exploration bonus for
  /// unmeasured servers and exponential penalties for failures.
  enum class ServerSelection { InOrder, SrttBest };
  ServerSelection selection = ServerSelection::SrttBest;
  /// Assumed RTT for servers never tried (low = explore them early).
  TimeNs srtt_initial = 10 * kMilli;
  /// Clock used to measure upstream RTT samples (injectable for tests and
  /// virtual-time experiments).
  std::function<TimeNs()> rtt_clock = [] { return mono_now_ns(); };
};

struct ResolverStats {
  uint64_t stub_queries = 0;
  uint64_t upstream_queries = 0;
  uint64_t cache_answers = 0;   ///< answered fully from cache
  uint64_t servfail = 0;
};

class RecursiveResolver {
 public:
  /// Upstream transport: send `query` to `server`, return its response.
  using Upstream = std::function<Result<Message>(const Endpoint& server,
                                                 const Message& query)>;

  RecursiveResolver(ResolverConfig config, Upstream upstream);

  /// Resolve one stub query at logical time `now` (drives cache TTLs).
  /// Always returns a response message (SERVFAIL on iteration failure).
  Message resolve(const Message& stub_query, TimeNs now);

  /// Convenience wrapper building the stub query.
  Message resolve(const dns::Name& qname, RRType qtype, TimeNs now);

  DnsCache& cache() { return cache_; }
  const ResolverStats& stats() const { return stats_; }

  /// Smoothed RTT for a server address, if any sample exists (diagnostics
  /// and tests).
  std::optional<TimeNs> srtt(const IpAddr& server) const;

 private:
  struct Iteration {
    int upstream_budget;
  };

  /// Iterate for (qname, qtype); fills `answers` and returns the rcode.
  dns::Rcode iterate(const dns::Name& qname, RRType qtype, TimeNs now,
                     Iteration& iter, std::vector<dns::ResourceRecord>& answers);

  /// Best starting nameserver addresses for qname from cache, else roots.
  std::vector<Endpoint> best_servers(const dns::Name& qname, TimeNs now);

  void cache_response_sets(const Message& response, TimeNs now);

  /// Order candidates per the configured selection strategy (in place).
  void rank_servers(std::vector<Endpoint>& servers) const;
  /// Send one upstream query, maintaining SRTT accounting.
  Result<Message> query_upstream(const Endpoint& server, const Message& q);

  ResolverConfig config_;
  Upstream upstream_;
  DnsCache cache_;
  ResolverStats stats_;
  uint16_t next_id_ = 1;
  // EWMA of measured upstream RTT per server address (SrttBest strategy).
  std::unordered_map<IpAddr, TimeNs, IpAddrHash> srtt_;
};

}  // namespace ldp::resolver
