#include "fault/fault.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/strings.hpp"

namespace ldp::fault {

void ImpairmentCounters::merge(const ImpairmentCounters& o) {
  processed += o.processed;
  dropped += o.dropped;
  blackholed += o.blackholed;
  flap_dropped += o.flap_dropped;
  duplicated += o.duplicated;
  corrupted += o.corrupted;
  reordered += o.reordered;
  delayed += o.delayed;
}

std::string ImpairmentCounters::summary() const {
  std::ostringstream out;
  out << "processed " << processed << "  drop " << dropped << "  blackhole "
      << blackholed << "  flap " << flap_dropped << "  dup " << duplicated
      << "  corrupt " << corrupted << "  reorder " << reordered << "  delay "
      << delayed;
  return out.str();
}

bool FaultSpec::enabled() const {
  return drop > 0 || dup > 0 || reorder > 0 || corrupt > 0 || delay > 0 ||
         jitter > 0 || blackhole_end > blackhole_start ||
         (flap_period > 0 && flap_down > 0);
}

namespace {

// Durations print in the largest unit that divides them exactly, so
// to_string output parses back to the identical spec.
std::string duration_to_string(TimeNs ns) {
  if (ns % kSecond == 0) return std::to_string(ns / kSecond) + "s";
  if (ns % kMilli == 0) return std::to_string(ns / kMilli) + "ms";
  if (ns % kMicro == 0) return std::to_string(ns / kMicro) + "us";
  return std::to_string(ns) + "ns";
}

// Strict decimal parse: the whole of `text` must be one finite non-negative
// number — trailing garbage ("0.5x"), a second dot ("1.2.3"), a sign, or an
// empty string are all rejected so a typo'd knob fails loudly instead of
// silently replaying with a half-parsed value.
Result<double> parse_number(std::string_view text) {
  std::string buf(text);
  if (buf.empty() || !std::isdigit(static_cast<unsigned char>(buf[0])))
    return Err("bad number '" + buf + "'");
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE ||
      !std::isfinite(value) || value < 0)
    return Err("bad number '" + buf + "'");
  return value;
}

}  // namespace

Result<TimeNs> parse_duration(std::string_view text) {
  size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.'))
    ++i;
  if (i == 0) return Err("bad duration '" + std::string(text) + "'");
  auto parsed = parse_number(text.substr(0, i));
  if (!parsed.ok())
    return Err("bad duration '" + std::string(text) + "'");
  double value = *parsed;
  std::string_view unit = text.substr(i);
  double scale;
  if (unit.empty() || unit == "ms") {
    scale = static_cast<double>(kMilli);
  } else if (unit == "s") {
    scale = static_cast<double>(kSecond);
  } else if (unit == "us") {
    scale = static_cast<double>(kMicro);
  } else if (unit == "ns") {
    scale = 1;
  } else {
    return Err("bad duration unit '" + std::string(unit) + "'");
  }
  return static_cast<TimeNs>(value * scale);
}

namespace {

Result<double> parse_probability(std::string_view key, std::string_view text) {
  auto p = parse_number(text);
  if (!p.ok())
    return Err("bad value for " + std::string(key) + ": '" + std::string(text) + "'");
  if (*p > 1)
    return Err(std::string(key) + " must be a probability in [0,1], got '" +
               std::string(text) + "'");
  return *p;
}

std::string prob_to_string(double p) {
  std::ostringstream out;
  out << p;  // default precision round-trips the specs users actually write
  return out.str();
}

}  // namespace

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  auto sep = [&out, first = true]() mutable {
    if (!first) out << ",";
    first = false;
  };
  if (drop > 0) {
    sep();
    out << "loss:" << prob_to_string(drop);
  }
  if (dup > 0) {
    sep();
    out << "dup:" << prob_to_string(dup);
  }
  if (reorder > 0) {
    sep();
    out << "reorder:" << prob_to_string(reorder) << ",gap:"
        << duration_to_string(reorder_gap);
  }
  if (corrupt > 0) {
    sep();
    out << "corrupt:" << prob_to_string(corrupt);
  }
  if (delay > 0) {
    sep();
    out << "delay:" << duration_to_string(delay);
  }
  if (jitter > 0) {
    sep();
    out << "jitter:" << duration_to_string(jitter);
  }
  if (blackhole_end > blackhole_start) {
    sep();
    out << "blackhole:" << duration_to_string(blackhole_start) << "-"
        << duration_to_string(blackhole_end);
  }
  if (flap_period > 0 && flap_down > 0) {
    sep();
    out << "flap:" << duration_to_string(flap_period) << "/"
        << duration_to_string(flap_down);
  }
  if (stall_querier >= 0) {
    sep();
    out << "querier_stall:" << stall_querier << "@"
        << duration_to_string(stall_after);
  }
  if (slow_client > 0) {
    sep();
    out << "slow_client:" << prob_to_string(slow_client) << ",drip:"
        << duration_to_string(slow_drip);
  }
  sep();
  out << "seed:" << seed;
  return out.str();
}

Result<FaultSpec> parse_fault_spec(std::string_view text) {
  FaultSpec spec;
  for (std::string_view item : split(text, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    size_t colon = item.find(':');
    if (colon == std::string_view::npos)
      return Err("fault spec item '" + std::string(item) + "' needs key:value");
    std::string_view key = item.substr(0, colon);
    std::string_view value = item.substr(colon + 1);
    if (key == "loss" || key == "drop") {
      spec.drop = LDP_TRY(parse_probability(key, value));
    } else if (key == "dup") {
      spec.dup = LDP_TRY(parse_probability(key, value));
    } else if (key == "reorder") {
      spec.reorder = LDP_TRY(parse_probability(key, value));
    } else if (key == "corrupt") {
      spec.corrupt = LDP_TRY(parse_probability(key, value));
    } else if (key == "gap") {
      spec.reorder_gap = LDP_TRY(parse_duration(value));
    } else if (key == "delay") {
      spec.delay = LDP_TRY(parse_duration(value));
    } else if (key == "jitter") {
      spec.jitter = LDP_TRY(parse_duration(value));
    } else if (key == "blackhole") {
      size_t dash = value.find('-');
      if (dash == std::string_view::npos)
        return Err("blackhole wants start-end, got '" + std::string(value) + "'");
      spec.blackhole_start = LDP_TRY(parse_duration(value.substr(0, dash)));
      spec.blackhole_end = LDP_TRY(parse_duration(value.substr(dash + 1)));
      if (spec.blackhole_end <= spec.blackhole_start)
        return Err("blackhole window is empty: '" + std::string(value) + "'");
    } else if (key == "flap") {
      size_t slash = value.find('/');
      if (slash == std::string_view::npos)
        return Err("flap wants period/down, got '" + std::string(value) + "'");
      spec.flap_period = LDP_TRY(parse_duration(value.substr(0, slash)));
      spec.flap_down = LDP_TRY(parse_duration(value.substr(slash + 1)));
      if (spec.flap_period <= 0 || spec.flap_down <= 0 ||
          spec.flap_down >= spec.flap_period)
        return Err("flap needs 0 < down < period, got '" + std::string(value) + "'");
    } else if (key == "querier_stall") {
      // "<id>@<delay>"; the delay is optional (defaults to stall-at-start).
      std::string_view id_part = value;
      size_t at = value.find('@');
      if (at != std::string_view::npos) {
        id_part = value.substr(0, at);
        spec.stall_after = LDP_TRY(parse_duration(value.substr(at + 1)));
      }
      int64_t id = -1;
      auto [p, ec] =
          std::from_chars(id_part.data(), id_part.data() + id_part.size(), id);
      if (ec != std::errc{} || p != id_part.data() + id_part.size() || id < 0)
        return Err("querier_stall wants <querier-id>[@<delay>], got '" +
                   std::string(value) + "'");
      spec.stall_querier = id;
    } else if (key == "slow_client") {
      spec.slow_client = LDP_TRY(parse_probability(key, value));
    } else if (key == "drip") {
      spec.slow_drip = LDP_TRY(parse_duration(value));
      if (spec.slow_drip <= 0)
        return Err("drip wants a positive interval, got '" + std::string(value) + "'");
    } else if (key == "seed") {
      uint64_t s = 0;
      auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), s);
      if (ec != std::errc{} || p != value.data() + value.size())
        return Err("bad seed '" + std::string(value) + "'");
      spec.seed = s;
    } else {
      return Err("unknown fault spec key '" + std::string(key) + "'");
    }
  }
  return spec;
}

bool FaultSpec::is_slow_client(uint64_t conn_index) const {
  if (slow_client <= 0) return false;
  if (slow_client >= 1) return true;
  // Pure function of (seed, conn_index): one draw from a throwaway engine
  // seeded per connection, so no shared stream position is consumed and the
  // verdict is independent of accept order across server restarts.
  Rng rng(stream_seed(seed, "slow_client:" + std::to_string(conn_index)));
  return rng.uniform01() < slow_client;
}

uint64_t stream_seed(uint64_t base_seed, std::string_view name) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (char c : name) h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  // splitmix-style final mix so nearby names land far apart.
  uint64_t z = base_seed ^ h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

FaultStream::FaultStream(const FaultSpec& spec, std::string_view name)
    : spec_(spec),
      name_(name),
      decide_(stream_seed(spec.seed, name)),
      corrupt_(stream_seed(spec.seed + 0x9e3779b97f4a7c15ull, name)) {}

Verdict FaultStream::next(TimeNs now) {
  if (origin_ < 0) origin_ = now;
  ++counters_.processed;

  // Fixed draw schedule (determinism contract): five uniforms per packet,
  // consumed whether or not their impairment is configured or wins.
  double d_drop = decide_.uniform01();
  double d_dup = decide_.uniform01();
  double d_corrupt = decide_.uniform01();
  double d_reorder = decide_.uniform01();
  double d_jitter = decide_.uniform01();

  Verdict v;
  TimeNs offset = now - origin_;
  if (spec_.blackhole_end > spec_.blackhole_start &&
      offset >= spec_.blackhole_start && offset < spec_.blackhole_end) {
    ++counters_.blackholed;
    v.action = Action::Drop;
    v.reason = DropReason::Blackhole;
    return v;
  }
  if (spec_.flap_period > 0 && spec_.flap_down > 0 &&
      offset % spec_.flap_period < spec_.flap_down) {
    ++counters_.flap_dropped;
    v.action = Action::Drop;
    v.reason = DropReason::Flap;
    return v;
  }
  if (d_drop < spec_.drop) {
    ++counters_.dropped;
    v.action = Action::Drop;
    v.reason = DropReason::Loss;
    return v;
  }
  if (d_dup < spec_.dup) {
    ++counters_.duplicated;
    v.action = Action::Duplicate;
  } else if (d_corrupt < spec_.corrupt) {
    ++counters_.corrupted;
    v.action = Action::Corrupt;
  }
  if (d_reorder < spec_.reorder) {
    ++counters_.reordered;
    v.extra_delay += spec_.reorder_gap;
  }
  if (spec_.delay > 0 || spec_.jitter > 0) {
    v.extra_delay += spec_.delay +
                     static_cast<TimeNs>(d_jitter * static_cast<double>(spec_.jitter));
    ++counters_.delayed;
  }
  return v;
}

void FaultStream::corrupt(std::vector<uint8_t>& payload) {
  if (payload.empty()) return;
  // Fixed-consumption draws (one engine word each, via modulo) so the exact
  // number of words this call ate is known — checkpoint/resume fast-forwards
  // the corruption engine by word count. Modulo bias is irrelevant here:
  // corruption only needs to be deterministic, not uniform.
  auto draw = [this](uint64_t lo, uint64_t hi) {
    ++corrupt_words_;
    return lo + corrupt_.next_u64() % (hi - lo + 1);
  };
  size_t flips = 1 + draw(0, spec_.corrupt_max_bytes > 0
                                 ? spec_.corrupt_max_bytes - 1
                                 : 0);
  for (size_t i = 0; i < flips; ++i) {
    size_t pos = draw(0, payload.size() - 1);
    // XOR with a non-zero byte so the packet always actually changes.
    payload[pos] ^= static_cast<uint8_t>(draw(1, 255));
  }
}

FaultStream::Position FaultStream::position(TimeNs real_origin) const {
  Position pos;
  pos.packets = packets_base_ + counters_.processed;
  pos.corrupt_words = corrupt_words_base_ + corrupt_words_;
  pos.origin_offset = origin_ < 0 ? kNoOrigin : origin_ - real_origin;
  return pos;
}

void FaultStream::restore(const Position& pos, TimeNs real_origin) {
  // Burn the decision draws through the same call path next() uses (five
  // uniform01 per packet), so engine-word consumption matches exactly no
  // matter how the standard library implements the distribution.
  for (uint64_t i = 0; i < pos.packets * 5; ++i) decide_.uniform01();
  corrupt_.engine().discard(pos.corrupt_words);
  packets_base_ = pos.packets;
  corrupt_words_base_ = pos.corrupt_words;
  if (pos.origin_offset != kNoOrigin) origin_ = real_origin + pos.origin_offset;
}

}  // namespace ldp::fault
