// Deterministic, seed-driven network impairment (the adversary the replay
// fidelity claims must survive): a FaultSpec describes *what* a link does to
// packets — loss, duplication, reordering, delay/jitter, corruption, a
// blackhole window, periodic link flaps — and a FaultStream turns the spec
// into per-packet verdicts from a *named* PRNG stream, so every scenario is
// exactly reproducible and independent of how sources are partitioned
// across queriers or controllers (the stream name, not thread interleaving,
// decides the draw sequence).
//
// Determinism contract: a stream consumes a fixed number of draws per
// packet regardless of the verdicts it hands out, so the decision for
// packet k depends only on (seed, stream name, k) — plus the packet time
// for the window-based impairments (blackhole, flap), which are pure
// functions of time. Payload corruption draws from a separate engine so
// variable-length corruption never perturbs the decision sequence.
//
// Three consumers share these scenario definitions (DESIGN.md insertion
// diagram): the net/ socket shim (real-socket replay + server frontend),
// the proxy pipeline, and the simnet discrete-event hook.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace ldp::fault {

/// Per-impairment event counts. Mergeable like LifecycleCounters so
/// per-querier / per-stream instances combine without locks, and
/// equality-comparable so regression tests can assert byte-identical
/// scenario outcomes across runs.
struct ImpairmentCounters {
  uint64_t processed = 0;    ///< packets offered to the stream
  uint64_t dropped = 0;      ///< random loss
  uint64_t blackholed = 0;   ///< dropped inside the blackhole window
  uint64_t flap_dropped = 0; ///< dropped while the link was flapped down
  uint64_t duplicated = 0;   ///< delivered twice
  uint64_t corrupted = 0;    ///< delivered with flipped bytes
  uint64_t reordered = 0;    ///< held back past later packets
  uint64_t delayed = 0;      ///< given extra latency (delay/jitter)

  uint64_t lost() const { return dropped + blackholed + flap_dropped; }

  void merge(const ImpairmentCounters& o);
  bool operator==(const ImpairmentCounters& o) const = default;

  /// "drop 12  dup 3 ..." single-line report for tools and tests.
  std::string summary() const;
};

/// A named impairment scenario. Probabilities are per-packet in [0,1];
/// times are nanoseconds. Default-constructed == transparent link.
struct FaultSpec {
  double drop = 0;     ///< random loss probability
  double dup = 0;      ///< duplication probability
  double reorder = 0;  ///< probability a packet is held back reorder_gap
  double corrupt = 0;  ///< probability of byte corruption
  TimeNs reorder_gap = 10 * kMilli;  ///< how far a reordered packet lags
  TimeNs delay = 0;    ///< fixed extra one-way latency
  TimeNs jitter = 0;   ///< uniform extra latency in [0, jitter)
  /// Blackhole window [start, end) relative to the stream's first packet:
  /// everything inside is dropped (a routing outage). Disabled when
  /// end <= start.
  TimeNs blackhole_start = 0;
  TimeNs blackhole_end = 0;
  /// Periodic link flap: every `flap_period`, the link is down for the
  /// first `flap_down` of the period (measured from the stream's first
  /// packet). Disabled when either is 0. On TCP message paths a flap drop
  /// is surfaced as a connection loss (the link went away under the
  /// connection), exercising reconnect.
  TimeNs flap_period = 0;
  TimeNs flap_down = 0;
  uint64_t seed = 1;
  size_t corrupt_max_bytes = 4;  ///< bytes flipped per corrupted packet (>=1)
  /// Process-failure injection ("querier_stall:<id>@<delay>"): the querier
  /// with this engine-global id wedges (stops heartbeating and processing)
  /// `stall_after` into its run, exercising the supervision/recovery layer.
  /// Not a link impairment: enabled() ignores it, and no PRNG draws are
  /// consumed — the stall is a pure function of (id, time). -1 = disabled.
  int64_t stall_querier = -1;
  TimeNs stall_after = 0;
  /// Slowloris injection ("slow_client:<prob>[,drip:<interval>]"): each TCP
  /// connection is independently a "slow client" with this probability — it
  /// dribbles one byte of a framed query every `slow_drip` instead of
  /// completing messages, pinning a server connection slot until the
  /// server's slow-client defenses (read deadline / partial-buffer cap)
  /// close it. Like querier_stall this is a behaviour knob, not a link
  /// impairment: enabled() ignores it, no stream draws are consumed, and
  /// the decision for connection k is a pure function of (seed, k) — see
  /// is_slow_client().
  double slow_client = 0;
  TimeNs slow_drip = 100 * kMilli;

  /// Deterministic slowloris verdict for the `conn_index`-th connection a
  /// querier opens (per-querier open order — a thread-shared counter would
  /// make the mix depend on scheduling): pure function of (seed,
  /// conn_index), independent of any FaultStream's draw position.
  bool is_slow_client(uint64_t conn_index) const;

  /// Anything to do at all? (Counters still run when false.)
  bool enabled() const;
  /// Canonical "loss:0.05,reorder:0.01,seed:42" form (parse round-trips).
  std::string to_string() const;
};

/// Parse "loss:0.05,dup:0.01,reorder:0.02,gap:20ms,delay:5ms,jitter:2ms,
/// corrupt:0.01,blackhole:2s-3s,flap:500ms/100ms,slow_client:0.3,drip:50ms,
/// seed:42". Keys may appear in any order; unknown keys, bad numbers, and
/// out-of-range probabilities are errors. Durations accept ns/us/ms/s
/// suffixes (bare numbers are ms).
Result<FaultSpec> parse_fault_spec(std::string_view text);

/// Parse one duration token ("20ms", "2s", "1500us", "5" = 5 ms). Shared by
/// the fault spec and the server --limits/--overload mini-languages so every
/// operator-facing knob accepts the same duration syntax.
Result<TimeNs> parse_duration(std::string_view text);

/// What a FaultStream decided to do with one packet.
enum class Action : uint8_t {
  Deliver = 0,    ///< pass through (possibly with extra_delay)
  Drop = 1,       ///< eat the packet silently
  Duplicate = 2,  ///< deliver twice
  Corrupt = 3,    ///< deliver with flipped bytes (use FaultStream::corrupt)
};

/// Why a Drop happened — TCP integration maps Flap to connection loss.
enum class DropReason : uint8_t { None = 0, Loss = 1, Blackhole = 2, Flap = 3 };

struct Verdict {
  Action action = Action::Deliver;
  DropReason reason = DropReason::None;
  /// Extra one-way latency (reorder hold-back + delay + jitter). Meaningful
  /// for non-Drop actions; consumers without a clock (the proxy pipeline)
  /// may deliver immediately — the decision sequence is unaffected.
  TimeNs extra_delay = 0;

  bool is_drop() const { return action == Action::Drop; }
};

/// One named decision stream over a FaultSpec. Not thread-safe: each
/// consumer (socket, connection, pipeline reader) owns its stream.
class FaultStream {
 public:
  FaultStream(const FaultSpec& spec, std::string_view name);

  /// Resumable draw position (checkpoint/resume): how many packets this
  /// stream has decided and how many raw words the corruption engine has
  /// consumed, cumulative across restores. `origin_offset` anchors the
  /// blackhole/flap windows relative to the caller's replay origin
  /// (real_origin), so a resumed replay re-derives the same trace-relative
  /// windows on a fresh monotonic timeline; kNoOrigin = not latched yet
  /// (the offset itself may be negative in fast mode, so -1 won't do).
  static constexpr TimeNs kNoOrigin = INT64_MIN;
  struct Position {
    uint64_t packets = 0;
    uint64_t corrupt_words = 0;
    TimeNs origin_offset = kNoOrigin;

    bool operator==(const Position& o) const = default;
  };

  /// Current cumulative position, with the window origin expressed relative
  /// to `real_origin`.
  Position position(TimeNs real_origin) const;

  /// Fast-forward a fresh stream to `pos`: burns exactly the draws the
  /// first `pos.packets` packets (and corrupt words) consumed, without
  /// touching the counters, so the next packet after restore sees the same
  /// verdict it would have seen in an uninterrupted run. Call before the
  /// first next().
  void restore(const Position& pos, TimeNs real_origin);

  /// Decide one packet's fate at time `now` (monotonic or virtual — only
  /// differences matter; the first call latches the stream origin for the
  /// blackhole/flap windows).
  Verdict next(TimeNs now);

  /// Flip 1..corrupt_max_bytes bytes in place (deterministic draws from the
  /// stream's corruption engine). No-op on an empty payload.
  void corrupt(std::vector<uint8_t>& payload);

  const ImpairmentCounters& counters() const { return counters_; }
  const std::string& name() const { return name_; }

 private:
  FaultSpec spec_;
  std::string name_;
  Rng decide_;   ///< fixed draws/packet — the determinism contract
  Rng corrupt_;  ///< variable draws, isolated from decisions
  TimeNs origin_ = -1;  ///< latched at the first packet
  ImpairmentCounters counters_;
  // Cumulative draw accounting for checkpoint/resume: restored base plus
  // what this incarnation consumed.
  uint64_t packets_base_ = 0;
  uint64_t corrupt_words_base_ = 0;
  uint64_t corrupt_words_ = 0;
};

/// Stable stream seed: spec.seed combined with an FNV-1a hash of the stream
/// name, so "udp:10.0.0.1" draws the same sequence in every run and in
/// every process that names it identically.
uint64_t stream_seed(uint64_t base_seed, std::string_view name);

}  // namespace ldp::fault
