// Self-contained pcap (libpcap classic format) reader/writer for DNS
// traffic. LDplayer's input engine accepts network traces directly
// (Figure 3, "pcap, erf ..."); this codec covers the pcap side without an
// external libpcap dependency.
//
// Scope: linktype RAW-IP (101) and Ethernet (1); IPv4 and IPv6; UDP
// datagrams and DNS-over-TCP with full in-order stream reassembly (messages
// spanning segments, several messages per segment, length prefixes split
// across segments). Malformed or non-DNS packets are skipped and counted,
// not fatal — real captures always contain junk.
#pragma once

#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "trace/packet.hpp"
#include "trace/record.hpp"

namespace ldp::trace {

/// Streams records out of a pcap file.
class PcapReader {
 public:
  /// Opens and validates the global header.
  static Result<PcapReader> open(const std::string& path);

  /// Parse from an in-memory buffer (tests and composed pipelines).
  static Result<PcapReader> from_bytes(std::vector<uint8_t> bytes);

  /// Next DNS record, or nullopt at EOF. Packets that are not parseable
  /// DNS-over-UDP/TCP are skipped (see skipped()).
  Result<std::optional<TraceRecord>> next();

  /// Drain the remaining stream.
  Result<std::vector<TraceRecord>> read_all();

  uint64_t skipped() const { return skipped_; }

 private:
  PcapReader() = default;

  std::vector<uint8_t> data_;
  size_t pos_ = 0;
  uint32_t linktype_ = 0;
  bool nanosecond_ts_ = false;
  uint64_t skipped_ = 0;
  TcpReassembler reassembler_;
  std::deque<TraceRecord> pending_;  // extra messages one segment completed
};

/// Writes records as a pcap file (RAW-IP linktype, microsecond timestamps).
class PcapWriter {
 public:
  /// In-memory writer; call take() for the bytes or save() for a file.
  PcapWriter();

  void add(const TraceRecord& rec);

  std::vector<uint8_t> take() &&;
  Result<void> save(const std::string& path) const;

  size_t record_count() const { return count_; }

 private:
  ByteWriter w_;
  size_t count_ = 0;
  TcpSeqAllocator seq_alloc_;
};

/// IP-style ones-complement checksum over a byte range (used for the IPv4
/// header and the UDP pseudo-header checksum the proxies must fix after
/// rewriting addresses, §2.4).
uint16_t inet_checksum(std::span<const uint8_t> data);

/// UDP checksum including the IPv4 pseudo-header.
uint16_t udp4_checksum(Ip4 src, Ip4 dst, std::span<const uint8_t> udp_segment);

}  // namespace ldp::trace
