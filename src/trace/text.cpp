#include "trace/text.hpp"

#include "util/strings.hpp"

namespace ldp::trace {

using dns::Message;

Result<std::string> record_to_text(const TraceRecord& rec) {
  Message msg = LDP_TRY(rec.message());
  if (msg.questions.size() != 1)
    return Err("query must carry exactly one question");

  std::string flags;
  auto add_flag = [&flags](bool on, const char* name) {
    if (!on) return;
    if (!flags.empty()) flags += ",";
    flags += name;
  };
  add_flag(msg.header.qr, "qr");
  add_flag(msg.header.aa, "aa");
  add_flag(msg.header.tc, "tc");
  add_flag(msg.header.rd, "rd");
  add_flag(msg.header.ra, "ra");
  add_flag(msg.header.ad, "ad");
  add_flag(msg.header.cd, "cd");
  add_flag(msg.edns.has_value() && msg.edns->dnssec_ok, "do");
  if (flags.empty()) flags = "-";

  std::string edns = msg.edns.has_value()
                         ? std::to_string(msg.edns->udp_payload_size)
                         : "-";

  const auto& q = msg.questions[0];
  return format_seconds_ns(rec.timestamp) + " " + rec.src.addr.to_string() + " " +
         std::to_string(rec.src.port) + " " + rec.dst.addr.to_string() + " " +
         std::to_string(rec.dst.port) + " " + transport_name(rec.transport) + " " +
         std::to_string(msg.header.id) + " " + q.qname.to_string() + " " +
         dns::rrclass_to_string(q.qclass) + " " + dns::rrtype_to_string(q.qtype) +
         " " + flags + " " + edns;
}

Result<TraceRecord> record_from_text(std::string_view line) {
  auto cols = split_ws(line);
  if (cols.size() != 12)
    return Err("expected 12 columns, got " + std::to_string(cols.size()));

  TraceRecord rec;
  rec.timestamp = LDP_TRY(parse_seconds_ns(cols[0]));
  rec.src.addr = LDP_TRY(IpAddr::parse(cols[1]));
  uint64_t sport = LDP_TRY(parse_u64(cols[2]));
  rec.dst.addr = LDP_TRY(IpAddr::parse(cols[3]));
  uint64_t dport = LDP_TRY(parse_u64(cols[4]));
  if (sport > 0xffff || dport > 0xffff) return Err("port out of range");
  rec.src.port = static_cast<uint16_t>(sport);
  rec.dst.port = static_cast<uint16_t>(dport);
  rec.transport = LDP_TRY(transport_from_string(cols[5]));

  Message msg;
  uint64_t id = LDP_TRY(parse_u64(cols[6]));
  if (id > 0xffff) return Err("id out of range");
  msg.header.id = static_cast<uint16_t>(id);

  dns::Question q;
  q.qname = LDP_TRY(dns::Name::parse(cols[7]));
  q.qclass = LDP_TRY(dns::rrclass_from_string(cols[8]));
  q.qtype = LDP_TRY(dns::rrtype_from_string(cols[9]));
  msg.questions.push_back(std::move(q));

  bool dnssec_ok = false;
  if (cols[10] != "-") {
    for (auto flag : split(cols[10], ',')) {
      if (flag == "qr") msg.header.qr = true;
      else if (flag == "aa") msg.header.aa = true;
      else if (flag == "tc") msg.header.tc = true;
      else if (flag == "rd") msg.header.rd = true;
      else if (flag == "ra") msg.header.ra = true;
      else if (flag == "ad") msg.header.ad = true;
      else if (flag == "cd") msg.header.cd = true;
      else if (flag == "do") dnssec_ok = true;
      else return Err("unknown flag: " + std::string(flag));
    }
  }
  if (cols[11] != "-") {
    dns::Edns e;
    uint64_t size = LDP_TRY(parse_u64(cols[11]));
    if (size > 0xffff) return Err("EDNS size out of range");
    e.udp_payload_size = static_cast<uint16_t>(size);
    e.dnssec_ok = dnssec_ok;
    msg.edns = e;
  } else if (dnssec_ok) {
    return Err("do flag requires an EDNS size");
  }

  rec.direction = msg.header.qr ? Direction::Response : Direction::Query;
  rec.dns_payload = msg.to_wire();
  return rec;
}

Result<std::string> trace_to_text(const std::vector<TraceRecord>& records) {
  std::string out;
  out.reserve(records.size() * 96);
  for (const auto& rec : records) {
    if (rec.direction != Direction::Query) continue;
    out += LDP_TRY(record_to_text(rec));
    out += "\n";
  }
  return out;
}

Result<std::vector<TraceRecord>> trace_from_text(std::string_view text) {
  std::vector<TraceRecord> out;
  size_t line_no = 0;
  for (auto line : split(text, '\n')) {
    ++line_no;
    auto stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto rec = record_from_text(stripped);
    if (!rec.ok())
      return Err("line " + std::to_string(line_no) + ": " + rec.error().message);
    out.push_back(std::move(*rec));
  }
  return out;
}

}  // namespace ldp::trace
