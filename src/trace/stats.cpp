#include "trace/stats.hpp"

#include <cmath>
#include <cstdio>
#include <unordered_set>

namespace ldp::trace {

TraceStats compute_stats(const std::vector<TraceRecord>& records) {
  TraceStats stats;
  stats.records = records.size();
  if (records.empty()) return stats;

  stats.start = records.front().timestamp;
  stats.end = records.front().timestamp;

  std::unordered_set<IpAddr, IpAddrHash> clients;
  double sum = 0, sum2 = 0;
  size_t gaps = 0;
  TimeNs prev_query = 0;
  bool have_prev = false;

  for (const auto& rec : records) {
    stats.start = std::min(stats.start, rec.timestamp);
    stats.end = std::max(stats.end, rec.timestamp);
    if (rec.direction == Direction::Query) {
      ++stats.queries;
      clients.insert(rec.src.addr);
      if (have_prev) {
        double gap = ns_to_sec(rec.timestamp - prev_query);
        sum += gap;
        sum2 += gap * gap;
        ++gaps;
      }
      prev_query = rec.timestamp;
      have_prev = true;
    } else {
      ++stats.responses;
    }
  }
  stats.unique_clients = clients.size();
  if (gaps > 0) {
    stats.interarrival_mean_s = sum / static_cast<double>(gaps);
    double var = sum2 / static_cast<double>(gaps) -
                 stats.interarrival_mean_s * stats.interarrival_mean_s;
    stats.interarrival_stdev_s = var > 0 ? std::sqrt(var) : 0;
  }
  return stats;
}

std::unordered_map<IpAddr, uint64_t, IpAddrHash> per_client_load(
    const std::vector<TraceRecord>& records) {
  std::unordered_map<IpAddr, uint64_t, IpAddrHash> load;
  for (const auto& rec : records) {
    if (rec.direction == Direction::Query) ++load[rec.src.addr];
  }
  return load;
}

std::string format_stats_row(const std::string& name, const TraceStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-12s %8.0fs  %.6f ±%.6f  %9zu  %12zu", name.c_str(),
                stats.duration_s(), stats.interarrival_mean_s,
                stats.interarrival_stdev_s, stats.unique_clients, stats.queries);
  return buf;
}

}  // namespace ldp::trace
