#include "trace/record.hpp"

namespace ldp::trace {

TraceRecord make_query_record(TimeNs t, Endpoint src, Endpoint dst,
                              const dns::Message& msg, Transport transport) {
  TraceRecord rec;
  rec.timestamp = t;
  rec.src = src;
  rec.dst = dst;
  rec.transport = transport;
  rec.direction = msg.header.qr ? Direction::Response : Direction::Query;
  rec.dns_payload = msg.to_wire();
  return rec;
}

}  // namespace ldp::trace
