// Customized binary stream of internal messages (§2.5 "Binary for fast
// processing"): the pre-processed replay input. Each message is
// length-prefixed so the reader can stream without parsing DNS payloads,
// which is what lets the input engine keep up with fast traces.
//
// Layout:
//   file header:  "LDPB" magic, u16 version
//   per message:  u16 total_length (bytes after this field), then
//                 u64 timestamp_ns, u8 transport, u8 direction,
//                 u8 addr_family (4|6), src addr bytes, u16 src_port,
//                 dst addr bytes, u16 dst_port,
//                 u16 payload_len, payload bytes
#pragma once

#include <optional>

#include "trace/record.hpp"

namespace ldp::trace {

class BinaryWriter {
 public:
  BinaryWriter();

  void add(const TraceRecord& rec);

  std::vector<uint8_t> take() &&;
  Result<void> save(const std::string& path) const;

  size_t record_count() const { return count_; }
  size_t byte_size() const { return w_.size(); }

 private:
  ByteWriter w_;
  size_t count_ = 0;
};

class BinaryReader {
 public:
  static Result<BinaryReader> from_bytes(std::vector<uint8_t> bytes);
  static Result<BinaryReader> open(const std::string& path);

  /// Next record, or nullopt at end. Malformed framing is an error (this is
  /// our own format; corruption should not be silently skipped).
  Result<std::optional<TraceRecord>> next();

  Result<std::vector<TraceRecord>> read_all();

 private:
  BinaryReader() = default;
  std::vector<uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace ldp::trace
