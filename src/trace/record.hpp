// The trace record: one captured DNS message with its timing and transport
// metadata. This is the unit that flows through every LDplayer input path
// (Figure 3): pcap → records → plain text → records → internal binary.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/message.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"
#include "util/transport.hpp"

namespace ldp::trace {

enum class Direction : uint8_t { Query = 0, Response = 1 };

struct TraceRecord {
  TimeNs timestamp = 0;  ///< capture time, ns since Unix epoch
  Endpoint src;
  Endpoint dst;
  Transport transport = Transport::Udp;
  Direction direction = Direction::Query;
  std::vector<uint8_t> dns_payload;  ///< DNS message in wire format

  /// Decode the payload (convenience; callers on hot paths keep the bytes).
  Result<dns::Message> message() const { return dns::Message::from_wire(dns_payload); }

  bool operator==(const TraceRecord& o) const {
    return timestamp == o.timestamp && src == o.src && dst == o.dst &&
           transport == o.transport && direction == o.direction &&
           dns_payload == o.dns_payload;
  }
};

/// Build a query record from parts (test and generator helper).
TraceRecord make_query_record(TimeNs t, Endpoint src, Endpoint dst,
                              const dns::Message& msg,
                              Transport transport = Transport::Udp);

}  // namespace ldp::trace
