#include "trace/packet.hpp"

#include <algorithm>
#include <array>

#include "trace/pcap.hpp"  // checksum helpers

namespace ldp::trace {

namespace {
constexpr uint16_t kDnsPort = 53;
constexpr uint16_t kDotPort = 853;  // DNS over TLS

bool is_dns_port(uint16_t sport, uint16_t dport) {
  return sport == kDnsPort || dport == kDnsPort || sport == kDotPort ||
         dport == kDotPort;
}

Transport transport_for(uint16_t sport, uint16_t dport) {
  return (sport == kDotPort || dport == kDotPort) ? Transport::Tls : Transport::Tcp;
}

Direction direction_for(uint16_t sport) {
  return (sport == kDnsPort || sport == kDotPort) ? Direction::Response
                                                  : Direction::Query;
}

// Strict parser; the public wrapper converts failures into "skip".
Result<ClassifiedPacket> classify_strict(std::span<const uint8_t> packet, TimeNs ts) {
  ByteReader pkt(packet);
  if (pkt.remaining() < 1) return Err("empty packet");
  uint8_t ver = static_cast<uint8_t>(packet[pkt.pos()] >> 4);

  IpAddr src_addr, dst_addr;
  uint8_t ip_proto = 0;
  if (ver == 4) {
    if (pkt.remaining() < 20) return Err("short IPv4 header");
    uint8_t vihl = LDP_TRY(pkt.u8());
    size_t ihl = static_cast<size_t>(vihl & 0xf) * 4;
    if (ihl < 20) return Err("bad IHL");
    LDP_TRY_VOID(pkt.skip(7));  // tos, total length, id, frag
    LDP_TRY_VOID(pkt.u8());     // ttl
    ip_proto = LDP_TRY(pkt.u8());
    LDP_TRY_VOID(pkt.u16());  // checksum
    src_addr = IpAddr{Ip4{LDP_TRY(pkt.u32())}};
    dst_addr = IpAddr{Ip4{LDP_TRY(pkt.u32())}};
    if (ihl > 20) LDP_TRY_VOID(pkt.skip(ihl - 20));
  } else if (ver == 6) {
    if (pkt.remaining() < 40) return Err("short IPv6 header");
    LDP_TRY_VOID(pkt.skip(4));  // version/class/flow
    LDP_TRY_VOID(pkt.u16());    // payload length
    ip_proto = LDP_TRY(pkt.u8());
    LDP_TRY_VOID(pkt.u8());  // hop limit
    std::array<uint8_t, 16> s, d;
    auto sb = LDP_TRY(pkt.bytes(16));
    std::copy(sb.begin(), sb.end(), s.begin());
    auto db = LDP_TRY(pkt.bytes(16));
    std::copy(db.begin(), db.end(), d.begin());
    src_addr = IpAddr{Ip6{s}};
    dst_addr = IpAddr{Ip6{d}};
  } else {
    return Err("not IP");
  }

  ClassifiedPacket out;
  if (ip_proto == 17) {  // UDP
    if (pkt.remaining() < 8) return Err("short UDP header");
    uint16_t sport = LDP_TRY(pkt.u16());
    uint16_t dport = LDP_TRY(pkt.u16());
    uint16_t udp_len = LDP_TRY(pkt.u16());
    LDP_TRY_VOID(pkt.u16());  // checksum
    if (!is_dns_port(sport, dport) || udp_len < 8) return Err("not DNS UDP");
    TraceRecord rec;
    rec.timestamp = ts;
    size_t payload_len = std::min<size_t>(udp_len - 8, pkt.remaining());
    rec.dns_payload = LDP_TRY(pkt.bytes_copy(payload_len));
    if (rec.dns_payload.size() < 12) return Err("shorter than a DNS header");
    rec.transport = Transport::Udp;
    rec.src = Endpoint{src_addr, sport};
    rec.dst = Endpoint{dst_addr, dport};
    rec.direction = direction_for(sport);
    out.udp_record = std::move(rec);
    return out;
  }
  if (ip_proto == 6) {  // TCP: hand the segment to the reassembler
    if (pkt.remaining() < 20) return Err("short TCP header");
    TcpSegment seg;
    seg.timestamp = ts;
    uint16_t sport = LDP_TRY(pkt.u16());
    uint16_t dport = LDP_TRY(pkt.u16());
    if (!is_dns_port(sport, dport)) return Err("not DNS TCP");
    seg.seq = LDP_TRY(pkt.u32());
    LDP_TRY_VOID(pkt.u32());  // ack
    uint8_t offset_byte = LDP_TRY(pkt.u8());
    size_t header_len = static_cast<size_t>(offset_byte >> 4) * 4;
    uint8_t flags = LDP_TRY(pkt.u8());
    seg.syn = (flags & 0x02) != 0;
    seg.fin = (flags & 0x01) != 0;
    seg.rst = (flags & 0x04) != 0;
    if (header_len < 20 || pkt.remaining() < header_len - 14)
      return Err("bad TCP header length");
    LDP_TRY_VOID(pkt.skip(header_len - 14));  // rest of the TCP header
    seg.payload = LDP_TRY(pkt.bytes_copy(pkt.remaining()));
    seg.src = Endpoint{src_addr, sport};
    seg.dst = Endpoint{dst_addr, dport};
    out.tcp_segment = std::move(seg);
    return out;
  }
  return Err("not UDP/TCP");
}

}  // namespace

ClassifiedPacket classify_ip_packet(std::span<const uint8_t> packet, TimeNs timestamp) {
  auto parsed = classify_strict(packet, timestamp);
  if (!parsed.ok()) return ClassifiedPacket{};
  return std::move(*parsed);
}

std::vector<TraceRecord> TcpReassembler::feed(const TcpSegment& segment) {
  std::vector<TraceRecord> out;
  auto key = std::make_pair(segment.src, segment.dst);

  if (segment.rst) {
    flows_.erase(key);
    return out;
  }
  if (segment.syn) {
    Flow& flow = flows_[key];
    flow.have_seq = true;
    flow.next_seq = segment.seq + 1;  // SYN consumes one sequence number
    flow.buffer.clear();
    return out;
  }

  Flow& flow = flows_[key];
  if (!segment.payload.empty()) {
    if (!flow.have_seq) {
      // Mid-stream capture start: adopt this segment's position.
      flow.have_seq = true;
      flow.next_seq = segment.seq;
    }
    // Sequence comparison in modular arithmetic.
    int32_t delta = static_cast<int32_t>(segment.seq - flow.next_seq);
    if (delta == 0) {
      flow.buffer.insert(flow.buffer.end(), segment.payload.begin(),
                         segment.payload.end());
      flow.next_seq += static_cast<uint32_t>(segment.payload.size());
    } else if (delta < 0) {
      // Retransmission; keep only bytes beyond what we already have.
      size_t overlap = static_cast<size_t>(-delta);
      if (overlap < segment.payload.size()) {
        flow.buffer.insert(flow.buffer.end(), segment.payload.begin() + overlap,
                           segment.payload.end());
        flow.next_seq += static_cast<uint32_t>(segment.payload.size() - overlap);
      }
      // Pure duplicate: nothing to do.
    } else {
      // Gap (loss or reordering): drop; the flow resynchronizes on FIN/RST
      // or a new connection.
      ++dropped_;
    }

    // Extract complete length-prefixed DNS messages.
    size_t pos = 0;
    while (flow.buffer.size() - pos >= 2) {
      size_t frame = static_cast<size_t>(flow.buffer[pos]) << 8 | flow.buffer[pos + 1];
      if (flow.buffer.size() - pos - 2 < frame) break;
      if (frame >= 12) {
        TraceRecord rec;
        rec.timestamp = segment.timestamp;
        rec.src = segment.src;
        rec.dst = segment.dst;
        rec.transport = transport_for(segment.src.port, segment.dst.port);
        rec.direction = direction_for(segment.src.port);
        rec.dns_payload.assign(flow.buffer.begin() + static_cast<long>(pos + 2),
                               flow.buffer.begin() + static_cast<long>(pos + 2 + frame));
        out.push_back(std::move(rec));
      }
      pos += 2 + frame;
    }
    flow.buffer.erase(flow.buffer.begin(), flow.buffer.begin() + static_cast<long>(pos));
  }

  if (segment.fin) flows_.erase(key);
  return out;
}

std::vector<uint8_t> build_ip_packet(const TraceRecord& rec, uint32_t tcp_seq) {
  ByteWriter ip;
  const bool v4 = rec.src.addr.is_v4();

  // Transport payload: UDP header+DNS, or a minimal TCP data segment with
  // the 2-byte DNS length prefix.
  ByteWriter seg;
  if (rec.transport == Transport::Udp) {
    seg.u16(rec.src.port);
    seg.u16(rec.dst.port);
    seg.u16(static_cast<uint16_t>(8 + rec.dns_payload.size()));
    seg.u16(0);  // checksum patched below for v4
    seg.bytes(std::span<const uint8_t>(rec.dns_payload));
  } else {
    seg.u16(rec.src.port);
    seg.u16(rec.dst.port);
    seg.u32(tcp_seq);
    seg.u32(1);  // ack
    seg.u8(5 << 4);
    seg.u8(0x18);  // PSH|ACK
    seg.u16(65535);
    seg.u16(0);  // checksum (not validated by our readers)
    seg.u16(0);  // urgent
    seg.u16(static_cast<uint16_t>(rec.dns_payload.size()));
    seg.bytes(std::span<const uint8_t>(rec.dns_payload));
  }
  auto segment = std::move(seg).take();

  if (v4) {
    uint8_t proto = rec.transport == Transport::Udp ? 17 : 6;
    ByteWriter hdr;
    hdr.u8(0x45);
    hdr.u8(0);
    hdr.u16(static_cast<uint16_t>(20 + segment.size()));
    hdr.u16(0);
    hdr.u16(0x4000);  // don't fragment
    hdr.u8(64);
    hdr.u8(proto);
    hdr.u16(0);  // checksum below
    hdr.u32(rec.src.addr.v4().value());
    hdr.u32(rec.dst.addr.v4().value());
    auto hdr_bytes = std::move(hdr).take();
    uint16_t csum = inet_checksum(hdr_bytes);
    hdr_bytes[10] = static_cast<uint8_t>(csum >> 8);
    hdr_bytes[11] = static_cast<uint8_t>(csum);

    if (rec.transport == Transport::Udp) {
      uint16_t ucsum = udp4_checksum(rec.src.addr.v4(), rec.dst.addr.v4(), segment);
      segment[6] = static_cast<uint8_t>(ucsum >> 8);
      segment[7] = static_cast<uint8_t>(ucsum);
    }
    ip.bytes(std::span<const uint8_t>(hdr_bytes));
    ip.bytes(std::span<const uint8_t>(segment));
  } else {
    ip.u8(0x60);
    ip.u8(0);
    ip.u16(0);  // flow
    ip.u16(static_cast<uint16_t>(segment.size()));
    ip.u8(rec.transport == Transport::Udp ? 17 : 6);
    ip.u8(64);
    ip.bytes(std::span<const uint8_t>(rec.src.addr.v6().bytes()));
    ip.bytes(std::span<const uint8_t>(rec.dst.addr.v6().bytes()));
    ip.bytes(std::span<const uint8_t>(segment));
  }
  return std::move(ip).take();
}

}  // namespace ldp::trace
