// Shared IP-layer packet codec for the capture formats (pcap, ERF): builds
// raw IPv4/IPv6 packets carrying UDP or framed-TCP DNS payloads, classifies
// captured packets, and reassembles DNS messages out of TCP streams.
#pragma once

#include <map>
#include <optional>

#include "trace/record.hpp"

namespace ldp::trace {

/// Serialize a record as a raw IP packet (IPv4 with header/UDP checksums
/// filled in, or IPv6). TCP records become one PSH|ACK data segment with
/// the 2-byte DNS length prefix, starting at `tcp_seq` (use a
/// TcpSeqAllocator so successive messages on one flow carry cumulative
/// sequence numbers the reassembler accepts).
std::vector<uint8_t> build_ip_packet(const TraceRecord& rec, uint32_t tcp_seq = 1);

/// Per-flow cumulative TCP sequence numbers for capture writers.
class TcpSeqAllocator {
 public:
  /// Sequence number for the next `len` payload bytes on (src -> dst).
  uint32_t allocate(const Endpoint& src, const Endpoint& dst, size_t len) {
    auto [it, inserted] = next_.try_emplace(std::make_pair(src, dst), 1u);
    uint32_t seq = it->second;
    it->second += static_cast<uint32_t>(len);
    return seq;
  }

 private:
  std::map<std::pair<Endpoint, Endpoint>, uint32_t> next_;
};

/// One captured TCP segment on a DNS port, awaiting reassembly.
struct TcpSegment {
  Endpoint src;
  Endpoint dst;
  uint32_t seq = 0;
  bool syn = false;
  bool fin = false;
  bool rst = false;
  std::vector<uint8_t> payload;
  TimeNs timestamp = 0;
};

/// Classification of one captured IP packet. Exactly one member is set for
/// DNS traffic; both empty means "not DNS we understand" (skip it).
struct ClassifiedPacket {
  std::optional<TraceRecord> udp_record;
  std::optional<TcpSegment> tcp_segment;
};

/// Parse the IP layer of a captured packet. Never fails hard: anything
/// unparseable comes back with both members empty.
ClassifiedPacket classify_ip_packet(std::span<const uint8_t> packet, TimeNs timestamp);

/// In-order TCP stream reassembly for DNS captures. Tracks one buffer per
/// (src, dst) flow direction, strips the 2-byte length framing, and emits a
/// TraceRecord per complete DNS message (stamped with the timestamp of the
/// segment that completed it). Out-of-order and gapped segments are dropped
/// and counted — replay fidelity prefers losing a message over corrupting
/// the stream.
class TcpReassembler {
 public:
  /// Feed one segment; returns any messages it completed.
  std::vector<TraceRecord> feed(const TcpSegment& segment);

  uint64_t dropped_segments() const { return dropped_; }
  size_t active_flows() const { return flows_.size(); }

 private:
  struct Flow {
    bool have_seq = false;
    uint32_t next_seq = 0;
    std::vector<uint8_t> buffer;
  };

  std::map<std::pair<Endpoint, Endpoint>, Flow> flows_;
  uint64_t dropped_ = 0;
};

}  // namespace ldp::trace
