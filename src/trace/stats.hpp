// Trace statistics: the columns of the paper's Table 1 (start, duration,
// inter-arrival mean/sd, unique client IPs, record count) plus the
// per-client query-load distribution behind Figure 15c.
#pragma once

#include <unordered_map>

#include "trace/record.hpp"
#include "util/stats.hpp"

namespace ldp::trace {

struct TraceStats {
  size_t records = 0;
  size_t queries = 0;
  size_t responses = 0;
  size_t unique_clients = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  double interarrival_mean_s = 0;
  double interarrival_stdev_s = 0;

  double duration_s() const { return ns_to_sec(end - start); }
  double mean_rate_qps() const {
    double d = duration_s();
    return d > 0 ? static_cast<double>(queries) / d : 0;
  }
};

/// Single pass over a (time-ordered) trace. Inter-arrival statistics are
/// computed over query records only, matching Table 1.
TraceStats compute_stats(const std::vector<TraceRecord>& records);

/// Queries sent per client address — the Figure 15c CDF input and the basis
/// for the busy/non-busy client split in §5.2.4.
std::unordered_map<IpAddr, uint64_t, IpAddrHash> per_client_load(
    const std::vector<TraceRecord>& records);

/// Render stats as the Table 1 row format used by bench/table1_traces.
std::string format_stats_row(const std::string& name, const TraceStats& stats);

}  // namespace ldp::trace
