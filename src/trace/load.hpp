// Extension-dispatched trace loading shared by the tools and the
// distributed-replay worker: .ldpb (binary stream), .txt (text form),
// anything else is treated as pcap. Both ends of a distributed replay must
// load the trace file the same way, or the slice partition would diverge.
#pragma once

#include <string>
#include <vector>

#include "trace/record.hpp"

namespace ldp::trace {

Result<std::vector<TraceRecord>> load_trace_file(const std::string& path);

}  // namespace ldp::trace
