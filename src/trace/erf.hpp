// ERF (Endace Extensible Record Format) reader — the other capture format
// Figure 3 names ("pcap, erf ..."). DITL root collections are distributed
// as ERF, so a trace front end without it couldn't read the paper's own
// inputs.
//
// Scope mirrors the pcap codec: type 2 (ETH) records carrying IPv4/IPv6
// UDP DNS and DNS-over-TCP with stream reassembly; anything else is
// skipped and counted. ERF specifics handled here: the 64-bit little-endian fixed-
// point timestamp (32.32 since the Unix epoch), big-endian rlen/wlen, the
// 2-byte ethernet pad, and extension headers flagged by bit 7 of `flags`.
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "trace/packet.hpp"
#include "trace/record.hpp"

namespace ldp::trace {

class ErfReader {
 public:
  static Result<ErfReader> open(const std::string& path);
  static Result<ErfReader> from_bytes(std::vector<uint8_t> bytes);

  /// Next DNS record, or nullopt at EOF; non-DNS records are skipped.
  Result<std::optional<TraceRecord>> next();
  Result<std::vector<TraceRecord>> read_all();

  uint64_t skipped() const { return skipped_; }

 private:
  ErfReader() = default;
  std::vector<uint8_t> data_;
  size_t pos_ = 0;
  uint64_t skipped_ = 0;
  TcpReassembler reassembler_;
  std::deque<TraceRecord> pending_;
};

/// Writes ERF type-2 (ETH) records; the inverse of ErfReader, used by the
/// round-trip tests and the trace converter.
class ErfWriter {
 public:
  void add(const TraceRecord& rec);
  std::vector<uint8_t> take() &&;
  Result<void> save(const std::string& path) const;
  size_t record_count() const { return count_; }

 private:
  ByteWriter w_;
  size_t count_ = 0;
  TcpSeqAllocator seq_alloc_;
};

}  // namespace ldp::trace
