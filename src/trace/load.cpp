#include "trace/load.hpp"

#include <fstream>
#include <sstream>

#include "trace/binary.hpp"
#include "trace/pcap.hpp"
#include "trace/text.hpp"

namespace ldp::trace {

Result<std::vector<TraceRecord>> load_trace_file(const std::string& path) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".ldpb") {
    auto reader = LDP_TRY(BinaryReader::open(path));
    return reader.read_all();
  }
  if (path.size() > 4 && path.substr(path.size() - 4) == ".txt") {
    std::ifstream in(path);
    if (!in) return Err("cannot open " + path);
    std::stringstream ss;
    ss << in.rdbuf();
    return trace_from_text(ss.str());
  }
  auto reader = LDP_TRY(PcapReader::open(path));
  return reader.read_all();
}

}  // namespace ldp::trace
