#include "trace/pcap.hpp"

#include <cstring>

#include "trace/packet.hpp"

namespace ldp::trace {

namespace {
constexpr uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr uint32_t kMagicNano = 0xa1b23c4d;
constexpr uint32_t kLinktypeEthernet = 1;
constexpr uint32_t kLinktypeRawIp = 101;
}  // namespace

uint16_t inet_checksum(std::span<const uint8_t> data) {
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  if (i < data.size()) sum += static_cast<uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum);
}

uint16_t udp4_checksum(Ip4 src, Ip4 dst, std::span<const uint8_t> udp_segment) {
  ByteWriter pseudo;
  pseudo.u32(src.value());
  pseudo.u32(dst.value());
  pseudo.u8(0);
  pseudo.u8(17);  // protocol UDP
  pseudo.u16(static_cast<uint16_t>(udp_segment.size()));
  pseudo.bytes(udp_segment);
  uint16_t sum = inet_checksum(pseudo.data());
  return sum == 0 ? 0xffff : sum;  // 0 means "no checksum" in UDP
}

Result<PcapReader> PcapReader::open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Err("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) return Err("short read on " + path);
  return from_bytes(std::move(bytes));
}

Result<PcapReader> PcapReader::from_bytes(std::vector<uint8_t> bytes) {
  PcapReader rd;
  rd.data_ = std::move(bytes);
  ByteReader hdr(rd.data_);
  uint32_t magic = LDP_TRY(hdr.u32_le());
  if (magic == kMagicMicro) {
    rd.nanosecond_ts_ = false;
  } else if (magic == kMagicNano) {
    rd.nanosecond_ts_ = true;
  } else {
    return Err("not a pcap file (bad magic)");
  }
  LDP_TRY_VOID(hdr.skip(2 + 2 + 4 + 4 + 4));  // version, thiszone, sigfigs, snaplen
  rd.linktype_ = LDP_TRY(hdr.u32_le());
  if (rd.linktype_ != kLinktypeEthernet && rd.linktype_ != kLinktypeRawIp)
    return Err("unsupported pcap linktype " + std::to_string(rd.linktype_));
  rd.pos_ = hdr.pos();
  return rd;
}

Result<std::optional<TraceRecord>> PcapReader::next() {
  while (true) {
    if (!pending_.empty()) {
      TraceRecord rec = std::move(pending_.front());
      pending_.pop_front();
      return std::optional<TraceRecord>{std::move(rec)};
    }
    if (pos_ >= data_.size()) return std::optional<TraceRecord>{};
    ByteReader rd(std::span<const uint8_t>(data_).subspan(pos_));
    if (rd.remaining() < 16) return Err("truncated pcap record header");
    uint32_t ts_sec = LDP_TRY(rd.u32_le());
    uint32_t ts_frac = LDP_TRY(rd.u32_le());
    uint32_t incl_len = LDP_TRY(rd.u32_le());
    LDP_TRY_VOID(rd.u32_le());  // orig_len
    if (rd.remaining() < incl_len) return Err("truncated pcap packet");
    auto packet = LDP_TRY(rd.bytes(incl_len));
    pos_ += rd.pos();

    TimeNs ts = static_cast<TimeNs>(ts_sec) * kSecond +
                (nanosecond_ts_ ? ts_frac : static_cast<TimeNs>(ts_frac) * 1000);

    // Peel the link layer for Ethernet captures.
    if (linktype_ == kLinktypeEthernet) {
      if (packet.size() < 14) {
        ++skipped_;
        continue;
      }
      uint16_t ethertype = static_cast<uint16_t>(packet[12] << 8 | packet[13]);
      if (ethertype != 0x0800 && ethertype != 0x86dd) {
        ++skipped_;
        continue;
      }
      packet = packet.subspan(14);
    }

    auto classified = classify_ip_packet(packet, ts);
    if (classified.udp_record.has_value())
      return std::optional<TraceRecord>{std::move(*classified.udp_record)};
    if (classified.tcp_segment.has_value()) {
      auto completed = reassembler_.feed(*classified.tcp_segment);
      if (completed.empty()) continue;  // segment consumed, nothing finished
      for (size_t i = 1; i < completed.size(); ++i)
        pending_.push_back(std::move(completed[i]));
      return std::optional<TraceRecord>{std::move(completed[0])};
    }
    ++skipped_;
  }
}

Result<std::vector<TraceRecord>> PcapReader::read_all() {
  std::vector<TraceRecord> out;
  while (true) {
    auto rec = LDP_TRY(next());
    if (!rec.has_value()) return out;
    out.push_back(std::move(*rec));
  }
}

PcapWriter::PcapWriter() {
  w_.u32_le(kMagicMicro);
  w_.u16_le(2);  // version 2.4
  w_.u16_le(4);
  w_.u32_le(0);  // thiszone
  w_.u32_le(0);  // sigfigs
  w_.u32_le(65535);
  w_.u32_le(kLinktypeRawIp);
}

void PcapWriter::add(const TraceRecord& rec) {
  uint32_t seq = rec.transport == Transport::Udp
                     ? 1
                     : seq_alloc_.allocate(rec.src, rec.dst,
                                           rec.dns_payload.size() + 2);
  auto packet = build_ip_packet(rec, seq);
  w_.u32_le(static_cast<uint32_t>(rec.timestamp / kSecond));
  w_.u32_le(static_cast<uint32_t>((rec.timestamp % kSecond) / 1000));
  w_.u32_le(static_cast<uint32_t>(packet.size()));
  w_.u32_le(static_cast<uint32_t>(packet.size()));
  w_.bytes(std::span<const uint8_t>(packet));
  ++count_;
}

std::vector<uint8_t> PcapWriter::take() && { return std::move(w_).take(); }

Result<void> PcapWriter::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Err("cannot write " + path);
  auto data = w_.data();
  size_t wrote = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (wrote != data.size()) return Err("short write on " + path);
  return Ok();
}

}  // namespace ldp::trace
