#include "trace/erf.hpp"

#include <cstdio>

#include "trace/packet.hpp"

namespace ldp::trace {

namespace {
constexpr uint8_t kTypeEth = 2;
constexpr uint8_t kTypeMask = 0x7f;
constexpr uint8_t kExtHeaderBit = 0x80;

// ERF timestamps: little-endian 64-bit fixed point, 32.32, Unix epoch.
TimeNs erf_ts_to_ns(uint64_t ts) {
  uint64_t seconds = ts >> 32;
  uint64_t frac = ts & 0xffffffffull;
  // frac / 2^32 seconds -> ns, rounding to nearest.
  uint64_t ns = (frac * 1000000000ull + (1ull << 31)) >> 32;
  return static_cast<TimeNs>(seconds * 1000000000ull + ns);
}

uint64_t ns_to_erf_ts(TimeNs t) {
  uint64_t seconds = static_cast<uint64_t>(t) / 1000000000ull;
  uint64_t ns = static_cast<uint64_t>(t) % 1000000000ull;
  uint64_t frac = (ns << 32) / 1000000000ull;
  return seconds << 32 | frac;
}
}  // namespace

Result<ErfReader> ErfReader::open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Err("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) return Err("short read on " + path);
  return from_bytes(std::move(bytes));
}

Result<ErfReader> ErfReader::from_bytes(std::vector<uint8_t> bytes) {
  ErfReader rd;
  rd.data_ = std::move(bytes);
  // ERF has no file header; sanity-check the first record if any.
  if (!rd.data_.empty() && rd.data_.size() < 16)
    return Err("not an ERF stream (shorter than one record header)");
  return rd;
}

Result<std::optional<TraceRecord>> ErfReader::next() {
  while (true) {
    if (!pending_.empty()) {
      TraceRecord rec = std::move(pending_.front());
      pending_.pop_front();
      return std::optional<TraceRecord>{std::move(rec)};
    }
    if (pos_ >= data_.size()) return std::optional<TraceRecord>{};
    ByteReader rd(std::span<const uint8_t>(data_).subspan(pos_));
    if (rd.remaining() < 16) return Err("truncated ERF record header");

    uint64_t ts_lo = LDP_TRY(rd.u32_le());
    uint64_t ts_hi = LDP_TRY(rd.u32_le());
    uint64_t ts = ts_hi << 32 | ts_lo;
    uint8_t type = LDP_TRY(rd.u8());
    LDP_TRY_VOID(rd.u8());  // flags
    uint16_t rlen = LDP_TRY(rd.u16());
    LDP_TRY_VOID(rd.u16());  // lctr / color
    LDP_TRY_VOID(rd.u16());  // wlen
    if (rlen < 16 || rd.remaining() < static_cast<size_t>(rlen) - 16)
      return Err("truncated ERF record");
    auto payload = LDP_TRY(rd.bytes(static_cast<size_t>(rlen) - 16));
    pos_ += 16 + payload.size();

    // Extension headers: 8 bytes each, chained by the top bit.
    size_t off = 0;
    if (type & kExtHeaderBit) {
      while (true) {
        if (off + 8 > payload.size()) {
          off = payload.size();  // malformed; treated as non-DNS below
          break;
        }
        uint8_t ext_type = payload[off];
        off += 8;
        if ((ext_type & kExtHeaderBit) == 0) break;
      }
    }
    if ((type & kTypeMask) != kTypeEth || payload.size() < off + 2 + 14) {
      ++skipped_;
      continue;
    }
    // ETH records: 2-byte pad/offset, then the Ethernet frame.
    auto frame = payload.subspan(off + 2);
    uint16_t ethertype = static_cast<uint16_t>(frame[12] << 8 | frame[13]);
    if (ethertype != 0x0800 && ethertype != 0x86dd) {
      ++skipped_;
      continue;
    }
    auto classified = classify_ip_packet(frame.subspan(14), erf_ts_to_ns(ts));
    if (classified.udp_record.has_value())
      return std::optional<TraceRecord>{std::move(*classified.udp_record)};
    if (classified.tcp_segment.has_value()) {
      auto completed = reassembler_.feed(*classified.tcp_segment);
      if (completed.empty()) continue;
      for (size_t i = 1; i < completed.size(); ++i)
        pending_.push_back(std::move(completed[i]));
      return std::optional<TraceRecord>{std::move(completed[0])};
    }
    ++skipped_;
  }
}

Result<std::vector<TraceRecord>> ErfReader::read_all() {
  std::vector<TraceRecord> out;
  while (true) {
    auto rec = LDP_TRY(next());
    if (!rec.has_value()) return out;
    out.push_back(std::move(*rec));
  }
}

void ErfWriter::add(const TraceRecord& rec) {
  uint32_t seq = rec.transport == Transport::Udp
                     ? 1
                     : seq_alloc_.allocate(rec.src, rec.dst,
                                           rec.dns_payload.size() + 2);
  auto packet = build_ip_packet(rec, seq);
  const bool v4 = rec.src.addr.is_v4();

  // Ethernet frame: dummy MACs + ethertype + IP packet.
  ByteWriter frame;
  for (int i = 0; i < 12; ++i) frame.u8(0);
  frame.u16(v4 ? 0x0800 : 0x86dd);
  frame.bytes(std::span<const uint8_t>(packet));

  uint64_t ts = ns_to_erf_ts(rec.timestamp);
  uint16_t rlen = static_cast<uint16_t>(16 + 2 + frame.size());
  w_.u32_le(static_cast<uint32_t>(ts & 0xffffffffull));
  w_.u32_le(static_cast<uint32_t>(ts >> 32));
  w_.u8(kTypeEth);
  w_.u8(0);  // flags: varying record length, interface 0
  w_.u16(rlen);
  w_.u16(0);  // lctr
  w_.u16(static_cast<uint16_t>(frame.size()));  // wlen
  w_.u16(0);  // pad/offset
  w_.bytes(frame.data());
  ++count_;
}

std::vector<uint8_t> ErfWriter::take() && { return std::move(w_).take(); }

Result<void> ErfWriter::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Err("cannot write " + path);
  auto data = w_.data();
  size_t wrote = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (wrote != data.size()) return Err("short write on " + path);
  return Ok();
}

}  // namespace ldp::trace
