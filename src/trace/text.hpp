// Plain-text trace format (§2.5 "Plain text for easy manipulation").
//
// One query per line, whitespace-separated columns:
//
//   time        src_ip  src_port dst_ip dst_port proto id qname qclass qtype flags edns
//   1461234567.012345 192.168.1.1 5353 192.0.2.53 53 UDP 4660 example.com. IN A rd,do 4096
//
// `flags` is a comma list drawn from {qr,aa,tc,rd,ra,ad,cd,do} or "-";
// `edns` is the EDNS UDP payload size or "-" for no OPT record. The format
// covers exactly the fields the query mutator edits; converting a record to
// text and back reproduces the query byte-for-byte at the DNS level except
// for fields DNS servers ignore in queries (answer sections etc.).
#pragma once

#include <string>

#include "trace/record.hpp"

namespace ldp::trace {

/// Render one query record as a text line (no trailing newline). Fails on
/// records whose payload does not parse as a DNS query with one question.
Result<std::string> record_to_text(const TraceRecord& rec);

/// Parse one text line back into a record (payload rebuilt from fields).
Result<TraceRecord> record_from_text(std::string_view line);

/// Convert a full trace to text, one line per query; response records are
/// skipped (replay regenerates responses from zones).
Result<std::string> trace_to_text(const std::vector<TraceRecord>& records);

/// Parse a text file: one record per non-empty, non-'#' line.
Result<std::vector<TraceRecord>> trace_from_text(std::string_view text);

}  // namespace ldp::trace
