#include "trace/binary.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace ldp::trace {

namespace {
constexpr char kMagic[4] = {'L', 'D', 'P', 'B'};
constexpr uint16_t kVersion = 1;

void write_addr(ByteWriter& w, const IpAddr& addr) {
  if (addr.is_v4()) {
    w.u8(4);
    w.u32(addr.v4().value());
  } else {
    w.u8(6);
    w.bytes(std::span<const uint8_t>(addr.v6().bytes()));
  }
}

Result<IpAddr> read_addr(ByteReader& rd) {
  uint8_t family = LDP_TRY(rd.u8());
  if (family == 4) return IpAddr{Ip4{LDP_TRY(rd.u32())}};
  if (family == 6) {
    auto b = LDP_TRY(rd.bytes(16));
    std::array<uint8_t, 16> arr;
    std::copy(b.begin(), b.end(), arr.begin());
    return IpAddr{Ip6{arr}};
  }
  return Err("bad address family in binary stream");
}
}  // namespace

BinaryWriter::BinaryWriter() {
  w_.bytes(std::string_view(kMagic, 4));
  w_.u16(kVersion);
}

void BinaryWriter::add(const TraceRecord& rec) {
  ByteWriter body;
  body.u64(static_cast<uint64_t>(rec.timestamp));
  body.u8(static_cast<uint8_t>(rec.transport));
  body.u8(static_cast<uint8_t>(rec.direction));
  write_addr(body, rec.src.addr);
  body.u16(rec.src.port);
  write_addr(body, rec.dst.addr);
  body.u16(rec.dst.port);
  body.u16(static_cast<uint16_t>(rec.dns_payload.size()));
  body.bytes(std::span<const uint8_t>(rec.dns_payload));

  w_.u16(static_cast<uint16_t>(body.size()));
  w_.bytes(body.data());
  ++count_;
}

std::vector<uint8_t> BinaryWriter::take() && { return std::move(w_).take(); }

Result<void> BinaryWriter::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Err("cannot write " + path);
  auto data = w_.data();
  size_t wrote = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (wrote != data.size()) return Err("short write on " + path);
  return Ok();
}

Result<BinaryReader> BinaryReader::from_bytes(std::vector<uint8_t> bytes) {
  BinaryReader rd;
  rd.data_ = std::move(bytes);
  if (rd.data_.size() < 6 || std::memcmp(rd.data_.data(), kMagic, 4) != 0)
    return Err("not an LDPB stream");
  uint16_t version = static_cast<uint16_t>(rd.data_[4] << 8 | rd.data_[5]);
  if (version != kVersion)
    return Err("unsupported LDPB version " + std::to_string(version));
  rd.pos_ = 6;
  return rd;
}

Result<BinaryReader> BinaryReader::open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Err("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) return Err("short read on " + path);
  return from_bytes(std::move(bytes));
}

Result<std::optional<TraceRecord>> BinaryReader::next() {
  if (pos_ >= data_.size()) return std::optional<TraceRecord>{};
  ByteReader rd(std::span<const uint8_t>(data_).subspan(pos_));
  uint16_t total = LDP_TRY(rd.u16());
  if (rd.remaining() < total) return Err("truncated LDPB message");

  TraceRecord rec;
  rec.timestamp = static_cast<TimeNs>(LDP_TRY(rd.u64()));
  uint8_t transport = LDP_TRY(rd.u8());
  if (transport > 2) return Err("bad transport in LDPB stream");
  rec.transport = static_cast<Transport>(transport);
  uint8_t direction = LDP_TRY(rd.u8());
  if (direction > 1) return Err("bad direction in LDPB stream");
  rec.direction = static_cast<Direction>(direction);
  rec.src.addr = LDP_TRY(read_addr(rd));
  rec.src.port = LDP_TRY(rd.u16());
  rec.dst.addr = LDP_TRY(read_addr(rd));
  rec.dst.port = LDP_TRY(rd.u16());
  uint16_t payload_len = LDP_TRY(rd.u16());
  rec.dns_payload = LDP_TRY(rd.bytes_copy(payload_len));

  if (rd.pos() != static_cast<size_t>(total) + 2)
    return Err("LDPB message length mismatch");
  pos_ += rd.pos();
  return std::optional<TraceRecord>{std::move(rec)};
}

Result<std::vector<TraceRecord>> BinaryReader::read_all() {
  std::vector<TraceRecord> out;
  while (true) {
    auto rec = LDP_TRY(next());
    if (!rec.has_value()) return out;
    out.push_back(std::move(*rec));
  }
}

}  // namespace ldp::trace
