#include "zone/view.hpp"

namespace ldp::zone {

Result<void> ZoneSet::add(Zone zone) {
  Name origin = zone.origin();
  auto [it, inserted] = zones_.emplace(origin, std::move(zone));
  if (!inserted) return Err("duplicate zone " + origin.to_string());
  ++revision_;
  return Ok();
}

const Zone* ZoneSet::find_zone(const Name& qname) const {
  // Longest suffix first: k from full name length down to 0 (the root).
  for (size_t k = qname.label_count() + 1; k-- > 0;) {
    auto it = zones_.find(qname.suffix(k));
    if (it != zones_.end()) return &it->second;
  }
  return nullptr;
}

const Zone* ZoneSet::find_exact(const Name& origin) const {
  auto it = zones_.find(origin);
  return it == zones_.end() ? nullptr : &it->second;
}

std::vector<const Zone*> ZoneSet::all() const {
  std::vector<const Zone*> out;
  out.reserve(zones_.size());
  for (const auto& [origin, zone] : zones_) out.push_back(&zone);
  return out;
}

View& ViewSet::add_view(std::string name) {
  views_.push_back(std::make_unique<View>());
  views_.back()->name = std::move(name);
  return *views_.back();
}

bool ViewSet::remove_view(const View* view) {
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if (it->get() == view) {
      views_.erase(it);
      return true;
    }
  }
  return false;
}

const View* ViewSet::match(const IpAddr& client) const {
  for (const auto& v : views_) {
    if (v->matches(client)) return v.get();
  }
  return nullptr;
}

}  // namespace ldp::zone
