#include "zone/parser.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace ldp::zone {

using dns::RRClass;

namespace {

// A token plus whether it was quoted (quoted tokens are always RDATA
// strings, never TTLs/classes/types).
struct Token {
  std::string text;
  bool quoted = false;
};

// Tokenize one logical record. Handles quotes, '(' ')' grouping (the caller
// feeds us lines until parens balance), and ';' comments.
class Tokenizer {
 public:
  // Returns tokens for the next logical record (spanning lines if inside
  // parens). `line_no` tracks position for error messages.
  static Result<std::vector<Token>> record(std::string_view& rest, size_t& line_no,
                                           bool& leading_ws) {
    std::vector<Token> tokens;
    int depth = 0;
    bool first_line = true;
    while (true) {
      if (rest.empty()) {
        if (depth > 0) return Err("unbalanced parentheses at EOF");
        return tokens;
      }
      size_t eol = rest.find('\n');
      std::string_view line = rest.substr(0, eol);
      rest = (eol == std::string_view::npos) ? std::string_view{} : rest.substr(eol + 1);
      ++line_no;

      if (first_line) {
        leading_ws = !line.empty() && std::isspace(static_cast<unsigned char>(line[0]));
      }

      LDP_TRY_VOID(tokenize_line(line, tokens, depth, line_no));

      if (depth == 0) {
        if (tokens.empty() && !rest.empty()) {
          first_line = true;  // blank/comment-only line; keep scanning
          continue;
        }
        return tokens;
      }
      first_line = false;
    }
  }

 private:
  static Result<void> tokenize_line(std::string_view line, std::vector<Token>& tokens,
                                    int& depth, size_t line_no) {
    size_t i = 0;
    auto err = [line_no](const std::string& what) {
      return Err("line " + std::to_string(line_no) + ": " + what);
    };
    while (i < line.size()) {
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == ';') return Ok();  // comment to end of line
      if (c == '(') {
        ++depth;
        ++i;
        continue;
      }
      if (c == ')') {
        if (depth == 0) return err("unbalanced ')'");
        --depth;
        ++i;
        continue;
      }
      if (c == '"') {
        std::string tok;
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) {
            tok.push_back('\\');
            tok.push_back(line[i + 1]);
            i += 2;
          } else {
            tok.push_back(line[i]);
            ++i;
          }
        }
        if (i >= line.size()) return err("unterminated quoted string");
        ++i;  // closing quote
        tokens.push_back(Token{std::move(tok), true});
        continue;
      }
      size_t start = i;
      while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])) &&
             line[i] != ';' && line[i] != '(' && line[i] != ')')
        ++i;
      tokens.push_back(Token{std::string(line.substr(start, i - start)), false});
    }
    return Ok();
  }
};

// Name resolution: "@" = origin; names without trailing dot are relative.
Result<Name> resolve_name(const std::string& text, const std::optional<Name>& origin,
                          size_t line_no) {
  auto err_prefix = "line " + std::to_string(line_no) + ": ";
  if (text == "@") {
    if (!origin.has_value()) return Err(err_prefix + "'@' with no origin");
    return *origin;
  }
  auto name = dns::Name::parse(text);
  if (!name.ok()) return Err(err_prefix + name.error().message);
  if (!text.empty() && text.back() == '.') return *name;  // absolute
  if (!origin.has_value()) return Err(err_prefix + "relative name with no origin");
  // Relative: append origin labels.
  Name out = *name;
  for (size_t i = 0; i < origin->label_count(); ++i) {
    auto r = out.append_label(origin->label(i));
    if (!r.ok()) return Err(err_prefix + r.error().message);
  }
  return out;
}

bool looks_like_ttl(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

struct ParserState {
  std::optional<Name> origin;
  std::optional<Name> last_owner;
  std::optional<uint32_t> default_ttl;
  uint32_t fallback_ttl;
};

Result<std::optional<ResourceRecord>> parse_one(const std::vector<Token>& tokens,
                                                bool leading_ws, ParserState& state,
                                                size_t line_no) {
  auto err = [line_no](const std::string& what) {
    return Err("line " + std::to_string(line_no) + ": " + what);
  };

  // Directives.
  if (!tokens.empty() && !tokens[0].quoted && tokens[0].text.size() > 1 &&
      tokens[0].text[0] == '$') {
    if (iequals(tokens[0].text, "$ORIGIN")) {
      if (tokens.size() != 2) return err("$ORIGIN takes one name");
      auto name = dns::Name::parse(tokens[1].text);
      if (!name.ok()) return err(name.error().message);
      state.origin = *name;
      return std::optional<ResourceRecord>{};
    }
    if (iequals(tokens[0].text, "$TTL")) {
      if (tokens.size() != 2) return err("$TTL takes one value");
      auto ttl = parse_u64(tokens[1].text);
      if (!ttl.ok() || *ttl > 0xffffffff) return err("bad $TTL value");
      state.default_ttl = static_cast<uint32_t>(*ttl);
      return std::optional<ResourceRecord>{};
    }
    return err("unsupported directive " + tokens[0].text);
  }

  size_t i = 0;
  ResourceRecord rr;

  // Owner: either inherited (record started with whitespace) or the first
  // token.
  if (leading_ws) {
    if (!state.last_owner.has_value()) return err("no previous owner to inherit");
    rr.name = *state.last_owner;
  } else {
    if (tokens.empty()) return err("empty record");
    rr.name = LDP_TRY(resolve_name(tokens[i].text, state.origin, line_no));
    ++i;
  }

  // [TTL] [class] or [class] [TTL], then type.
  rr.ttl = state.default_ttl.value_or(state.fallback_ttl);
  bool saw_ttl = false, saw_class = false;
  while (i < tokens.size() && !tokens[i].quoted) {
    const std::string& t = tokens[i].text;
    if (!saw_ttl && looks_like_ttl(t)) {
      auto ttl = parse_u64(t);
      if (!ttl.ok() || *ttl > 0xffffffff) return err("bad TTL " + t);
      rr.ttl = static_cast<uint32_t>(*ttl);
      saw_ttl = true;
      ++i;
      continue;
    }
    if (!saw_class) {
      auto cls = dns::rrclass_from_string(t);
      if (cls.ok()) {
        rr.rrclass = *cls;
        saw_class = true;
        ++i;
        continue;
      }
    }
    break;
  }

  if (i >= tokens.size()) return err("record missing type");
  auto type = dns::rrtype_from_string(tokens[i].text);
  if (!type.ok()) return err(type.error().message);
  rr.type = *type;
  ++i;

  // RDATA: resolve relative names inside name-bearing types by making
  // tokens absolute before handing to the generic parser.
  std::vector<std::string> storage;
  std::vector<std::string_view> rdata_tokens;
  storage.reserve(tokens.size() - i);
  auto absolutize = [&](size_t tok_index) -> Result<void> {
    Name n = LDP_TRY(resolve_name(tokens[tok_index].text, state.origin, line_no));
    storage.push_back(n.to_string());
    return Ok();
  };

  using dns::RRType;
  for (size_t j = i; j < tokens.size(); ++j) {
    bool is_name_field = false;
    size_t field = j - i;
    switch (rr.type) {
      case RRType::NS:
      case RRType::CNAME:
      case RRType::PTR:
        is_name_field = field == 0;
        break;
      case RRType::SOA:
        is_name_field = field <= 1;
        break;
      case RRType::MX:
        is_name_field = field == 1;
        break;
      case RRType::SRV:
        is_name_field = field == 3;
        break;
      case RRType::RRSIG:
        is_name_field = field == 7;
        break;
      case RRType::NSEC:
        is_name_field = field == 0;
        break;
      default:
        break;
    }
    if (is_name_field && !tokens[j].quoted) {
      LDP_TRY_VOID(absolutize(j));
    } else {
      storage.push_back(tokens[j].text);
    }
  }
  for (const auto& s : storage) rdata_tokens.push_back(s);

  auto rdata = dns::Rdata::parse(rr.type, rdata_tokens);
  if (!rdata.ok()) return err(rdata.error().message);
  rr.rdata = std::move(*rdata);

  state.last_owner = rr.name;
  return std::optional<ResourceRecord>{std::move(rr)};
}

Result<std::vector<ResourceRecord>> parse_all(std::string_view text,
                                              const ParseOptions& options) {
  ParserState state;
  state.origin = options.origin;
  state.fallback_ttl = options.default_ttl;

  std::vector<ResourceRecord> records;
  std::string_view rest = text;
  size_t line_no = 0;
  while (!rest.empty()) {
    bool leading_ws = false;
    auto tokens = LDP_TRY(Tokenizer::record(rest, line_no, leading_ws));
    if (tokens.empty()) continue;
    auto rr = LDP_TRY(parse_one(tokens, leading_ws, state, line_no));
    if (rr.has_value()) records.push_back(std::move(*rr));
  }
  return records;
}

}  // namespace

Result<std::vector<ResourceRecord>> parse_records(std::string_view text,
                                                  const ParseOptions& options) {
  return parse_all(text, options);
}

Result<Zone> parse_zone(std::string_view text, const ParseOptions& options) {
  auto records = LDP_TRY(parse_all(text, options));
  if (records.empty()) return Err("zone file has no records");

  // Zone origin: explicit option, else the owner of the SOA record.
  Name origin;
  if (options.origin.has_value()) {
    origin = *options.origin;
  } else {
    bool found = false;
    for (const auto& rr : records) {
      if (rr.type == dns::RRType::SOA) {
        origin = rr.name;
        found = true;
        break;
      }
    }
    if (!found) return Err("zone file has no SOA and no explicit origin");
  }

  Zone zone(origin);
  for (const auto& rr : records) LDP_TRY_VOID(zone.add(rr));
  return zone;
}

std::string print_zone(const Zone& zone) {
  std::string out;
  out += "$ORIGIN " + zone.origin().to_string() + "\n";
  for (const RRset* set : zone.all_rrsets()) {
    for (const auto& rr : set->to_records()) out += rr.to_string() + "\n";
  }
  return out;
}

}  // namespace ldp::zone
