#include "zone/zone.hpp"

namespace ldp::zone {

using dns::NameData;
using dns::Rdata;

Result<void> Zone::add(const ResourceRecord& rr) {
  if (!rr.name.is_subdomain_of(origin_))
    return Err("record " + rr.name.to_string() + " outside zone " + origin_.to_string());

  // Materialize empty non-terminals on the path from the origin.
  for (size_t k = origin_.label_count(); k < rr.name.label_count(); ++k) {
    nodes_.try_emplace(rr.name.suffix(k));
  }

  auto& node = nodes_[rr.name];
  auto [it, inserted] = node.try_emplace(rr.type);
  if (inserted) {
    it->second.name = rr.name;
    it->second.type = rr.type;
    it->second.rrclass = rr.rrclass;
  }
  it->second.add(rr);
  return Ok();
}

const Zone::Node* Zone::find_node(const Name& name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

const RRset* Zone::find(const Name& name, RRType type) const {
  const Node* node = find_node(name);
  if (node == nullptr) return nullptr;
  auto it = node->find(type);
  return it == node->end() ? nullptr : &it->second;
}

void Zone::collect_glue(const RRset& ns_set, LookupResult& out) const {
  for (const auto& rd : ns_set.rdatas) {
    const auto* nd = rd.get_if<NameData>();
    if (nd == nullptr) continue;
    for (RRType t : {RRType::A, RRType::AAAA}) {
      if (const RRset* glue = find(nd->name, t)) out.additionals.push_back(*glue);
    }
  }
}

LookupResult Zone::lookup(const Name& qname, RRType qtype) const {
  LookupResult out;
  if (!qname.is_subdomain_of(origin_)) {
    out.status = LookupStatus::NxDomain;  // out-of-zone; caller should route
    return out;
  }

  auto add_negative_soa = [&] {
    if (const RRset* s = soa()) out.authorities.push_back(*s);
  };

  // Walk from just below the apex toward qname looking for a zone cut. A
  // node with NS that is not the apex delegates everything at or below it
  // (DS is answered from the parent side, so it does not follow the cut).
  for (size_t k = origin_.label_count() + 1; k <= qname.label_count(); ++k) {
    Name ancestor = qname.suffix(k);
    const RRset* ns = find(ancestor, RRType::NS);
    if (ns != nullptr && !(k == qname.label_count() && qtype == RRType::DS)) {
      out.status = LookupStatus::Delegation;
      out.authorities.push_back(*ns);
      collect_glue(*ns, out);
      return out;
    }
  }

  const Node* node = find_node(qname);
  if (node != nullptr) {
    // CNAME takes precedence unless the query is for CNAME itself.
    if (qtype != RRType::CNAME && qtype != RRType::ANY) {
      auto cn = node->find(RRType::CNAME);
      if (cn != node->end()) {
        out.status = LookupStatus::Cname;
        out.answers.push_back(cn->second);
        return out;
      }
    }
    if (qtype == RRType::ANY) {
      for (const auto& [t, set] : *node) out.answers.push_back(set);
      if (!out.answers.empty()) {
        out.status = LookupStatus::Answer;
        return out;
      }
    } else if (auto it = node->find(qtype); it != node->end()) {
      out.status = LookupStatus::Answer;
      out.answers.push_back(it->second);
      return out;
    }
    out.status = LookupStatus::NoData;
    add_negative_soa();
    return out;
  }

  // Name does not exist: wildcard search at the closest encloser
  // (RFC 4592). Find the longest existing ancestor, then look for a "*"
  // child of it.
  if (qname.label_count() <= origin_.label_count()) {
    // qname == origin with an empty zone; nothing to synthesize.
    out.status = LookupStatus::NxDomain;
    add_negative_soa();
    return out;
  }
  size_t encloser_labels = origin_.label_count();
  for (size_t k = qname.label_count() - 1; k > origin_.label_count(); --k) {
    if (nodes_.contains(qname.suffix(k))) {
      encloser_labels = k;
      break;
    }
  }
  Name encloser = qname.suffix(encloser_labels);
  auto wildcard = encloser.with_prefix_label("*");
  if (wildcard.ok()) {
    if (const Node* wnode = find_node(*wildcard)) {
      // A wildcard NS set synthesizes a delegation for the matched child
      // (BIND behaviour; used to delegate entire namespaces, e.g. every
      // SLD of an emulated TLD to one server). The delegation point is the
      // label directly below the closest encloser.
      if (auto ns = wnode->find(RRType::NS);
          ns != wnode->end() && qtype != RRType::DS) {
        RRset synthesized = ns->second;
        synthesized.name = qname.suffix(encloser_labels + 1);
        out.status = LookupStatus::Delegation;
        collect_glue(synthesized, out);
        out.authorities.push_back(std::move(synthesized));
        return out;
      }
      if (qtype != RRType::CNAME) {
        if (auto cn = wnode->find(RRType::CNAME); cn != wnode->end()) {
          RRset synthesized = cn->second;
          synthesized.name = qname;
          out.status = LookupStatus::Cname;
          out.answers.push_back(std::move(synthesized));
          return out;
        }
      }
      if (auto it = wnode->find(qtype); it != wnode->end()) {
        RRset synthesized = it->second;
        synthesized.name = qname;  // wildcard substitution
        out.status = LookupStatus::Answer;
        out.answers.push_back(std::move(synthesized));
        return out;
      }
      out.status = LookupStatus::NoData;
      add_negative_soa();
      return out;
    }
  }

  out.status = LookupStatus::NxDomain;
  add_negative_soa();
  return out;
}

std::vector<const RRset*> Zone::all_rrsets() const {
  std::vector<const RRset*> out;
  // SOA first, then apex NS, then the rest in canonical order.
  if (const RRset* s = soa()) out.push_back(s);
  if (const RRset* ns = find(origin_, RRType::NS)) out.push_back(ns);
  for (const auto& [name, node] : nodes_) {
    for (const auto& [type, set] : node) {
      if (name == origin_ && (type == RRType::SOA || type == RRType::NS)) continue;
      out.push_back(&set);
    }
  }
  return out;
}

size_t Zone::rrset_count() const {
  size_t n = 0;
  for (const auto& [name, node] : nodes_) n += node.size();
  return n;
}

size_t Zone::record_count() const {
  size_t n = 0;
  for (const auto& [name, node] : nodes_) {
    for (const auto& [type, set] : node) n += set.size();
  }
  return n;
}

Result<void> Zone::validate() const {
  const RRset* s = soa();
  if (s == nullptr) return Err("zone " + origin_.to_string() + " has no SOA");
  if (s->size() != 1) return Err("zone " + origin_.to_string() + " has multiple SOA records");
  if (find(origin_, RRType::NS) == nullptr)
    return Err("zone " + origin_.to_string() + " has no apex NS");

  // Delegations whose nameservers are inside the delegated space need glue.
  for (const auto& [name, node] : nodes_) {
    if (name == origin_) continue;
    auto ns = node.find(RRType::NS);
    if (ns == node.end()) continue;
    for (const auto& rd : ns->second.rdatas) {
      const auto* nd = rd.get_if<NameData>();
      if (nd == nullptr) continue;
      if (nd->name.is_subdomain_of(name)) {
        if (find(nd->name, RRType::A) == nullptr && find(nd->name, RRType::AAAA) == nullptr)
          return Err("delegation " + name.to_string() + " needs glue for " +
                     nd->name.to_string());
      }
    }
  }
  return Ok();
}

}  // namespace ldp::zone
