// Split-horizon DNS (BIND-style `view` + `match-clients`): the mechanism the
// meta-DNS-server uses to emulate many independent authoritative servers on
// one address (§2.4). The recursive proxy rewrites each query's source
// address to the original query destination (the public address of the
// nameserver being imitated); the view set then selects the zone group
// belonging to that nameserver.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "util/ip.hpp"
#include "zone/zone.hpp"

namespace ldp::zone {

/// A group of zones served together (one logical nameserver). Lookups route
/// to the closest enclosing zone, mirroring how a real server with several
/// zones picks the one to answer from.
class ZoneSet {
 public:
  /// Add a zone. Fails on duplicate origin.
  Result<void> add(Zone zone);

  /// The zone whose origin is the longest suffix of qname, or nullptr.
  const Zone* find_zone(const Name& qname) const;

  const Zone* find_exact(const Name& origin) const;

  size_t size() const { return zones_.size(); }
  std::vector<const Zone*> all() const;

  /// Monotonic data revision: bumped whenever the set of served zones
  /// changes. Response caches key their validity on this — see
  /// ViewSet::revision() for the aggregate the server frontend watches.
  uint64_t revision() const { return revision_; }

 private:
  // Origin -> zone. Lookup walks qname's suffixes longest-first, so a
  // hosted child zone (example.com) wins over its hosted parent (com).
  std::unordered_map<Name, Zone, dns::NameHash> zones_;
  uint64_t revision_ = 0;
};

/// One view: the client source addresses that select it, plus the zones it
/// serves. An empty client set is a catch-all.
struct View {
  std::string name;
  std::unordered_set<IpAddr, IpAddrHash> match_clients;
  ZoneSet zones;

  bool matches(const IpAddr& client) const {
    return match_clients.empty() || match_clients.contains(client);
  }
};

/// Ordered view list, first match wins — exactly BIND's semantics, which is
/// what the paper relies on ("BIND with its view and match-clients
/// clauses").
class ViewSet {
 public:
  /// Views are consulted in insertion order.
  View& add_view(std::string name);

  /// Remove a view previously returned by add_view (rollback of a failed
  /// multi-step install — see ShardedMetaServer::add_zone). Returns false
  /// if `view` is not a member. Later views shift forward, preserving the
  /// relative first-match order of everything else.
  bool remove_view(const View* view);

  /// The first view matching `client`, or nullptr if none.
  const View* match(const IpAddr& client) const;

  size_t view_count() const { return views_.size(); }
  const std::vector<std::unique_ptr<View>>& views() const { return views_; }

  /// Aggregate data revision over every view's zone set (plus the view
  /// count, so adding a view invalidates too). Pre-rendered response caches
  /// compare this against the revision they rendered under and drop their
  /// entries when it moves.
  uint64_t revision() const {
    uint64_t rev = views_.size();
    for (const auto& v : views_) rev += v->zones.revision();
    return rev;
  }

 private:
  std::vector<std::unique_ptr<View>> views_;
};

}  // namespace ldp::zone
