// RFC 1035 §5 master-file parser and printer. Supports the constructs real
// zone files use: $ORIGIN / $TTL directives, "@" for the origin, relative
// names, owner inheritance from the previous record, optional TTL/class in
// either order, parenthesized multi-line records, quoted strings, and
// ';' comments.
#pragma once

#include <string>
#include <string_view>

#include "zone/zone.hpp"

namespace ldp::zone {

struct ParseOptions {
  /// Starting $ORIGIN; required if the file's names are relative and the
  /// file itself has no $ORIGIN directive.
  std::optional<Name> origin;
  /// Default TTL when neither a record TTL nor $TTL is given.
  uint32_t default_ttl = 3600;
};

/// Parse master-file text into a Zone rooted at the first SOA's owner (or
/// `options.origin` if given). Fails with a line-numbered message on the
/// first malformed record.
Result<Zone> parse_zone(std::string_view text, const ParseOptions& options = {});

/// Parse master-file text into loose records (used by the zone constructor,
/// where data for several zones is interleaved in one intermediate file).
Result<std::vector<ResourceRecord>> parse_records(std::string_view text,
                                                  const ParseOptions& options = {});

/// Render a zone as master-file text that parse_zone() accepts (round-trip
/// safe; all names absolute).
std::string print_zone(const Zone& zone);

}  // namespace ldp::zone
