// Authoritative zone store and lookup.
//
// A Zone holds the RRsets of one zone (apex SOA + data) and answers the
// question every authoritative server must: given (qname, qtype), is the
// result an answer, a referral to a child zone, a CNAME, NODATA, or
// NXDOMAIN — and which records substantiate it (RFC 1034 §4.3.2 algorithm,
// including wildcard synthesis).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dns/message.hpp"
#include "dns/rr.hpp"

namespace ldp::zone {

using dns::Name;
using dns::ResourceRecord;
using dns::RRset;
using dns::RRType;

/// Lookup outcome classification.
enum class LookupStatus {
  Answer,      ///< answer RRsets present (possibly wildcard-synthesized)
  Delegation,  ///< zone cut crossed: NS RRset + glue returned
  Cname,       ///< qname has a CNAME and qtype != CNAME; answer holds it
  NoData,      ///< name exists, type doesn't; SOA returned for negative TTL
  NxDomain,    ///< name does not exist; SOA returned
};

struct LookupResult {
  LookupStatus status = LookupStatus::NxDomain;
  std::vector<RRset> answers;      ///< answer-section sets
  std::vector<RRset> authorities;  ///< NS set for referrals, SOA for negatives
  std::vector<RRset> additionals;  ///< glue A/AAAA for referral nameservers
};

class Zone {
 public:
  explicit Zone(Name origin) : origin_(std::move(origin)) {}

  const Name& origin() const { return origin_; }

  /// Insert a record. Rejects records whose owner is outside this zone.
  /// Ancestor names between the origin and the owner become explicit empty
  /// non-terminals so NXDOMAIN vs NODATA is decided correctly.
  Result<void> add(const ResourceRecord& rr);

  /// Full RFC 1034 §4.3.2 lookup including zone cuts and wildcards.
  LookupResult lookup(const Name& qname, RRType qtype) const;

  /// Direct RRset access (no delegation/wildcard logic).
  const RRset* find(const Name& name, RRType type) const;

  bool has_name(const Name& name) const { return nodes_.contains(name); }

  /// Apex SOA, if the zone has one (valid zones must).
  const RRset* soa() const { return find(origin_, RRType::SOA); }

  /// Every RRset, apex first, in canonical name order (zone-file output).
  std::vector<const RRset*> all_rrsets() const;

  size_t rrset_count() const;
  size_t record_count() const;

  /// Sanity checks a server would enforce at load time: SOA present, NS at
  /// apex, in-zone NS targets of delegations have glue.
  Result<void> validate() const;

 private:
  using Node = std::map<RRType, RRset>;

  Name origin_;
  // Canonical Name ordering keeps all_rrsets() deterministic and groups
  // children after parents, which the zone printer relies on.
  std::map<Name, Node> nodes_;

  const Node* find_node(const Name& name) const;
  void collect_glue(const RRset& ns_set, LookupResult& out) const;
};

}  // namespace ldp::zone
