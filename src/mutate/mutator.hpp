// Query mutator (§2.5): programmable edits over trace records that turn one
// captured trace into a what-if workload. The paper's experiments are
// expressed in exactly these operations: "all queries over TCP/TLS" (§5.2)
// is force_transport; "all queries with DO bit" (§5.1) is enable_dnssec;
// the validation's unique-name matching (§4.2) is prefix_qnames.
//
// A pipeline is a list of steps applied in order to each record. Steps that
// edit DNS fields decode the payload once, apply every message-level edit,
// and re-encode once, so stacking edits stays cheap enough for live
// mutation at replay time.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace ldp::mutate {

using trace::TraceRecord;

/// Outcome of applying a pipeline to one record.
enum class Verdict : uint8_t { Keep, Drop };

class MutatorPipeline {
 public:
  using MessageEdit = std::function<void(dns::Message&)>;
  using RecordEdit = std::function<void(TraceRecord&)>;
  using Predicate = std::function<bool(const TraceRecord&, const dns::Message&)>;

  // --- what-if building blocks -------------------------------------------

  /// Replay every query over the given transport (§5.2 all-TCP / all-TLS).
  MutatorPipeline& force_transport(Transport t);

  /// Set the EDNS DO bit (adding an OPT record if absent) on every query —
  /// the §5.1 "all queries with DNSSEC" scenario.
  MutatorPipeline& enable_dnssec(uint16_t udp_payload_size = 4096);

  /// Remove EDNS entirely (the inverse what-if).
  MutatorPipeline& strip_edns();

  /// Prepend a label to every qname; the validation methodology uses a
  /// unique prefix to match replayed queries with originals (§4.2).
  MutatorPipeline& prefix_qnames(const std::string& label);

  /// Set or clear the RD bit.
  MutatorPipeline& set_recursion_desired(bool rd);

  /// Rewrite every query to one fixed qtype.
  MutatorPipeline& force_qtype(dns::RRType qtype);

  /// Multiply all timestamps (relative to the first record seen) by
  /// `factor`: 0.5 doubles the query rate, 2.0 halves it.
  MutatorPipeline& scale_time(double factor);

  /// Shift the whole trace so it starts at `new_start`.
  MutatorPipeline& rebase_time(TimeNs new_start);

  /// Keep only records matching the predicate.
  MutatorPipeline& filter(Predicate pred);

  /// Arbitrary message-level edit (escape hatch for custom experiments).
  MutatorPipeline& edit_message(MessageEdit edit);

  /// Arbitrary record-level edit.
  MutatorPipeline& edit_record(RecordEdit edit);

  // --- application --------------------------------------------------------

  /// Apply to one record in place. Returns Drop if a filter rejected it,
  /// or an error if the payload needed decoding but was malformed.
  Result<Verdict> apply(TraceRecord& rec) const;

  /// Apply to a whole trace; dropped and malformed records are removed
  /// (malformed count is reported via `malformed` if non-null).
  std::vector<TraceRecord> apply_all(std::vector<TraceRecord> records,
                                     size_t* malformed = nullptr) const;

  size_t step_count() const {
    return steps_.size() + (time_scale_ != 1.0 ? 1 : 0) +
           (rebase_.has_value() ? 1 : 0);
  }

 private:
  // Steps run in insertion order (a filter placed after an edit sees the
  // edited message). Time scaling/rebasing applies last, once per record.
  using Step = std::variant<MessageEdit, RecordEdit, Predicate>;
  std::vector<Step> steps_;
  bool needs_message_ = false;
  double time_scale_ = 1.0;
  std::optional<TimeNs> rebase_;
  // Time origin is latched from the first record so scaling is stable for
  // streamed application.
  mutable std::optional<TimeNs> time_origin_;
};

}  // namespace ldp::mutate
