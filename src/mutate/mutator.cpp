#include "mutate/mutator.hpp"

namespace ldp::mutate {

using dns::Message;

MutatorPipeline& MutatorPipeline::force_transport(Transport t) {
  edit_record([t](TraceRecord& rec) { rec.transport = t; });
  return *this;
}

MutatorPipeline& MutatorPipeline::enable_dnssec(uint16_t udp_payload_size) {
  edit_message([udp_payload_size](Message& msg) {
    if (!msg.edns.has_value()) {
      dns::Edns e;
      e.udp_payload_size = udp_payload_size;
      msg.edns = e;
    }
    msg.edns->dnssec_ok = true;
  });
  return *this;
}

MutatorPipeline& MutatorPipeline::strip_edns() {
  edit_message([](Message& msg) { msg.edns.reset(); });
  return *this;
}

MutatorPipeline& MutatorPipeline::prefix_qnames(const std::string& label) {
  edit_message([label](Message& msg) {
    for (auto& q : msg.questions) {
      auto prefixed = q.qname.with_prefix_label(label);
      if (prefixed.ok()) q.qname = std::move(*prefixed);
      // A name already at the 255-octet limit keeps its original qname;
      // dropping the query would distort replay timing.
    }
  });
  return *this;
}

MutatorPipeline& MutatorPipeline::set_recursion_desired(bool rd) {
  edit_message([rd](Message& msg) { msg.header.rd = rd; });
  return *this;
}

MutatorPipeline& MutatorPipeline::force_qtype(dns::RRType qtype) {
  edit_message([qtype](Message& msg) {
    for (auto& q : msg.questions) q.qtype = qtype;
  });
  return *this;
}

MutatorPipeline& MutatorPipeline::scale_time(double factor) {
  time_scale_ = factor;
  return *this;
}

MutatorPipeline& MutatorPipeline::rebase_time(TimeNs new_start) {
  rebase_ = new_start;
  return *this;
}

MutatorPipeline& MutatorPipeline::filter(Predicate pred) {
  steps_.emplace_back(std::in_place_index<2>, std::move(pred));
  needs_message_ = true;
  return *this;
}

MutatorPipeline& MutatorPipeline::edit_message(MessageEdit edit) {
  steps_.emplace_back(std::in_place_index<0>, std::move(edit));
  needs_message_ = true;
  return *this;
}

MutatorPipeline& MutatorPipeline::edit_record(RecordEdit edit) {
  steps_.emplace_back(std::in_place_index<1>, std::move(edit));
  return *this;
}

Result<Verdict> MutatorPipeline::apply(TraceRecord& rec) const {
  if (!time_origin_.has_value()) time_origin_ = rec.timestamp;

  // Decode once if any step needs the message.
  std::optional<Message> msg;
  if (needs_message_) {
    auto decoded = rec.message();
    if (!decoded.ok()) return Err("undecodable payload: " + decoded.error().message);
    msg = std::move(*decoded);
  }

  bool message_dirty = false;
  for (const auto& step : steps_) {
    if (const auto* edit = std::get_if<0>(&step)) {
      (*edit)(*msg);
      message_dirty = true;
    } else if (const auto* record_edit = std::get_if<1>(&step)) {
      (*record_edit)(rec);
    } else {
      const auto& pred = std::get<2>(step);
      if (!pred(rec, *msg)) return Verdict::Drop;
    }
  }
  if (message_dirty) {
    rec.dns_payload = msg->to_wire();
    rec.direction =
        msg->header.qr ? trace::Direction::Response : trace::Direction::Query;
  }

  if (time_scale_ != 1.0) {
    rec.timestamp = *time_origin_ +
                    static_cast<TimeNs>(static_cast<double>(rec.timestamp - *time_origin_) *
                                        time_scale_);
  }
  if (rebase_.has_value()) {
    rec.timestamp = *rebase_ + (rec.timestamp - *time_origin_);
  }
  return Verdict::Keep;
}

std::vector<TraceRecord> MutatorPipeline::apply_all(std::vector<TraceRecord> records,
                                                    size_t* malformed) const {
  std::vector<TraceRecord> out;
  out.reserve(records.size());
  size_t bad = 0;
  for (auto& rec : records) {
    auto verdict = apply(rec);
    if (!verdict.ok()) {
      ++bad;
      continue;
    }
    if (*verdict == Verdict::Keep) out.push_back(std::move(rec));
  }
  if (malformed != nullptr) *malformed = bad;
  return out;
}

}  // namespace ldp::mutate
