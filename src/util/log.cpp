#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace ldp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view msg) {
  using namespace std::chrono;
  auto now = duration_cast<microseconds>(system_clock::now().time_since_epoch());
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "%lld.%06lld %-5s [%.*s] %.*s\n",
               static_cast<long long>(now.count() / 1000000),
               static_cast<long long>(now.count() % 1000000), level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace ldp
