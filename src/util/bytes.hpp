// Bounded binary readers/writers used by every wire-format codec in the tree
// (DNS messages, pcap records, the internal replay stream). All multi-byte
// integers are big-endian (network order) unless the _le variants are used
// (pcap headers are little-endian on disk).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace ldp {

/// Sequential, bounds-checked reader over a byte span. Does not own the
/// buffer; the caller must keep it alive. All read_* methods fail (Result
/// error) instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t pos() const { return pos_; }
  size_t size() const { return data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

  /// Reposition the cursor (used by DNS name-compression pointer chasing).
  Result<void> seek(size_t pos) {
    if (pos > data_.size()) return Err("seek past end");
    pos_ = pos;
    return Ok();
  }

  Result<void> skip(size_t n) {
    if (n > remaining()) return Err("skip past end");
    pos_ += n;
    return Ok();
  }

  Result<uint8_t> u8() {
    if (remaining() < 1) return Err("truncated u8");
    return data_[pos_++];
  }

  Result<uint16_t> u16() {
    if (remaining() < 2) return Err("truncated u16");
    uint16_t v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  Result<uint32_t> u32() {
    if (remaining() < 4) return Err("truncated u32");
    uint32_t v = static_cast<uint32_t>(data_[pos_]) << 24 |
                 static_cast<uint32_t>(data_[pos_ + 1]) << 16 |
                 static_cast<uint32_t>(data_[pos_ + 2]) << 8 |
                 static_cast<uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> u64() {
    if (remaining() < 8) return Err("truncated u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + i];
    pos_ += 8;
    return v;
  }

  Result<uint16_t> u16_le() {
    if (remaining() < 2) return Err("truncated u16le");
    uint16_t v = static_cast<uint16_t>(data_[pos_] | data_[pos_ + 1] << 8);
    pos_ += 2;
    return v;
  }

  Result<uint32_t> u32_le() {
    if (remaining() < 4) return Err("truncated u32le");
    uint32_t v = static_cast<uint32_t>(data_[pos_]) |
                 static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
                 static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
                 static_cast<uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  /// View of the next n bytes (no copy); advances the cursor.
  Result<std::span<const uint8_t>> bytes(size_t n) {
    if (n > remaining()) return Err("truncated bytes");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Copy of the next n bytes.
  Result<std::vector<uint8_t>> bytes_copy(size_t n) {
    auto sp = LDP_TRY(bytes(n));
    return std::vector<uint8_t>(sp.begin(), sp.end());
  }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Growable big-endian writer. Writers never fail: memory exhaustion throws
/// (bad_alloc) like every other allocation in the program.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

  size_t size() const { return buf_.size(); }
  std::span<const uint8_t> data() const { return buf_; }
  std::vector<uint8_t> take() && { return std::move(buf_); }
  void clear() { buf_.clear(); }

  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v >> 8));
    buf_.push_back(static_cast<uint8_t>(v));
  }
  void u32(uint32_t v) {
    buf_.push_back(static_cast<uint8_t>(v >> 24));
    buf_.push_back(static_cast<uint8_t>(v >> 16));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
    buf_.push_back(static_cast<uint8_t>(v));
  }
  void u64(uint64_t v) {
    for (int i = 7; i >= 0; --i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void u16_le(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void u32_le(uint32_t v) {
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
    buf_.push_back(static_cast<uint8_t>(v >> 16));
    buf_.push_back(static_cast<uint8_t>(v >> 24));
  }
  void bytes(std::span<const uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  void bytes(std::string_view s) {
    auto p = reinterpret_cast<const uint8_t*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  /// Overwrite a previously written big-endian u16 at `pos` (length
  /// back-patching for TCP framing and RDLENGTH fields).
  void patch_u16(size_t pos, uint16_t v) {
    buf_[pos] = static_cast<uint8_t>(v >> 8);
    buf_[pos + 1] = static_cast<uint8_t>(v);
  }

 private:
  std::vector<uint8_t> buf_;
};

/// Hex dump (lowercase, no separators) — used in error messages and tests.
std::string to_hex(std::span<const uint8_t> data);

/// Inverse of to_hex. Fails on odd length or non-hex characters.
Result<std::vector<uint8_t>> from_hex(std::string_view hex);

}  // namespace ldp
