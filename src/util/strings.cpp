#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace ldp {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

Result<uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return Err("empty integer");
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    return Err("invalid integer: " + std::string(s));
  return v;
}

Result<int64_t> parse_seconds_ns(std::string_view s) {
  if (s.empty() || s[0] == '-') return Err("invalid seconds: " + std::string(s));
  auto dot = s.find('.');
  std::string_view whole = (dot == std::string_view::npos) ? s : s.substr(0, dot);
  std::string_view frac = (dot == std::string_view::npos) ? "" : s.substr(dot + 1);
  if (frac.size() > 9) return Err("too many fractional digits: " + std::string(s));
  uint64_t sec = LDP_TRY(parse_u64(whole));
  uint64_t frac_ns = 0;
  if (!frac.empty()) {
    frac_ns = LDP_TRY(parse_u64(frac));
    for (size_t i = frac.size(); i < 9; ++i) frac_ns *= 10;
  }
  if (sec > static_cast<uint64_t>(INT64_MAX / 1000000000)) return Err("seconds overflow");
  return static_cast<int64_t>(sec * 1000000000 + frac_ns);
}

std::string format_seconds_ns(int64_t ns) {
  char buf[40];
  bool neg = ns < 0;
  uint64_t abs_ns = neg ? static_cast<uint64_t>(-(ns + 1)) + 1 : static_cast<uint64_t>(ns);
  // Round to microseconds to match the capture format's precision.
  uint64_t us = abs_ns / 1000;
  std::snprintf(buf, sizeof(buf), "%s%llu.%06llu", neg ? "-" : "",
                static_cast<unsigned long long>(us / 1000000),
                static_cast<unsigned long long>(us % 1000000));
  return buf;
}

}  // namespace ldp
