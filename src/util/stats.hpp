// Statistics helpers used by the benchmark harnesses: exact quantiles over
// collected samples, the five-number summaries the paper plots (median,
// quartiles, 5th/95th percentiles), CDF extraction, and per-window rate
// counters (Figure 8 compares per-second query rates).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ldp {

/// Five-number summary matching the paper's box plots: median, quartiles,
/// and 5th/95th percentiles, plus min/max/mean for the text.
struct Summary {
  double min = 0, p5 = 0, q1 = 0, median = 0, q3 = 0, p95 = 0, max = 0;
  double mean = 0, stdev = 0;
  size_t count = 0;
};

/// Accumulates double samples and answers quantile queries exactly (sorts a
/// copy on demand). Fine for bench-scale sample counts (millions).
class Sampler {
 public:
  void add(double v) { samples_.push_back(v); }
  void add_all(const std::vector<double>& vs) {
    samples_.insert(samples_.end(), vs.begin(), vs.end());
  }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<double>& samples() const { return samples_; }

  /// Quantile by linear interpolation between order statistics; q in [0,1].
  double quantile(double q) const;
  Summary summary() const;

  /// (value, cumulative fraction) pairs suitable for plotting a CDF;
  /// `points` caps the output size by downsampling evenly in rank space.
  std::vector<std::pair<double, double>> cdf(size_t points = 200) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Counts events into fixed-width time windows (e.g. 1-second buckets) so a
/// replayed trace's per-second rate can be compared to the original's.
class RateCounter {
 public:
  explicit RateCounter(int64_t window_ns) : window_ns_(window_ns) {}

  void add(int64_t t_ns) { ++buckets_[t_ns / window_ns_]; }

  /// Events per window, indexed by window number (gaps count as zero between
  /// the first and last occupied windows).
  std::vector<uint64_t> series() const;

  int64_t window_ns() const { return window_ns_; }

 private:
  int64_t window_ns_;
  std::map<int64_t, uint64_t> buckets_;
};

/// Render a Summary as the "median [q1,q3] (p5,p95)" string used in bench
/// output tables.
std::string format_summary(const Summary& s, const char* unit);

}  // namespace ldp
