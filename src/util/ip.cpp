#include "util/ip.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace ldp {

std::string Ip4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", addr_ >> 24 & 0xff,
                addr_ >> 16 & 0xff, addr_ >> 8 & 0xff, addr_ & 0xff);
  return buf;
}

Result<Ip4> Ip4::parse(std::string_view text) {
  auto parts = split(text, '.');
  if (parts.size() != 4) return Err("invalid IPv4: " + std::string(text));
  uint32_t v = 0;
  for (auto part : parts) {
    uint64_t octet = LDP_TRY(parse_u64(part));
    if (octet > 255) return Err("IPv4 octet out of range: " + std::string(text));
    v = v << 8 | static_cast<uint32_t>(octet);
  }
  return Ip4{v};
}

std::string Ip6::to_string() const {
  // RFC 5952 canonical form: compress the longest run of zero groups.
  uint16_t groups[8];
  for (int i = 0; i < 8; ++i)
    groups[i] = static_cast<uint16_t>(bytes_[2 * i] << 8 | bytes_[2 * i + 1]);

  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;  // single zero group is not compressed

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    ++i;
  }
  return out;
}

Result<Ip6> Ip6::parse(std::string_view text) {
  // Split on "::" first; each side is a list of hex groups.
  std::array<uint8_t, 16> bytes{};
  auto parse_groups = [](std::string_view s) -> Result<std::vector<uint16_t>> {
    std::vector<uint16_t> groups;
    if (s.empty()) return groups;
    for (auto part : split(s, ':')) {
      if (part.empty() || part.size() > 4)
        return Err("invalid IPv6 group: " + std::string(s));
      uint32_t v = 0;
      for (char c : part) {
        int nib;
        if (c >= '0' && c <= '9') nib = c - '0';
        else if (c >= 'a' && c <= 'f') nib = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') nib = c - 'A' + 10;
        else return Err("invalid IPv6 character: " + std::string(s));
        v = v << 4 | static_cast<uint32_t>(nib);
      }
      groups.push_back(static_cast<uint16_t>(v));
    }
    return groups;
  };

  size_t dc = text.find("::");
  std::vector<uint16_t> head, tail;
  if (dc == std::string_view::npos) {
    head = LDP_TRY(parse_groups(text));
    if (head.size() != 8) return Err("invalid IPv6: " + std::string(text));
  } else {
    if (text.find("::", dc + 1) != std::string_view::npos)
      return Err("multiple :: in IPv6: " + std::string(text));
    head = LDP_TRY(parse_groups(text.substr(0, dc)));
    tail = LDP_TRY(parse_groups(text.substr(dc + 2)));
    if (head.size() + tail.size() > 7) return Err("IPv6 too long: " + std::string(text));
  }

  size_t idx = 0;
  for (uint16_t g : head) {
    bytes[idx++] = static_cast<uint8_t>(g >> 8);
    bytes[idx++] = static_cast<uint8_t>(g);
  }
  size_t tail_start = 16 - tail.size() * 2;
  idx = tail_start;
  for (uint16_t g : tail) {
    bytes[idx++] = static_cast<uint8_t>(g >> 8);
    bytes[idx++] = static_cast<uint8_t>(g);
  }
  return Ip6{bytes};
}

Result<IpAddr> IpAddr::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    auto v6 = Ip6::parse(text);
    if (!v6.ok()) return Err(v6.error().message);
    return IpAddr{*v6};
  }
  auto v4 = Ip4::parse(text);
  if (!v4.ok()) return Err(v4.error().message);
  return IpAddr{*v4};
}

std::string Endpoint::to_string() const {
  if (addr.is_v6()) return "[" + addr.to_string() + "]:" + std::to_string(port);
  return addr.to_string() + ":" + std::to_string(port);
}

}  // namespace ldp
