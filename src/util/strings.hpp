// Small string helpers shared by the zone-file parser and the plain-text
// trace format. Deliberately allocation-light: views in, views out where the
// lifetime allows.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace ldp {

/// Split on a single delimiter; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; empty fields never appear.
std::vector<std::string_view> split_ws(std::string_view s);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy (DNS names compare case-insensitively).
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Parse an unsigned decimal integer; rejects trailing junk and overflow.
Result<uint64_t> parse_u64(std::string_view s);

/// Parse a decimal seconds value ("12.345678") into integer nanoseconds.
/// Accepts up to 9 fractional digits; rejects negative values and junk.
Result<int64_t> parse_seconds_ns(std::string_view s);

/// Format integer nanoseconds as decimal seconds with 6 fractional digits
/// ("12.345678") — the plain-text trace timestamp format.
std::string format_seconds_ns(int64_t ns);

}  // namespace ldp
