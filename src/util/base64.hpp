// Base64 (RFC 4648) used by DNSSEC presentation formats (DNSKEY public keys,
// RRSIG signatures in zone files).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace ldp {

std::string base64_encode(std::span<const uint8_t> data);

/// Whitespace inside the input is ignored (zone files wrap long keys).
Result<std::vector<uint8_t>> base64_decode(std::string_view text);

}  // namespace ldp
