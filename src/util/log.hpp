// Minimal leveled logger. Benchmark binaries set the level to Warn so that
// hot replay paths stay quiet; tests may raise it to Debug for diagnosis.
#pragma once

#include <sstream>
#include <string_view>

namespace ldp {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view msg);
}

/// Streaming log statement that formats lazily: the ostringstream is only
/// constructed when the level is enabled.
#define LDP_LOG(level, component, expr)                               \
  do {                                                                \
    if (static_cast<int>(level) >= static_cast<int>(::ldp::log_level())) { \
      std::ostringstream ldp_log_os_;                                 \
      ldp_log_os_ << expr;                                            \
      ::ldp::detail::log_emit(level, component, ldp_log_os_.str());   \
    }                                                                 \
  } while (0)

#define LDP_DEBUG(component, expr) LDP_LOG(::ldp::LogLevel::Debug, component, expr)
#define LDP_INFO(component, expr) LDP_LOG(::ldp::LogLevel::Info, component, expr)
#define LDP_WARN(component, expr) LDP_LOG(::ldp::LogLevel::Warn, component, expr)
#define LDP_ERROR(component, expr) LDP_LOG(::ldp::LogLevel::Error, component, expr)

}  // namespace ldp
