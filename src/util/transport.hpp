// Transport protocols LDplayer replays over (§2.1 "Support multiple
// protocols effectively"). Shared by trace records, the query engine, the
// socket layer and the simulator.
#pragma once

#include <string>
#include <string_view>

#include "util/result.hpp"

namespace ldp {

enum class Transport : uint8_t { Udp = 0, Tcp = 1, Tls = 2 };

inline const char* transport_name(Transport t) {
  switch (t) {
    case Transport::Udp: return "UDP";
    case Transport::Tcp: return "TCP";
    case Transport::Tls: return "TLS";
  }
  return "?";
}

inline Result<Transport> transport_from_string(std::string_view s) {
  if (s == "UDP" || s == "udp") return Transport::Udp;
  if (s == "TCP" || s == "tcp") return Transport::Tcp;
  if (s == "TLS" || s == "tls") return Transport::Tls;
  return Err("unknown transport: " + std::string(s));
}

}  // namespace ldp
