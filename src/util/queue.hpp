// Bounded MPMC queue shared by the proxy pipeline and the distributed
// query engine (controller -> distributor -> querier message flow, §2.6).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace ldp {

/// Bounded MPMC queue. push() blocks when full (back-pressure on the
/// reader); pop() blocks until an item or shutdown.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Close: pushes fail, pops drain then return nullopt.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// True once close() was called and every item has been popped.
  bool closed_and_empty() const {
    std::lock_guard lock(mu_);
    return closed_ && items_.empty();
  }

  size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ldp
