// Bounded MPMC queue shared by the proxy pipeline and the distributed
// query engine (controller -> distributor -> querier message flow, §2.6).
//
// Shutdown contract: close() atomically flips the queue to closed and wakes
// every blocked producer and consumer exactly once (a single notify_all per
// condition under the lock — no lost wakeups, no spurious re-blocking).
// After close(), pushes are rejected *with the item intact* so callers can
// re-route work instead of silently losing it (the failure mode PR 1's
// lifecycle work exists to prevent), and pops drain the remaining items
// before returning nullopt.
//
// Overload handling (replay supervision layer): producers may wait with a
// bounded grace (`push_for`) and then shed by evicting the oldest queued
// item (`evict_push`) so a stalled consumer back-pressures into accounted
// load shedding instead of freezing the controller clock. `high_water()`
// reports the deepest the queue ever got, for saturation diagnostics.
#pragma once

#include <condition_variable>
#include <chrono>
#include <deque>
#include <mutex>
#include <optional>

#include "util/clock.hpp"

namespace ldp {

/// Outcome of a non-blocking or bounded-wait push.
enum class PushResult : uint8_t {
  Ok = 0,      ///< item enqueued
  Full = 1,    ///< grace expired with the queue still full; item preserved
  Closed = 2,  ///< queue closed; item preserved
};

/// Bounded MPMC queue. push() blocks when full (back-pressure on the
/// reader); pop() blocks until an item or shutdown.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocking push. Returns false if the queue was closed (before or while
  /// waiting); the item is lost in that case — prefer push_for() when the
  /// caller can re-route rejected work.
  bool push(T item) { return push_for(item, -1) == PushResult::Ok; }

  /// Push, waiting at most `grace` for space (grace < 0 waits forever,
  /// grace == 0 never blocks). On Full/Closed the item is left intact in
  /// `item` so the caller can shed, re-route, or retry it.
  PushResult push_for(T& item, TimeNs grace) {
    std::unique_lock lock(mu_);
    auto ready = [this] { return items_.size() < capacity_ || closed_; };
    if (grace < 0) {
      not_full_.wait(lock, ready);
    } else if (!not_full_.wait_for(lock, std::chrono::nanoseconds(grace), ready)) {
      return PushResult::Full;
    }
    if (closed_) return PushResult::Closed;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.notify_one();
    return PushResult::Ok;
  }

  /// Non-blocking push that makes room by evicting the oldest queued item
  /// when full (drop-oldest shedding). The evicted item, if any, is returned
  /// through `evicted` for accounting. Closed queues still reject.
  PushResult evict_push(T& item, std::optional<T>& evicted) {
    std::unique_lock lock(mu_);
    if (closed_) return PushResult::Closed;
    if (items_.size() >= capacity_ && !items_.empty()) {
      evicted = std::move(items_.front());
      items_.pop_front();
    }
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.notify_one();
    return PushResult::Ok;
  }

  /// Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    return take_locked();
  }

  /// Bounded-wait pop: nullopt on timeout *or* closed-and-drained; callers
  /// that need to tell the two apart check closed_and_empty() after. Lets a
  /// consumer thread interleave housekeeping (heartbeats) with draining.
  std::optional<T> pop_for(TimeNs timeout) {
    std::unique_lock lock(mu_);
    not_empty_.wait_for(lock, std::chrono::nanoseconds(timeout),
                        [this] { return !items_.empty() || closed_; });
    return take_locked();
  }

  /// Close: pushes fail (items preserved via push_for/evict_push), pops
  /// drain then return nullopt. Idempotent; wakes all waiters exactly once.
  void close() {
    std::lock_guard lock(mu_);
    if (closed_) return;
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// True once close() was called and every item has been popped.
  bool closed_and_empty() const {
    std::lock_guard lock(mu_);
    return closed_ && items_.empty();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  /// Deepest the queue ever got (saturation high-water mark).
  size_t high_water() const {
    std::lock_guard lock(mu_);
    return high_water_;
  }

 private:
  std::optional<T> take_locked() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace ldp
