#include "util/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace ldp::metrics {

size_t Histogram::bucket_of(int64_t v) {
  if (v <= 0) return 0;
  return static_cast<size_t>(std::bit_width(static_cast<uint64_t>(v)));
}

void Histogram::add(int64_t v) {
  if (v < 0) v = 0;
  ++buckets_[bucket_of(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += static_cast<double>(v);
}

void Histogram::merge(const Histogram& o) {
  if (o.count_ == 0) return;
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  if (count_ == 0) {
    min_ = o.min_;
    max_ = o.max_;
  } else {
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }
  count_ += o.count_;
  sum_ += o.sum_;
}

double Histogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count]; walk buckets until the cumulative count covers it,
  // then interpolate linearly inside the bucket's value range.
  double rank = q * static_cast<double>(count_ - 1) + 1.0;
  uint64_t cum = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (static_cast<double>(cum + buckets_[b]) >= rank) {
      double frac = (rank - static_cast<double>(cum)) /
                    static_cast<double>(buckets_[b]);
      double lo = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (b - 1));
      double hi = b >= 63 ? static_cast<double>(max_)
                          : static_cast<double>(uint64_t{1} << b);
      lo = std::max(lo, static_cast<double>(min_));
      hi = std::min(hi, static_cast<double>(max_));
      if (hi < lo) hi = lo;
      return lo + frac * (hi - lo);
    }
    cum += buckets_[b];
  }
  return static_cast<double>(max_);
}

std::string Histogram::summary_ms() const {
  if (count_ == 0) return "no samples";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "p50 %.2fms  p90 %.2fms  p99 %.2fms (n=%llu)",
                quantile(0.50) / 1e6, quantile(0.90) / 1e6,
                quantile(0.99) / 1e6, static_cast<unsigned long long>(count_));
  return buf;
}

}  // namespace ldp::metrics
