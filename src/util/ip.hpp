// IPv4/IPv6 address and endpoint value types shared by the trace formats,
// proxies, the socket layer, and the simulator. Self-contained (no
// sockaddr dependency) so the simulator and pcap codec can use them without
// touching OS headers.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace ldp {

/// IPv4 address stored in host byte order for cheap arithmetic; to_wire
/// converts to network order.
class Ip4 {
 public:
  constexpr Ip4() = default;
  constexpr explicit Ip4(uint32_t host_order) : addr_(host_order) {}
  constexpr Ip4(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : addr_(static_cast<uint32_t>(a) << 24 | static_cast<uint32_t>(b) << 16 |
              static_cast<uint32_t>(c) << 8 | d) {}

  constexpr uint32_t value() const { return addr_; }
  std::string to_string() const;
  static Result<Ip4> parse(std::string_view text);

  auto operator<=>(const Ip4&) const = default;

 private:
  uint32_t addr_ = 0;
};

/// IPv6 address, 16 bytes network order.
class Ip6 {
 public:
  constexpr Ip6() = default;
  explicit Ip6(const std::array<uint8_t, 16>& bytes) : bytes_(bytes) {}

  const std::array<uint8_t, 16>& bytes() const { return bytes_; }
  std::string to_string() const;
  static Result<Ip6> parse(std::string_view text);

  auto operator<=>(const Ip6&) const = default;

 private:
  std::array<uint8_t, 16> bytes_{};
};

/// Generic address: v4 or v6. DNS traces mix both; the simulator and
/// proxies treat addresses opaquely.
class IpAddr {
 public:
  IpAddr() : v4_(Ip4{}), is_v6_(false) {}
  IpAddr(Ip4 a) : v4_(a), is_v6_(false) {}
  IpAddr(Ip6 a) : v6_(a), is_v6_(true) {}

  bool is_v4() const { return !is_v6_; }
  bool is_v6() const { return is_v6_; }
  Ip4 v4() const { return v4_; }
  const Ip6& v6() const { return v6_; }

  std::string to_string() const { return is_v6_ ? v6_.to_string() : v4_.to_string(); }
  static Result<IpAddr> parse(std::string_view text);

  bool operator==(const IpAddr& o) const {
    if (is_v6_ != o.is_v6_) return false;
    return is_v6_ ? v6_ == o.v6_ : v4_ == o.v4_;
  }
  bool operator<(const IpAddr& o) const {
    if (is_v6_ != o.is_v6_) return is_v6_ < o.is_v6_;
    return is_v6_ ? v6_ < o.v6_ : v4_ < o.v4_;
  }

  size_t hash() const {
    if (!is_v6_) return std::hash<uint32_t>{}(v4_.value());
    size_t h = 1469598103934665603ull;
    for (uint8_t b : v6_.bytes()) h = (h ^ b) * 1099511628211ull;
    return h;
  }

 private:
  // Not a variant: the union keeps IpAddr trivially copyable and 17 bytes,
  // which matters for trace records held by the hundred million.
  union {
    Ip4 v4_;
    Ip6 v6_;
  };
  bool is_v6_;
};

/// Address:port pair.
struct Endpoint {
  IpAddr addr;
  uint16_t port = 0;

  std::string to_string() const;
  bool operator==(const Endpoint& o) const { return addr == o.addr && port == o.port; }
  bool operator<(const Endpoint& o) const {
    if (!(addr == o.addr)) return addr < o.addr;
    return port < o.port;
  }
};

struct IpAddrHash {
  size_t operator()(const IpAddr& a) const { return a.hash(); }
};
struct EndpointHash {
  size_t operator()(const Endpoint& e) const { return e.addr.hash() * 31 + e.port; }
};

}  // namespace ldp
