// Deterministic random sources for workload synthesis. All generators are
// seeded explicitly so every experiment is reproducible (a core LDplayer
// requirement, §2.1 "Repeatability of experiments").
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace ldp {

/// Thin wrapper around mt19937_64 with convenience draws. Not thread-safe;
/// give each worker its own instance.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t uniform(uint64_t lo, uint64_t hi) {
    return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Exponential with the given mean (Poisson arrival gaps).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Log-normal parameterized by the *target* mean/stdev of the resulting
  /// distribution (not of the underlying normal), matching how Table 1
  /// reports trace inter-arrival statistics.
  double lognormal_mean_sd(double mean, double sd) {
    double sigma2 = std::log(1.0 + (sd * sd) / (mean * mean));
    double mu = std::log(mean) - sigma2 / 2.0;
    return std::lognormal_distribution<double>(mu, std::sqrt(sigma2))(engine_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf(s) sampler over ranks 1..n via precomputed inverse CDF. DNS client
/// populations are strongly Zipf-like: the paper observes 1% of clients
/// sending three quarters of root traffic (§5.2.4, Figure 15c).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Draw a rank in [0, n).
  size_t sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

inline ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n);
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (double& v : cdf_) v /= acc;
}

inline size_t ZipfSampler::sample(Rng& rng) const {
  double u = rng.uniform01();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace ldp
