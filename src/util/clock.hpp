// Time representation shared by the replay scheduler and the discrete-event
// simulator: plain int64 nanoseconds. A single scalar type (instead of
// chrono's unit zoo) keeps trace records POD and lets simulated and real
// timelines share arithmetic.
#pragma once

#include <chrono>
#include <cstdint>

namespace ldp {

/// Nanoseconds since an epoch. Which epoch depends on context: wall clock
/// for trace timestamps, run start for the replay scheduler, simulation
/// start for simnet.
using TimeNs = int64_t;

inline constexpr TimeNs kMicro = 1'000;
inline constexpr TimeNs kMilli = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;

inline constexpr TimeNs ms_to_ns(int64_t ms) { return ms * kMilli; }
inline constexpr TimeNs us_to_ns(int64_t us) { return us * kMicro; }
inline constexpr TimeNs sec_to_ns(double sec) {
  return static_cast<TimeNs>(sec * static_cast<double>(kSecond));
}
inline constexpr double ns_to_sec(TimeNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kSecond);
}
inline constexpr double ns_to_ms(TimeNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kMilli);
}

/// Monotonic now() in nanoseconds — the real-time replay clock.
inline TimeNs mono_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock now() in nanoseconds since the Unix epoch — trace timestamps.
inline TimeNs wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace ldp
