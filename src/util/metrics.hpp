// Lightweight replay metrics: a log2-bucketed latency histogram and the
// query-lifecycle counter bundle the engine threads through
// Querier → Distributor → QueryEngine into EngineReport. Both types are
// cheaply mergeable so per-querier instances can be combined without locks
// (each querier owns its own copy; merging happens after the threads join).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ldp::metrics {

/// Fixed-size histogram over non-negative int64 samples (nanoseconds in
/// practice). Buckets are powers of two — bucket b counts samples in
/// [2^(b-1), 2^b) — so add() is O(1) with no allocation, and quantiles are
/// answered by linear interpolation inside the winning bucket. Accuracy is
/// within a factor of 2 per bucket, which is plenty for the latency
/// distributions the replay reports (the exact Sampler stays available for
/// bench-side analysis of raw send records).
class Histogram {
 public:
  void add(int64_t v);
  void merge(const Histogram& o);

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return count_ > 0 ? max_ : 0; }
  double mean() const;
  /// Approximate quantile, q in [0,1].
  double quantile(double q) const;

  /// "p50 1.2ms  p90 3.4ms  p99 9.1ms (n=...)" for tool/bench output.
  std::string summary_ms() const;

  // Raw-state access for checkpoint serialization: the log2 buckets plus the
  // exact running sum round-trip a histogram losslessly across a resume.
  static constexpr size_t kBuckets = 65;
  uint64_t bucket_value(size_t b) const { return b < kBuckets ? buckets_[b] : 0; }
  double sum() const { return sum_; }
  void restore_state(const std::array<uint64_t, kBuckets>& buckets,
                     uint64_t count, int64_t min, int64_t max, double sum) {
    buckets_ = buckets;
    count_ = count;
    min_ = min;
    max_ = max;
    sum_ = sum;
  }

 private:
  static size_t bucket_of(int64_t v);

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
};

/// Per-query lifecycle accounting (sent → answered / timed-out / errored).
/// Every counter is an event count, not a query count, except `expired`
/// which counts queries permanently given up on; invariants the tests rely
/// on: timeouts == retries + expired-by-timeout, and
/// responses + expired + in-flight == queries inserted.
struct LifecycleCounters {
  uint64_t timeouts = 0;             ///< deadline fired on an in-flight query
  uint64_t retries = 0;              ///< retransmits / resends actually issued
  uint64_t expired = 0;              ///< queries abandoned (timeout budget spent,
                                     ///< connection lost, or engine shutdown)
  uint64_t duplicate_ids = 0;        ///< DNS-ID collisions among live queries
  uint64_t tcp_reconnects = 0;       ///< connections re-established to resend
  uint64_t answered_after_retry = 0; ///< answers that needed ≥1 retransmit
  uint64_t deferred_sends = 0;       ///< sends delayed by a full kernel buffer
  uint64_t unmatched_responses = 0;  ///< responses with no live pending entry
  uint64_t socket_errors = 0;        ///< recv/read errors surfaced by the net layer
  uint64_t adopted_resends = 0;      ///< in-flight queries resent after a querier
                                     ///< failure or a checkpoint resume

  void merge(const LifecycleCounters& o) {
    timeouts += o.timeouts;
    retries += o.retries;
    expired += o.expired;
    duplicate_ids += o.duplicate_ids;
    tcp_reconnects += o.tcp_reconnects;
    answered_after_retry += o.answered_after_retry;
    deferred_sends += o.deferred_sends;
    unmatched_responses += o.unmatched_responses;
    socket_errors += o.socket_errors;
    adopted_resends += o.adopted_resends;
  }
};

}  // namespace ldp::metrics
