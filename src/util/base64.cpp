#include "util/base64.hpp"

#include <array>
#include <cctype>

namespace ldp {

namespace {
constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int8_t, 256> build_reverse() {
  std::array<int8_t, 256> rev;
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) rev[static_cast<unsigned char>(kAlphabet[i])] = static_cast<int8_t>(i);
  return rev;
}
const std::array<int8_t, 256> kReverse = build_reverse();
}  // namespace

std::string base64_encode(std::span<const uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    uint32_t v = static_cast<uint32_t>(data[i]) << 16 |
                 static_cast<uint32_t>(data[i + 1]) << 8 | data[i + 2];
    out.push_back(kAlphabet[v >> 18 & 0x3f]);
    out.push_back(kAlphabet[v >> 12 & 0x3f]);
    out.push_back(kAlphabet[v >> 6 & 0x3f]);
    out.push_back(kAlphabet[v & 0x3f]);
  }
  size_t rem = data.size() - i;
  if (rem == 1) {
    uint32_t v = static_cast<uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[v >> 18 & 0x3f]);
    out.push_back(kAlphabet[v >> 12 & 0x3f]);
    out += "==";
  } else if (rem == 2) {
    uint32_t v = static_cast<uint32_t>(data[i]) << 16 | static_cast<uint32_t>(data[i + 1]) << 8;
    out.push_back(kAlphabet[v >> 18 & 0x3f]);
    out.push_back(kAlphabet[v >> 12 & 0x3f]);
    out.push_back(kAlphabet[v >> 6 & 0x3f]);
    out.push_back('=');
  }
  return out;
}

Result<std::vector<uint8_t>> base64_decode(std::string_view text) {
  std::vector<uint8_t> out;
  uint32_t acc = 0;
  int bits = 0;
  int pad = 0;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      ++pad;
      continue;
    }
    if (pad > 0) return Err("base64 data after padding");
    int8_t v = kReverse[static_cast<unsigned char>(c)];
    if (v < 0) return Err("invalid base64 character");
    acc = acc << 6 | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<uint8_t>(acc >> bits));
    }
  }
  if (pad > 2) return Err("too much base64 padding");
  return out;
}

}  // namespace ldp
