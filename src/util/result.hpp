// Result<T>: a lightweight expected-style type for data-plane errors.
//
// LDplayer parses untrusted wire data (DNS messages, pcap records, trace
// streams) at high rates; malformed input is an expected outcome there, not
// an exceptional one, so parsers return Result<T> instead of throwing.
// Exceptions remain reserved for construction/configuration errors.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace ldp {

/// Error payload carried by a failed Result. A short machine-friendly code
/// plus a human-readable message describing what went wrong. OS-level
/// failures additionally carry the errno observed at the failure site, so
/// callers can distinguish transient conditions from hard connection loss
/// without parsing the message.
struct Error {
  std::string message;
  int sys_errno = 0;  ///< errno when the error came from a syscall, else 0

  explicit Error(std::string msg, int err = 0)
      : message(std::move(msg)), sys_errno(err) {}
};

/// Construct a failed-Result payload in one call: `return Err("truncated")`.
inline Error Err(std::string msg, int sys_errno = 0) {
  return Error{std::move(msg), sys_errno};
}

/// Result<T> holds either a value of T or an Error. Modeled on
/// std::expected (C++23) but self-contained for C++20.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from both alternatives keeps call sites terse:
  // `return value;` or `return Err("...")`.
  Result(T value) : data_(std::move(value)) {}
  Result(Error error) : data_(std::move(error)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// Access the value. Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Access the error. Precondition: !ok().
  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Value if present, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void>: success carries no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : error_(std::nullopt) {}
  Result(Error error) : error_(std::move(error)) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Success value for Result<void>.
inline Result<void> Ok() { return Result<void>{}; }

// Propagate an error from a subordinate Result expression. Usage:
//   auto name = TRY(Name::parse(rd));
// Requires the enclosing function to itself return a Result<...>.
#define LDP_TRY(expr)                              \
  ({                                               \
    auto ldp_try_tmp_ = (expr);                    \
    if (!ldp_try_tmp_.ok())                        \
      return ::ldp::Error{ldp_try_tmp_.error()};   \
    std::move(ldp_try_tmp_).value();               \
  })

#define LDP_TRY_VOID(expr)                         \
  do {                                             \
    auto ldp_try_tmp_ = (expr);                    \
    if (!ldp_try_tmp_.ok())                        \
      return ::ldp::Error{ldp_try_tmp_.error()};   \
  } while (0)

}  // namespace ldp
