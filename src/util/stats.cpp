#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ldp {

void Sampler::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Sampler::quantile(double q) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  if (q <= 0) return samples_.front();
  if (q >= 1) return samples_.back();
  double rank = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1 - frac) + samples_[lo + 1] * frac;
}

Summary Sampler::summary() const {
  Summary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  ensure_sorted();
  s.min = samples_.front();
  s.max = samples_.back();
  s.p5 = quantile(0.05);
  s.q1 = quantile(0.25);
  s.median = quantile(0.5);
  s.q3 = quantile(0.75);
  s.p95 = quantile(0.95);
  double sum = 0;
  for (double v : samples_) sum += v;
  s.mean = sum / static_cast<double>(samples_.size());
  double var = 0;
  for (double v : samples_) var += (v - s.mean) * (v - s.mean);
  s.stdev = samples_.size() > 1
                ? std::sqrt(var / static_cast<double>(samples_.size() - 1))
                : 0;
  return s;
}

std::vector<std::pair<double, double>> Sampler::cdf(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty()) return out;
  ensure_sorted();
  size_t n = samples_.size();
  size_t step = std::max<size_t>(1, n / points);
  out.reserve(n / step + 2);
  for (size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().second < 1.0) out.emplace_back(samples_.back(), 1.0);
  return out;
}

std::vector<uint64_t> RateCounter::series() const {
  std::vector<uint64_t> out;
  if (buckets_.empty()) return out;
  int64_t first = buckets_.begin()->first;
  int64_t last = buckets_.rbegin()->first;
  out.assign(static_cast<size_t>(last - first + 1), 0);
  for (auto [win, n] : buckets_) out[static_cast<size_t>(win - first)] = n;
  return out;
}

std::string format_summary(const Summary& s, const char* unit) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.3f [%.3f, %.3f] (%.3f, %.3f) %s",
                s.median, s.q1, s.q3, s.p5, s.p95, unit);
  return buf;
}

}  // namespace ldp
