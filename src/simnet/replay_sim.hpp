// Trace replay over the simulated testbed: the driver behind the §5.2
// experiments (Figures 11, 13, 14, 15) and the DNSSEC bandwidth experiment
// (Figure 10). Replays a (possibly mutated) trace against an AuthServer in
// virtual time, modelling per-client connection reuse, server idle
// timeouts, TIME_WAIT, and the calibrated memory/CPU costs.
//
// Connection model: one connection per client source address (the query
// engine pins same-source queries to one socket, §2.6). A client reuses
// its connection while the server still holds it open; a connection idle
// longer than the server timeout is closed server-side, sits in TIME_WAIT
// for 60 s, and the next query from that client pays the full handshake.
#pragma once

#include <unordered_map>

#include "fault/fault.hpp"
#include "server/auth_server.hpp"
#include "simnet/model.hpp"
#include "simnet/sim.hpp"
#include "trace/record.hpp"
#include "util/stats.hpp"

namespace ldp::simnet {

struct SimReplayConfig {
  TimeNs rtt = kMilli;                      ///< client<->server round trip
  TimeNs idle_timeout = 20 * kSecond;       ///< server connection timeout
  TimeNs sample_interval = 60 * kSecond;    ///< metrics sampling (per minute)
  MemoryModel memory;
  CpuModel cpu;
  /// Busy-client threshold for the Figure 15b split (queries per trace).
  uint64_t busy_threshold = 250;
  /// UDP payload limit for truncation semantics.
  size_t udp_limit = 512;
  /// Impairment scenario applied to the client→server path, sharing the
  /// FaultSpec definitions (and per-source stream names, "udp:<src>" /
  /// "tcp:<src>") with the real-socket engine — the same scenario file
  /// drives testbed and discrete-event runs. Virtual time makes simnet
  /// runs bit-exact. nullptr = clean link.
  const fault::FaultSpec* fault = nullptr;
};

/// One metrics sample (a point on the Figure 13/14 time axes).
struct MetricsSample {
  TimeNs t = 0;
  size_t established = 0;
  size_t time_wait = 0;
  uint64_t memory_bytes = 0;
  double cpu_fraction = 0;       ///< of all cores, over the last interval
  uint64_t response_bytes = 0;   ///< sent during the last interval
};

struct SimReplayResult {
  std::vector<MetricsSample> samples;
  Sampler latency_all_ms;      ///< per-query latency, every client
  Sampler latency_nonbusy_ms;  ///< clients below the busy threshold
  uint64_t queries = 0;
  uint64_t responses = 0;
  uint64_t connections_opened = 0;
  uint64_t connections_closed_idle = 0;
  uint64_t handshakes_reused = 0;  ///< queries that reused a connection
  uint64_t truncated = 0;
  uint64_t queries_lost = 0;       ///< eaten by the fault layer (no response)
  size_t peak_established = 0;
  fault::ImpairmentCounters impairments;  ///< fault-layer accounting

  /// Steady-state view (samples after the warmup prefix).
  Summary steady_memory_gb(size_t skip_samples = 5) const;
  Summary steady_cpu_percent(size_t skip_samples = 5) const;
};

/// Replay `trace` against `server` in virtual time. The trace must be
/// time-ordered. `server` may be shared across runs (stats accumulate).
SimReplayResult simulate_replay(const std::vector<trace::TraceRecord>& trace,
                                const server::AuthServer& server,
                                const SimReplayConfig& config);

}  // namespace ldp::simnet
