// Discrete-event simulator core: a virtual clock and an event heap. The
// RTT-sweep and resource experiments (§5.2) run on this instead of a
// testbed — virtual time makes a 20-minute trace with 140 ms RTTs run in
// seconds and perfectly reproducibly.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "util/clock.hpp"

namespace ldp::simnet {

class Simulator {
 public:
  using Event = std::function<void()>;

  TimeNs now() const { return now_; }

  void schedule_at(TimeNs t, Event fn);
  void schedule_after(TimeNs delay, Event fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run until the queue drains (or stop()).
  void run();
  /// Run events with time <= t, then set the clock to t.
  void run_until(TimeNs t);
  void stop() { stopped_ = true; }

  uint64_t events_processed() const { return processed_; }
  size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    TimeNs t;
    uint64_t seq;  // FIFO among simultaneous events
    Event fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  TimeNs now_ = 0;
  uint64_t seq_ = 0;
  uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace ldp::simnet
