#include "simnet/replay_sim.hpp"

namespace ldp::simnet {

using trace::Direction;
using trace::TraceRecord;

namespace {

struct ClientConn {
  bool open = false;
  Transport transport = Transport::Tcp;
  TimeNs last_activity = 0;
  /// When the connection finishes its handshake. Queries arriving earlier
  /// queue behind it — the burst-behind-handshake effect responsible for
  /// the paper's non-linear TLS latency growth with RTT (§5.2.4).
  TimeNs ready_at = 0;
  uint64_t generation = 0;
};

struct SimState {
  Simulator sim;
  const SimReplayConfig* config;
  const server::AuthServer* server;
  SimReplayResult* result;

  std::unordered_map<IpAddr, ClientConn, IpAddrHash> conns;
  std::unordered_map<IpAddr, uint64_t, IpAddrHash> client_load;
  // Per-source impairment streams, named like the real-socket engine's so
  // one scenario definition drives both runtimes.
  std::unordered_map<std::string, std::unique_ptr<fault::FaultStream>> faults;

  fault::FaultStream* fault_stream(const trace::TraceRecord& rec) {
    if (config->fault == nullptr) return nullptr;
    std::string name =
        (rec.transport == Transport::Udp ? "udp:" : "tcp:") +
        rec.src.addr.to_string();
    auto it = faults.find(name);
    if (it == faults.end()) {
      it = faults
               .emplace(name, std::make_unique<fault::FaultStream>(
                                  *config->fault, name))
               .first;
    }
    return it->second.get();
  }

  size_t established = 0;
  size_t established_tls = 0;
  size_t time_wait = 0;
  double busy_us_window = 0;        // CPU busy time in the current window
  uint64_t response_bytes_window = 0;
  TimeNs trace_start = 0;

  void add_cpu(double us) { busy_us_window += us; }

  void close_idle(const IpAddr& addr, uint64_t generation) {
    auto it = conns.find(addr);
    if (it == conns.end()) return;
    ClientConn& conn = it->second;
    if (!conn.open || conn.generation != generation) return;
    TimeNs deadline = conn.last_activity + config->idle_timeout;
    if (sim.now() < deadline) {
      // Activity refreshed since this check was scheduled; re-arm.
      uint64_t gen = conn.generation;
      IpAddr key = addr;
      sim.schedule_at(deadline, [this, key, gen] { close_idle(key, gen); });
      return;
    }
    conn.open = false;
    --established;
    if (conn.transport == Transport::Tls) --established_tls;
    ++result->connections_closed_idle;
    ++time_wait;
    sim.schedule_after(kTimeWaitDuration, [this] { --time_wait; });
  }
};

}  // namespace

Summary SimReplayResult::steady_memory_gb(size_t skip_samples) const {
  Sampler s;
  for (size_t i = std::min(skip_samples, samples.size()); i < samples.size(); ++i)
    s.add(static_cast<double>(samples[i].memory_bytes) / (1ull << 30));
  return s.summary();
}

Summary SimReplayResult::steady_cpu_percent(size_t skip_samples) const {
  Sampler s;
  for (size_t i = std::min(skip_samples, samples.size()); i < samples.size(); ++i)
    s.add(samples[i].cpu_fraction * 100.0);
  return s.summary();
}

SimReplayResult simulate_replay(const std::vector<TraceRecord>& trace,
                                const server::AuthServer& server,
                                const SimReplayConfig& config) {
  SimReplayResult result;
  if (trace.empty()) return result;

  SimState state;
  state.config = &config;
  state.server = &server;
  state.result = &result;
  state.trace_start = trace.front().timestamp;

  // Pre-compute per-client totals so the Figure 15b busy/non-busy split is
  // known when latencies are recorded.
  for (const auto& rec : trace) {
    if (rec.direction == Direction::Query) ++state.client_load[rec.src.addr];
  }

  // Query events: feed the trace incrementally (one scheduled event carries
  // the index of the next record) so millions of records don't all sit in
  // the heap at once.
  std::function<void(size_t)> process = [&](size_t i) {
    while (i < trace.size() && trace[i].direction != Direction::Query) ++i;
    if (i >= trace.size()) return;
    const TraceRecord& rec = trace[i];

    // Schedule the next record first: its event time is >= ours.
    if (i + 1 < trace.size()) {
      TimeNs next_t = trace[i + 1].timestamp - state.trace_start;
      state.sim.schedule_at(std::max(next_t, state.sim.now()),
                            [&process, i] { process(i + 1); });
    }

    ++result.queries;

    // Fault hook: same FaultSpec (and stream names) the real-socket engine
    // uses, decided in virtual time — bit-exact across runs.
    fault::Verdict verdict;
    fault::FaultStream* fs = state.fault_stream(rec);
    if (fs != nullptr) verdict = fs->next(state.sim.now());
    if (verdict.is_drop()) {
      ++result.queries_lost;  // link ate it before the server saw anything
      return;
    }

    TimeNs latency = 0;

    if (rec.transport == Transport::Udp) {
      latency = config.rtt + kServiceTime;
      state.add_cpu(config.cpu.query_cost_us(Transport::Udp));
    } else {
      ClientConn& conn = state.conns[rec.src.addr];
      TimeNs now = state.sim.now();
      bool reusable = conn.open && conn.transport == rec.transport &&
                      (now - conn.last_activity) <= config.idle_timeout;
      if (reusable) {
        // If the handshake is still in flight (burst follower), the query
        // waits for it before its own round trip.
        TimeNs start = std::max(now, conn.ready_at);
        latency = (start - now) + config.rtt + kServiceTime;
        ++result.handshakes_reused;
      } else {
        if (conn.open) {
          // Transport changed mid-trace for this client: retire the old
          // connection immediately (rare; mutated mixed traces).
          conn.open = false;
          --state.established;
          if (conn.transport == Transport::Tls) --state.established_tls;
          ++state.time_wait;
          state.sim.schedule_after(kTimeWaitDuration, [&state] { --state.time_wait; });
        }
        latency = (setup_rtts(rec.transport) + 1) * config.rtt + kServiceTime;
        state.add_cpu(config.cpu.handshake_cost_us(rec.transport));
        conn.open = true;
        conn.ready_at = now + setup_rtts(rec.transport) * config.rtt;
        conn.transport = rec.transport;
        ++conn.generation;
        ++result.connections_opened;
        ++state.established;
        if (rec.transport == Transport::Tls) ++state.established_tls;
        result.peak_established = std::max(result.peak_established, state.established);

        IpAddr key = rec.src.addr;
        uint64_t gen = conn.generation;
        state.sim.schedule_at(now + config.idle_timeout,
                              [&state, key, gen] { state.close_idle(key, gen); });
      }
      state.add_cpu(config.cpu.query_cost_us(rec.transport));
      conn.last_activity = now + latency;  // server sees the full exchange
    }

    latency += verdict.extra_delay;  // fault-layer delay/reorder hold-back

    // Answer through the real server engine for response accounting. A
    // corrupt verdict mangles the wire bytes first — the server then drops
    // what it cannot parse (answer_wire -> nullopt), or answers garbage,
    // exactly like the real path.
    size_t limit = rec.transport == Transport::Udp ? config.udp_limit : 0;
    const std::vector<uint8_t>* payload = &rec.dns_payload;
    std::vector<uint8_t> corrupted;
    if (verdict.action == fault::Action::Corrupt) {
      corrupted = rec.dns_payload;
      fs->corrupt(corrupted);
      payload = &corrupted;
    }
    auto reply = server.answer_wire(*payload, rec.src.addr, limit);
    if (reply.has_value()) {
      ++result.responses;
      state.response_bytes_window += reply->size();
      if (reply->size() > 2 && ((*reply)[2] & 0x02) != 0) ++result.truncated;
      if (verdict.action == fault::Action::Duplicate) {
        // The duplicate reaches the server too and is answered again.
        ++result.responses;
        state.response_bytes_window += reply->size();
        state.add_cpu(config.cpu.query_cost_us(rec.transport));
      }
    }

    double ms = ns_to_ms(latency);
    result.latency_all_ms.add(ms);
    if (state.client_load[rec.src.addr] < config.busy_threshold)
      result.latency_nonbusy_ms.add(ms);
  };

  state.sim.schedule_at(0, [&process] { process(0); });

  // Sampling events for the whole trace duration.
  TimeNs duration = trace.back().timestamp - state.trace_start;
  for (TimeNs t = config.sample_interval; t <= duration + config.sample_interval;
       t += config.sample_interval) {
    state.sim.schedule_at(t, [&state, &result, &config, t] {
      MetricsSample sample;
      sample.t = t;
      sample.established = state.established;
      sample.time_wait = state.time_wait;
      sample.memory_bytes = config.memory.total(
          state.established - state.established_tls, state.established_tls,
          state.time_wait);
      double window_core_us =
          static_cast<double>(config.sample_interval) / 1000.0 * config.cpu.cores;
      sample.cpu_fraction = state.busy_us_window / window_core_us;
      sample.response_bytes = state.response_bytes_window;
      state.busy_us_window = 0;
      state.response_bytes_window = 0;
      result.samples.push_back(sample);
    });
  }

  state.sim.run();
  for (const auto& [name, stream] : state.faults)
    result.impairments.merge(stream->counters());
  return result;
}

}  // namespace ldp::simnet
