// Protocol, memory and CPU cost models for the simulated testbed.
//
// Calibration: the constants reproduce the operating points the paper
// measured on its DETER hardware (48-core NSD server, B-Root-17a trace):
//   * memory — 2 GB for UDP-only service; ~15 GB with all-TCP at a 20 s
//     timeout holding ~60k established connections (≈ 216 KiB per
//     established connection: kernel socket buffers + NSD per-connection
//     state), TLS adding ~3 GB (≈ 50 KiB per connection of session state);
//     TIME_WAIT entries are a few hundred bytes of kernel tcb only
//     (Figures 13a/14a).
//   * CPU — medians of ~10% (97%-UDP original trace), ~5% (all-TCP) and
//     ~9.5% (all-TLS) over 48 cores; the paper attributes the UDP > TCP
//     inversion to NIC TCP offload, so the per-query costs encode it
//     (Figure 11). TLS handshakes add one-off asymmetric-crypto cost,
//     visible only at very short timeouts.
//   * latency — TCP costs one setup RTT before the query RTT; TLS 1.2 adds
//     two more handshake RTTs (Figure 15's 2-RTT TCP / 4-RTT TLS medians).
#pragma once

#include <cstdint>

#include "util/clock.hpp"
#include "util/transport.hpp"

namespace ldp::simnet {

/// Round trips spent on connection establishment before the first query
/// byte can leave the client (beyond the query/response round trip itself).
inline int setup_rtts(Transport t) {
  switch (t) {
    case Transport::Udp: return 0;
    case Transport::Tcp: return 1;  // SYN / SYN-ACK
    case Transport::Tls: return 3;  // TCP + ClientHello/ServerHello + Finished
  }
  return 0;
}

struct MemoryModel {
  uint64_t base_bytes = 2ull << 30;          ///< UDP-only server footprint
  uint64_t tcp_established_bytes = 216 << 10;  ///< per established connection
  uint64_t tls_extra_bytes = 50 << 10;       ///< extra per TLS connection
  uint64_t time_wait_bytes = 448;            ///< kernel tcb in TIME_WAIT

  uint64_t total(size_t established_tcp, size_t established_tls,
                 size_t time_wait) const {
    return base_bytes +
           (established_tcp + established_tls) * tcp_established_bytes +
           established_tls * tls_extra_bytes + time_wait * time_wait_bytes;
  }
};

struct CpuModel {
  int cores = 48;
  /// Per-query service cost by transport (µs of one core). UDP is costlier
  /// than TCP on the paper's hardware (NIC TCP offload); TLS adds
  /// symmetric-crypto per query.
  double udp_query_us = 126.0;
  double tcp_query_us = 58.0;
  double tls_query_us = 110.0;
  /// One-off connection costs (µs of one core).
  double tcp_handshake_us = 20.0;
  double tls_handshake_us = 450.0;  ///< asymmetric crypto

  double query_cost_us(Transport t) const {
    switch (t) {
      case Transport::Udp: return udp_query_us;
      case Transport::Tcp: return tcp_query_us;
      case Transport::Tls: return tls_query_us;
    }
    return udp_query_us;
  }
  double handshake_cost_us(Transport t) const {
    switch (t) {
      case Transport::Udp: return 0;
      case Transport::Tcp: return tcp_handshake_us;
      case Transport::Tls: return tcp_handshake_us + tls_handshake_us;
    }
    return 0;
  }
};

/// Server-side query service time (request parse + zone lookup + response
/// build) used for latency; small against RTTs.
inline constexpr TimeNs kServiceTime = 50 * kMicro;

/// Linux's fixed TIME_WAIT duration.
inline constexpr TimeNs kTimeWaitDuration = 60 * kSecond;

}  // namespace ldp::simnet
