#include "simnet/sim.hpp"

#include <cassert>

namespace ldp::simnet {

void Simulator::schedule_at(TimeNs t, Event fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Entry{t, seq_++, std::move(fn)});
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top is const; const_cast to move the closure out
    // before pop (safe: we pop immediately).
    Entry& top = const_cast<Entry&>(queue_.top());
    TimeNs t = top.t;
    Event fn = std::move(top.fn);
    queue_.pop();
    now_ = t;
    ++processed_;
    fn();
  }
}

void Simulator::run_until(TimeNs t) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().t <= t) {
    Entry& top = const_cast<Entry&>(queue_.top());
    TimeNs et = top.t;
    Event fn = std::move(top.fn);
    queue_.pop();
    now_ = et;
    ++processed_;
    fn();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace ldp::simnet
