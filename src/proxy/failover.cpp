#include "proxy/failover.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace ldp::proxy {

std::string FailoverStats::summary() const {
  std::ostringstream out;
  out << "probes " << probes << "  probe_failures " << probe_failures
      << "  failovers " << failovers << "  failbacks " << failbacks
      << "  forwarded_primary " << forwarded_primary << "  forwarded_secondary "
      << forwarded_secondary << "  buffered " << buffered << "  buffer_dropped "
      << buffer_dropped << "  drained " << drained;
  return out.str();
}

FailoverForwarder::FailoverForwarder(FailoverConfig config, ProbeFn probe,
                                     SendFn send)
    : config_(std::move(config)), probe_(std::move(probe)),
      send_(std::move(send)) {}

void FailoverForwarder::forward(Datagram&& pkt, TimeNs now) {
  tick(now);
  if (up_) {
    ++stats_.forwarded_primary;
    send_(config_.primary, std::move(pkt));
    return;
  }
  if (config_.secondary.has_value()) {
    ++stats_.forwarded_secondary;
    send_(*config_.secondary, std::move(pkt));
    return;
  }
  if (config_.buffer_capacity > 0 && buffer_.size() >= config_.buffer_capacity) {
    buffer_.pop_front();
    ++stats_.buffer_dropped;
  }
  buffer_.push_back(std::move(pkt));
  ++stats_.buffered;
}

void FailoverForwarder::tick(TimeNs now) {
  if (now >= next_probe_) probe_primary(now);
}

void FailoverForwarder::probe_primary(TimeNs now) {
  ++stats_.probes;
  bool ok = probe_(config_.primary, now);
  if (up_) {
    if (ok) {
      consecutive_failures_ = 0;
      next_probe_ = now + config_.probe_interval;
      return;
    }
    ++stats_.probe_failures;
    if (++consecutive_failures_ >= config_.fail_threshold) {
      up_ = false;
      ++stats_.failovers;
      backoff_ = config_.backoff_base;
      next_probe_ = now + backoff_;
    } else {
      // Suspect: re-probe at the normal cadence until the threshold trips,
      // so one blip doesn't trigger backoff.
      next_probe_ = now + config_.probe_interval;
    }
    return;
  }
  // Down: success drains and fails back, failure doubles the backoff.
  if (ok) {
    up_ = true;
    ++stats_.failbacks;
    consecutive_failures_ = 0;
    while (!buffer_.empty()) {
      Datagram pkt = std::move(buffer_.front());
      buffer_.pop_front();
      ++stats_.drained;
      send_(config_.primary, std::move(pkt));
    }
    next_probe_ = now + config_.probe_interval;
    return;
  }
  ++stats_.probe_failures;
  backoff_ = std::min(backoff_ * 2, config_.backoff_cap);
  next_probe_ = now + backoff_;
}

}  // namespace ldp::proxy
