// Server proxies (§2.4): the address-rewrite trick that lets one
// meta-DNS-server impersonate every authoritative server in a trace.
//
// Both proxies apply the same algebra to the packets they capture:
//     new src address = original destination address   (the "OQDA")
//     new dst address = the server at the other end
// so the meta server sees queries *from* the public address of the
// nameserver being asked (its split-horizon zone selector), and the
// recursive sees replies *from* that same public address (so its
// query/reply matching succeeds) — neither server knows any rewriting
// happened.
//
//   recursive proxy:   (Rec:ephem -> ns.pub:53)  =>  (ns.pub:ephem -> Meta:53)
//   authoritative prx: (Meta:53 -> ns.pub:ephem) =>  (ns.pub:53 -> Rec:ephem)
//
// The paper implements this over TUN interfaces with iptables port-based
// routing; here the same rewrite runs on an abstract Datagram (used by the
// in-process hierarchy emulation) and on raw IPv4/UDP packet bytes with
// checksum recomputation (what the TUN path would carry).
#pragma once

#include <vector>

#include "util/ip.hpp"
#include "util/transport.hpp"

namespace ldp::proxy {

/// An addressed DNS payload — the unit the proxies rewrite.
struct Datagram {
  Endpoint src;
  Endpoint dst;
  Transport transport = Transport::Udp;
  std::vector<uint8_t> payload;
};

class ServerProxy {
 public:
  /// Recursive proxies sit next to the recursive server and capture queries
  /// (dst port 53); authoritative proxies sit next to the meta server and
  /// capture responses (src port 53) — the iptables mangle rules of §2.4.
  enum class Role { Recursive, Authoritative };

  /// `peer` is the server at the other end: the meta server's address for a
  /// recursive proxy, the recursive server's address for an authoritative
  /// proxy. `dns_port` is 53 unless an experiment moves it.
  ServerProxy(Role role, IpAddr peer, uint16_t dns_port = 53)
      : role_(role), peer_(peer), dns_port_(dns_port) {}

  Role role() const { return role_; }

  /// Would this proxy's capture rule pick up the packet?
  bool captures(const Datagram& pkt) const;

  /// Apply the rewrite in place. Returns false (packet untouched) if the
  /// capture rule does not match — mirroring packets the TUN rules would
  /// never deliver to the proxy.
  bool rewrite(Datagram& pkt) const;

  uint64_t rewritten() const { return rewritten_; }

 private:
  Role role_;
  IpAddr peer_;
  uint16_t dns_port_;
  mutable uint64_t rewritten_ = 0;
};

/// Rewrite source/destination of a raw IPv4+UDP packet in place and fix the
/// IPv4 header and UDP checksums — the byte-level operation the TUN-based
/// proxy performs. Fails if the buffer is not a well-formed IPv4 UDP packet.
Result<void> rewrite_raw_ipv4_udp(std::vector<uint8_t>& packet, Ip4 new_src,
                                  Ip4 new_dst);

}  // namespace ldp::proxy
