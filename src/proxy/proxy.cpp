#include "proxy/proxy.hpp"

#include "trace/pcap.hpp"

namespace ldp::proxy {

bool ServerProxy::captures(const Datagram& pkt) const {
  switch (role_) {
    case Role::Recursive:
      return pkt.dst.port == dns_port_;  // queries leaving the recursive
    case Role::Authoritative:
      return pkt.src.port == dns_port_;  // responses leaving the meta server
  }
  return false;
}

bool ServerProxy::rewrite(Datagram& pkt) const {
  if (!captures(pkt)) return false;
  // src address <- original dst address (ports untouched); dst <- peer.
  pkt.src.addr = pkt.dst.addr;
  pkt.dst.addr = peer_;
  ++rewritten_;
  return true;
}

Result<void> rewrite_raw_ipv4_udp(std::vector<uint8_t>& packet, Ip4 new_src,
                                  Ip4 new_dst) {
  if (packet.size() < 28) return Err("packet shorter than IPv4+UDP headers");
  if ((packet[0] >> 4) != 4) return Err("not an IPv4 packet");
  size_t ihl = static_cast<size_t>(packet[0] & 0xf) * 4;
  if (ihl < 20 || packet.size() < ihl + 8) return Err("bad IPv4 header length");
  if (packet[9] != 17) return Err("not a UDP packet");

  auto put_u32 = [&packet](size_t off, uint32_t v) {
    packet[off] = static_cast<uint8_t>(v >> 24);
    packet[off + 1] = static_cast<uint8_t>(v >> 16);
    packet[off + 2] = static_cast<uint8_t>(v >> 8);
    packet[off + 3] = static_cast<uint8_t>(v);
  };
  put_u32(12, new_src.value());
  put_u32(16, new_dst.value());

  // Recompute the IPv4 header checksum.
  packet[10] = packet[11] = 0;
  uint16_t ip_sum =
      trace::inet_checksum(std::span<const uint8_t>(packet.data(), ihl));
  packet[10] = static_cast<uint8_t>(ip_sum >> 8);
  packet[11] = static_cast<uint8_t>(ip_sum);

  // Recompute the UDP checksum over the pseudo-header (addresses changed).
  size_t udp_off = ihl;
  size_t udp_len = packet.size() - udp_off;
  packet[udp_off + 6] = packet[udp_off + 7] = 0;
  uint16_t udp_sum = trace::udp4_checksum(
      new_src, new_dst, std::span<const uint8_t>(packet.data() + udp_off, udp_len));
  packet[udp_off + 6] = static_cast<uint8_t>(udp_sum >> 8);
  packet[udp_off + 7] = static_cast<uint8_t>(udp_sum);
  return Ok();
}

}  // namespace ldp::proxy
