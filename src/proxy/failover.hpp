// Proxy backend health-checking and failover. In the paper's deployment a
// proxy forwards everything to one meta server; when that backend dies the
// proxy silently blackholes the trace. FailoverForwarder puts a health
// state machine in front of the send path:
//
//        probe ok                      probe ok (failback, drain buffer)
//   ┌──────────────┐             ┌───────────────────────────────┐
//   ▼              │             │                               │
//  UP ── fail_threshold consecutive probe failures ──▶ DOWN ─────┘
//                                                      │  probe fail:
//                                                      └─ backoff ×2 (capped)
//
// While UP, datagrams go to the primary and the primary is probed every
// probe_interval. While DOWN, datagrams go to the secondary backend if one
// is configured, else into a bounded drop-oldest buffer; the primary is
// re-probed on an exponential backoff. On recovery the buffer drains to the
// primary in arrival order.
//
// The forwarder is deliberately single-threaded (callers serialize, e.g.
// the pipeline reader thread or an EventLoop) and takes `now` explicitly,
// so tests drive it on a synthetic clock and probe outcomes can come from a
// seeded fault stream — every transition is then a deterministic function
// of (seed, schedule), which is what lets the regression tests pin exact
// counter values.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "proxy/proxy.hpp"
#include "util/clock.hpp"

namespace ldp::proxy {

struct FailoverConfig {
  Endpoint primary;
  /// Fallback backend while the primary is down; nullopt = buffer instead.
  std::optional<Endpoint> secondary;
  /// Probe cadence while the primary is up.
  TimeNs probe_interval = kSecond;
  /// Consecutive probe failures before the primary is marked down.
  size_t fail_threshold = 3;
  /// First re-probe delay after marking down; doubles per failure.
  TimeNs backoff_base = kSecond;
  /// Ceiling for the doubled backoff.
  TimeNs backoff_cap = 30 * kSecond;
  /// Datagrams held while down with no secondary (drop-oldest beyond this).
  size_t buffer_capacity = 256;
};

struct FailoverStats {
  uint64_t probes = 0;
  uint64_t probe_failures = 0;
  uint64_t failovers = 0;   ///< up → down transitions
  uint64_t failbacks = 0;   ///< down → up transitions
  uint64_t forwarded_primary = 0;
  uint64_t forwarded_secondary = 0;
  uint64_t buffered = 0;        ///< datagrams parked while down
  uint64_t buffer_dropped = 0;  ///< oldest datagrams evicted from the buffer
  uint64_t drained = 0;         ///< buffered datagrams replayed on failback

  bool operator==(const FailoverStats&) const = default;
  /// One-line counter report for tools and tests.
  std::string summary() const;
};

class FailoverForwarder {
 public:
  /// Health probe: true = backend answered. Takes `now` so deterministic
  /// test probes can be a function of the synthetic clock / a fault seed.
  using ProbeFn = std::function<bool(const Endpoint& backend, TimeNs now)>;
  /// Delivery: called with the chosen backend for each forwarded datagram.
  using SendFn = std::function<void(const Endpoint& backend, Datagram&& pkt)>;

  FailoverForwarder(FailoverConfig config, ProbeFn probe, SendFn send);

  /// Forward one datagram according to the current health state.
  void forward(Datagram&& pkt, TimeNs now);

  /// Run the probe schedule. Call periodically (a sweep timer, or per
  /// synthetic-clock step in tests); probing happens only when due, so
  /// calling it more often than probe_interval is free.
  void tick(TimeNs now);

  bool primary_up() const { return up_; }
  size_t buffered_now() const { return buffer_.size(); }
  const FailoverStats& stats() const { return stats_; }

 private:
  void probe_primary(TimeNs now);

  FailoverConfig config_;
  ProbeFn probe_;
  SendFn send_;
  FailoverStats stats_;
  std::deque<Datagram> buffer_;
  bool up_ = true;
  size_t consecutive_failures_ = 0;
  TimeNs backoff_ = 0;
  /// Next probe due at this time; 0 = probe immediately on first tick.
  TimeNs next_probe_ = 0;
};

}  // namespace ldp::proxy
