#include "proxy/pipeline.hpp"

#include "util/clock.hpp"

namespace ldp::proxy {

ProxyPipeline::ProxyPipeline(ServerProxy proxy, SendFn send, size_t workers,
                             size_t queue_capacity)
    : proxy_(proxy), send_(std::move(send)), queue_(queue_capacity) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ProxyPipeline::~ProxyPipeline() { shutdown(); }

void ProxyPipeline::submit(Datagram pkt) {
  if (fault_ != nullptr) {
    fault::Verdict verdict = fault_->next(mono_now_ns());
    if (verdict.is_drop()) return;  // link ate it before capture
    if (verdict.action == fault::Action::Corrupt) fault_->corrupt(pkt.payload);
    if (verdict.action == fault::Action::Duplicate) queue_.push(Datagram(pkt));
  }
  queue_.push(std::move(pkt));
}

void ProxyPipeline::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ProxyPipeline::worker_loop() {
  while (true) {
    auto pkt = queue_.pop();
    if (!pkt.has_value()) return;  // closed and drained
    if (proxy_.rewrite(*pkt)) {
      forwarded_.fetch_add(1, std::memory_order_relaxed);
      send_(std::move(*pkt));
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace ldp::proxy
