// Threaded proxy pipeline (§3 "Server Proxy"): a single reader enqueues
// captured packets; multiple worker threads pull from a thread-safe queue,
// apply the proxy rewrite, and hand the packet to a send callback. This
// mirrors the paper's TUN-reader + worker-pool structure.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "proxy/proxy.hpp"
#include "util/queue.hpp"

namespace ldp::proxy {

using ldp::BoundedQueue;

class ProxyPipeline {
 public:
  using SendFn = std::function<void(Datagram&&)>;

  /// `send` is called from worker threads (must be thread-safe) with every
  /// successfully rewritten packet; non-matching packets are dropped and
  /// counted, exactly like packets the TUN routing never delivers.
  ProxyPipeline(ServerProxy proxy, SendFn send, size_t workers = 2,
                size_t queue_capacity = 1024);
  ~ProxyPipeline();

  ProxyPipeline(const ProxyPipeline&) = delete;
  ProxyPipeline& operator=(const ProxyPipeline&) = delete;

  /// Reader-side entry: blocks when workers are behind.
  void submit(Datagram pkt);

  /// Impair the capture path: packets pass through `stream` before they are
  /// enqueued (drops never reach a worker; duplicates are enqueued twice;
  /// corrupt verdicts mangle the payload). Called from the reader thread
  /// only, so the stream's draw sequence — and therefore its counters — is
  /// deterministic in packet order. Timing impairments (delay/jitter/
  /// reorder) are counted but not applied: the pipeline has no clock, and
  /// queue handoff already reorders. The stream must outlive the pipeline;
  /// nullptr restores the clean path.
  void set_fault(fault::FaultStream* stream) { fault_ = stream; }

  /// Stop accepting, drain, join workers.
  void shutdown();

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t forwarded() const { return forwarded_.load(std::memory_order_relaxed); }
  /// Fault-layer accounting for the capture path (zeroes when unimpaired).
  fault::ImpairmentCounters impairments() const {
    return fault_ != nullptr ? fault_->counters() : fault::ImpairmentCounters{};
  }

 private:
  void worker_loop();

  ServerProxy proxy_;
  SendFn send_;
  fault::FaultStream* fault_ = nullptr;
  BoundedQueue<Datagram> queue_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> forwarded_{0};
  bool stopped_ = false;
};

}  // namespace ldp::proxy
