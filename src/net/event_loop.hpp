// Event-driven I/O core (§3: "Processes use event-driven programming to
// minimize state and scale to a large number of concurrent TCP
// connections"). One epoll instance plus a binary-heap timer queue; all
// callbacks run on the loop thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/clock.hpp"
#include "util/result.hpp"

namespace ldp::net {

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Readiness interest for a registered fd.
struct Interest {
  bool readable = false;
  bool writable = false;
};

class EventLoop {
 public:
  using IoCallback = std::function<void(bool readable, bool writable)>;
  using TimerCallback = std::function<void()>;
  using TimerId = uint64_t;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register an fd; the callback fires with the ready directions. The fd
  /// must stay valid until remove_fd.
  Result<void> add_fd(int fd, Interest interest, IoCallback cb);
  Result<void> modify_fd(int fd, Interest interest);
  void remove_fd(int fd);

  /// One-shot timer at an absolute monotonic deadline (mono_now_ns clock).
  TimerId add_timer_at(TimeNs deadline, TimerCallback cb);
  /// One-shot timer after a relative delay.
  TimerId add_timer_after(TimeNs delay, TimerCallback cb) {
    return add_timer_at(mono_now_ns() + delay, std::move(cb));
  }
  void cancel_timer(TimerId id);

  /// Register a flush hook: runs once per poll round, after due timers and
  /// before the loop blocks in epoll_wait. This is the drain point for work
  /// staged during the previous round's callbacks and timers — the batched
  /// UDP senders stage datagrams as events arrive and flush them here, so a
  /// staged send can never sit across a blocking wait. Hooks cannot be
  /// removed; register them for the loop's lifetime.
  void add_flush_hook(std::function<void()> hook);

  /// Run callbacks until stop() or until nothing is registered.
  void run();
  /// Process at most one poll round (used by tests and hybrid drivers).
  void poll_once(TimeNs max_wait);

  /// Stop the loop. Thread-safe: callable from another thread to shut down
  /// a loop blocked in epoll_wait (used by bench/test server threads).
  /// Sticky: a stop that races ahead of run() still takes effect, and a
  /// stopped loop stays stopped (loops are single-use, never restarted).
  void stop();

  size_t fd_count() const { return callbacks_.size(); }
  size_t timer_count() const { return timer_callbacks_.size(); }

 private:
  struct Timer {
    TimeNs deadline;
    TimerId id;
    bool operator>(const Timer& o) const {
      if (deadline != o.deadline) return deadline > o.deadline;
      return id > o.id;  // FIFO among equal deadlines
    }
  };

  void fire_due_timers();
  void arm_timerfd();

  Fd epoll_;
  Fd timer_fd_;
  Fd wake_fd_;  // cross-thread stop signal
  std::unordered_map<int, IoCallback> callbacks_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  // Cancellation removes the callback entry; the heap node is discarded
  // lazily when it surfaces.
  std::unordered_map<TimerId, TimerCallback> timer_callbacks_;
  std::vector<std::function<void()>> flush_hooks_;
  TimerId next_timer_id_ = 1;
  std::atomic<bool> stopped_{false};
};

}  // namespace ldp::net
