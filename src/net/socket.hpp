// Nonblocking socket wrappers: UDP datagram sockets and TCP streams with
// DNS 2-byte length framing (RFC 1035 §4.2.2). TLS is emulated at this
// layer as framed TCP with a configurable handshake delay — the replay
// engine and server need TLS's connection *behaviour* (extra round trips,
// session state), not actual cryptography (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "net/event_loop.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"

namespace ldp::net {

/// Process-wide datagram syscall accounting (relaxed atomics, negligible
/// hot-path cost): how many kernel crossings the UDP path pays and how many
/// datagrams they moved. The fig9 bench derives its syscalls/query metric
/// from deltas of this, which is the number the batched hot path exists to
/// push below 1.
struct IoCounters {
  uint64_t sendto_calls = 0;
  uint64_t recvfrom_calls = 0;
  uint64_t sendmmsg_calls = 0;
  uint64_t recvmmsg_calls = 0;
  uint64_t datagrams_sent = 0;
  uint64_t datagrams_received = 0;

  uint64_t syscalls() const {
    return sendto_calls + recvfrom_calls + sendmmsg_calls + recvmmsg_calls;
  }
  uint64_t datagrams() const { return datagrams_sent + datagrams_received; }

  /// Sum another snapshot into this one (the per-shard merge-after-join
  /// idiom: each shard thread snapshots its own counters before exiting,
  /// the owner merges after the joins — no locks, no atomics needed).
  void merge(const IoCounters& o) {
    sendto_calls += o.sendto_calls;
    recvfrom_calls += o.recvfrom_calls;
    sendmmsg_calls += o.sendmmsg_calls;
    recvmmsg_calls += o.recvmmsg_calls;
    datagrams_sent += o.datagrams_sent;
    datagrams_received += o.datagrams_received;
  }
};

/// Snapshot of the process-wide counters (monotonic since process start).
IoCounters io_counters();

/// Snapshot of the *calling thread's* counters (monotonic since thread
/// start; plain thread-local increments, so reading another thread's tally
/// is impossible by construction). A shard thread calls this right before
/// it exits and stashes the result where the joiner can merge it.
IoCounters thread_io_counters();

/// Convert between our Endpoint and sockaddr storage. The socket layer is
/// IPv4-only (the testbed runs on loopback); a non-IPv4 endpoint is an
/// addressing error, never silently mapped to 0.0.0.0.
struct SockAddr {
  uint32_t addr_host_order = 0;
  uint16_t port = 0;

  static Result<SockAddr> from_endpoint(const Endpoint& ep);
  Endpoint to_endpoint() const;
};

class UdpSocket {
 public:
  /// Bind to addr:port (port 0 picks an ephemeral port). With `reuse_port`
  /// the socket joins (or starts) an SO_REUSEPORT group: N sockets share
  /// the port and the kernel spreads inbound datagrams across them by
  /// flow hash — the per-core shard fan-out (every member must set the
  /// flag, and the first bind fixes the group's credentials).
  static Result<UdpSocket> bind(const Endpoint& local, bool reuse_port = false);
  /// Unbound socket for client use (bound implicitly on first send).
  static Result<UdpSocket> create();

  int fd() const { return fd_.get(); }
  Result<Endpoint> local_endpoint() const;

  /// Nonblocking send; returns false if the kernel buffer is full (caller
  /// retries on writable).
  Result<bool> send_to(const Endpoint& dst, std::span<const uint8_t> payload);

  struct Datagram {
    Endpoint from;
    std::vector<uint8_t> payload;
  };
  /// Nonblocking receive; nullopt when the socket would block.
  Result<std::optional<Datagram>> recv();

  // --- batched zero-copy path (sendmmsg/recvmmsg) --------------------------

  /// Datagrams per mmsg syscall. Send batches larger than this are chunked
  /// internally; recv_batch returns at most this many views per call.
  static constexpr size_t kBatchSize = 16;
  /// Per-slot capacity of the recv arena (max UDP payload).
  static constexpr size_t kRecvSlotBytes = 65536;

  struct OutDatagram {
    Endpoint dst;
    std::span<const uint8_t> payload;  ///< borrowed until the send call returns
  };

  /// Send many datagrams with sendmmsg. Returns how many the kernel
  /// accepted — always a *prefix* of `dgs`. A full buffer (EAGAIN/ENOBUFS)
  /// just shortens the prefix and is not an error; the caller retries the
  /// tail later, exactly like a false return from send_to. A hard error on
  /// the very first unsent datagram is returned as an Error; a hard error
  /// after partial progress reports the progress (retrying the tail will
  /// then surface the error with zero progress).
  Result<size_t> send_batch(std::span<const OutDatagram> dgs);

  struct RecvView {
    Endpoint from;
    std::span<const uint8_t> payload;  ///< view into the socket's recv arena
  };

  /// Receive up to kBatchSize datagrams in one recvmmsg into a reusable
  /// per-socket arena — no per-datagram allocation or copy. The returned
  /// views stay valid until the next recv_batch() call on this socket. An
  /// empty span means the socket would block.
  Result<std::span<const RecvView>> recv_batch();

 private:
  explicit UdpSocket(Fd fd) : fd_(std::move(fd)) {}
  Fd fd_;
  // recv_batch arena, allocated lazily on first use (~1 MiB) and reused for
  // the socket's lifetime. The view array is rebuilt each call.
  std::vector<uint8_t> recv_arena_;
  std::vector<RecvView> recv_views_;
};

/// A connected TCP stream carrying length-framed DNS messages.
class TcpStream {
 public:
  /// Begin a nonblocking connect; completion is signalled by writability.
  static Result<TcpStream> connect(const Endpoint& remote);
  /// Wrap an accepted fd.
  static TcpStream from_accepted(Fd fd, Endpoint peer);

  int fd() const { return fd_.get(); }
  const Endpoint& peer() const { return peer_; }

  /// Queue one DNS message (framing added) and try to flush. Returns the
  /// number of bytes still pending after the flush attempt.
  Result<size_t> send_message(std::span<const uint8_t> dns_payload);

  /// Flush pending output; returns bytes still pending. Call on writable.
  Result<size_t> flush();

  /// Pull bytes from the socket into the reassembly buffer and extract any
  /// complete DNS messages. Returns messages; sets `closed` when the peer
  /// shut down. Call on readable.
  Result<std::vector<std::vector<uint8_t>>> read_messages(bool& closed);

  size_t pending_bytes() const { return out_.size(); }
  /// Bytes of incomplete inbound frame(s) held for reassembly — the buffer
  /// a slow or hostile client grows; servers bound it (LimitsConfig).
  size_t partial_bytes() const { return in_.size(); }
  /// Estimated user-space buffer footprint (memory-model input).
  size_t buffer_footprint() const { return out_.size() + in_.size(); }

  /// Disable Nagle (§5.2.1 optimizes the client this way).
  Result<void> set_nodelay(bool on);

 private:
  TcpStream(Fd fd, Endpoint peer) : fd_(std::move(fd)), peer_(peer) {}
  Fd fd_;
  Endpoint peer_;
  std::vector<uint8_t> out_;  // unsent bytes (already framed)
  std::vector<uint8_t> in_;   // partial inbound frame(s)
};

// --- blocking control-channel primitives -----------------------------------
//
// The distributed-replay control channel (src/replay/dist/) runs over plain
// TCP but outside the event loop: frames are small, ordering matters, and the
// supervising side must never be killed by a worker that died mid-write.
// These helpers are the only sanctioned blocking socket paths in the tree —
// every one retries EINTR and writes with MSG_NOSIGNAL so a dead peer
// surfaces as an EPIPE Error, never a SIGPIPE.

/// Write the whole buffer, blocking as needed (poll()s on EAGAIN so it also
/// works on nonblocking fds). EPIPE/ECONNRESET come back as Errors with
/// sys_errno set.
Result<void> write_full(int fd, std::span<const uint8_t> buf);

/// Read exactly buf.size() bytes, blocking as needed. Returns false on a
/// clean EOF before the first byte (peer closed at a message boundary);
/// EOF mid-buffer is an error (truncated frame).
Result<bool> read_full(int fd, std::span<uint8_t> buf);

/// Blocking TCP connect with SO_CLOEXEC, retrying ECONNREFUSED until the
/// deadline — a worker process may race the controller's listen(). The
/// returned fd is in blocking mode.
Result<Fd> tcp_connect_blocking(const Endpoint& remote, TimeNs timeout);

class TcpListener {
 public:
  /// With `reuse_port`, N listeners share the port in an SO_REUSEPORT
  /// group and the kernel load-balances incoming connections across their
  /// accept queues (same sharding contract as UdpSocket::bind).
  static Result<TcpListener> listen(const Endpoint& local, int backlog = 512,
                                    bool reuse_port = false);

  int fd() const { return fd_.get(); }
  Result<Endpoint> local_endpoint() const;

  /// Accept one connection; nullopt when none is pending.
  Result<std::optional<TcpStream>> accept();

 private:
  explicit TcpListener(Fd fd) : fd_(std::move(fd)) {}
  Fd fd_;
};

}  // namespace ldp::net
