// Nonblocking socket wrappers: UDP datagram sockets and TCP streams with
// DNS 2-byte length framing (RFC 1035 §4.2.2). TLS is emulated at this
// layer as framed TCP with a configurable handshake delay — the replay
// engine and server need TLS's connection *behaviour* (extra round trips,
// session state), not actual cryptography (see DESIGN.md substitutions).
#pragma once

#include <deque>
#include <optional>

#include "net/event_loop.hpp"
#include "util/bytes.hpp"
#include "util/ip.hpp"

namespace ldp::net {

/// Convert between our Endpoint and sockaddr storage (IPv4 only on the
/// wire here; the testbed runs on loopback).
struct SockAddr {
  uint32_t addr_host_order = 0;
  uint16_t port = 0;

  static SockAddr from_endpoint(const Endpoint& ep);
  Endpoint to_endpoint() const;
};

class UdpSocket {
 public:
  /// Bind to addr:port (port 0 picks an ephemeral port).
  static Result<UdpSocket> bind(const Endpoint& local);
  /// Unbound socket for client use (bound implicitly on first send).
  static Result<UdpSocket> create();

  int fd() const { return fd_.get(); }
  Result<Endpoint> local_endpoint() const;

  /// Nonblocking send; returns false if the kernel buffer is full (caller
  /// retries on writable).
  Result<bool> send_to(const Endpoint& dst, std::span<const uint8_t> payload);

  struct Datagram {
    Endpoint from;
    std::vector<uint8_t> payload;
  };
  /// Nonblocking receive; nullopt when the socket would block.
  Result<std::optional<Datagram>> recv();

 private:
  explicit UdpSocket(Fd fd) : fd_(std::move(fd)) {}
  Fd fd_;
};

/// A connected TCP stream carrying length-framed DNS messages.
class TcpStream {
 public:
  /// Begin a nonblocking connect; completion is signalled by writability.
  static Result<TcpStream> connect(const Endpoint& remote);
  /// Wrap an accepted fd.
  static TcpStream from_accepted(Fd fd, Endpoint peer);

  int fd() const { return fd_.get(); }
  const Endpoint& peer() const { return peer_; }

  /// Queue one DNS message (framing added) and try to flush. Returns the
  /// number of bytes still pending after the flush attempt.
  Result<size_t> send_message(std::span<const uint8_t> dns_payload);

  /// Flush pending output; returns bytes still pending. Call on writable.
  Result<size_t> flush();

  /// Pull bytes from the socket into the reassembly buffer and extract any
  /// complete DNS messages. Returns messages; sets `closed` when the peer
  /// shut down. Call on readable.
  Result<std::vector<std::vector<uint8_t>>> read_messages(bool& closed);

  size_t pending_bytes() const { return out_.size(); }
  /// Bytes of incomplete inbound frame(s) held for reassembly — the buffer
  /// a slow or hostile client grows; servers bound it (LimitsConfig).
  size_t partial_bytes() const { return in_.size(); }
  /// Estimated user-space buffer footprint (memory-model input).
  size_t buffer_footprint() const { return out_.size() + in_.size(); }

  /// Disable Nagle (§5.2.1 optimizes the client this way).
  Result<void> set_nodelay(bool on);

 private:
  TcpStream(Fd fd, Endpoint peer) : fd_(std::move(fd)), peer_(peer) {}
  Fd fd_;
  Endpoint peer_;
  std::vector<uint8_t> out_;  // unsent bytes (already framed)
  std::vector<uint8_t> in_;   // partial inbound frame(s)
};

class TcpListener {
 public:
  static Result<TcpListener> listen(const Endpoint& local, int backlog = 512);

  int fd() const { return fd_.get(); }
  Result<Endpoint> local_endpoint() const;

  /// Accept one connection; nullopt when none is pending.
  Result<std::optional<TcpStream>> accept();

 private:
  explicit TcpListener(Fd fd) : fd_(std::move(fd)) {}
  Fd fd_;
};

}  // namespace ldp::net
