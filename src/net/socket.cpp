#include "net/socket.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ldp::net {

namespace {

// Surface the failing syscall with its errno preserved in Error::sys_errno,
// so upper layers (the replay engine's connection-loss handling) can react
// to the condition rather than the message text.
Error sys_error(const char* op) {
  int err = errno;
  return Error{std::string(op) + ": " + std::strerror(err), err};
}

Result<Fd> make_socket(int type) {
  int fd = ::socket(AF_INET, type | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return sys_error("socket");
  return Fd(fd);
}

sockaddr_in to_sockaddr(const Endpoint& ep) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(ep.port);
  sa.sin_addr.s_addr = htonl(ep.addr.is_v4() ? ep.addr.v4().value() : 0);
  return sa;
}

Endpoint from_sockaddr(const sockaddr_in& sa) {
  return Endpoint{IpAddr{Ip4{ntohl(sa.sin_addr.s_addr)}}, ntohs(sa.sin_port)};
}

Result<Endpoint> local_of(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0)
    return sys_error("getsockname");
  return from_sockaddr(sa);
}

}  // namespace

SockAddr SockAddr::from_endpoint(const Endpoint& ep) {
  return SockAddr{ep.addr.is_v4() ? ep.addr.v4().value() : 0, ep.port};
}

Endpoint SockAddr::to_endpoint() const {
  return Endpoint{IpAddr{Ip4{addr_host_order}}, port};
}

Result<UdpSocket> UdpSocket::bind(const Endpoint& local) {
  Fd fd = LDP_TRY(make_socket(SOCK_DGRAM));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = to_sockaddr(local);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0)
    return sys_error("bind");
  return UdpSocket(std::move(fd));
}

Result<UdpSocket> UdpSocket::create() {
  Fd fd = LDP_TRY(make_socket(SOCK_DGRAM));
  return UdpSocket(std::move(fd));
}

Result<Endpoint> UdpSocket::local_endpoint() const { return local_of(fd_.get()); }

Result<bool> UdpSocket::send_to(const Endpoint& dst, std::span<const uint8_t> payload) {
  sockaddr_in sa = to_sockaddr(dst);
  ssize_t n = ::sendto(fd_.get(), payload.data(), payload.size(), 0,
                       reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) return false;
    return sys_error("sendto");
  }
  return true;
}

Result<std::optional<UdpSocket::Datagram>> UdpSocket::recv() {
  uint8_t buf[65536];
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  ssize_t n = ::recvfrom(fd_.get(), buf, sizeof(buf), 0,
                         reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::optional<Datagram>{};
    return sys_error("recvfrom");
  }
  Datagram dg;
  dg.from = from_sockaddr(sa);
  dg.payload.assign(buf, buf + n);
  return std::optional<Datagram>{std::move(dg)};
}

Result<TcpStream> TcpStream::connect(const Endpoint& remote) {
  Fd fd = LDP_TRY(make_socket(SOCK_STREAM));
  sockaddr_in sa = to_sockaddr(remote);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 &&
      errno != EINPROGRESS)
    return sys_error("connect");
  return TcpStream(std::move(fd), remote);
}

TcpStream TcpStream::from_accepted(Fd fd, Endpoint peer) {
  return TcpStream(std::move(fd), peer);
}

Result<size_t> TcpStream::send_message(std::span<const uint8_t> dns_payload) {
  out_.push_back(static_cast<uint8_t>(dns_payload.size() >> 8));
  out_.push_back(static_cast<uint8_t>(dns_payload.size()));
  out_.insert(out_.end(), dns_payload.begin(), dns_payload.end());
  return flush();
}

Result<size_t> TcpStream::flush() {
  while (!out_.empty()) {
    ssize_t n = ::send(fd_.get(), out_.data(), out_.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return out_.size();
      return sys_error("send");
    }
    out_.erase(out_.begin(), out_.begin() + n);
  }
  return size_t{0};
}

Result<std::vector<std::vector<uint8_t>>> TcpStream::read_messages(bool& closed) {
  closed = false;
  std::vector<std::vector<uint8_t>> messages;
  uint8_t buf[65536];
  while (true) {
    ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return sys_error("recv");
    }
    if (n == 0) {
      closed = true;
      break;
    }
    in_.insert(in_.end(), buf, buf + n);
  }
  // Extract complete frames.
  size_t pos = 0;
  while (in_.size() - pos >= 2) {
    size_t frame = static_cast<size_t>(in_[pos]) << 8 | in_[pos + 1];
    if (in_.size() - pos - 2 < frame) break;
    messages.emplace_back(in_.begin() + static_cast<long>(pos + 2),
                          in_.begin() + static_cast<long>(pos + 2 + frame));
    pos += 2 + frame;
  }
  in_.erase(in_.begin(), in_.begin() + static_cast<long>(pos));
  return messages;
}

Result<void> TcpStream::set_nodelay(bool on) {
  int v = on ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) != 0)
    return sys_error("TCP_NODELAY");
  return Ok();
}

Result<TcpListener> TcpListener::listen(const Endpoint& local, int backlog) {
  Fd fd = LDP_TRY(make_socket(SOCK_STREAM));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = to_sockaddr(local);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0)
    return sys_error("bind");
  if (::listen(fd.get(), backlog) != 0)
    return sys_error("listen");
  return TcpListener(std::move(fd));
}

Result<Endpoint> TcpListener::local_endpoint() const { return local_of(fd_.get()); }

Result<std::optional<TcpStream>> TcpListener::accept() {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  int fd = ::accept4(fd_.get(), reinterpret_cast<sockaddr*>(&sa), &len,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::optional<TcpStream>{};
    return sys_error("accept");
  }
  return std::optional<TcpStream>{TcpStream::from_accepted(Fd(fd), from_sockaddr(sa))};
}

}  // namespace ldp::net
