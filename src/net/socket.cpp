#include "net/socket.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

namespace ldp::net {

namespace {

// Surface the failing syscall with its errno preserved in Error::sys_errno,
// so upper layers (the replay engine's connection-loss handling) can react
// to the condition rather than the message text.
Error sys_error(const char* op) {
  int err = errno;
  return Error{std::string(op) + ": " + std::strerror(err), err};
}

Result<Fd> make_socket(int type) {
  int fd = ::socket(AF_INET, type | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return sys_error("socket");
  return Fd(fd);
}

// Shared address-reuse setup for both bind paths (UDP sockets and TCP
// listeners), so the two cannot drift: SO_REUSEADDR always (fast rebinds
// after a restart), SO_REUSEPORT on request (N sockets sharing one port,
// kernel-load-balanced — the shard fan-out).
Result<void> set_reuse(int fd, bool reuse_port) {
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0)
    return sys_error("setsockopt(SO_REUSEADDR)");
  if (reuse_port &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0)
    return sys_error("setsockopt(SO_REUSEPORT)");
  return Ok();
}

// Process-wide syscall/datagram tallies behind io_counters(). Relaxed:
// these are statistics, not synchronization.
struct AtomicIoCounters {
  std::atomic<uint64_t> sendto_calls{0};
  std::atomic<uint64_t> recvfrom_calls{0};
  std::atomic<uint64_t> sendmmsg_calls{0};
  std::atomic<uint64_t> recvmmsg_calls{0};
  std::atomic<uint64_t> datagrams_sent{0};
  std::atomic<uint64_t> datagrams_received{0};
};
AtomicIoCounters g_io;

// Per-thread tallies behind thread_io_counters(): plain increments next to
// every g_io bump. A shard thread's snapshot is exact because all I/O for
// its sockets happens on its event-loop thread.
thread_local IoCounters t_io;

Result<sockaddr_in> to_sockaddr(const Endpoint& ep) {
  if (!ep.addr.is_v4())
    return Err("non-IPv4 endpoint on an IPv4-only socket path");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(ep.port);
  sa.sin_addr.s_addr = htonl(ep.addr.v4().value());
  return sa;
}

Endpoint from_sockaddr(const sockaddr_in& sa) {
  return Endpoint{IpAddr{Ip4{ntohl(sa.sin_addr.s_addr)}}, ntohs(sa.sin_port)};
}

Result<Endpoint> local_of(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0)
    return sys_error("getsockname");
  return from_sockaddr(sa);
}

}  // namespace

IoCounters io_counters() {
  IoCounters out;
  out.sendto_calls = g_io.sendto_calls.load(std::memory_order_relaxed);
  out.recvfrom_calls = g_io.recvfrom_calls.load(std::memory_order_relaxed);
  out.sendmmsg_calls = g_io.sendmmsg_calls.load(std::memory_order_relaxed);
  out.recvmmsg_calls = g_io.recvmmsg_calls.load(std::memory_order_relaxed);
  out.datagrams_sent = g_io.datagrams_sent.load(std::memory_order_relaxed);
  out.datagrams_received = g_io.datagrams_received.load(std::memory_order_relaxed);
  return out;
}

IoCounters thread_io_counters() { return t_io; }

Result<SockAddr> SockAddr::from_endpoint(const Endpoint& ep) {
  if (!ep.addr.is_v4())
    return Err("non-IPv4 endpoint on an IPv4-only socket path");
  return SockAddr{ep.addr.v4().value(), ep.port};
}

Endpoint SockAddr::to_endpoint() const {
  return Endpoint{IpAddr{Ip4{addr_host_order}}, port};
}

Result<UdpSocket> UdpSocket::bind(const Endpoint& local, bool reuse_port) {
  Fd fd = LDP_TRY(make_socket(SOCK_DGRAM));
  LDP_TRY_VOID(set_reuse(fd.get(), reuse_port));
  sockaddr_in sa = LDP_TRY(to_sockaddr(local));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0)
    return sys_error("bind");
  return UdpSocket(std::move(fd));
}

Result<UdpSocket> UdpSocket::create() {
  Fd fd = LDP_TRY(make_socket(SOCK_DGRAM));
  return UdpSocket(std::move(fd));
}

Result<Endpoint> UdpSocket::local_endpoint() const { return local_of(fd_.get()); }

Result<bool> UdpSocket::send_to(const Endpoint& dst, std::span<const uint8_t> payload) {
  sockaddr_in sa = LDP_TRY(to_sockaddr(dst));
  ssize_t n;
  do {
    n = ::sendto(fd_.get(), payload.data(), payload.size(), 0,
                 reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } while (n < 0 && errno == EINTR);
  g_io.sendto_calls.fetch_add(1, std::memory_order_relaxed);
  ++t_io.sendto_calls;
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) return false;
    return sys_error("sendto");
  }
  g_io.datagrams_sent.fetch_add(1, std::memory_order_relaxed);
  ++t_io.datagrams_sent;
  return true;
}

Result<std::optional<UdpSocket::Datagram>> UdpSocket::recv() {
  uint8_t buf[65536];
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  ssize_t n;
  do {
    len = sizeof(sa);
    n = ::recvfrom(fd_.get(), buf, sizeof(buf), 0,
                   reinterpret_cast<sockaddr*>(&sa), &len);
  } while (n < 0 && errno == EINTR);
  g_io.recvfrom_calls.fetch_add(1, std::memory_order_relaxed);
  ++t_io.recvfrom_calls;
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::optional<Datagram>{};
    return sys_error("recvfrom");
  }
  g_io.datagrams_received.fetch_add(1, std::memory_order_relaxed);
  ++t_io.datagrams_received;
  Datagram dg;
  dg.from = from_sockaddr(sa);
  dg.payload.assign(buf, buf + n);
  return std::optional<Datagram>{std::move(dg)};
}

Result<size_t> UdpSocket::send_batch(std::span<const OutDatagram> dgs) {
  size_t accepted = 0;
  while (accepted < dgs.size()) {
    size_t n = std::min(kBatchSize, dgs.size() - accepted);
    mmsghdr msgs[kBatchSize];
    iovec iovs[kBatchSize];
    sockaddr_in addrs[kBatchSize];
    std::memset(msgs, 0, n * sizeof(mmsghdr));
    for (size_t i = 0; i < n; ++i) {
      const OutDatagram& dg = dgs[accepted + i];
      auto sa = to_sockaddr(dg.dst);
      if (!sa.ok()) {
        // Addressing error mid-batch: report the clean prefix if there is
        // one (the retried tail then surfaces the error with no progress).
        if (accepted > 0 || i > 0) {
          // Send the valid entries staged so far in this chunk first.
          n = i;
          break;
        }
        return sa.error();
      }
      addrs[i] = *sa;
      iovs[i].iov_base = const_cast<uint8_t*>(dg.payload.data());
      iovs[i].iov_len = dg.payload.size();
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    if (n == 0) return accepted;
    int r;
    do {
      r = ::sendmmsg(fd_.get(), msgs, static_cast<unsigned>(n), 0);
    } while (r < 0 && errno == EINTR);
    g_io.sendmmsg_calls.fetch_add(1, std::memory_order_relaxed);
    ++t_io.sendmmsg_calls;
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)
        return accepted;
      if (accepted > 0) return accepted;
      return sys_error("sendmmsg");
    }
    g_io.datagrams_sent.fetch_add(static_cast<uint64_t>(r), std::memory_order_relaxed);
    t_io.datagrams_sent += static_cast<uint64_t>(r);
    accepted += static_cast<size_t>(r);
    // The kernel stopping short of the chunk means the next datagram hit a
    // transient or hard condition; either way the caller owns the tail.
    if (static_cast<size_t>(r) < n) return accepted;
  }
  return accepted;
}

Result<std::span<const UdpSocket::RecvView>> UdpSocket::recv_batch() {
  if (recv_arena_.empty()) {
    recv_arena_.resize(kBatchSize * kRecvSlotBytes);
    recv_views_.resize(kBatchSize);
  }
  mmsghdr msgs[kBatchSize];
  iovec iovs[kBatchSize];
  sockaddr_in addrs[kBatchSize];
  std::memset(msgs, 0, sizeof(msgs));
  std::memset(addrs, 0, sizeof(addrs));
  for (size_t i = 0; i < kBatchSize; ++i) {
    iovs[i].iov_base = recv_arena_.data() + i * kRecvSlotBytes;
    iovs[i].iov_len = kRecvSlotBytes;
    msgs[i].msg_hdr.msg_name = &addrs[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  int n;
  do {
    n = ::recvmmsg(fd_.get(), msgs, kBatchSize, 0, nullptr);
  } while (n < 0 && errno == EINTR);
  g_io.recvmmsg_calls.fetch_add(1, std::memory_order_relaxed);
  ++t_io.recvmmsg_calls;
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return std::span<const RecvView>{};
    return sys_error("recvmmsg");
  }
  g_io.datagrams_received.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
  t_io.datagrams_received += static_cast<uint64_t>(n);
  for (int i = 0; i < n; ++i) {
    recv_views_[static_cast<size_t>(i)] = RecvView{
        from_sockaddr(addrs[i]),
        std::span<const uint8_t>(recv_arena_.data() + static_cast<size_t>(i) * kRecvSlotBytes,
                                 msgs[i].msg_len)};
  }
  return std::span<const RecvView>(recv_views_.data(), static_cast<size_t>(n));
}

Result<TcpStream> TcpStream::connect(const Endpoint& remote) {
  Fd fd = LDP_TRY(make_socket(SOCK_STREAM));
  sockaddr_in sa = LDP_TRY(to_sockaddr(remote));
  int r;
  do {
    r = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } while (r != 0 && errno == EINTR);
  if (r != 0 && errno != EINPROGRESS) return sys_error("connect");
  return TcpStream(std::move(fd), remote);
}

TcpStream TcpStream::from_accepted(Fd fd, Endpoint peer) {
  return TcpStream(std::move(fd), peer);
}

Result<size_t> TcpStream::send_message(std::span<const uint8_t> dns_payload) {
  // The 2-byte length prefix caps a framed DNS message at 65535 octets;
  // anything larger would silently truncate the prefix and desynchronize
  // the stream for the peer.
  if (dns_payload.size() > 0xffff)
    return Err("DNS message exceeds the 65535-octet TCP frame limit");
  out_.push_back(static_cast<uint8_t>(dns_payload.size() >> 8));
  out_.push_back(static_cast<uint8_t>(dns_payload.size()));
  out_.insert(out_.end(), dns_payload.begin(), dns_payload.end());
  return flush();
}

Result<size_t> TcpStream::flush() {
  while (!out_.empty()) {
    ssize_t n = ::send(fd_.get(), out_.data(), out_.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return out_.size();
      return sys_error("send");
    }
    out_.erase(out_.begin(), out_.begin() + n);
  }
  return size_t{0};
}

Result<std::vector<std::vector<uint8_t>>> TcpStream::read_messages(bool& closed) {
  closed = false;
  std::vector<std::vector<uint8_t>> messages;
  uint8_t buf[65536];
  while (true) {
    ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return sys_error("recv");
    }
    if (n == 0) {
      closed = true;
      break;
    }
    in_.insert(in_.end(), buf, buf + n);
  }
  // Extract complete frames.
  size_t pos = 0;
  while (in_.size() - pos >= 2) {
    size_t frame = static_cast<size_t>(in_[pos]) << 8 | in_[pos + 1];
    if (in_.size() - pos - 2 < frame) break;
    messages.emplace_back(in_.begin() + static_cast<long>(pos + 2),
                          in_.begin() + static_cast<long>(pos + 2 + frame));
    pos += 2 + frame;
  }
  in_.erase(in_.begin(), in_.begin() + static_cast<long>(pos));
  return messages;
}

Result<void> TcpStream::set_nodelay(bool on) {
  int v = on ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) != 0)
    return sys_error("TCP_NODELAY");
  return Ok();
}

Result<void> write_full(int fd, std::span<const uint8_t> buf) {
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{fd, POLLOUT, 0};
        if (::poll(&p, 1, -1) < 0 && errno != EINTR) return sys_error("poll");
        continue;
      }
      return sys_error("send");
    }
    off += static_cast<size_t>(n);
  }
  return Ok();
}

Result<bool> read_full(int fd, std::span<uint8_t> buf) {
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::recv(fd, buf.data() + off, buf.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{fd, POLLIN, 0};
        if (::poll(&p, 1, -1) < 0 && errno != EINTR) return sys_error("poll");
        continue;
      }
      return sys_error("recv");
    }
    if (n == 0) {
      if (off == 0) return false;  // clean EOF at a frame boundary
      return Err("peer closed mid-frame (truncated control frame)");
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Result<Fd> tcp_connect_blocking(const Endpoint& remote, TimeNs timeout) {
  sockaddr_in sa = LDP_TRY(to_sockaddr(remote));
  const TimeNs deadline = mono_now_ns() + timeout;
  while (true) {
    int raw = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (raw < 0) return sys_error("socket");
    Fd fd(raw);
    int r;
    do {
      r = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    } while (r != 0 && errno == EINTR);
    if (r == 0) return fd;
    // The peer may not be listening yet (worker racing the controller's
    // listen, or a respawned worker racing a half-torn-down one); back off
    // briefly and retry with a fresh socket — a failed connect() leaves the
    // old one unusable.
    if ((errno == ECONNREFUSED || errno == ETIMEDOUT) &&
        mono_now_ns() < deadline) {
      timespec ts{0, 50 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
      continue;
    }
    return sys_error("connect");
  }
}

Result<TcpListener> TcpListener::listen(const Endpoint& local, int backlog,
                                        bool reuse_port) {
  Fd fd = LDP_TRY(make_socket(SOCK_STREAM));
  LDP_TRY_VOID(set_reuse(fd.get(), reuse_port));
  sockaddr_in sa = LDP_TRY(to_sockaddr(local));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0)
    return sys_error("bind");
  if (::listen(fd.get(), backlog) != 0)
    return sys_error("listen");
  return TcpListener(std::move(fd));
}

Result<Endpoint> TcpListener::local_endpoint() const { return local_of(fd_.get()); }

Result<std::optional<TcpStream>> TcpListener::accept() {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  int fd;
  do {
    len = sizeof(sa);
    fd = ::accept4(fd_.get(), reinterpret_cast<sockaddr*>(&sa), &len,
                   SOCK_NONBLOCK | SOCK_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::optional<TcpStream>{};
    return sys_error("accept");
  }
  return std::optional<TcpStream>{TcpStream::from_accepted(Fd(fd), from_sockaddr(sa))};
}

}  // namespace ldp::net
