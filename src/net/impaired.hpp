// Impairment shims at the socket layer: the insertion point that lets the
// real-socket replay engine, server frontend, and proxy pipeline run under
// an ldp::fault scenario without changing their protocol logic. Impairment
// is applied on *egress* — the side this process controls — which is
// equivalent, from the sender's lifecycle viewpoint, to the link eating the
// packet in either direction (both surface as a missing response).
//
// ImpairedUdpSocket wraps a bound UdpSocket; sends consult a FaultStream
// and may be eaten, doubled, corrupted, or (given an EventLoop) delayed.
// TCP is a reliable stream, so datagram-style impairment applies at the
// framed-message boundary instead: impaired_tcp_send() decides one
// message's fate, and maps a link-flap drop to "connection lost" so the
// caller exercises its reconnect path — a flap under TCP kills the
// connection, it does not silently eat one segment.
#pragma once

#include "fault/fault.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"

namespace ldp::net {

class ImpairedUdpSocket {
 public:
  /// Wrap a socket. `stream` may be null (transparent passthrough) and is
  /// borrowed — the owner must outlive this socket. `loop` enables
  /// delay/reorder verdicts (packets are re-sent from a timer); without a
  /// loop those verdicts deliver immediately (still counted).
  ImpairedUdpSocket(UdpSocket sock, fault::FaultStream* stream = nullptr,
                    EventLoop* loop = nullptr)
      : sock_(std::move(sock)), stream_(stream), loop_(loop) {}

  int fd() const { return sock_.fd(); }
  Result<Endpoint> local_endpoint() const { return sock_.local_endpoint(); }
  UdpSocket& inner() { return sock_; }

  /// UdpSocket::send_to through the impairment stream. A dropped packet
  /// reports wire success (true): from the caller's perspective it left —
  /// the link ate it.
  Result<bool> send_to(const Endpoint& dst, std::span<const uint8_t> payload);

  /// Receive passthrough (impairment is egress-side).
  Result<std::optional<UdpSocket::Datagram>> recv() { return sock_.recv(); }

 private:
  UdpSocket sock_;
  fault::FaultStream* stream_;
  EventLoop* loop_;
};

/// Outcome of pushing one framed message through an impaired TCP path.
enum class TcpSendOutcome {
  Sent,      ///< message handed to the stream (possibly twice / corrupted)
  Eaten,     ///< impairment dropped the message; the connection lives on
  LinkDown,  ///< flap verdict: treat as connection loss (caller reconnects)
  Error,     ///< the underlying stream send failed
};

/// Send one DNS message over `tcp` through `stream` (null = passthrough).
/// `pending_out`, when non-null, receives the bytes still queued after the
/// flush attempt (callers re-arm write interest on it, as with
/// TcpStream::send_message).
TcpSendOutcome impaired_tcp_send(TcpStream& tcp, fault::FaultStream* stream,
                                 TimeNs now, std::span<const uint8_t> payload,
                                 size_t* pending_out = nullptr);

}  // namespace ldp::net
