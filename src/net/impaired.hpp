// Impairment shims at the socket layer: the insertion point that lets the
// real-socket replay engine, server frontend, and proxy pipeline run under
// an ldp::fault scenario without changing their protocol logic. Impairment
// is applied on *egress* — the side this process controls — which is
// equivalent, from the sender's lifecycle viewpoint, to the link eating the
// packet in either direction (both surface as a missing response).
//
// ImpairedUdpSocket wraps a bound UdpSocket; sends consult a FaultStream
// and may be eaten, doubled, corrupted, or (given an EventLoop) delayed.
// TCP is a reliable stream, so datagram-style impairment applies at the
// framed-message boundary instead: impaired_tcp_send() decides one
// message's fate, and maps a link-flap drop to "connection lost" so the
// caller exercises its reconnect path — a flap under TCP kills the
// connection, it does not silently eat one segment.
#pragma once

#include "fault/fault.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"

namespace ldp::net {

class ImpairedUdpSocket {
 public:
  /// Wrap a socket. `stream` may be null (transparent passthrough) and is
  /// borrowed — the owner must outlive this socket. `loop` enables
  /// delay/reorder verdicts (packets are re-sent from a timer); without a
  /// loop those verdicts deliver immediately (still counted).
  ImpairedUdpSocket(UdpSocket sock, fault::FaultStream* stream = nullptr,
                    EventLoop* loop = nullptr)
      : sock_(std::move(sock)), stream_(stream), loop_(loop) {}

  int fd() const { return sock_.fd(); }
  Result<Endpoint> local_endpoint() const { return sock_.local_endpoint(); }
  UdpSocket& inner() { return sock_; }

  /// UdpSocket::send_to through the impairment stream. A dropped packet
  /// reports wire success (true): from the caller's perspective it left —
  /// the link ate it.
  Result<bool> send_to(const Endpoint& dst, std::span<const uint8_t> payload);

  /// Batched send_to: one fault draw per datagram, consumed in input order —
  /// exactly the sequence the scalar path would draw for the same sends —
  /// regardless of how many sendmmsg calls the batch spans, so fixed-seed
  /// impairment counters are identical between the scalar and batched paths.
  /// `wire_out[i]` mirrors send_to's bool: true when datagram i left (or the
  /// link ate it), false when the kernel buffer was full and the datagram is
  /// still the caller's to retry. On a hard socket error no wire entry was
  /// accepted by the kernel; the draws were still consumed.
  Result<void> send_batch(std::span<const UdpSocket::OutDatagram> dgs,
                          std::vector<uint8_t>& wire_out);

  /// Receive passthrough (impairment is egress-side).
  Result<std::optional<UdpSocket::Datagram>> recv() { return sock_.recv(); }

  /// Batched receive passthrough; views follow UdpSocket::recv_batch rules.
  Result<std::span<const UdpSocket::RecvView>> recv_batch() {
    return sock_.recv_batch();
  }

 private:
  UdpSocket sock_;
  fault::FaultStream* stream_;
  EventLoop* loop_;
  // send_batch scratch, reused across calls: the post-draw wire entries,
  // which original datagram each maps back to (kDupEntry = best-effort
  // duplicate with no wire status of its own), and owned copies of
  // corrupted payloads (corruption must not touch the caller's bytes).
  static constexpr size_t kDupEntry = static_cast<size_t>(-1);
  std::vector<UdpSocket::OutDatagram> entries_;
  std::vector<size_t> entry_owner_;
  std::vector<std::vector<uint8_t>> corrupt_scratch_;
};

/// Outcome of pushing one framed message through an impaired TCP path.
enum class TcpSendOutcome {
  Sent,      ///< message handed to the stream (possibly twice / corrupted)
  Eaten,     ///< impairment dropped the message; the connection lives on
  LinkDown,  ///< flap verdict: treat as connection loss (caller reconnects)
  Error,     ///< the underlying stream send failed
};

/// Send one DNS message over `tcp` through `stream` (null = passthrough).
/// `pending_out`, when non-null, receives the bytes still queued after the
/// flush attempt (callers re-arm write interest on it, as with
/// TcpStream::send_message).
TcpSendOutcome impaired_tcp_send(TcpStream& tcp, fault::FaultStream* stream,
                                 TimeNs now, std::span<const uint8_t> payload,
                                 size_t* pending_out = nullptr);

}  // namespace ldp::net
