#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/log.hpp"

namespace ldp::net {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {
uint32_t to_epoll_events(Interest interest) {
  uint32_t ev = 0;
  if (interest.readable) ev |= EPOLLIN;
  if (interest.writable) ev |= EPOLLOUT;
  return ev;
}
}  // namespace

EventLoop::EventLoop() : epoll_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epoll_.valid()) throw std::runtime_error("epoll_create1 failed");
  // Timers ride a timerfd so deadlines get nanosecond arming rather than
  // epoll_wait's millisecond timeout — the replay scheduler depends on
  // sub-millisecond wakeups (§4.2 validates ±ms-level timing).
  timer_fd_ = Fd(::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC));
  if (!timer_fd_.valid()) throw std::runtime_error("timerfd_create failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = timer_fd_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, timer_fd_.get(), &ev) != 0)
    throw std::runtime_error("epoll_ctl(timerfd) failed");
  wake_fd_ = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) throw std::runtime_error("eventfd failed");
  epoll_event wev{};
  wev.events = EPOLLIN;
  wev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &wev) != 0)
    throw std::runtime_error("epoll_ctl(eventfd) failed");
}

void EventLoop::stop() {
  stopped_.store(true, std::memory_order_relaxed);
  uint64_t one = 1;
  ssize_t r = ::write(wake_fd_.get(), &one, sizeof(one));
  (void)r;
}

EventLoop::~EventLoop() = default;

Result<void> EventLoop::add_fd(int fd, Interest interest, IoCallback cb) {
  epoll_event ev{};
  ev.events = to_epoll_events(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0)
    return Err(std::string("epoll_ctl ADD: ") + std::strerror(errno));
  callbacks_[fd] = std::move(cb);
  return Ok();
}

Result<void> EventLoop::modify_fd(int fd, Interest interest) {
  epoll_event ev{};
  ev.events = to_epoll_events(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0)
    return Err(std::string("epoll_ctl MOD: ") + std::strerror(errno));
  return Ok();
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::arm_timerfd() {
  // Arm to the earliest live deadline (lazily skipping cancelled heap nodes).
  while (!timers_.empty() && !timer_callbacks_.contains(timers_.top().id))
    timers_.pop();
  itimerspec spec{};
  if (!timers_.empty()) {
    TimeNs deadline = timers_.top().deadline;
    if (deadline <= mono_now_ns()) deadline = mono_now_ns() + 1;  // fire asap
    spec.it_value.tv_sec = deadline / kSecond;
    spec.it_value.tv_nsec = deadline % kSecond;
  }
  // All-zero spec disarms.
  ::timerfd_settime(timer_fd_.get(), TFD_TIMER_ABSTIME, &spec, nullptr);
}

EventLoop::TimerId EventLoop::add_timer_at(TimeNs deadline, TimerCallback cb) {
  TimerId id = next_timer_id_++;
  timers_.push(Timer{deadline, id});
  timer_callbacks_[id] = std::move(cb);
  arm_timerfd();
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  timer_callbacks_.erase(id);
  arm_timerfd();
}

void EventLoop::fire_due_timers() {
  TimeNs now = mono_now_ns();
  while (!timers_.empty() && timers_.top().deadline <= now) {
    Timer t = timers_.top();
    timers_.pop();
    auto it = timer_callbacks_.find(t.id);
    if (it == timer_callbacks_.end()) continue;  // cancelled
    TimerCallback cb = std::move(it->second);
    timer_callbacks_.erase(it);
    cb();
    now = mono_now_ns();
  }
  arm_timerfd();
}

void EventLoop::add_flush_hook(std::function<void()> hook) {
  flush_hooks_.push_back(std::move(hook));
}

void EventLoop::poll_once(TimeNs max_wait) {
  fire_due_timers();

  // Flush staged output before blocking: everything staged by the previous
  // round's fd callbacks / trailing timers and by the leading timers above
  // drains here, so epoll_wait never blocks on top of unsent work.
  for (const auto& hook : flush_hooks_) hook();

  int timeout_ms = -1;
  if (max_wait >= 0) timeout_ms = static_cast<int>((max_wait + kMilli - 1) / kMilli);

  epoll_event events[64];
  int n = ::epoll_wait(epoll_.get(), events, 64, timeout_ms);
  if (n < 0) {
    if (errno != EINTR) LDP_ERROR("event_loop", "epoll_wait: " << std::strerror(errno));
    return;
  }
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    if (fd == timer_fd_.get()) {
      uint64_t expirations = 0;
      ssize_t r = ::read(timer_fd_.get(), &expirations, sizeof(expirations));
      (void)r;
      continue;  // timers fire below
    }
    if (fd == wake_fd_.get()) {
      uint64_t buf = 0;
      ssize_t r = ::read(wake_fd_.get(), &buf, sizeof(buf));
      (void)r;
      continue;  // stop flag is checked by run()
    }
    auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;  // removed by an earlier callback
    bool readable = (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
    bool writable = (events[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0;
    // Copy: the callback may remove_fd(fd) and invalidate the iterator.
    IoCallback cb = it->second;
    cb(readable, writable);
  }

  fire_due_timers();
}

void EventLoop::run() {
  // stop() is sticky: a stop that lands before the loop thread reaches
  // run() must still win, or the shutdown request is lost and the caller's
  // join hangs. A stopped loop stays stopped; loops are not restarted.
  while (!stopped_.load(std::memory_order_relaxed) &&
         (!callbacks_.empty() || !timer_callbacks_.empty())) {
    poll_once(-1);
  }
}

}  // namespace ldp::net
