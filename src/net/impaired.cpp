#include "net/impaired.hpp"

namespace ldp::net {

Result<bool> ImpairedUdpSocket::send_to(const Endpoint& dst,
                                        std::span<const uint8_t> payload) {
  if (stream_ == nullptr) return sock_.send_to(dst, payload);

  fault::Verdict v = stream_->next(mono_now_ns());
  if (v.is_drop()) return true;  // the link ate it; to the caller it left

  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  if (v.action == fault::Action::Corrupt) stream_->corrupt(bytes);

  if (v.extra_delay > 0 && loop_ != nullptr) {
    // Held by the link: deliver from a timer. Delivery failures at that
    // point are indistinguishable from loss, which is exactly what a
    // delayed-then-dropped packet is.
    size_t copies = v.action == fault::Action::Duplicate ? 2 : 1;
    loop_->add_timer_after(v.extra_delay,
                           [this, dst, bytes = std::move(bytes), copies] {
                             for (size_t i = 0; i < copies; ++i)
                               (void)sock_.send_to(dst, bytes);
                           });
    return true;
  }

  auto sent = LDP_TRY(sock_.send_to(dst, bytes));
  if (v.action == fault::Action::Duplicate && sent) {
    // Best-effort second copy; a full kernel buffer just drops the dup,
    // which is fine — duplication is an impairment, not a guarantee.
    (void)sock_.send_to(dst, bytes);
  }
  return sent;
}

TcpSendOutcome impaired_tcp_send(TcpStream& tcp, fault::FaultStream* stream,
                                 TimeNs now, std::span<const uint8_t> payload,
                                 size_t* pending_out) {
  if (pending_out != nullptr) *pending_out = 0;
  if (stream == nullptr) {
    auto sent = tcp.send_message(payload);
    if (!sent.ok()) return TcpSendOutcome::Error;
    if (pending_out != nullptr) *pending_out = *sent;
    return TcpSendOutcome::Sent;
  }

  fault::Verdict v = stream->next(now);
  if (v.is_drop()) {
    return v.reason == fault::DropReason::Flap ? TcpSendOutcome::LinkDown
                                               : TcpSendOutcome::Eaten;
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  if (v.action == fault::Action::Corrupt) stream->corrupt(bytes);
  auto sent = tcp.send_message(bytes);
  if (!sent.ok()) return TcpSendOutcome::Error;
  if (v.action == fault::Action::Duplicate) {
    auto again = tcp.send_message(bytes);
    if (!again.ok()) return TcpSendOutcome::Error;
    sent = again;
  }
  if (pending_out != nullptr) *pending_out = *sent;
  return TcpSendOutcome::Sent;
}

}  // namespace ldp::net
