#include "net/impaired.hpp"

namespace ldp::net {

Result<bool> ImpairedUdpSocket::send_to(const Endpoint& dst,
                                        std::span<const uint8_t> payload) {
  if (stream_ == nullptr) return sock_.send_to(dst, payload);

  fault::Verdict v = stream_->next(mono_now_ns());
  if (v.is_drop()) return true;  // the link ate it; to the caller it left

  if (v.extra_delay > 0 && loop_ != nullptr) {
    // Held by the link: deliver from a timer (which needs an owned copy).
    // Delivery failures at that point are indistinguishable from loss,
    // which is exactly what a delayed-then-dropped packet is.
    std::vector<uint8_t> bytes(payload.begin(), payload.end());
    if (v.action == fault::Action::Corrupt) stream_->corrupt(bytes);
    size_t copies = v.action == fault::Action::Duplicate ? 2 : 1;
    loop_->add_timer_after(v.extra_delay,
                           [this, dst, bytes = std::move(bytes), copies] {
                             for (size_t i = 0; i < copies; ++i)
                               (void)sock_.send_to(dst, bytes);
                           });
    return true;
  }

  if (v.action == fault::Action::Corrupt) {
    // Corruption must not touch the caller's bytes (they may be retried).
    std::vector<uint8_t> bytes(payload.begin(), payload.end());
    stream_->corrupt(bytes);
    return sock_.send_to(dst, bytes);
  }

  // Plain deliver (the common case) forwards the caller's bytes zero-copy.
  auto sent = LDP_TRY(sock_.send_to(dst, payload));
  if (v.action == fault::Action::Duplicate && sent) {
    // Best-effort second copy; a full kernel buffer just drops the dup,
    // which is fine — duplication is an impairment, not a guarantee.
    (void)sock_.send_to(dst, payload);
  }
  return sent;
}

Result<void> ImpairedUdpSocket::send_batch(
    std::span<const UdpSocket::OutDatagram> dgs, std::vector<uint8_t>& wire_out) {
  wire_out.assign(dgs.size(), 0);
  if (stream_ == nullptr) {
    size_t accepted = LDP_TRY(sock_.send_batch(dgs));
    std::fill(wire_out.begin(), wire_out.begin() + static_cast<long>(accepted), 1);
    return Ok();
  }

  // Draw one verdict per input datagram up front, in input order — the
  // scalar path consumes its draw before touching the kernel, so the batch
  // must consume the whole schedule regardless of what sendmmsg later
  // accepts. Survivors become wire entries for one chunked sendmmsg pass.
  entries_.clear();
  entry_owner_.clear();
  corrupt_scratch_.clear();
  for (size_t i = 0; i < dgs.size(); ++i) {
    fault::Verdict v = stream_->next(mono_now_ns());
    if (v.is_drop()) {
      wire_out[i] = 1;  // the link ate it; to the caller it left
      continue;
    }
    std::span<const uint8_t> bytes = dgs[i].payload;
    if (v.action == fault::Action::Corrupt) {
      corrupt_scratch_.emplace_back(bytes.begin(), bytes.end());
      stream_->corrupt(corrupt_scratch_.back());
      bytes = corrupt_scratch_.back();
    }
    if (v.extra_delay > 0 && loop_ != nullptr) {
      size_t copies = v.action == fault::Action::Duplicate ? 2 : 1;
      loop_->add_timer_after(
          v.extra_delay,
          [this, dst = dgs[i].dst,
           held = std::vector<uint8_t>(bytes.begin(), bytes.end()), copies] {
            for (size_t c = 0; c < copies; ++c) (void)sock_.send_to(dst, held);
          });
      wire_out[i] = 1;
      continue;
    }
    entries_.push_back(UdpSocket::OutDatagram{dgs[i].dst, bytes});
    entry_owner_.push_back(i);
    if (v.action == fault::Action::Duplicate) {
      // Adjacent second copy, best-effort like the scalar path: if the
      // kernel's accepted prefix ends on it, only the dup is lost.
      entries_.push_back(UdpSocket::OutDatagram{dgs[i].dst, bytes});
      entry_owner_.push_back(kDupEntry);
    }
  }

  size_t accepted = 0;
  if (!entries_.empty()) {
    auto sent = sock_.send_batch(entries_);
    if (!sent.ok()) return sent.error();
    accepted = *sent;
  }
  for (size_t e = 0; e < accepted; ++e) {
    if (entry_owner_[e] != kDupEntry) wire_out[entry_owner_[e]] = 1;
  }
  return Ok();
}

TcpSendOutcome impaired_tcp_send(TcpStream& tcp, fault::FaultStream* stream,
                                 TimeNs now, std::span<const uint8_t> payload,
                                 size_t* pending_out) {
  if (pending_out != nullptr) *pending_out = 0;
  if (stream == nullptr) {
    auto sent = tcp.send_message(payload);
    if (!sent.ok()) return TcpSendOutcome::Error;
    if (pending_out != nullptr) *pending_out = *sent;
    return TcpSendOutcome::Sent;
  }

  fault::Verdict v = stream->next(now);
  if (v.is_drop()) {
    return v.reason == fault::DropReason::Flap ? TcpSendOutcome::LinkDown
                                               : TcpSendOutcome::Eaten;
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  if (v.action == fault::Action::Corrupt) stream->corrupt(bytes);
  auto sent = tcp.send_message(bytes);
  if (!sent.ok()) return TcpSendOutcome::Error;
  if (v.action == fault::Action::Duplicate) {
    auto again = tcp.send_message(bytes);
    if (!again.ok()) return TcpSendOutcome::Error;
    sent = again;
  }
  if (pending_out != nullptr) *pending_out = *sent;
  return TcpSendOutcome::Sent;
}

}  // namespace ldp::net
