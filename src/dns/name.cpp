#include "dns/name.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace ldp::dns {

namespace {
constexpr size_t kMaxLabel = 63;
constexpr size_t kMaxWire = 255;
constexpr int kMaxPointerHops = 64;  // defends against pointer loops

char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }

// Shared wire-format label walk behind Name::from_wire and
// decode_name_wire: compression-pointer chasing with the loop/expansion
// hardening documented at the pointer branch below. `sink` is invoked once
// per label with the raw (original-case) bytes; both decoders layer their
// own storage on top so the hostile-input defenses cannot drift apart.
template <typename Sink>
Result<void> walk_wire_name(ByteReader& rd, Sink&& sink) {
  size_t resume_pos = 0;  // position after the first pointer, 0 = none yet
  int hops = 0;
  size_t expanded = 0;  // decompressed octets, counted before buffering

  while (true) {
    uint8_t len = LDP_TRY(rd.u8());
    if (len == 0) break;
    uint8_t tag = len & 0xc0;
    if (tag == 0xc0) {
      // Compression pointer: 14-bit offset from message start. Each hop
      // must land strictly before the pointer itself, so chains always move
      // toward the message start and can never revisit a position — loops
      // (including self-pointers) and forward references are both rejected
      // by the same check. The hop cap is defense in depth on top of that:
      // even an all-backward chain packed 2 bytes apart terminates early.
      uint8_t low = LDP_TRY(rd.u8());
      size_t target = static_cast<size_t>(len & 0x3f) << 8 | low;
      if (++hops > kMaxPointerHops) return Err("compression pointer chain too long");
      if (resume_pos == 0) resume_pos = rd.pos();
      if (target >= rd.pos() - 2)
        return Err("forward compression pointer");
      LDP_TRY_VOID(rd.seek(target));
      continue;
    }
    if (tag != 0) return Err("unsupported label type");
    // Cap the total decompressed size before buffering label bytes, so a
    // hostile chain re-using long labels is cut off at the wire limit no
    // matter how it was assembled.
    expanded += static_cast<size_t>(len) + 1;
    if (expanded + 1 > kMaxWire) return Err("name decompresses past 255 octets");
    auto bytes = LDP_TRY(rd.bytes(len));
    LDP_TRY_VOID(sink(
        std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size())));
  }
  if (resume_pos != 0) LDP_TRY_VOID(rd.seek(resume_pos));
  return Ok();
}

}  // namespace

Result<void> Name::append_label(std::string_view label) {
  if (label.empty()) return Err("empty label");
  if (label.size() > kMaxLabel) return Err("label exceeds 63 octets");
  if (wire_length() + label.size() + 1 > kMaxWire) return Err("name exceeds 255 octets");
  offsets_.push_back(static_cast<uint16_t>(storage_.size()));
  for (char c : label) storage_.push_back(lower(c));
  return Ok();
}

Result<Name> Name::parse(std::string_view text) {
  Name name;
  if (text.empty()) return Err("empty name");
  if (text == ".") return name;

  std::string label;
  size_t i = 0;
  auto flush = [&]() -> Result<void> {
    LDP_TRY_VOID(name.append_label(label));
    label.clear();
    return Ok();
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '.') {
      LDP_TRY_VOID(flush());
      ++i;
      if (i == text.size()) return name;  // trailing dot
      continue;
    }
    if (c == '\\') {
      if (i + 1 >= text.size()) return Err("dangling escape in name");
      char n1 = text[i + 1];
      if (std::isdigit(static_cast<unsigned char>(n1))) {
        if (i + 3 >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[i + 2])) ||
            !std::isdigit(static_cast<unsigned char>(text[i + 3])))
          return Err("invalid \\DDD escape in name");
        int v = (n1 - '0') * 100 + (text[i + 2] - '0') * 10 + (text[i + 3] - '0');
        if (v > 255) return Err("\\DDD escape out of range");
        label.push_back(static_cast<char>(v));
        i += 4;
      } else {
        label.push_back(n1);
        i += 2;
      }
      continue;
    }
    label.push_back(c);
    ++i;
  }
  if (!label.empty()) LDP_TRY_VOID(flush());
  return name;
}

Result<Name> Name::from_wire(ByteReader& rd) {
  Name name;
  LDP_TRY_VOID(walk_wire_name(
      rd, [&name](std::string_view label) { return name.append_label(label); }));
  return name;
}

Result<void> decode_name_wire(ByteReader& rd, std::string& out) {
  size_t start = out.size();
  auto r = walk_wire_name(rd, [&out](std::string_view label) -> Result<void> {
    out.push_back(static_cast<char>(label.size()));
    for (char c : label) out.push_back(lower(c));
    return Ok();
  });
  if (!r.ok()) {
    out.resize(start);  // leave the caller's buffer as it was handed in
    return r;
  }
  out.push_back('\0');  // root byte
  return Ok();
}

std::string_view Name::label(size_t i) const {
  return std::string_view(storage_).substr(offsets_[i], label_len(i));
}

std::string Name::to_string() const {
  if (is_root()) return ".";
  std::string out;
  out.reserve(storage_.size() + offsets_.size());
  for (size_t i = 0; i < offsets_.size(); ++i) {
    for (char c : label(i)) {
      if (c == '.' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x21 || static_cast<unsigned char>(c) > 0x7e) {
        char buf[5];
        std::snprintf(buf, sizeof(buf), "\\%03u", static_cast<unsigned char>(c));
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    out.push_back('.');
  }
  return out;
}

void Name::to_wire(ByteWriter& w) const {
  for (size_t i = 0; i < offsets_.size(); ++i) {
    auto l = label(i);
    w.u8(static_cast<uint8_t>(l.size()));
    w.bytes(l);
  }
  w.u8(0);
}

bool Name::is_subdomain_of(const Name& other) const {
  if (other.label_count() > label_count()) return false;
  size_t skip = label_count() - other.label_count();
  for (size_t i = 0; i < other.label_count(); ++i) {
    if (label(skip + i) != other.label(i)) return false;
  }
  return true;
}

Name Name::parent() const {
  Name out;
  for (size_t i = 1; i < label_count(); ++i) {
    auto r = out.append_label(label(i));
    (void)r;  // labels came from a valid name; cannot fail
  }
  return out;
}

Name Name::suffix(size_t count) const {
  Name out;
  for (size_t i = label_count() - count; i < label_count(); ++i) {
    auto r = out.append_label(label(i));
    (void)r;  // labels came from a valid name; cannot fail
  }
  return out;
}

Result<Name> Name::with_prefix_label(std::string_view label_text) const {
  Name out;
  LDP_TRY_VOID(out.append_label(label_text));
  for (size_t i = 0; i < label_count(); ++i) LDP_TRY_VOID(out.append_label(label(i)));
  return out;
}

size_t Name::common_suffix_labels(const Name& other) const {
  size_t n = std::min(label_count(), other.label_count());
  size_t shared = 0;
  while (shared < n &&
         label(label_count() - 1 - shared) == other.label(other.label_count() - 1 - shared))
    ++shared;
  return shared;
}

bool Name::operator<(const Name& o) const {
  // Canonical order: compare labels right-to-left; shorter name first on tie.
  size_t n = std::min(label_count(), o.label_count());
  for (size_t i = 0; i < n; ++i) {
    auto a = label(label_count() - 1 - i);
    auto b = o.label(o.label_count() - 1 - i);
    if (a != b) return a < b;
  }
  return label_count() < o.label_count();
}

size_t Name::hash() const {
  size_t h = 1469598103934665603ull;
  for (char c : storage_) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  h = (h ^ offsets_.size()) * 1099511628211ull;
  return h;
}

}  // namespace ldp::dns
