#include "dns/message.hpp"

#include "dns/wire.hpp"

namespace ldp::dns {

namespace {

Result<ResourceRecord> rr_from_wire(ByteReader& rd) {
  ResourceRecord rr;
  rr.name = LDP_TRY(Name::from_wire(rd));
  rr.type = static_cast<RRType>(LDP_TRY(rd.u16()));
  rr.rrclass = static_cast<RRClass>(LDP_TRY(rd.u16()));
  rr.ttl = LDP_TRY(rd.u32());
  uint16_t rdlength = LDP_TRY(rd.u16());
  rr.rdata = LDP_TRY(Rdata::from_wire(rr.type, rd, rdlength));
  return rr;
}

void rr_to_wire(const ResourceRecord& rr, ByteWriter& w, NameCompressor& compressor) {
  compressor.write_name(w, rr.name, true);
  w.u16(static_cast<uint16_t>(rr.type));
  w.u16(static_cast<uint16_t>(rr.rrclass));
  w.u32(rr.ttl);
  rr.rdata.to_wire(rr.type, w, &compressor);
}

// The OPT pseudo-RR (RFC 6891 §6.1.2) abuses RR fields: CLASS carries the
// UDP payload size, TTL carries extended-rcode/version/flags.
void edns_to_wire(const Edns& e, ByteWriter& w) {
  w.u8(0);  // root name
  w.u16(static_cast<uint16_t>(RRType::OPT));
  w.u16(e.udp_payload_size);
  uint32_t ttl = static_cast<uint32_t>(e.extended_rcode) << 24 |
                 static_cast<uint32_t>(e.version) << 16 |
                 (e.dnssec_ok ? 0x8000u : 0u);
  w.u32(ttl);
  w.u16(static_cast<uint16_t>(e.options.size()));
  w.bytes(std::span<const uint8_t>(e.options));
}

Edns edns_from_rr(const ResourceRecord& rr) {
  Edns e;
  e.udp_payload_size = static_cast<uint16_t>(rr.rrclass);
  e.extended_rcode = static_cast<uint8_t>(rr.ttl >> 24);
  e.version = static_cast<uint8_t>(rr.ttl >> 16);
  e.dnssec_ok = (rr.ttl & 0x8000) != 0;
  if (const auto* op = rr.rdata.get_if<OpaqueData>()) e.options = op->bytes;
  return e;
}

}  // namespace

std::string Question::to_string() const {
  return qname.to_string() + " " + rrclass_to_string(qclass) + " " +
         rrtype_to_string(qtype);
}

Result<Message> Message::from_wire(std::span<const uint8_t> data) {
  ByteReader rd(data);
  Message m;

  m.header.id = LDP_TRY(rd.u16());
  uint16_t flags = LDP_TRY(rd.u16());
  m.header.qr = (flags & 0x8000) != 0;
  m.header.opcode = static_cast<Opcode>(flags >> 11 & 0xf);
  m.header.aa = (flags & 0x0400) != 0;
  m.header.tc = (flags & 0x0200) != 0;
  m.header.rd = (flags & 0x0100) != 0;
  m.header.ra = (flags & 0x0080) != 0;
  m.header.ad = (flags & 0x0020) != 0;
  m.header.cd = (flags & 0x0010) != 0;
  m.header.rcode = static_cast<Rcode>(flags & 0xf);

  uint16_t qdcount = LDP_TRY(rd.u16());
  uint16_t ancount = LDP_TRY(rd.u16());
  uint16_t nscount = LDP_TRY(rd.u16());
  uint16_t arcount = LDP_TRY(rd.u16());

  for (uint16_t i = 0; i < qdcount; ++i) {
    Question q;
    q.qname = LDP_TRY(Name::from_wire(rd));
    q.qtype = static_cast<RRType>(LDP_TRY(rd.u16()));
    q.qclass = static_cast<RRClass>(LDP_TRY(rd.u16()));
    m.questions.push_back(std::move(q));
  }
  for (uint16_t i = 0; i < ancount; ++i) m.answers.push_back(LDP_TRY(rr_from_wire(rd)));
  for (uint16_t i = 0; i < nscount; ++i)
    m.authorities.push_back(LDP_TRY(rr_from_wire(rd)));
  for (uint16_t i = 0; i < arcount; ++i) {
    ResourceRecord rr = LDP_TRY(rr_from_wire(rd));
    if (rr.type == RRType::OPT) {
      if (m.edns.has_value()) return Err("duplicate OPT record");
      m.edns = edns_from_rr(rr);
      // Extended rcode's upper bits merge into the header rcode.
      if (m.edns->extended_rcode != 0) {
        m.header.rcode = static_cast<Rcode>(
            (m.edns->extended_rcode << 4) | static_cast<uint8_t>(m.header.rcode));
      }
    } else {
      m.additionals.push_back(std::move(rr));
    }
  }
  return m;
}

std::vector<uint8_t> Message::to_wire(size_t max_size) const {
  auto encode = [this](bool truncated) {
    ByteWriter w(512);
    NameCompressor compressor;

    uint16_t flags = 0;
    if (header.qr) flags |= 0x8000;
    flags |= static_cast<uint16_t>(static_cast<uint8_t>(header.opcode) & 0xf) << 11;
    if (header.aa) flags |= 0x0400;
    if (header.tc || truncated) flags |= 0x0200;
    if (header.rd) flags |= 0x0100;
    if (header.ra) flags |= 0x0080;
    if (header.ad) flags |= 0x0020;
    if (header.cd) flags |= 0x0010;
    flags |= static_cast<uint8_t>(header.rcode) & 0xf;

    w.u16(header.id);
    w.u16(flags);
    w.u16(static_cast<uint16_t>(questions.size()));
    w.u16(truncated ? 0 : static_cast<uint16_t>(answers.size()));
    w.u16(truncated ? 0 : static_cast<uint16_t>(authorities.size()));
    w.u16(static_cast<uint16_t>((truncated ? 0 : additionals.size()) +
                                (edns.has_value() ? 1 : 0)));

    for (const auto& q : questions) {
      compressor.write_name(w, q.qname, true);
      w.u16(static_cast<uint16_t>(q.qtype));
      w.u16(static_cast<uint16_t>(q.qclass));
    }
    if (!truncated) {
      for (const auto& rr : answers) rr_to_wire(rr, w, compressor);
      for (const auto& rr : authorities) rr_to_wire(rr, w, compressor);
      for (const auto& rr : additionals) rr_to_wire(rr, w, compressor);
    }
    if (edns.has_value()) edns_to_wire(*edns, w);
    return std::move(w).take();
  };

  auto full = encode(false);
  if (max_size == 0 || full.size() <= max_size) return full;
  return encode(true);
}

Message Message::make_query(uint16_t id, const Name& qname, RRType qtype,
                            bool recursion_desired) {
  Message m;
  m.header.id = id;
  m.header.rd = recursion_desired;
  m.questions.push_back(Question{qname, qtype, RRClass::IN});
  return m;
}

Message Message::make_response(const Message& query) {
  Message m;
  m.header.id = query.header.id;
  m.header.qr = true;
  m.header.opcode = query.header.opcode;
  m.header.rd = query.header.rd;
  m.questions = query.questions;
  if (query.edns.has_value()) {
    Edns e;
    e.dnssec_ok = query.edns->dnssec_ok;
    m.edns = e;
  }
  return m;
}

std::string Message::to_string() const {
  std::string out;
  out += ";; id " + std::to_string(header.id) + " " + opcode_to_string(header.opcode) +
         " " + rcode_to_string(header.rcode);
  out += header.qr ? " qr" : "";
  out += header.aa ? " aa" : "";
  out += header.tc ? " tc" : "";
  out += header.rd ? " rd" : "";
  out += header.ra ? " ra" : "";
  out += "\n";
  if (edns.has_value()) {
    out += ";; EDNS v" + std::to_string(edns->version) +
           " udp=" + std::to_string(edns->udp_payload_size) +
           (edns->dnssec_ok ? " do" : "") + "\n";
  }
  out += ";; QUESTION\n";
  for (const auto& q : questions) out += q.to_string() + "\n";
  auto dump = [&out](const char* title, const std::vector<ResourceRecord>& rrs) {
    if (rrs.empty()) return;
    out += std::string(";; ") + title + "\n";
    for (const auto& rr : rrs) out += rr.to_string() + "\n";
  };
  dump("ANSWER", answers);
  dump("AUTHORITY", authorities);
  dump("ADDITIONAL", additionals);
  return out;
}

bool Message::operator==(const Message& o) const {
  auto hdr_eq = [](const Header& a, const Header& b) {
    return a.id == b.id && a.qr == b.qr && a.opcode == b.opcode && a.aa == b.aa &&
           a.tc == b.tc && a.rd == b.rd && a.ra == b.ra && a.ad == b.ad &&
           a.cd == b.cd && a.rcode == b.rcode;
  };
  auto edns_eq = [](const std::optional<Edns>& a, const std::optional<Edns>& b) {
    if (a.has_value() != b.has_value()) return false;
    if (!a.has_value()) return true;
    return a->udp_payload_size == b->udp_payload_size &&
           a->extended_rcode == b->extended_rcode && a->version == b->version &&
           a->dnssec_ok == b->dnssec_ok && a->options == b->options;
  };
  return hdr_eq(header, o.header) && questions == o.questions && answers == o.answers &&
         authorities == o.authorities && additionals == o.additionals &&
         edns_eq(edns, o.edns);
}

}  // namespace ldp::dns
