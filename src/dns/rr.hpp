// Resource records and RRsets. An RRset (same name/type/class) is the unit
// of DNS data: zone lookups, cache entries and DNSSEC signatures all operate
// on RRsets rather than individual records.
#pragma once

#include <string>
#include <vector>

#include "dns/rdata.hpp"

namespace ldp::dns {

struct ResourceRecord {
  Name name;
  RRType type = RRType::A;
  RRClass rrclass = RRClass::IN;
  uint32_t ttl = 0;
  Rdata rdata;

  /// One zone-file line: "name ttl class type rdata".
  std::string to_string() const;

  bool operator==(const ResourceRecord& o) const {
    return name == o.name && type == o.type && rrclass == o.rrclass && ttl == o.ttl &&
           rdata == o.rdata;
  }
};

/// All records sharing (name, type, class). TTL is uniform per RFC 2181 §5.2
/// (the minimum is used if input disagrees).
struct RRset {
  Name name;
  RRType type = RRType::A;
  RRClass rrclass = RRClass::IN;
  uint32_t ttl = 0;
  std::vector<Rdata> rdatas;

  bool empty() const { return rdatas.empty(); }
  size_t size() const { return rdatas.size(); }

  /// Expand back to individual records (message sections carry RRs).
  std::vector<ResourceRecord> to_records() const;

  /// Add one record's data; lowers ttl if the new record's is smaller.
  /// Duplicate rdata is ignored (DNS forbids duplicate records in an RRset).
  void add(const ResourceRecord& rr);
};

}  // namespace ldp::dns
