// Typed RDATA payloads. Each supported RR type gets a concrete struct with
// wire and presentation (zone-file) codecs; everything else round-trips as
// opaque bytes (RFC 3597 \# form), so no trace data is ever dropped.
//
// Compression note (RFC 3597 §4): names inside RDATA of the original RFC
// 1035 types (NS, CNAME, PTR, MX, SOA) may be compressed on output and must
// be decompressed on input; names in newer types (SRV, RRSIG, NSEC) must not
// be compressed on output but are still decompressed defensively on input.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.hpp"
#include "dns/types.hpp"
#include "util/ip.hpp"

namespace ldp::dns {

class NameCompressor;  // defined in dns/wire.hpp

struct AData {
  Ip4 addr;
};
struct AaaaData {
  Ip6 addr;
};
/// NS, CNAME, PTR: a single domain name.
struct NameData {
  Name name;
};
struct SoaData {
  Name mname;    ///< primary nameserver
  Name rname;    ///< responsible mailbox
  uint32_t serial = 0;
  uint32_t refresh = 0;
  uint32_t retry = 0;
  uint32_t expire = 0;
  uint32_t minimum = 0;  ///< negative-caching TTL (RFC 2308)
};
struct MxData {
  uint16_t preference = 0;
  Name exchange;
};
struct TxtData {
  std::vector<std::string> strings;  ///< each ≤255 octets on the wire
};
struct SrvData {
  uint16_t priority = 0;
  uint16_t weight = 0;
  uint16_t port = 0;
  Name target;
};
struct DsData {
  uint16_t key_tag = 0;
  uint8_t algorithm = 0;
  uint8_t digest_type = 0;
  std::vector<uint8_t> digest;
};
struct DnskeyData {
  uint16_t flags = 0;      ///< 256 = ZSK, 257 = KSK
  uint8_t protocol = 3;
  uint8_t algorithm = 0;
  std::vector<uint8_t> public_key;
};
struct RrsigData {
  RRType type_covered = RRType::A;
  uint8_t algorithm = 0;
  uint8_t labels = 0;
  uint32_t original_ttl = 0;
  uint32_t expiration = 0;
  uint32_t inception = 0;
  uint16_t key_tag = 0;
  Name signer;
  std::vector<uint8_t> signature;
};
struct NsecData {
  Name next;
  std::vector<RRType> types;
};
struct NaptrData {
  uint16_t order = 0;
  uint16_t preference = 0;
  std::string flags;
  std::string services;
  std::string regexp;
  Name replacement;
};
struct CaaData {
  uint8_t flags = 0;
  std::string tag;
  std::string value;
};
/// Fallback for types without a dedicated codec.
struct OpaqueData {
  std::vector<uint8_t> bytes;
};

/// RDATA value. The active alternative is determined by the owning record's
/// RRType (NameData serves NS, CNAME and PTR).
class Rdata {
 public:
  using Value = std::variant<AData, AaaaData, NameData, SoaData, MxData, TxtData,
                             SrvData, DsData, DnskeyData, RrsigData, NsecData,
                             NaptrData, CaaData, OpaqueData>;

  Rdata() : value_(OpaqueData{}) {}
  Rdata(Value v) : value_(std::move(v)) {}

  const Value& value() const { return value_; }
  Value& value() { return value_; }

  template <typename T>
  const T* get_if() const {
    return std::get_if<T>(&value_);
  }

  /// Decode `rdlength` bytes at the reader cursor as RDATA of `type`.
  /// The reader must span the whole message so compression pointers resolve.
  static Result<Rdata> from_wire(RRType type, ByteReader& rd, size_t rdlength);

  /// Encode, compressing RDATA names where RFC 3597 allows. Writes the
  /// 2-byte RDLENGTH followed by the payload.
  void to_wire(RRType type, ByteWriter& w, NameCompressor* compressor) const;

  /// Presentation format (the RHS of a zone-file line).
  std::string to_string(RRType type) const;

  /// Parse presentation-format tokens for `type`. Unknown types accept the
  /// RFC 3597 generic form: `\# <len> <hex>`.
  static Result<Rdata> parse(RRType type, const std::vector<std::string_view>& tokens);

  bool operator==(const Rdata& o) const;

 private:
  Value value_;
};

}  // namespace ldp::dns
