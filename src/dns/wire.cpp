#include "dns/wire.hpp"

namespace ldp::dns {

void NameCompressor::write_name(ByteWriter& w, const Name& name, bool compress) {
  // Work out, for each suffix of `name` (longest first is suffix 0 = whole
  // name), whether we already wrote it.
  size_t n = name.label_count();

  size_t match_at = n;  // index of first label of the matched suffix; n = none
  uint16_t match_offset = 0;
  if (compress) {
    // Try whole name, then progressively shorter suffixes. Suffix starting
    // at label i is name.label(i..n-1).
    for (size_t i = 0; i < n; ++i) {
      std::string key;
      for (size_t j = i; j < n; ++j) {
        key.append(name.label(j));
        key.push_back('.');
      }
      auto it = suffix_offsets_.find(key);
      if (it != suffix_offsets_.end()) {
        match_at = i;
        match_offset = it->second;
        break;
      }
    }
  }

  // Emit labels before the match, registering each new suffix position.
  for (size_t i = 0; i < match_at; ++i) {
    size_t pos = w.size();
    if (pos < 0x4000) {
      std::string key;
      for (size_t j = i; j < n; ++j) {
        key.append(name.label(j));
        key.push_back('.');
      }
      suffix_offsets_.emplace(std::move(key), static_cast<uint16_t>(pos));
    }
    auto l = name.label(i);
    w.u8(static_cast<uint8_t>(l.size()));
    w.bytes(l);
  }

  if (match_at < n) {
    w.u16(static_cast<uint16_t>(0xc000 | match_offset));
  } else {
    w.u8(0);  // root
  }
}

}  // namespace ldp::dns
