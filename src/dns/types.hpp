// DNS enumerations (RFC 1035 and successors) with text conversions used by
// the zone-file parser and the plain-text trace format.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace ldp::dns {

/// Resource record types. Values are the IANA-assigned wire values.
enum class RRType : uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  SRV = 33,
  NAPTR = 35,
  DS = 43,
  RRSIG = 46,
  NSEC = 47,
  DNSKEY = 48,
  NSEC3 = 50,
  OPT = 41,
  CAA = 257,
  ANY = 255,
};

enum class RRClass : uint16_t {
  IN = 1,
  CH = 3,
  HS = 4,
  ANY = 255,
};

enum class Opcode : uint8_t {
  Query = 0,
  IQuery = 1,
  Status = 2,
  Notify = 4,
  Update = 5,
};

enum class Rcode : uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NXDomain = 3,
  NotImp = 4,
  Refused = 5,
};

/// Mnemonic ("A", "AAAA", ...) or "TYPE<n>" for unknown values (RFC 3597).
std::string rrtype_to_string(RRType t);
/// Accepts both mnemonics and RFC 3597 "TYPE<n>" forms.
Result<RRType> rrtype_from_string(std::string_view s);

std::string rrclass_to_string(RRClass c);
Result<RRClass> rrclass_from_string(std::string_view s);

std::string rcode_to_string(Rcode r);
std::string opcode_to_string(Opcode o);

}  // namespace ldp::dns
