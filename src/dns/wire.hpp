// Name compression for message encoding (RFC 1035 §4.1.4). One compressor
// instance lives for the duration of a single message encode; it remembers
// where each name suffix was written and emits 2-byte pointers to the
// longest previously-written suffix.
#pragma once

#include <string>
#include <unordered_map>

#include "dns/name.hpp"

namespace ldp::dns {

class NameCompressor {
 public:
  /// Write `name` at the current writer position. When `compress` is true,
  /// the longest known suffix is replaced with a pointer; either way every
  /// newly written suffix with offset < 0x4000 is remembered for later
  /// names (including names written uncompressed, which still serve as
  /// pointer targets).
  void write_name(ByteWriter& w, const Name& name, bool compress);

 private:
  // Key: the lowercase presentation of a suffix ("example.com."). Values
  // are message offsets. Presentation strings are unambiguous because
  // Name::to_string escapes '.' inside labels.
  std::unordered_map<std::string, uint16_t> suffix_offsets_;
};

}  // namespace ldp::dns
