// DNS message (RFC 1035 §4) with EDNS(0) (RFC 6891). This is the unit the
// replay engine sends and the server engine answers; encode/decode are the
// hottest paths in the system.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dns/rr.hpp"

namespace ldp::dns {

/// Header flags and counts. Section counts are derived from the Message's
/// vectors at encode time and are not stored here.
struct Header {
  uint16_t id = 0;
  bool qr = false;  ///< response
  Opcode opcode = Opcode::Query;
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncated
  bool rd = false;  ///< recursion desired
  bool ra = false;  ///< recursion available
  bool ad = false;  ///< authentic data (DNSSEC)
  bool cd = false;  ///< checking disabled (DNSSEC)
  Rcode rcode = Rcode::NoError;
};

struct Question {
  Name qname;
  RRType qtype = RRType::A;
  RRClass qclass = RRClass::IN;

  bool operator==(const Question& o) const {
    return qname == o.qname && qtype == o.qtype && qclass == o.qclass;
  }
  std::string to_string() const;
};

/// EDNS(0) OPT pseudo-record contents, kept out of the additional section
/// so application code never sees the OPT encoding details.
struct Edns {
  uint16_t udp_payload_size = 1232;
  uint8_t extended_rcode = 0;
  uint8_t version = 0;
  bool dnssec_ok = false;  ///< the DO bit
  std::vector<uint8_t> options;  ///< raw EDNS options (code/len/data triples)
};

class Message {
 public:
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;  ///< excluding OPT
  std::optional<Edns> edns;

  /// Parse a full message from wire bytes. The OPT record, if present, is
  /// lifted out of the additional section into `edns`.
  static Result<Message> from_wire(std::span<const uint8_t> data);

  /// Encode with name compression. If `max_size` > 0 and the encoding would
  /// exceed it, sections are emptied and TC is set (RFC 2181 §9 behaviour:
  /// we do not send partial sets), keeping question + OPT.
  std::vector<uint8_t> to_wire(size_t max_size = 0) const;

  /// Exact wire size of the full (non-truncated) encoding.
  size_t wire_size() const { return to_wire(0).size(); }

  /// Convenience: build a query for (qname, qtype).
  static Message make_query(uint16_t id, const Name& qname, RRType qtype,
                            bool recursion_desired = true);

  /// Convenience: start a response to `query` (copies id, question, RD;
  /// mirrors EDNS presence with our defaults).
  static Message make_response(const Message& query);

  /// Multi-line diagnostic form (dig-style).
  std::string to_string() const;

  bool operator==(const Message& o) const;
};

}  // namespace ldp::dns
