#include "dns/rr.hpp"

#include <algorithm>

namespace ldp::dns {

std::string ResourceRecord::to_string() const {
  return name.to_string() + " " + std::to_string(ttl) + " " +
         rrclass_to_string(rrclass) + " " + rrtype_to_string(type) + " " +
         rdata.to_string(type);
}

std::vector<ResourceRecord> RRset::to_records() const {
  std::vector<ResourceRecord> out;
  out.reserve(rdatas.size());
  for (const auto& rd : rdatas) {
    out.push_back(ResourceRecord{name, type, rrclass, ttl, rd});
  }
  return out;
}

void RRset::add(const ResourceRecord& rr) {
  if (rdatas.empty()) {
    ttl = rr.ttl;
  } else {
    ttl = std::min(ttl, rr.ttl);
  }
  if (std::find(rdatas.begin(), rdatas.end(), rr.rdata) == rdatas.end()) {
    rdatas.push_back(rr.rdata);
  }
}

}  // namespace ldp::dns
