#include "dns/rdata.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>

#include "dns/wire.hpp"
#include "util/base64.hpp"
#include "util/strings.hpp"

namespace ldp::dns {

namespace {

Result<Name> read_name(ByteReader& rd) { return Name::from_wire(rd); }

std::string quote_txt(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20 || static_cast<unsigned char>(c) > 0x7e) {
      char buf[5];
      std::snprintf(buf, sizeof(buf), "\\%03u", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

Result<std::string> unquote_txt(std::string_view tok) {
  std::string out;
  std::string_view body = tok;
  if (body.size() >= 2 && body.front() == '"' && body.back() == '"')
    body = body.substr(1, body.size() - 2);
  for (size_t i = 0; i < body.size();) {
    if (body[i] == '\\') {
      if (i + 1 >= body.size()) return Err("dangling escape in string");
      if (std::isdigit(static_cast<unsigned char>(body[i + 1]))) {
        if (i + 3 >= body.size()) return Err("bad \\DDD escape");
        int v = (body[i + 1] - '0') * 100 + (body[i + 2] - '0') * 10 + (body[i + 3] - '0');
        if (v > 255) return Err("\\DDD escape out of range");
        out.push_back(static_cast<char>(v));
        i += 4;
      } else {
        out.push_back(body[i + 1]);
        i += 2;
      }
    } else {
      out.push_back(body[i]);
      ++i;
    }
  }
  return out;
}

Result<uint64_t> tok_u64(const std::vector<std::string_view>& toks, size_t i) {
  if (i >= toks.size()) return Err("missing integer field");
  return parse_u64(toks[i]);
}

Result<Name> tok_name(const std::vector<std::string_view>& toks, size_t i) {
  if (i >= toks.size()) return Err("missing name field");
  return Name::parse(toks[i]);
}

// NSEC type bitmap (RFC 4034 §4.1.2).
void write_type_bitmap(ByteWriter& w, const std::vector<RRType>& types) {
  // Group type values by window (high byte).
  std::vector<uint16_t> values;
  values.reserve(types.size());
  for (RRType t : types) values.push_back(static_cast<uint16_t>(t));
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  size_t i = 0;
  while (i < values.size()) {
    uint8_t window = static_cast<uint8_t>(values[i] >> 8);
    uint8_t bitmap[32] = {0};
    int max_octet = -1;
    while (i < values.size() && (values[i] >> 8) == window) {
      uint8_t low = static_cast<uint8_t>(values[i] & 0xff);
      bitmap[low / 8] |= static_cast<uint8_t>(0x80 >> (low % 8));
      max_octet = std::max(max_octet, low / 8);
      ++i;
    }
    w.u8(window);
    w.u8(static_cast<uint8_t>(max_octet + 1));
    w.bytes(std::span<const uint8_t>(bitmap, static_cast<size_t>(max_octet + 1)));
  }
}

Result<std::vector<RRType>> read_type_bitmap(ByteReader& rd, size_t end_pos) {
  std::vector<RRType> types;
  while (rd.pos() < end_pos) {
    uint8_t window = LDP_TRY(rd.u8());
    uint8_t len = LDP_TRY(rd.u8());
    if (len == 0 || len > 32) return Err("invalid NSEC bitmap length");
    auto octets = LDP_TRY(rd.bytes(len));
    for (size_t i = 0; i < octets.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        if (octets[i] & (0x80 >> bit)) {
          types.push_back(static_cast<RRType>(window << 8 | (i * 8 + static_cast<size_t>(bit))));
        }
      }
    }
  }
  return types;
}

}  // namespace

Result<Rdata> Rdata::from_wire(RRType type, ByteReader& rd, size_t rdlength) {
  size_t end = rd.pos() + rdlength;
  if (end > rd.size()) return Err("RDATA extends past message");

  auto check_consumed = [&](Rdata r) -> Result<Rdata> {
    if (rd.pos() != end) return Err("RDATA length mismatch");
    return r;
  };

  switch (type) {
    case RRType::A: {
      if (rdlength != 4) return Err("A RDATA must be 4 bytes");
      uint32_t v = LDP_TRY(rd.u32());
      return Rdata{AData{Ip4{v}}};
    }
    case RRType::AAAA: {
      if (rdlength != 16) return Err("AAAA RDATA must be 16 bytes");
      auto b = LDP_TRY(rd.bytes(16));
      std::array<uint8_t, 16> arr;
      std::copy(b.begin(), b.end(), arr.begin());
      return Rdata{AaaaData{Ip6{arr}}};
    }
    case RRType::NS:
    case RRType::CNAME:
    case RRType::PTR: {
      Name n = LDP_TRY(read_name(rd));
      return check_consumed(Rdata{NameData{std::move(n)}});
    }
    case RRType::SOA: {
      SoaData soa;
      soa.mname = LDP_TRY(read_name(rd));
      soa.rname = LDP_TRY(read_name(rd));
      soa.serial = LDP_TRY(rd.u32());
      soa.refresh = LDP_TRY(rd.u32());
      soa.retry = LDP_TRY(rd.u32());
      soa.expire = LDP_TRY(rd.u32());
      soa.minimum = LDP_TRY(rd.u32());
      return check_consumed(Rdata{std::move(soa)});
    }
    case RRType::MX: {
      MxData mx;
      mx.preference = LDP_TRY(rd.u16());
      mx.exchange = LDP_TRY(read_name(rd));
      return check_consumed(Rdata{std::move(mx)});
    }
    case RRType::TXT: {
      TxtData txt;
      while (rd.pos() < end) {
        uint8_t len = LDP_TRY(rd.u8());
        auto b = LDP_TRY(rd.bytes(len));
        txt.strings.emplace_back(reinterpret_cast<const char*>(b.data()), b.size());
      }
      return check_consumed(Rdata{std::move(txt)});
    }
    case RRType::SRV: {
      SrvData srv;
      srv.priority = LDP_TRY(rd.u16());
      srv.weight = LDP_TRY(rd.u16());
      srv.port = LDP_TRY(rd.u16());
      srv.target = LDP_TRY(read_name(rd));
      return check_consumed(Rdata{std::move(srv)});
    }
    case RRType::DS: {
      DsData ds;
      ds.key_tag = LDP_TRY(rd.u16());
      ds.algorithm = LDP_TRY(rd.u8());
      ds.digest_type = LDP_TRY(rd.u8());
      ds.digest = LDP_TRY(rd.bytes_copy(end - rd.pos()));
      return check_consumed(Rdata{std::move(ds)});
    }
    case RRType::DNSKEY: {
      DnskeyData k;
      k.flags = LDP_TRY(rd.u16());
      k.protocol = LDP_TRY(rd.u8());
      k.algorithm = LDP_TRY(rd.u8());
      k.public_key = LDP_TRY(rd.bytes_copy(end - rd.pos()));
      return check_consumed(Rdata{std::move(k)});
    }
    case RRType::RRSIG: {
      RrsigData sig;
      sig.type_covered = static_cast<RRType>(LDP_TRY(rd.u16()));
      sig.algorithm = LDP_TRY(rd.u8());
      sig.labels = LDP_TRY(rd.u8());
      sig.original_ttl = LDP_TRY(rd.u32());
      sig.expiration = LDP_TRY(rd.u32());
      sig.inception = LDP_TRY(rd.u32());
      sig.key_tag = LDP_TRY(rd.u16());
      sig.signer = LDP_TRY(read_name(rd));
      if (rd.pos() > end) return Err("RRSIG signer past RDATA");
      sig.signature = LDP_TRY(rd.bytes_copy(end - rd.pos()));
      return check_consumed(Rdata{std::move(sig)});
    }
    case RRType::NSEC: {
      NsecData nsec;
      nsec.next = LDP_TRY(read_name(rd));
      if (rd.pos() > end) return Err("NSEC next past RDATA");
      nsec.types = LDP_TRY(read_type_bitmap(rd, end));
      return check_consumed(Rdata{std::move(nsec)});
    }
    case RRType::NAPTR: {
      NaptrData naptr;
      naptr.order = LDP_TRY(rd.u16());
      naptr.preference = LDP_TRY(rd.u16());
      auto read_cstr = [&rd]() -> Result<std::string> {
        uint8_t len = LDP_TRY(rd.u8());
        auto b = LDP_TRY(rd.bytes(len));
        return std::string(reinterpret_cast<const char*>(b.data()), b.size());
      };
      naptr.flags = LDP_TRY(read_cstr());
      naptr.services = LDP_TRY(read_cstr());
      naptr.regexp = LDP_TRY(read_cstr());
      naptr.replacement = LDP_TRY(read_name(rd));
      return check_consumed(Rdata{std::move(naptr)});
    }
    case RRType::CAA: {
      CaaData caa;
      caa.flags = LDP_TRY(rd.u8());
      uint8_t tag_len = LDP_TRY(rd.u8());
      if (tag_len == 0) return Err("empty CAA tag");
      auto tag = LDP_TRY(rd.bytes(tag_len));
      caa.tag.assign(reinterpret_cast<const char*>(tag.data()), tag.size());
      if (rd.pos() > end) return Err("CAA tag past RDATA");
      auto value = LDP_TRY(rd.bytes(end - rd.pos()));
      caa.value.assign(reinterpret_cast<const char*>(value.data()), value.size());
      return check_consumed(Rdata{std::move(caa)});
    }
    default: {
      OpaqueData op;
      op.bytes = LDP_TRY(rd.bytes_copy(rdlength));
      return Rdata{std::move(op)};
    }
  }
}

void Rdata::to_wire(RRType type, ByteWriter& w, NameCompressor* compressor) const {
  size_t len_pos = w.size();
  w.u16(0);  // RDLENGTH, patched below
  size_t start = w.size();

  auto put_name = [&](const Name& n, bool may_compress) {
    if (compressor != nullptr) {
      compressor->write_name(w, n, may_compress);
    } else {
      n.to_wire(w);
    }
  };

  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, AData>) {
          w.u32(v.addr.value());
        } else if constexpr (std::is_same_v<T, AaaaData>) {
          w.bytes(std::span<const uint8_t>(v.addr.bytes()));
        } else if constexpr (std::is_same_v<T, NameData>) {
          put_name(v.name, true);
        } else if constexpr (std::is_same_v<T, SoaData>) {
          put_name(v.mname, true);
          put_name(v.rname, true);
          w.u32(v.serial);
          w.u32(v.refresh);
          w.u32(v.retry);
          w.u32(v.expire);
          w.u32(v.minimum);
        } else if constexpr (std::is_same_v<T, MxData>) {
          w.u16(v.preference);
          put_name(v.exchange, true);
        } else if constexpr (std::is_same_v<T, TxtData>) {
          for (const auto& s : v.strings) {
            w.u8(static_cast<uint8_t>(s.size()));
            w.bytes(s);
          }
        } else if constexpr (std::is_same_v<T, SrvData>) {
          w.u16(v.priority);
          w.u16(v.weight);
          w.u16(v.port);
          put_name(v.target, false);
        } else if constexpr (std::is_same_v<T, DsData>) {
          w.u16(v.key_tag);
          w.u8(v.algorithm);
          w.u8(v.digest_type);
          w.bytes(std::span<const uint8_t>(v.digest));
        } else if constexpr (std::is_same_v<T, DnskeyData>) {
          w.u16(v.flags);
          w.u8(v.protocol);
          w.u8(v.algorithm);
          w.bytes(std::span<const uint8_t>(v.public_key));
        } else if constexpr (std::is_same_v<T, RrsigData>) {
          w.u16(static_cast<uint16_t>(v.type_covered));
          w.u8(v.algorithm);
          w.u8(v.labels);
          w.u32(v.original_ttl);
          w.u32(v.expiration);
          w.u32(v.inception);
          w.u16(v.key_tag);
          put_name(v.signer, false);
          w.bytes(std::span<const uint8_t>(v.signature));
        } else if constexpr (std::is_same_v<T, NsecData>) {
          put_name(v.next, false);
          write_type_bitmap(w, v.types);
        } else if constexpr (std::is_same_v<T, NaptrData>) {
          w.u16(v.order);
          w.u16(v.preference);
          for (const std::string* s : {&v.flags, &v.services, &v.regexp}) {
            w.u8(static_cast<uint8_t>(s->size()));
            w.bytes(*s);
          }
          put_name(v.replacement, false);
        } else if constexpr (std::is_same_v<T, CaaData>) {
          w.u8(v.flags);
          w.u8(static_cast<uint8_t>(v.tag.size()));
          w.bytes(v.tag);
          w.bytes(v.value);
        } else if constexpr (std::is_same_v<T, OpaqueData>) {
          w.bytes(std::span<const uint8_t>(v.bytes));
        }
      },
      value_);

  (void)type;
  w.patch_u16(len_pos, static_cast<uint16_t>(w.size() - start));
}

std::string Rdata::to_string(RRType type) const {
  (void)type;
  char buf[64];
  return std::visit(
      [&](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, AData>) {
          return v.addr.to_string();
        } else if constexpr (std::is_same_v<T, AaaaData>) {
          return v.addr.to_string();
        } else if constexpr (std::is_same_v<T, NameData>) {
          return v.name.to_string();
        } else if constexpr (std::is_same_v<T, SoaData>) {
          std::snprintf(buf, sizeof(buf), " %u %u %u %u %u", v.serial, v.refresh,
                        v.retry, v.expire, v.minimum);
          return v.mname.to_string() + " " + v.rname.to_string() + buf;
        } else if constexpr (std::is_same_v<T, MxData>) {
          return std::to_string(v.preference) + " " + v.exchange.to_string();
        } else if constexpr (std::is_same_v<T, TxtData>) {
          std::string out;
          for (const auto& s : v.strings) {
            if (!out.empty()) out += " ";
            out += quote_txt(s);
          }
          return out;
        } else if constexpr (std::is_same_v<T, SrvData>) {
          std::snprintf(buf, sizeof(buf), "%u %u %u ", v.priority, v.weight, v.port);
          return buf + v.target.to_string();
        } else if constexpr (std::is_same_v<T, DsData>) {
          std::snprintf(buf, sizeof(buf), "%u %u %u ", v.key_tag, v.algorithm,
                        v.digest_type);
          return buf + to_hex(v.digest);
        } else if constexpr (std::is_same_v<T, DnskeyData>) {
          std::snprintf(buf, sizeof(buf), "%u %u %u ", v.flags, v.protocol, v.algorithm);
          return buf + base64_encode(v.public_key);
        } else if constexpr (std::is_same_v<T, RrsigData>) {
          std::snprintf(buf, sizeof(buf), " %u %u %u %u %u %u ", v.algorithm, v.labels,
                        v.original_ttl, v.expiration, v.inception, v.key_tag);
          return rrtype_to_string(v.type_covered) + buf + v.signer.to_string() + " " +
                 base64_encode(v.signature);
        } else if constexpr (std::is_same_v<T, NsecData>) {
          std::string out = v.next.to_string();
          for (RRType t : v.types) out += " " + rrtype_to_string(t);
          return out;
        } else if constexpr (std::is_same_v<T, NaptrData>) {
          std::snprintf(buf, sizeof(buf), "%u %u ", v.order, v.preference);
          return buf + quote_txt(v.flags) + " " + quote_txt(v.services) + " " +
                 quote_txt(v.regexp) + " " + v.replacement.to_string();
        } else if constexpr (std::is_same_v<T, CaaData>) {
          return std::to_string(v.flags) + " " + v.tag + " " + quote_txt(v.value);
        } else if constexpr (std::is_same_v<T, OpaqueData>) {
          return "\\# " + std::to_string(v.bytes.size()) + " " + to_hex(v.bytes);
        }
      },
      value_);
}

Result<Rdata> Rdata::parse(RRType type, const std::vector<std::string_view>& toks) {
  switch (type) {
    case RRType::A: {
      if (toks.size() != 1) return Err("A takes one address");
      return Rdata{AData{LDP_TRY(Ip4::parse(toks[0]))}};
    }
    case RRType::AAAA: {
      if (toks.size() != 1) return Err("AAAA takes one address");
      return Rdata{AaaaData{LDP_TRY(Ip6::parse(toks[0]))}};
    }
    case RRType::NS:
    case RRType::CNAME:
    case RRType::PTR: {
      if (toks.size() != 1) return Err("expected one name");
      return Rdata{NameData{LDP_TRY(Name::parse(toks[0]))}};
    }
    case RRType::SOA: {
      if (toks.size() != 7) return Err("SOA takes 7 fields");
      SoaData soa;
      soa.mname = LDP_TRY(tok_name(toks, 0));
      soa.rname = LDP_TRY(tok_name(toks, 1));
      soa.serial = static_cast<uint32_t>(LDP_TRY(tok_u64(toks, 2)));
      soa.refresh = static_cast<uint32_t>(LDP_TRY(tok_u64(toks, 3)));
      soa.retry = static_cast<uint32_t>(LDP_TRY(tok_u64(toks, 4)));
      soa.expire = static_cast<uint32_t>(LDP_TRY(tok_u64(toks, 5)));
      soa.minimum = static_cast<uint32_t>(LDP_TRY(tok_u64(toks, 6)));
      return Rdata{std::move(soa)};
    }
    case RRType::MX: {
      if (toks.size() != 2) return Err("MX takes 2 fields");
      MxData mx;
      mx.preference = static_cast<uint16_t>(LDP_TRY(tok_u64(toks, 0)));
      mx.exchange = LDP_TRY(tok_name(toks, 1));
      return Rdata{std::move(mx)};
    }
    case RRType::TXT: {
      if (toks.empty()) return Err("TXT needs at least one string");
      TxtData txt;
      for (auto t : toks) txt.strings.push_back(LDP_TRY(unquote_txt(t)));
      return Rdata{std::move(txt)};
    }
    case RRType::SRV: {
      if (toks.size() != 4) return Err("SRV takes 4 fields");
      SrvData srv;
      srv.priority = static_cast<uint16_t>(LDP_TRY(tok_u64(toks, 0)));
      srv.weight = static_cast<uint16_t>(LDP_TRY(tok_u64(toks, 1)));
      srv.port = static_cast<uint16_t>(LDP_TRY(tok_u64(toks, 2)));
      srv.target = LDP_TRY(tok_name(toks, 3));
      return Rdata{std::move(srv)};
    }
    case RRType::DS: {
      if (toks.size() < 4) return Err("DS takes 4 fields");
      DsData ds;
      ds.key_tag = static_cast<uint16_t>(LDP_TRY(tok_u64(toks, 0)));
      ds.algorithm = static_cast<uint8_t>(LDP_TRY(tok_u64(toks, 1)));
      ds.digest_type = static_cast<uint8_t>(LDP_TRY(tok_u64(toks, 2)));
      std::string hex;
      for (size_t i = 3; i < toks.size(); ++i) hex += toks[i];
      ds.digest = LDP_TRY(from_hex(hex));
      return Rdata{std::move(ds)};
    }
    case RRType::DNSKEY: {
      if (toks.size() < 4) return Err("DNSKEY takes 4 fields");
      DnskeyData k;
      k.flags = static_cast<uint16_t>(LDP_TRY(tok_u64(toks, 0)));
      k.protocol = static_cast<uint8_t>(LDP_TRY(tok_u64(toks, 1)));
      k.algorithm = static_cast<uint8_t>(LDP_TRY(tok_u64(toks, 2)));
      std::string b64;
      for (size_t i = 3; i < toks.size(); ++i) b64 += toks[i];
      k.public_key = LDP_TRY(base64_decode(b64));
      return Rdata{std::move(k)};
    }
    case RRType::RRSIG: {
      if (toks.size() < 9) return Err("RRSIG takes 9 fields");
      RrsigData sig;
      sig.type_covered = LDP_TRY(rrtype_from_string(toks[0]));
      sig.algorithm = static_cast<uint8_t>(LDP_TRY(tok_u64(toks, 1)));
      sig.labels = static_cast<uint8_t>(LDP_TRY(tok_u64(toks, 2)));
      sig.original_ttl = static_cast<uint32_t>(LDP_TRY(tok_u64(toks, 3)));
      sig.expiration = static_cast<uint32_t>(LDP_TRY(tok_u64(toks, 4)));
      sig.inception = static_cast<uint32_t>(LDP_TRY(tok_u64(toks, 5)));
      sig.key_tag = static_cast<uint16_t>(LDP_TRY(tok_u64(toks, 6)));
      sig.signer = LDP_TRY(tok_name(toks, 7));
      std::string b64;
      for (size_t i = 8; i < toks.size(); ++i) b64 += toks[i];
      sig.signature = LDP_TRY(base64_decode(b64));
      return Rdata{std::move(sig)};
    }
    case RRType::NAPTR: {
      if (toks.size() != 6) return Err("NAPTR takes 6 fields");
      NaptrData naptr;
      naptr.order = static_cast<uint16_t>(LDP_TRY(tok_u64(toks, 0)));
      naptr.preference = static_cast<uint16_t>(LDP_TRY(tok_u64(toks, 1)));
      naptr.flags = LDP_TRY(unquote_txt(toks[2]));
      naptr.services = LDP_TRY(unquote_txt(toks[3]));
      naptr.regexp = LDP_TRY(unquote_txt(toks[4]));
      naptr.replacement = LDP_TRY(tok_name(toks, 5));
      return Rdata{std::move(naptr)};
    }
    case RRType::CAA: {
      if (toks.size() != 3) return Err("CAA takes 3 fields");
      CaaData caa;
      caa.flags = static_cast<uint8_t>(LDP_TRY(tok_u64(toks, 0)));
      caa.tag = std::string(toks[1]);
      caa.value = LDP_TRY(unquote_txt(toks[2]));
      return Rdata{std::move(caa)};
    }
    case RRType::NSEC: {
      if (toks.empty()) return Err("NSEC takes a next name");
      NsecData nsec;
      nsec.next = LDP_TRY(tok_name(toks, 0));
      for (size_t i = 1; i < toks.size(); ++i)
        nsec.types.push_back(LDP_TRY(rrtype_from_string(toks[i])));
      return Rdata{std::move(nsec)};
    }
    default: {
      // RFC 3597 generic form: \# <length> <hex...>
      if (toks.size() >= 2 && toks[0] == "\\#") {
        uint64_t len = LDP_TRY(tok_u64(toks, 1));
        std::string hex;
        for (size_t i = 2; i < toks.size(); ++i) hex += toks[i];
        OpaqueData op;
        op.bytes = LDP_TRY(from_hex(hex));
        if (op.bytes.size() != len) return Err("\\# length mismatch");
        return Rdata{std::move(op)};
      }
      return Err("cannot parse RDATA for " + rrtype_to_string(type));
    }
  }
}

bool Rdata::operator==(const Rdata& o) const {
  if (value_.index() != o.value_.index()) return false;
  return std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        const auto& b = std::get<T>(o.value_);
        if constexpr (std::is_same_v<T, AData>) {
          return a.addr == b.addr;
        } else if constexpr (std::is_same_v<T, AaaaData>) {
          return a.addr == b.addr;
        } else if constexpr (std::is_same_v<T, NameData>) {
          return a.name == b.name;
        } else if constexpr (std::is_same_v<T, SoaData>) {
          return a.mname == b.mname && a.rname == b.rname && a.serial == b.serial &&
                 a.refresh == b.refresh && a.retry == b.retry && a.expire == b.expire &&
                 a.minimum == b.minimum;
        } else if constexpr (std::is_same_v<T, MxData>) {
          return a.preference == b.preference && a.exchange == b.exchange;
        } else if constexpr (std::is_same_v<T, TxtData>) {
          return a.strings == b.strings;
        } else if constexpr (std::is_same_v<T, SrvData>) {
          return a.priority == b.priority && a.weight == b.weight && a.port == b.port &&
                 a.target == b.target;
        } else if constexpr (std::is_same_v<T, DsData>) {
          return a.key_tag == b.key_tag && a.algorithm == b.algorithm &&
                 a.digest_type == b.digest_type && a.digest == b.digest;
        } else if constexpr (std::is_same_v<T, DnskeyData>) {
          return a.flags == b.flags && a.protocol == b.protocol &&
                 a.algorithm == b.algorithm && a.public_key == b.public_key;
        } else if constexpr (std::is_same_v<T, RrsigData>) {
          return a.type_covered == b.type_covered && a.algorithm == b.algorithm &&
                 a.labels == b.labels && a.original_ttl == b.original_ttl &&
                 a.expiration == b.expiration && a.inception == b.inception &&
                 a.key_tag == b.key_tag && a.signer == b.signer &&
                 a.signature == b.signature;
        } else if constexpr (std::is_same_v<T, NsecData>) {
          return a.next == b.next && a.types == b.types;
        } else if constexpr (std::is_same_v<T, NaptrData>) {
          return a.order == b.order && a.preference == b.preference &&
                 a.flags == b.flags && a.services == b.services &&
                 a.regexp == b.regexp && a.replacement == b.replacement;
        } else if constexpr (std::is_same_v<T, CaaData>) {
          return a.flags == b.flags && a.tag == b.tag && a.value == b.value;
        } else if constexpr (std::is_same_v<T, OpaqueData>) {
          return a.bytes == b.bytes;
        }
      },
      value_);
}

}  // namespace ldp::dns
