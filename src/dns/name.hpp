// Domain names (RFC 1035 §3.1): a sequence of labels, case-insensitive,
// max 255 octets wire length, 63 octets per label. Names are the primary key
// of every DNS data structure here (zones, caches, compression maps), so the
// representation favours cheap comparison: labels stored lowercased
// back-to-back in one string with a separate length index.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ldp::dns {

class Name {
 public:
  /// The root name (zero labels).
  Name() = default;

  /// Parse presentation format ("www.example.com", trailing dot optional,
  /// "." is the root). Handles \DDD escapes and \X quoting.
  static Result<Name> parse(std::string_view text);

  /// Decode from wire format at the reader's cursor, following compression
  /// pointers (which may point anywhere earlier in the message). The cursor
  /// ends just past this name's encoding, regardless of pointer chasing.
  static Result<Name> from_wire(ByteReader& rd);

  /// Append one label (raw bytes, already unescaped). Fails if the label is
  /// empty, exceeds 63 octets, or would push the name past 255 octets.
  Result<void> append_label(std::string_view label);

  size_t label_count() const { return offsets_.size(); }
  bool is_root() const { return offsets_.empty(); }

  /// Label i, 0 = leftmost (least significant). Lowercased raw bytes.
  std::string_view label(size_t i) const;

  /// Wire-format length in octets (labels + length bytes + root byte).
  size_t wire_length() const { return storage_.size() + offsets_.size() + 1; }

  /// Presentation format with trailing dot ("www.example.com.", root = ".").
  std::string to_string() const;

  /// Encode without compression.
  void to_wire(ByteWriter& w) const;

  /// True if this name equals `other` or is underneath it
  /// (www.example.com is_subdomain_of example.com and of the root).
  bool is_subdomain_of(const Name& other) const;

  /// Name with the leftmost label removed. Precondition: !is_root().
  Name parent() const;

  /// The rightmost `count` labels ("example.com" for suffix(2) of
  /// "www.example.com"). Precondition: count <= label_count().
  Name suffix(size_t count) const;

  /// New name = label + this ("www" prepended to example.com).
  Result<Name> with_prefix_label(std::string_view label) const;

  /// Number of trailing labels shared with `other` (root counts as 0 here;
  /// used to find the closest enclosing zone).
  size_t common_suffix_labels(const Name& other) const;

  bool operator==(const Name& o) const { return storage_ == o.storage_ && offsets_ == o.offsets_; }
  bool operator!=(const Name& o) const { return !(*this == o); }
  /// Canonical DNS ordering (RFC 4034 §6.1): by label from the right.
  bool operator<(const Name& o) const;

  size_t hash() const;

 private:
  // Labels lowercased, concatenated without separators; offsets_[i] is the
  // start of label i in storage_. Lengths are implied by the next offset.
  std::string storage_;
  std::vector<uint16_t> offsets_;

  size_t label_len(size_t i) const {
    return (i + 1 < offsets_.size() ? offsets_[i + 1] : storage_.size()) - offsets_[i];
  }
};

struct NameHash {
  size_t operator()(const Name& n) const { return n.hash(); }
};

/// Allocation-free wire decode for hot paths: appends the name's
/// *uncompressed, lowercased* wire encoding (length-prefixed labels + root
/// byte) to `out`, following compression pointers with the same hardening
/// as Name::from_wire (both share one label walker, so the hostile-input
/// defenses cannot drift apart). The caller owns and reuses the buffer;
/// steady-state decoding touches no allocator. On failure `out` is restored
/// to its incoming length. The cursor ends just past the name's encoding,
/// exactly like Name::from_wire.
Result<void> decode_name_wire(ByteReader& rd, std::string& out);

}  // namespace ldp::dns
