#include "dns/types.hpp"

#include <utility>

#include "util/strings.hpp"

namespace ldp::dns {

namespace {
constexpr std::pair<RRType, const char*> kTypeNames[] = {
    {RRType::A, "A"},         {RRType::NS, "NS"},       {RRType::CNAME, "CNAME"},
    {RRType::SOA, "SOA"},     {RRType::PTR, "PTR"},     {RRType::MX, "MX"},
    {RRType::TXT, "TXT"},     {RRType::AAAA, "AAAA"},   {RRType::SRV, "SRV"},
    {RRType::NAPTR, "NAPTR"}, {RRType::DS, "DS"},       {RRType::RRSIG, "RRSIG"},
    {RRType::NSEC, "NSEC"},   {RRType::DNSKEY, "DNSKEY"}, {RRType::NSEC3, "NSEC3"},
    {RRType::OPT, "OPT"},     {RRType::CAA, "CAA"},     {RRType::ANY, "ANY"},
};
}  // namespace

std::string rrtype_to_string(RRType t) {
  for (auto [type, name] : kTypeNames)
    if (type == t) return name;
  return "TYPE" + std::to_string(static_cast<uint16_t>(t));
}

Result<RRType> rrtype_from_string(std::string_view s) {
  for (auto [type, name] : kTypeNames)
    if (iequals(s, name)) return type;
  if (s.size() > 4 && iequals(s.substr(0, 4), "TYPE")) {
    uint64_t v = LDP_TRY(parse_u64(s.substr(4)));
    if (v > 0xffff) return Err("TYPE value out of range: " + std::string(s));
    return static_cast<RRType>(v);
  }
  return Err("unknown RR type: " + std::string(s));
}

std::string rrclass_to_string(RRClass c) {
  switch (c) {
    case RRClass::IN: return "IN";
    case RRClass::CH: return "CH";
    case RRClass::HS: return "HS";
    case RRClass::ANY: return "ANY";
  }
  return "CLASS" + std::to_string(static_cast<uint16_t>(c));
}

Result<RRClass> rrclass_from_string(std::string_view s) {
  if (iequals(s, "IN")) return RRClass::IN;
  if (iequals(s, "CH")) return RRClass::CH;
  if (iequals(s, "HS")) return RRClass::HS;
  if (iequals(s, "ANY")) return RRClass::ANY;
  if (s.size() > 5 && iequals(s.substr(0, 5), "CLASS")) {
    uint64_t v = LDP_TRY(parse_u64(s.substr(5)));
    if (v > 0xffff) return Err("CLASS value out of range: " + std::string(s));
    return static_cast<RRClass>(v);
  }
  return Err("unknown RR class: " + std::string(s));
}

std::string rcode_to_string(Rcode r) {
  switch (r) {
    case Rcode::NoError: return "NOERROR";
    case Rcode::FormErr: return "FORMERR";
    case Rcode::ServFail: return "SERVFAIL";
    case Rcode::NXDomain: return "NXDOMAIN";
    case Rcode::NotImp: return "NOTIMP";
    case Rcode::Refused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<uint8_t>(r));
}

std::string opcode_to_string(Opcode o) {
  switch (o) {
    case Opcode::Query: return "QUERY";
    case Opcode::IQuery: return "IQUERY";
    case Opcode::Status: return "STATUS";
    case Opcode::Notify: return "NOTIFY";
    case Opcode::Update: return "UPDATE";
  }
  return "OPCODE" + std::to_string(static_cast<uint8_t>(o));
}

}  // namespace ldp::dns
