#include "server/sharded_frontend.hpp"

namespace ldp::server {

Result<std::unique_ptr<ShardedServer>> ShardedServer::start(AuthServer server,
                                                            FrontendConfig config,
                                                            size_t shards) {
  if (shards == 0) shards = 1;
  auto srv = std::unique_ptr<ShardedServer>(new ShardedServer(std::move(server)));

  // More than one shard requires the whole group to opt into SO_REUSEPORT;
  // a lone shard keeps whatever the caller configured so its socket setup
  // (and therefore its counters) matches the single-loop path exactly.
  if (shards > 1) config.reuse_port = true;

  // Shard 0 resolves the port (the caller may have asked for port 0); the
  // rest bind the concrete port and join the group. All registration with
  // a shard's loop happens here, before that loop's thread exists, so no
  // loop is ever touched from two threads.
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    FrontendConfig cfg = config;
    cfg.bind.port = i == 0 ? config.bind.port : srv->endpoint_.port;
    auto fe = ServerFrontend::start(shard->loop, srv->auth_, cfg);
    if (!fe.ok()) return Err("shard " + std::to_string(i) + ": " + fe.error().message);
    shard->frontend = std::move(*fe);
    if (i == 0) srv->endpoint_ = shard->frontend->endpoint();
    srv->shards_.push_back(std::move(shard));
  }
  for (auto& shard : srv->shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([raw] {
      raw->loop.run();
      // Last act on the shard thread: snapshot its thread-local syscall
      // tally. The joiner reads it after thread::join (happens-before), so
      // the merge needs no locks.
      raw->io = net::thread_io_counters();
    });
  }
  return srv;
}

ShardedServer::~ShardedServer() { stop(); }

void ShardedServer::request_stop() {
  for (auto& shard : shards_) shard->loop.stop();
}

void ShardedServer::wait() {
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

const ShardedExitReport& ShardedServer::stop() {
  if (stopped_) return report_;
  stopped_ = true;
  request_stop();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Merge barrier: every shard thread is joined, so the shard-local books
  // are plain memory now. Shut each frontend down first so connections
  // still open when the loop stopped are closed and counted (Shutdown) —
  // keeping accepted == established + closed_total() true in the merge.
  for (auto& shard : shards_) {
    shard->frontend->shutdown();
    ShardReport rep;
    rep.connections = shard->frontend->connections();
    rep.impairments = shard->frontend->impairments();
    if (const ResponseCache* cache = shard->frontend->response_cache())
      rep.cache = cache->stats();
    rep.io = shard->io;
    report_.connections.merge(rep.connections);
    report_.impairments.merge(rep.impairments);
    report_.cache.hits += rep.cache.hits;
    report_.cache.misses += rep.cache.misses;
    report_.cache.bypasses += rep.cache.bypasses;
    report_.cache.insertions += rep.cache.insertions;
    report_.cache.invalidations += rep.cache.invalidations;
    report_.io.merge(rep.io);
    report_.per_shard.push_back(std::move(rep));
  }
  return report_;
}

}  // namespace ldp::server
