// Response template cache for the UDP hot path (§3's "minimize per-query
// work" requirement): the first answer for a (qname, qtype, EDNS/DO,
// size-limit) shape is rendered once through the full AuthServer pipeline
// and kept as wire bytes; subsequent identical queries patch only the DNS
// ID and the echoed RD bit into a copy of the template. Because
// Message::make_response copies the *parsed* (lowercased) question into
// every reply, the slow path is already case-canonical — so a patched
// template is byte-identical to what the slow path would produce, and name
// compression offsets inside the template are automatically safe (nothing
// that varies per query sits before them).
//
// The cache only fronts deterministic queries: opcode QUERY, exactly one
// IN-class question, empty answer/authority sections, and at most a bare
// OPT record (no EDNS options — cookies vary per client). Everything else
// bypasses to the slow path. Validity is keyed on the server's zone-data
// revision; when it moves, the cache drops wholesale.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.hpp"

namespace ldp::server {

class ResponseCache {
 public:
  /// `max_entries` bounds the template store (LRU eviction past it);
  /// 0 disables the cache (every probe reports Bypass).
  explicit ResponseCache(size_t max_entries) : max_entries_(max_entries) {}

  enum class Outcome : uint8_t {
    Hit,     ///< reply_out holds the patched wire bytes
    Miss,    ///< cacheable shape, not present: render slow-path, then insert()
    Bypass,  ///< not a cacheable shape: slow path only
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t bypasses = 0;
    uint64_t insertions = 0;
    uint64_t invalidations = 0;  ///< wholesale drops on revision change
  };

  /// Compare against the zone-data revision the entries were rendered
  /// under; drop everything when it moved. Call before each probe (two
  /// loads in the steady state).
  void sync_revision(uint64_t revision);

  /// Classify `query` and, on a hit, write the patched reply into
  /// `reply_out` (reusing its capacity) and the entry's NXDOMAIN flag into
  /// `nxdomain_out`. `udp_limit` is the transport's payload limit before
  /// EDNS adjustment, exactly as passed to AuthServer::answer_wire — it is
  /// part of the key because it changes truncation.
  Outcome probe(std::span<const uint8_t> query, size_t udp_limit,
                std::vector<uint8_t>& reply_out, bool& nxdomain_out);

  /// Store the slow-path render for the key of the immediately preceding
  /// Miss probe. Skips replies the template transform cannot reproduce
  /// (header-only FORMERR salvage does not echo the question or RD bit).
  void insert(std::span<const uint8_t> reply);

  const Stats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::vector<uint8_t> wire;  ///< pre-rendered reply (ID/RD patched per hit)
    bool nxdomain = false;      ///< the render's RCODE was NXDOMAIN
    std::list<std::string>::iterator lru;
  };

  size_t max_entries_;
  uint64_t revision_ = 0;
  // Key of the last Miss probe, pending until insert() (same-call-site
  // protocol: probe, render, insert).
  bool have_pending_ = false;
  uint8_t pending_rd_ = 0;
  std::string pending_key_;
  std::string key_scratch_;  ///< reused per probe; no steady-state allocation
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recently used
  Stats stats_;
};

}  // namespace ldp::server
