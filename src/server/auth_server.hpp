// Authoritative server core: the protocol-agnostic question-answering
// engine behind the meta-DNS-server (§2.4). Given a query and the client
// source address, it selects a view (split-horizon), routes to the closest
// enclosing zone, runs the RFC 1034 lookup, and assembles the response —
// including the DNSSEC records the §5.1 experiment sizes.
//
// DNSSEC substitution note: real DNSSEC signs zones offline with RSA keys.
// The experiments only need the *size* effect of RRSIGs on responses, so a
// signed AuthServer synthesizes RRSIG records with correctly-sized
// signature fields (ZSK bits / 8) at answer time; a ZSK rollover doubles
// the signatures, matching the bandwidth effect measured in Figure 10.
#pragma once

#include <atomic>
#include <memory>

#include "zone/view.hpp"

namespace ldp::server {

using dns::Message;

struct DnssecConfig {
  bool zone_signed = false;
  size_t zsk_bits = 1024;   ///< signature size driver (Figure 10: 1024/2048)
  bool rollover = false;    ///< ZSK rollover: both keys sign, 2 RRSIGs/set
};

struct ServerConfig {
  DnssecConfig dnssec;
  /// Answer CNAMEs by chasing the chain inside the zone (real servers do).
  bool chase_cname = true;
  /// Cap on CNAME chain length to stop loops.
  int max_cname_chain = 8;
  /// CDN-style behaviour (§2.3 future work): rotate the record order of
  /// multi-record answer RRsets per query, like load-balancing authorities
  /// that hand different first-answers to successive queries.
  bool rotate_answers = false;
};

struct ServerStats {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> refused{0};
  std::atomic<uint64_t> formerr{0};
  std::atomic<uint64_t> nxdomain{0};
  std::atomic<uint64_t> response_bytes{0};  ///< Figure 10's bandwidth input
};

class AuthServer {
 public:
  explicit AuthServer(ServerConfig config = {});
  AuthServer(AuthServer&&) = default;
  AuthServer& operator=(AuthServer&&) = default;

  /// The split-horizon view set. Configure one view per emulated
  /// nameserver group (match_clients = that server's public addresses); an
  /// unrestricted view acts as the default.
  zone::ViewSet& views() { return views_; }
  const zone::ViewSet& views() const { return views_; }

  /// Convenience for single-server setups: one catch-all view.
  zone::ZoneSet& default_zones();

  /// Answer a parsed query. Always produces a response message (errors
  /// become FORMERR/NOTIMP/REFUSED responses, as a real server would).
  Message answer(const Message& query, const IpAddr& client) const;

  /// Wire-to-wire convenience with UDP truncation semantics: `udp_limit`
  /// of 0 means connection transport (no size limit). Undecodable queries
  /// yield nullopt (a real server drops what it cannot parse a header
  /// from).
  std::optional<std::vector<uint8_t>> answer_wire(std::span<const uint8_t> query,
                                                  const IpAddr& client,
                                                  size_t udp_limit) const;

  const ServerStats& stats() const { return *stats_; }
  ServerConfig& config() { return config_; }
  const ServerConfig& config() const { return config_; }

  /// Zone-data revision (ViewSet::revision passthrough): response caches
  /// drop pre-rendered entries when this moves.
  uint64_t revision() const { return views_.revision(); }

  /// Account one reply served from a pre-rendered template without running
  /// answer(). Keeps the query/response/byte counters (and the nxdomain
  /// tally fig9-style reports read) honest on the cached hot path.
  void note_cached_response(size_t response_bytes, bool nxdomain) const {
    stats_->queries.fetch_add(1, std::memory_order_relaxed);
    stats_->responses.fetch_add(1, std::memory_order_relaxed);
    stats_->response_bytes.fetch_add(response_bytes, std::memory_order_relaxed);
    if (nxdomain) stats_->nxdomain.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  Message answer_from_zone(const zone::Zone& zone, const Message& query) const;
  void add_dnssec_records(Message& response, bool nxdomain_proof, bool referral,
                          const dns::Name& signer) const;

  ServerConfig config_;
  zone::ViewSet views_;
  zone::View* default_view_ = nullptr;
  // Heap-allocated so AuthServer stays movable despite the atomics.
  std::unique_ptr<ServerStats> stats_;
  std::unique_ptr<std::atomic<uint64_t>> rotation_;  ///< CDN rotation cursor
};

}  // namespace ldp::server
