// Socket frontend for AuthServer: UDP + framed-TCP listeners on an
// EventLoop, with the connection management knobs the §5.2 experiments
// turn — per-connection idle timeout (5–40 s sweep) and connection
// accounting (established count, lifetime totals, close reasons).
#pragma once

#include <list>
#include <memory>

#include "fault/fault.hpp"
#include "net/event_loop.hpp"
#include "net/impaired.hpp"
#include "net/socket.hpp"
#include "server/auth_server.hpp"

namespace ldp::server {

struct FrontendConfig {
  Endpoint bind{IpAddr{Ip4{127, 0, 0, 1}}, 0};  ///< port 0 = ephemeral
  /// Idle-connection timeout (the Figures 11/13/14 sweep variable).
  TimeNs tcp_idle_timeout = 20 * kSecond;
  /// How often the idle sweep runs.
  TimeNs sweep_interval = kSecond;
  size_t udp_payload_limit = 512;
  /// Egress impairment: replies leave through fault streams "srv:udp" /
  /// "srv:tcp" (a lossy link is symmetric for query/response accounting —
  /// an eaten reply and an eaten query both look like a lost exchange to
  /// the client). A TCP link-flap drop closes the connection, exercising
  /// client reconnect paths. nullopt = clean link.
  std::optional<fault::FaultSpec> fault;
};

struct ConnectionStats {
  uint64_t accepted = 0;
  uint64_t closed_idle = 0;
  uint64_t closed_by_peer = 0;
  size_t established = 0;  ///< currently open
  size_t peak_established = 0;
};

/// One running server endpoint (UDP + TCP on the same port).
class ServerFrontend {
 public:
  /// Binds both sockets and registers with the loop. The AuthServer must
  /// outlive the frontend.
  static Result<std::unique_ptr<ServerFrontend>> start(net::EventLoop& loop,
                                                       AuthServer& server,
                                                       FrontendConfig config);
  ~ServerFrontend();

  ServerFrontend(const ServerFrontend&) = delete;
  ServerFrontend& operator=(const ServerFrontend&) = delete;

  /// Actual bound endpoint (resolves port 0).
  const Endpoint& endpoint() const { return endpoint_; }

  const ConnectionStats& connections() const { return conn_stats_; }

  /// Combined fault-layer accounting for both egress streams (all zeroes
  /// when the frontend runs unimpaired).
  fault::ImpairmentCounters impairments() const;

  /// Close listeners and all connections (also done by the destructor).
  void shutdown();

 private:
  ServerFrontend(net::EventLoop& loop, AuthServer& server, FrontendConfig config)
      : loop_(loop), server_(server), config_(config) {}

  struct Connection {
    net::TcpStream stream;
    TimeNs last_activity;
    Connection(net::TcpStream s, TimeNs t) : stream(std::move(s)), last_activity(t) {}
  };

  void on_udp_readable();
  void on_tcp_acceptable();
  void on_conn_readable(std::list<Connection>::iterator it);
  void close_connection(std::list<Connection>::iterator it, bool idle);
  void sweep_idle();

  net::EventLoop& loop_;
  AuthServer& server_;
  FrontendConfig config_;
  Endpoint endpoint_;
  std::unique_ptr<fault::FaultStream> udp_fault_;  // must outlive udp_
  std::unique_ptr<fault::FaultStream> tcp_fault_;
  std::optional<net::ImpairedUdpSocket> udp_;
  std::optional<net::TcpListener> listener_;
  std::list<Connection> connections_;
  ConnectionStats conn_stats_;
  net::EventLoop::TimerId sweep_timer_ = 0;
  bool shut_down_ = false;
};

}  // namespace ldp::server
