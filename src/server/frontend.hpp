// Socket frontend for AuthServer: UDP + framed-TCP listeners on an
// EventLoop, with the connection management knobs the §5.2 experiments
// turn — per-connection idle timeout (5–40 s sweep) and connection
// accounting — plus the resilience layer a production server needs when
// connection state runs out: admission control (max_connections with LRU
// eviction, per-client quotas), slow-client defense (read/write deadlines,
// bounded partial-frame buffers), and adaptive overload degradation
// (refuse/drop/truncate with hysteresis). See server/limits.hpp for the
// knobs and DESIGN.md §Server-side resilience for the state machines.
#pragma once

#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include <optional>

#include "fault/fault.hpp"
#include "net/event_loop.hpp"
#include "net/impaired.hpp"
#include "net/socket.hpp"
#include "server/auth_server.hpp"
#include "server/limits.hpp"
#include "server/response_cache.hpp"

namespace ldp::server {

struct FrontendConfig {
  Endpoint bind{IpAddr{Ip4{127, 0, 0, 1}}, 0};  ///< port 0 = ephemeral
  /// Join an SO_REUSEPORT group on both sockets: N frontends (one per
  /// shard thread, each on its own EventLoop) bind the same port and the
  /// kernel spreads datagrams/accepts across them. Every member must set
  /// this — see server::ShardedServer for the fan-out that uses it.
  bool reuse_port = false;
  /// Idle-connection timeout (the Figures 11/13/14 sweep variable).
  TimeNs tcp_idle_timeout = 20 * kSecond;
  /// How often the idle/deadline sweep runs.
  TimeNs sweep_interval = kSecond;
  size_t udp_payload_limit = 512;
  /// Admission control and slow-client defense (zeroes = unhardened).
  LimitsConfig limits;
  /// Overload degradation policy (None = never degrade).
  OverloadConfig overload;
  /// Batched UDP I/O: drain queries with recvmmsg and flush the replies of
  /// each inbound batch with one sendmmsg, instead of one syscall per
  /// datagram. Off = the scalar pre-batching path (kept for A/B measurement
  /// and the scalar/batched equivalence tests).
  bool batched_udp = true;
  /// Response template cache entries (0 disables): identical UDP queries
  /// are answered from a pre-rendered template with only the DNS ID and RD
  /// bit patched. Automatically bypassed for rotate_answers servers and
  /// split-horizon view sets, where clients may legitimately receive
  /// different bytes for the same question.
  size_t response_cache_entries = 1024;
  /// Egress impairment: replies leave through fault streams "srv:udp" /
  /// "srv:tcp" (a lossy link is symmetric for query/response accounting —
  /// an eaten reply and an eaten query both look like a lost exchange to
  /// the client). A TCP link-flap drop closes the connection, exercising
  /// client reconnect paths. nullopt = clean link.
  std::optional<fault::FaultSpec> fault;
};

/// Why a TCP connection was closed — each reason is its own counter so the
/// established gauge is auditable against the close totals (see
/// ConnectionStats::consistent()).
enum class CloseReason : uint8_t {
  Idle,        ///< idle-timeout sweep (the §5.2 sweep variable)
  Peer,        ///< orderly close by the client
  Error,       ///< socket error, failed send, or injected link-down
  EvictedLru,  ///< closed to admit a new connection at max_connections
  Deadline,    ///< slow-client read deadline: partial frame, no progress
  WriteStall,  ///< write deadline: peer stopped reading its replies
  Overflow,    ///< partial-frame buffer exceeded max_partial_bytes
  Shutdown,    ///< frontend shutdown closed it
};

struct ConnectionStats {
  uint64_t accepted = 0;  ///< admitted connections (excludes quota refusals)
  uint64_t closed_idle = 0;
  uint64_t closed_by_peer = 0;
  uint64_t closed_error = 0;
  uint64_t closed_shutdown = 0;
  // --- resilience layer ---------------------------------------------------
  uint64_t evicted_lru = 0;       ///< LRU closes to stay under max_connections
  uint64_t refused_quota = 0;     ///< accepts closed for per-client quota
  uint64_t deadline_closed = 0;   ///< slow-client read-deadline closes
  uint64_t write_stall_closed = 0;
  uint64_t overflow_closed = 0;   ///< partial-buffer cap closes
  uint64_t refused_overload = 0;  ///< queries answered REFUSED while overloaded
  uint64_t dropped_overload = 0;  ///< queries dropped while overloaded
  uint64_t truncated_overload = 0;  ///< queries answered TC=1 while overloaded
  uint64_t overload_entered = 0;  ///< high-watermark crossings
  uint64_t overload_exited = 0;   ///< recoveries past the low watermark
  size_t established = 0;  ///< currently open
  size_t peak_established = 0;

  uint64_t closed_total() const {
    return closed_idle + closed_by_peer + closed_error + closed_shutdown +
           evicted_lru + deadline_closed + write_stall_closed + overflow_closed;
  }
  /// Accounting invariant: every admitted connection is either still
  /// established or counted under exactly one close reason.
  bool consistent() const { return accepted == established + closed_total(); }

  /// Fold another shard's book into this one (merge-after-join: each shard
  /// thread owns its stats; the owner merges once the threads are joined).
  /// Every counter sums — including `established`, so consistent() holds
  /// for the merged book whenever it held per shard. `peak_established`
  /// sums too, making the merged peak an upper bound on simultaneously
  /// open connections (per-shard peaks need not align in time).
  void merge(const ConnectionStats& o);

  /// One-line "accepted 12  established 3 ..." report for tools and tests.
  std::string summary() const;
};

/// One running server endpoint (UDP + TCP on the same port).
class ServerFrontend {
 public:
  /// Binds both sockets and registers with the loop. The AuthServer must
  /// outlive the frontend.
  static Result<std::unique_ptr<ServerFrontend>> start(net::EventLoop& loop,
                                                       AuthServer& server,
                                                       FrontendConfig config);
  ~ServerFrontend();

  ServerFrontend(const ServerFrontend&) = delete;
  ServerFrontend& operator=(const ServerFrontend&) = delete;

  /// Actual bound endpoint (resolves port 0).
  const Endpoint& endpoint() const { return endpoint_; }

  const ConnectionStats& connections() const { return conn_stats_; }

  /// Currently in the overloaded state (degradation policy active)?
  bool overloaded() const { return overloaded_; }

  /// Combined fault-layer accounting for both egress streams (all zeroes
  /// when the frontend runs unimpaired).
  fault::ImpairmentCounters impairments() const;

  /// Template-cache statistics, or nullptr when the cache is disabled.
  const ResponseCache* response_cache() const {
    return cache_.has_value() ? &*cache_ : nullptr;
  }

  /// Close listeners and all connections (also done by the destructor).
  void shutdown();

 private:
  ServerFrontend(net::EventLoop& loop, AuthServer& server, FrontendConfig config)
      : loop_(loop), server_(server), config_(config) {}

  struct Connection {
    net::TcpStream stream;
    IpAddr client;
    TimeNs last_activity;   ///< any inbound bytes (LRU order, idle timeout)
    TimeNs last_progress;   ///< last *complete* message (read deadline)
    TimeNs write_blocked_since = 0;  ///< 0 = no reply bytes pending
    Connection(net::TcpStream s, TimeNs t)
        : stream(std::move(s)), client(stream.peer().addr), last_activity(t),
          last_progress(t) {}
  };
  using ConnIter = std::list<Connection>::iterator;

  void on_udp_readable();
  /// Answer one UDP query on the batched path, staging the reply.
  void handle_udp_query(const Endpoint& from, std::span<const uint8_t> query);
  /// One sendmmsg flush of the replies staged for the current inbound batch.
  void flush_udp_replies();
  /// A cleared reply buffer from the reusable arena (valid until the flush).
  std::vector<uint8_t>& next_reply_buf();
  /// Template cache usable for this process state? (single catch-all view,
  /// no answer rotation — see FrontendConfig::response_cache_entries.)
  bool cache_usable() const;
  void on_tcp_acceptable();
  void on_conn_readable(ConnIter it);
  /// Flush pending reply bytes; returns false if the connection was closed.
  bool on_conn_writable(ConnIter it);
  void close_connection(ConnIter it, CloseReason reason);
  void sweep_connections();
  /// Recompute the overload state after the established gauge changed.
  void update_overload();
  /// Apply the overload policy to one query. Returns true when the query
  /// was consumed (degraded reply already sent or query dropped);
  /// `reply_out` receives the degraded reply bytes for the TCP path.
  bool degrade_query(std::span<const uint8_t> query,
                     std::vector<uint8_t>* reply_out);
  /// Track reply bytes left unflushed on a connection: arms write interest
  /// and starts the write-deadline clock (or clears both when drained).
  /// Returns false when re-arming failed (caller closes the connection).
  bool note_pending_out(ConnIter it, size_t pending, TimeNs now);

  net::EventLoop& loop_;
  AuthServer& server_;
  FrontendConfig config_;
  Endpoint endpoint_;
  std::unique_ptr<fault::FaultStream> udp_fault_;  // must outlive udp_
  std::unique_ptr<fault::FaultStream> tcp_fault_;
  std::optional<net::ImpairedUdpSocket> udp_;
  std::optional<net::TcpListener> listener_;
  /// MRU order: front = most recently active, back = LRU eviction victim.
  std::list<Connection> connections_;
  std::unordered_map<IpAddr, size_t, IpAddrHash> per_client_;
  ConnectionStats conn_stats_;
  net::EventLoop::TimerId sweep_timer_ = 0;
  bool overloaded_ = false;
  bool shut_down_ = false;
  // --- batched UDP reply path ----------------------------------------------
  std::optional<ResponseCache> cache_;
  // Replies staged for the current inbound batch: spans in udp_out_ point
  // into udp_out_bufs_ slots (reused across batches; cleared by the flush).
  std::vector<net::UdpSocket::OutDatagram> udp_out_;
  std::vector<std::vector<uint8_t>> udp_out_bufs_;
  size_t udp_out_used_ = 0;
  std::vector<uint8_t> udp_wire_flags_;  ///< send_batch scratch
};

}  // namespace ldp::server
