// Multi-core sharded serving: N ServerFrontends in one SO_REUSEPORT group,
// each on its own EventLoop thread. The kernel spreads datagrams and TCP
// accepts across the member sockets by flow hash, so every shard owns a
// disjoint set of clients end to end — connection books, admission state,
// response template cache, fault streams and syscall tallies are all
// shard-local and touched only from the shard's thread. Nothing is shared
// between shards except the read-only zone data and the AuthServer's
// atomic stats, so the hot path takes no locks. Aggregation happens once,
// after the shard threads are joined, by merging each shard's books into
// one exit report (the merge-after-join idiom from util/metrics.hpp); the
// PR-5 accepted == established + closed invariant holds per shard and,
// because ConnectionStats::merge sums every term, in the merged report.
//
// This is the serving half of the paper's scale story (§2.2 "multiple
// instances of the server to support large query rate"): one process,
// one port, one shard per core.
#pragma once

#include <thread>
#include <vector>

#include "server/frontend.hpp"

namespace ldp::server {

/// One shard's post-join snapshot (also available merged — see
/// ShardedExitReport). Filled in by stop(); reading it earlier would race
/// with the shard thread, so it lives behind the stop() barrier.
struct ShardReport {
  ConnectionStats connections;
  fault::ImpairmentCounters impairments;
  ResponseCache::Stats cache;
  net::IoCounters io;  ///< syscalls issued by this shard's thread
};

/// Merged exit accounting across every shard, plus the per-shard books it
/// was built from (tools print both; tests check the invariant on both).
struct ShardedExitReport {
  ConnectionStats connections;
  fault::ImpairmentCounters impairments;
  ResponseCache::Stats cache;
  net::IoCounters io;
  std::vector<ShardReport> per_shard;
};

/// An AuthServer behind N SO_REUSEPORT-sharded frontends, each running its
/// own event loop on a dedicated thread. With shards == 1 this degenerates
/// to exactly the BackgroundServer shape: one frontend, one loop, one
/// thread, and (unless the caller asked for it) no SO_REUSEPORT — so the
/// single-shard counters are byte-identical to the single-loop path.
class ShardedServer {
 public:
  /// Takes ownership of the AuthServer. Zone data must be fully loaded
  /// before start(); after it, the server may only be touched through its
  /// atomic stats (shard threads read the views concurrently).
  static Result<std::unique_ptr<ShardedServer>> start(AuthServer server,
                                                      FrontendConfig config,
                                                      size_t shards);

  ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// The shared endpoint every shard is bound to (resolves port 0).
  const Endpoint& endpoint() const { return endpoint_; }
  size_t shard_count() const { return shards_.size(); }
  const AuthServer& auth() const { return auth_; }

  /// Ask every shard loop to wind down without blocking (safe from a
  /// signal handler: EventLoop::stop is a sticky eventfd write). Pair with
  /// stop() from a normal thread to join and collect the report.
  void request_stop();

  /// Block until every shard loop has exited — i.e. until someone calls
  /// request_stop() (a signal handler, another thread). The tool's main
  /// thread parks here, mirroring the single-loop path's blocking
  /// loop.run(). Follow with stop() to merge the books.
  void wait();

  /// Stop all shard loops, join the threads, shut the frontends down and
  /// merge the shard-local books. Idempotent; later calls return the same
  /// report. Also run by the destructor.
  const ShardedExitReport& stop();

 private:
  explicit ShardedServer(AuthServer server) : auth_(std::move(server)) {}

  struct Shard {
    net::EventLoop loop;
    std::unique_ptr<ServerFrontend> frontend;
    std::thread thread;
    net::IoCounters io;  ///< written by the shard thread as its last act
  };

  AuthServer auth_;
  Endpoint endpoint_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool stopped_ = false;
  ShardedExitReport report_;
};

}  // namespace ldp::server
