#include "server/auth_server.hpp"

#include <algorithm>

namespace ldp::server {

using dns::Name;
using dns::NameData;
using dns::Rdata;
using dns::ResourceRecord;
using dns::RRset;
using dns::RRType;
using dns::Rcode;
using zone::LookupStatus;

AuthServer::AuthServer(ServerConfig config)
    : config_(config),
      stats_(std::make_unique<ServerStats>()),
      rotation_(std::make_unique<std::atomic<uint64_t>>(0)) {}

zone::ZoneSet& AuthServer::default_zones() {
  if (default_view_ == nullptr) {
    default_view_ = &views_.add_view("default");
  }
  return default_view_->zones;
}

namespace {

Message error_response(const Message& query, Rcode rcode) {
  Message r = Message::make_response(query);
  r.header.rcode = rcode;
  return r;
}

void append_rrsets(std::vector<ResourceRecord>& section, const std::vector<RRset>& sets) {
  for (const auto& set : sets) {
    for (auto& rr : set.to_records()) section.push_back(std::move(rr));
  }
}

}  // namespace

void AuthServer::add_dnssec_records(Message& response, bool nxdomain_proof,
                                    bool referral, const Name& signer) const {
  const auto& cfg = config_.dnssec;
  const size_t sig_bytes = cfg.zsk_bits / 8;
  const int sigs_per_set = cfg.rollover ? 2 : 1;

  // Synthesize an NSEC proof for negative answers before signing, so the
  // proof itself gets covered.
  if (nxdomain_proof && !response.authorities.empty()) {
    const auto& soa_rr = response.authorities.front();
    dns::NsecData nsec;
    nsec.next = soa_rr.name;
    nsec.types = {RRType::SOA, RRType::NS, RRType::NSEC, RRType::RRSIG};
    response.authorities.push_back(ResourceRecord{
        soa_rr.name, RRType::NSEC, dns::RRClass::IN, soa_rr.ttl, Rdata{nsec}});
  }

  auto sign_section = [&](std::vector<ResourceRecord>& section) {
    // One RRSIG per distinct (name, type) in the section.
    std::vector<ResourceRecord> sigs;
    for (size_t i = 0; i < section.size(); ++i) {
      const auto& rr = section[i];
      bool first_of_set = true;
      for (size_t j = 0; j < i; ++j) {
        if (section[j].name == rr.name && section[j].type == rr.type) {
          first_of_set = false;
          break;
        }
      }
      if (!first_of_set || rr.type == RRType::RRSIG) continue;
      for (int k = 0; k < sigs_per_set; ++k) {
        dns::RrsigData sig;
        sig.type_covered = rr.type;
        sig.algorithm = 8;  // RSA/SHA-256
        sig.labels = static_cast<uint8_t>(rr.name.label_count());
        sig.original_ttl = rr.ttl;
        sig.expiration = 1900000000;
        sig.inception = 1800000000;
        sig.key_tag = static_cast<uint16_t>(20326 + k);
        sig.signer = signer;
        sig.signature.assign(sig_bytes, 0x51);
        sigs.push_back(ResourceRecord{rr.name, RRType::RRSIG, dns::RRClass::IN,
                                      rr.ttl, Rdata{sig}});
      }
    }
    for (auto& s : sigs) section.push_back(std::move(s));
  };

  if (referral) {
    // Signed referrals do not sign the NS set or glue; the parent proves
    // the delegation with a DS RRset plus its signature (RFC 4035 §3.1.4).
    if (!response.authorities.empty() &&
        response.authorities.front().type == RRType::NS) {
      const auto& ns_rr = response.authorities.front();
      dns::DsData ds;
      ds.key_tag = 20326;
      ds.algorithm = 8;
      ds.digest_type = 2;
      ds.digest.assign(32, 0xd5);  // SHA-256 digest size
      std::vector<ResourceRecord> ds_only = {ResourceRecord{
          ns_rr.name, RRType::DS, dns::RRClass::IN, ns_rr.ttl, Rdata{ds}}};
      sign_section(ds_only);
      for (auto& rr : ds_only) response.authorities.push_back(std::move(rr));
    }
    return;
  }
  sign_section(response.answers);
  sign_section(response.authorities);
  // Glue in the additional section is never signed (non-authoritative).
}

Message AuthServer::answer_from_zone(const zone::Zone& zone, const Message& query) const {
  Message response = Message::make_response(query);
  const auto& q = query.questions[0];

  auto result = zone.lookup(q.qname, q.qtype);
  if (config_.rotate_answers && result.status == LookupStatus::Answer) {
    // CDN emulation: successive queries see the RRset in rotated order, so
    // "the first answer" differs per query like a load-balancing authority.
    uint64_t cursor = rotation_->fetch_add(1, std::memory_order_relaxed);
    for (auto& set : result.answers) {
      if (set.rdatas.size() > 1) {
        size_t shift = static_cast<size_t>(cursor % set.rdatas.size());
        std::rotate(set.rdatas.begin(),
                    set.rdatas.begin() + static_cast<long>(shift), set.rdatas.end());
      }
    }
  }
  switch (result.status) {
    case LookupStatus::Answer:
      response.header.aa = true;
      append_rrsets(response.answers, result.answers);
      break;
    case LookupStatus::Cname: {
      response.header.aa = true;
      append_rrsets(response.answers, result.answers);
      if (config_.chase_cname) {
        // Follow the chain inside this zone, appending what we find.
        Name target;
        if (const auto* cn = result.answers[0].rdatas[0].get_if<NameData>())
          target = cn->name;
        for (int hop = 0; hop < config_.max_cname_chain && !target.is_root(); ++hop) {
          auto next = zone.lookup(target, q.qtype);
          if (next.status == LookupStatus::Answer) {
            append_rrsets(response.answers, next.answers);
            break;
          }
          if (next.status == LookupStatus::Cname) {
            append_rrsets(response.answers, next.answers);
            if (const auto* cn = next.answers[0].rdatas[0].get_if<NameData>()) {
              target = cn->name;
              continue;
            }
          }
          break;  // chain leaves the zone or dead-ends
        }
      }
      break;
    }
    case LookupStatus::Delegation:
      // Referral: not authoritative, NS in authority, glue in additional.
      append_rrsets(response.authorities, result.authorities);
      append_rrsets(response.additionals, result.additionals);
      break;
    case LookupStatus::NoData:
      response.header.aa = true;
      append_rrsets(response.authorities, result.authorities);
      break;
    case LookupStatus::NxDomain:
      response.header.aa = true;
      response.header.rcode = Rcode::NXDomain;
      append_rrsets(response.authorities, result.authorities);
      stats_->nxdomain.fetch_add(1, std::memory_order_relaxed);
      break;
  }

  bool want_dnssec = query.edns.has_value() && query.edns->dnssec_ok &&
                     config_.dnssec.zone_signed;
  if (want_dnssec) {
    bool negative = result.status == LookupStatus::NxDomain ||
                    result.status == LookupStatus::NoData;
    add_dnssec_records(response, negative,
                       result.status == LookupStatus::Delegation, zone.origin());
  }
  return response;
}

Message AuthServer::answer(const Message& query, const IpAddr& client) const {
  stats_->queries.fetch_add(1, std::memory_order_relaxed);

  if (query.header.opcode != dns::Opcode::Query) {
    stats_->responses.fetch_add(1, std::memory_order_relaxed);
    return error_response(query, Rcode::NotImp);
  }
  if (query.questions.size() != 1) {
    stats_->formerr.fetch_add(1, std::memory_order_relaxed);
    stats_->responses.fetch_add(1, std::memory_order_relaxed);
    return error_response(query, Rcode::FormErr);
  }

  const zone::View* view = views_.match(client);
  if (view == nullptr) {
    stats_->refused.fetch_add(1, std::memory_order_relaxed);
    stats_->responses.fetch_add(1, std::memory_order_relaxed);
    return error_response(query, Rcode::Refused);
  }
  const zone::Zone* zone = view->zones.find_zone(query.questions[0].qname);
  if (zone == nullptr) {
    stats_->refused.fetch_add(1, std::memory_order_relaxed);
    stats_->responses.fetch_add(1, std::memory_order_relaxed);
    return error_response(query, Rcode::Refused);
  }

  Message response = answer_from_zone(*zone, query);
  stats_->responses.fetch_add(1, std::memory_order_relaxed);
  return response;
}

std::optional<std::vector<uint8_t>> AuthServer::answer_wire(
    std::span<const uint8_t> query, const IpAddr& client, size_t udp_limit) const {
  auto parsed = Message::from_wire(query);
  if (!parsed.ok()) {
    // Salvage the id for a FORMERR if at least a header arrived.
    if (query.size() >= 12) {
      Message err;
      err.header.id = static_cast<uint16_t>(query[0] << 8 | query[1]);
      err.header.qr = true;
      err.header.rcode = Rcode::FormErr;
      stats_->formerr.fetch_add(1, std::memory_order_relaxed);
      auto wire = err.to_wire();
      stats_->response_bytes.fetch_add(wire.size(), std::memory_order_relaxed);
      return wire;
    }
    return std::nullopt;
  }
  Message response = answer(*parsed, client);
  size_t limit = udp_limit;
  if (limit > 0 && parsed->edns.has_value())
    limit = std::max<size_t>(limit, parsed->edns->udp_payload_size);
  auto wire = response.to_wire(limit);
  stats_->response_bytes.fetch_add(wire.size(), std::memory_order_relaxed);
  return wire;
}

}  // namespace ldp::server
