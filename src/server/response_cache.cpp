#include "server/response_cache.hpp"

#include <algorithm>

#include "dns/name.hpp"
#include "util/bytes.hpp"

namespace ldp::server {

void ResponseCache::sync_revision(uint64_t revision) {
  if (revision == revision_) return;
  revision_ = revision;
  have_pending_ = false;
  if (!entries_.empty()) {
    ++stats_.invalidations;
    entries_.clear();
    lru_.clear();
  }
}

ResponseCache::Outcome ResponseCache::probe(std::span<const uint8_t> query,
                                            size_t udp_limit,
                                            std::vector<uint8_t>& reply_out,
                                            bool& nxdomain_out) {
  have_pending_ = false;
  if (max_entries_ == 0 || query.size() < 12) {
    ++stats_.bypasses;
    return Outcome::Bypass;
  }
  // Header gate: a standard QUERY with exactly one question, nothing in the
  // answer/authority sections, and at most one additional (a bare OPT).
  bool qr = (query[2] & 0x80) != 0;
  uint8_t opcode = (query[2] >> 3) & 0x0f;
  uint16_t qdcount = static_cast<uint16_t>(query[4] << 8 | query[5]);
  uint16_t ancount = static_cast<uint16_t>(query[6] << 8 | query[7]);
  uint16_t nscount = static_cast<uint16_t>(query[8] << 8 | query[9]);
  uint16_t arcount = static_cast<uint16_t>(query[10] << 8 | query[11]);
  if (qr || opcode != 0 || qdcount != 1 || ancount != 0 || nscount != 0 ||
      arcount > 1) {
    ++stats_.bypasses;
    return Outcome::Bypass;
  }

  ByteReader rd(query);
  (void)rd.seek(12);
  key_scratch_.clear();
  // Key layout: lowercased uncompressed qname wire form, then qtype, an
  // EDNS-present/DO flag byte, and the effective truncation limit (computed
  // exactly as AuthServer::answer_wire does, since it changes the render).
  if (!dns::decode_name_wire(rd, key_scratch_).ok()) {
    ++stats_.bypasses;
    return Outcome::Bypass;
  }
  auto qtype = rd.u16();
  auto qclass = rd.u16();
  if (!qtype.ok() || !qclass.ok() || *qclass != 1) {  // cache IN only
    ++stats_.bypasses;
    return Outcome::Bypass;
  }
  bool edns = false;
  bool do_bit = false;
  uint16_t advertised = 0;
  if (arcount == 1) {
    // The sole additional must be a root-owner OPT with empty RDATA; EDNS
    // options (cookies, NSID) vary per client and are never cached.
    auto owner = rd.u8();
    auto type = rd.u16();
    auto payload = rd.u16();  // requestor's UDP payload size (class field)
    auto ttl = rd.u32();      // ext-RCODE / version / DO+Z flags
    auto rdlen = rd.u16();
    if (!owner.ok() || *owner != 0 || !type.ok() || *type != 41 ||
        !payload.ok() || !ttl.ok() || !rdlen.ok() || *rdlen != 0) {
      ++stats_.bypasses;
      return Outcome::Bypass;
    }
    edns = true;
    advertised = *payload;
    do_bit = (*ttl & 0x8000u) != 0;
  }
  if (!rd.empty()) {  // trailing bytes: not a shape worth caching
    ++stats_.bypasses;
    return Outcome::Bypass;
  }

  size_t limit = udp_limit;
  if (limit > 0 && edns) limit = std::max(limit, static_cast<size_t>(advertised));
  key_scratch_.push_back(static_cast<char>(*qtype >> 8));
  key_scratch_.push_back(static_cast<char>(*qtype & 0xff));
  key_scratch_.push_back(static_cast<char>((edns ? 1 : 0) | (do_bit ? 2 : 0)));
  for (int shift = 24; shift >= 0; shift -= 8)
    key_scratch_.push_back(static_cast<char>((limit >> shift) & 0xff));

  auto it = entries_.find(key_scratch_);
  if (it != entries_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    const std::vector<uint8_t>& wire = it->second.wire;
    reply_out.assign(wire.begin(), wire.end());
    // Per-query header patch: the DNS ID and the echoed RD bit. Everything
    // else in the render is a pure function of the cache key.
    reply_out[0] = query[0];
    reply_out[1] = query[1];
    reply_out[2] = static_cast<uint8_t>((reply_out[2] & ~0x01) | (query[2] & 0x01));
    nxdomain_out = it->second.nxdomain;
    return Outcome::Hit;
  }

  ++stats_.misses;
  pending_key_ = key_scratch_;
  pending_rd_ = query[2] & 0x01;
  have_pending_ = true;
  return Outcome::Miss;
}

void ResponseCache::insert(std::span<const uint8_t> reply) {
  if (!have_pending_) return;
  have_pending_ = false;
  if (reply.size() < 12) return;
  // Only cache replies the per-hit patch can reproduce: the question must
  // be echoed (header-only FORMERR salvage is not) and the RD bit must
  // match the query's — the patch assumes the slow path echoes it.
  uint16_t qdcount = static_cast<uint16_t>(reply[4] << 8 | reply[5]);
  if (qdcount != 1 || (reply[2] & 0x01) != pending_rd_) return;

  auto found = entries_.find(pending_key_);
  if (found != entries_.end()) {  // re-render of a live key: refresh in place
    found->second.wire.assign(reply.begin(), reply.end());
    found->second.nxdomain = (reply[3] & 0x0f) == 3;
    return;
  }
  lru_.push_front(pending_key_);
  Entry entry;
  entry.wire.assign(reply.begin(), reply.end());
  entry.nxdomain = (reply[3] & 0x0f) == 3;
  entry.lru = lru_.begin();
  entries_.emplace(std::move(pending_key_), std::move(entry));
  ++stats_.insertions;
  if (entries_.size() > max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace ldp::server
