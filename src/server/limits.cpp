#include "server/limits.hpp"

#include <charconv>
#include <sstream>

#include "fault/fault.hpp"
#include "util/strings.hpp"

namespace ldp::server {

namespace {

// Mirrors fault.cpp's duration printing: largest unit that divides exactly,
// so to_string output parses back to the identical config.
std::string duration_to_string(TimeNs ns) {
  if (ns % kSecond == 0) return std::to_string(ns / kSecond) + "s";
  if (ns % kMilli == 0) return std::to_string(ns / kMilli) + "ms";
  if (ns % kMicro == 0) return std::to_string(ns / kMicro) + "us";
  return std::to_string(ns) + "ns";
}

Result<size_t> parse_count(std::string_view key, std::string_view value) {
  size_t n = 0;
  auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), n);
  if (ec != std::errc{} || p != value.data() + value.size())
    return Err("bad value for " + std::string(key) + ": '" + std::string(value) + "'");
  return n;
}

}  // namespace

std::string LimitsConfig::to_string() const {
  std::ostringstream out;
  auto sep = [&out, first = true]() mutable {
    if (!first) out << ",";
    first = false;
  };
  if (max_connections > 0) {
    sep();
    out << "max-conns:" << max_connections;
  }
  if (per_client_quota > 0) {
    sep();
    out << "quota:" << per_client_quota;
  }
  if (read_deadline > 0) {
    sep();
    out << "read-deadline:" << duration_to_string(read_deadline);
  }
  if (write_deadline > 0) {
    sep();
    out << "write-deadline:" << duration_to_string(write_deadline);
  }
  if (max_partial_bytes > 0) {
    sep();
    out << "max-partial:" << max_partial_bytes;
  }
  return out.str();
}

const char* overload_policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::None: return "none";
    case OverloadPolicy::Refuse: return "refuse";
    case OverloadPolicy::Drop: return "drop";
    case OverloadPolicy::Truncate: return "truncate";
  }
  return "none";
}

std::string OverloadConfig::to_string() const {
  if (!enabled()) return "";
  std::ostringstream out;
  out << "policy:" << overload_policy_name(policy) << ",high:" << high_watermark
      << ",low:" << low_watermark;
  return out.str();
}

Result<LimitsConfig> parse_limits_spec(std::string_view text) {
  LimitsConfig limits;
  for (std::string_view item : split(text, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    size_t colon = item.find(':');
    if (colon == std::string_view::npos)
      return Err("limits spec item '" + std::string(item) + "' needs key:value");
    std::string_view key = item.substr(0, colon);
    std::string_view value = item.substr(colon + 1);
    if (key == "max-conns") {
      limits.max_connections = LDP_TRY(parse_count(key, value));
    } else if (key == "quota") {
      limits.per_client_quota = LDP_TRY(parse_count(key, value));
    } else if (key == "read-deadline") {
      limits.read_deadline = LDP_TRY(fault::parse_duration(value));
    } else if (key == "write-deadline") {
      limits.write_deadline = LDP_TRY(fault::parse_duration(value));
    } else if (key == "max-partial") {
      limits.max_partial_bytes = LDP_TRY(parse_count(key, value));
    } else {
      return Err("unknown limits spec key '" + std::string(key) + "'");
    }
  }
  return limits;
}

Result<OverloadConfig> parse_overload_spec(std::string_view text) {
  OverloadConfig overload;
  bool saw_low = false;
  for (std::string_view item : split(text, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    size_t colon = item.find(':');
    if (colon == std::string_view::npos)
      return Err("overload spec item '" + std::string(item) + "' needs key:value");
    std::string_view key = item.substr(0, colon);
    std::string_view value = item.substr(colon + 1);
    if (key == "policy") {
      if (value == "refuse") {
        overload.policy = OverloadPolicy::Refuse;
      } else if (value == "drop") {
        overload.policy = OverloadPolicy::Drop;
      } else if (value == "truncate") {
        overload.policy = OverloadPolicy::Truncate;
      } else {
        return Err("unknown overload policy '" + std::string(value) +
                   "' (want refuse|drop|truncate)");
      }
    } else if (key == "high") {
      overload.high_watermark = LDP_TRY(parse_count(key, value));
    } else if (key == "low") {
      overload.low_watermark = LDP_TRY(parse_count(key, value));
      saw_low = true;
    } else {
      return Err("unknown overload spec key '" + std::string(key) + "'");
    }
  }
  if (overload.policy != OverloadPolicy::None && overload.high_watermark == 0)
    return Err("overload spec needs high:<count> with a policy");
  if (overload.policy == OverloadPolicy::None && overload.high_watermark > 0)
    return Err("overload spec needs policy:refuse|drop|truncate with watermarks");
  if (!saw_low) overload.low_watermark = overload.high_watermark / 2;
  if (overload.low_watermark > overload.high_watermark)
    return Err("overload low watermark exceeds high watermark");
  return overload;
}

}  // namespace ldp::server
