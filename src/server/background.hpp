// BackgroundServer: an AuthServer + frontend running its own event loop on
// a dedicated thread. The replay validation experiments (§4) and benches
// use this as the system-under-test endpoint on loopback.
#pragma once

#include <thread>

#include "server/frontend.hpp"

namespace ldp::server {

class BackgroundServer {
 public:
  /// Takes ownership of the AuthServer (it must not be touched from other
  /// threads while running except through its atomic stats).
  static Result<std::unique_ptr<BackgroundServer>> start(AuthServer server,
                                                         FrontendConfig config = {}) {
    auto bg = std::unique_ptr<BackgroundServer>(new BackgroundServer(std::move(server)));
    auto fe = ServerFrontend::start(bg->loop_, bg->auth_, config);
    if (!fe.ok()) return Err(fe.error().message);
    bg->frontend_ = std::move(*fe);
    bg->thread_ = std::thread([raw = bg.get()] { raw->loop_.run(); });
    return bg;
  }

  ~BackgroundServer() { stop(); }

  BackgroundServer(const BackgroundServer&) = delete;
  BackgroundServer& operator=(const BackgroundServer&) = delete;

  const Endpoint& endpoint() const { return frontend_->endpoint(); }
  const AuthServer& auth() const { return auth_; }
  const ConnectionStats& connections() const { return frontend_->connections(); }
  /// Direct frontend access; non-atomic state (e.g. template-cache stats)
  /// is only safe to read after stop().
  const ServerFrontend& frontend() const { return *frontend_; }

  void stop() {
    if (thread_.joinable()) {
      loop_.stop();
      thread_.join();
    }
  }

 private:
  explicit BackgroundServer(AuthServer server) : auth_(std::move(server)) {}

  AuthServer auth_;
  net::EventLoop loop_;
  std::unique_ptr<ServerFrontend> frontend_;
  std::thread thread_;
};

}  // namespace ldp::server
