// Sharded meta-DNS-server: zone partitioning across multiple authoritative
// server instances. §3 notes the prototype recursive proxy "only talks to a
// single authoritative proxy; supporting partitioning the zones across the
// set of different authoritative servers is a future work" — this is that
// feature: §2.2's "multiple instances of the server to support large query
// rate and massive zones, with routing configuration that redirects queries
// to the correct servers".
//
// Routing key: the split-horizon view selector (the emulated nameserver's
// public address that the recursive proxy wrote into the query source).
// Each address maps to exactly one shard, so a proxy — or this router —
// can forward deterministically.
#pragma once

#include <memory>

#include "server/auth_server.hpp"

namespace ldp::server {

class ShardedMetaServer {
 public:
  /// Create `shard_count` empty server instances (>=1).
  explicit ShardedMetaServer(size_t shard_count, ServerConfig config = {});

  size_t shard_count() const { return shards_.size(); }
  AuthServer& shard(size_t i) { return *shards_[i]; }
  const AuthServer& shard(size_t i) const { return *shards_[i]; }

  /// Install a zone served by `nameserver_addrs` on the least-loaded shard
  /// (by hosted-zone count); registers the addresses in the routing table.
  /// A zone whose addresses are already routed joins the existing view of
  /// that nameserver identity (same shard, shared match-clients set), so
  /// every zone of one identity answers under first-match-wins selection.
  /// Fails — atomically, leaving no routes, match-clients entries, or
  /// views behind — if an address is already routed to a different shard,
  /// if the addresses bridge two distinct views on one shard, or if the
  /// identity's view already hosts a zone with the same origin.
  Result<size_t> add_zone(zone::Zone zone, const std::vector<IpAddr>& nameserver_addrs);

  /// Shard index for a view-selector address, if routed.
  std::optional<size_t> route(const IpAddr& view_key) const;

  /// Full data path: route on the (rewritten) source address and answer
  /// from the owning shard. Unrouted addresses get REFUSED, like a packet
  /// delivered to a server that hosts no matching view.
  dns::Message answer(const dns::Message& query, const IpAddr& view_key) const;

  /// Zones hosted per shard (load-balance introspection).
  std::vector<size_t> zones_per_shard() const { return zones_per_shard_; }

 private:
  std::vector<std::unique_ptr<AuthServer>> shards_;
  std::vector<size_t> zones_per_shard_;
  std::unordered_map<IpAddr, size_t, IpAddrHash> routing_;
};

}  // namespace ldp::server
