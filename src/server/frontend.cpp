#include "server/frontend.hpp"

#include "util/log.hpp"

namespace ldp::server {

Result<std::unique_ptr<ServerFrontend>> ServerFrontend::start(net::EventLoop& loop,
                                                              AuthServer& server,
                                                              FrontendConfig config) {
  auto fe = std::unique_ptr<ServerFrontend>(new ServerFrontend(loop, server, config));

  if (config.fault.has_value() && config.fault->enabled()) {
    fe->udp_fault_ = std::make_unique<fault::FaultStream>(*config.fault, "srv:udp");
    fe->tcp_fault_ = std::make_unique<fault::FaultStream>(*config.fault, "srv:tcp");
  }
  auto udp_sock = LDP_TRY(net::UdpSocket::bind(config.bind));
  fe->udp_.emplace(std::move(udp_sock), fe->udp_fault_.get(), &loop);
  fe->endpoint_ = LDP_TRY(fe->udp_->local_endpoint());
  // TCP listens on the port UDP got (so port 0 requests line up).
  Endpoint tcp_bind = config.bind;
  tcp_bind.port = fe->endpoint_.port;
  fe->listener_ = LDP_TRY(net::TcpListener::listen(tcp_bind));

  ServerFrontend* raw = fe.get();
  LDP_TRY_VOID(loop.add_fd(fe->udp_->fd(), net::Interest{true, false},
                           [raw](bool, bool) { raw->on_udp_readable(); }));
  LDP_TRY_VOID(loop.add_fd(fe->listener_->fd(), net::Interest{true, false},
                           [raw](bool, bool) { raw->on_tcp_acceptable(); }));
  fe->sweep_timer_ = loop.add_timer_after(config.sweep_interval, [raw] { raw->sweep_idle(); });
  return fe;
}

ServerFrontend::~ServerFrontend() { shutdown(); }

fault::ImpairmentCounters ServerFrontend::impairments() const {
  fault::ImpairmentCounters total;
  if (udp_fault_ != nullptr) total.merge(udp_fault_->counters());
  if (tcp_fault_ != nullptr) total.merge(tcp_fault_->counters());
  return total;
}

void ServerFrontend::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  if (udp_.has_value()) loop_.remove_fd(udp_->fd());
  if (listener_.has_value()) loop_.remove_fd(listener_->fd());
  for (auto it = connections_.begin(); it != connections_.end();) {
    auto next = std::next(it);
    loop_.remove_fd(it->stream.fd());
    connections_.erase(it);
    --conn_stats_.established;
    it = next;
  }
  loop_.cancel_timer(sweep_timer_);
}

void ServerFrontend::on_udp_readable() {
  // Drain the socket: under load many datagrams arrive per wakeup.
  while (true) {
    auto dg = udp_->recv();
    if (!dg.ok() || !dg->has_value()) return;
    auto reply = server_.answer_wire((**dg).payload, (**dg).from.addr,
                                     config_.udp_payload_limit);
    if (reply.has_value()) {
      (void)udp_->send_to((**dg).from, *reply);
    }
  }
}

void ServerFrontend::on_tcp_acceptable() {
  while (true) {
    auto accepted = listener_->accept();
    if (!accepted.ok() || !accepted->has_value()) return;
    connections_.emplace_front(std::move(**accepted), mono_now_ns());
    auto it = connections_.begin();
    ++conn_stats_.accepted;
    ++conn_stats_.established;
    conn_stats_.peak_established =
        std::max(conn_stats_.peak_established, conn_stats_.established);
    auto add = loop_.add_fd(it->stream.fd(), net::Interest{true, false},
                            [this, it](bool readable, bool) {
                              if (readable) on_conn_readable(it);
                            });
    if (!add.ok()) {
      connections_.erase(it);
      --conn_stats_.established;
    }
  }
}

void ServerFrontend::on_conn_readable(std::list<Connection>::iterator it) {
  bool closed = false;
  auto messages = it->stream.read_messages(closed);
  if (!messages.ok()) {
    close_connection(it, false);
    return;
  }
  it->last_activity = mono_now_ns();
  for (const auto& msg : *messages) {
    // Connection transports carry no size limit (udp_limit = 0).
    auto reply = server_.answer_wire(msg, it->stream.peer().addr, 0);
    if (reply.has_value()) {
      auto out = net::impaired_tcp_send(it->stream, tcp_fault_.get(),
                                        mono_now_ns(), *reply);
      if (out == net::TcpSendOutcome::Error ||
          out == net::TcpSendOutcome::LinkDown) {
        close_connection(it, false);
        return;
      }
    }
  }
  if (closed) close_connection(it, false);
}

void ServerFrontend::close_connection(std::list<Connection>::iterator it, bool idle) {
  loop_.remove_fd(it->stream.fd());
  connections_.erase(it);
  --conn_stats_.established;
  if (idle) {
    ++conn_stats_.closed_idle;
  } else {
    ++conn_stats_.closed_by_peer;
  }
}

void ServerFrontend::sweep_idle() {
  TimeNs cutoff = mono_now_ns() - config_.tcp_idle_timeout;
  for (auto it = connections_.begin(); it != connections_.end();) {
    auto next = std::next(it);
    if (it->last_activity < cutoff) close_connection(it, true);
    it = next;
  }
  if (!shut_down_) {
    sweep_timer_ =
        loop_.add_timer_after(config_.sweep_interval, [this] { sweep_idle(); });
  }
}

}  // namespace ldp::server
