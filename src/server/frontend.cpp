#include "server/frontend.hpp"

#include <algorithm>
#include <sstream>

#include "util/log.hpp"

namespace ldp::server {

namespace {

// Header-only degraded reply: echo the query ID and opcode/RD bits, set QR,
// zero all section counts. 12 bytes, no zone lookup — the whole point of
// degradation is that it costs near-nothing per query.
std::vector<uint8_t> degraded_reply(std::span<const uint8_t> query,
                                    bool truncate, uint8_t rcode) {
  std::vector<uint8_t> reply(query.begin(), query.begin() + 12);
  reply[2] |= 0x80;                   // QR = response
  if (truncate) reply[2] |= 0x02;     // TC
  reply[3] = rcode;                   // clears RA/Z too
  std::fill(reply.begin() + 4, reply.end(), 0);  // QD/AN/NS/AR = 0
  return reply;
}

}  // namespace

void ConnectionStats::merge(const ConnectionStats& o) {
  accepted += o.accepted;
  closed_idle += o.closed_idle;
  closed_by_peer += o.closed_by_peer;
  closed_error += o.closed_error;
  closed_shutdown += o.closed_shutdown;
  evicted_lru += o.evicted_lru;
  refused_quota += o.refused_quota;
  deadline_closed += o.deadline_closed;
  write_stall_closed += o.write_stall_closed;
  overflow_closed += o.overflow_closed;
  refused_overload += o.refused_overload;
  dropped_overload += o.dropped_overload;
  truncated_overload += o.truncated_overload;
  overload_entered += o.overload_entered;
  overload_exited += o.overload_exited;
  established += o.established;
  peak_established += o.peak_established;
}

std::string ConnectionStats::summary() const {
  std::ostringstream out;
  out << "accepted " << accepted << "  established " << established
      << "  peak " << peak_established << "  closed_idle " << closed_idle
      << "  closed_by_peer " << closed_by_peer << "  closed_error "
      << closed_error;
  if (closed_shutdown > 0) out << "  closed_shutdown " << closed_shutdown;
  if (evicted_lru > 0) out << "  evicted_lru " << evicted_lru;
  if (refused_quota > 0) out << "  refused_quota " << refused_quota;
  if (deadline_closed > 0) out << "  deadline_closed " << deadline_closed;
  if (write_stall_closed > 0) out << "  write_stall_closed " << write_stall_closed;
  if (overflow_closed > 0) out << "  overflow_closed " << overflow_closed;
  if (refused_overload > 0) out << "  refused_overload " << refused_overload;
  if (dropped_overload > 0) out << "  dropped_overload " << dropped_overload;
  if (truncated_overload > 0) out << "  truncated_overload " << truncated_overload;
  if (overload_entered > 0) {
    out << "  overload_entered " << overload_entered << "  overload_exited "
        << overload_exited;
  }
  return out.str();
}

Result<std::unique_ptr<ServerFrontend>> ServerFrontend::start(net::EventLoop& loop,
                                                              AuthServer& server,
                                                              FrontendConfig config) {
  auto fe = std::unique_ptr<ServerFrontend>(new ServerFrontend(loop, server, config));

  if (config.fault.has_value() && config.fault->enabled()) {
    fe->udp_fault_ = std::make_unique<fault::FaultStream>(*config.fault, "srv:udp");
    fe->tcp_fault_ = std::make_unique<fault::FaultStream>(*config.fault, "srv:tcp");
  }
  auto udp_sock = LDP_TRY(net::UdpSocket::bind(config.bind, config.reuse_port));
  fe->udp_.emplace(std::move(udp_sock), fe->udp_fault_.get(), &loop);
  if (config.response_cache_entries > 0)
    fe->cache_.emplace(config.response_cache_entries);
  fe->endpoint_ = LDP_TRY(fe->udp_->local_endpoint());
  // TCP listens on the port UDP got (so port 0 requests line up).
  Endpoint tcp_bind = config.bind;
  tcp_bind.port = fe->endpoint_.port;
  fe->listener_ =
      LDP_TRY(net::TcpListener::listen(tcp_bind, 512, config.reuse_port));

  ServerFrontend* raw = fe.get();
  LDP_TRY_VOID(loop.add_fd(fe->udp_->fd(), net::Interest{true, false},
                           [raw](bool, bool) { raw->on_udp_readable(); }));
  LDP_TRY_VOID(loop.add_fd(fe->listener_->fd(), net::Interest{true, false},
                           [raw](bool, bool) { raw->on_tcp_acceptable(); }));
  fe->sweep_timer_ =
      loop.add_timer_after(config.sweep_interval, [raw] { raw->sweep_connections(); });
  return fe;
}

ServerFrontend::~ServerFrontend() { shutdown(); }

fault::ImpairmentCounters ServerFrontend::impairments() const {
  fault::ImpairmentCounters total;
  if (udp_fault_ != nullptr) total.merge(udp_fault_->counters());
  if (tcp_fault_ != nullptr) total.merge(tcp_fault_->counters());
  return total;
}

void ServerFrontend::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  if (udp_.has_value()) loop_.remove_fd(udp_->fd());
  if (listener_.has_value()) loop_.remove_fd(listener_->fd());
  while (!connections_.empty()) {
    close_connection(connections_.begin(), CloseReason::Shutdown);
  }
  loop_.cancel_timer(sweep_timer_);
}

bool ServerFrontend::degrade_query(std::span<const uint8_t> query,
                                   std::vector<uint8_t>* reply_out) {
  reply_out->clear();
  if (config_.overload.policy == OverloadPolicy::None) return false;
  if (query.size() < 12 || config_.overload.policy == OverloadPolicy::Drop) {
    // Too short for even a degraded echo → same fate as Drop.
    ++conn_stats_.dropped_overload;
    return true;
  }
  if (config_.overload.policy == OverloadPolicy::Refuse) {
    *reply_out = degraded_reply(query, false, 5);  // RCODE 5 = REFUSED
    ++conn_stats_.refused_overload;
  } else {  // Truncate
    *reply_out = degraded_reply(query, true, 0);
    ++conn_stats_.truncated_overload;
  }
  return true;
}

void ServerFrontend::update_overload() {
  if (!config_.overload.enabled()) return;
  if (!overloaded_ && conn_stats_.established >= config_.overload.high_watermark) {
    overloaded_ = true;
    ++conn_stats_.overload_entered;
  } else if (overloaded_ &&
             conn_stats_.established <= config_.overload.low_watermark) {
    overloaded_ = false;
    ++conn_stats_.overload_exited;
  }
}

void ServerFrontend::on_udp_readable() {
  if (!config_.batched_udp) {
    // Scalar path: one recvfrom/sendto pair per datagram (kept for A/B
    // measurement and equivalence tests). Drain the socket: under load
    // many datagrams arrive per wakeup.
    while (true) {
      auto dg = udp_->recv();
      if (!dg.ok() || !dg->has_value()) return;
      const auto& datagram = **dg;
      if (overloaded_) {
        std::vector<uint8_t> degraded;
        if (degrade_query(datagram.payload, &degraded)) {
          if (!degraded.empty()) (void)udp_->send_to(datagram.from, degraded);
          continue;
        }
      }
      auto reply = server_.answer_wire(datagram.payload, datagram.from.addr,
                                       config_.udp_payload_limit);
      if (reply.has_value()) {
        (void)udp_->send_to(datagram.from, *reply);
      }
    }
  }
  // Batched path: recvmmsg the queries, answer into the reply arena, and
  // flush each inbound batch's replies with one sendmmsg. The flush must
  // happen per batch — the next recv_batch call recycles the arena slots
  // the query views point into.
  while (true) {
    auto batch = udp_->recv_batch();
    if (!batch.ok() || batch->empty()) return;
    for (const auto& view : *batch) handle_udp_query(view.from, view.payload);
    flush_udp_replies();
  }
}

bool ServerFrontend::cache_usable() const {
  if (!cache_.has_value() || server_.config().rotate_answers) return false;
  // A cached render is only valid when every client would get the same
  // bytes: a single catch-all view. Split-horizon setups bypass.
  const auto& views = server_.views().views();
  return views.size() == 1 && views[0]->match_clients.empty();
}

std::vector<uint8_t>& ServerFrontend::next_reply_buf() {
  if (udp_out_used_ == udp_out_bufs_.size()) udp_out_bufs_.emplace_back();
  std::vector<uint8_t>& buf = udp_out_bufs_[udp_out_used_++];
  buf.clear();
  return buf;
}

void ServerFrontend::handle_udp_query(const Endpoint& from,
                                      std::span<const uint8_t> query) {
  if (overloaded_) {
    std::vector<uint8_t> degraded;
    if (degrade_query(query, &degraded)) {
      if (!degraded.empty()) {
        std::vector<uint8_t>& buf = next_reply_buf();
        buf = std::move(degraded);
        udp_out_.push_back(net::UdpSocket::OutDatagram{from, buf});
      }
      return;
    }
  }
  if (cache_usable()) {
    cache_->sync_revision(server_.revision());
    std::vector<uint8_t>& buf = next_reply_buf();
    bool nxdomain = false;
    switch (cache_->probe(query, config_.udp_payload_limit, buf, nxdomain)) {
      case ResponseCache::Outcome::Hit:
        server_.note_cached_response(buf.size(), nxdomain);
        udp_out_.push_back(net::UdpSocket::OutDatagram{from, buf});
        return;
      case ResponseCache::Outcome::Miss: {
        auto reply = server_.answer_wire(query, from.addr, config_.udp_payload_limit);
        if (!reply.has_value()) {
          --udp_out_used_;  // return the unused arena slot
          return;
        }
        cache_->insert(*reply);
        buf = std::move(*reply);
        udp_out_.push_back(net::UdpSocket::OutDatagram{from, buf});
        return;
      }
      case ResponseCache::Outcome::Bypass:
        --udp_out_used_;  // slot unused; fall through to the plain slow path
        break;
    }
  }
  auto reply = server_.answer_wire(query, from.addr, config_.udp_payload_limit);
  if (reply.has_value()) {
    std::vector<uint8_t>& buf = next_reply_buf();
    buf = std::move(*reply);
    udp_out_.push_back(net::UdpSocket::OutDatagram{from, buf});
  }
}

void ServerFrontend::flush_udp_replies() {
  if (!udp_out_.empty()) {
    // Best-effort like the scalar path's ignored send_to result: a reply
    // the kernel would not take is indistinguishable from a lost one.
    (void)udp_->send_batch(udp_out_, udp_wire_flags_);
    udp_out_.clear();
  }
  udp_out_used_ = 0;
}

void ServerFrontend::on_tcp_acceptable() {
  const LimitsConfig& limits = config_.limits;
  while (true) {
    auto accepted = listener_->accept();
    if (!accepted.ok() || !accepted->has_value()) return;
    net::TcpStream stream = std::move(**accepted);
    // Per-client quota: refuse before the connection is ever established
    // (the stream destructor closes the socket; the client sees FIN).
    if (limits.per_client_quota > 0) {
      auto found = per_client_.find(stream.peer().addr);
      if (found != per_client_.end() && found->second >= limits.per_client_quota) {
        ++conn_stats_.refused_quota;
        continue;
      }
    }
    // Admission: close least-recently-active connections until the newcomer
    // fits (RFC 7766 §6.1 — servers may close idle connections at will).
    // The cap always admits the newcomer, so one stuck client can't starve
    // the listen queue.
    if (limits.max_connections > 0) {
      while (conn_stats_.established >= limits.max_connections &&
             !connections_.empty()) {
        close_connection(std::prev(connections_.end()), CloseReason::EvictedLru);
      }
    }
    connections_.emplace_front(std::move(stream), mono_now_ns());
    auto it = connections_.begin();
    ++conn_stats_.accepted;
    ++conn_stats_.established;
    ++per_client_[it->client];
    conn_stats_.peak_established =
        std::max(conn_stats_.peak_established, conn_stats_.established);
    auto add = loop_.add_fd(it->stream.fd(), net::Interest{true, false},
                            [this, it](bool readable, bool writable) {
                              // Writable first: a close there must not be
                              // followed by a read on the dead iterator.
                              if (writable && !on_conn_writable(it)) return;
                              if (readable) on_conn_readable(it);
                            });
    if (!add.ok()) {
      close_connection(it, CloseReason::Error);
      continue;
    }
    update_overload();
  }
}

void ServerFrontend::on_conn_readable(ConnIter it) {
  bool closed = false;
  auto messages = it->stream.read_messages(closed);
  if (!messages.ok()) {
    close_connection(it, CloseReason::Error);
    return;
  }
  TimeNs now = mono_now_ns();
  it->last_activity = now;
  // MRU to the front — the list's back stays the LRU eviction victim.
  if (it != connections_.begin()) {
    connections_.splice(connections_.begin(), connections_, it);
  }
  // Progress = a complete message; dribbled partial bytes deliberately do
  // not count (that's what the read deadline measures).
  if (!messages->empty()) it->last_progress = now;
  for (const auto& msg : *messages) {
    std::optional<std::vector<uint8_t>> reply;
    if (overloaded_) {
      std::vector<uint8_t> degraded;
      if (degrade_query(msg, &degraded)) {
        if (degraded.empty()) continue;
        reply = std::move(degraded);
      }
    }
    if (!reply.has_value()) {
      // Connection transports carry no size limit (udp_limit = 0).
      reply = server_.answer_wire(msg, it->client, 0);
    }
    if (reply.has_value()) {
      size_t pending = 0;
      auto out = net::impaired_tcp_send(it->stream, tcp_fault_.get(), now,
                                        *reply, &pending);
      if (out == net::TcpSendOutcome::Error ||
          out == net::TcpSendOutcome::LinkDown) {
        close_connection(it, CloseReason::Error);
        return;
      }
      if (!note_pending_out(it, pending, now)) {
        close_connection(it, CloseReason::Error);
        return;
      }
    }
  }
  // Bounded reassembly buffer: a client streaming garbage that never
  // completes a frame is cut off here rather than growing `in_` forever.
  if (config_.limits.max_partial_bytes > 0 &&
      it->stream.partial_bytes() > config_.limits.max_partial_bytes) {
    close_connection(it, CloseReason::Overflow);
    return;
  }
  if (closed) close_connection(it, CloseReason::Peer);
}

bool ServerFrontend::on_conn_writable(ConnIter it) {
  auto pending = it->stream.flush();
  if (!pending.ok()) {
    close_connection(it, CloseReason::Error);
    return false;
  }
  if (!note_pending_out(it, *pending, mono_now_ns())) {
    close_connection(it, CloseReason::Error);
    return false;
  }
  return true;
}

bool ServerFrontend::note_pending_out(ConnIter it, size_t pending, TimeNs now) {
  if (pending > 0) {
    if (it->write_blocked_since == 0) {
      it->write_blocked_since = now;
      return loop_.modify_fd(it->stream.fd(), net::Interest{true, true}).ok();
    }
    return true;  // already armed; the stall clock keeps its start time
  }
  if (it->write_blocked_since != 0) {
    it->write_blocked_since = 0;
    return loop_.modify_fd(it->stream.fd(), net::Interest{true, false}).ok();
  }
  return true;
}

void ServerFrontend::close_connection(ConnIter it, CloseReason reason) {
  loop_.remove_fd(it->stream.fd());
  auto found = per_client_.find(it->client);
  if (found != per_client_.end() && --found->second == 0) {
    per_client_.erase(found);
  }
  connections_.erase(it);
  --conn_stats_.established;
  switch (reason) {
    case CloseReason::Idle: ++conn_stats_.closed_idle; break;
    case CloseReason::Peer: ++conn_stats_.closed_by_peer; break;
    case CloseReason::Error: ++conn_stats_.closed_error; break;
    case CloseReason::EvictedLru: ++conn_stats_.evicted_lru; break;
    case CloseReason::Deadline: ++conn_stats_.deadline_closed; break;
    case CloseReason::WriteStall: ++conn_stats_.write_stall_closed; break;
    case CloseReason::Overflow: ++conn_stats_.overflow_closed; break;
    case CloseReason::Shutdown: ++conn_stats_.closed_shutdown; break;
  }
  update_overload();
}

void ServerFrontend::sweep_connections() {
  TimeNs now = mono_now_ns();
  const LimitsConfig& limits = config_.limits;
  for (auto it = connections_.begin(); it != connections_.end();) {
    auto next = std::next(it);
    if (limits.read_deadline > 0 && it->stream.partial_bytes() > 0 &&
        now - it->last_progress > limits.read_deadline) {
      // Slowloris: bytes keep arriving (so the idle timer never fires) but
      // no message ever completes.
      close_connection(it, CloseReason::Deadline);
    } else if (limits.write_deadline > 0 && it->write_blocked_since != 0 &&
               now - it->write_blocked_since > limits.write_deadline) {
      close_connection(it, CloseReason::WriteStall);
    } else if (now - it->last_activity > config_.tcp_idle_timeout) {
      close_connection(it, CloseReason::Idle);
    }
    it = next;
  }
  if (!shut_down_) {
    sweep_timer_ = loop_.add_timer_after(config_.sweep_interval,
                                         [this] { sweep_connections(); });
  }
}

}  // namespace ldp::server
