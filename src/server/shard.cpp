#include "server/shard.hpp"

#include <algorithm>

namespace ldp::server {

ShardedMetaServer::ShardedMetaServer(size_t shard_count, ServerConfig config) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<AuthServer>(config));
  zones_per_shard_.assign(shard_count, 0);
}

Result<size_t> ShardedMetaServer::add_zone(zone::Zone zone,
                                           const std::vector<IpAddr>& nameserver_addrs) {
  if (nameserver_addrs.empty())
    return Err("zone " + zone.origin().to_string() + " has no nameserver addresses");

  // If any address is already routed, the zone must land on that shard;
  // conflicting prior routes are an error.
  std::optional<size_t> forced;
  for (const IpAddr& addr : nameserver_addrs) {
    auto it = routing_.find(addr);
    if (it == routing_.end()) continue;
    if (forced.has_value() && *forced != it->second)
      return Err("nameserver addresses of " + zone.origin().to_string() +
                 " straddle shards");
    forced = it->second;
  }

  size_t target = forced.has_value()
                      ? *forced
                      : static_cast<size_t>(
                            std::min_element(zones_per_shard_.begin(),
                                             zones_per_shard_.end()) -
                            zones_per_shard_.begin());

  // A routed address identifies the view its nameserver identity already
  // owns on the target shard; the new zone joins that view so one
  // identity's zones stay reachable together under first-match-wins view
  // selection (a second view with the same match-clients would be
  // permanently shadowed). Addresses bridging two existing views would
  // need a view merge — rejected like a shard straddle, with no mutation.
  zone::View* view = nullptr;
  if (forced.has_value()) {
    for (const IpAddr& addr : nameserver_addrs) {
      if (routing_.find(addr) == routing_.end()) continue;
      zone::View* owner = nullptr;
      for (const auto& v : shards_[target]->views().views()) {
        if (v->match_clients.contains(addr)) {
          owner = v.get();
          break;
        }
      }
      if (view != nullptr && owner != view)
        return Err("nameserver addresses of " + zone.origin().to_string() +
                   " straddle views on shard " + std::to_string(target));
      view = owner;
    }
  }
  const bool fresh_view = view == nullptr;
  if (fresh_view)
    view = &shards_[target]->views().add_view(zone.origin().to_string());

  // The only fallible step (duplicate-origin within the identity's view)
  // runs before any routing_/match_clients mutation, so a failed add rolls
  // back to exactly the pre-call state: a freshly created view is removed
  // again, and no stale route can leak.
  if (auto added = view->zones.add(std::move(zone)); !added.ok()) {
    if (fresh_view) shards_[target]->views().remove_view(view);
    return added.error();
  }
  for (const IpAddr& addr : nameserver_addrs) {
    view->match_clients.insert(addr);
    routing_[addr] = target;
  }
  ++zones_per_shard_[target];
  return target;
}

std::optional<size_t> ShardedMetaServer::route(const IpAddr& view_key) const {
  auto it = routing_.find(view_key);
  if (it == routing_.end()) return std::nullopt;
  return it->second;
}

dns::Message ShardedMetaServer::answer(const dns::Message& query,
                                       const IpAddr& view_key) const {
  auto shard_idx = route(view_key);
  if (!shard_idx.has_value()) {
    dns::Message r = dns::Message::make_response(query);
    r.header.rcode = dns::Rcode::Refused;
    return r;
  }
  return shards_[*shard_idx]->answer(query, view_key);
}

}  // namespace ldp::server
