// Resilience knobs for the serving path: admission control (connection cap
// with LRU eviction, per-client quotas), slow-client defense (read/write
// deadlines, bounded partial-frame buffers), and adaptive overload
// degradation (refuse/drop/truncate with hysteresis). The §5.2 all-TCP/TLS
// experiments sweep idle timeouts precisely because connection state is the
// server's scarce resource — these knobs are what a production server does
// when that resource runs out, so the fig11–14 sweeps can be re-run against
// a hardened frontend and the degradation modes measured.
//
// Both structs have a spec mini-language mirroring ldp::fault's
// ("key:value,key:value", strict about unknown keys), surfaced as
// `ldp-server --limits` / `--overload`.
#pragma once

#include <string>
#include <string_view>

#include "util/clock.hpp"
#include "util/result.hpp"

namespace ldp::server {

/// Admission-control and slow-client limits for a ServerFrontend. Every
/// knob's zero value means "unlimited/disabled", so a default-constructed
/// LimitsConfig reproduces the unhardened frontend exactly.
struct LimitsConfig {
  /// Cap on concurrently established TCP connections. When a new accept
  /// would exceed it, the least-recently-active connection is closed first
  /// (RFC 7766 §6.1 lets a server close idle connections at its
  /// discretion); the cap therefore always admits the newcomer.
  size_t max_connections = 0;
  /// Cap on concurrent connections per client address; an accept beyond the
  /// quota is closed immediately (counted, never established).
  size_t per_client_quota = 0;
  /// A connection with a partially-read frame must complete a message
  /// within this long of its last completed one (or of accept), else it is
  /// closed — the slowloris defense: dribbling bytes keeps a connection
  /// "active" for idle-timeout purposes but never makes progress.
  TimeNs read_deadline = 0;
  /// Reply bytes may stay queued on a connection at most this long before
  /// the connection is closed — a peer that stops reading cannot hold
  /// reply buffers forever.
  TimeNs write_deadline = 0;
  /// Cap on the partial-frame reassembly buffer per connection; a client
  /// that streams bytes without ever completing a frame is closed when the
  /// buffer would exceed this.
  size_t max_partial_bytes = 0;

  bool any_enabled() const {
    return max_connections > 0 || per_client_quota > 0 || read_deadline > 0 ||
           write_deadline > 0 || max_partial_bytes > 0;
  }
  /// Canonical "max-conns:64,quota:4,..." form (parse round-trips).
  std::string to_string() const;
};

/// What an overloaded frontend does with incoming queries.
enum class OverloadPolicy : uint8_t {
  None = 0,      ///< never degrade (answer everything, possibly stalling)
  Refuse = 1,    ///< answer RCODE REFUSED without touching the zone data
  Drop = 2,      ///< silently drop the query (client times out / retries)
  Truncate = 3,  ///< answer header-only TC=1, pushing the client to retry
};

/// Adaptive overload degradation with hysteresis: the frontend enters the
/// overloaded state when the established-connection gauge reaches
/// `high_watermark` and leaves it only when the gauge falls back to
/// `low_watermark` — the gap stops the policy flapping at the boundary.
struct OverloadConfig {
  OverloadPolicy policy = OverloadPolicy::None;
  size_t high_watermark = 0;  ///< enter overload at this many connections
  size_t low_watermark = 0;   ///< leave overload at or below this many

  bool enabled() const { return policy != OverloadPolicy::None && high_watermark > 0; }
  std::string to_string() const;
};

const char* overload_policy_name(OverloadPolicy policy);

/// Parse "max-conns:64,quota:4,read-deadline:2s,write-deadline:2s,
/// max-partial:4096". Keys in any order; unknown keys, bad numbers, and bad
/// durations are errors (same strictness as parse_fault_spec).
Result<LimitsConfig> parse_limits_spec(std::string_view text);

/// Parse "policy:refuse,high:48,low:32". `policy` must be one of
/// refuse|drop|truncate; `high` is required with it; `low` defaults to
/// high/2 and must not exceed high.
Result<OverloadConfig> parse_overload_spec(std::string_view text);

}  // namespace ldp::server
