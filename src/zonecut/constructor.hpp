// Zone constructor (§2.3 "Synthesize Zones to Provide Responses"): rebuilds
// the set of zone files needed to answer a trace's queries from the
// responses captured at a recursive server's upstream interface.
//
// Pipeline, mirroring the paper:
//  1. scan all responses, identify nameservers (NS records) per domain and
//     their host addresses (A/AAAA) — these define the zone cuts;
//  2. aggregate response data into an intermediate record pool,
//     first-answer-wins when later responses disagree (CDN rotation etc.);
//  3. split the pool into per-zone files: each record lands in its closest
//     enclosing zone, delegation NS sets are mirrored into the parent zone,
//     and glue is pulled in for in-bailiwick nameservers;
//  4. recover missing data: a fake-but-valid SOA is synthesized where the
//     trace never carried one.
//
// The result also reports which nameserver addresses serve each zone — the
// exact input the meta-DNS-server's split-horizon view set needs (§2.4).
#pragma once

#include <map>

#include "trace/record.hpp"
#include "zone/view.hpp"

namespace ldp::zonecut {

using dns::Name;
using trace::TraceRecord;

struct BuildOptions {
  /// Serial for synthesized SOA records.
  uint32_t fake_soa_serial = 1;
  /// Include the root zone even if the trace only shows root referrals.
  bool ensure_root = true;
};

struct BuildReport {
  size_t responses_scanned = 0;
  size_t records_harvested = 0;
  size_t conflicts_first_wins = 0;  ///< differing duplicate RRsets ignored
  size_t undecodable = 0;
  size_t fake_soas = 0;
  size_t zones_built = 0;
};

struct BuildResult {
  zone::ZoneSet zones;
  /// Zone origin -> public addresses of the nameservers serving it. The
  /// hierarchy emulator turns each group into a split-horizon view.
  std::map<Name, std::vector<IpAddr>> zone_servers;
  BuildReport report;
};

/// Rebuild zones from captured responses. Query records in the input are
/// ignored; responses drive everything.
Result<BuildResult> build_zones(const std::vector<TraceRecord>& records,
                                const BuildOptions& options = {});

/// The §2.3 single-zone path: reconstruct one authoritative zone from the
/// responses of a single server (no hierarchy logic).
Result<zone::Zone> build_single_zone(const Name& origin,
                                     const std::vector<TraceRecord>& records,
                                     const BuildOptions& options = {});

}  // namespace ldp::zonecut
