#include "zonecut/constructor.hpp"

#include <set>
#include <unordered_map>
#include <unordered_set>

namespace ldp::zonecut {

using dns::AaaaData;
using dns::AData;
using dns::Message;
using dns::NameData;
using dns::Rdata;
using dns::ResourceRecord;
using dns::RRset;
using dns::RRType;
using dns::SoaData;
using zone::Zone;

namespace {

struct RRKey {
  Name name;
  RRType type;
  bool operator==(const RRKey& o) const { return name == o.name && type == o.type; }
};
struct RRKeyHash {
  size_t operator()(const RRKey& k) const {
    return k.name.hash() * 31 + static_cast<size_t>(k.type);
  }
};

/// Intermediate pool: first-seen RRset per (name, type) plus the addresses
/// of the servers that provided each one.
class RecordPool {
 public:
  // Returns false when a differing RRset for the same key already existed
  // (the first answer wins, per §2.3 "Handle inconsistent replies").
  bool add(const ResourceRecord& rr, uint64_t response_seq) {
    RRKey key{rr.name, rr.type};
    auto it = pool_.find(key);
    if (it == pool_.end()) {
      RRset set;
      set.name = rr.name;
      set.type = rr.type;
      set.rrclass = rr.rrclass;
      set.add(rr);
      pool_.emplace(std::move(key), Entry{std::move(set), response_seq});
      return true;
    }
    Entry& entry = it->second;
    if (entry.first_response == response_seq) {
      // Same response message: grow the RRset (multi-record sets arrive as
      // several RRs of one message).
      entry.set.add(rr);
      return true;
    }
    // A later response: accept only if it agrees with what we already hold.
    for (const auto& existing : entry.set.rdatas) {
      if (existing == rr.rdata) return true;
    }
    return false;
  }

  const RRset* find(const Name& name, RRType type) const {
    auto it = pool_.find(RRKey{name, type});
    return it == pool_.end() ? nullptr : &it->second.set;
  }

  std::vector<const RRset*> all() const {
    std::vector<const RRset*> out;
    out.reserve(pool_.size());
    for (const auto& [key, entry] : pool_) out.push_back(&entry.set);
    return out;
  }

 private:
  struct Entry {
    RRset set;
    uint64_t first_response;
  };
  std::unordered_map<RRKey, Entry, RRKeyHash> pool_;
};

/// Closest enclosing zone from a set of zone origins; nullopt when no zone
/// contains the name.
std::optional<Name> closest_zone(const std::set<Name>& zone_names, const Name& owner) {
  for (size_t k = owner.label_count() + 1; k-- > 0;) {
    Name candidate = owner.suffix(k);
    if (zone_names.contains(candidate)) return candidate;
  }
  return std::nullopt;
}

/// The zone strictly containing `origin` (its parent in the cut set).
std::optional<Name> parent_zone(const std::set<Name>& zone_names, const Name& origin) {
  if (origin.is_root()) return std::nullopt;
  return closest_zone(zone_names, origin.parent());
}

void add_fake_soa(Zone& zone, uint32_t serial, BuildReport& report) {
  if (zone.soa() != nullptr) return;
  // Mname: first apex NS target if present, else a name under the origin.
  Name mname;
  if (const RRset* ns = zone.find(zone.origin(), RRType::NS)) {
    if (const auto* nd = ns->rdatas[0].get_if<NameData>()) mname = nd->name;
  }
  if (mname.is_root() && !zone.origin().is_root()) {
    auto prefixed = zone.origin().with_prefix_label("ns");
    if (prefixed.ok()) mname = *prefixed;
  }
  SoaData soa;
  soa.mname = mname;
  auto rname = zone.origin().with_prefix_label("hostmaster");
  soa.rname = rname.ok() ? *rname : zone.origin();
  soa.serial = serial;
  soa.refresh = 3600;
  soa.retry = 900;
  soa.expire = 604800;
  soa.minimum = 300;
  ResourceRecord rr{zone.origin(), RRType::SOA, dns::RRClass::IN, 3600, Rdata{soa}};
  (void)zone.add(rr);
  ++report.fake_soas;
}

}  // namespace

Result<BuildResult> build_zones(const std::vector<TraceRecord>& records,
                                const BuildOptions& options) {
  BuildResult result;
  BuildReport& report = result.report;

  RecordPool pool;
  std::set<Name> zone_names;
  // Which response source addresses served each zone's data. An
  // authoritative (AA) response attributes its source to the NS owner's own
  // zone; a referral attributes the source to the *parent* of the delegated
  // zone (the server that handed out the referral serves the parent).
  // Referral attribution is resolved after all zone cuts are known.
  std::unordered_map<Name, std::set<IpAddr>, dns::NameHash> zone_sources;
  std::vector<std::pair<Name, IpAddr>> referral_sources;

  // Pass 1: harvest RRsets and discover zone cuts.
  uint64_t response_seq = 0;
  for (const auto& rec : records) {
    if (rec.direction != trace::Direction::Response) continue;
    ++report.responses_scanned;
    auto msg = rec.message();
    if (!msg.ok()) {
      ++report.undecodable;
      continue;
    }
    ++response_seq;
    auto harvest = [&](const std::vector<ResourceRecord>& section) {
      for (const auto& rr : section) {
        if (rr.type == RRType::OPT) continue;
        if (pool.add(rr, response_seq)) {
          ++report.records_harvested;
        } else {
          ++report.conflicts_first_wins;
        }
        if (rr.type == RRType::NS || rr.type == RRType::SOA) {
          zone_names.insert(rr.name);
          if (msg->header.aa) {
            zone_sources[rr.name].insert(rec.src.addr);
          } else if (rr.type == RRType::NS) {
            referral_sources.emplace_back(rr.name, rec.src.addr);
          }
        }
      }
    };
    harvest(msg->answers);
    harvest(msg->authorities);
    harvest(msg->additionals);
  }

  if (options.ensure_root) zone_names.insert(Name{});

  // Pass 2: split the pool into zones.
  std::unordered_map<Name, Zone, dns::NameHash> zones;
  for (const Name& origin : zone_names) zones.emplace(origin, Zone(origin));

  auto add_to = [&zones](const Name& origin, const ResourceRecord& rr) {
    auto it = zones.find(origin);
    if (it != zones.end()) (void)it->second.add(rr);
  };

  for (const RRset* set : pool.all()) {
    auto owner_zone = closest_zone(zone_names, set->name);
    if (!owner_zone.has_value()) continue;
    for (const auto& rr : set->to_records()) {
      add_to(*owner_zone, rr);
      // Delegation NS sets are authoritative at the child apex but must
      // also appear in the parent as the referral data.
      if (rr.type == RRType::NS && rr.name == *owner_zone) {
        if (auto parent = parent_zone(zone_names, *owner_zone)) add_to(*parent, rr);
      }
    }
  }

  // Resolve referral attributions now that all zone cuts are known.
  for (const auto& [delegated, src] : referral_sources) {
    if (auto parent = parent_zone(zone_names, delegated))
      zone_sources[*parent].insert(src);
  }

  // Pass 3: glue for in-bailiwick delegations, fake SOAs, server addresses.
  for (auto& [origin, zone] : zones) {
    // Recover a missing apex NS (§2.3: the paper probes for NS records that
    // never appeared in the trace; offline we synthesize one that points at
    // the addresses observed answering for this zone).
    if (zone.find(origin, RRType::NS) == nullptr) {
      auto ns_name = origin.with_prefix_label("zone-ns");
      if (ns_name.ok()) {
        (void)zone.add(ResourceRecord{origin, RRType::NS, dns::RRClass::IN, 3600,
                                      Rdata{NameData{*ns_name}}});
        auto src_it = zone_sources.find(origin);
        if (src_it != zone_sources.end()) {
          for (const IpAddr& addr : src_it->second) {
            if (!addr.is_v4()) continue;
            (void)zone.add(ResourceRecord{*ns_name, RRType::A, dns::RRClass::IN,
                                          3600, Rdata{AData{addr.v4()}}});
          }
        }
      }
    }
    // Pull glue: for each delegation in this zone, nameserver targets below
    // the cut need their addresses here.
    std::vector<ResourceRecord> glue;
    for (const dns::RRset* set : zone.all_rrsets()) {
      if (set->type != RRType::NS || set->name == origin) continue;
      for (const auto& rd : set->rdatas) {
        const auto* nd = rd.get_if<NameData>();
        if (nd == nullptr || !nd->name.is_subdomain_of(set->name)) continue;
        for (RRType t : {RRType::A, RRType::AAAA}) {
          if (const RRset* addr = pool.find(nd->name, t)) {
            for (const auto& rr : addr->to_records()) glue.push_back(rr);
          }
        }
      }
    }
    for (const auto& rr : glue) (void)zone.add(rr);

    add_fake_soa(zone, options.fake_soa_serial, report);

    // Nameserver addresses for the split-horizon view config.
    std::vector<IpAddr> servers;
    std::set<IpAddr> seen;
    if (const RRset* ns = zone.find(origin, RRType::NS)) {
      for (const auto& rd : ns->rdatas) {
        const auto* nd = rd.get_if<NameData>();
        if (nd == nullptr) continue;
        for (RRType t : {RRType::A, RRType::AAAA}) {
          if (const RRset* addr = pool.find(nd->name, t)) {
            for (const auto& rdata : addr->rdatas) {
              IpAddr ip;
              if (const auto* a = rdata.get_if<AData>()) ip = IpAddr{a->addr};
              else if (const auto* aaaa = rdata.get_if<AaaaData>()) ip = IpAddr{aaaa->addr};
              else continue;
              if (seen.insert(ip).second) servers.push_back(ip);
            }
          }
        }
      }
    }
    if (servers.empty()) {
      // Fall back to the addresses that actually answered for this zone.
      auto it = zone_sources.find(origin);
      if (it != zone_sources.end())
        servers.assign(it->second.begin(), it->second.end());
    }
    result.zone_servers[origin] = std::move(servers);
  }

  for (auto& [origin, zone] : zones) {
    LDP_TRY_VOID(result.zones.add(std::move(zone)));
    ++report.zones_built;
  }
  return result;
}

Result<zone::Zone> build_single_zone(const Name& origin,
                                     const std::vector<TraceRecord>& records,
                                     const BuildOptions& options) {
  Zone zone(origin);
  BuildReport report;
  RecordPool pool;
  uint64_t seq = 0;
  for (const auto& rec : records) {
    if (rec.direction != trace::Direction::Response) continue;
    auto msg = rec.message();
    if (!msg.ok()) continue;
    ++seq;
    for (const auto* section : {&msg->answers, &msg->authorities, &msg->additionals}) {
      for (const auto& rr : *section) {
        if (rr.type == RRType::OPT) continue;
        if (!rr.name.is_subdomain_of(origin)) continue;
        pool.add(rr, seq);
      }
    }
  }
  for (const dns::RRset* set : pool.all()) {
    for (const auto& rr : set->to_records()) LDP_TRY_VOID(zone.add(rr));
  }
  add_fake_soa(zone, options.fake_soa_serial, report);
  return zone;
}

}  // namespace ldp::zonecut
