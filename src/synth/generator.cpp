#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ldp::synth {

using dns::Message;
using dns::Name;
using dns::RRType;

std::vector<IpAddr> make_client_pool(size_t count, Rng& rng) {
  std::unordered_set<uint32_t> seen;
  std::vector<IpAddr> out;
  out.reserve(count);
  while (out.size() < count) {
    // First octet 1..223, avoiding 0/10/127 networks; good enough for
    // distinct, public-looking unicast addresses.
    uint32_t v = static_cast<uint32_t>(rng.uniform(1, 223)) << 24 |
                 static_cast<uint32_t>(rng.uniform(0, 0xffffff));
    uint32_t top = v >> 24;
    if (top == 10 || top == 127) continue;
    if (!seen.insert(v).second) continue;
    out.emplace_back(Ip4{v});
  }
  return out;
}

namespace {

uint16_t ephemeral_port(Rng& rng) {
  return static_cast<uint16_t>(rng.uniform(32768, 60999));
}

std::string random_label(Rng& rng, size_t min_len, size_t max_len) {
  size_t len = rng.uniform(min_len, max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i)
    out.push_back(static_cast<char>('a' + rng.uniform(0, 25)));
  return out;
}

RRType sample_qtype(Rng& rng) {
  // Approximate root-traffic qtype mix: A dominates, then AAAA, then a tail.
  double u = rng.uniform01();
  if (u < 0.55) return RRType::A;
  if (u < 0.80) return RRType::AAAA;
  if (u < 0.87) return RRType::NS;
  if (u < 0.92) return RRType::MX;
  if (u < 0.95) return RRType::TXT;
  if (u < 0.98) return RRType::SOA;
  return RRType::DS;
}

}  // namespace

std::vector<TraceRecord> make_fixed_trace(const FixedTraceSpec& spec) {
  Rng rng(spec.seed);
  auto clients = make_client_pool(spec.client_count, rng);
  Endpoint server{IpAddr{Ip4{192, 0, 2, 1}}, 53};

  std::vector<TraceRecord> out;
  size_t n = spec.interarrival_ns > 0
                 ? static_cast<size_t>(spec.duration_ns / spec.interarrival_ns)
                 : 0;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TimeNs t = spec.start_time + static_cast<TimeNs>(i) * spec.interarrival_ns;
    // Unique query name per query (§4.1) so originals and replays match up.
    auto qname = Name::parse("q" + std::to_string(i) + "." + spec.name_suffix);
    Message msg = Message::make_query(static_cast<uint16_t>(i & 0xffff), *qname,
                                      RRType::A, false);
    Endpoint src{clients[i % clients.size()], ephemeral_port(rng)};
    out.push_back(trace::make_query_record(t, src, server, msg, spec.transport));
  }
  return out;
}

std::vector<TraceRecord> make_root_trace(const RootTraceSpec& spec) {
  Rng rng(spec.seed);
  auto clients = make_client_pool(spec.client_count, rng);
  // Two-population load model (see RootTraceSpec): Zipf within the busy
  // head, Zipf across the sparse tail, mixed by busy_load_fraction.
  size_t busy_count = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(spec.client_count) *
                             spec.busy_client_fraction));
  busy_count = std::min(busy_count, spec.client_count);
  size_t tail_count = std::max<size_t>(1, spec.client_count - busy_count);
  ZipfSampler head_zipf(busy_count, spec.head_zipf_s);
  ZipfSampler tail_zipf(tail_count, spec.tail_zipf_s);
  auto sample_client = [&](Rng& r) -> size_t {
    if (r.bernoulli(spec.busy_load_fraction)) return head_zipf.sample(r);
    size_t idx = busy_count + tail_zipf.sample(r);
    return std::min(idx, spec.client_count - 1);
  };

  std::vector<TraceRecord> out;
  out.reserve(static_cast<size_t>(spec.mean_rate_qps * ns_to_sec(spec.duration_ns)));

  // Per-client sticky source port (a resolver reuses its socket).
  std::vector<uint16_t> client_port(spec.client_count, 0);

  TimeNs t = spec.start_time;
  const TimeNs end = spec.start_time + spec.duration_ns;
  uint16_t id = 0;
  while (t < end) {
    // Rate modulated sinusoidally over the trace for per-second variation
    // (Figure 8 relies on the rate changing over time).
    double phase = ns_to_sec(t - spec.start_time) / 60.0 * 2.0 * M_PI;
    // Burst follow-ups add load on top of the arrival process; shrink the
    // base rate so the total (arrivals + bursts) matches mean_rate_qps.
    double base_rate = spec.mean_rate_qps / (1.0 + spec.burst_fraction);
    double rate = base_rate * (1.0 + spec.rate_amplitude * std::sin(phase));
    t += static_cast<TimeNs>(rng.exponential(1.0 / rate) * kSecond);
    if (t >= end) break;

    size_t client_idx = sample_client(rng);
    if (client_port[client_idx] == 0) client_port[client_idx] = ephemeral_port(rng);

    // Query name: junk (nonexistent TLD) or a name under a real TLD.
    std::string qname_text;
    if (rng.bernoulli(spec.junk_fraction)) {
      qname_text = random_label(rng, 6, 16);  // e.g. "local"-style junk
    } else {
      const std::string& tld = spec.tlds[rng.uniform(0, spec.tlds.size() - 1)];
      qname_text = random_label(rng, 3, 10) + "." + tld;
    }
    auto qname = Name::parse(qname_text);
    if (!qname.ok()) continue;

    Message msg = Message::make_query(id++, *qname, sample_qtype(rng), false);
    if (rng.bernoulli(spec.do_fraction)) {
      dns::Edns e;
      e.udp_payload_size = rng.bernoulli(0.7) ? 4096 : 1232;
      e.dnssec_ok = true;
      msg.edns = e;
    }
    Transport transport = rng.bernoulli(spec.tcp_fraction) ? Transport::Tcp
                                                           : Transport::Udp;
    Endpoint src{clients[client_idx], client_port[client_idx]};
    out.push_back(trace::make_query_record(t, src, spec.server, msg, transport));

    // Paired AAAA follow-up from the same client (stub A+AAAA behaviour),
    // with a log-uniform gap spanning back-to-back pairs to slow retries.
    if (rng.bernoulli(spec.burst_fraction)) {
      double lo = std::log(static_cast<double>(spec.burst_gap_min));
      double hi = std::log(static_cast<double>(std::max(spec.burst_gap_max,
                                                        spec.burst_gap_min + 1)));
      TimeNs gap = static_cast<TimeNs>(std::exp(lo + (hi - lo) * rng.uniform01()));
      if (t + gap < end) {
        Message pair = Message::make_query(id++, *qname, RRType::AAAA, false);
        pair.edns = msg.edns;
        out.push_back(
            trace::make_query_record(t + gap, src, spec.server, pair, transport));
      }
    }
  }
  // Burst follow-ups can land after later arrivals; restore time order.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

std::vector<TraceRecord> make_attack_trace(const AttackTraceSpec& spec) {
  Rng rng(spec.seed);
  auto sources = make_client_pool(spec.spoofed_sources, rng);

  std::vector<TraceRecord> out;
  out.reserve(static_cast<size_t>(spec.rate_qps * ns_to_sec(spec.duration_ns)));
  TimeNs t = spec.start_time;
  const TimeNs end = spec.start_time + spec.duration_ns;
  uint16_t id = 0;
  while (t < end) {
    // Attack tools pace almost uniformly; jitter only slightly.
    t += static_cast<TimeNs>(kSecond / spec.rate_qps *
                             (0.9 + 0.2 * rng.uniform01()));
    if (t >= end) break;
    std::string qname_text;
    if (spec.kind == AttackTraceSpec::Kind::RandomSubdomain) {
      qname_text = random_label(rng, 10, 16) + "." + spec.victim_domain;
    } else {
      qname_text = spec.victim_domain;
    }
    auto qname = Name::parse(qname_text);
    if (!qname.ok()) continue;
    Message msg = Message::make_query(id++, *qname, RRType::A, false);
    // Spoofed source, fresh for every packet (no port stickiness).
    Endpoint src{sources[rng.uniform(0, sources.size() - 1)], ephemeral_port(rng)};
    out.push_back(trace::make_query_record(t, src, spec.server, msg, Transport::Udp));
  }
  return out;
}

std::vector<TraceRecord> make_recursive_trace(const RecursiveTraceSpec& spec) {
  Rng rng(spec.seed);
  auto clients = make_client_pool(spec.client_count, rng);

  // A fixed universe of SLDs; queries pick zones Zipf-style (a recursive
  // server sees a few hot zones and a long tail).
  std::vector<std::string> zones;
  zones.reserve(spec.zone_count);
  static const char* kTlds[] = {"com", "net", "org", "edu", "io"};
  for (size_t i = 0; i < spec.zone_count; ++i) {
    zones.push_back(random_label(rng, 4, 12) + "." +
                    kTlds[rng.uniform(0, std::size(kTlds) - 1)]);
  }
  ZipfSampler zone_zipf(zones.size(), 1.0);
  static const char* kHosts[] = {"www", "mail", "api", "cdn", "ns1"};

  std::vector<TraceRecord> out;
  out.reserve(spec.query_count);
  TimeNs t = spec.start_time;
  for (size_t i = 0; i < spec.query_count; ++i) {
    t += static_cast<TimeNs>(
        rng.lognormal_mean_sd(spec.interarrival_mean_s, spec.interarrival_stdev_s) *
        kSecond);
    const std::string& zone = zones[zone_zipf.sample(rng)];
    std::string qname_text =
        std::string(kHosts[rng.uniform(0, std::size(kHosts) - 1)]) + "." + zone;
    auto qname = Name::parse(qname_text);
    Message msg = Message::make_query(static_cast<uint16_t>(i & 0xffff), *qname,
                                      sample_qtype(rng), true);
    Endpoint src{clients[rng.uniform(0, clients.size() - 1)], ephemeral_port(rng)};
    out.push_back(trace::make_query_record(t, src, spec.server, msg, Transport::Udp));
  }
  return out;
}

}  // namespace ldp::synth
