// Synthetic trace generators. These stand in for the paper's restricted-
// access traces (B-Root DITL 2016/2017, the Rec-17 recursive trace) and for
// the evaluation's synthetic fixed-interval traces (Table 1, syn-0..syn-4).
//
// The generators reproduce the properties the evaluation depends on:
//  * syn-*: fixed inter-arrival, unique query names (so replayed queries can
//    be matched one-to-one with originals, §4.2);
//  * B-Root-like: heavy-tailed per-client load (1% of clients ≈ 75% of
//    queries, 81% send <10 — Figure 15c), per-second rate variation,
//    realistic qtype / DO-bit / transport mixes (72.3% DO, 3% TCP — §5);
//  * Rec-17-like: hundreds of distinct zones under a recursive server.
#pragma once

#include <string>
#include <vector>

#include "trace/record.hpp"
#include "util/rng.hpp"

namespace ldp::synth {

using trace::TraceRecord;

/// Fixed inter-arrival trace (Table 1 syn-0..4: 1 s down to 0.1 ms gaps).
struct FixedTraceSpec {
  TimeNs interarrival_ns = kSecond;       ///< gap between queries
  TimeNs duration_ns = 60 * kSecond;      ///< trace length
  size_t client_count = 10000;            ///< distinct source addresses
  std::string name_suffix = "example.com";  ///< unique names are <i>.<suffix>
  Transport transport = Transport::Udp;
  TimeNs start_time = 0;
  uint64_t seed = 1;
};

std::vector<TraceRecord> make_fixed_trace(const FixedTraceSpec& spec);

/// B-Root-like trace.
struct RootTraceSpec {
  double mean_rate_qps = 2000;        ///< scaled-down DITL rate
  TimeNs duration_ns = 60 * kSecond;
  size_t client_count = 20000;
  // Client-load model, matching Figure 15c's two-population shape: a tiny
  // busy head carries most of the load (the paper: 1% of clients send 75%
  // of root queries) while the vast sparse tail sends a handful of queries
  // each (81% of clients send <10 over 20 minutes).
  double busy_client_fraction = 0.01;  ///< share of clients in the busy head
  double busy_load_fraction = 0.75;    ///< share of queries the head sends
  double head_zipf_s = 0.6;            ///< skew inside the busy head
  double tail_zipf_s = 0.8;            ///< skew across the sparse tail
  /// Fraction of queries followed by a paired AAAA query from the same
  /// client (stubs fire A+AAAA back to back, retries trail by ~100s of ms).
  /// Because these gaps are fixed in *time* while handshakes scale with
  /// RTT, followers flip from connection reuse to queuing behind the
  /// handshake as RTT grows — the §5.2.4 latency non-linearity.
  double burst_fraction = 0.3;
  TimeNs burst_gap_min = 2 * kMilli;    ///< log-uniform gap range
  TimeNs burst_gap_max = 500 * kMilli;
  double do_fraction = 0.723;         ///< queries with EDNS DO set (mid-2016)
  double tcp_fraction = 0.03;         ///< DNS-over-TCP share in DITL traces
  double junk_fraction = 0.35;        ///< queries for nonexistent TLDs
  double rate_amplitude = 0.15;       ///< sinusoidal per-second rate swing
  std::vector<std::string> tlds = {"com", "net", "org", "arpa", "edu", "gov",
                                   "io", "de", "uk", "jp", "cn", "fr"};
  TimeNs start_time = 0;
  uint64_t seed = 1;
  Endpoint server{IpAddr{Ip4{192, 0, 2, 1}}, 53};
};

std::vector<TraceRecord> make_root_trace(const RootTraceSpec& spec);

/// Rec-17-like trace: few clients, many zones, slow Poisson-ish arrivals.
struct RecursiveTraceSpec {
  size_t query_count = 20000;
  size_t client_count = 91;
  size_t zone_count = 549;            ///< distinct SLDs touched (Table 1)
  double interarrival_mean_s = 0.1808;
  double interarrival_stdev_s = 0.3554;
  TimeNs start_time = 0;
  uint64_t seed = 1;
  Endpoint server{IpAddr{Ip4{10, 0, 0, 53}}, 53};
};

std::vector<TraceRecord> make_recursive_trace(const RecursiveTraceSpec& spec);

/// Denial-of-service workload (§1: "How does current server operate under
/// the stress of a DoS attack?"). Two classic shapes:
///  * RandomSubdomain — "water torture": unique random labels under one
///    victim domain, defeating caches and forcing authoritative work;
///  * DirectFlood — identical queries from spoofed sources at line rate.
struct AttackTraceSpec {
  enum class Kind { RandomSubdomain, DirectFlood };
  Kind kind = Kind::RandomSubdomain;
  double rate_qps = 50000;
  TimeNs duration_ns = 10 * kSecond;
  /// Spoofed-source pool; DoS floods show huge apparent client diversity.
  size_t spoofed_sources = 100000;
  std::string victim_domain = "example.com";
  TimeNs start_time = 0;
  uint64_t seed = 1;
  Endpoint server{IpAddr{Ip4{192, 0, 2, 1}}, 53};
};

std::vector<TraceRecord> make_attack_trace(const AttackTraceSpec& spec);

/// Deterministic pool of distinct public-looking IPv4 client addresses.
std::vector<IpAddr> make_client_pool(size_t count, Rng& rng);

}  // namespace ldp::synth
