#include "replay/checkpoint.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/base64.hpp"

namespace ldp::replay {

namespace {

constexpr std::string_view kMagic = "ldp-checkpoint v1";

// FNV-1a, the same construction stream_seed uses; good enough to tell two
// traces apart, cheap enough to run on every resume.
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

std::string hexdouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

uint64_t trace_fingerprint(const std::vector<trace::TraceRecord>& trace) {
  uint64_t h = kFnvOffset;
  for (const auto& rec : trace) {
    if (rec.direction != trace::Direction::Query) continue;
    fnv_mix(h, static_cast<uint64_t>(rec.timestamp));
    fnv_mix(h, rec.src.addr.hash());
    fnv_mix(h, static_cast<uint64_t>(rec.transport));
    fnv_mix(h, rec.dns_payload.size());
    if (rec.dns_payload.size() >= 2)
      fnv_mix(h, static_cast<uint64_t>(rec.dns_payload[0]) << 8 |
                     rec.dns_payload[1]);
  }
  return h;
}

std::string serialize_checkpoint(const CheckpointState& state) {
  std::ostringstream os;
  {
    const EngineReport& p = state.partial;
    os << kMagic << "\n";
    os << "trace " << state.trace_hash << " " << state.trace_queries << "\n";
    os << "counters " << p.queries_sent << " " << p.responses_received << " "
       << p.send_errors << " " << p.connections_opened << " "
       << p.mutator_dropped << " " << p.max_in_flight << " "
       << p.querier_failures << " " << p.sources_reassigned << " "
       << p.shed_queries << " " << p.queue_hwm << " " << p.clamp_stall_ns
       << "\n";
    const auto& l = p.lifecycle;
    os << "lifecycle " << l.timeouts << " " << l.retries << " " << l.expired
       << " " << l.duplicate_ids << " " << l.tcp_reconnects << " "
       << l.answered_after_retry << " " << l.deferred_sends << " "
       << l.unmatched_responses << " " << l.socket_errors << " "
       << l.adopted_resends << "\n";
    const auto& im = p.impairments;
    os << "impair " << im.processed << " " << im.dropped << " "
       << im.blackholed << " " << im.flap_dropped << " " << im.duplicated
       << " " << im.corrupted << " " << im.reordered << " " << im.delayed
       << "\n";
    os << "hist " << p.latency_hist.count() << " " << p.latency_hist.min()
       << " " << p.latency_hist.max() << " "
       << hexdouble(p.latency_hist.sum()) << "\n";
    for (size_t b = 0; b < metrics::Histogram::kBuckets; ++b) {
      if (p.latency_hist.bucket_value(b) > 0)
        os << "bucket " << b << " " << p.latency_hist.bucket_value(b) << "\n";
    }
    for (const auto& [ip, n] : state.sent) os << "sent " << ip << " " << n << "\n";
    for (const auto& [name, pos] : state.streams) {
      os << "stream " << name << " " << pos.packets << " "
         << pos.corrupt_words << " ";
      if (pos.origin_offset == fault::FaultStream::kNoOrigin)
        os << "none";
      else
        os << pos.origin_offset;
      os << "\n";
    }
    for (const auto& pq : state.pending) {
      os << "pending " << pq.record.source.to_string() << " "
         << transport_name(pq.transport) << " " << pq.retries_used << " "
         << pq.record.retries << " " << pq.record.trace_time << " "
         << pq.record.querier << " "
         << (pq.payload.empty() ? std::string("-")
                                : base64_encode(pq.payload))
         << "\n";
    }
    os << "end\n";
  }
  return os.str();
}

Result<void> save_checkpoint(const std::string& path,
                             const CheckpointState& state) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return Err("cannot write checkpoint: " + tmp);
    os << serialize_checkpoint(state);
    os.flush();
    if (!os) return Err("short write to checkpoint: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return Err("cannot rename checkpoint into place: " + path, errno);
  return Ok();
}

Result<CheckpointState> parse_checkpoint(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kMagic)
    return Err("not a checkpoint (bad magic)");

  CheckpointState st;
  std::array<uint64_t, metrics::Histogram::kBuckets> buckets{};
  uint64_t hist_count = 0;
  int64_t hist_min = 0, hist_max = 0;
  double hist_sum = 0;
  bool saw_end = false;

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "trace") {
      ls >> st.trace_hash >> st.trace_queries;
    } else if (key == "counters") {
      EngineReport& p = st.partial;
      ls >> p.queries_sent >> p.responses_received >> p.send_errors >>
          p.connections_opened >> p.mutator_dropped >> p.max_in_flight >>
          p.querier_failures >> p.sources_reassigned >> p.shed_queries >>
          p.queue_hwm >> p.clamp_stall_ns;
    } else if (key == "lifecycle") {
      auto& l = st.partial.lifecycle;
      ls >> l.timeouts >> l.retries >> l.expired >> l.duplicate_ids >>
          l.tcp_reconnects >> l.answered_after_retry >> l.deferred_sends >>
          l.unmatched_responses >> l.socket_errors >> l.adopted_resends;
    } else if (key == "impair") {
      auto& im = st.partial.impairments;
      ls >> im.processed >> im.dropped >> im.blackholed >> im.flap_dropped >>
          im.duplicated >> im.corrupted >> im.reordered >> im.delayed;
    } else if (key == "hist") {
      std::string sum_text;
      ls >> hist_count >> hist_min >> hist_max >> sum_text;
      hist_sum = std::strtod(sum_text.c_str(), nullptr);
    } else if (key == "bucket") {
      size_t b = 0;
      uint64_t v = 0;
      ls >> b >> v;
      if (b >= metrics::Histogram::kBuckets)
        return Err("checkpoint histogram bucket out of range");
      buckets[b] = v;
    } else if (key == "sent") {
      std::string ip;
      uint64_t n = 0;
      ls >> ip >> n;
      st.sent[ip] = n;
    } else if (key == "stream") {
      std::string name, offset;
      fault::FaultStream::Position pos;
      ls >> name >> pos.packets >> pos.corrupt_words >> offset;
      if (offset != "none") pos.origin_offset = std::strtoll(offset.c_str(), nullptr, 10);
      st.streams[name] = pos;
    } else if (key == "pending") {
      std::string ip, transport, b64;
      CheckpointPending pq;
      ls >> ip >> transport >> pq.retries_used >> pq.record.retries >>
          pq.record.trace_time >> pq.record.querier >> b64;
      auto addr = IpAddr::parse(ip);
      if (!addr.ok()) return Err("checkpoint pending: bad source " + ip);
      pq.record.source = *addr;
      auto tr = transport_from_string(transport);
      if (!tr.ok()) return Err("checkpoint pending: " + tr.error().message);
      pq.transport = *tr;
      if (b64 != "-") {
        auto payload = base64_decode(b64);
        if (!payload.ok())
          return Err("checkpoint pending: bad payload: " + payload.error().message);
        pq.payload = std::move(*payload);
      }
      st.pending.push_back(std::move(pq));
    } else {
      return Err("checkpoint: unknown record '" + key + "'");
    }
    if (ls.fail()) return Err("checkpoint: malformed '" + key + "' line");
  }
  if (!saw_end) return Err("checkpoint truncated (no end marker)");
  st.partial.latency_hist.restore_state(buckets, hist_count, hist_min,
                                        hist_max, hist_sum);
  return st;
}

Result<CheckpointState> load_checkpoint(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Err("cannot read checkpoint: " + path);
  std::ostringstream text;
  text << is.rdbuf();
  auto st = parse_checkpoint(text.str());
  if (!st.ok()) return Err(st.error().message + ": " + path);
  return st;
}

std::string shard_checkpoint_path(const std::string& path, size_t shard) {
  return path + ".shard" + std::to_string(shard);
}

Result<std::vector<CheckpointState>> load_sharded_checkpoints(
    const std::string& path, size_t shards) {
  std::vector<CheckpointState> out(shards);
  size_t found = 0;
  for (size_t i = 0; i < shards; ++i) {
    std::string p = shard_checkpoint_path(path, i);
    std::ifstream probe(p);
    if (!probe) continue;  // shard died before its first snapshot
    probe.close();
    out[i] = LDP_TRY(load_checkpoint(p));
    ++found;
  }
  if (found == 0)
    return Err("no shard checkpoints found at " + shard_checkpoint_path(path, 0) +
               " (wrong --shards count, or the run died before any snapshot?)");
  return out;
}

}  // namespace ldp::replay
