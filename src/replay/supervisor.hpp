// Supervision for the self-healing replay pipeline: queriers and
// distributors publish heartbeats; a supervisor thread watches them and,
// when one goes stale past a timeout without the worker having declared
// itself done, fires a recovery callback exactly once (the distributor
// reassigns the dead querier's sources to a sibling and re-routes its
// in-flight work). The same thread doubles as the checkpoint ticker so a
// replay needs at most one background thread for both jobs.
//
// The supervisor never touches worker state itself — recovery callbacks
// own the handshake with the failed worker (see Querier park/reap in
// engine.cpp), keeping the failure-detection layer free of engine
// internals.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/clock.hpp"

namespace ldp::replay {

/// One worker's liveness signal. The worker beats from its own thread
/// (event-loop timer or queue-wait loop); the supervisor only reads.
/// mark_done() tells the supervisor the silence ahead is intentional
/// (normal completion), not a failure.
class Heartbeat {
 public:
  Heartbeat() : last_(mono_now_ns()) {}

  void beat() { last_.store(mono_now_ns(), std::memory_order_relaxed); }
  void mark_done() { done_.store(true, std::memory_order_release); }

  bool done() const { return done_.load(std::memory_order_acquire); }
  TimeNs last_beat() const { return last_.load(std::memory_order_relaxed); }

 private:
  std::atomic<TimeNs> last_;
  std::atomic<bool> done_{false};
};

/// Watches a fixed set of heartbeats from one background thread. Register
/// every watch before start(); the watch list is immutable while running
/// so the check loop needs no locking against registration.
class Supervisor {
 public:
  struct Config {
    TimeNs interval = 500 * kMilli;       ///< how often to check heartbeats
    TimeNs heartbeat_timeout = 5 * kSecond;  ///< stale past this = failed
    TimeNs checkpoint_interval = 0;       ///< 0 = no checkpoint callback
  };

  explicit Supervisor(Config config) : config_(config) {}
  ~Supervisor() { stop(); }

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Register a worker. `on_failure` runs on the supervisor thread, at most
  /// once per watch, when the heartbeat goes stale without mark_done().
  void watch(std::string name, Heartbeat* heartbeat,
             std::function<void()> on_failure);

  /// `fn` runs on the supervisor thread every checkpoint_interval.
  void set_checkpoint(std::function<void()> fn) { checkpoint_ = std::move(fn); }

  void start();
  /// Idempotent; joins the thread. After stop() no callback will run again.
  void stop();

  uint64_t failures_detected() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  struct Watch {
    std::string name;
    Heartbeat* heartbeat;
    std::function<void()> on_failure;
    bool fired = false;
  };

  void run();

  Config config_;
  std::vector<Watch> watches_;
  std::function<void()> checkpoint_;
  std::atomic<uint64_t> failures_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace ldp::replay
