// Query-lifecycle tracking for the replay engine (motivated by ZDNS-style
// per-query state machines): every in-flight query lives in a PendingTable
// keyed by a unique sequence number, with a FIFO per DNS id so ID
// collisions stay matchable (a response claims the oldest live query with
// its id) and a deadline heap so timeouts, retransmits, and bounded expiry
// are O(log n) instead of a full-map scan. One table per socket scope: one
// per UDP source socket, one per TCP connection.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/clock.hpp"
#include "util/ip.hpp"
#include "util/transport.hpp"

namespace ldp::replay {

struct SendRecord;  // engine.hpp; pending entries may resolve foreign records

/// Terminal (and initial) states of one replayed query.
enum class QueryOutcome : uint8_t {
  Pending = 0,   ///< in flight, no verdict yet
  Answered = 1,  ///< a response matched (possibly after retries)
  TimedOut = 2,  ///< retry budget exhausted without a response
  Errored = 3,   ///< send failed or the connection was lost for good
};

inline const char* outcome_name(QueryOutcome o) {
  switch (o) {
    case QueryOutcome::Pending: return "pending";
    case QueryOutcome::Answered: return "answered";
    case QueryOutcome::TimedOut: return "timed-out";
    case QueryOutcome::Errored: return "errored";
  }
  return "?";
}

/// One in-flight query. The payload is retained so a timeout can
/// retransmit (UDP) or a reconnect can resend (TCP) without reaching back
/// into the trace.
struct PendingQuery {
  uint64_t key = 0;           ///< unique per entry (issuer-assigned, monotone)
  uint16_t dns_id = 0;
  uint32_t retries_used = 0;  ///< retransmits consumed so far
  size_t send_index = 0;      ///< index into EngineReport::sends
  Transport transport = Transport::Udp;
  bool wire_sent = true;      ///< false while stuck behind a full kernel buffer
  TimeNs first_send = 0;      ///< original send attempt (latency baseline)
  TimeNs deadline = 0;        ///< next timeout
  IpAddr source;              ///< original trace source (socket/stream routing)
  /// Set when this query's send record lives in another report: a failed
  /// querier's (supervision adopted it) or a resumed checkpoint's partial.
  /// When non-null it overrides send_index for outcome resolution.
  SendRecord* extern_rec = nullptr;
  std::vector<uint8_t> payload;
};

/// In-flight query table for one socket scope. Not thread-safe: each
/// querier thread owns its tables outright.
class PendingTable {
 public:
  /// Track a query (or re-track one popped by take_due, with a new
  /// deadline). Returns true when another live entry already carries the
  /// same DNS id — a collision the caller counts for fresh sends.
  bool insert(PendingQuery q);

  /// Claim the oldest live query with this DNS id, removing it. nullopt
  /// when no such query is in flight (late or unsolicited response).
  std::optional<PendingQuery> match(uint16_t dns_id);

  /// Remove and return every entry whose deadline has passed. The caller
  /// decides each query's fate: re-insert (retry) or drop (expiry) — either
  /// way the table itself never grows beyond the live-deadline window.
  std::vector<PendingQuery> take_due(TimeNs now);

  /// Earliest live deadline, or nullopt when empty.
  std::optional<TimeNs> next_deadline();

  /// Remove and return everything (connection close / engine shutdown).
  std::vector<PendingQuery> drain();

  /// Read-only visit of every live entry, in no particular order
  /// (checkpoint snapshots copy in-flight state through this).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, pq] : entries_) fn(pq);
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  struct HeapItem {
    TimeNs deadline;
    uint64_t key;
  };
  struct HeapCmp {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return a.deadline > b.deadline;
    }
  };

  /// Pop heap entries whose (key, deadline) no longer name a live entry —
  /// matched, drained, or re-inserted with a new deadline.
  void prune_heap();
  void erase_from_id_fifo(uint16_t dns_id, uint64_t key);

  std::unordered_map<uint64_t, PendingQuery> entries_;
  std::unordered_map<uint16_t, std::deque<uint64_t>> by_id_;  // FIFO of keys
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapCmp> heap_;
};

}  // namespace ldp::replay
