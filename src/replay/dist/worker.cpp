#include "replay/dist/worker.hpp"

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "fault/fault.hpp"
#include "net/socket.hpp"
#include "replay/checkpoint.hpp"
#include "replay/dist/protocol.hpp"
#include "replay/engine.hpp"
#include "trace/load.hpp"

namespace ldp::replay::dist {

namespace {

constexpr TimeNs kConnectTimeout = 10 * kSecond;

/// Control-channel state shared between the replay (main) thread, the
/// engine's supervisor thread (checkpoint sink) and the sender thread that
/// streams HEARTBEAT/PROGRESS/CHECKPOINT frames. One mutex serializes both
/// the snapshot fields and the socket writes — control traffic is a few
/// small frames per second, nowhere near contention.
struct ControlChannel {
  int fd = -1;
  TimeNs skew = 0;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  bool broken = false;  ///< a frame write failed; the controller is gone
  std::string checkpoint;        ///< latest serialized snapshot
  bool checkpoint_fresh = false; ///< unsent since the last snapshot
  uint64_t sent = 0;
  uint64_t received = 0;

  TimeNs wnow() const { return mono_now_ns() + skew; }

  /// Serialized frame send; records (rather than propagates) failure so
  /// the replay itself keeps running — the supervisor side decides what a
  /// lost control channel means.
  void send_locked(FrameType type, const std::string& payload) {
    if (broken) return;
    auto sent_ok = send_frame(fd, type, payload);
    if (!sent_ok.ok()) broken = true;
  }
};

void sender_loop(ControlChannel* ch, TimeNs interval) {
  std::unique_lock lock(ch->mu);
  while (!ch->stop) {
    ch->cv.wait_for(lock, std::chrono::nanoseconds(interval),
                    [ch] { return ch->stop; });
    if (ch->stop) break;
    ch->send_locked(FrameType::Heartbeat, std::to_string(ch->wnow()) + "\n");
    ch->send_locked(FrameType::Progress,
                    encode_progress({ch->sent, ch->received}));
    if (ch->checkpoint_fresh) {
      ch->send_locked(FrameType::Checkpoint, ch->checkpoint);
      ch->checkpoint_fresh = false;
    }
  }
}

int fail(const char* what, const Error& e) {
  std::fprintf(stderr, "ldp-worker: %s: %s\n", what, e.message.c_str());
  return 1;
}

}  // namespace

int run_worker(const WorkerOptions& opts) {
  auto conn = net::tcp_connect_blocking(opts.controller, kConnectTimeout);
  if (!conn.ok()) return fail("connect", conn.error());
  const int fd = conn->get();

  HelloMsg hello;
  hello.worker = opts.index;
  hello.pid = static_cast<int64_t>(::getpid());
  auto sent = send_frame(fd, FrameType::Hello, encode_hello(hello));
  if (!sent.ok()) return fail("HELLO", sent.error());

  auto assign_frame = recv_frame(fd);
  if (!assign_frame.ok()) return fail("ASSIGN", assign_frame.error());
  if (!assign_frame->has_value() ||
      (*assign_frame)->type != FrameType::Assign)
    return fail("ASSIGN", Error{"controller closed before assignment"});
  auto assign = parse_assign((*assign_frame)->payload);
  if (!assign.ok()) return fail("ASSIGN", assign.error());

  auto trace = trace::load_trace_file(opts.trace_path);
  if (!trace.ok()) return fail("trace load", trace.error());
  auto slices = partition_by_source(*trace, assign->count);
  std::vector<trace::TraceRecord> slice = std::move(slices[assign->index]);

  CheckpointState resume_state;
  const bool resuming = !assign->resume.empty();
  if (resuming) {
    auto st = parse_checkpoint(assign->resume);
    if (!st.ok()) return fail("resume checkpoint", st.error());
    resume_state = std::move(*st);
  }

  // Barrier: announce readiness, answer drift probes with our (possibly
  // skewed) clock, then latch the start instant the controller chose.
  auto ready = send_frame(fd, FrameType::Barrier,
                          encode_barrier({BarrierMsg::Kind::Ready, 0, 0, 0}));
  if (!ready.ok()) return fail("BARRIER ready", ready.error());

  StartMsg start;
  while (true) {
    auto f = recv_frame(fd);
    if (!f.ok()) return fail("barrier wait", f.error());
    if (!f->has_value())
      return fail("barrier wait", Error{"controller closed during barrier"});
    if ((*f)->type == FrameType::Barrier) {
      auto probe = parse_barrier((*f)->payload);
      if (!probe.ok()) return fail("BARRIER", probe.error());
      if (probe->kind != BarrierMsg::Kind::Probe) continue;
      BarrierMsg echo{BarrierMsg::Kind::Echo, probe->seq, probe->t_ctrl,
                      mono_now_ns() + opts.skew};
      auto e = send_frame(fd, FrameType::Barrier, encode_barrier(echo));
      if (!e.ok()) return fail("BARRIER echo", e.error());
      continue;
    }
    if ((*f)->type == FrameType::Start) {
      auto s = parse_start((*f)->payload);
      if (!s.ok()) return fail("START", s.error());
      start = *s;
      break;
    }
    return fail("barrier wait",
                Error{std::string("unexpected ") +
                      frame_type_name((*f)->type) + " frame"});
  }

  std::fprintf(stderr,
               "ldp-worker %zu/%zu: %zu queries, drift offset %lld us%s\n",
               assign->index, assign->count, slice.size(),
               static_cast<long long>(start.offset / 1000),
               resuming ? " (resuming)" : "");

  // An empty slice (more workers than sources) still owes the controller a
  // report, or the merge would wait forever.
  if (slice.empty()) {
    auto r = send_frame(fd, FrameType::Report, encode_report(EngineReport{}));
    return r.ok() ? 0 : fail("REPORT", r.error());
  }

  ControlChannel channel;
  channel.fd = fd;
  channel.skew = opts.skew;

  EngineConfig cfg;
  cfg.server = assign->server;
  cfg.timed = assign->timed;
  cfg.batched_io = assign->batched_io;
  cfg.distributors = assign->distributors;
  cfg.queriers_per_distributor = assign->queriers;
  cfg.checkpoint_interval = assign->checkpoint_interval;
  if (!assign->fault_spec.empty()) {
    auto spec = fault::parse_fault_spec(assign->fault_spec);
    if (!spec.ok()) return fail("fault spec", spec.error());
    cfg.fault = *spec;
  }
  if (resuming) cfg.resume = &resume_state;
  cfg.checkpoint_sink = [&channel](const CheckpointState& st) {
    std::string blob = serialize_checkpoint(st);
    std::lock_guard lock(channel.mu);
    channel.sent = st.partial.queries_sent;
    channel.received = st.partial.responses_received;
    channel.checkpoint = std::move(blob);
    channel.checkpoint_fresh = true;
  };

  // The barrier start instant arrives in *our* protocol clock; the engine
  // schedules against raw CLOCK_MONOTONIC, so convert. A resumed worker
  // instead re-anchors at its first unsent record (the controller's start
  // instant synchronized the fleet that already replayed this prefix).
  ReplayClock shared;
  const ReplayClock* clock = nullptr;
  if (!resuming) {
    shared.start(start.trace_origin, start.start_at - opts.skew);
    clock = &shared;
  }

  std::thread sender(sender_loop, &channel, assign->heartbeat_interval);
  QueryEngine engine(cfg);
  auto report = engine.replay(slice, clock);
  {
    std::lock_guard lock(channel.mu);
    channel.stop = true;
  }
  channel.cv.notify_all();
  sender.join();

  if (!report.ok()) return fail("replay", report.error());
  auto shipped = send_frame(fd, FrameType::Report, encode_report(*report));
  if (!shipped.ok()) return fail("REPORT", shipped.error());
  return 0;
}

}  // namespace ldp::replay::dist
