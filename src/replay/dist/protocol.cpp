#include "replay/dist/protocol.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "net/socket.hpp"

namespace ldp::replay::dist {

namespace {

constexpr std::string_view kReportMagic = "ldp-report v1";

// Hex float round-trips the histogram sum exactly (same trick as the
// checkpoint writer).
std::string hexdouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

Result<void> check_line(const std::istringstream& ls, const char* what) {
  if (ls.fail()) return Err(std::string("control frame: malformed ") + what);
  return Ok();
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "HELLO";
    case FrameType::Assign: return "ASSIGN";
    case FrameType::Barrier: return "BARRIER";
    case FrameType::Start: return "START";
    case FrameType::Heartbeat: return "HEARTBEAT";
    case FrameType::Progress: return "PROGRESS";
    case FrameType::Checkpoint: return "CHECKPOINT";
    case FrameType::Report: return "REPORT";
  }
  return "?";
}

Result<void> send_frame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload)
    return Err("control frame payload too large");
  uint32_t len = static_cast<uint32_t>(payload.size() + 1);
  uint8_t header[5] = {static_cast<uint8_t>(len >> 24),
                       static_cast<uint8_t>(len >> 16),
                       static_cast<uint8_t>(len >> 8),
                       static_cast<uint8_t>(len),
                       static_cast<uint8_t>(type)};
  LDP_TRY_VOID(net::write_full(fd, std::span<const uint8_t>(header, 5)));
  if (!payload.empty()) {
    LDP_TRY_VOID(net::write_full(
        fd, std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(payload.data()),
                payload.size())));
  }
  return Ok();
}

Result<std::optional<Frame>> recv_frame(int fd) {
  uint8_t prefix[4];
  bool open = LDP_TRY(net::read_full(fd, std::span<uint8_t>(prefix, 4)));
  if (!open) return std::optional<Frame>{};
  uint32_t len = static_cast<uint32_t>(prefix[0]) << 24 |
                 static_cast<uint32_t>(prefix[1]) << 16 |
                 static_cast<uint32_t>(prefix[2]) << 8 | prefix[3];
  if (len == 0) return Err("control frame with zero length");
  if (len > kMaxFramePayload + 1) return Err("control frame too large");
  std::vector<uint8_t> body(len);
  bool rest = LDP_TRY(net::read_full(fd, std::span<uint8_t>(body)));
  if (!rest) return Err("peer closed mid-frame (truncated control frame)");
  Frame f;
  f.type = static_cast<FrameType>(body[0]);
  f.payload.assign(reinterpret_cast<const char*>(body.data() + 1),
                   body.size() - 1);
  return std::optional<Frame>{std::move(f)};
}

void FrameReader::feed(const uint8_t* data, size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

Result<std::optional<Frame>> FrameReader::next() {
  if (buf_.size() - pos_ < 4) return std::optional<Frame>{};
  uint32_t len = static_cast<uint32_t>(buf_[pos_]) << 24 |
                 static_cast<uint32_t>(buf_[pos_ + 1]) << 16 |
                 static_cast<uint32_t>(buf_[pos_ + 2]) << 8 | buf_[pos_ + 3];
  if (len == 0) return Err("control frame with zero length");
  if (len > kMaxFramePayload + 1) return Err("control frame too large");
  if (buf_.size() - pos_ - 4 < len) return std::optional<Frame>{};
  Frame f;
  f.type = static_cast<FrameType>(buf_[pos_ + 4]);
  f.payload.assign(reinterpret_cast<const char*>(buf_.data() + pos_ + 5),
                   len - 1);
  pos_ += 4 + len;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  return std::optional<Frame>{std::move(f)};
}

// --- HELLO -----------------------------------------------------------------

std::string encode_hello(const HelloMsg& m) {
  std::ostringstream os;
  os << "worker " << m.worker << " pid " << m.pid << " version " << m.version
     << "\n";
  return os.str();
}

Result<HelloMsg> parse_hello(const std::string& payload) {
  std::istringstream ls(payload);
  std::string kw_worker, kw_pid, kw_version;
  HelloMsg m;
  ls >> kw_worker >> m.worker >> kw_pid >> m.pid >> kw_version >> m.version;
  LDP_TRY_VOID(check_line(ls, "HELLO"));
  if (kw_worker != "worker" || kw_pid != "pid" || kw_version != "version")
    return Err("control frame: malformed HELLO");
  return m;
}

// --- ASSIGN ----------------------------------------------------------------

std::string encode_assign(const AssignMsg& m) {
  std::ostringstream os;
  os << "index " << m.index << "\n"
     << "count " << m.count << "\n"
     << "server " << m.server.addr.to_string() << " " << m.server.port << "\n"
     << "timed " << (m.timed ? 1 : 0) << "\n"
     << "batched " << (m.batched_io ? 1 : 0) << "\n"
     << "distributors " << m.distributors << "\n"
     << "queriers " << m.queriers << "\n"
     << "heartbeat " << m.heartbeat_interval << "\n"
     << "checkpoint-interval " << m.checkpoint_interval << "\n";
  if (!m.fault_spec.empty()) os << "fault " << m.fault_spec << "\n";
  // The resume blob is raw multi-line checkpoint text; it must come last.
  if (!m.resume.empty()) os << "resume\n" << m.resume;
  return os.str();
}

Result<AssignMsg> parse_assign(const std::string& payload) {
  AssignMsg m;
  std::istringstream is(payload);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "index") {
      ls >> m.index;
    } else if (key == "count") {
      ls >> m.count;
    } else if (key == "server") {
      std::string ip;
      ls >> ip >> m.server.port;
      auto addr = IpAddr::parse(ip);
      if (!addr.ok()) return Err("ASSIGN: bad server address " + ip);
      m.server.addr = *addr;
    } else if (key == "timed") {
      int v = 0;
      ls >> v;
      m.timed = v != 0;
    } else if (key == "batched") {
      int v = 0;
      ls >> v;
      m.batched_io = v != 0;
    } else if (key == "distributors") {
      ls >> m.distributors;
    } else if (key == "queriers") {
      ls >> m.queriers;
    } else if (key == "heartbeat") {
      ls >> m.heartbeat_interval;
    } else if (key == "checkpoint-interval") {
      ls >> m.checkpoint_interval;
    } else if (key == "fault") {
      std::string spec;
      ls >> spec;
      m.fault_spec = spec;
    } else if (key == "resume") {
      // Everything after this marker is the checkpoint blob, verbatim.
      std::ostringstream rest;
      rest << is.rdbuf();
      m.resume = rest.str();
      break;
    } else {
      return Err("ASSIGN: unknown field '" + key + "'");
    }
    LDP_TRY_VOID(check_line(ls, "ASSIGN"));
  }
  if (m.count == 0 || m.index >= m.count)
    return Err("ASSIGN: index/count out of range");
  return m;
}

// --- BARRIER / START / PROGRESS -------------------------------------------

std::string encode_barrier(const BarrierMsg& m) {
  std::ostringstream os;
  switch (m.kind) {
    case BarrierMsg::Kind::Ready:
      os << "ready\n";
      break;
    case BarrierMsg::Kind::Probe:
      os << "probe " << m.seq << " " << m.t_ctrl << "\n";
      break;
    case BarrierMsg::Kind::Echo:
      os << "echo " << m.seq << " " << m.t_ctrl << " " << m.t_worker << "\n";
      break;
  }
  return os.str();
}

Result<BarrierMsg> parse_barrier(const std::string& payload) {
  std::istringstream ls(payload);
  std::string kind;
  BarrierMsg m;
  ls >> kind;
  if (kind == "ready") {
    m.kind = BarrierMsg::Kind::Ready;
    return m;
  }
  if (kind == "probe") {
    m.kind = BarrierMsg::Kind::Probe;
    ls >> m.seq >> m.t_ctrl;
  } else if (kind == "echo") {
    m.kind = BarrierMsg::Kind::Echo;
    ls >> m.seq >> m.t_ctrl >> m.t_worker;
  } else {
    return Err("control frame: malformed BARRIER");
  }
  LDP_TRY_VOID(check_line(ls, "BARRIER"));
  return m;
}

std::string encode_start(const StartMsg& m) {
  std::ostringstream os;
  os << "origin " << m.trace_origin << " at " << m.start_at << " offset "
     << m.offset << "\n";
  return os.str();
}

Result<StartMsg> parse_start(const std::string& payload) {
  std::istringstream ls(payload);
  std::string kw_origin, kw_at, kw_offset;
  StartMsg m;
  ls >> kw_origin >> m.trace_origin >> kw_at >> m.start_at >> kw_offset >>
      m.offset;
  LDP_TRY_VOID(check_line(ls, "START"));
  if (kw_origin != "origin" || kw_at != "at" || kw_offset != "offset")
    return Err("control frame: malformed START");
  return m;
}

std::string encode_progress(const ProgressMsg& m) {
  std::ostringstream os;
  os << "sent " << m.sent << " received " << m.received << "\n";
  return os.str();
}

Result<ProgressMsg> parse_progress(const std::string& payload) {
  std::istringstream ls(payload);
  std::string kw_sent, kw_recv;
  ProgressMsg m;
  ls >> kw_sent >> m.sent >> kw_recv >> m.received;
  LDP_TRY_VOID(check_line(ls, "PROGRESS"));
  if (kw_sent != "sent" || kw_recv != "received")
    return Err("control frame: malformed PROGRESS");
  return m;
}

// --- REPORT ----------------------------------------------------------------

std::string encode_report(const EngineReport& r) {
  std::ostringstream os;
  os << kReportMagic << "\n";
  os << "counters " << r.queries_sent << " " << r.responses_received << " "
     << r.send_errors << " " << r.connections_opened << " "
     << r.mutator_dropped << " " << r.max_in_flight << " "
     << r.querier_failures << " " << r.sources_reassigned << " "
     << r.shed_queries << " " << r.queue_hwm << " " << r.clamp_stall_ns
     << "\n";
  const auto& l = r.lifecycle;
  os << "lifecycle " << l.timeouts << " " << l.retries << " " << l.expired
     << " " << l.duplicate_ids << " " << l.tcp_reconnects << " "
     << l.answered_after_retry << " " << l.deferred_sends << " "
     << l.unmatched_responses << " " << l.socket_errors << " "
     << l.adopted_resends << "\n";
  const auto& im = r.impairments;
  os << "impair " << im.processed << " " << im.dropped << " " << im.blackholed
     << " " << im.flap_dropped << " " << im.duplicated << " " << im.corrupted
     << " " << im.reordered << " " << im.delayed << "\n";
  os << "dist " << r.worker_crashes << " " << r.workers_respawned << " "
     << r.max_drift_ns << "\n";
  os << "span " << r.replay_start << " " << r.replay_end << "\n";
  os << "hist " << r.latency_hist.count() << " " << r.latency_hist.min() << " "
     << r.latency_hist.max() << " " << hexdouble(r.latency_hist.sum()) << "\n";
  for (size_t b = 0; b < metrics::Histogram::kBuckets; ++b) {
    if (r.latency_hist.bucket_value(b) > 0)
      os << "bucket " << b << " " << r.latency_hist.bucket_value(b) << "\n";
  }
  for (const auto& sr : r.sends) {
    os << "send " << sr.trace_time << " " << sr.send_time << " " << sr.latency
       << " " << sr.source.to_string() << " " << sr.querier << " "
       << sr.retries << " " << static_cast<int>(sr.outcome) << "\n";
  }
  os << "end\n";
  return os.str();
}

Result<EngineReport> parse_report(const std::string& payload) {
  std::istringstream is(payload);
  std::string line;
  if (!std::getline(is, line) || line != kReportMagic)
    return Err("not a worker report (bad magic)");
  EngineReport r;
  std::array<uint64_t, metrics::Histogram::kBuckets> buckets{};
  uint64_t hist_count = 0;
  int64_t hist_min = 0, hist_max = 0;
  double hist_sum = 0;
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "counters") {
      ls >> r.queries_sent >> r.responses_received >> r.send_errors >>
          r.connections_opened >> r.mutator_dropped >> r.max_in_flight >>
          r.querier_failures >> r.sources_reassigned >> r.shed_queries >>
          r.queue_hwm >> r.clamp_stall_ns;
    } else if (key == "lifecycle") {
      auto& l = r.lifecycle;
      ls >> l.timeouts >> l.retries >> l.expired >> l.duplicate_ids >>
          l.tcp_reconnects >> l.answered_after_retry >> l.deferred_sends >>
          l.unmatched_responses >> l.socket_errors >> l.adopted_resends;
    } else if (key == "impair") {
      auto& im = r.impairments;
      ls >> im.processed >> im.dropped >> im.blackholed >> im.flap_dropped >>
          im.duplicated >> im.corrupted >> im.reordered >> im.delayed;
    } else if (key == "dist") {
      ls >> r.worker_crashes >> r.workers_respawned >> r.max_drift_ns;
    } else if (key == "span") {
      ls >> r.replay_start >> r.replay_end;
    } else if (key == "hist") {
      std::string sum_text;
      ls >> hist_count >> hist_min >> hist_max >> sum_text;
      hist_sum = std::strtod(sum_text.c_str(), nullptr);
    } else if (key == "bucket") {
      size_t b = 0;
      uint64_t v = 0;
      ls >> b >> v;
      if (b >= metrics::Histogram::kBuckets)
        return Err("report histogram bucket out of range");
      buckets[b] = v;
    } else if (key == "send") {
      SendRecord sr;
      std::string ip;
      int outcome = 0;
      ls >> sr.trace_time >> sr.send_time >> sr.latency >> ip >> sr.querier >>
          sr.retries >> outcome;
      auto addr = IpAddr::parse(ip);
      if (!addr.ok()) return Err("report send: bad source " + ip);
      sr.source = *addr;
      sr.outcome = static_cast<QueryOutcome>(outcome);
      r.sends.push_back(sr);
    } else {
      return Err("report: unknown record '" + key + "'");
    }
    LDP_TRY_VOID(check_line(ls, "REPORT"));
  }
  if (!saw_end) return Err("report truncated (no end marker)");
  r.latency_hist.restore_state(buckets, hist_count, hist_min, hist_max,
                               hist_sum);
  return r;
}

// --- slice partition -------------------------------------------------------

std::vector<std::vector<trace::TraceRecord>> partition_by_source(
    const std::vector<trace::TraceRecord>& trace, size_t n) {
  std::vector<std::vector<trace::TraceRecord>> slices(n);
  std::unordered_map<IpAddr, size_t, IpAddrHash> source_to_slice;
  for (const auto& rec : trace) {
    if (rec.direction != trace::Direction::Query) continue;
    auto [it, fresh] =
        source_to_slice.emplace(rec.src.addr, source_to_slice.size() % n);
    slices[it->second].push_back(rec);
    (void)fresh;
  }
  return slices;
}

}  // namespace ldp::replay::dist
